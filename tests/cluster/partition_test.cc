// Partitioner properties that make scatter-gather byte-identity possible:
// the owned cells of all shards are a disjoint partition of the global
// cube, ghosts replicate exactly the cross-shard CA-axis adjacency, and
// every shard cell carries the global cell's payload verbatim.

#include "cluster/partition.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "cube/cube.h"
#include "cube/cube_view.h"

namespace scube {
namespace cluster {
namespace {

using cube::CellCoordinates;
using cube::CubeCell;
using cube::SegregationCube;

cube::CubeCell MakeCell(std::vector<fpm::ItemId> sa,
                        std::vector<fpm::ItemId> ca, uint64_t t, uint64_t m) {
  cube::CubeCell cell;
  cell.coords = CellCoordinates{fpm::Itemset(std::move(sa)),
                                fpm::Itemset(std::move(ca))};
  cell.context_size = t;
  cell.minority_size = m;
  cell.num_units = 3;
  cell.indexes.defined = (m != 0 && m != t);
  for (size_t i = 0; i < indexes::kNumIndexKinds; ++i) {
    cell.indexes.values[i] = 0.01 * static_cast<double>(t % 97) +
                             0.001 * static_cast<double>(i);
  }
  return cell;
}

/// A cube with enough distinct context coordinates (6 single-item CAs
/// plus the empty CA) that hash partitioning to 4 shards is non-trivial:
/// SA items 0..2, CA items 3..8, every (sa subset, ca in {∅, {c}}) pair.
SegregationCube MakeGlobalCube() {
  relational::ItemCatalog catalog;
  using relational::AttributeKind;
  catalog.GetOrAdd(0, "sex", "F", AttributeKind::kSegregation);
  catalog.GetOrAdd(1, "age", "young", AttributeKind::kSegregation);
  catalog.GetOrAdd(2, "origin", "foreign", AttributeKind::kSegregation);
  for (fpm::ItemId c = 3; c <= 8; ++c) {
    catalog.GetOrAdd(c, "province", "p" + std::to_string(c),
                     AttributeKind::kContext);
  }

  SegregationCube cube(std::move(catalog), {"u0", "u1", "u2"});
  const std::vector<std::vector<fpm::ItemId>> sas = {
      {}, {0}, {1}, {2}, {0, 1}, {0, 2}};
  uint64_t t = 400;
  for (const auto& sa : sas) {
    cube.Insert(MakeCell(sa, {}, t, t / 3));
    for (fpm::ItemId c = 3; c <= 8; ++c) {
      cube.Insert(MakeCell(sa, {c}, t / 2 + c, (t / 2 + c) / 4));
      ++t;
    }
  }
  return cube;
}

std::string CoordKey(const CellCoordinates& coords) {
  std::string key;
  for (fpm::ItemId item : coords.sa.items()) {
    key += std::to_string(item) + ",";
  }
  key += "|";
  for (fpm::ItemId item : coords.ca.items()) {
    key += std::to_string(item) + ",";
  }
  return key;
}

bool SamePayload(const CubeCell& a, const CubeCell& b) {
  if (a.context_size != b.context_size) return false;
  if (a.minority_size != b.minority_size) return false;
  if (a.num_units != b.num_units) return false;
  if (a.indexes.defined != b.indexes.defined) return false;
  for (size_t i = 0; i < indexes::kNumIndexKinds; ++i) {
    if (a.indexes.values[i] != b.indexes.values[i]) return false;
  }
  return true;
}

TEST(PartitionTest, ContextFingerprintIsDeterministicAndDiscriminates) {
  fpm::Itemset a({3});
  fpm::Itemset b({4});
  fpm::Itemset empty;
  EXPECT_EQ(ContextFingerprint(a), ContextFingerprint(fpm::Itemset({3})));
  EXPECT_NE(ContextFingerprint(a), ContextFingerprint(b));
  EXPECT_NE(ContextFingerprint(a), ContextFingerprint(empty));
}

TEST(PartitionTest, ShardOfContextStaysInRange) {
  for (size_t n : {1u, 2u, 3u, 4u, 7u}) {
    PartitionOptions options;
    options.num_shards = n;
    for (PartitionStrategy strategy :
         {PartitionStrategy::kHash, PartitionStrategy::kRange}) {
      options.strategy = strategy;
      for (fpm::ItemId c = 0; c < 32; ++c) {
        EXPECT_LT(ShardOfContext(fpm::Itemset({c}), options, 32), n);
      }
      EXPECT_LT(ShardOfContext(fpm::Itemset(), options, 32), n);
    }
  }
}

TEST(PartitionTest, RangeStrategyIsMonotoneInFirstItemId) {
  PartitionOptions options;
  options.num_shards = 4;
  options.strategy = PartitionStrategy::kRange;
  size_t prev = 0;
  for (fpm::ItemId c = 0; c < 16; ++c) {
    size_t shard = ShardOfContext(fpm::Itemset({c}), options, 16);
    EXPECT_GE(shard, prev) << "range buckets must be contiguous";
    prev = shard;
  }
  EXPECT_EQ(prev, 3u) << "the last id must land on the last shard";
  EXPECT_EQ(ShardOfContext(fpm::Itemset(), options, 16), 0u);
}

TEST(PartitionTest, OwnedCellsAreADisjointPartitionOfTheGlobalCube) {
  cube::CubeView view = MakeGlobalCube().Seal(1);
  for (PartitionStrategy strategy :
       {PartitionStrategy::kHash, PartitionStrategy::kRange}) {
    for (size_t n : {1u, 2u, 4u}) {
      PartitionOptions options;
      options.num_shards = n;
      options.strategy = strategy;
      PartitionStats stats;
      std::vector<SegregationCube> shards =
          PartitionCube(view, options, &stats);
      ASSERT_EQ(shards.size(), n);
      ASSERT_EQ(stats.owned.size(), n);
      ASSERT_EQ(stats.ghosts.size(), n);

      // Every global cell is owned (non-ghost) by exactly one shard, and
      // its payload travels verbatim.
      std::map<std::string, size_t> owners;
      size_t total_owned = 0;
      size_t total_ghosts = 0;
      for (size_t i = 0; i < n; ++i) {
        size_t owned = 0;
        size_t ghosts = 0;
        cube::CubeView shard_view = std::move(shards[i]).Seal(1);
        for (const CubeCell& cell : shard_view.Cells()) {
          const CubeCell* global = view.Find(cell.coords);
          ASSERT_NE(global, nullptr)
              << "shard " << i << " invented cell " << CoordKey(cell.coords);
          EXPECT_TRUE(SamePayload(cell, *global))
              << "payload mutated for " << CoordKey(cell.coords);
          if (cell.ghost) {
            ++ghosts;
          } else {
            ++owned;
            auto [it, inserted] =
                owners.emplace(CoordKey(cell.coords), i);
            EXPECT_TRUE(inserted)
                << CoordKey(cell.coords) << " owned by shards " << it->second
                << " and " << i;
          }
        }
        EXPECT_EQ(owned, stats.owned[i]);
        EXPECT_EQ(ghosts, stats.ghosts[i]);
        total_owned += owned;
        total_ghosts += ghosts;
      }
      EXPECT_EQ(total_owned, view.NumCells())
          << "owned cells must partition the global cube (n=" << n << ")";
      EXPECT_EQ(owners.size(), view.NumCells());
      if (n == 1) {
        EXPECT_EQ(total_ghosts, 0u)
            << "a single shard owns everything; ghosts would be waste";
      }
    }
  }
}

TEST(PartitionTest, GhostClosureCoversCrossShardCaAdjacency) {
  cube::CubeView view = MakeGlobalCube().Seal(1);
  PartitionOptions options;
  options.num_shards = 4;
  options.strategy = PartitionStrategy::kHash;
  std::vector<SegregationCube> shards = PartitionCube(view, options);

  // For every global pair (child, parent) along the CA axis — same SA,
  // parent's CA is the child's CA with one item removed — both endpoints
  // must be visible (owned or ghost) in the shard owning either one.
  size_t cross_shard_pairs = 0;
  for (const CubeCell& child : view.Cells()) {
    if (child.coords.ca.empty()) continue;
    for (fpm::ItemId removed : child.coords.ca.items()) {
      std::vector<fpm::ItemId> rest;
      for (fpm::ItemId item : child.coords.ca.items()) {
        if (item != removed) rest.push_back(item);
      }
      CellCoordinates parent_coords{child.coords.sa, fpm::Itemset(rest)};
      const CubeCell* parent = view.Find(parent_coords);
      if (parent == nullptr) continue;

      size_t child_shard = ShardOfContext(child.coords.ca, options,
                                          view.catalog().size());
      size_t parent_shard = ShardOfContext(parent_coords.ca, options,
                                           view.catalog().size());
      if (child_shard == parent_shard) continue;
      ++cross_shard_pairs;
      // The child's owner needs the parent as a comparison baseline...
      EXPECT_NE(shards[child_shard].Find(parent_coords), nullptr)
          << "shard " << child_shard << " lacks CA-parent of "
          << CoordKey(child.coords);
      // ...and the parent's owner needs the child as a drill-down target.
      EXPECT_NE(shards[parent_shard].Find(child.coords), nullptr)
          << "shard " << parent_shard << " lacks CA-child of "
          << CoordKey(parent_coords);
    }
  }
  EXPECT_GT(cross_shard_pairs, 0u)
      << "test cube too small: no cross-shard adjacency was exercised";
}

TEST(PartitionTest, ShardsCarryTheFullCatalogAndUnitLabels) {
  SegregationCube global = MakeGlobalCube();
  const size_t catalog_size = global.catalog().size();
  const std::vector<std::string> units = global.unit_labels();
  cube::CubeView view = std::move(global).Seal(1);

  PartitionOptions options;
  options.num_shards = 3;
  std::vector<SegregationCube> shards = PartitionCube(view, options);
  for (const SegregationCube& shard : shards) {
    EXPECT_EQ(shard.catalog().size(), catalog_size);
    EXPECT_EQ(shard.unit_labels(), units);
  }
}

}  // namespace
}  // namespace cluster
}  // namespace scube
