// The sharded-serving property test: a ScatterExecutor over 1, 2 and 4
// real shard servers (in-process ScubedServers on loopback ports, each
// holding its partition of one global cube) must produce byte-identical
// output to a single-node QueryService over the unsharded cube — for all
// seven verbs, JSON and CSV, buffered and streamed — with only the scan
// accounting (cells_scanned, ghosts are scanned twice) and cursor tokens
// masked. Plus the composite-cursor lifecycle and the failure policy.

#include "cluster/scatter.h"

#include <gtest/gtest.h>

#include <memory>
#include <regex>
#include <string>
#include <vector>

#include "cluster/partition.h"
#include "cube/cube.h"
#include "net/socket.h"
#include "query/cube_store.h"
#include "query/row_sink.h"
#include "query/service.h"
#include "server/server.h"

namespace scube {
namespace cluster {
namespace {

cube::CubeCell MakeCell(std::vector<fpm::ItemId> sa,
                        std::vector<fpm::ItemId> ca, uint64_t t, uint64_t m) {
  cube::CubeCell cell;
  cell.coords = cube::CellCoordinates{fpm::Itemset(std::move(sa)),
                                      fpm::Itemset(std::move(ca))};
  cell.context_size = t;
  cell.minority_size = m;
  cell.num_units = 3;
  cell.indexes.defined = (m != 0 && m != t);
  for (size_t i = 0; i < indexes::kNumIndexKinds; ++i) {
    // Deterministic but non-monotone values, so ranked verbs interleave
    // rows across shards and reversals actually occur.
    cell.indexes.values[i] =
        static_cast<double>((t * 31 + i * 7) % 101) / 101.0;
  }
  return cell;
}

/// Six single-item context coordinates plus the empty one: enough
/// distinct CAs that hash partitioning to 4 shards spreads cells and
/// every merge has to interleave.
cube::SegregationCube MakeGlobalCube() {
  relational::ItemCatalog catalog;
  using relational::AttributeKind;
  catalog.GetOrAdd(0, "sex", "F", AttributeKind::kSegregation);
  catalog.GetOrAdd(1, "age", "young", AttributeKind::kSegregation);
  catalog.GetOrAdd(2, "origin", "foreign", AttributeKind::kSegregation);
  for (fpm::ItemId c = 3; c <= 8; ++c) {
    catalog.GetOrAdd(c, "province", "p" + std::to_string(c),
                     AttributeKind::kContext);
  }
  cube::SegregationCube cube(std::move(catalog), {"u0", "u1", "u2"});
  const std::vector<std::vector<fpm::ItemId>> sas = {
      {}, {0}, {1}, {2}, {0, 1}, {0, 2}};
  uint64_t t = 400;
  for (const auto& sa : sas) {
    cube.Insert(MakeCell(sa, {}, t, sa.empty() ? 0 : t / 3));
    for (fpm::ItemId c = 3; c <= 8; ++c) {
      cube.Insert(MakeCell(sa, {c}, t / 2 + c,
                           sa.empty() ? 0 : (t / 2 + c) / 4 + c % 3));
      ++t;
    }
  }
  return cube;
}

/// Every verb, plus the ORDER BY / WHERE / LIMIT shapes whose merge keys
/// differ from the natural walk.
const std::vector<std::string>& AllVerbTexts() {
  static const std::vector<std::string> texts = {
      "SLICE sa=sex=F",
      "SLICE sa=sex=F | ca=province=p4",
      "SLICE ca=province=p5",
      "DICE sa=sex=F",
      "DICE sa=sex=F WHERE T >= 210",
      "ROLLUP sa=sex=F & age=young | ca=province=p5",
      "DRILLDOWN sa=sex=F",
      "DRILLDOWN",
      "TOPK 7 BY gini WHERE T >= 1 AND M >= 1",
      "TOPK 5 BY atkinson WHERE T >= 1 AND M >= 1 ORDER BY T DESC",
      "SURPRISES BY dissimilarity MINDELTA 0.001",
      "REVERSALS MINGAP 0.001",
      "DICE sa=sex=F ORDER BY gini DESC",
      "DICE sa=sex=F LIMIT 3 OFFSET 2",
  };
  return texts;
}

/// Scan accounting and cursor tokens legitimately differ between a
/// router and a single node (shards also scan their ghosts; composite
/// cursors are a different format) — mask them, nothing else.
std::string Mask(std::string text) {
  static const std::regex scanned("\"cells_scanned\":[0-9]+");
  static const std::regex cursor_json("\"next_cursor\":\"[^\"]*\"");
  static const std::regex cursor_csv("# next_cursor: [^\n]*");
  text = std::regex_replace(text, scanned, "\"cells_scanned\":X");
  text = std::regex_replace(text, cursor_json, "\"next_cursor\":\"X\"");
  text = std::regex_replace(text, cursor_csv, "# next_cursor: X");
  return text;
}

server::ServerOptions MakeServerOptions() {
  server::ServerOptions options;
  options.port = 0;  // ephemeral
  options.loopback_only = true;
  options.num_connection_threads = 4;
  options.idle_poll_seconds = 0.1;  // fast Stop() in tests
  return options;
}

/// One in-process "shard scubed": store + service + HTTP server.
struct ShardProcess {
  query::CubeStore store;
  std::unique_ptr<query::QueryService> service;
  std::unique_ptr<server::ScubedServer> server;

  explicit ShardProcess(cube::SegregationCube cube) {
    store.Publish("default", std::move(cube));
    service = std::make_unique<query::QueryService>(&store,
                                                    query::ServiceOptions{});
    server = std::make_unique<server::ScubedServer>(service.get(), &store,
                                                    MakeServerOptions());
    Status started = server->Start();
    EXPECT_TRUE(started.ok()) << started;
  }
};

/// An n-shard topology: partitioned shard servers plus the router-side
/// scatter executor pointed at them.
struct Topology {
  std::vector<std::unique_ptr<ShardProcess>> shards;
  std::unique_ptr<ScatterExecutor> scatter;

  explicit Topology(size_t n) {
    cube::CubeView view = MakeGlobalCube().Seal(1);
    PartitionOptions options;
    options.num_shards = n;
    std::vector<cube::SegregationCube> parts = PartitionCube(view, options);
    std::vector<ShardSpec> specs;
    for (size_t i = 0; i < n; ++i) {
      shards.push_back(std::make_unique<ShardProcess>(std::move(parts[i])));
      ShardSpec spec;
      spec.replicas.push_back(
          ShardEndpoint{"127.0.0.1", shards.back()->server->port()});
      specs.push_back(std::move(spec));
    }
    scatter = std::make_unique<ScatterExecutor>(std::move(specs));
  }
};

template <typename Backend>
std::string StreamJson(Backend* backend, const std::string& text,
                       query::StreamOutcome* outcome = nullptr,
                       const std::string& cursor = "") {
  std::string out;
  query::JsonWriter writer([&out](std::string_view chunk) {
    out.append(chunk);
    return true;
  });
  auto result = backend->ExecuteStreaming(text, writer, {}, cursor);
  EXPECT_TRUE(result.status.ok()) << text << " -> " << result.status;
  if (outcome != nullptr) *outcome = result;
  return out;
}

template <typename Backend>
std::string StreamCsv(Backend* backend, const std::string& text) {
  std::string out;
  query::CsvWriter writer([&out](std::string_view chunk) {
    out.append(chunk);
    return true;
  });
  auto result = backend->ExecuteStreaming(text, writer, {}, "");
  EXPECT_TRUE(result.status.ok()) << text << " -> " << result.status;
  return out;
}

class ScatterTest : public ::testing::Test {
 protected:
  ScatterTest() {
    single_store_.Publish("default", MakeGlobalCube());
    single_ = std::make_unique<query::QueryService>(&single_store_,
                                                    query::ServiceOptions{});
  }

  query::CubeStore single_store_;
  std::unique_ptr<query::QueryService> single_;
};

TEST_F(ScatterTest, EveryVerbIsByteIdenticalAcrossTopologies) {
  for (size_t n : {1u, 2u, 4u}) {
    Topology topo(n);
    for (const std::string& text : AllVerbTexts()) {
      // Streamed JSON: the bytes the chunked HTTP path would emit.
      std::string single_json = StreamJson(single_.get(), text);
      std::string scattered_json = StreamJson(topo.scatter.get(), text);
      EXPECT_EQ(Mask(scattered_json), Mask(single_json))
          << n << " shards, " << text;

      // Streamed CSV.
      EXPECT_EQ(Mask(StreamCsv(topo.scatter.get(), text)),
                Mask(StreamCsv(single_.get(), text)))
          << n << " shards, " << text;

      // Buffered (batch) path: materialised results render identically.
      auto batch = topo.scatter->ExecuteBatch({text}, {});
      ASSERT_EQ(batch.size(), 1u);
      ASSERT_TRUE(batch[0].status.ok()) << text << " -> " << batch[0].status;
      auto direct = single_->ExecuteOne(text);
      ASSERT_TRUE(direct.status.ok()) << text;
      EXPECT_EQ(Mask(ToJson(batch[0].result)), Mask(ToJson(direct.result)))
          << n << " shards, " << text;
      EXPECT_EQ(batch[0].verb, direct.verb) << text;
      EXPECT_EQ(batch[0].cube_version, direct.cube_version) << text;
    }
  }
}

TEST_F(ScatterTest, CursorStitchingMatchesTheUnpaginatedAnswer) {
  Topology topo(4);
  for (const std::string& base :
       {std::string("DICE sa=sex=F"),
        std::string("TOPK 9 BY gini WHERE T >= 1 AND M >= 1"),
        std::string("DICE sa=sex=F ORDER BY gini DESC"),
        // TOPK + ORDER BY pages positionally in the re-sorted selection
        // (a different cursor mechanism than per-shard consumed counts).
        std::string(
            "TOPK 9 BY atkinson WHERE T >= 1 AND M >= 1 ORDER BY T DESC")}) {
    auto unpaginated = single_->ExecuteOne(base);
    ASSERT_TRUE(unpaginated.status.ok()) << base;
    ASSERT_GT(unpaginated.result.rows.size(), 4u) << base;

    const std::string paged = base + " LIMIT 3";
    std::vector<query::ResultRow> stitched;
    std::string cursor;
    size_t pages = 0;
    do {
      query::VectorSink sink;
      auto outcome = topo.scatter->ExecuteStreaming(paged, sink, {}, cursor);
      ASSERT_TRUE(outcome.status.ok()) << paged << " -> " << outcome.status;
      for (const query::ResultRow& row : sink.result().rows) {
        stitched.push_back(row);
      }
      cursor = outcome.next_cursor;
      if (!cursor.empty()) {
        // Pages that continue hand out *scatter* cursors, and they must
        // round-trip through the public codec.
        auto decoded = DecodeScatterCursor(cursor);
        ASSERT_TRUE(decoded.ok()) << decoded.status();
        EXPECT_EQ(decoded->cube, "default");
        EXPECT_EQ(decoded->consumed.size(), 4u);
        EXPECT_EQ(EncodeScatterCursor(*decoded), cursor);
      }
      ASSERT_LT(++pages, 64u) << "cursor loop did not terminate: " << base;
    } while (!cursor.empty());

    ASSERT_EQ(stitched.size(), unpaginated.result.rows.size()) << base;
    for (size_t i = 0; i < stitched.size(); ++i) {
      EXPECT_EQ(stitched[i].sa, unpaginated.result.rows[i].sa) << base;
      EXPECT_EQ(stitched[i].ca, unpaginated.result.rows[i].ca) << base;
      EXPECT_EQ(stitched[i].t, unpaginated.result.rows[i].t) << base;
      EXPECT_EQ(stitched[i].m, unpaginated.result.rows[i].m) << base;
      EXPECT_EQ(stitched[i].value, unpaginated.result.rows[i].value) << base;
    }
  }
}

TEST_F(ScatterTest, ScatterCursorCodecRejectsForeignTokens) {
  ScatterCursor cursor;
  cursor.cube = "cube|with|pipes";  // the separator char, worst case
  cursor.version = 12;
  cursor.query_hash = 0xdeadbeefcafef00dULL;
  cursor.consumed = {0, 17, 3};
  auto decoded = DecodeScatterCursor(EncodeScatterCursor(cursor));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->cube, cursor.cube);
  EXPECT_EQ(decoded->version, cursor.version);
  EXPECT_EQ(decoded->query_hash, cursor.query_hash);
  EXPECT_EQ(decoded->consumed, cursor.consumed);

  EXPECT_FALSE(DecodeScatterCursor("garbage!").ok());
  EXPECT_FALSE(DecodeScatterCursor("").ok());
  // A single-node cursor is a different magic — must not half-parse.
  EXPECT_FALSE(DecodeScatterCursor("c2NxMXw0fDB8ZGVmYXVsdA").ok());
}

TEST_F(ScatterTest, CursorFromAnotherTopologyIsRejected) {
  Topology two(2);
  query::VectorSink sink;
  auto outcome =
      two.scatter->ExecuteStreaming("DICE sa=sex=F LIMIT 2", sink, {}, "");
  ASSERT_TRUE(outcome.status.ok()) << outcome.status;
  ASSERT_FALSE(outcome.next_cursor.empty());

  Topology four(4);
  query::VectorSink sink2;
  auto resumed = four.scatter->ExecuteStreaming("DICE sa=sex=F LIMIT 2",
                                                sink2, {},
                                                outcome.next_cursor);
  EXPECT_FALSE(resumed.status.ok());
  EXPECT_NE(resumed.status.message().find("topology"), std::string::npos)
      << resumed.status;

  // A single-node token is rejected up front, too.
  auto page1 = single_->ExecuteOne("DICE sa=sex=F LIMIT 2");
  ASSERT_TRUE(page1.status.ok());
  ASSERT_FALSE(page1.result.next_cursor.empty());
  query::VectorSink sink3;
  auto foreign = two.scatter->ExecuteStreaming(
      "DICE sa=sex=F LIMIT 2", sink3, {}, page1.result.next_cursor);
  EXPECT_FALSE(foreign.status.ok());
}

TEST_F(ScatterTest, FailedShardErrorNamesTheShard) {
  Topology topo(2);
  topo.shards[1]->server->Stop();

  query::VectorSink sink;
  auto outcome =
      topo.scatter->ExecuteStreaming("DICE sa=sex=F", sink, {}, "");
  ASSERT_FALSE(outcome.status.ok());
  EXPECT_NE(outcome.status.message().find("shard 1 (127.0.0.1:"),
            std::string::npos)
      << outcome.status;
}

TEST_F(ScatterTest, AllowPartialDegradesAnalyticVerbsOnly) {
  Topology topo(4);
  topo.shards[2]->server->Stop();

  query::QueryContext partial;
  partial.allow_partial = true;

  // TOPK answers from the three live shards; no resume cursor is handed
  // out for a partial answer, even with LIMIT.
  query::VectorSink topk;
  auto analytic = topo.scatter->ExecuteStreaming(
      "TOPK 5 BY gini WHERE T >= 1 AND M >= 1 LIMIT 3", topk, partial, "");
  ASSERT_TRUE(analytic.status.ok()) << analytic.status;
  EXPECT_FALSE(topk.result().rows.empty());
  EXPECT_TRUE(analytic.next_cursor.empty())
      << "partial answers must not be resumable";

  // Navigation verbs never degrade: missing cells would be silent lies.
  query::VectorSink dice;
  auto navigation =
      topo.scatter->ExecuteStreaming("DICE sa=sex=F", dice, partial, "");
  EXPECT_FALSE(navigation.status.ok());
  EXPECT_NE(navigation.status.message().find("shard 2"), std::string::npos)
      << navigation.status;
}

TEST_F(ScatterTest, ListCubesIntersectsAgreeingShards) {
  Topology topo(2);
  auto cubes = topo.scatter->ListCubes();
  ASSERT_EQ(cubes.size(), 1u);
  EXPECT_EQ(cubes[0].name, "default");
  EXPECT_EQ(cubes[0].version, 1u);
  // Cells are summed across shards, ghosts counted once per holder — so
  // at least the global count.
  cube::CubeView view = MakeGlobalCube().Seal(1);
  EXPECT_GE(cubes[0].cells, view.NumCells());
}

TEST_F(ScatterTest, RouterServerServesScatterOverHttp) {
  Topology topo(2);
  server::ScubedServer router(topo.scatter.get(), MakeServerOptions());
  ASSERT_TRUE(router.Start().ok());

  auto connected = net::Connect("127.0.0.1", router.port());
  ASSERT_TRUE(connected.ok());
  net::Socket socket = std::move(connected).value();
  net::BufferedReader reader(&socket);
  auto resp = net::RoundTrip(&socket, &reader, "POST", "/query",
                             "DICE sa=sex=F");
  ASSERT_TRUE(resp.ok()) << resp.status();
  EXPECT_EQ(resp->status, 200);
  EXPECT_NE(resp->body.find("\"code\":\"OK\""), std::string::npos)
      << resp->body;

  auto metrics = net::RoundTrip(&socket, &reader, "GET", "/metrics");
  ASSERT_TRUE(metrics.ok());
  EXPECT_NE(metrics->body.find("scubed_shard_requests_total"),
            std::string::npos);
  EXPECT_NE(metrics->body.find("scubed_shard_rtt_seconds"),
            std::string::npos);
  router.Stop();
}

}  // namespace
}  // namespace cluster
}  // namespace scube
