#include "fpm/transaction_db.h"

#include <gtest/gtest.h>

namespace scube {
namespace fpm {
namespace {

TransactionDb SmallDb() {
  // Classic 5-transaction example.
  TransactionDb db;
  db.AddTransaction({0, 1, 2});     // t0
  db.AddTransaction({0, 1});        // t1
  db.AddTransaction({1, 2});        // t2
  db.AddTransaction({0, 2, 3});     // t3
  db.AddTransaction({3});           // t4
  return db;
}

TEST(TransactionDbTest, BasicCounts) {
  TransactionDb db = SmallDb();
  EXPECT_EQ(db.NumTransactions(), 5u);
  EXPECT_EQ(db.NumItems(), 4u);
  EXPECT_EQ(db.TotalItemOccurrences(), 11u);
}

TEST(TransactionDbTest, TransactionsAreSortedAndDeduped) {
  TransactionDb db;
  db.AddTransaction({3, 1, 3, 2, 1});
  EXPECT_EQ(db.Transaction(0), (std::vector<ItemId>{1, 2, 3}));
  EXPECT_EQ(db.TotalItemOccurrences(), 3u);
}

TEST(TransactionDbTest, ItemSupports) {
  TransactionDb db = SmallDb();
  EXPECT_EQ(db.ItemSupport(0), 3u);
  EXPECT_EQ(db.ItemSupport(1), 3u);
  EXPECT_EQ(db.ItemSupport(2), 3u);
  EXPECT_EQ(db.ItemSupport(3), 2u);
  EXPECT_EQ(db.ItemSupport(99), 0u);  // unseen item
}

TEST(TransactionDbTest, ItemCovers) {
  TransactionDb db = SmallDb();
  EXPECT_EQ(db.ItemCover(0).ToIndices(), (std::vector<uint64_t>{0, 1, 3}));
  EXPECT_EQ(db.ItemCover(3).ToIndices(), (std::vector<uint64_t>{3, 4}));
}

TEST(TransactionDbTest, ItemsetCoverAndSupport) {
  TransactionDb db = SmallDb();
  EXPECT_EQ(db.Cover(Itemset({0, 1})).ToIndices(),
            (std::vector<uint64_t>{0, 1}));
  EXPECT_EQ(db.Support(Itemset({0, 1})), 2u);
  EXPECT_EQ(db.Support(Itemset({0, 1, 2})), 1u);
  EXPECT_EQ(db.Support(Itemset({1, 3})), 0u);
  EXPECT_EQ(db.Support(Itemset({2})), 3u);
}

TEST(TransactionDbTest, EmptyItemsetCoversEverything) {
  TransactionDb db = SmallDb();
  EXPECT_EQ(db.Support(Itemset()), 5u);
  EXPECT_EQ(db.Cover(Itemset()).Cardinality(), 5u);
}

TEST(TransactionDbTest, CoversRefreshAfterAppend) {
  TransactionDb db;
  db.AddTransaction({0});
  EXPECT_EQ(db.ItemSupport(0), 1u);
  db.AddTransaction({0, 1});
  EXPECT_EQ(db.ItemSupport(0), 2u);
  EXPECT_EQ(db.ItemSupport(1), 1u);
}

TEST(TransactionDbTest, EmptyTransactionAllowed) {
  TransactionDb db;
  db.AddTransaction({});
  db.AddTransaction({0});
  EXPECT_EQ(db.NumTransactions(), 2u);
  EXPECT_EQ(db.ItemSupport(0), 1u);
  EXPECT_EQ(db.Support(Itemset()), 2u);
}

}  // namespace
}  // namespace fpm
}  // namespace scube
