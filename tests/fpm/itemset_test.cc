#include "fpm/itemset.h"

#include <gtest/gtest.h>

namespace scube {
namespace fpm {
namespace {

TEST(ItemsetTest, ConstructionSortsAndDedups) {
  Itemset s({5, 1, 3, 1, 5});
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s.items(), (std::vector<ItemId>{1, 3, 5}));
}

TEST(ItemsetTest, EmptySet) {
  Itemset s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0u);
  EXPECT_EQ(s, Itemset::Empty());
  EXPECT_EQ(s.DebugString(), "[]");
}

TEST(ItemsetTest, Contains) {
  Itemset s({2, 4, 6});
  EXPECT_TRUE(s.Contains(2));
  EXPECT_TRUE(s.Contains(4));
  EXPECT_TRUE(s.Contains(6));
  EXPECT_FALSE(s.Contains(3));
  EXPECT_FALSE(s.Contains(0));
}

TEST(ItemsetTest, SubsetRelation) {
  Itemset sub({1, 3});
  Itemset super({1, 2, 3});
  EXPECT_TRUE(sub.IsSubsetOf(super));
  EXPECT_FALSE(super.IsSubsetOf(sub));
  EXPECT_TRUE(Itemset().IsSubsetOf(sub));
  EXPECT_TRUE(sub.IsSubsetOf(sub));
}

TEST(ItemsetTest, SetOperations) {
  Itemset a({1, 2, 3});
  Itemset b({2, 3, 4});
  EXPECT_EQ(a.Union(b), Itemset({1, 2, 3, 4}));
  EXPECT_EQ(a.Minus(b), Itemset({1}));
  EXPECT_EQ(b.Minus(a), Itemset({4}));
  EXPECT_EQ(a.Intersect(b), Itemset({2, 3}));
  EXPECT_EQ(a.Union(Itemset()), a);
  EXPECT_EQ(a.Intersect(Itemset()), Itemset());
}

TEST(ItemsetTest, WithInsertsInOrder) {
  Itemset s({1, 5});
  EXPECT_EQ(s.With(3), Itemset({1, 3, 5}));
  EXPECT_EQ(s.With(0), Itemset({0, 1, 5}));
  EXPECT_EQ(s.With(9), Itemset({1, 5, 9}));
  EXPECT_EQ(s.With(5), s);
}

TEST(ItemsetTest, HashEqualityContract) {
  Itemset a({7, 8});
  Itemset b({8, 7});
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.Hash(), b.Hash());
  EXPECT_NE(a.Hash(), Itemset({7, 9}).Hash());
}

TEST(ItemsetTest, LexicographicOrder) {
  EXPECT_LT(Itemset({1, 2}), Itemset({1, 3}));
  EXPECT_LT(Itemset({1}), Itemset({1, 0xFFFF}));
  EXPECT_LT(Itemset(), Itemset({0}));
}

TEST(ItemsetTest, DebugString) {
  EXPECT_EQ(Itemset({3, 1}).DebugString(), "[1 3]");
}

}  // namespace
}  // namespace fpm
}  // namespace scube
