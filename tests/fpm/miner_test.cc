// Cross-engine miner tests: hand-checked anchors on a tiny database plus
// randomized equivalence sweeps of all engines against the brute-force
// reference, in every mode.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>

#include "common/random.h"
#include "fpm/brute_force.h"
#include "fpm/miner.h"
#include "fpm/registry.h"
#include "fpm/transaction_db.h"

namespace scube {
namespace fpm {
namespace {

TransactionDb TextbookDb() {
  // Han's textbook example (items recoded: f=0,c=1,a=2,b=3,m=4,p=5,i=6,...).
  TransactionDb db;
  db.AddTransaction({0, 2, 1, 4, 5});  // f a c m p (+dropped infrequent)
  db.AddTransaction({0, 1, 2, 3, 4});  // f c a b m
  db.AddTransaction({0, 3});           // f b
  db.AddTransaction({1, 3, 5});        // c b p
  db.AddTransaction({0, 1, 2, 4, 5});  // f c a m p
  return db;
}

std::map<Itemset, uint64_t> AsMap(const std::vector<FrequentItemset>& sets) {
  std::map<Itemset, uint64_t> m;
  for (const auto& fs : sets) m[fs.items] = fs.support;
  return m;
}

TEST(MinerOptionsTest, Validation) {
  MinerOptions bad;
  bad.min_support = 0;
  EXPECT_FALSE(ValidateMinerOptions(bad).ok());
  bad.min_support = 1;
  bad.max_length = 0;
  EXPECT_FALSE(ValidateMinerOptions(bad).ok());
}

TEST(RegistryTest, KnownAndUnknownEngines) {
  for (const std::string& name : MinerNames()) {
    auto miner = MakeMiner(name);
    ASSERT_TRUE(miner.ok()) << name;
    EXPECT_EQ(miner.value()->Name(), name);
  }
  EXPECT_FALSE(MakeMiner("does-not-exist").ok());
}

class AllEnginesTest : public ::testing::TestWithParam<std::string> {
 protected:
  std::unique_ptr<FrequentItemsetMiner> miner_ =
      std::move(MakeMiner(GetParam()).value());
};

TEST_P(AllEnginesTest, TextbookSupports) {
  TransactionDb db = TextbookDb();
  MinerOptions opts;
  opts.min_support = 3;
  auto result = miner_->Mine(db, opts);
  ASSERT_TRUE(result.ok());
  auto m = AsMap(result.value());

  // Hand-checked supports at minsup 3.
  EXPECT_EQ(m.at(Itemset({0})), 4u);        // f
  EXPECT_EQ(m.at(Itemset({1})), 4u);        // c
  EXPECT_EQ(m.at(Itemset({2})), 3u);        // a
  EXPECT_EQ(m.at(Itemset({3})), 3u);        // b
  EXPECT_EQ(m.at(Itemset({4})), 3u);        // m
  EXPECT_EQ(m.at(Itemset({5})), 3u);        // p
  EXPECT_EQ(m.at(Itemset({0, 1})), 3u);     // fc
  EXPECT_EQ(m.at(Itemset({0, 2})), 3u);     // fa
  EXPECT_EQ(m.at(Itemset({1, 2})), 3u);     // ca
  EXPECT_EQ(m.at(Itemset({0, 4})), 3u);     // fm
  EXPECT_EQ(m.at(Itemset({1, 4})), 3u);     // cm
  EXPECT_EQ(m.at(Itemset({2, 4})), 3u);     // am
  EXPECT_EQ(m.at(Itemset({1, 5})), 3u);     // cp
  EXPECT_EQ(m.at(Itemset({0, 1, 2})), 3u);  // fca
  EXPECT_EQ(m.at(Itemset({0, 1, 4})), 3u);
  EXPECT_EQ(m.at(Itemset({0, 2, 4})), 3u);
  EXPECT_EQ(m.at(Itemset({1, 2, 4})), 3u);
  EXPECT_EQ(m.at(Itemset({0, 1, 2, 4})), 3u);  // fcam
  // b pairs are all below minsup.
  EXPECT_EQ(m.count(Itemset({0, 3})), 0u);
  EXPECT_EQ(m.count(Itemset({1, 3})), 0u);
  EXPECT_EQ(m.size(), 18u);
}

TEST_P(AllEnginesTest, ClosedModeTextbook) {
  TransactionDb db = TextbookDb();
  MinerOptions opts;
  opts.min_support = 3;
  opts.mode = MineMode::kClosed;
  auto result = miner_->Mine(db, opts);
  ASSERT_TRUE(result.ok());
  auto m = AsMap(result.value());
  // Closed sets at minsup 3: {f}:4, {c}:4, {b}:3, {cp}:3, {fcam}:3, {fc}...
  // {fc} support 3 == {fcam} support -> not closed. {f}:4 closed, {c}:4
  // closed, {fcam}:3 closed, {cp}:3 closed, {b}:3 closed.
  EXPECT_EQ(m.size(), 5u);
  EXPECT_EQ(m.at(Itemset({0})), 4u);
  EXPECT_EQ(m.at(Itemset({1})), 4u);
  EXPECT_EQ(m.at(Itemset({3})), 3u);
  EXPECT_EQ(m.at(Itemset({1, 5})), 3u);
  EXPECT_EQ(m.at(Itemset({0, 1, 2, 4})), 3u);
}

TEST_P(AllEnginesTest, MaximalModeTextbook) {
  TransactionDb db = TextbookDb();
  MinerOptions opts;
  opts.min_support = 3;
  opts.mode = MineMode::kMaximal;
  auto result = miner_->Mine(db, opts);
  ASSERT_TRUE(result.ok());
  auto m = AsMap(result.value());
  EXPECT_EQ(m.size(), 3u);
  EXPECT_EQ(m.at(Itemset({3})), 3u);           // b
  EXPECT_EQ(m.at(Itemset({1, 5})), 3u);        // cp
  EXPECT_EQ(m.at(Itemset({0, 1, 2, 4})), 3u);  // fcam
}

TEST_P(AllEnginesTest, MaxLengthCap) {
  TransactionDb db = TextbookDb();
  MinerOptions opts;
  opts.min_support = 3;
  opts.max_length = 2;
  auto result = miner_->Mine(db, opts);
  ASSERT_TRUE(result.ok());
  for (const auto& fs : result.value()) {
    EXPECT_LE(fs.items.size(), 2u);
  }
  // All 6 singletons + 7 pairs.
  EXPECT_EQ(result.value().size(), 13u);
}

TEST_P(AllEnginesTest, MinSupportOneFindsEverything) {
  TransactionDb db;
  db.AddTransaction({0, 1});
  db.AddTransaction({1, 2});
  MinerOptions opts;
  opts.min_support = 1;
  auto result = miner_->Mine(db, opts);
  ASSERT_TRUE(result.ok());
  auto m = AsMap(result.value());
  EXPECT_EQ(m.size(), 5u);  // {0},{1},{2},{01},{12}
  EXPECT_EQ(m.at(Itemset({1})), 2u);
}

TEST_P(AllEnginesTest, NoFrequentItems) {
  TransactionDb db;
  db.AddTransaction({0});
  db.AddTransaction({1});
  MinerOptions opts;
  opts.min_support = 2;
  auto result = miner_->Mine(db, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().empty());
}

TEST_P(AllEnginesTest, IncludeEmptyItemset) {
  TransactionDb db;
  db.AddTransaction({0});
  db.AddTransaction({0, 1});
  MinerOptions opts;
  opts.min_support = 1;
  opts.include_empty = true;
  auto result = miner_->Mine(db, opts);
  ASSERT_TRUE(result.ok());
  auto m = AsMap(result.value());
  EXPECT_EQ(m.at(Itemset()), 2u);
}

TEST_P(AllEnginesTest, EmptyDatabase) {
  TransactionDb db;
  MinerOptions opts;
  opts.min_support = 1;
  auto result = miner_->Mine(db, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().empty());
}

INSTANTIATE_TEST_SUITE_P(Engines, AllEnginesTest,
                         ::testing::Values("fpgrowth", "eclat", "apriori",
                                           "brute-force"));

// ---------------------------------------------------------------------------
// Randomized equivalence sweep: every engine x every mode must match the
// brute-force reference exactly on random databases.
// ---------------------------------------------------------------------------

struct SweepParams {
  uint64_t seed;
  size_t num_transactions;
  size_t num_items;
  double item_prob;
  uint64_t min_support;
  uint32_t max_length;
};

class EquivalenceSweep : public ::testing::TestWithParam<SweepParams> {};

TEST_P(EquivalenceSweep, EnginesMatchBruteForce) {
  const auto& p = GetParam();
  Rng rng(p.seed);
  TransactionDb db;
  for (size_t t = 0; t < p.num_transactions; ++t) {
    std::vector<ItemId> items;
    for (size_t i = 0; i < p.num_items; ++i) {
      if (rng.NextBool(p.item_prob)) items.push_back(static_cast<ItemId>(i));
    }
    db.AddTransaction(std::move(items));
  }

  for (MineMode mode : {MineMode::kAll, MineMode::kClosed, MineMode::kMaximal}) {
    MinerOptions opts;
    opts.min_support = p.min_support;
    opts.max_length = p.max_length;
    opts.mode = mode;
    BruteForceMiner reference;
    auto expected = reference.Mine(db, opts);
    ASSERT_TRUE(expected.ok());
    for (const char* name : {"fpgrowth", "eclat", "apriori"}) {
      auto miner = MakeMiner(name);
      ASSERT_TRUE(miner.ok());
      auto actual = miner.value()->Mine(db, opts);
      ASSERT_TRUE(actual.ok()) << name;
      EXPECT_EQ(actual.value().size(), expected.value().size())
          << name << " mode=" << static_cast<int>(mode);
      ASSERT_EQ(actual.value(), expected.value())
          << name << " mode=" << static_cast<int>(mode);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomDbs, EquivalenceSweep,
    ::testing::Values(
        SweepParams{101, 30, 8, 0.4, 2, 32},
        SweepParams{102, 50, 6, 0.5, 3, 32},
        SweepParams{103, 20, 10, 0.3, 2, 4},   // length-capped
        SweepParams{104, 80, 5, 0.6, 5, 32},   // dense
        SweepParams{105, 40, 12, 0.15, 2, 3},  // sparse, capped
        SweepParams{106, 10, 4, 0.9, 2, 32},   // tiny and very dense
        SweepParams{107, 60, 7, 0.45, 6, 32},
        SweepParams{108, 25, 9, 0.35, 1, 32}));  // minsup 1

}  // namespace
}  // namespace fpm
}  // namespace scube
