#include "viz/zip_writer.h"

#include <gtest/gtest.h>

namespace scube {
namespace viz {
namespace {

uint32_t ReadU32(const std::string& data, size_t offset) {
  return static_cast<uint8_t>(data[offset]) |
         (static_cast<uint8_t>(data[offset + 1]) << 8) |
         (static_cast<uint8_t>(data[offset + 2]) << 16) |
         (static_cast<uint32_t>(static_cast<uint8_t>(data[offset + 3]))
          << 24);
}

uint16_t ReadU16(const std::string& data, size_t offset) {
  return static_cast<uint16_t>(static_cast<uint8_t>(data[offset]) |
                               (static_cast<uint8_t>(data[offset + 1]) << 8));
}

TEST(Crc32Test, KnownVectors) {
  // Standard test vectors for CRC-32/IEEE.
  EXPECT_EQ(Crc32(""), 0x00000000u);
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32("a"), 0xE8B7BE43u);
  EXPECT_EQ(Crc32("The quick brown fox jumps over the lazy dog"),
            0x414FA339u);
}

TEST(ZipWriterTest, EmptyArchiveIsJustEocd) {
  ZipWriter zip;
  std::string bytes = zip.Serialize();
  ASSERT_EQ(bytes.size(), 22u);  // bare end-of-central-directory record
  EXPECT_EQ(ReadU32(bytes, 0), 0x06054B50u);
  EXPECT_EQ(ReadU16(bytes, 10), 0u);  // zero entries
}

TEST(ZipWriterTest, SingleEntryStructure) {
  ZipWriter zip;
  zip.AddFile("hello.txt", "hello world");
  std::string bytes = zip.Serialize();

  // Local header at offset 0.
  EXPECT_EQ(ReadU32(bytes, 0), 0x04034B50u);
  EXPECT_EQ(ReadU16(bytes, 8), 0u);  // stored
  EXPECT_EQ(ReadU32(bytes, 14), Crc32("hello world"));
  EXPECT_EQ(ReadU32(bytes, 18), 11u);  // compressed size
  EXPECT_EQ(ReadU32(bytes, 22), 11u);  // uncompressed size
  EXPECT_EQ(ReadU16(bytes, 26), 9u);   // name length
  EXPECT_EQ(bytes.substr(30, 9), "hello.txt");
  EXPECT_EQ(bytes.substr(39, 11), "hello world");

  // Central directory follows the data.
  size_t cd = 30 + 9 + 11;
  EXPECT_EQ(ReadU32(bytes, cd), 0x02014B50u);

  // EOCD at the tail, pointing at the central directory.
  size_t eocd = bytes.size() - 22;
  EXPECT_EQ(ReadU32(bytes, eocd), 0x06054B50u);
  EXPECT_EQ(ReadU16(bytes, eocd + 10), 1u);            // entries
  EXPECT_EQ(ReadU32(bytes, eocd + 16), cd);            // cd offset
}

TEST(ZipWriterTest, MultipleEntriesOffsetsConsistent) {
  ZipWriter zip;
  zip.AddFile("a.txt", "AAAA");
  zip.AddFile("dir/b.txt", "BBBBBBBB");
  zip.AddFile("c.txt", "");
  std::string bytes = zip.Serialize();
  EXPECT_EQ(zip.NumEntries(), 3u);

  size_t eocd = bytes.size() - 22;
  EXPECT_EQ(ReadU16(bytes, eocd + 10), 3u);
  uint32_t cd_offset = ReadU32(bytes, eocd + 16);
  // First central record references local header offset 0 and name a.txt.
  EXPECT_EQ(ReadU32(bytes, cd_offset), 0x02014B50u);
  EXPECT_EQ(ReadU32(bytes, cd_offset + 42), 0u);
  EXPECT_EQ(bytes.substr(cd_offset + 46, 5), "a.txt");
}

TEST(ZipWriterTest, RoundTripsThroughSystemUnzipIfAvailable) {
  // Structural check only: every local signature is locatable via the
  // central directory (a common validity predicate of unzip tools).
  ZipWriter zip;
  zip.AddFile("x/y/z.xml", "<z/>");
  zip.AddFile("top.xml", "<top attribute=\"1\"/>");
  std::string bytes = zip.Serialize();
  size_t eocd = bytes.size() - 22;
  uint32_t cd_offset = ReadU32(bytes, eocd + 16);
  size_t pos = cd_offset;
  int entries = 0;
  while (pos + 4 <= bytes.size() && ReadU32(bytes, pos) == 0x02014B50u) {
    uint16_t name_len = ReadU16(bytes, pos + 28);
    uint32_t local_offset = ReadU32(bytes, pos + 42);
    EXPECT_EQ(ReadU32(bytes, local_offset), 0x04034B50u);
    pos += 46 + name_len;
    ++entries;
  }
  EXPECT_EQ(entries, 2);
}

}  // namespace
}  // namespace viz
}  // namespace scube
