#include "viz/svg.h"

#include <gtest/gtest.h>

namespace scube {
namespace viz {
namespace {

TEST(SvgCanvasTest, DocumentStructure) {
  SvgCanvas canvas(200, 100);
  canvas.Line(0, 0, 10, 10, "#000");
  canvas.Circle(5, 5, 2, "red");
  canvas.Rect(1, 1, 4, 4, "blue", "#333");
  canvas.Polygon({0, 0, 10, 0, 5, 8}, "#ABCDEF", 0.5, "none");
  canvas.Text(3, 3, "hello", 12, "middle");
  std::string svg = canvas.Finish();
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("width=\"200.00\""), std::string::npos);
  EXPECT_NE(svg.find("<line"), std::string::npos);
  EXPECT_NE(svg.find("<circle"), std::string::npos);
  EXPECT_NE(svg.find("<rect"), std::string::npos);
  EXPECT_NE(svg.find("<polygon"), std::string::npos);
  EXPECT_NE(svg.find(">hello</text>"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
}

TEST(SvgCanvasTest, TextIsXmlEscaped) {
  SvgCanvas canvas(10, 10);
  canvas.Text(0, 0, "a<b & c");
  EXPECT_NE(canvas.Finish().find("a&lt;b &amp; c"), std::string::npos);
}

TEST(HeatColorTest, RampEndpoints) {
  EXPECT_EQ(HeatColor(0.0), "#FFFFFF");
  EXPECT_EQ(HeatColor(1.0), "#FF260D");
  EXPECT_EQ(HeatColor(-5.0), "#FFFFFF");  // clamped
  EXPECT_EQ(HeatColor(9.0), "#FF260D");
}

TEST(RadialChartTest, RendersSixAxes) {
  RadialChartSpec spec;
  spec.title = "segregation per sector";
  spec.axes = {"dissimilarity", "gini", "information",
               "isolation", "interaction", "atkinson"};
  spec.series.push_back({"manufacturing", {0.5, 0.6, 0.3, 0.4, 0.6, 0.5},
                         "#c0392b"});
  spec.series.push_back({"education", {0.2, 0.3, 0.1, 0.2, 0.8, 0.2},
                         "#2980b9"});
  auto svg = RenderRadialChart(spec);
  ASSERT_TRUE(svg.ok()) << svg.status();
  EXPECT_NE(svg->find("segregation per sector"), std::string::npos);
  EXPECT_NE(svg->find("manufacturing"), std::string::npos);
  EXPECT_NE(svg->find("dissimilarity"), std::string::npos);
  // 4 rings + 2 series polygons.
  size_t count = 0;
  for (size_t pos = svg->find("<polygon"); pos != std::string::npos;
       pos = svg->find("<polygon", pos + 1)) {
    ++count;
  }
  EXPECT_EQ(count, 6u);
}

TEST(RadialChartTest, Validation) {
  RadialChartSpec spec;
  spec.axes = {"a", "b"};  // too few
  EXPECT_FALSE(RenderRadialChart(spec).ok());

  spec.axes = {"a", "b", "c"};
  spec.series.push_back({"s", {0.1, 0.2}, "#000"});  // length mismatch
  EXPECT_FALSE(RenderRadialChart(spec).ok());
}

TEST(BarChartTest, RendersBars) {
  BarChartSpec spec;
  spec.title = "female dissimilarity";
  spec.bars = {{"Milano", 0.21}, {"Napoli", 0.34}, {"Palermo", 0.41}};
  auto svg = RenderBarChart(spec);
  ASSERT_TRUE(svg.ok());
  EXPECT_NE(svg->find("Milano"), std::string::npos);
  EXPECT_NE(svg->find("0.410"), std::string::npos);
  EXPECT_FALSE(RenderBarChart(BarChartSpec{}).ok());  // empty
}

TEST(LineChartTest, RendersSeriesAndLegend) {
  LineChartSpec spec;
  spec.title = "female share by year";
  spec.x_labels = {"1995", "1996", "1997", "1998"};
  spec.series.push_back({"share", {0.2, 0.25, 0.3, 0.35}, "#2980b9"});
  spec.series.push_back({"dissimilarity", {0.4, 0.38, 0.36, 0.33},
                         "#c0392b"});
  auto svg = RenderLineChart(spec);
  ASSERT_TRUE(svg.ok()) << svg.status();
  EXPECT_NE(svg->find("female share by year"), std::string::npos);
  EXPECT_NE(svg->find("1995"), std::string::npos);
  EXPECT_NE(svg->find("dissimilarity"), std::string::npos);
  // 2 series x 4 points of markers.
  size_t circles = 0;
  for (size_t pos = svg->find("<circle"); pos != std::string::npos;
       pos = svg->find("<circle", pos + 1)) {
    ++circles;
  }
  EXPECT_EQ(circles, 8u);
}

TEST(LineChartTest, Validation) {
  LineChartSpec spec;
  spec.x_labels = {"a"};  // too few points
  EXPECT_FALSE(RenderLineChart(spec).ok());
  spec.x_labels = {"a", "b"};
  spec.series.push_back({"s", {0.1}, "#000"});  // length mismatch
  EXPECT_FALSE(RenderLineChart(spec).ok());
  spec.series.clear();
  spec.y_max = 0.0;
  EXPECT_FALSE(RenderLineChart(spec).ok());
}

TEST(TileMapTest, RendersTilesWithLegend) {
  TileMapSpec spec;
  spec.title = "dissimilarity by province";
  spec.tiles = {{"Milano", 0.2}, {"Torino", 0.25}, {"Napoli", 0.45},
                {"Bari", 0.5},   {"Palermo", 0.6}, {"Catania", 0.55}};
  spec.columns = 3;
  auto svg = RenderTileMap(spec);
  ASSERT_TRUE(svg.ok());
  EXPECT_NE(svg->find("Palermo"), std::string::npos);
  EXPECT_NE(svg->find("0.600"), std::string::npos);

  TileMapSpec empty;
  EXPECT_FALSE(RenderTileMap(empty).ok());
  TileMapSpec zero_cols = spec;
  zero_cols.columns = 0;
  EXPECT_FALSE(RenderTileMap(zero_cols).ok());
}

}  // namespace
}  // namespace viz
}  // namespace scube
