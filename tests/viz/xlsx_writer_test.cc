#include "viz/xlsx_writer.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "cube/builder.h"

namespace scube {
namespace viz {
namespace {

TEST(CellRefTest, Letters) {
  EXPECT_EQ(XlsxWriter::CellRef(0, 0), "A1");
  EXPECT_EQ(XlsxWriter::CellRef(1, 1), "B2");
  EXPECT_EQ(XlsxWriter::CellRef(0, 25), "Z1");
  EXPECT_EQ(XlsxWriter::CellRef(0, 26), "AA1");
  EXPECT_EQ(XlsxWriter::CellRef(9, 27), "AB10");
  EXPECT_EQ(XlsxWriter::CellRef(0, 701), "ZZ1");
  EXPECT_EQ(XlsxWriter::CellRef(0, 702), "AAA1");
}

TEST(XmlEscapeTest, Entities) {
  EXPECT_EQ(XlsxWriter::XmlEscape("a<b>&\"'c"),
            "a&lt;b&gt;&amp;&quot;&apos;c");
  EXPECT_EQ(XlsxWriter::XmlEscape("plain"), "plain");
}

TEST(XlsxWriterTest, SheetNameValidation) {
  XlsxWriter writer;
  EXPECT_FALSE(writer.AddSheet("").ok());
  EXPECT_FALSE(writer.AddSheet(std::string(32, 'x')).ok());
  EXPECT_FALSE(writer.AddSheet("bad/name").ok());
  EXPECT_FALSE(writer.AddSheet("bad:name").ok());
  ASSERT_TRUE(writer.AddSheet("fine").ok());
  EXPECT_FALSE(writer.AddSheet("fine").ok());  // duplicate
}

TEST(XlsxWriterTest, EmptyWorkbookRejected) {
  XlsxWriter writer;
  EXPECT_EQ(writer.Serialize().status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(XlsxWriterTest, SerializedPackageHasAllParts) {
  XlsxWriter writer;
  auto sheet = writer.AddSheet("data");
  ASSERT_TRUE(sheet.ok());
  sheet.value()->AddRow({std::string("name"), std::string("value")});
  sheet.value()->AddRow({std::string("dissimilarity"), 0.78});
  sheet.value()->AddRow({std::string("count"), int64_t{42}});
  auto second = writer.AddSheet("more");
  ASSERT_TRUE(second.ok());
  second.value()->AddRow({int64_t{1}});

  auto bytes = writer.Serialize();
  ASSERT_TRUE(bytes.ok());
  const std::string& b = bytes.value();
  // ZIP magic.
  EXPECT_EQ(b.substr(0, 2), "PK");
  // All OOXML part names present.
  EXPECT_NE(b.find("[Content_Types].xml"), std::string::npos);
  EXPECT_NE(b.find("_rels/.rels"), std::string::npos);
  EXPECT_NE(b.find("xl/workbook.xml"), std::string::npos);
  EXPECT_NE(b.find("xl/worksheets/sheet1.xml"), std::string::npos);
  EXPECT_NE(b.find("xl/worksheets/sheet2.xml"), std::string::npos);
  // Stored entries are readable in the raw stream: check cell payloads.
  EXPECT_NE(b.find("<is><t>dissimilarity</t></is>"), std::string::npos);
  EXPECT_NE(b.find("<v>0.7800000000</v>"), std::string::npos);
  EXPECT_NE(b.find("<v>42</v>"), std::string::npos);
  EXPECT_NE(b.find("sheet name=\"data\""), std::string::npos);
}

TEST(XlsxWriterTest, EscapesSheetContent) {
  XlsxWriter writer;
  auto sheet = writer.AddSheet("s");
  ASSERT_TRUE(sheet.ok());
  sheet.value()->AddRow({std::string("a<b&c")});
  auto bytes = writer.Serialize();
  ASSERT_TRUE(bytes.ok());
  EXPECT_NE(bytes->find("a&lt;b&amp;c"), std::string::npos);
  EXPECT_EQ(bytes->find("a<b&c"), std::string::npos);
}

TEST(WriteCubeXlsxTest, ProducesFileFromRealCube) {
  using relational::AttributeKind;
  using relational::ColumnType;
  relational::Schema schema({
      {"gender", ColumnType::kCategorical, AttributeKind::kSegregation},
      {"unitID", ColumnType::kCategorical, AttributeKind::kUnit},
  });
  relational::Table t(schema);
  ASSERT_TRUE(t.AppendRowFromStrings({"F", "u0"}).ok());
  ASSERT_TRUE(t.AppendRowFromStrings({"M", "u0"}).ok());
  ASSERT_TRUE(t.AppendRowFromStrings({"F", "u1"}).ok());
  ASSERT_TRUE(t.AppendRowFromStrings({"M", "u1"}).ok());
  cube::CubeBuilderOptions opts;
  opts.mode = fpm::MineMode::kAll;
  auto built = cube::BuildSegregationCube(t, opts);
  ASSERT_TRUE(built.ok());

  std::string path = ::testing::TempDir() + "/scube_test.xlsx";
  ASSERT_TRUE(WriteCubeXlsx(std::move(built).value().Seal(), path).ok());
  auto content = ReadFileToString(path);
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(content->substr(0, 2), "PK");
  EXPECT_NE(content->find("gender=F"), std::string::npos);
  EXPECT_NE(content->find("summary"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace viz
}  // namespace scube
