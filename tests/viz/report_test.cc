#include "viz/report.h"

#include <gtest/gtest.h>

#include "cube/builder.h"

namespace scube {
namespace viz {
namespace {

using relational::AttributeKind;
using relational::ColumnType;
using relational::Schema;
using relational::Table;

cube::CubeView Fig1StyleCube() {
  Schema schema({
      {"sex", ColumnType::kCategorical, AttributeKind::kSegregation},
      {"age", ColumnType::kCategorical, AttributeKind::kSegregation},
      {"region", ColumnType::kCategorical, AttributeKind::kContext},
      {"unitID", ColumnType::kCategorical, AttributeKind::kUnit},
  });
  Table t(schema);
  const char* rows[][4] = {
      {"female", "young", "north", "u0"}, {"female", "young", "north", "u0"},
      {"male", "young", "north", "u0"},   {"male", "elder", "north", "u1"},
      {"female", "elder", "north", "u1"}, {"male", "young", "north", "u1"},
      {"female", "young", "south", "u2"}, {"male", "elder", "south", "u2"},
      {"male", "elder", "south", "u2"},   {"female", "elder", "south", "u3"},
      {"male", "young", "south", "u3"},   {"female", "young", "south", "u3"},
  };
  for (const auto& r : rows) {
    EXPECT_TRUE(t.AppendRowFromStrings({r[0], r[1], r[2], r[3]}).ok());
  }
  cube::CubeBuilderOptions opts;
  opts.mode = fpm::MineMode::kAll;
  opts.max_sa_items = 2;
  opts.max_ca_items = 1;
  auto cube = cube::BuildSegregationCube(t, opts);
  EXPECT_TRUE(cube.ok()) << cube.status();
  return std::move(cube).value().Seal();
}

TEST(PivotTableTest, Fig1StyleGrid) {
  cube::CubeView cube = Fig1StyleCube();
  PivotSpec spec;
  spec.sa_attribute = "sex";
  spec.ca_attribute = "region";
  auto table = RenderPivotTable(cube, spec);
  ASSERT_TRUE(table.ok()) << table.status();
  const std::string& text = table.value();

  // Header row + female/male/* rows.
  EXPECT_NE(text.find("sex\\region"), std::string::npos);
  EXPECT_NE(text.find("north"), std::string::npos);
  EXPECT_NE(text.find("south"), std::string::npos);
  EXPECT_NE(text.find("female"), std::string::npos);
  EXPECT_NE(text.find("male"), std::string::npos);
  // The ⋆ subgroup row is all "-" (undefined: M = T).
  EXPECT_NE(text.find("*"), std::string::npos);
  EXPECT_NE(text.find("-"), std::string::npos);
  // 4 lines: header + 3 rows.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 4);
  // The (female | *) global dissimilarity is 1/3 -> printed as 0.33.
  EXPECT_NE(text.find("0.33"), std::string::npos);
}

TEST(PivotTableTest, FixedCoordinateSlab) {
  cube::CubeView cube = Fig1StyleCube();
  const auto& cat = cube.catalog();
  fpm::ItemId young = cat.Find(1, "young");
  ASSERT_NE(young, fpm::kInvalidItem);
  PivotSpec spec;
  spec.sa_attribute = "sex";
  spec.ca_attribute = "region";
  spec.fixed_sa = fpm::Itemset({young});  // the age=young slab of Fig. 1
  auto table = RenderPivotTable(cube, spec);
  ASSERT_TRUE(table.ok());
  // The (⋆-sex, age=young | ...) row now carries defined values.
  EXPECT_NE(table->find("0."), std::string::npos);
}

TEST(PivotTableTest, UnknownAttributesRejected) {
  cube::CubeView cube = Fig1StyleCube();
  PivotSpec spec;
  spec.sa_attribute = "nope";
  spec.ca_attribute = "region";
  EXPECT_EQ(RenderPivotTable(cube, spec).status().code(),
            StatusCode::kNotFound);
  spec.sa_attribute = "sex";
  spec.ca_attribute = "nope";
  EXPECT_EQ(RenderPivotTable(cube, spec).status().code(),
            StatusCode::kNotFound);
}

TEST(TopContextsTest, RendersRankedRows) {
  cube::CubeView cube = Fig1StyleCube();
  cube::ExplorerOptions opts;
  opts.min_context_size = 1;
  opts.min_minority_size = 1;
  std::string text = RenderTopContexts(
      cube, indexes::IndexKind::kDissimilarity, 5, opts);
  EXPECT_NE(text.find("dissimilarity"), std::string::npos);
  EXPECT_NE(text.find("sex="), std::string::npos);
  // Header + up to 5 rows.
  EXPECT_LE(std::count(text.begin(), text.end(), '\n'), 6);
  EXPECT_GE(std::count(text.begin(), text.end(), '\n'), 2);
}

TEST(CellSummaryTest, RendersAllSixIndexes) {
  cube::CubeView cube = Fig1StyleCube();
  const auto& cat = cube.catalog();
  fpm::ItemId female = cat.Find(0, "female");
  const cube::CubeCell* cell = cube.Find(fpm::Itemset({female}),
                                         fpm::Itemset());
  ASSERT_NE(cell, nullptr);
  std::string text = RenderCellSummary(cube, *cell);
  for (indexes::IndexKind kind : indexes::AllIndexKinds()) {
    EXPECT_NE(text.find(indexes::IndexKindToString(kind)),
              std::string::npos);
  }
  EXPECT_NE(text.find("T=12"), std::string::npos);
  EXPECT_NE(text.find("M=6"), std::string::npos);
}

TEST(CellSummaryTest, UndefinedCellExplained) {
  cube::CubeView cube = Fig1StyleCube();
  const cube::CubeCell* root = cube.Find(fpm::Itemset(), fpm::Itemset());
  ASSERT_NE(root, nullptr);
  std::string text = RenderCellSummary(cube, *root);
  EXPECT_NE(text.find("undefined"), std::string::npos);
}

}  // namespace
}  // namespace viz
}  // namespace scube
