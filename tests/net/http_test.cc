#include "net/http.h"

#include <gtest/gtest.h>

#include <sys/socket.h>

#include <string>
#include <utility>

#include "net/socket.h"

namespace scube {
namespace net {
namespace {

/// A connected socket pair: write raw bytes into `feeder`, parse from
/// `reader_socket`.
struct Pair {
  Socket feeder;
  Socket reader_socket;

  Pair() {
    int fds[2] = {-1, -1};
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    feeder = Socket(fds[0]);
    reader_socket = Socket(fds[1]);
  }
};

HttpRequest MustParse(const std::string& raw) {
  Pair pair;
  EXPECT_TRUE(pair.feeder.WriteAll(raw).ok());
  pair.feeder.Close();  // EOF so body reads terminate
  BufferedReader reader(&pair.reader_socket);
  auto line = reader.ReadLine();
  EXPECT_TRUE(line.ok()) << line.status();
  auto request = ReadHttpRequest(&reader, *line);
  EXPECT_TRUE(request.ok()) << request.status();
  return std::move(request).value();
}

TEST(HttpSniffTest, SeparatesHttpFromLineProtocol) {
  EXPECT_TRUE(SniffsAsHttp("GET / HTTP/1.1"));
  EXPECT_TRUE(SniffsAsHttp("POST /query?format=csv HTTP/1.0"));
  EXPECT_FALSE(SniffsAsHttp("TOPK 5 BY dissimilarity"));
  EXPECT_FALSE(SniffsAsHttp("SLICE sa=gender=F"));
  EXPECT_FALSE(SniffsAsHttp(""));
  EXPECT_FALSE(SniffsAsHttp("hello"));
}

TEST(UrlDecodeTest, DecodesEscapesAndPlus) {
  EXPECT_EQ(UrlDecode("a%20b"), "a b");
  EXPECT_EQ(UrlDecode("a+b"), "a b");
  EXPECT_EQ(UrlDecode("T%20%3E%3D%2030"), "T >= 30");
  EXPECT_EQ(UrlDecode("100%"), "100%");  // bad escape passes through
}

TEST(ParseTargetTest, SplitsPathAndParams) {
  std::string path;
  std::map<std::string, std::string> params;
  ParseTarget("/query?format=csv&deadline_ms=250", &path, &params);
  EXPECT_EQ(path, "/query");
  EXPECT_EQ(params["format"], "csv");
  EXPECT_EQ(params["deadline_ms"], "250");

  ParseTarget("/healthz", &path, &params);
  EXPECT_EQ(path, "/healthz");
  EXPECT_TRUE(params.empty());
}

TEST(HttpRequestTest, ParsesGetWithHeaders) {
  HttpRequest req = MustParse(
      "GET /metrics HTTP/1.1\r\n"
      "Host: localhost\r\n"
      "X-Custom: value\r\n"
      "\r\n");
  EXPECT_EQ(req.method, "GET");
  EXPECT_EQ(req.path, "/metrics");
  EXPECT_EQ(req.Header("host"), "localhost");
  EXPECT_EQ(req.Header("x-custom"), "value");
  EXPECT_TRUE(req.keep_alive);  // HTTP/1.1 default
}

TEST(HttpRequestTest, ParsesPostBodyByContentLength) {
  std::string body = "TOPK 5 BY dissimilarity\nSLICE sa=sex=F";
  HttpRequest req = MustParse(
      "POST /query?format=json HTTP/1.1\r\n"
      "Content-Length: " + std::to_string(body.size()) + "\r\n"
      "\r\n" + body);
  EXPECT_EQ(req.method, "POST");
  EXPECT_EQ(req.path, "/query");
  EXPECT_EQ(req.Param("format"), "json");
  EXPECT_EQ(req.body, body);
}

TEST(HttpRequestTest, ConnectionCloseAndHttp10Defaults) {
  HttpRequest close_req = MustParse(
      "GET / HTTP/1.1\r\nConnection: close\r\n\r\n");
  EXPECT_FALSE(close_req.keep_alive);
  HttpRequest http10 = MustParse("GET / HTTP/1.0\r\n\r\n");
  EXPECT_FALSE(http10.keep_alive);
  HttpRequest http10_keep = MustParse(
      "GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n");
  EXPECT_TRUE(http10_keep.keep_alive);
}

TEST(HttpRequestTest, RejectsMalformedAndOversized) {
  Pair pair;
  ASSERT_TRUE(pair.feeder.WriteAll("BROKEN\r\n\r\n").ok());
  pair.feeder.Close();
  BufferedReader reader(&pair.reader_socket);
  auto line = reader.ReadLine();
  ASSERT_TRUE(line.ok());
  EXPECT_FALSE(ReadHttpRequest(&reader, *line).ok());

  Pair big;
  ASSERT_TRUE(big.feeder
                  .WriteAll("POST /query HTTP/1.1\r\n"
                            "Content-Length: 999999999\r\n\r\n")
                  .ok());
  big.feeder.Close();
  BufferedReader big_reader(&big.reader_socket);
  auto big_line = big_reader.ReadLine();
  ASSERT_TRUE(big_line.ok());
  auto status = ReadHttpRequest(&big_reader, *big_line);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.status().code(), StatusCode::kInvalidArgument);
}

TEST(HttpResponseTest, SerialisesWithLengthAndConnection) {
  HttpResponse resp(200, "{\"ok\":true}");
  resp.SetHeader("Retry-After", "1");
  std::string wire = SerializeResponse(resp, /*keep_alive=*/false);
  EXPECT_NE(wire.find("HTTP/1.1 200 OK\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Content-Length: 11\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Connection: close\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Retry-After: 1\r\n"), std::string::npos);
  EXPECT_NE(wire.find("\r\n\r\n{\"ok\":true}"), std::string::npos);
}

TEST(HttpRoundTripTest, ClientParsesServerResponse) {
  Pair pair;
  HttpResponse resp(503, "{\"error\":\"full\"}\n");
  resp.SetHeader("Retry-After", "1");
  ASSERT_TRUE(
      pair.feeder.WriteAll(SerializeResponse(resp, /*keep_alive=*/true))
          .ok());
  BufferedReader reader(&pair.reader_socket);
  auto parsed = ReadHttpResponse(&reader);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->status, 503);
  EXPECT_EQ(parsed->headers.at("retry-after"), "1");
  EXPECT_EQ(parsed->body, "{\"error\":\"full\"}\n");
}

TEST(ChunkedWriterTest, FramesHeadChunksAndTerminator) {
  std::string wire;
  ChunkedWriter writer(
      [&wire](std::string_view data) {
        wire.append(data);
        return Status::OK();
      },
      /*flush_bytes=*/1024);
  HttpResponse head;
  head.content_type = "application/json";
  ASSERT_TRUE(writer.WriteHead(head, /*keep_alive=*/true).ok());
  // Chunked head: Transfer-Encoding, never Content-Length.
  EXPECT_NE(wire.find("Transfer-Encoding: chunked\r\n"), std::string::npos);
  EXPECT_EQ(wire.find("Content-Length"), std::string::npos);
  EXPECT_NE(wire.find("Connection: keep-alive\r\n"), std::string::npos);

  ASSERT_TRUE(writer.Write("hello ").ok());
  ASSERT_TRUE(writer.Write("world").ok());
  ASSERT_TRUE(writer.Finish().ok());
  // One coalesced chunk ("hello world" = 0xb bytes) plus the terminator.
  EXPECT_NE(wire.find("\r\n\r\nb\r\nhello world\r\n0\r\n\r\n"),
            std::string::npos)
      << wire;
  EXPECT_EQ(writer.bytes_written(), wire.size());
}

TEST(ChunkedWriterTest, FlushesAtThresholdKeepingBufferBounded) {
  std::string wire;
  size_t flush_bytes = 64;
  ChunkedWriter writer(
      [&wire](std::string_view data) {
        wire.append(data);
        return Status::OK();
      },
      flush_bytes);
  HttpResponse head;
  ASSERT_TRUE(writer.WriteHead(head, true).ok());
  // Stream far more payload than the flush threshold: the peak buffer
  // must stay near the threshold, not grow with the body.
  std::string piece(10, 'x');
  for (int i = 0; i < 1000; ++i) ASSERT_TRUE(writer.Write(piece).ok());
  ASSERT_TRUE(writer.Finish().ok());
  EXPECT_LT(writer.peak_buffer_bytes(), flush_bytes + piece.size());
  EXPECT_NE(wire.find("0\r\n\r\n"), std::string::npos);
}

TEST(ChunkedWriterTest, LatchesTransportFailure) {
  int writes = 0;
  ChunkedWriter writer([&writes](std::string_view) {
    ++writes;
    return Status::IoError("peer gone");
  });
  HttpResponse head;
  EXPECT_FALSE(writer.WriteHead(head, true).ok());
  EXPECT_FALSE(writer.Write("data").ok());
  EXPECT_FALSE(writer.Finish().ok());
  EXPECT_FALSE(writer.ok());
  EXPECT_EQ(writes, 1);  // one failed write; the rest short-circuit
}

TEST(ChunkedClientTest, DecodesChunkedResponseWithTrailers) {
  Pair pair;
  ASSERT_TRUE(pair.feeder
                  .WriteAll("HTTP/1.1 200 OK\r\n"
                            "Content-Type: application/json\r\n"
                            "Transfer-Encoding: chunked\r\n"
                            "\r\n"
                            "6\r\nhello \r\n"
                            "b;ext=1\r\nchunked wor\r\n"
                            "2\r\nld\r\n"
                            "0\r\n"
                            "X-Trailer: yes\r\n"
                            "Content-Type: text/evil\r\n"
                            "\r\n")
                  .ok());
  BufferedReader reader(&pair.reader_socket);
  auto parsed = ReadHttpResponse(&reader);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->status, 200);
  EXPECT_EQ(parsed->body, "hello chunked world");
  EXPECT_EQ(parsed->headers.at("x-trailer"), "yes");
  // Trailers must not clobber headers from the real header section.
  EXPECT_EQ(parsed->headers.at("content-type"), "application/json");
}

TEST(ChunkedClientTest, KeepAliveSurvivesChunkedMessageBoundary) {
  // Two responses back-to-back on one connection: a chunked one, then a
  // Content-Length one. The decoder must stop exactly at the terminal
  // chunk's blank line, leaving the second message intact.
  Pair pair;
  std::string wire;
  ChunkedWriter writer([&wire](std::string_view data) {
    wire.append(data);
    return Status::OK();
  });
  HttpResponse head;
  ASSERT_TRUE(writer.WriteHead(head, /*keep_alive=*/true).ok());
  ASSERT_TRUE(writer.Write("first streamed body").ok());
  ASSERT_TRUE(writer.Finish().ok());
  wire += SerializeResponse(HttpResponse(200, "second body"),
                            /*keep_alive=*/true);
  ASSERT_TRUE(pair.feeder.WriteAll(wire).ok());

  BufferedReader reader(&pair.reader_socket);
  auto first = ReadHttpResponse(&reader);
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_EQ(first->body, "first streamed body");
  auto second = ReadHttpResponse(&reader);
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_EQ(second->body, "second body");
}

TEST(ChunkedClientTest, RejectsMalformedChunkSizes) {
  Pair pair;
  ASSERT_TRUE(pair.feeder
                  .WriteAll("HTTP/1.1 200 OK\r\n"
                            "Transfer-Encoding: chunked\r\n"
                            "\r\n"
                            "zz\r\nbody\r\n0\r\n\r\n")
                  .ok());
  BufferedReader reader(&pair.reader_socket);
  EXPECT_FALSE(ReadHttpResponse(&reader).ok());
}

TEST(ChunkedClientTest, RejectsOverflowingAndOversizedChunkSizes) {
  // 2^64 wraps size_t to 0 — which must NOT read as the terminal chunk.
  for (const char* size_line : {"10000000000000000", "ffffffffffffffff",
                                "fffffff0"}) {
    Pair pair;
    ASSERT_TRUE(pair.feeder
                    .WriteAll(std::string("HTTP/1.1 200 OK\r\n"
                                          "Transfer-Encoding: chunked\r\n"
                                          "\r\n") +
                              size_line + "\r\npayload\r\n0\r\n\r\n")
                    .ok());
    BufferedReader reader(&pair.reader_socket);
    auto resp = ReadHttpResponse(&reader);
    ASSERT_FALSE(resp.ok()) << size_line;
    EXPECT_NE(resp.status().message().find("chunk size too large"),
              std::string::npos)
        << size_line;
  }
}

TEST(BufferedReaderTest, SplitsLinesAcrossReads) {
  Pair pair;
  ASSERT_TRUE(pair.feeder.WriteAll("line one\r\nline two\nline three").ok());
  pair.feeder.Close();
  BufferedReader reader(&pair.reader_socket);
  EXPECT_EQ(reader.ReadLine().value(), "line one");
  EXPECT_EQ(reader.ReadLine().value(), "line two");
  EXPECT_EQ(reader.ReadLine().value(), "line three");  // unterminated tail
  EXPECT_FALSE(reader.ReadLine().ok());                // EOF
}

TEST(HttpRequestParserTest, ParsesByteAtATime) {
  const std::string wire =
      "POST /query?stream=1 HTTP/1.1\r\n"
      "Host: t\r\n"
      "Content-Length: 14\r\n"
      "\r\n"
      "SLICE sa=sex=F";
  HttpRequestParser parser;
  for (char c : wire) {
    ASSERT_FALSE(parser.failed()) << parser.status();
    EXPECT_EQ(parser.Feed(std::string_view(&c, 1)), 1u);
  }
  ASSERT_TRUE(parser.done());
  EXPECT_EQ(parser.request().method, "POST");
  EXPECT_EQ(parser.request().path, "/query");
  EXPECT_EQ(parser.request().Param("stream"), "1");
  EXPECT_EQ(parser.request().Header("host"), "t");
  EXPECT_EQ(parser.request().body, "SLICE sa=sex=F");
  EXPECT_TRUE(parser.request().keep_alive);
}

TEST(HttpRequestParserTest, SurvivesSplitsAtEveryBoundary) {
  const std::string wire =
      "GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n";
  // Every two-fragment split of the message must parse identically.
  for (size_t cut = 1; cut < wire.size(); ++cut) {
    HttpRequestParser parser;
    EXPECT_EQ(parser.Feed(wire.substr(0, cut)), cut);
    EXPECT_EQ(parser.Feed(wire.substr(cut)), wire.size() - cut);
    ASSERT_TRUE(parser.done()) << "cut at " << cut;
    EXPECT_EQ(parser.request().path, "/healthz");
    EXPECT_FALSE(parser.request().keep_alive);
  }
}

TEST(HttpRequestParserTest, StopsAtMessageEndForPipelining) {
  const std::string first =
      "POST /query HTTP/1.1\r\nContent-Length: 4\r\n\r\nTOPK";
  const std::string second = "GET /cubes HTTP/1.1\r\n\r\n";
  HttpRequestParser parser;
  // Both messages offered at once: Feed must stop at the first boundary
  // so the leftover bytes stay queued for the next request.
  EXPECT_EQ(parser.Feed(first + second), first.size());
  ASSERT_TRUE(parser.done());
  EXPECT_EQ(parser.request().body, "TOPK");

  parser.Reset();
  EXPECT_FALSE(parser.done());
  EXPECT_EQ(parser.Feed(second), second.size());
  ASSERT_TRUE(parser.done());
  EXPECT_EQ(parser.request().method, "GET");
  EXPECT_EQ(parser.request().path, "/cubes");
  EXPECT_TRUE(parser.request().body.empty());
}

TEST(HttpRequestParserTest, TracksBodyProgress) {
  HttpRequestParser parser;
  parser.Feed("POST /query HTTP/1.1\r\nContent-Length: 10\r\n\r\n");
  EXPECT_TRUE(parser.in_body());
  EXPECT_EQ(parser.body_expected(), 10u);
  parser.Feed("12345");
  EXPECT_EQ(parser.body_received(), 5u);
  EXPECT_FALSE(parser.done());
  parser.Feed("67890");
  EXPECT_TRUE(parser.done());
  EXPECT_EQ(parser.request().body, "1234567890");
}

TEST(HttpRequestParserTest, ErrorsMatchTheBlockingReaderMessages) {
  // The incremental parser and ReadHttpRequest share one grammar; their
  // rejections must carry the same status text so the two front-ends
  // answer malformed requests with identical 400 bodies.
  auto blocking_error = [](const std::string& wire) {
    Pair pair;
    EXPECT_TRUE(pair.feeder.WriteAll(wire).ok());
    pair.feeder.Close();
    BufferedReader reader(&pair.reader_socket);
    auto line = reader.ReadLine();
    EXPECT_TRUE(line.ok());
    auto parsed = ReadHttpRequest(&reader, *line);
    EXPECT_FALSE(parsed.ok());
    return parsed.status();
  };
  auto incremental_error = [](const std::string& wire) {
    HttpRequestParser parser;
    parser.Feed(wire);
    EXPECT_TRUE(parser.failed());
    return parser.status();
  };
  for (const char* wire :
       {"BROKEN\r\n\r\n",
        "GET / HTTP/9.9\r\n\r\n",
        "POST /query HTTP/1.1\r\nContent-Length: abc\r\n\r\n",
        "POST /query HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n",
        "GET / HTTP/1.1\r\nno-colon-here\r\n\r\n"}) {
    const Status blocking = blocking_error(wire);
    const Status incremental = incremental_error(wire);
    EXPECT_EQ(blocking.code(), incremental.code()) << wire;
    EXPECT_EQ(blocking.message(), incremental.message()) << wire;
  }
}

TEST(HttpRequestParserTest, ResetClearsFailureState) {
  HttpRequestParser parser;
  parser.Feed("BROKEN\r\n");
  ASSERT_TRUE(parser.failed());
  parser.Reset();
  EXPECT_FALSE(parser.failed());
  EXPECT_EQ(parser.Feed("GET / HTTP/1.1\r\n\r\n"),
            std::string("GET / HTTP/1.1\r\n\r\n").size());
  EXPECT_TRUE(parser.done());
}

TEST(ListenSocketTest, LoopbackConnectAndEcho) {
  auto listener = ListenSocket::Bind(0, /*loopback_only=*/true);
  ASSERT_TRUE(listener.ok()) << listener.status();
  ASSERT_GT(listener->port(), 0);

  auto client = Connect("127.0.0.1", listener->port());
  ASSERT_TRUE(client.ok()) << client.status();
  auto served = listener->Accept();
  ASSERT_TRUE(served.ok()) << served.status();

  ASSERT_TRUE(client->WriteAll("ping\n").ok());
  BufferedReader reader(&*served);
  EXPECT_EQ(reader.ReadLine().value(), "ping");
}

}  // namespace
}  // namespace net
}  // namespace scube
