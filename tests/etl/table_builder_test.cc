#include "etl/table_builder.h"

#include <gtest/gtest.h>

#include "etl/loaders.h"

namespace scube {
namespace etl {
namespace {

using relational::AttributeKind;
using relational::ColumnType;
using relational::Schema;
using relational::Table;

ScubeInputs BoardInputs() {
  Schema ind_schema({
      {"id", ColumnType::kInt64, AttributeKind::kId},
      {"gender", ColumnType::kCategorical, AttributeKind::kSegregation},
      {"residence", ColumnType::kCategorical, AttributeKind::kContext},
  });
  Table individuals(ind_schema);
  EXPECT_TRUE(individuals.AppendRowFromStrings({"10", "F", "north"}).ok());
  EXPECT_TRUE(individuals.AppendRowFromStrings({"11", "M", "north"}).ok());
  EXPECT_TRUE(individuals.AppendRowFromStrings({"12", "F", "south"}).ok());

  Schema grp_schema({
      {"id", ColumnType::kInt64, AttributeKind::kId},
      {"sector", ColumnType::kCategorical, AttributeKind::kContext},
  });
  Table groups(grp_schema);
  EXPECT_TRUE(groups.AppendRowFromStrings({"100", "electricity"}).ok());
  EXPECT_TRUE(groups.AppendRowFromStrings({"101", "transports"}).ok());
  EXPECT_TRUE(groups.AppendRowFromStrings({"102", "education"}).ok());

  graph::BipartiteGraph membership(3, 3);
  // Director 0 on companies 0 and 1 (same unit below): sector set union.
  EXPECT_TRUE(membership.AddMembership(0, 0).ok());
  EXPECT_TRUE(membership.AddMembership(0, 1).ok());
  EXPECT_TRUE(membership.AddMembership(1, 1).ok());
  EXPECT_TRUE(membership.AddMembership(2, 2).ok());
  return ScubeInputs(std::move(individuals), std::move(groups),
                     std::move(membership));
}

graph::Clustering TwoUnits() {
  // Companies 0,1 -> unit 0; company 2 -> unit 1.
  return graph::NormalizeLabels({0, 0, 1});
}

TEST(TableBuilderTest, JoinProducesRowPerIndividualUnit) {
  auto table = BuildFinalTable(BoardInputs(), TwoUnits(),
                               TableBuilderOptions{});
  ASSERT_TRUE(table.ok()) << table.status();
  // Director 0 sits on two boards of the SAME unit -> one row.
  EXPECT_EQ(table->NumRows(), 3u);

  const Schema& schema = table->schema();
  EXPECT_EQ(schema.IndexOf("gender"), 0);
  EXPECT_EQ(schema.IndexOf("residence"), 1);
  EXPECT_EQ(schema.IndexOf("sector"), 2);
  EXPECT_EQ(schema.IndexOf("unitID"), 3);
  EXPECT_EQ(schema.attribute(2).type, ColumnType::kCategoricalSet);
  EXPECT_EQ(schema.attribute(3).kind, AttributeKind::kUnit);
}

TEST(TableBuilderTest, GroupAttributesUnionAcrossBoards) {
  auto table = BuildFinalTable(BoardInputs(), TwoUnits(),
                               TableBuilderOptions{});
  ASSERT_TRUE(table.ok());
  // Row for director 0 (first row: pairs ordered by (individual, unit)).
  EXPECT_EQ(table->CategoricalValue(0, 0), "F");
  auto sectors = table->SetValues(0, 2);
  EXPECT_EQ(sectors.size(), 2u);  // electricity + transports (Fig. 3)
  EXPECT_NE(std::find(sectors.begin(), sectors.end(), "electricity"),
            sectors.end());
  EXPECT_NE(std::find(sectors.begin(), sectors.end(), "transports"),
            sectors.end());

  // Director 2's unit only has education.
  EXPECT_EQ(table->SetValues(2, 2), (std::vector<std::string>{"education"}));
}

TEST(TableBuilderTest, DirectorSpanningUnitsGetsTwoRows) {
  ScubeInputs inputs = BoardInputs();
  // Add director 1 to company 2 (unit 1): now rows for units 0 and 1.
  ASSERT_TRUE(inputs.membership.AddMembership(1, 2).ok());
  auto table = BuildFinalTable(inputs, TwoUnits(), TableBuilderOptions{});
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->NumRows(), 4u);
}

TEST(TableBuilderTest, ExcludeGroupAttributes) {
  TableBuilderOptions opts;
  opts.include_group_attributes = false;
  auto table = BuildFinalTable(BoardInputs(), TwoUnits(), opts);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->schema().IndexOf("sector"), -1);
  EXPECT_GE(table->schema().IndexOf("unitID"), 0);
}

TEST(TableBuilderTest, SnapshotDateFiltersRows) {
  Schema ind_schema({
      {"id", ColumnType::kInt64, AttributeKind::kId},
      {"gender", ColumnType::kCategorical, AttributeKind::kSegregation},
  });
  Table individuals(ind_schema);
  ASSERT_TRUE(individuals.AppendRowFromStrings({"0", "F"}).ok());
  Schema grp_schema({
      {"id", ColumnType::kInt64, AttributeKind::kId},
      {"sector", ColumnType::kCategorical, AttributeKind::kContext},
  });
  Table groups(grp_schema);
  ASSERT_TRUE(groups.AppendRowFromStrings({"0", "trade"}).ok());
  graph::BipartiteGraph membership(1, 1);
  ASSERT_TRUE(membership.AddMembership(0, 0, 2000, 2005).ok());
  ScubeInputs inputs(std::move(individuals), std::move(groups),
                     std::move(membership));
  graph::Clustering one = graph::NormalizeLabels({0});

  TableBuilderOptions at_2003;
  at_2003.date = 2003;
  auto t1 = BuildFinalTable(inputs, one, at_2003);
  ASSERT_TRUE(t1.ok());
  EXPECT_EQ(t1->NumRows(), 1u);

  TableBuilderOptions at_2010;
  at_2010.date = 2010;
  auto t2 = BuildFinalTable(inputs, one, at_2010);
  ASSERT_TRUE(t2.ok());
  EXPECT_EQ(t2->NumRows(), 0u);
}

TEST(TableBuilderTest, ClusteringSizeMismatchRejected) {
  auto bad = BuildFinalTable(BoardInputs(), graph::NormalizeLabels({0}),
                             TableBuilderOptions{});
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(InputsTest, GroupsWithSaRejected) {
  Schema ind_schema({{"id", ColumnType::kInt64, AttributeKind::kId}});
  Schema grp_schema({
      {"id", ColumnType::kInt64, AttributeKind::kId},
      {"gender", ColumnType::kCategorical, AttributeKind::kSegregation},
  });
  ScubeInputs inputs(Table(ind_schema), Table(grp_schema),
                     graph::BipartiteGraph(0, 0));
  EXPECT_EQ(inputs.Validate().code(), StatusCode::kFailedPrecondition);
}

TEST(LoadersTest, EndToEndCsvLoading) {
  CsvReader reader;
  auto ind_doc = reader.ParseString(
      "id,gender\n1,F\n2,M\n3,F\n");
  auto grp_doc = reader.ParseString("id,sector\n7,trade\n8,finance\n");
  auto mem_doc = reader.ParseString(
      "individualID,groupID,from,to\n1,7,2000,2010\n2,8,,\n3,7,,\n");
  ASSERT_TRUE(ind_doc.ok());
  ASSERT_TRUE(grp_doc.ok());
  ASSERT_TRUE(mem_doc.ok());

  Schema ind_schema({
      {"id", ColumnType::kInt64, AttributeKind::kId},
      {"gender", ColumnType::kCategorical, AttributeKind::kSegregation},
  });
  Schema grp_schema({
      {"id", ColumnType::kInt64, AttributeKind::kId},
      {"sector", ColumnType::kCategorical, AttributeKind::kContext},
  });
  auto inputs = LoadInputsFromCsv(ind_doc.value(), ind_schema,
                                  grp_doc.value(), grp_schema,
                                  mem_doc.value());
  ASSERT_TRUE(inputs.ok()) << inputs.status();
  EXPECT_EQ(inputs->individuals.NumRows(), 3u);
  EXPECT_EQ(inputs->groups.NumRows(), 2u);
  EXPECT_EQ(inputs->membership.NumMemberships(), 3u);
  // External id 1 -> row 0; external id 7 -> row 0.
  const auto& m0 = inputs->membership.memberships()[0];
  EXPECT_EQ(m0.individual, 0u);
  EXPECT_EQ(m0.group, 0u);
  EXPECT_EQ(m0.valid_from, 2000);
  EXPECT_EQ(m0.valid_to, 2010);
  // Blank validity fields mean forever.
  EXPECT_EQ(inputs->membership.memberships()[1].valid_from, graph::kDateMin);
}

TEST(LoadersTest, UnknownIdRejected) {
  CsvReader reader;
  auto ind_doc = reader.ParseString("id,gender\n1,F\n");
  auto grp_doc = reader.ParseString("id,sector\n7,trade\n");
  auto mem_doc = reader.ParseString("individualID,groupID\n99,7\n");
  Schema ind_schema({
      {"id", ColumnType::kInt64, AttributeKind::kId},
      {"gender", ColumnType::kCategorical, AttributeKind::kSegregation},
  });
  Schema grp_schema({
      {"id", ColumnType::kInt64, AttributeKind::kId},
      {"sector", ColumnType::kCategorical, AttributeKind::kContext},
  });
  auto inputs = LoadInputsFromCsv(ind_doc.value(), ind_schema,
                                  grp_doc.value(), grp_schema,
                                  mem_doc.value());
  EXPECT_EQ(inputs.status().code(), StatusCode::kNotFound);
}

TEST(LoadersTest, DuplicateIdRejected) {
  CsvReader reader;
  auto ind_doc = reader.ParseString("id,gender\n1,F\n1,M\n");
  auto grp_doc = reader.ParseString("id,sector\n7,trade\n");
  auto mem_doc = reader.ParseString("individualID,groupID\n1,7\n");
  Schema ind_schema({
      {"id", ColumnType::kInt64, AttributeKind::kId},
      {"gender", ColumnType::kCategorical, AttributeKind::kSegregation},
  });
  Schema grp_schema({
      {"id", ColumnType::kInt64, AttributeKind::kId},
      {"sector", ColumnType::kCategorical, AttributeKind::kContext},
  });
  auto inputs = LoadInputsFromCsv(ind_doc.value(), ind_schema,
                                  grp_doc.value(), grp_schema,
                                  mem_doc.value());
  EXPECT_EQ(inputs.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace etl
}  // namespace scube
