// Unit tests for the Prometheus exposition (no sockets): histogram
// families render valid cumulative series with HELP/TYPE, route/verb
// classification matches the router's dispatch, and the slow-query log
// formats the one-line JSON contract CI archives.

#include "server/metrics.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "query/cube_store.h"
#include "query/service.h"
#include "server/slow_query_log.h"

namespace scube {
namespace server {
namespace {

/// Counts non-overlapping occurrences of `needle`.
size_t CountOf(const std::string& haystack, const std::string& needle) {
  size_t count = 0;
  for (size_t at = haystack.find(needle); at != std::string::npos;
       at = haystack.find(needle, at + needle.size())) {
    ++count;
  }
  return count;
}

struct RenderFixture {
  query::CubeStore store;
  query::QueryService service{&store};
  ServerMetrics metrics;

  std::string Render() { return RenderPrometheus(metrics, service); }
};

TEST(MetricsTest, EveryMetricHasHelpAndType) {
  RenderFixture fx;
  std::string out = fx.Render();
  // Walk the exposition: every sample line's metric family must have been
  // introduced by HELP and TYPE lines earlier in the body.
  size_t pos = 0;
  while (pos < out.size()) {
    size_t eol = out.find('\n', pos);
    if (eol == std::string::npos) eol = out.size();
    std::string line = out.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty() || line[0] == '#') continue;
    std::string name = line.substr(0, line.find_first_of(" {"));
    // Histogram samples belong to the family without the suffix.
    for (const char* suffix : {"_bucket", "_sum", "_count"}) {
      size_t n = name.size(), s = std::string(suffix).size();
      if (n > s && name.compare(n - s, s, suffix) == 0 &&
          out.find("# TYPE " + name.substr(0, n - s) + " histogram") !=
              std::string::npos) {
        name = name.substr(0, n - s);
        break;
      }
    }
    EXPECT_NE(out.find("# HELP " + name + " "), std::string::npos) << name;
    EXPECT_NE(out.find("# TYPE " + name + " "), std::string::npos) << name;
  }
}

TEST(MetricsTest, HistogramFamiliesRenderEverySeriesEvenWhenEmpty) {
  RenderFixture fx;
  std::string out = fx.Render();
  // One series per route and per verb from the very first scrape, each
  // with 20 buckets (19 finite + +Inf), one _sum and one _count.
  for (const char* route : {"query", "stream", "cubes", "healthz", "metrics",
                            "line", "other"}) {
    std::string label = std::string("route=\"") + route + "\"";
    EXPECT_EQ(CountOf(out, "scubed_request_latency_seconds_bucket{" + label),
              20u)
        << route;
    EXPECT_EQ(CountOf(out, "scubed_request_latency_seconds_sum{" + label),
              1u);
    EXPECT_EQ(CountOf(out, "scubed_request_latency_seconds_count{" + label),
              1u);
  }
  for (const char* verb : {"slice", "dice", "rollup", "drilldown", "topk",
                           "surprises", "reversals"}) {
    EXPECT_EQ(CountOf(out, "scubed_query_latency_seconds_bucket{verb=\"" +
                               std::string(verb) + "\""),
              20u)
        << verb;
  }
  EXPECT_EQ(CountOf(out, "scubed_stream_ttfb_seconds_bucket{le="), 20u);
  // HELP/TYPE once per family, not per series.
  EXPECT_EQ(CountOf(out, "# TYPE scubed_request_latency_seconds histogram"),
            1u);
  EXPECT_EQ(CountOf(out, "# TYPE scubed_query_latency_seconds histogram"),
            1u);
}

TEST(MetricsTest, HistogramBucketsAreCumulativeInSeconds) {
  RenderFixture fx;
  fx.metrics.ObserveRoute(Route::kQuery, 0.3);   // <= 0.5 ms = 0.0005 s
  fx.metrics.ObserveRoute(Route::kQuery, 80.0);  // <= 100 ms = 0.1 s
  std::string out = fx.Render();
  // The 0.0005-second bucket holds one, the 0.1-second bucket both, and
  // +Inf (the total) both.
  EXPECT_NE(out.find("scubed_request_latency_seconds_bucket{route=\"query\","
                     "le=\"0.0005\"} 1"),
            std::string::npos)
      << out.substr(0, 2000);
  EXPECT_NE(out.find("scubed_request_latency_seconds_bucket{route=\"query\","
                     "le=\"0.1\"} 2"),
            std::string::npos);
  EXPECT_NE(out.find("scubed_request_latency_seconds_bucket{route=\"query\","
                     "le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(out.find("scubed_request_latency_seconds_count{route=\"query\"} "
                     "2"),
            std::string::npos);
  // _sum is in seconds: 80.3 ms = 0.0803 s.
  EXPECT_NE(out.find("scubed_request_latency_seconds_sum{route=\"query\"} "
                     "0.0803"),
            std::string::npos);
}

TEST(MetricsTest, ObserveVerbIsCaseInsensitiveAndDropsUnknown) {
  RenderFixture fx;
  fx.metrics.ObserveVerb("TOPK", 1.0);   // VerbToString's casing
  fx.metrics.ObserveVerb("slice", 2.0);  // already lower
  fx.metrics.ObserveVerb("", 3.0);       // parse error: dropped
  fx.metrics.ObserveVerb("nonsense", 4.0);
  std::string out = fx.Render();
  EXPECT_NE(out.find("scubed_query_latency_seconds_count{verb=\"topk\"} 1"),
            std::string::npos);
  EXPECT_NE(out.find("scubed_query_latency_seconds_count{verb=\"slice\"} 1"),
            std::string::npos);
  // Nothing else moved.
  EXPECT_EQ(CountOf(out, "scubed_query_latency_seconds_count{verb=\"\""), 0u);
}

TEST(MetricsTest, ClassifyRouteMatchesDispatch) {
  net::HttpRequest req;
  req.method = "POST";
  req.path = "/query";
  EXPECT_EQ(ClassifyRoute(req), Route::kQuery);
  req.params["stream"] = "1";
  EXPECT_EQ(ClassifyRoute(req), Route::kStream);
  req.params.clear();
  req.path = "/cubes";
  EXPECT_EQ(ClassifyRoute(req), Route::kCubes);
  req.path = "/healthz";
  EXPECT_EQ(ClassifyRoute(req), Route::kHealthz);
  req.path = "/metrics";
  EXPECT_EQ(ClassifyRoute(req), Route::kMetrics);
  req.path = "/nope";
  EXPECT_EQ(ClassifyRoute(req), Route::kOther);
  EXPECT_STREQ(RouteLabel(Route::kStream), "stream");
}

TEST(MetricsTest, SlowQueriesCounterIsExposed) {
  RenderFixture fx;
  fx.metrics.Inc(fx.metrics.slow_queries);
  std::string out = fx.Render();
  EXPECT_NE(out.find("scubed_slow_queries_total 1"), std::string::npos);
  EXPECT_NE(out.find("# TYPE scubed_slow_queries_total counter"),
            std::string::npos);
}

TEST(SlowQueryLogTest, FormatLineIsTheDocumentedJsonShape) {
  trace::TraceContext tc;
  { trace::Span span(&tc, "execute"); }
  SlowQueryRecord record;
  record.route = "query";
  record.query = "TOPK 5 BY \"gini\"";  // quote must be escaped
  record.code = "OK";
  record.total_ms = 87.25;
  record.rows = 1200;
  record.trace = &tc;
  std::string line = SlowQueryLog::FormatLine(record, 50.0);
  EXPECT_EQ(line.front(), '{');
  EXPECT_EQ(line.back(), '}');
  EXPECT_EQ(line.find('\n'), std::string::npos);
  EXPECT_NE(line.find("\"ts\":\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"slow_query_ms\":50"), std::string::npos);
  EXPECT_NE(line.find("\"route\":\"query\""), std::string::npos);
  EXPECT_NE(line.find("\"code\":\"OK\""), std::string::npos);
  EXPECT_NE(line.find("\"total_ms\":87.25"), std::string::npos);
  EXPECT_NE(line.find("\"rows\":1200"), std::string::npos);
  EXPECT_NE(line.find("\"query\":\"TOPK 5 BY \\\"gini\\\"\""),
            std::string::npos)
      << line;
  EXPECT_NE(line.find("\"trace\":{\"trace_id\":\"" + tc.trace_id_hex()),
            std::string::npos);
  EXPECT_NE(line.find("\"name\":\"execute\""), std::string::npos);

  // Without a trace the key is absent entirely.
  record.trace = nullptr;
  EXPECT_EQ(SlowQueryLog::FormatLine(record, 50.0).find("\"trace\""),
            std::string::npos);
}

TEST(SlowQueryLogTest, ThresholdGatesAndSinkReceivesOneLine) {
  std::FILE* sink = std::tmpfile();
  ASSERT_NE(sink, nullptr);
  SlowQueryLog log(10.0, sink);
  EXPECT_TRUE(log.enabled());

  SlowQueryRecord fast;
  fast.route = "query";
  fast.total_ms = 9.9;
  EXPECT_FALSE(log.MaybeLog(fast));

  SlowQueryRecord slow;
  slow.route = "stream";
  slow.query = "DICE sa=sex=F";
  slow.total_ms = 25.0;
  EXPECT_TRUE(log.MaybeLog(slow));

  std::rewind(sink);
  char buf[4096];
  size_t n = std::fread(buf, 1, sizeof(buf) - 1, sink);
  buf[n] = '\0';
  std::string content(buf);
  EXPECT_EQ(CountOf(content, "\n"), 1u) << content;
  EXPECT_NE(content.find("\"route\":\"stream\""), std::string::npos);
  EXPECT_EQ(content.find("\"route\":\"query\""), std::string::npos);
  std::fclose(sink);
}

TEST(SlowQueryLogTest, DisabledLogIsANoOp) {
  SlowQueryLog log(0.0);
  EXPECT_FALSE(log.enabled());
  SlowQueryRecord record;
  record.total_ms = 1e9;
  EXPECT_FALSE(log.MaybeLog(record));
}

}  // namespace
}  // namespace server
}  // namespace scube
