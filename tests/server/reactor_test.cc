// Reactor front-end tests: byte-identity with the threaded front-end
// across every route (the two paths must be indistinguishable on the
// wire), pipelined keep-alive, backpressure on a slow reader (the EAGAIN
// path), and the connection guards — keep-alive idle timeout and the
// header-read deadline (slow-loris defence) on BOTH front-ends.

#include "server/reactor.h"

#include <gtest/gtest.h>

#include <chrono>
#include <regex>
#include <string>
#include <thread>
#include <vector>

#include "common/timer.h"
#include "net/http.h"
#include "net/socket.h"
#include "server/server.h"

namespace scube {
namespace server {
namespace {

cube::SegregationCube MakeCube(double south_dissimilarity) {
  relational::ItemCatalog catalog;
  using relational::AttributeKind;
  catalog.GetOrAdd(0, "sex", "F", AttributeKind::kSegregation);     // id 0
  catalog.GetOrAdd(1, "region", "north", AttributeKind::kContext);  // id 1
  catalog.GetOrAdd(2, "region", "south", AttributeKind::kContext);  // id 2

  auto make_cell = [](std::vector<fpm::ItemId> sa,
                      std::vector<fpm::ItemId> ca, uint64_t t, uint64_t m,
                      double d) {
    cube::CubeCell cell;
    cell.coords = cube::CellCoordinates{fpm::Itemset(std::move(sa)),
                                        fpm::Itemset(std::move(ca))};
    cell.context_size = t;
    cell.minority_size = m;
    cell.num_units = 2;
    cell.indexes.defined = true;
    cell.indexes.values[static_cast<size_t>(
        indexes::IndexKind::kDissimilarity)] = d;
    return cell;
  };
  cube::SegregationCube cube(std::move(catalog), {"u0", "u1"});
  cube.Insert(make_cell({0}, {}, 100, 40, 0.10));
  cube.Insert(make_cell({0}, {1}, 60, 25, 0.5));
  cube.Insert(make_cell({0}, {2}, 40, 15, south_dissimilarity));
  return cube;
}

/// A cube with `contexts` one-attribute cells — big enough that its
/// streamed answer overflows the reactor's outbox watermark.
cube::SegregationCube MakeWideCube(size_t contexts) {
  relational::ItemCatalog catalog;
  using relational::AttributeKind;
  catalog.GetOrAdd(0, "sex", "F", AttributeKind::kSegregation);
  for (size_t i = 0; i < contexts; ++i) {
    catalog.GetOrAdd(static_cast<fpm::ItemId>(1 + i), "region",
                     "r" + std::to_string(i), AttributeKind::kContext);
  }
  cube::SegregationCube cube(std::move(catalog), {"u0", "u1"});
  for (size_t i = 0; i < contexts; ++i) {
    cube::CubeCell cell;
    cell.coords = cube::CellCoordinates{
        fpm::Itemset({0}),
        fpm::Itemset({static_cast<fpm::ItemId>(1 + i)})};
    cell.context_size = 100 + i;
    cell.minority_size = 10 + (i % 50);
    cell.num_units = 2;
    cell.indexes.defined = true;
    cell.indexes.values[static_cast<size_t>(
        indexes::IndexKind::kDissimilarity)] = 0.25;
    cube.Insert(cell);
  }
  return cube;
}

ServerOptions MakeServerOptions(Frontend frontend) {
  ServerOptions options;
  options.port = 0;
  options.loopback_only = true;
  options.num_connection_threads = 4;
  options.idle_poll_seconds = 0.1;  // fast Stop() in tests
  options.frontend = frontend;
  return options;
}

/// Neutralises the fields that legitimately differ run-to-run (timings,
/// cache state, cursor tokens) so full response bytes can be compared.
std::string Mask(std::string s) {
  s = std::regex_replace(s, std::regex("\"exec_ms\":[0-9.eE+-]+"),
                         "\"exec_ms\":X");
  s = std::regex_replace(s, std::regex("\"cache_hit\":(true|false)"),
                         "\"cache_hit\":X");
  s = std::regex_replace(s, std::regex("\"cells_scanned\":[0-9]+"),
                         "\"cells_scanned\":X");
  s = std::regex_replace(s, std::regex("\"next_cursor\":\"[^\"]*\""),
                         "\"next_cursor\":\"X\"");
  // The digit count of exec_ms varies run-to-run, so the byte length of
  // otherwise-identical bodies (and with it Content-Length and chunk
  // framing) legitimately differs by a byte or two.
  s = std::regex_replace(s, std::regex("Content-Length: [0-9]+"),
                         "Content-Length: X");
  return s;
}

/// Decodes chunked transfer framing so responses can be compared after
/// masking (chunk sizes shift with the masked exec_ms digits). Non-chunked
/// input passes through untouched.
std::string Dechunk(const std::string& raw) {
  const size_t head_end = raw.find("\r\n\r\n");
  if (head_end == std::string::npos) return raw;
  const std::string head = raw.substr(0, head_end + 4);
  if (head.find("Transfer-Encoding: chunked") == std::string::npos) {
    return raw;
  }
  std::string body;
  size_t at = head_end + 4;
  while (at < raw.size()) {
    const size_t line_end = raw.find("\r\n", at);
    if (line_end == std::string::npos) break;
    const size_t size = std::stoul(raw.substr(at, line_end - at), nullptr, 16);
    if (size == 0) break;  // terminal chunk
    body += raw.substr(line_end + 2, size);
    at = line_end + 2 + size + 2;  // past the chunk and its trailing CRLF
  }
  return head + body;
}

/// Sends raw request bytes and reads the connection to EOF.
std::string RawExchange(uint16_t port, const std::string& request) {
  auto connected = net::Connect("127.0.0.1", port);
  EXPECT_TRUE(connected.ok()) << connected.status();
  if (!connected.ok()) return "";
  net::Socket socket = std::move(connected).value();
  EXPECT_TRUE(socket.WriteAll(request).ok());
  std::string out;
  char buf[4096];
  while (true) {
    auto n = socket.Read(buf, sizeof(buf));
    if (!n.ok() || *n == 0) break;
    out.append(buf, *n);
  }
  return out;
}

std::string Req(const std::string& method, const std::string& target,
                const std::string& body = "", bool close = true) {
  std::string r = method + " " + target + " HTTP/1.1\r\nHost: t\r\n";
  if (close) r += "Connection: close\r\n";
  if (!body.empty() || method == "POST") {
    r += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  }
  r += "\r\n" + body;
  return r;
}

/// Both front-ends over the SAME store and service, so any response
/// difference is the front-end's fault, not the data's.
struct DualFixture {
  query::CubeStore store;
  query::QueryService service;
  ScubedServer threaded;
  ScubedServer reactor;

  DualFixture()
      : service(&store, {}),
        threaded(&service, &store, MakeServerOptions(Frontend::kThreads)),
        reactor(&service, &store, MakeServerOptions(Frontend::kReactor)) {
    store.Publish("default", MakeCube(0.2));
    Status t = threaded.Start();
    EXPECT_TRUE(t.ok()) << t;
    Status r = reactor.Start();
    EXPECT_TRUE(r.ok()) << r;
  }

  /// Runs the identical raw request against both front-ends and expects
  /// masked byte-identity; returns the reactor's raw response.
  std::string ExpectIdentical(const std::string& request) {
    const std::string via_threads = RawExchange(threaded.port(), request);
    const std::string via_reactor = RawExchange(reactor.port(), request);
    EXPECT_EQ(Mask(Dechunk(via_threads)), Mask(Dechunk(via_reactor)))
        << request;
    return via_reactor;
  }
};

TEST(ReactorParityTest, BufferedRoutesAreByteIdentical) {
  DualFixture fx;
  EXPECT_NE(fx.ExpectIdentical(Req("GET", "/healthz")).find("200 OK"),
            std::string::npos);
  fx.ExpectIdentical(Req("GET", "/cubes"));
  fx.ExpectIdentical(Req("POST", "/query", "SLICE sa=sex=F"));
  fx.ExpectIdentical(Req("POST", "/query?format=csv", "SLICE sa=sex=F"));
  fx.ExpectIdentical(Req("GET", "/no/such/route"));
  fx.ExpectIdentical(Req("POST", "/query", ""));  // 400: empty body
}

TEST(ReactorParityTest, HeadStripsTheBodyOnBothFrontEnds) {
  DualFixture fx;
  const std::string raw = fx.ExpectIdentical(Req("HEAD", "/healthz"));
  EXPECT_NE(raw.find("Content-Length:"), std::string::npos);
  EXPECT_EQ(raw.substr(raw.size() - 4), "\r\n\r\n");  // headers only
}

TEST(ReactorParityTest, StreamedAndCursorPagesAreByteIdentical) {
  DualFixture fx;
  const std::string streamed =
      fx.ExpectIdentical(Req("POST", "/query?stream=1", "SLICE sa=sex=F"));
  EXPECT_NE(streamed.find("Transfer-Encoding: chunked"), std::string::npos);
  EXPECT_NE(streamed.find("\"rows\":3"), std::string::npos);

  const std::string page1 = fx.ExpectIdentical(
      Req("POST", "/query?stream=1", "SLICE sa=sex=F LIMIT 2"));
  const size_t cursor_at = page1.find("\"next_cursor\":\"");
  ASSERT_NE(cursor_at, std::string::npos) << page1;
  const size_t start = cursor_at + 15;
  const std::string cursor =
      page1.substr(start, page1.find('"', start) - start);
  fx.ExpectIdentical(Req("POST", "/query?stream=1&cursor=" + cursor,
                         "SLICE sa=sex=F LIMIT 2"));
}

TEST(ReactorParityTest, MalformedRequestsGetTheSame400) {
  DualFixture fx;
  // Content-Length over the body cap fails in the header phase — both
  // front-ends must answer the identical 400 and close.
  const std::string raw = fx.ExpectIdentical(
      "POST /query HTTP/1.1\r\nHost: t\r\nContent-Length: 99999999\r\n\r\n");
  EXPECT_NE(raw.find("400 Bad Request"), std::string::npos);
  EXPECT_NE(raw.find("exceeds the limit"), std::string::npos);
}

TEST(ReactorParityTest, PipelinedKeepAliveServesEveryRequestInOrder) {
  DualFixture fx;
  // Three requests written before any response is read: the reactor must
  // park the pipelined bytes while each response is in flight.
  const std::string burst = Req("GET", "/healthz", "", /*close=*/false) +
                            Req("GET", "/cubes", "", /*close=*/false) +
                            Req("POST", "/query", "SLICE sa=sex=F");
  const std::string raw = fx.ExpectIdentical(burst);
  size_t heads = 0;
  for (size_t at = raw.find("HTTP/1.1 200 OK"); at != std::string::npos;
       at = raw.find("HTTP/1.1 200 OK", at + 1)) {
    ++heads;
  }
  EXPECT_EQ(heads, 3u);
}

TEST(ReactorParityTest, LineProtocolAnswersAndQuits) {
  DualFixture fx;
  const std::string raw =
      fx.ExpectIdentical("TOPK 1 BY dissimilarity\nQUIT\n");
  EXPECT_NE(raw.find("\"code\":\"OK\""), std::string::npos);
}

TEST(ReactorTest, SlowReaderBackpressuresWithoutLosingBytes) {
  // A streamed answer several times the outbox watermark, read by a
  // client that does not start reading until the writer has hit EAGAIN:
  // exercises EPOLLOUT resumption and the worker's watermark wait.
  query::CubeStore store;
  query::QueryService service(&store, {});
  store.Publish("default", MakeWideCube(6000));
  ScubedServer server(&service, &store,
                      MakeServerOptions(Frontend::kReactor));
  ASSERT_TRUE(server.Start().ok());

  auto connected = net::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(connected.ok());
  net::Socket socket = std::move(connected).value();
  ASSERT_TRUE(
      socket.WriteAll(Req("POST", "/query?stream=1", "SLICE sa=sex=F"))
          .ok());
  // Let the server fill the socket buffer and the outbox watermark.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  std::string out;
  char buf[4096];
  while (true) {
    auto n = socket.Read(buf, sizeof(buf));
    if (!n.ok() || *n == 0) break;
    out.append(buf, *n);
  }
  EXPECT_NE(out.find("\"rows\":6000"), std::string::npos);
  EXPECT_NE(out.find("\"code\":\"OK\""), std::string::npos);
  server.Stop();
}

TEST(ReactorTest, IdleConnectionsTimeOutAndCount) {
  query::CubeStore store;
  query::QueryService service(&store, {});
  store.Publish("default", MakeCube(0.2));
  ServerOptions options = MakeServerOptions(Frontend::kReactor);
  options.idle_timeout_seconds = 0.3;
  ScubedServer server(&service, &store, options);
  ASSERT_TRUE(server.Start().ok());

  auto connected = net::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(connected.ok());
  net::Socket socket = std::move(connected).value();
  WallTimer timer;
  char buf[64];
  auto n = socket.Read(buf, sizeof(buf));  // blocks until the server closes
  EXPECT_TRUE(n.ok() && *n == 0) << (n.ok() ? "bytes" : n.status().ToString());
  EXPECT_LT(timer.Millis(), 3000);
  EXPECT_GE(server.metrics().idle_timeout_closes.load(), 1u);
  server.Stop();
}

TEST(ReactorTest, HeaderDeadlineDropsAStalledRequest) {
  query::CubeStore store;
  query::QueryService service(&store, {});
  store.Publish("default", MakeCube(0.2));
  ServerOptions options = MakeServerOptions(Frontend::kReactor);
  options.request_read_seconds = 0.3;
  options.idle_timeout_seconds = 30;  // idle alone must not fire here
  ScubedServer server(&service, &store, options);
  ASSERT_TRUE(server.Start().ok());

  auto connected = net::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(connected.ok());
  net::Socket socket = std::move(connected).value();
  // A request that starts and then stalls forever.
  ASSERT_TRUE(socket.WriteAll("POST /query HTTP/1.1\r\nHost: t\r\nCon").ok());
  WallTimer timer;
  char buf[64];
  auto n = socket.Read(buf, sizeof(buf));
  EXPECT_TRUE(n.ok() && *n == 0) << (n.ok() ? "bytes" : n.status().ToString());
  EXPECT_LT(timer.Millis(), 3000);
  EXPECT_GE(server.metrics().header_deadline_closes.load(), 1u);
  server.Stop();
}

TEST(ReactorTest, GracefulStopClosesIdleKeepAliveConnections) {
  query::CubeStore store;
  query::QueryService service(&store, {});
  store.Publish("default", MakeCube(0.2));
  ScubedServer server(&service, &store,
                      MakeServerOptions(Frontend::kReactor));
  ASSERT_TRUE(server.Start().ok());

  std::vector<net::Socket> idle;
  for (int i = 0; i < 5; ++i) {
    auto connected = net::Connect("127.0.0.1", server.port());
    ASSERT_TRUE(connected.ok());
    idle.push_back(std::move(connected).value());
  }
  // Give the loop a beat to register them.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  WallTimer timer;
  server.Stop();
  EXPECT_LT(timer.Millis(), 2000);
  for (net::Socket& socket : idle) {
    char buf[16];
    auto n = socket.Read(buf, sizeof(buf));
    EXPECT_TRUE(n.ok() && *n == 0);  // orderly close
  }
  EXPECT_EQ(server.metrics().open_connections.load(), 0);
}

TEST(ThreadedGuardTest, SlowLorisTrickleCannotPinAHandlerThread) {
  // A byte-at-a-time header trickle resets the per-read SO_RCVTIMEO every
  // byte; only the total read deadline stops it. Before that fix this
  // connection held a handler thread for as long as it kept dripping.
  query::CubeStore store;
  query::QueryService service(&store, {});
  store.Publish("default", MakeCube(0.2));
  ServerOptions options = MakeServerOptions(Frontend::kThreads);
  options.request_read_seconds = 0.4;
  ScubedServer server(&service, &store, options);
  ASSERT_TRUE(server.Start().ok());

  auto connected = net::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(connected.ok());
  net::Socket socket = std::move(connected).value();
  ASSERT_TRUE(socket.WriteAll("GET /healthz HTTP/1.1\r\n").ok());
  socket.SetRecvTimeout(0.05);
  WallTimer timer;
  std::string got;
  bool over = false;
  while (timer.Millis() < 5000) {
    if (!socket.WriteAll("a").ok()) {  // keep dripping header bytes
      over = true;
      break;
    }
    char buf[256];
    auto n = socket.Read(buf, sizeof(buf));
    if (n.ok() && *n == 0) {
      over = true;
      break;
    }
    if (n.ok()) {
      got.append(buf, *n);
      continue;  // drain the 408 until the close
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  EXPECT_TRUE(over) << "server never gave up on the trickle";
  EXPECT_LT(timer.Millis(), 3000);
  EXPECT_NE(got.find("408"), std::string::npos) << got;
  EXPECT_GE(server.metrics().header_deadline_closes.load(), 1u);
  server.Stop();
}

TEST(ThreadedGuardTest, IdleTimeoutCountsOnTheThreadedFrontEnd) {
  query::CubeStore store;
  query::QueryService service(&store, {});
  store.Publish("default", MakeCube(0.2));
  ServerOptions options = MakeServerOptions(Frontend::kThreads);
  options.idle_timeout_seconds = 0.3;
  ScubedServer server(&service, &store, options);
  ASSERT_TRUE(server.Start().ok());

  auto connected = net::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(connected.ok());
  net::Socket socket = std::move(connected).value();
  WallTimer timer;
  char buf[16];
  auto n = socket.Read(buf, sizeof(buf));
  EXPECT_TRUE(n.ok() && *n == 0);
  EXPECT_LT(timer.Millis(), 3000);
  EXPECT_GE(server.metrics().idle_timeout_closes.load(), 1u);
  server.Stop();
}

}  // namespace
}  // namespace server
}  // namespace scube
