// Loopback integration tests for the scubed front-end: a real server on
// an ephemeral port, driven over real sockets — request in, JSON out,
// correct cells; plus the 503 shed path, per-request deadlines, the line
// protocol, and graceful Stop().

#include "server/server.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "net/http.h"
#include "net/socket.h"
#include "server/router.h"

namespace scube {
namespace server {
namespace {

cube::SegregationCube MakeCube(double f_north_dissimilarity) {
  relational::ItemCatalog catalog;
  using relational::AttributeKind;
  catalog.GetOrAdd(0, "sex", "F", AttributeKind::kSegregation);     // id 0
  catalog.GetOrAdd(1, "region", "north", AttributeKind::kContext);  // id 1
  catalog.GetOrAdd(2, "region", "south", AttributeKind::kContext);  // id 2

  auto make_cell = [](std::vector<fpm::ItemId> sa,
                      std::vector<fpm::ItemId> ca, uint64_t t, uint64_t m,
                      double d) {
    cube::CubeCell cell;
    cell.coords = cube::CellCoordinates{fpm::Itemset(std::move(sa)),
                                        fpm::Itemset(std::move(ca))};
    cell.context_size = t;
    cell.minority_size = m;
    cell.num_units = 2;
    cell.indexes.defined = true;
    cell.indexes.values[static_cast<size_t>(
        indexes::IndexKind::kDissimilarity)] = d;
    return cell;
  };
  cube::SegregationCube cube(std::move(catalog), {"u0", "u1"});
  cube.Insert(make_cell({0}, {}, 100, 40, 0.10));
  cube.Insert(make_cell({0}, {1}, 60, 25, 0.5));
  cube.Insert(make_cell({0}, {2}, 40, 15, f_north_dissimilarity));
  return cube;
}

/// A running server over a fresh store/service, bound to an ephemeral
/// loopback port.
struct Fixture {
  query::CubeStore store;
  query::QueryService service;
  ScubedServer server;

  explicit Fixture(query::ServiceOptions service_options = {})
      : service(&store, service_options),
        server(&service, &store, MakeServerOptions()) {
    store.Publish("default", MakeCube(0.2));
    Status started = server.Start();
    EXPECT_TRUE(started.ok()) << started;
  }

  static ServerOptions MakeServerOptions() {
    ServerOptions options;
    options.port = 0;
    options.loopback_only = true;
    options.num_connection_threads = 4;
    options.idle_poll_seconds = 0.1;  // fast Stop() in tests
    return options;
  }

  Result<net::HttpClientResponse> Call(const std::string& method,
                                       const std::string& target,
                                       const std::string& body = "") {
    auto connected = net::Connect("127.0.0.1", server.port());
    if (!connected.ok()) return connected.status();
    net::Socket socket = std::move(connected).value();
    net::BufferedReader reader(&socket);
    return net::RoundTrip(&socket, &reader, method, target, body);
  }
};

TEST(ScubedTest, StreamingRouteIsPostOnly) {
  // HEAD/GET must take the buffered route: the connection loop strips
  // HEAD bodies there, which the chunked path cannot do.
  net::HttpRequest req;
  req.path = "/query";
  req.params["stream"] = "1";
  req.method = "POST";
  EXPECT_TRUE(IsStreamingQuery(req));
  req.method = "HEAD";
  EXPECT_FALSE(IsStreamingQuery(req));
  req.method = "GET";
  EXPECT_FALSE(IsStreamingQuery(req));
}

TEST(ScubedTest, StreamedQueryIsChunkedAndMatchesBufferedRows) {
  Fixture fx;
  // Buffered answer first (and it seeds the cache for the streamed one —
  // cached replays must be byte-compatible with live streams).
  auto buffered = fx.Call("POST", "/query", "SLICE sa=sex=F");
  ASSERT_TRUE(buffered.ok()) << buffered.status();
  ASSERT_EQ(buffered->status, 200);

  auto streamed = fx.Call("POST", "/query?stream=1", "SLICE sa=sex=F");
  ASSERT_TRUE(streamed.ok()) << streamed.status();
  EXPECT_EQ(streamed->status, 200);
  // Streamed responses are chunked, never Content-Length framed.
  EXPECT_EQ(streamed->headers.at("transfer-encoding"), "chunked");
  EXPECT_EQ(streamed->headers.count("content-length"), 0u);
  // Envelope: query echo, the result object, the trailing status code.
  EXPECT_NE(streamed->body.find("\"query\":\"SLICE sa=sex=F\""),
            std::string::npos)
      << streamed->body;
  EXPECT_NE(streamed->body.find("\"code\":\"OK\""), std::string::npos);
  EXPECT_NE(streamed->body.find("\"rows\":3"), std::string::npos);
  // The same three cells as the buffered path.
  for (const char* label : {"\"T\":100", "\"T\":60", "\"T\":40"}) {
    EXPECT_NE(streamed->body.find(label), std::string::npos) << label;
    EXPECT_NE(buffered->body.find(label), std::string::npos) << label;
  }
}

TEST(ScubedTest, StreamedCursorPaginationOverHttp) {
  Fixture fx;
  auto page1 = fx.Call("POST", "/query?stream=1", "SLICE sa=sex=F LIMIT 2");
  ASSERT_TRUE(page1.ok()) << page1.status();
  ASSERT_EQ(page1->status, 200);
  // The trailing chunk carries the resume cursor.
  size_t at = page1->body.find("\"next_cursor\":\"");
  ASSERT_NE(at, std::string::npos) << page1->body;
  at += std::string("\"next_cursor\":\"").size();
  std::string cursor = page1->body.substr(at, page1->body.find('"', at) - at);
  ASSERT_FALSE(cursor.empty());

  auto page2 = fx.Call("POST", "/query?stream=1&cursor=" + cursor,
                       "SLICE sa=sex=F LIMIT 2");
  ASSERT_TRUE(page2.ok()) << page2.status();
  EXPECT_EQ(page2->status, 200);
  // Page 1 held T=100 and T=60; page 2 holds the remaining T=40 cell and
  // is exhausted (no further cursor).
  EXPECT_NE(page2->body.find("\"T\":40"), std::string::npos) << page2->body;
  EXPECT_EQ(page2->body.find("\"next_cursor\""), std::string::npos)
      << page2->body;
  EXPECT_NE(page2->body.find("\"rows\":1"), std::string::npos);
}

TEST(ScubedTest, StreamedCsvDownloadHeadersAndCursorComment) {
  Fixture fx;
  auto resp = fx.Call("POST", "/query?stream=1&format=csv",
                      "SLICE sa=sex=F LIMIT 1");
  ASSERT_TRUE(resp.ok()) << resp.status();
  EXPECT_EQ(resp->status, 200);
  EXPECT_EQ(resp->headers.at("content-type"), "text/csv; charset=utf-8");
  EXPECT_EQ(resp->headers.at("content-disposition"),
            "attachment; filename=\"scube_query.csv\"");
  EXPECT_EQ(resp->headers.at("transfer-encoding"), "chunked");
  EXPECT_NE(resp->body.find("sa,ca,T,M,units"), std::string::npos);
  EXPECT_NE(resp->body.find("# next_cursor: "), std::string::npos)
      << resp->body;
}

TEST(ScubedTest, StreamedKeepAliveServesFollowUpRequests) {
  Fixture fx;
  auto connected = net::Connect("127.0.0.1", fx.server.port());
  ASSERT_TRUE(connected.ok());
  net::Socket socket = std::move(connected).value();
  net::BufferedReader reader(&socket);
  // Streamed request, then a buffered one on the same connection: the
  // chunked terminator must leave the stream at a clean message boundary.
  auto first = net::RoundTrip(&socket, &reader, "POST", "/query?stream=1",
                              "SLICE sa=sex=F");
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_EQ(first->status, 200);
  auto second = net::RoundTrip(&socket, &reader, "GET", "/healthz");
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_EQ(second->status, 200);
  EXPECT_NE(second->body.find("\"status\":\"ok\""), std::string::npos);
}

TEST(ScubedTest, StreamedErrorsBeforeFirstByteAreBuffered) {
  Fixture fx;
  // Parse error: plain 400, not a chunked stream.
  auto bad = fx.Call("POST", "/query?stream=1", "FROBNICATE");
  ASSERT_TRUE(bad.ok()) << bad.status();
  EXPECT_EQ(bad->status, 400);
  EXPECT_EQ(bad->headers.count("transfer-encoding"), 0u);

  // Unknown cube: 404.
  auto missing = fx.Call("POST", "/query?stream=1",
                         "TOPK 1 BY gini FROM nowhere");
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing->status, 404);

  // Multi-statement bodies are a buffered-path feature.
  auto multi = fx.Call("POST", "/query?stream=1",
                       "SLICE sa=sex=F\nSLICE sa=sex=F\n");
  ASSERT_TRUE(multi.ok());
  EXPECT_EQ(multi->status, 400);
  EXPECT_NE(multi->body.find("exactly one statement"), std::string::npos);

  // Bad cursors are rejected up front.
  auto garbage = fx.Call("POST", "/query?stream=1&cursor=garbage!",
                         "SLICE sa=sex=F");
  ASSERT_TRUE(garbage.ok());
  EXPECT_EQ(garbage->status, 400);
}

TEST(ScubedTest, MetricsExposeStreamingCounters) {
  Fixture fx;
  auto streamed = fx.Call("POST", "/query?stream=1", "SLICE sa=sex=F");
  ASSERT_TRUE(streamed.ok());
  auto metrics = fx.Call("GET", "/metrics");
  ASSERT_TRUE(metrics.ok());
  EXPECT_NE(metrics->body.find("scubed_streamed_requests_total 1"),
            std::string::npos)
      << metrics->body;
  EXPECT_NE(metrics->body.find("scubed_streamed_rows_total 3"),
            std::string::npos);
  EXPECT_NE(metrics->body.find("scubed_streamed_bytes_total"),
            std::string::npos);
  EXPECT_NE(metrics->body.find("scubed_streamed_errors_total 0"),
            std::string::npos);
  EXPECT_NE(metrics->body.find("scubed_streamed_buffer_peak_bytes"),
            std::string::npos);
  EXPECT_NE(metrics->body.find("scubed_buffered_body_peak_bytes"),
            std::string::npos);
}

TEST(ScubedTest, HealthzAnswers) {
  Fixture fx;
  auto resp = fx.Call("GET", "/healthz");
  ASSERT_TRUE(resp.ok()) << resp.status();
  EXPECT_EQ(resp->status, 200);
  EXPECT_NE(resp->body.find("\"status\":\"ok\""), std::string::npos);
}

TEST(ScubedTest, QueryReturnsCorrectCellsAsJson) {
  Fixture fx;
  auto resp = fx.Call("POST", "/query", "SLICE sa=sex=F | ca=region=north");
  ASSERT_TRUE(resp.ok()) << resp.status();
  EXPECT_EQ(resp->status, 200);
  // The north cell: T=60, M=25, dissimilarity 0.5.
  EXPECT_NE(resp->body.find("\"code\":\"OK\""), std::string::npos)
      << resp->body;
  EXPECT_NE(resp->body.find("\"T\":60"), std::string::npos) << resp->body;
  EXPECT_NE(resp->body.find("\"M\":25"), std::string::npos) << resp->body;
  EXPECT_NE(resp->body.find("\"dissimilarity\":0.5"), std::string::npos)
      << resp->body;
}

TEST(ScubedTest, BatchAndCsvFormat) {
  Fixture fx;
  auto resp = fx.Call("POST", "/query?format=csv",
                      "SLICE sa=sex=F | ca=region=north\n"
                      "TOPK 1 BY dissimilarity WHERE M >= 1\n");
  ASSERT_TRUE(resp.ok()) << resp.status();
  EXPECT_EQ(resp->status, 200);
  EXPECT_EQ(resp->headers.at("content-type"), "text/csv; charset=utf-8");
  // A browser hitting format=csv should get a download, not a page.
  EXPECT_EQ(resp->headers.at("content-disposition"),
            "attachment; filename=\"scube_query.csv\"");
  EXPECT_NE(resp->body.find("# query 0:"), std::string::npos) << resp->body;
  EXPECT_NE(resp->body.find("# query 1:"), std::string::npos) << resp->body;
  EXPECT_NE(resp->body.find("sa,ca,T,M,units"), std::string::npos);
  EXPECT_NE(resp->body.find("sex=F,region=north,60,25,2"),
            std::string::npos)
      << resp->body;
}

TEST(ScubedTest, PerQueryErrorsAreReportedInBand) {
  Fixture fx;
  auto resp = fx.Call("POST", "/query",
                      "TOPK 1 BY\nSLICE sa=sex=F | ca=region=north");
  ASSERT_TRUE(resp.ok()) << resp.status();
  EXPECT_EQ(resp->status, 200);  // batch-level OK, per-query codes in body
  EXPECT_NE(resp->body.find("\"code\":\"ParseError\""), std::string::npos)
      << resp->body;
  EXPECT_NE(resp->body.find("\"code\":\"OK\""), std::string::npos)
      << resp->body;
}

TEST(ScubedTest, BadRequestsAnswer4xx) {
  Fixture fx;
  auto empty = fx.Call("POST", "/query", "\n# comment only\n");
  ASSERT_TRUE(empty.ok()) << empty.status();
  EXPECT_EQ(empty->status, 400);

  auto format = fx.Call("POST", "/query?format=xml", "TOPK 1 BY gini");
  ASSERT_TRUE(format.ok());
  EXPECT_EQ(format->status, 400);

  auto missing = fx.Call("GET", "/nope");
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing->status, 404);

  auto method = fx.Call("GET", "/query");
  ASSERT_TRUE(method.ok());
  EXPECT_EQ(method->status, 405);
}

TEST(ScubedTest, AdmissionShedsWith503AndRetryAfter) {
  query::ServiceOptions options;
  options.max_pending = 0;  // shed everything
  Fixture fx(options);
  auto resp = fx.Call("POST", "/query", "TOPK 1 BY dissimilarity");
  ASSERT_TRUE(resp.ok()) << resp.status();
  EXPECT_EQ(resp->status, 503);
  EXPECT_EQ(resp->headers.at("retry-after"), "1");
  EXPECT_NE(resp->body.find("admission queue full"), std::string::npos)
      << resp->body;
}

TEST(ScubedTest, DeadlineParamYieldsDeadlineExceededCode) {
  Fixture fx;
  // A microsecond deadline expires long before any worker chunk runs
  // (parse + enqueue + wakeup alone dwarf it).
  auto resp = fx.Call("POST", "/query?deadline_ms=0.001",
                      "SLICE sa=sex=F | ca=region=north");
  ASSERT_TRUE(resp.ok()) << resp.status();
  EXPECT_EQ(resp->status, 200);
  EXPECT_NE(resp->body.find("\"code\":\"DeadlineExceeded\""),
            std::string::npos)
      << resp->body;
}

TEST(ScubedTest, NonPositiveDeadlineParamIsRejected) {
  Fixture fx;
  auto zero = fx.Call("POST", "/query?deadline_ms=0", "TOPK 1 BY gini");
  ASSERT_TRUE(zero.ok()) << zero.status();
  EXPECT_EQ(zero->status, 400);
  auto negative = fx.Call("POST", "/query?deadline_ms=-5", "TOPK 1 BY gini");
  ASSERT_TRUE(negative.ok());
  EXPECT_EQ(negative->status, 400);
}

TEST(ScubedTest, CubesAndMetricsEndpoints) {
  Fixture fx;
  ASSERT_TRUE(fx.Call("POST", "/query", "TOPK 1 BY dissimilarity WHERE M >= 1")
                  .ok());

  auto cubes = fx.Call("GET", "/cubes");
  ASSERT_TRUE(cubes.ok());
  EXPECT_EQ(cubes->status, 200);
  EXPECT_NE(cubes->body.find("\"name\":\"default\""), std::string::npos);
  EXPECT_NE(cubes->body.find("\"version\":1"), std::string::npos);

  auto metrics = fx.Call("GET", "/metrics");
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(metrics->status, 200);
  EXPECT_NE(metrics->body.find("scubed_queries_accepted_total 1"),
            std::string::npos)
      << metrics->body;
  EXPECT_NE(metrics->body.find("scubed_connections_total"),
            std::string::npos);
  EXPECT_NE(metrics->body.find("scubed_cache_hit_rate"), std::string::npos);
}

TEST(ScubedTest, KeepAliveServesMultipleRequestsOnOneConnection) {
  Fixture fx;
  auto connected = net::Connect("127.0.0.1", fx.server.port());
  ASSERT_TRUE(connected.ok());
  net::Socket socket = std::move(connected).value();
  net::BufferedReader reader(&socket);

  for (int i = 0; i < 3; ++i) {
    auto resp = net::RoundTrip(&socket, &reader, "POST", "/query",
                               "TOPK 1 BY dissimilarity WHERE M >= 1");
    ASSERT_TRUE(resp.ok()) << resp.status();
    EXPECT_EQ(resp->status, 200);
  }
}

TEST(ScubedTest, LineProtocolAnswersOneJsonPerLine) {
  Fixture fx;
  auto connected = net::Connect("127.0.0.1", fx.server.port());
  ASSERT_TRUE(connected.ok());
  net::Socket socket = std::move(connected).value();
  ASSERT_TRUE(socket
                  .WriteAll("SLICE sa=sex=F | ca=region=north\n"
                            "TOPK 1 BY\n")
                  .ok());
  net::BufferedReader reader(&socket);
  auto first = reader.ReadLine();
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_NE(first->find("\"code\":\"OK\""), std::string::npos) << *first;
  EXPECT_NE(first->find("\"T\":60"), std::string::npos) << *first;
  auto second = reader.ReadLine();
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_NE(second->find("\"code\":\"ParseError\""), std::string::npos)
      << *second;
  ASSERT_TRUE(socket.WriteAll("QUIT\n").ok());
}

TEST(ScubedTest, StopIsGracefulAndIdempotent) {
  Fixture fx;
  ASSERT_TRUE(
      fx.Call("POST", "/query", "TOPK 1 BY dissimilarity WHERE M >= 1").ok());
  fx.server.Stop();
  fx.server.Stop();  // idempotent
  EXPECT_FALSE(fx.server.running());
  // The service outlives the server and still answers direct calls.
  auto direct = fx.service.ExecuteOne("TOPK 1 BY dissimilarity WHERE M >= 1");
  EXPECT_TRUE(direct.status.ok()) << direct.status;
}

}  // namespace
}  // namespace server
}  // namespace scube
