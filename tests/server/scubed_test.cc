// Loopback integration tests for the scubed front-end: a real server on
// an ephemeral port, driven over real sockets — request in, JSON out,
// correct cells; plus the 503 shed path, per-request deadlines, the line
// protocol, and graceful Stop().

#include "server/server.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "net/http.h"
#include "net/socket.h"
#include "server/router.h"

namespace scube {
namespace server {
namespace {

cube::SegregationCube MakeCube(double f_north_dissimilarity) {
  relational::ItemCatalog catalog;
  using relational::AttributeKind;
  catalog.GetOrAdd(0, "sex", "F", AttributeKind::kSegregation);     // id 0
  catalog.GetOrAdd(1, "region", "north", AttributeKind::kContext);  // id 1
  catalog.GetOrAdd(2, "region", "south", AttributeKind::kContext);  // id 2

  auto make_cell = [](std::vector<fpm::ItemId> sa,
                      std::vector<fpm::ItemId> ca, uint64_t t, uint64_t m,
                      double d) {
    cube::CubeCell cell;
    cell.coords = cube::CellCoordinates{fpm::Itemset(std::move(sa)),
                                        fpm::Itemset(std::move(ca))};
    cell.context_size = t;
    cell.minority_size = m;
    cell.num_units = 2;
    cell.indexes.defined = true;
    cell.indexes.values[static_cast<size_t>(
        indexes::IndexKind::kDissimilarity)] = d;
    return cell;
  };
  cube::SegregationCube cube(std::move(catalog), {"u0", "u1"});
  cube.Insert(make_cell({0}, {}, 100, 40, 0.10));
  cube.Insert(make_cell({0}, {1}, 60, 25, 0.5));
  cube.Insert(make_cell({0}, {2}, 40, 15, f_north_dissimilarity));
  return cube;
}

/// A running server over a fresh store/service, bound to an ephemeral
/// loopback port.
struct Fixture {
  query::CubeStore store;
  query::QueryService service;
  ScubedServer server;

  explicit Fixture(query::ServiceOptions service_options = {},
                   ServerOptions server_options = MakeServerOptions())
      : service(&store, service_options),
        server(&service, &store, server_options) {
    store.Publish("default", MakeCube(0.2));
    Status started = server.Start();
    EXPECT_TRUE(started.ok()) << started;
  }

  static ServerOptions MakeServerOptions() {
    ServerOptions options;
    options.port = 0;
    options.loopback_only = true;
    options.num_connection_threads = 4;
    options.idle_poll_seconds = 0.1;  // fast Stop() in tests
    return options;
  }

  Result<net::HttpClientResponse> Call(const std::string& method,
                                       const std::string& target,
                                       const std::string& body = "") {
    auto connected = net::Connect("127.0.0.1", server.port());
    if (!connected.ok()) return connected.status();
    net::Socket socket = std::move(connected).value();
    net::BufferedReader reader(&socket);
    return net::RoundTrip(&socket, &reader, method, target, body);
  }
};

TEST(ScubedTest, StreamingRouteIsPostOnly) {
  // HEAD/GET must take the buffered route: the connection loop strips
  // HEAD bodies there, which the chunked path cannot do.
  net::HttpRequest req;
  req.path = "/query";
  req.params["stream"] = "1";
  req.method = "POST";
  EXPECT_TRUE(IsStreamingQuery(req));
  req.method = "HEAD";
  EXPECT_FALSE(IsStreamingQuery(req));
  req.method = "GET";
  EXPECT_FALSE(IsStreamingQuery(req));
}

TEST(ScubedTest, StreamedQueryIsChunkedAndMatchesBufferedRows) {
  Fixture fx;
  // Buffered answer first (and it seeds the cache for the streamed one —
  // cached replays must be byte-compatible with live streams).
  auto buffered = fx.Call("POST", "/query", "SLICE sa=sex=F");
  ASSERT_TRUE(buffered.ok()) << buffered.status();
  ASSERT_EQ(buffered->status, 200);

  auto streamed = fx.Call("POST", "/query?stream=1", "SLICE sa=sex=F");
  ASSERT_TRUE(streamed.ok()) << streamed.status();
  EXPECT_EQ(streamed->status, 200);
  // Streamed responses are chunked, never Content-Length framed.
  EXPECT_EQ(streamed->headers.at("transfer-encoding"), "chunked");
  EXPECT_EQ(streamed->headers.count("content-length"), 0u);
  // Envelope: query echo, the result object, the trailing status code.
  EXPECT_NE(streamed->body.find("\"query\":\"SLICE sa=sex=F\""),
            std::string::npos)
      << streamed->body;
  EXPECT_NE(streamed->body.find("\"code\":\"OK\""), std::string::npos);
  EXPECT_NE(streamed->body.find("\"rows\":3"), std::string::npos);
  // The same three cells as the buffered path.
  for (const char* label : {"\"T\":100", "\"T\":60", "\"T\":40"}) {
    EXPECT_NE(streamed->body.find(label), std::string::npos) << label;
    EXPECT_NE(buffered->body.find(label), std::string::npos) << label;
  }
}

TEST(ScubedTest, StreamedCursorPaginationOverHttp) {
  Fixture fx;
  auto page1 = fx.Call("POST", "/query?stream=1", "SLICE sa=sex=F LIMIT 2");
  ASSERT_TRUE(page1.ok()) << page1.status();
  ASSERT_EQ(page1->status, 200);
  // The trailing chunk carries the resume cursor.
  size_t at = page1->body.find("\"next_cursor\":\"");
  ASSERT_NE(at, std::string::npos) << page1->body;
  at += std::string("\"next_cursor\":\"").size();
  std::string cursor = page1->body.substr(at, page1->body.find('"', at) - at);
  ASSERT_FALSE(cursor.empty());

  auto page2 = fx.Call("POST", "/query?stream=1&cursor=" + cursor,
                       "SLICE sa=sex=F LIMIT 2");
  ASSERT_TRUE(page2.ok()) << page2.status();
  EXPECT_EQ(page2->status, 200);
  // Page 1 held T=100 and T=60; page 2 holds the remaining T=40 cell and
  // is exhausted (no further cursor).
  EXPECT_NE(page2->body.find("\"T\":40"), std::string::npos) << page2->body;
  EXPECT_EQ(page2->body.find("\"next_cursor\""), std::string::npos)
      << page2->body;
  EXPECT_NE(page2->body.find("\"rows\":1"), std::string::npos);
}

TEST(ScubedTest, StreamedCsvDownloadHeadersAndCursorComment) {
  Fixture fx;
  auto resp = fx.Call("POST", "/query?stream=1&format=csv",
                      "SLICE sa=sex=F LIMIT 1");
  ASSERT_TRUE(resp.ok()) << resp.status();
  EXPECT_EQ(resp->status, 200);
  EXPECT_EQ(resp->headers.at("content-type"), "text/csv; charset=utf-8");
  EXPECT_EQ(resp->headers.at("content-disposition"),
            "attachment; filename=\"scube_query.csv\"");
  EXPECT_EQ(resp->headers.at("transfer-encoding"), "chunked");
  EXPECT_NE(resp->body.find("sa,ca,T,M,units"), std::string::npos);
  EXPECT_NE(resp->body.find("# next_cursor: "), std::string::npos)
      << resp->body;
}

TEST(ScubedTest, StreamedKeepAliveServesFollowUpRequests) {
  Fixture fx;
  auto connected = net::Connect("127.0.0.1", fx.server.port());
  ASSERT_TRUE(connected.ok());
  net::Socket socket = std::move(connected).value();
  net::BufferedReader reader(&socket);
  // Streamed request, then a buffered one on the same connection: the
  // chunked terminator must leave the stream at a clean message boundary.
  auto first = net::RoundTrip(&socket, &reader, "POST", "/query?stream=1",
                              "SLICE sa=sex=F");
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_EQ(first->status, 200);
  auto second = net::RoundTrip(&socket, &reader, "GET", "/healthz");
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_EQ(second->status, 200);
  EXPECT_NE(second->body.find("\"status\":\"ok\""), std::string::npos);
}

TEST(ScubedTest, StreamedErrorsBeforeFirstByteAreBuffered) {
  Fixture fx;
  // Parse error: plain 400, not a chunked stream.
  auto bad = fx.Call("POST", "/query?stream=1", "FROBNICATE");
  ASSERT_TRUE(bad.ok()) << bad.status();
  EXPECT_EQ(bad->status, 400);
  EXPECT_EQ(bad->headers.count("transfer-encoding"), 0u);

  // Unknown cube: 404.
  auto missing = fx.Call("POST", "/query?stream=1",
                         "TOPK 1 BY gini FROM nowhere");
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing->status, 404);

  // Multi-statement bodies are a buffered-path feature.
  auto multi = fx.Call("POST", "/query?stream=1",
                       "SLICE sa=sex=F\nSLICE sa=sex=F\n");
  ASSERT_TRUE(multi.ok());
  EXPECT_EQ(multi->status, 400);
  EXPECT_NE(multi->body.find("exactly one statement"), std::string::npos);

  // Bad cursors are rejected up front.
  auto garbage = fx.Call("POST", "/query?stream=1&cursor=garbage!",
                         "SLICE sa=sex=F");
  ASSERT_TRUE(garbage.ok());
  EXPECT_EQ(garbage->status, 400);
}

TEST(ScubedTest, MetricsExposeStreamingCounters) {
  Fixture fx;
  auto streamed = fx.Call("POST", "/query?stream=1", "SLICE sa=sex=F");
  ASSERT_TRUE(streamed.ok());
  auto metrics = fx.Call("GET", "/metrics");
  ASSERT_TRUE(metrics.ok());
  EXPECT_NE(metrics->body.find("scubed_streamed_requests_total 1"),
            std::string::npos)
      << metrics->body;
  EXPECT_NE(metrics->body.find("scubed_streamed_rows_total 3"),
            std::string::npos);
  EXPECT_NE(metrics->body.find("scubed_streamed_bytes_total"),
            std::string::npos);
  EXPECT_NE(metrics->body.find("scubed_streamed_errors_total 0"),
            std::string::npos);
  EXPECT_NE(metrics->body.find("scubed_streamed_buffer_peak_bytes"),
            std::string::npos);
  EXPECT_NE(metrics->body.find("scubed_buffered_body_peak_bytes"),
            std::string::npos);
}

TEST(ScubedTest, DebugTraceAttachesSpanTreeToBufferedEnvelope) {
  Fixture fx;
  // Without the param, no trace rides in the envelope.
  auto plain = fx.Call("POST", "/query", "SLICE sa=sex=F");
  ASSERT_TRUE(plain.ok()) << plain.status();
  EXPECT_EQ(plain->body.find("\"trace\""), std::string::npos);

  // A statement the plain call did NOT cache: a cache hit would answer
  // inside "prepare" and the queue_wait/execute spans would rightly be
  // absent.
  auto traced = fx.Call("POST", "/query?debug=trace",
                        "SLICE sa=sex=F | ca=region=north");
  ASSERT_TRUE(traced.ok()) << traced.status();
  EXPECT_EQ(traced->status, 200);
  size_t at = traced->body.find("\"trace\":{\"trace_id\":\"");
  ASSERT_NE(at, std::string::npos) << traced->body;
  // The serving path's named phases are all present and closed (no
  // still-open spans leak into the rendered tree).
  for (const char* name : {"\"name\":\"admit\"", "\"name\":\"prepare\"",
                           "\"name\":\"queue_wait\"", "\"name\":\"execute\"",
                           "\"name\":\"serialize\""}) {
    EXPECT_NE(traced->body.find(name), std::string::npos) << name;
  }
  // total_ms is a positive wall time; the exact value is scheduler noise,
  // but anything over a minute means a broken clock, not a slow box.
  at = traced->body.find("\"total_ms\":", at);
  ASSERT_NE(at, std::string::npos);
  double total_ms = std::atof(traced->body.c_str() + at +
                              std::string("\"total_ms\":").size());
  EXPECT_GT(total_ms, 0.0);
  EXPECT_LT(total_ms, 60000.0);
  // The envelope stays valid JSON with the trace spliced in.
  EXPECT_EQ(traced->body.find("]}\"trace\""), std::string::npos);
}

TEST(ScubedTest, DebugTraceAttachesSpanTreeToStreamedTail) {
  Fixture fx;
  auto resp = fx.Call("POST", "/query?stream=1&debug=trace",
                      "SLICE sa=sex=F");
  ASSERT_TRUE(resp.ok()) << resp.status();
  EXPECT_EQ(resp->status, 200);
  EXPECT_EQ(resp->headers.at("transfer-encoding"), "chunked");
  // The span tree rides in the trailer chunk of the streamed envelope.
  size_t trace_at = resp->body.find("\"trace\":{\"trace_id\":\"");
  ASSERT_NE(trace_at, std::string::npos) << resp->body;
  for (const char* name :
       {"\"name\":\"first_byte\"", "\"name\":\"execute\""}) {
    EXPECT_NE(resp->body.find(name), std::string::npos) << name;
  }
  // The streamed-path trace must arrive after the rows, not before.
  EXPECT_LT(resp->body.find("\"rows\":3"), trace_at);

  // Plain streamed requests carry no trace.
  auto plain = fx.Call("POST", "/query?stream=1", "SLICE sa=sex=F");
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain->body.find("\"trace\""), std::string::npos);
}

TEST(ScubedTest, LatencyHistogramsAppearOnMetricsAfterTraffic) {
  Fixture fx;
  ASSERT_TRUE(fx.Call("POST", "/query", "SLICE sa=sex=F").ok());
  ASSERT_TRUE(fx.Call("POST", "/query?stream=1", "TOPK 1 BY dissimilarity "
                      "WHERE M >= 1").ok());
  auto metrics = fx.Call("GET", "/metrics");
  ASSERT_TRUE(metrics.ok());
  const std::string& body = metrics->body;
  // Per-route request latency: one buffered query and one stream landed.
  EXPECT_NE(body.find("scubed_request_latency_seconds_count"
                      "{route=\"query\"} 1"),
            std::string::npos)
      << body.substr(0, 3000);
  EXPECT_NE(body.find("scubed_request_latency_seconds_count"
                      "{route=\"stream\"} 1"),
            std::string::npos);
  // Per-verb execution latency.
  EXPECT_NE(body.find("scubed_query_latency_seconds_count"
                      "{verb=\"slice\"} 1"),
            std::string::npos);
  EXPECT_NE(body.find("scubed_query_latency_seconds_count"
                      "{verb=\"topk\"} 1"),
            std::string::npos);
  // Streaming TTFB observed exactly once, with its histogram family
  // header present.
  EXPECT_NE(body.find("scubed_stream_ttfb_seconds_count 1"),
            std::string::npos);
  EXPECT_NE(body.find("# TYPE scubed_stream_ttfb_seconds histogram"),
            std::string::npos);
  EXPECT_NE(body.find("# TYPE scubed_request_latency_seconds histogram"),
            std::string::npos);
}

TEST(ScubedTest, SlowQueryLogCapturesOffendersOverHttp) {
  std::FILE* sink = std::tmpfile();
  ASSERT_NE(sink, nullptr);
  ServerOptions server_options = Fixture::MakeServerOptions();
  server_options.slow_query_ms = 1e-6;  // everything is an offender
  server_options.slow_query_sink = sink;
  Fixture fx({}, server_options);

  ASSERT_TRUE(fx.Call("POST", "/query", "SLICE sa=sex=F").ok());
  ASSERT_TRUE(fx.Call("POST", "/query?stream=1", "SLICE sa=sex=F").ok());

  std::rewind(sink);
  char buf[16384];
  size_t n = std::fread(buf, 1, sizeof(buf) - 1, sink);
  buf[n] = '\0';
  std::string content(buf);
  // One line per offender, each with its route, the statement and the
  // span tree (slow-log mode forces tracing even without ?debug=trace).
  EXPECT_NE(content.find("\"route\":\"query\""), std::string::npos)
      << content;
  EXPECT_NE(content.find("\"route\":\"stream\""), std::string::npos);
  EXPECT_NE(content.find("\"query\":\"SLICE sa=sex=F\""), std::string::npos);
  EXPECT_NE(content.find("\"trace\":{\"trace_id\":\""), std::string::npos);
  EXPECT_NE(content.find("\"name\":\"execute\""), std::string::npos);

  // But the envelope stays clean: forced tracing is not ?debug=trace.
  auto resp = fx.Call("POST", "/query", "SLICE sa=sex=F");
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->body.find("\"trace\""), std::string::npos);

  // The counter moved.
  auto metrics = fx.Call("GET", "/metrics");
  ASSERT_TRUE(metrics.ok());
  // Match the sample line, not the "# HELP scubed_slow_queries_total …"
  // comment that precedes it.
  size_t at = metrics->body.find("\nscubed_slow_queries_total ");
  ASSERT_NE(at, std::string::npos);
  int slow = std::atoi(metrics->body.c_str() + at +
                       std::string("\nscubed_slow_queries_total ").size());
  EXPECT_GE(slow, 3);
  // The log holds the sink pointer: close only after the server stopped.
  fx.server.Stop();
  std::fclose(sink);
}

TEST(ScubedTest, HealthzAnswers) {
  Fixture fx;
  auto resp = fx.Call("GET", "/healthz");
  ASSERT_TRUE(resp.ok()) << resp.status();
  EXPECT_EQ(resp->status, 200);
  EXPECT_NE(resp->body.find("\"status\":\"ok\""), std::string::npos);
}

TEST(ScubedTest, QueryReturnsCorrectCellsAsJson) {
  Fixture fx;
  auto resp = fx.Call("POST", "/query", "SLICE sa=sex=F | ca=region=north");
  ASSERT_TRUE(resp.ok()) << resp.status();
  EXPECT_EQ(resp->status, 200);
  // The north cell: T=60, M=25, dissimilarity 0.5.
  EXPECT_NE(resp->body.find("\"code\":\"OK\""), std::string::npos)
      << resp->body;
  EXPECT_NE(resp->body.find("\"T\":60"), std::string::npos) << resp->body;
  EXPECT_NE(resp->body.find("\"M\":25"), std::string::npos) << resp->body;
  EXPECT_NE(resp->body.find("\"dissimilarity\":0.5"), std::string::npos)
      << resp->body;
}

TEST(ScubedTest, BatchAndCsvFormat) {
  Fixture fx;
  auto resp = fx.Call("POST", "/query?format=csv",
                      "SLICE sa=sex=F | ca=region=north\n"
                      "TOPK 1 BY dissimilarity WHERE M >= 1\n");
  ASSERT_TRUE(resp.ok()) << resp.status();
  EXPECT_EQ(resp->status, 200);
  EXPECT_EQ(resp->headers.at("content-type"), "text/csv; charset=utf-8");
  // A browser hitting format=csv should get a download, not a page.
  EXPECT_EQ(resp->headers.at("content-disposition"),
            "attachment; filename=\"scube_query.csv\"");
  EXPECT_NE(resp->body.find("# query 0:"), std::string::npos) << resp->body;
  EXPECT_NE(resp->body.find("# query 1:"), std::string::npos) << resp->body;
  EXPECT_NE(resp->body.find("sa,ca,T,M,units"), std::string::npos);
  EXPECT_NE(resp->body.find("sex=F,region=north,60,25,2"),
            std::string::npos)
      << resp->body;
}

TEST(ScubedTest, PerQueryErrorsAreReportedInBand) {
  Fixture fx;
  auto resp = fx.Call("POST", "/query",
                      "TOPK 1 BY\nSLICE sa=sex=F | ca=region=north");
  ASSERT_TRUE(resp.ok()) << resp.status();
  EXPECT_EQ(resp->status, 200);  // batch-level OK, per-query codes in body
  EXPECT_NE(resp->body.find("\"code\":\"ParseError\""), std::string::npos)
      << resp->body;
  EXPECT_NE(resp->body.find("\"code\":\"OK\""), std::string::npos)
      << resp->body;
}

TEST(ScubedTest, BadRequestsAnswer4xx) {
  Fixture fx;
  auto empty = fx.Call("POST", "/query", "\n# comment only\n");
  ASSERT_TRUE(empty.ok()) << empty.status();
  EXPECT_EQ(empty->status, 400);

  auto format = fx.Call("POST", "/query?format=xml", "TOPK 1 BY gini");
  ASSERT_TRUE(format.ok());
  EXPECT_EQ(format->status, 400);

  auto missing = fx.Call("GET", "/nope");
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing->status, 404);

  auto method = fx.Call("GET", "/query");
  ASSERT_TRUE(method.ok());
  EXPECT_EQ(method->status, 405);
}

TEST(ScubedTest, AdmissionShedsWith503AndRetryAfter) {
  query::ServiceOptions options;
  options.max_pending = 0;  // shed everything
  Fixture fx(options);
  auto resp = fx.Call("POST", "/query", "TOPK 1 BY dissimilarity");
  ASSERT_TRUE(resp.ok()) << resp.status();
  EXPECT_EQ(resp->status, 503);
  EXPECT_EQ(resp->headers.at("retry-after"), "1");
  EXPECT_NE(resp->body.find("admission queue full"), std::string::npos)
      << resp->body;
}

TEST(ScubedTest, DeadlineParamYieldsDeadlineExceededCode) {
  Fixture fx;
  // A microsecond deadline expires long before any worker chunk runs
  // (parse + enqueue + wakeup alone dwarf it).
  auto resp = fx.Call("POST", "/query?deadline_ms=0.001",
                      "SLICE sa=sex=F | ca=region=north");
  ASSERT_TRUE(resp.ok()) << resp.status();
  EXPECT_EQ(resp->status, 200);
  EXPECT_NE(resp->body.find("\"code\":\"DeadlineExceeded\""),
            std::string::npos)
      << resp->body;
}

TEST(ScubedTest, NonPositiveDeadlineParamIsRejected) {
  Fixture fx;
  auto zero = fx.Call("POST", "/query?deadline_ms=0", "TOPK 1 BY gini");
  ASSERT_TRUE(zero.ok()) << zero.status();
  EXPECT_EQ(zero->status, 400);
  auto negative = fx.Call("POST", "/query?deadline_ms=-5", "TOPK 1 BY gini");
  ASSERT_TRUE(negative.ok());
  EXPECT_EQ(negative->status, 400);
}

TEST(ScubedTest, CubesAndMetricsEndpoints) {
  Fixture fx;
  ASSERT_TRUE(fx.Call("POST", "/query", "TOPK 1 BY dissimilarity WHERE M >= 1")
                  .ok());

  auto cubes = fx.Call("GET", "/cubes");
  ASSERT_TRUE(cubes.ok());
  EXPECT_EQ(cubes->status, 200);
  EXPECT_NE(cubes->body.find("\"name\":\"default\""), std::string::npos);
  EXPECT_NE(cubes->body.find("\"version\":1"), std::string::npos);

  auto metrics = fx.Call("GET", "/metrics");
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(metrics->status, 200);
  EXPECT_NE(metrics->body.find("scubed_queries_accepted_total 1"),
            std::string::npos)
      << metrics->body;
  EXPECT_NE(metrics->body.find("scubed_connections_total"),
            std::string::npos);
  EXPECT_NE(metrics->body.find("scubed_cache_hit_rate"), std::string::npos);
}

TEST(ScubedTest, KeepAliveServesMultipleRequestsOnOneConnection) {
  Fixture fx;
  auto connected = net::Connect("127.0.0.1", fx.server.port());
  ASSERT_TRUE(connected.ok());
  net::Socket socket = std::move(connected).value();
  net::BufferedReader reader(&socket);

  for (int i = 0; i < 3; ++i) {
    auto resp = net::RoundTrip(&socket, &reader, "POST", "/query",
                               "TOPK 1 BY dissimilarity WHERE M >= 1");
    ASSERT_TRUE(resp.ok()) << resp.status();
    EXPECT_EQ(resp->status, 200);
  }
}

TEST(ScubedTest, LineProtocolAnswersOneJsonPerLine) {
  Fixture fx;
  auto connected = net::Connect("127.0.0.1", fx.server.port());
  ASSERT_TRUE(connected.ok());
  net::Socket socket = std::move(connected).value();
  ASSERT_TRUE(socket
                  .WriteAll("SLICE sa=sex=F | ca=region=north\n"
                            "TOPK 1 BY\n")
                  .ok());
  net::BufferedReader reader(&socket);
  auto first = reader.ReadLine();
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_NE(first->find("\"code\":\"OK\""), std::string::npos) << *first;
  EXPECT_NE(first->find("\"T\":60"), std::string::npos) << *first;
  auto second = reader.ReadLine();
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_NE(second->find("\"code\":\"ParseError\""), std::string::npos)
      << *second;
  ASSERT_TRUE(socket.WriteAll("QUIT\n").ok());
}

TEST(ScubedTest, StopIsGracefulAndIdempotent) {
  Fixture fx;
  ASSERT_TRUE(
      fx.Call("POST", "/query", "TOPK 1 BY dissimilarity WHERE M >= 1").ok());
  fx.server.Stop();
  fx.server.Stop();  // idempotent
  EXPECT_FALSE(fx.server.running());
  // The service outlives the server and still answers direct calls.
  auto direct = fx.service.ExecuteOne("TOPK 1 BY dissimilarity WHERE M >= 1");
  EXPECT_TRUE(direct.status.ok()) << direct.status;
}

}  // namespace
}  // namespace server
}  // namespace scube
