// Loopback integration tests for the scubed front-end: a real server on
// an ephemeral port, driven over real sockets — request in, JSON out,
// correct cells; plus the 503 shed path, per-request deadlines, the line
// protocol, and graceful Stop().

#include "server/server.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "net/http.h"
#include "net/socket.h"
#include "server/router.h"

namespace scube {
namespace server {
namespace {

cube::SegregationCube MakeCube(double f_north_dissimilarity) {
  relational::ItemCatalog catalog;
  using relational::AttributeKind;
  catalog.GetOrAdd(0, "sex", "F", AttributeKind::kSegregation);     // id 0
  catalog.GetOrAdd(1, "region", "north", AttributeKind::kContext);  // id 1
  catalog.GetOrAdd(2, "region", "south", AttributeKind::kContext);  // id 2

  auto make_cell = [](std::vector<fpm::ItemId> sa,
                      std::vector<fpm::ItemId> ca, uint64_t t, uint64_t m,
                      double d) {
    cube::CubeCell cell;
    cell.coords = cube::CellCoordinates{fpm::Itemset(std::move(sa)),
                                        fpm::Itemset(std::move(ca))};
    cell.context_size = t;
    cell.minority_size = m;
    cell.num_units = 2;
    cell.indexes.defined = true;
    cell.indexes.values[static_cast<size_t>(
        indexes::IndexKind::kDissimilarity)] = d;
    return cell;
  };
  cube::SegregationCube cube(std::move(catalog), {"u0", "u1"});
  cube.Insert(make_cell({0}, {}, 100, 40, 0.10));
  cube.Insert(make_cell({0}, {1}, 60, 25, 0.5));
  cube.Insert(make_cell({0}, {2}, 40, 15, f_north_dissimilarity));
  return cube;
}

/// A running server over a fresh store/service, bound to an ephemeral
/// loopback port.
struct Fixture {
  query::CubeStore store;
  query::QueryService service;
  ScubedServer server;

  explicit Fixture(query::ServiceOptions service_options = {})
      : service(&store, service_options),
        server(&service, &store, MakeServerOptions()) {
    store.Publish("default", MakeCube(0.2));
    Status started = server.Start();
    EXPECT_TRUE(started.ok()) << started;
  }

  static ServerOptions MakeServerOptions() {
    ServerOptions options;
    options.port = 0;
    options.loopback_only = true;
    options.num_connection_threads = 4;
    options.idle_poll_seconds = 0.1;  // fast Stop() in tests
    return options;
  }

  Result<net::HttpClientResponse> Call(const std::string& method,
                                       const std::string& target,
                                       const std::string& body = "") {
    auto connected = net::Connect("127.0.0.1", server.port());
    if (!connected.ok()) return connected.status();
    net::Socket socket = std::move(connected).value();
    net::BufferedReader reader(&socket);
    return net::RoundTrip(&socket, &reader, method, target, body);
  }
};

TEST(ScubedTest, HealthzAnswers) {
  Fixture fx;
  auto resp = fx.Call("GET", "/healthz");
  ASSERT_TRUE(resp.ok()) << resp.status();
  EXPECT_EQ(resp->status, 200);
  EXPECT_NE(resp->body.find("\"status\":\"ok\""), std::string::npos);
}

TEST(ScubedTest, QueryReturnsCorrectCellsAsJson) {
  Fixture fx;
  auto resp = fx.Call("POST", "/query", "SLICE sa=sex=F | ca=region=north");
  ASSERT_TRUE(resp.ok()) << resp.status();
  EXPECT_EQ(resp->status, 200);
  // The north cell: T=60, M=25, dissimilarity 0.5.
  EXPECT_NE(resp->body.find("\"code\":\"OK\""), std::string::npos)
      << resp->body;
  EXPECT_NE(resp->body.find("\"T\":60"), std::string::npos) << resp->body;
  EXPECT_NE(resp->body.find("\"M\":25"), std::string::npos) << resp->body;
  EXPECT_NE(resp->body.find("\"dissimilarity\":0.5"), std::string::npos)
      << resp->body;
}

TEST(ScubedTest, BatchAndCsvFormat) {
  Fixture fx;
  auto resp = fx.Call("POST", "/query?format=csv",
                      "SLICE sa=sex=F | ca=region=north\n"
                      "TOPK 1 BY dissimilarity WHERE M >= 1\n");
  ASSERT_TRUE(resp.ok()) << resp.status();
  EXPECT_EQ(resp->status, 200);
  EXPECT_EQ(resp->headers.at("content-type"), "text/csv");
  EXPECT_NE(resp->body.find("# query 0:"), std::string::npos) << resp->body;
  EXPECT_NE(resp->body.find("# query 1:"), std::string::npos) << resp->body;
  EXPECT_NE(resp->body.find("sa,ca,T,M,units"), std::string::npos);
  EXPECT_NE(resp->body.find("sex=F,region=north,60,25,2"),
            std::string::npos)
      << resp->body;
}

TEST(ScubedTest, PerQueryErrorsAreReportedInBand) {
  Fixture fx;
  auto resp = fx.Call("POST", "/query",
                      "TOPK 1 BY\nSLICE sa=sex=F | ca=region=north");
  ASSERT_TRUE(resp.ok()) << resp.status();
  EXPECT_EQ(resp->status, 200);  // batch-level OK, per-query codes in body
  EXPECT_NE(resp->body.find("\"code\":\"ParseError\""), std::string::npos)
      << resp->body;
  EXPECT_NE(resp->body.find("\"code\":\"OK\""), std::string::npos)
      << resp->body;
}

TEST(ScubedTest, BadRequestsAnswer4xx) {
  Fixture fx;
  auto empty = fx.Call("POST", "/query", "\n# comment only\n");
  ASSERT_TRUE(empty.ok()) << empty.status();
  EXPECT_EQ(empty->status, 400);

  auto format = fx.Call("POST", "/query?format=xml", "TOPK 1 BY gini");
  ASSERT_TRUE(format.ok());
  EXPECT_EQ(format->status, 400);

  auto missing = fx.Call("GET", "/nope");
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing->status, 404);

  auto method = fx.Call("GET", "/query");
  ASSERT_TRUE(method.ok());
  EXPECT_EQ(method->status, 405);
}

TEST(ScubedTest, AdmissionShedsWith503AndRetryAfter) {
  query::ServiceOptions options;
  options.max_pending = 0;  // shed everything
  Fixture fx(options);
  auto resp = fx.Call("POST", "/query", "TOPK 1 BY dissimilarity");
  ASSERT_TRUE(resp.ok()) << resp.status();
  EXPECT_EQ(resp->status, 503);
  EXPECT_EQ(resp->headers.at("retry-after"), "1");
  EXPECT_NE(resp->body.find("admission queue full"), std::string::npos)
      << resp->body;
}

TEST(ScubedTest, DeadlineParamYieldsDeadlineExceededCode) {
  Fixture fx;
  // A microsecond deadline expires long before any worker chunk runs
  // (parse + enqueue + wakeup alone dwarf it).
  auto resp = fx.Call("POST", "/query?deadline_ms=0.001",
                      "SLICE sa=sex=F | ca=region=north");
  ASSERT_TRUE(resp.ok()) << resp.status();
  EXPECT_EQ(resp->status, 200);
  EXPECT_NE(resp->body.find("\"code\":\"DeadlineExceeded\""),
            std::string::npos)
      << resp->body;
}

TEST(ScubedTest, NonPositiveDeadlineParamIsRejected) {
  Fixture fx;
  auto zero = fx.Call("POST", "/query?deadline_ms=0", "TOPK 1 BY gini");
  ASSERT_TRUE(zero.ok()) << zero.status();
  EXPECT_EQ(zero->status, 400);
  auto negative = fx.Call("POST", "/query?deadline_ms=-5", "TOPK 1 BY gini");
  ASSERT_TRUE(negative.ok());
  EXPECT_EQ(negative->status, 400);
}

TEST(ScubedTest, CubesAndMetricsEndpoints) {
  Fixture fx;
  ASSERT_TRUE(fx.Call("POST", "/query", "TOPK 1 BY dissimilarity WHERE M >= 1")
                  .ok());

  auto cubes = fx.Call("GET", "/cubes");
  ASSERT_TRUE(cubes.ok());
  EXPECT_EQ(cubes->status, 200);
  EXPECT_NE(cubes->body.find("\"name\":\"default\""), std::string::npos);
  EXPECT_NE(cubes->body.find("\"version\":1"), std::string::npos);

  auto metrics = fx.Call("GET", "/metrics");
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(metrics->status, 200);
  EXPECT_NE(metrics->body.find("scubed_queries_accepted_total 1"),
            std::string::npos)
      << metrics->body;
  EXPECT_NE(metrics->body.find("scubed_connections_total"),
            std::string::npos);
  EXPECT_NE(metrics->body.find("scubed_cache_hit_rate"), std::string::npos);
}

TEST(ScubedTest, KeepAliveServesMultipleRequestsOnOneConnection) {
  Fixture fx;
  auto connected = net::Connect("127.0.0.1", fx.server.port());
  ASSERT_TRUE(connected.ok());
  net::Socket socket = std::move(connected).value();
  net::BufferedReader reader(&socket);

  for (int i = 0; i < 3; ++i) {
    auto resp = net::RoundTrip(&socket, &reader, "POST", "/query",
                               "TOPK 1 BY dissimilarity WHERE M >= 1");
    ASSERT_TRUE(resp.ok()) << resp.status();
    EXPECT_EQ(resp->status, 200);
  }
}

TEST(ScubedTest, LineProtocolAnswersOneJsonPerLine) {
  Fixture fx;
  auto connected = net::Connect("127.0.0.1", fx.server.port());
  ASSERT_TRUE(connected.ok());
  net::Socket socket = std::move(connected).value();
  ASSERT_TRUE(socket
                  .WriteAll("SLICE sa=sex=F | ca=region=north\n"
                            "TOPK 1 BY\n")
                  .ok());
  net::BufferedReader reader(&socket);
  auto first = reader.ReadLine();
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_NE(first->find("\"code\":\"OK\""), std::string::npos) << *first;
  EXPECT_NE(first->find("\"T\":60"), std::string::npos) << *first;
  auto second = reader.ReadLine();
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_NE(second->find("\"code\":\"ParseError\""), std::string::npos)
      << *second;
  ASSERT_TRUE(socket.WriteAll("QUIT\n").ok());
}

TEST(ScubedTest, StopIsGracefulAndIdempotent) {
  Fixture fx;
  ASSERT_TRUE(
      fx.Call("POST", "/query", "TOPK 1 BY dissimilarity WHERE M >= 1").ok());
  fx.server.Stop();
  fx.server.Stop();  // idempotent
  EXPECT_FALSE(fx.server.running());
  // The service outlives the server and still answers direct calls.
  auto direct = fx.service.ExecuteOne("TOPK 1 BY dissimilarity WHERE M >= 1");
  EXPECT_TRUE(direct.status.ok()) << direct.status;
}

}  // namespace
}  // namespace server
}  // namespace scube
