#include "indexes/multigroup.h"

#include <gtest/gtest.h>

#include "indexes/segregation_index.h"

namespace scube {
namespace indexes {
namespace {

MultigroupDistribution ThreeGroupEven() {
  MultigroupDistribution d(3);
  EXPECT_TRUE(d.AddUnit({10, 20, 30}).ok());
  EXPECT_TRUE(d.AddUnit({20, 40, 60}).ok());  // same mix, double size
  return d;
}

MultigroupDistribution ThreeGroupComplete() {
  MultigroupDistribution d(3);
  EXPECT_TRUE(d.AddUnit({50, 0, 0}).ok());
  EXPECT_TRUE(d.AddUnit({0, 50, 0}).ok());
  EXPECT_TRUE(d.AddUnit({0, 0, 50}).ok());
  return d;
}

TEST(MultigroupDistributionTest, Totals) {
  auto d = ThreeGroupEven();
  EXPECT_EQ(d.NumUnits(), 2u);
  EXPECT_EQ(d.Total(), 180u);
  EXPECT_EQ(d.GroupTotal(0), 30u);
  EXPECT_EQ(d.GroupTotal(2), 90u);
  EXPECT_EQ(d.UnitTotal(1), 120u);
  EXPECT_EQ(d.UnitGroup(0, 1), 20u);
}

TEST(MultigroupDistributionTest, ArityChecked) {
  MultigroupDistribution d(2);
  EXPECT_FALSE(d.AddUnit({1, 2, 3}).ok());
  EXPECT_TRUE(d.AddUnit({1, 2}).ok());
}

TEST(MultigroupDistributionTest, Degeneracy) {
  MultigroupDistribution empty(2);
  EXPECT_TRUE(empty.IsDegenerate());
  MultigroupDistribution one_group(2);
  ASSERT_TRUE(one_group.AddUnit({5, 0}).ok());
  EXPECT_TRUE(one_group.IsDegenerate());
  EXPECT_FALSE(ThreeGroupEven().IsDegenerate());
}

TEST(MultigroupDistributionTest, BinaryViewMatches) {
  auto d = ThreeGroupEven();
  GroupDistribution binary = d.BinaryView(1);
  EXPECT_EQ(binary.Total(), 180u);
  EXPECT_EQ(binary.Minority(), 60u);
  EXPECT_EQ(binary.UnitMinority(0), 20u);
}

TEST(MultigroupIndexTest, EvenDistributionScoresZero) {
  auto d = ThreeGroupEven();
  EXPECT_NEAR(MultigroupDissimilarity(d).value(), 0.0, 1e-12);
  EXPECT_NEAR(MultigroupInformation(d).value(), 0.0, 1e-12);
  EXPECT_NEAR(NormalizedExposure(d).value(), 0.0, 1e-12);
}

TEST(MultigroupIndexTest, CompleteSegregationScoresOne) {
  auto d = ThreeGroupComplete();
  EXPECT_NEAR(MultigroupDissimilarity(d).value(), 1.0, 1e-12);
  EXPECT_NEAR(MultigroupInformation(d).value(), 1.0, 1e-12);
  EXPECT_NEAR(NormalizedExposure(d).value(), 1.0, 1e-12);
}

TEST(MultigroupIndexTest, DegenerateRejected) {
  MultigroupDistribution d(2);
  ASSERT_TRUE(d.AddUnit({5, 0}).ok());
  EXPECT_FALSE(MultigroupDissimilarity(d).ok());
  EXPECT_FALSE(MultigroupInformation(d).ok());
  EXPECT_FALSE(NormalizedExposure(d).ok());
}

TEST(MultigroupIndexTest, TwoGroupCaseMatchesBinaryIndexes) {
  // With k = 2 the multigroup indexes collapse to their binary versions.
  MultigroupDistribution d(2);
  ASSERT_TRUE(d.AddUnit({6, 2}).ok());
  ASSERT_TRUE(d.AddUnit({2, 10}).ok());
  GroupDistribution binary = d.BinaryView(0);

  EXPECT_NEAR(MultigroupDissimilarity(d).value(),
              Dissimilarity(binary).value(), 1e-12);
  EXPECT_NEAR(MultigroupInformation(d).value(),
              Information(binary).value(), 1e-12);
  // Normalised exposure equals eta^2 (the correlation ratio) for k = 2.
  EXPECT_NEAR(NormalizedExposure(d).value(),
              CorrelationRatio(binary).value(), 1e-12);
}

TEST(CorrelationRatioTest, RangeAndExtremes) {
  GroupDistribution complete =
      GroupDistribution::FromVectors({10, 10}, {10, 0});
  EXPECT_NEAR(CorrelationRatio(complete).value(), 1.0, 1e-12);

  GroupDistribution even =
      GroupDistribution::FromVectors({10, 30}, {5, 15});
  EXPECT_NEAR(CorrelationRatio(even).value(), 0.0, 1e-12);

  GroupDistribution degenerate = GroupDistribution::FromVectors({10}, {0});
  EXPECT_FALSE(CorrelationRatio(degenerate).ok());
}

TEST(MultigroupIndexTest, IntermediateValuesBounded) {
  MultigroupDistribution d(3);
  ASSERT_TRUE(d.AddUnit({30, 10, 5}).ok());
  ASSERT_TRUE(d.AddUnit({5, 25, 10}).ok());
  ASSERT_TRUE(d.AddUnit({10, 10, 35}).ok());
  for (auto result :
       {MultigroupDissimilarity(d), MultigroupInformation(d),
        NormalizedExposure(d)}) {
    ASSERT_TRUE(result.ok());
    EXPECT_GT(result.value(), 0.0);
    EXPECT_LT(result.value(), 1.0);
  }
}

}  // namespace
}  // namespace indexes
}  // namespace scube
