#include "indexes/counts.h"

#include <gtest/gtest.h>

namespace scube {
namespace indexes {
namespace {

TEST(GroupDistributionTest, Totals) {
  GroupDistribution d;
  d.AddUnit(10, 4);
  d.AddUnit(20, 6);
  EXPECT_EQ(d.NumUnits(), 2u);
  EXPECT_EQ(d.Total(), 30u);
  EXPECT_EQ(d.Minority(), 10u);
  EXPECT_DOUBLE_EQ(d.MinorityProportion(), 1.0 / 3.0);
  EXPECT_EQ(d.UnitTotal(1), 20u);
  EXPECT_EQ(d.UnitMinority(1), 6u);
}

TEST(GroupDistributionTest, FromVectors) {
  auto d = GroupDistribution::FromVectors({5, 10}, {1, 2});
  EXPECT_EQ(d.NumUnits(), 2u);
  EXPECT_EQ(d.Total(), 15u);
  EXPECT_EQ(d.Minority(), 3u);
}

TEST(GroupDistributionTest, ValidateCatchesBrokenCounts) {
  GroupDistribution d;
  d.AddUnit(3, 5);
  EXPECT_EQ(d.Validate().code(), StatusCode::kInvalidArgument);
  GroupDistribution ok;
  ok.AddUnit(5, 5);
  EXPECT_TRUE(ok.Validate().ok());
}

TEST(GroupDistributionTest, DegenerateCases) {
  GroupDistribution empty;
  EXPECT_TRUE(empty.IsDegenerate());

  GroupDistribution no_minority;
  no_minority.AddUnit(10, 0);
  EXPECT_TRUE(no_minority.IsDegenerate());

  GroupDistribution all_minority;
  all_minority.AddUnit(10, 10);
  EXPECT_TRUE(all_minority.IsDegenerate());

  GroupDistribution fine;
  fine.AddUnit(10, 3);
  EXPECT_FALSE(fine.IsDegenerate());
}

TEST(GroupDistributionTest, EmptyUnitsAllowed) {
  GroupDistribution d;
  d.AddUnit(0, 0);
  d.AddUnit(10, 5);
  EXPECT_TRUE(d.Validate().ok());
  EXPECT_FALSE(d.IsDegenerate());
  EXPECT_EQ(d.Total(), 10u);
}

}  // namespace
}  // namespace indexes
}  // namespace scube
