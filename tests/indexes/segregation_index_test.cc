#include "indexes/segregation_index.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"

namespace scube {
namespace indexes {
namespace {

constexpr double kTol = 1e-9;

GroupDistribution CompleteSegregation() {
  // Every unit single-group: the textbook maximum.
  return GroupDistribution::FromVectors({10, 10}, {10, 0});
}

GroupDistribution PerfectlyUniform() {
  // Every unit mirrors the global proportion: the textbook minimum.
  return GroupDistribution::FromVectors({10, 30}, {5, 15});
}

GroupDistribution HandAnchor() {
  // T=20, M=8, p_1=0.75, p_2=1/6 — values computed by hand (see asserts).
  return GroupDistribution::FromVectors({8, 12}, {6, 2});
}

TEST(IndexKindTest, NamesRoundTrip) {
  for (IndexKind kind : AllIndexKinds()) {
    auto back = IndexKindFromString(IndexKindToString(kind));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value(), kind);
  }
  EXPECT_FALSE(IndexKindFromString("entropy-ish").ok());
}

TEST(DissimilarityTest, Extremes) {
  EXPECT_NEAR(Dissimilarity(CompleteSegregation()).value(), 1.0, kTol);
  EXPECT_NEAR(Dissimilarity(PerfectlyUniform()).value(), 0.0, kTol);
}

TEST(DissimilarityTest, HandAnchor) {
  EXPECT_NEAR(Dissimilarity(HandAnchor()).value(), 0.5833333333, 1e-9);
}

TEST(GiniTest, Extremes) {
  EXPECT_NEAR(Gini(CompleteSegregation()).value(), 1.0, kTol);
  EXPECT_NEAR(Gini(PerfectlyUniform()).value(), 0.0, kTol);
}

TEST(GiniTest, HandAnchor) {
  EXPECT_NEAR(Gini(HandAnchor()).value(), 0.5833333333, 1e-9);
}

TEST(InformationTest, Extremes) {
  EXPECT_NEAR(Information(CompleteSegregation()).value(), 1.0, kTol);
  EXPECT_NEAR(Information(PerfectlyUniform()).value(), 0.0, kTol);
}

TEST(InformationTest, HandAnchor) {
  EXPECT_NEAR(Information(HandAnchor()).value(), 0.2640978, 1e-6);
}

TEST(IsolationInteractionTest, ExtremesAndAnchor) {
  EXPECT_NEAR(Isolation(CompleteSegregation()).value(), 1.0, kTol);
  EXPECT_NEAR(Interaction(CompleteSegregation()).value(), 0.0, kTol);
  // Under evenness, isolation equals the global proportion P.
  EXPECT_NEAR(Isolation(PerfectlyUniform()).value(), 0.5, kTol);
  EXPECT_NEAR(Isolation(HandAnchor()).value(), 0.6041666667, 1e-9);
  EXPECT_NEAR(Interaction(HandAnchor()).value(), 0.3958333333, 1e-9);
}

TEST(AtkinsonTest, ExtremesAndAnchor) {
  EXPECT_NEAR(Atkinson(CompleteSegregation()).value(), 1.0, kTol);
  EXPECT_NEAR(Atkinson(PerfectlyUniform()).value(), 0.0, kTol);
  EXPECT_NEAR(Atkinson(HandAnchor()).value(), 0.3439181, 1e-6);
}

TEST(AtkinsonTest, ParameterValidation) {
  EXPECT_FALSE(Atkinson(HandAnchor(), 0.0).ok());
  EXPECT_FALSE(Atkinson(HandAnchor(), 1.0).ok());
  EXPECT_FALSE(Atkinson(HandAnchor(), -0.5).ok());
  EXPECT_TRUE(Atkinson(HandAnchor(), 0.25).ok());
}

TEST(DegenerateTest, AllIndexesRejectDegenerateInputs) {
  GroupDistribution no_minority = GroupDistribution::FromVectors({10}, {0});
  GroupDistribution all_minority = GroupDistribution::FromVectors({10}, {10});
  GroupDistribution empty;
  for (IndexKind kind : AllIndexKinds()) {
    EXPECT_EQ(ComputeIndex(kind, no_minority).status().code(),
              StatusCode::kFailedPrecondition);
    EXPECT_EQ(ComputeIndex(kind, all_minority).status().code(),
              StatusCode::kFailedPrecondition);
    EXPECT_EQ(ComputeIndex(kind, empty).status().code(),
              StatusCode::kFailedPrecondition);
  }
}

TEST(DegenerateTest, BrokenCountsRejected) {
  GroupDistribution broken = GroupDistribution::FromVectors({3}, {5});
  EXPECT_EQ(Dissimilarity(broken).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ComputeAllTest, MatchesIndividualCalls) {
  auto all = ComputeAllIndexes(HandAnchor());
  ASSERT_TRUE(all.ok());
  ASSERT_TRUE(all->defined);
  for (IndexKind kind : AllIndexKinds()) {
    EXPECT_NEAR((*all)[kind], ComputeIndex(kind, HandAnchor()).value(), kTol);
  }
}

TEST(ComputeAllTest, DegenerateYieldsUndefined) {
  auto all = ComputeAllIndexes(GroupDistribution::FromVectors({10}, {0}));
  ASSERT_TRUE(all.ok());
  EXPECT_FALSE(all->defined);
}

TEST(SingleUnitTest, EverythingInOneUnitIsUnsegregated) {
  // One unit holding everyone: evenness indexes are 0 by definition.
  GroupDistribution d = GroupDistribution::FromVectors({100}, {30});
  EXPECT_NEAR(Dissimilarity(d).value(), 0.0, kTol);
  EXPECT_NEAR(Gini(d).value(), 0.0, kTol);
  EXPECT_NEAR(Information(d).value(), 0.0, kTol);
  EXPECT_NEAR(Atkinson(d).value(), 0.0, kTol);
  EXPECT_NEAR(Isolation(d).value(), 0.3, kTol);
}

// ---------------------------------------------------------------------------
// Property sweeps on random distributions.
// ---------------------------------------------------------------------------

GroupDistribution RandomDistribution(Rng* rng, size_t num_units,
                                     uint64_t max_unit) {
  GroupDistribution d;
  for (size_t i = 0; i < num_units; ++i) {
    uint64_t t = rng->NextBounded(max_unit + 1);
    uint64_t m = t == 0 ? 0 : rng->NextBounded(t + 1);
    d.AddUnit(t, m);
  }
  return d;
}

class IndexPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IndexPropertyTest, InvariantsHoldOnRandomData) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 40; ++trial) {
    size_t units = 1 + rng.NextBounded(30);
    GroupDistribution d = RandomDistribution(&rng, units, 50);
    if (d.IsDegenerate()) continue;

    auto all = ComputeAllIndexes(d);
    ASSERT_TRUE(all.ok());
    ASSERT_TRUE(all->defined);

    // Range [0,1] for every index.
    for (IndexKind kind : AllIndexKinds()) {
      EXPECT_GE((*all)[kind], -1e-9) << IndexKindToString(kind);
      EXPECT_LE((*all)[kind], 1.0 + 1e-9) << IndexKindToString(kind);
    }
    // Binary groups: isolation + interaction = 1.
    EXPECT_NEAR((*all)[IndexKind::kIsolation] +
                    (*all)[IndexKind::kInteraction],
                1.0, 1e-9);
    // Dissimilarity never exceeds Gini (James & Taeuber).
    EXPECT_LE((*all)[IndexKind::kDissimilarity],
              (*all)[IndexKind::kGini] + 1e-9);
    // Isolation is at least the global proportion P.
    EXPECT_GE((*all)[IndexKind::kIsolation],
              d.MinorityProportion() - 1e-9);
    // Fast Gini matches the quadratic reference.
    EXPECT_NEAR((*all)[IndexKind::kGini],
                GiniQuadraticReference(d).value(), 1e-9);
  }
}

TEST_P(IndexPropertyTest, OrganizationalEquivalence) {
  // Splitting a unit into two parts with identical minority proportion
  // leaves every index unchanged.
  Rng rng(GetParam() * 7919);
  for (int trial = 0; trial < 20; ++trial) {
    GroupDistribution d = RandomDistribution(&rng, 6, 40);
    if (d.IsDegenerate()) continue;
    // Build the split version: duplicate each unit as two halves (2t, 2m)
    // -> (t, m) + (t, m) keeps proportions identical.
    GroupDistribution doubled, split;
    for (size_t i = 0; i < d.NumUnits(); ++i) {
      doubled.AddUnit(2 * d.UnitTotal(i), 2 * d.UnitMinority(i));
      split.AddUnit(d.UnitTotal(i), d.UnitMinority(i));
      split.AddUnit(d.UnitTotal(i), d.UnitMinority(i));
    }
    auto a = ComputeAllIndexes(doubled);
    auto b = ComputeAllIndexes(split);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    if (!a->defined) continue;
    for (IndexKind kind : AllIndexKinds()) {
      EXPECT_NEAR((*a)[kind], (*b)[kind], 1e-9) << IndexKindToString(kind);
    }
  }
}

TEST_P(IndexPropertyTest, TransfersWeaklyIncreaseIsolation) {
  // Moving a minority member from a low-proportion unit to a
  // high-proportion unit weakly increases the isolation index.
  Rng rng(GetParam() * 104729);
  for (int trial = 0; trial < 20; ++trial) {
    GroupDistribution d = RandomDistribution(&rng, 8, 60);
    if (d.IsDegenerate()) continue;
    // Find donor (lowest p with m>0, not full) and recipient (highest p,
    // not full, different unit).
    int donor = -1, recipient = -1;
    double donor_p = 2.0, recipient_p = -1.0;
    for (size_t i = 0; i < d.NumUnits(); ++i) {
      if (d.UnitTotal(i) == 0) continue;
      double p = static_cast<double>(d.UnitMinority(i)) / d.UnitTotal(i);
      if (d.UnitMinority(i) > 0 && p < donor_p) {
        donor_p = p;
        donor = static_cast<int>(i);
      }
      if (d.UnitMinority(i) < d.UnitTotal(i) && p > recipient_p) {
        recipient_p = p;
        recipient = static_cast<int>(i);
      }
    }
    if (donor < 0 || recipient < 0 || donor == recipient ||
        donor_p >= recipient_p) {
      continue;
    }
    GroupDistribution moved;
    for (size_t i = 0; i < d.NumUnits(); ++i) {
      uint64_t m = d.UnitMinority(i);
      uint64_t t = d.UnitTotal(i);
      if (static_cast<int>(i) == donor) {
        m -= 1;
        t -= 1;
      }
      if (static_cast<int>(i) == recipient) {
        m += 1;
        t += 1;
      }
      moved.AddUnit(t, m);
    }
    if (moved.IsDegenerate()) continue;
    auto before = ComputeAllIndexes(d);
    auto after = ComputeAllIndexes(moved);
    ASSERT_TRUE(before.ok());
    ASSERT_TRUE(after.ok());
    EXPECT_GE((*after)[IndexKind::kIsolation],
              (*before)[IndexKind::kIsolation] - 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IndexPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace indexes
}  // namespace scube
