#include "indexes/significance.h"

#include <gtest/gtest.h>

namespace scube {
namespace indexes {
namespace {

TEST(SignificanceTest, PlantedSegregationIsSignificant) {
  // Ten units, strongly sorted minority: p should be tiny.
  GroupDistribution d;
  for (int i = 0; i < 5; ++i) d.AddUnit(100, 90);
  for (int i = 0; i < 5; ++i) d.AddUnit(100, 5);
  auto r = PermutationTest(IndexKind::kDissimilarity, d);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_LT(r->p_value, 0.02);
  EXPECT_GT(r->observed, r->null_mean);
  EXPECT_EQ(r->num_samples, 200u);
}

TEST(SignificanceTest, RandomAssignmentIsNotSignificant) {
  // Counts drawn to match the null closely: large p expected.
  GroupDistribution d;
  d.AddUnit(100, 30);
  d.AddUnit(100, 29);
  d.AddUnit(100, 31);
  d.AddUnit(100, 30);
  auto r = PermutationTest(IndexKind::kDissimilarity, d);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->p_value, 0.5);
}

TEST(SignificanceTest, DeterministicGivenSeed) {
  GroupDistribution d;
  d.AddUnit(50, 20);
  d.AddUnit(50, 5);
  SignificanceOptions opts;
  opts.seed = 99;
  auto a = PermutationTest(IndexKind::kGini, d, opts);
  auto b = PermutationTest(IndexKind::kGini, d, opts);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(a->p_value, b->p_value);
  EXPECT_DOUBLE_EQ(a->null_mean, b->null_mean);
}

TEST(SignificanceTest, NullStatsAreSane) {
  GroupDistribution d;
  for (int i = 0; i < 8; ++i) d.AddUnit(40, i < 4 ? 30 : 2);
  auto r = PermutationTest(IndexKind::kInformation, d);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->null_mean, 0.0);
  EXPECT_LT(r->null_mean, 1.0);
  EXPECT_GE(r->null_stddev, 0.0);
  EXPECT_GT(r->p_value, 0.0);  // add-one correction keeps it positive
  EXPECT_LE(r->p_value, 1.0);
}

TEST(SignificanceTest, RejectsDegenerateAndBadOptions) {
  GroupDistribution degenerate = GroupDistribution::FromVectors({10}, {0});
  EXPECT_FALSE(PermutationTest(IndexKind::kDissimilarity, degenerate).ok());

  GroupDistribution d = GroupDistribution::FromVectors({10, 10}, {5, 2});
  SignificanceOptions opts;
  opts.num_samples = 0;
  EXPECT_EQ(PermutationTest(IndexKind::kDissimilarity, d, opts)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

class SignificanceSweep : public ::testing::TestWithParam<IndexKind> {};

TEST_P(SignificanceSweep, AllIndexesSupportTheTest) {
  GroupDistribution d;
  for (int i = 0; i < 6; ++i) d.AddUnit(60, i < 3 ? 40 : 10);
  SignificanceOptions opts;
  opts.num_samples = 50;
  auto r = PermutationTest(GetParam(), d, opts);
  ASSERT_TRUE(r.ok()) << IndexKindToString(GetParam());
  EXPECT_GT(r->p_value, 0.0);
  EXPECT_LE(r->p_value, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, SignificanceSweep,
    ::testing::Values(IndexKind::kDissimilarity, IndexKind::kGini,
                      IndexKind::kInformation, IndexKind::kIsolation,
                      IndexKind::kInteraction, IndexKind::kAtkinson));

}  // namespace
}  // namespace indexes
}  // namespace scube
