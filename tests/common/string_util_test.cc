#include "common/string_util.h"

#include <gtest/gtest.h>

namespace scube {
namespace {

TEST(SplitTest, BasicAndEmptyFields) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
  EXPECT_EQ(Split("solo", ';'), (std::vector<std::string>{"solo"}));
}

TEST(JoinTest, RoundTripsSplit) {
  std::vector<std::string> parts{"sex=F", "age=young", "region=north"};
  EXPECT_EQ(Join(parts, ","), "sex=F,age=young,region=north");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"one"}, ","), "one");
}

TEST(TrimTest, RemovesAsciiWhitespace) {
  EXPECT_EQ(Trim("  hello "), "hello");
  EXPECT_EQ(Trim("\t\r\nx\n"), "x");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("inner space kept"), "inner space kept");
}

TEST(CaseTest, ToLowerAsciiOnly) {
  EXPECT_EQ(ToLower("GeNdEr"), "gender");
  EXPECT_EQ(ToLower("ABC-123"), "abc-123");
}

TEST(AffixTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("sex=female", "sex="));
  EXPECT_FALSE(StartsWith("sex", "sex="));
  EXPECT_TRUE(EndsWith("cube.xlsx", ".xlsx"));
  EXPECT_FALSE(EndsWith("cube.xls", ".xlsx"));
  EXPECT_TRUE(StartsWith("abc", ""));
  EXPECT_TRUE(EndsWith("abc", ""));
}

TEST(ParseInt64Test, ValidInputs) {
  EXPECT_EQ(ParseInt64("42").value(), 42);
  EXPECT_EQ(ParseInt64("-7").value(), -7);
  EXPECT_EQ(ParseInt64("  123 ").value(), 123);
  EXPECT_EQ(ParseInt64("0").value(), 0);
}

TEST(ParseInt64Test, InvalidInputs) {
  EXPECT_FALSE(ParseInt64("").ok());
  EXPECT_FALSE(ParseInt64("abc").ok());
  EXPECT_FALSE(ParseInt64("12x").ok());
  EXPECT_FALSE(ParseInt64("99999999999999999999999").ok());
}

TEST(ParseDoubleTest, ValidAndInvalid) {
  EXPECT_DOUBLE_EQ(ParseDouble("0.5").value(), 0.5);
  EXPECT_DOUBLE_EQ(ParseDouble("-1e3").value(), -1000.0);
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("0.5bad").ok());
}

TEST(FormatTest, DoubleAndCommas) {
  EXPECT_EQ(FormatDouble(0.78125, 2), "0.78");
  EXPECT_EQ(FormatDouble(1.0, 3), "1.000");
  EXPECT_EQ(FormatWithCommas(0), "0");
  EXPECT_EQ(FormatWithCommas(999), "999");
  EXPECT_EQ(FormatWithCommas(1000), "1,000");
  EXPECT_EQ(FormatWithCommas(3600000), "3,600,000");
  EXPECT_EQ(FormatWithCommas(-2150000), "-2,150,000");
}

}  // namespace
}  // namespace scube
