#include "common/string_util.h"

#include <gtest/gtest.h>

namespace scube {
namespace {

TEST(SplitTest, BasicAndEmptyFields) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
  EXPECT_EQ(Split("solo", ';'), (std::vector<std::string>{"solo"}));
}

TEST(JoinTest, RoundTripsSplit) {
  std::vector<std::string> parts{"sex=F", "age=young", "region=north"};
  EXPECT_EQ(Join(parts, ","), "sex=F,age=young,region=north");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"one"}, ","), "one");
}

TEST(TrimTest, RemovesAsciiWhitespace) {
  EXPECT_EQ(Trim("  hello "), "hello");
  EXPECT_EQ(Trim("\t\r\nx\n"), "x");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("inner space kept"), "inner space kept");
}

TEST(CaseTest, ToLowerAsciiOnly) {
  EXPECT_EQ(ToLower("GeNdEr"), "gender");
  EXPECT_EQ(ToLower("ABC-123"), "abc-123");
}

TEST(AffixTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("sex=female", "sex="));
  EXPECT_FALSE(StartsWith("sex", "sex="));
  EXPECT_TRUE(EndsWith("cube.xlsx", ".xlsx"));
  EXPECT_FALSE(EndsWith("cube.xls", ".xlsx"));
  EXPECT_TRUE(StartsWith("abc", ""));
  EXPECT_TRUE(EndsWith("abc", ""));
}

TEST(ParseInt64Test, ValidInputs) {
  EXPECT_EQ(ParseInt64("42").value(), 42);
  EXPECT_EQ(ParseInt64("-7").value(), -7);
  EXPECT_EQ(ParseInt64("  123 ").value(), 123);
  EXPECT_EQ(ParseInt64("0").value(), 0);
}

TEST(ParseInt64Test, InvalidInputs) {
  EXPECT_FALSE(ParseInt64("").ok());
  EXPECT_FALSE(ParseInt64("abc").ok());
  EXPECT_FALSE(ParseInt64("12x").ok());
  EXPECT_FALSE(ParseInt64("99999999999999999999999").ok());
}

TEST(ParseDoubleTest, ValidAndInvalid) {
  EXPECT_DOUBLE_EQ(ParseDouble("0.5").value(), 0.5);
  EXPECT_DOUBLE_EQ(ParseDouble("-1e3").value(), -1000.0);
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("0.5bad").ok());
}

TEST(JsonEscapeTest, PassesPlainTextThrough) {
  EXPECT_EQ(JsonEscape("hello world"), "hello world");
  EXPECT_EQ(JsonQuote("sector=IT"), "\"sector=IT\"");
  EXPECT_EQ(JsonEscape(""), "");
}

TEST(JsonEscapeTest, EscapesQuotesAndBackslashes) {
  EXPECT_EQ(JsonEscape("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(JsonEscape("C:\\path\\to"), "C:\\\\path\\\\to");
  EXPECT_EQ(JsonQuote("\""), "\"\\\"\"");
}

TEST(JsonEscapeTest, EscapesControlCharacters) {
  EXPECT_EQ(JsonEscape("a\nb"), "a\\nb");
  EXPECT_EQ(JsonEscape("a\tb"), "a\\tb");
  EXPECT_EQ(JsonEscape("a\rb"), "a\\rb");
  EXPECT_EQ(JsonEscape("a\bb"), "a\\bb");
  EXPECT_EQ(JsonEscape("a\fb"), "a\\fb");
  EXPECT_EQ(JsonEscape(std::string("a\x01z", 3)), "a\\u0001z");
  EXPECT_EQ(JsonEscape(std::string("\x1f", 1)), "\\u001f");
}

TEST(JsonEscapeTest, Utf8SurvivesVerbatim) {
  // Multi-byte sequences are above 0x1f per byte: no mangling.
  EXPECT_EQ(JsonEscape("città"), "città");
  EXPECT_EQ(JsonEscape("北京"), "北京");
}

TEST(ParseHexU64Test, ParsesAndRejects) {
  EXPECT_EQ(ParseHexU64("0").value(), 0u);
  EXPECT_EQ(ParseHexU64("ff").value(), 255u);
  EXPECT_EQ(ParseHexU64("DEADbeef").value(), 0xdeadbeefu);
  EXPECT_EQ(ParseHexU64("ffffffffffffffff").value(), UINT64_MAX);
  EXPECT_FALSE(ParseHexU64("").ok());
  EXPECT_FALSE(ParseHexU64("0x10").ok());
  EXPECT_FALSE(ParseHexU64("zz").ok());
  EXPECT_FALSE(ParseHexU64("10000000000000000").ok());  // 2^64: overflow
}

TEST(Base64Test, EncodesKnownVectors) {
  // RFC 4648 test vectors.
  EXPECT_EQ(Base64Encode(""), "");
  EXPECT_EQ(Base64Encode("f"), "Zg==");
  EXPECT_EQ(Base64Encode("fo"), "Zm8=");
  EXPECT_EQ(Base64Encode("foo"), "Zm9v");
  EXPECT_EQ(Base64Encode("foob"), "Zm9vYg==");
  EXPECT_EQ(Base64Encode("fooba"), "Zm9vYmE=");
  EXPECT_EQ(Base64Encode("foobar"), "Zm9vYmFy");
}

TEST(Base64Test, RoundTripsBinary) {
  std::string all;
  for (int i = 0; i < 256; ++i) all += static_cast<char>(i);
  auto decoded = Base64Decode(Base64Encode(all));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, all);
}

TEST(Base64Test, RejectsMalformedInput) {
  EXPECT_FALSE(Base64Decode("abc").ok());     // not a multiple of 4
  EXPECT_FALSE(Base64Decode("ab!=").ok());    // invalid character
  EXPECT_FALSE(Base64Decode("=abc").ok());    // padding up front
  EXPECT_FALSE(Base64Decode("a=bc").ok());    // data after padding
  EXPECT_FALSE(Base64Decode("ab==cdef").ok());  // padding mid-stream
  EXPECT_TRUE(Base64Decode("").ok());
}

TEST(FormatTest, DoubleAndCommas) {
  EXPECT_EQ(FormatDouble(0.78125, 2), "0.78");
  EXPECT_EQ(FormatDouble(1.0, 3), "1.000");
  EXPECT_EQ(FormatWithCommas(0), "0");
  EXPECT_EQ(FormatWithCommas(999), "999");
  EXPECT_EQ(FormatWithCommas(1000), "1,000");
  EXPECT_EQ(FormatWithCommas(3600000), "3,600,000");
  EXPECT_EQ(FormatWithCommas(-2150000), "-2,150,000");
}

}  // namespace
}  // namespace scube
