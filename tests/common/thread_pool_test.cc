// ThreadPool contract: ParallelFor covers exactly [0, n) with bounded
// worker ids, empty ranges return immediately, body exceptions cancel and
// rethrow on the caller, and nesting (ParallelFor inside ParallelFor,
// Submit inside a pool task) cannot deadlock even on a single-thread pool.

#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace scube {
namespace {

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  constexpr size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForDeterministicMergePattern) {
  // The intended usage: fn(worker, i) writes only slot i; the merged
  // result is identical for every worker bound, including 1.
  ThreadPool pool(4);
  constexpr size_t kN = 257;
  auto run = [&](size_t max_workers) {
    std::vector<uint64_t> out(kN, 0);
    pool.ParallelFor(kN, max_workers,
                     [&](size_t /*worker*/, size_t i) { out[i] = i * i + 1; });
    return out;
  };
  EXPECT_EQ(run(1), run(2));
  EXPECT_EQ(run(1), run(5));
}

TEST(ThreadPoolTest, WorkerIdsStayWithinBound) {
  ThreadPool pool(8);
  constexpr size_t kWorkers = 3;
  std::atomic<bool> out_of_bounds{false};
  pool.ParallelFor(500, kWorkers, [&](size_t worker, size_t /*i*/) {
    if (worker >= kWorkers) out_of_bounds = true;
  });
  EXPECT_FALSE(out_of_bounds.load());
}

TEST(ThreadPoolTest, EmptyRangeReturnsImmediately) {
  ThreadPool pool(2);
  bool ran = false;
  pool.ParallelFor(0, [&](size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, BodyExceptionPropagatesToCaller) {
  ThreadPool pool(3);
  EXPECT_THROW(pool.ParallelFor(100,
                                [&](size_t i) {
                                  if (i == 17) {
                                    throw std::runtime_error("boom");
                                  }
                                }),
               std::runtime_error);
}

TEST(ThreadPoolTest, ExceptionCancelsUnclaimedIndices) {
  ThreadPool pool(1);  // single participant -> strictly ordered claims
  std::atomic<size_t> ran{0};
  EXPECT_THROW(pool.ParallelFor(1000, 1,
                                [&](size_t /*worker*/, size_t i) {
                                  ran.fetch_add(1);
                                  if (i == 3) throw std::runtime_error("stop");
                                }),
               std::runtime_error);
  EXPECT_EQ(ran.load(), 4u);  // indices 0..3, then cancelled
}

TEST(ThreadPoolTest, SubmitRunsAndSignalsFuture) {
  ThreadPool pool(2);
  std::atomic<int> value{0};
  auto f = pool.Submit([&] { value = 42; });
  f.get();
  EXPECT_EQ(value.load(), 42);
}

TEST(ThreadPoolTest, SubmitPropagatesExceptionThroughFuture) {
  ThreadPool pool(1);
  auto f = pool.Submit([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  // With one pool thread and the caller inside a pool task, a blocking
  // fork-join would starve; the caller-participates design drains inline.
  ThreadPool pool(1);
  std::atomic<uint64_t> total{0};
  auto f = pool.Submit([&] {
    pool.ParallelFor(8, [&](size_t) {
      pool.ParallelFor(8, [&](size_t) { total.fetch_add(1); });
    });
  });
  f.get();
  EXPECT_EQ(total.load(), 64u);
}

TEST(ThreadPoolTest, NestedSubmitRunsInlineInsteadOfDeadlocking) {
  ThreadPool pool(1);
  std::atomic<int> inner{0};
  auto f = pool.Submit([&] {
    // Queued-and-waited, this would sit behind the very task waiting on
    // it; the pool runs nested submissions inline instead.
    auto g = pool.Submit([&] { inner = 7; });
    g.get();
  });
  f.get();
  EXPECT_EQ(inner.load(), 7);
}

TEST(ThreadPoolTest, ManyConcurrentParallelForsFromSubmittedTasks) {
  ThreadPool pool(4);
  constexpr size_t kTasks = 16;
  std::atomic<uint64_t> total{0};
  std::vector<std::future<void>> futures;
  futures.reserve(kTasks);
  for (size_t t = 0; t < kTasks; ++t) {
    futures.push_back(pool.Submit(
        [&] { pool.ParallelFor(100, [&](size_t) { total.fetch_add(1); }); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(total.load(), kTasks * 100u);
}

TEST(ThreadPoolTest, EffectiveThreadsResolvesAutoAndLiteral) {
  EXPECT_GE(ThreadPool::EffectiveThreads(0), 1u);
  EXPECT_EQ(ThreadPool::EffectiveThreads(1), 1u);
  EXPECT_EQ(ThreadPool::EffectiveThreads(7), 7u);
}

TEST(ThreadPoolTest, SharedPoolIsUsableAndStable) {
  ThreadPool& a = ThreadPool::Shared();
  ThreadPool& b = ThreadPool::Shared();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.num_threads(), 1u);
  std::atomic<int> n{0};
  a.ParallelFor(32, [&](size_t) { n.fetch_add(1); });
  EXPECT_EQ(n.load(), 32);
}

}  // namespace
}  // namespace scube
