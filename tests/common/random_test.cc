#include "common/random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <numeric>
#include <vector>

namespace scube {
namespace {

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
  bool any_diff = false;
  Rng a2(42);
  for (int i = 0; i < 100; ++i) {
    if (a2.Next() != c.Next()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, NextBoundedStaysInRange) {
  Rng rng(7);
  for (uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RngTest, NextBoundedOneIsAlwaysZero) {
  Rng rng(7);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.NextBounded(1), 0u);
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    if (v == -3) saw_lo = true;
    if (v == 3) saw_hi = true;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(13);
  double sum = 0;
  const int kN = 10000;
  for (int i = 0; i < kN; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / kN, 0.5, 0.02);
}

TEST(RngTest, NextBoolFrequencies) {
  Rng rng(17);
  int hits = 0;
  const int kN = 20000;
  for (int i = 0; i < kN; ++i) hits += rng.NextBool(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.02);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBool(0.0));
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(19);
  const int kN = 50000;
  double sum = 0, sum2 = 0;
  for (int i = 0; i < kN; ++i) {
    double v = rng.NextGaussian();
    sum += v;
    sum2 += v * v;
  }
  double mean = sum / kN;
  double var = sum2 / kN - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(23);
  std::vector<double> w{1.0, 3.0, 6.0};
  std::vector<int> counts(3, 0);
  const int kN = 30000;
  for (int i = 0; i < kN; ++i) counts[rng.NextCategorical(w)]++;
  EXPECT_NEAR(counts[0] / static_cast<double>(kN), 0.1, 0.02);
  EXPECT_NEAR(counts[1] / static_cast<double>(kN), 0.3, 0.02);
  EXPECT_NEAR(counts[2] / static_cast<double>(kN), 0.6, 0.02);
}

TEST(RngTest, ZipfRangeAndSkew) {
  Rng rng(29);
  const uint64_t kMax = 100;
  std::map<uint64_t, int> counts;
  const int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    uint64_t v = rng.NextZipf(kMax, 1.2);
    ASSERT_GE(v, 1u);
    ASSERT_LE(v, kMax);
    counts[v]++;
  }
  // Rank-1 must dominate rank-10 strongly for s=1.2.
  EXPECT_GT(counts[1], counts[10] * 3);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(31);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  EXPECT_NE(v, orig);  // astronomically unlikely to be identity
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(37);
  Rng child = parent.Fork();
  bool differs = false;
  for (int i = 0; i < 10; ++i) {
    if (parent.Next() != child.Next()) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(AliasSamplerTest, MatchesWeights) {
  Rng rng(41);
  std::vector<double> w{5.0, 0.0, 15.0, 80.0};
  AliasSampler sampler(w);
  std::vector<int> counts(4, 0);
  const int kN = 50000;
  for (int i = 0; i < kN; ++i) counts[sampler.Sample(&rng)]++;
  EXPECT_NEAR(counts[0] / static_cast<double>(kN), 0.05, 0.01);
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(counts[2] / static_cast<double>(kN), 0.15, 0.015);
  EXPECT_NEAR(counts[3] / static_cast<double>(kN), 0.80, 0.015);
}

TEST(AliasSamplerTest, SingleBucket) {
  Rng rng(43);
  AliasSampler sampler({2.5});
  for (int i = 0; i < 10; ++i) EXPECT_EQ(sampler.Sample(&rng), 0u);
}

class ZipfSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfSweepTest, MonotoneDecreasingHeadMass) {
  double s = GetParam();
  Rng rng(4242);
  std::vector<int> counts(51, 0);
  for (int i = 0; i < 30000; ++i) {
    counts[rng.NextZipf(50, s)]++;
  }
  // Head (1..5) carries more mass than mid (21..25) for all s > 1.
  int head = 0, mid = 0;
  for (int i = 1; i <= 5; ++i) head += counts[i];
  for (int i = 21; i <= 25; ++i) mid += counts[i];
  EXPECT_GT(head, mid);
}

INSTANTIATE_TEST_SUITE_P(Exponents, ZipfSweepTest,
                         ::testing::Values(1.05, 1.2, 1.5, 2.0, 3.0));

}  // namespace
}  // namespace scube
