// Compile-time NEGATIVE check for the thread-safety analysis: this TU
// reads a GUARDED_BY field without holding its mutex and MUST FAIL to
// compile under clang with -Werror=thread-safety. CMake try_compile's
// SCUBE_THREAD_SAFETY configure step asserts exactly that (see the
// "thread-safety negative check" block in CMakeLists.txt); the file name
// deliberately avoids the tests/*_test.cc glob so it is never built into
// a test binary.
//
// If this TU ever compiles under clang + SCUBE_THREAD_SAFETY=ON, the
// annotation macros have silently degraded to no-ops (a broken guard is
// worse than no guard: it reads as "the compiler proved it").

#include "common/sync.h"

namespace {

class Counter {
 public:
  void Increment() {
    // BUG (on purpose): touches value_ without mu_ held. The analysis
    // must reject this with -Wthread-safety-analysis.
    ++value_;
  }

 private:
  scube::sync::Mutex mu_;
  int value_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.Increment();
  return 0;
}
