#include "common/ewah.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/random.h"

namespace scube {
namespace {

std::vector<uint64_t> SetToVec(const std::set<uint64_t>& s) {
  return std::vector<uint64_t>(s.begin(), s.end());
}

TEST(EwahTest, EmptyBitmap) {
  EwahBitmap b;
  EXPECT_EQ(b.Cardinality(), 0u);
  EXPECT_TRUE(b.Empty());
  EXPECT_TRUE(b.ToIndices().empty());
  EXPECT_FALSE(b.Get(0));
  EXPECT_FALSE(b.Get(1000));
}

TEST(EwahTest, SingleBit) {
  auto b = EwahBitmap::FromIndices({5});
  EXPECT_EQ(b.Cardinality(), 1u);
  EXPECT_TRUE(b.Get(5));
  EXPECT_FALSE(b.Get(4));
  EXPECT_FALSE(b.Get(6));
  EXPECT_EQ(b.SizeInBits(), 6u);
}

TEST(EwahTest, BitFarFromOrigin) {
  auto b = EwahBitmap::FromIndices({100000});
  EXPECT_EQ(b.Cardinality(), 1u);
  EXPECT_TRUE(b.Get(100000));
  EXPECT_FALSE(b.Get(99999));
  // 100000/64 = 1562 clean words should be run-compressed: tiny buffer.
  EXPECT_LT(b.SizeInBytes(), 64u);
}

TEST(EwahTest, DenseRunCompresses) {
  std::vector<uint64_t> all;
  for (uint64_t i = 0; i < 64 * 100; ++i) all.push_back(i);
  auto b = EwahBitmap::FromIndices(all);
  EXPECT_EQ(b.Cardinality(), 6400u);
  // 100 all-ones words collapse into a single run marker.
  EXPECT_LT(b.SizeInBytes(), 64u);
  EXPECT_TRUE(b.Get(0));
  EXPECT_TRUE(b.Get(6399));
  EXPECT_FALSE(b.Get(6400));
}

TEST(EwahTest, ToIndicesRoundTrip) {
  std::vector<uint64_t> in{0, 1, 63, 64, 65, 127, 128, 1000, 4096, 99999};
  auto b = EwahBitmap::FromIndices(in);
  EXPECT_EQ(b.ToIndices(), in);
  EXPECT_EQ(b.Cardinality(), in.size());
}

TEST(EwahTest, WordBoundaryBits) {
  // Bits straddling 64-bit word boundaries are the classic failure spot.
  std::vector<uint64_t> in{63, 64, 127, 128, 191, 192};
  auto b = EwahBitmap::FromIndices(in);
  EXPECT_EQ(b.ToIndices(), in);
  for (uint64_t i : in) EXPECT_TRUE(b.Get(i)) << i;
  EXPECT_FALSE(b.Get(62));
  EXPECT_FALSE(b.Get(65));
}

TEST(EwahTest, AndBasic) {
  auto a = EwahBitmap::FromIndices({1, 3, 5, 7, 100});
  auto b = EwahBitmap::FromIndices({3, 4, 5, 100, 200});
  auto c = a.And(b);
  EXPECT_EQ(c.ToIndices(), (std::vector<uint64_t>{3, 5, 100}));
}

TEST(EwahTest, OrBasic) {
  auto a = EwahBitmap::FromIndices({1, 3});
  auto b = EwahBitmap::FromIndices({2, 3, 500});
  auto c = a.Or(b);
  EXPECT_EQ(c.ToIndices(), (std::vector<uint64_t>{1, 2, 3, 500}));
}

TEST(EwahTest, XorBasic) {
  auto a = EwahBitmap::FromIndices({1, 3, 5});
  auto b = EwahBitmap::FromIndices({3, 4, 5});
  auto c = a.Xor(b);
  EXPECT_EQ(c.ToIndices(), (std::vector<uint64_t>{1, 4}));
}

TEST(EwahTest, AndNotBasic) {
  auto a = EwahBitmap::FromIndices({1, 3, 5, 700});
  auto b = EwahBitmap::FromIndices({3, 4, 5});
  auto c = a.AndNot(b);
  EXPECT_EQ(c.ToIndices(), (std::vector<uint64_t>{1, 700}));
}

TEST(EwahTest, OpsWithEmptyOperand) {
  auto a = EwahBitmap::FromIndices({10, 20, 30});
  EwahBitmap empty;
  EXPECT_EQ(a.And(empty).Cardinality(), 0u);
  EXPECT_EQ(empty.And(a).Cardinality(), 0u);
  EXPECT_EQ(a.Or(empty).ToIndices(), a.ToIndices());
  EXPECT_EQ(empty.Or(a).ToIndices(), a.ToIndices());
  EXPECT_EQ(a.AndNot(empty).ToIndices(), a.ToIndices());
  EXPECT_EQ(empty.AndNot(a).Cardinality(), 0u);
  EXPECT_EQ(a.Xor(empty).ToIndices(), a.ToIndices());
}

TEST(EwahTest, AndCardinalityMatchesAnd) {
  auto a = EwahBitmap::FromIndices({1, 64, 65, 128, 1000, 5000});
  auto b = EwahBitmap::FromIndices({64, 128, 129, 5000, 6000});
  EXPECT_EQ(a.AndCardinality(b), a.And(b).Cardinality());
  EXPECT_EQ(b.AndCardinality(a), a.And(b).Cardinality());
}

TEST(EwahTest, IntersectsEarlyExit) {
  auto a = EwahBitmap::FromIndices({1, 2, 3});
  auto b = EwahBitmap::FromIndices({3, 4});
  auto c = EwahBitmap::FromIndices({4, 5});
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_TRUE(b.Intersects(a));
  EXPECT_FALSE(a.Intersects(c));
  EXPECT_FALSE(c.Intersects(a));
}

TEST(EwahTest, EqualitySemantics) {
  auto a = EwahBitmap::FromIndices({1, 2, 3});
  auto b = EwahBitmap::FromIndices({1, 2, 3});
  auto c = EwahBitmap::FromIndices({1, 2, 4});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  // Same bits but different logical sizes still compare equal as sets.
  EwahBitmap empty1;
  auto empty2 = EwahBitmap::FromIndices({});
  EXPECT_EQ(empty1, empty2);
}

TEST(EwahTest, HashConsistency) {
  auto a = EwahBitmap::FromIndices({7, 77, 777});
  auto b = EwahBitmap::FromIndices({7, 77, 777});
  auto c = EwahBitmap::FromIndices({7, 77, 778});
  EXPECT_EQ(a.Hash(), b.Hash());
  EXPECT_NE(a.Hash(), c.Hash());  // not guaranteed, but astronomically likely
}

TEST(EwahTest, DebugString) {
  auto a = EwahBitmap::FromIndices({1, 5, 7});
  EXPECT_EQ(a.DebugString(), "{1,5,7}");
  EXPECT_EQ(EwahBitmap().DebugString(), "{}");
}

TEST(EwahTest, BuilderRejectsNonIncreasing) {
  EwahBitmap::Builder b;
  b.Add(5);
  EXPECT_DEATH(b.Add(5), "");
}

// ---------------------------------------------------------------------------
// Property-based randomized comparison against std::set reference.
// ---------------------------------------------------------------------------

struct RandomCaseParams {
  uint64_t seed;
  uint64_t universe;
  double density;
};

class EwahPropertyTest : public ::testing::TestWithParam<RandomCaseParams> {};

TEST_P(EwahPropertyTest, MatchesReferenceSetSemantics) {
  const auto& p = GetParam();
  Rng rng(p.seed);
  std::set<uint64_t> sa, sb;
  for (uint64_t i = 0; i < p.universe; ++i) {
    if (rng.NextBool(p.density)) sa.insert(i);
    if (rng.NextBool(p.density)) sb.insert(i);
  }
  auto a = EwahBitmap::FromIndices(SetToVec(sa));
  auto b = EwahBitmap::FromIndices(SetToVec(sb));

  EXPECT_EQ(a.Cardinality(), sa.size());
  EXPECT_EQ(b.Cardinality(), sb.size());
  EXPECT_EQ(a.ToIndices(), SetToVec(sa));

  std::set<uint64_t> expect_and, expect_or, expect_xor, expect_andnot;
  std::set_intersection(sa.begin(), sa.end(), sb.begin(), sb.end(),
                        std::inserter(expect_and, expect_and.begin()));
  std::set_union(sa.begin(), sa.end(), sb.begin(), sb.end(),
                 std::inserter(expect_or, expect_or.begin()));
  std::set_symmetric_difference(sa.begin(), sa.end(), sb.begin(), sb.end(),
                                std::inserter(expect_xor, expect_xor.begin()));
  std::set_difference(sa.begin(), sa.end(), sb.begin(), sb.end(),
                      std::inserter(expect_andnot, expect_andnot.begin()));

  EXPECT_EQ(a.And(b).ToIndices(), SetToVec(expect_and));
  EXPECT_EQ(a.Or(b).ToIndices(), SetToVec(expect_or));
  EXPECT_EQ(a.Xor(b).ToIndices(), SetToVec(expect_xor));
  EXPECT_EQ(a.AndNot(b).ToIndices(), SetToVec(expect_andnot));
  EXPECT_EQ(a.AndCardinality(b), expect_and.size());
  EXPECT_EQ(a.Intersects(b), !expect_and.empty());

  // Hash/equality invariants.
  auto a2 = EwahBitmap::FromIndices(SetToVec(sa));
  EXPECT_EQ(a, a2);
  EXPECT_EQ(a.Hash(), a2.Hash());

  // Algebraic identities.
  EXPECT_EQ(a.And(b), b.And(a));
  EXPECT_EQ(a.Or(b), b.Or(a));
  EXPECT_EQ(a.AndNot(b).Or(a.And(b)), a);
  EXPECT_EQ(a.Xor(b), a.AndNot(b).Or(b.AndNot(a)));
}

INSTANTIATE_TEST_SUITE_P(
    Sweeps, EwahPropertyTest,
    ::testing::Values(
        RandomCaseParams{1, 100, 0.5}, RandomCaseParams{2, 100, 0.05},
        RandomCaseParams{3, 1000, 0.9},     // dense: one-runs exercised
        RandomCaseParams{4, 1000, 0.01},    // sparse: zero-runs exercised
        RandomCaseParams{5, 10000, 0.001},  // very sparse
        RandomCaseParams{6, 10000, 0.999},  // nearly full
        RandomCaseParams{7, 4096, 0.5},     // word-aligned universe
        RandomCaseParams{8, 4097, 0.3},     // off-by-one universe
        RandomCaseParams{9, 63, 0.5},       // sub-word universe
        RandomCaseParams{10, 64, 0.5}, RandomCaseParams{11, 65, 0.5},
        RandomCaseParams{12, 128, 1.0},     // full
        RandomCaseParams{13, 100000, 0.0001}));

}  // namespace
}  // namespace scube
