#include "common/trace.h"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

namespace scube {
namespace trace {
namespace {

TEST(TraceContextTest, FreshContextHasIdAndNoSpans) {
  TraceContext tc;
  EXPECT_NE(tc.trace_id(), 0u);
  EXPECT_EQ(tc.trace_id_hex().size(), 16u);
  EXPECT_EQ(tc.spans_recorded(), 0u);
  EXPECT_EQ(tc.spans_dropped(), 0u);
  EXPECT_TRUE(tc.Spans().empty());
}

TEST(TraceContextTest, TraceIdsAreDistinct) {
  TraceContext a, b;
  EXPECT_NE(a.trace_id(), b.trace_id());
}

TEST(TraceContextTest, SpanNestingFollowsScopeOnOneThread) {
  TraceContext tc;
  {
    Span outer(&tc, "outer");
    {
      Span inner(&tc, "inner");
      Span sibling_of_nothing(&tc, "innermost");
    }
    Span second(&tc, "second");
  }
  auto spans = tc.Spans();
  ASSERT_EQ(spans.size(), 4u);
  // Start order: outer, inner, innermost, second.
  EXPECT_STREQ(spans[0].name, "outer");
  EXPECT_STREQ(spans[1].name, "inner");
  EXPECT_STREQ(spans[2].name, "innermost");
  EXPECT_STREQ(spans[3].name, "second");
  EXPECT_EQ(spans[0].parent, TraceContext::kNoParent);
  EXPECT_EQ(spans[1].parent, spans[0].id);
  EXPECT_EQ(spans[2].parent, spans[1].id);
  // "second" opened after inner/innermost closed: child of outer again.
  EXPECT_EQ(spans[3].parent, spans[0].id);
  for (const auto& s : spans) EXPECT_FALSE(s.open);
}

TEST(TraceContextTest, EndIsIdempotentAndStopsTheClock) {
  TraceContext tc;
  Span span(&tc, "work");
  span.End();
  auto first = tc.Spans();
  ASSERT_EQ(first.size(), 1u);
  double duration = first[0].duration_ms;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  span.End();  // no-op
  auto second = tc.Spans();
  EXPECT_EQ(second[0].duration_ms, duration);
}

TEST(TraceContextTest, NullTraceSpanIsANoOp) {
  // The disabled-tracing path: constructing against nullptr records
  // nothing and leaves no thread-local cursor behind.
  {
    Span span(nullptr, "ghost");
    EXPECT_EQ(CurrentTraceId(), 0u);
    span.End();
  }
  EXPECT_EQ(CurrentTraceId(), 0u);
}

TEST(TraceContextTest, CurrentTraceIdTracksInnermostOpenSpan) {
  EXPECT_EQ(CurrentTraceId(), 0u);
  TraceContext tc;
  {
    Span span(&tc, "scope");
    EXPECT_EQ(CurrentTraceId(), tc.trace_id());
  }
  EXPECT_EQ(CurrentTraceId(), 0u);
}

TEST(TraceContextTest, CrossThreadSpansAreRootsOfTheSameTrace) {
  TraceContext tc;
  Span request(&tc, "request");
  std::thread worker([&tc] {
    // The worker's cursor points at no trace, so its span is a root of
    // tc, not a child of "request" (parentage is per-thread).
    Span span(&tc, "worker");
  });
  worker.join();
  request.End();
  auto spans = tc.Spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[1].parent, TraceContext::kNoParent);
}

TEST(TraceContextTest, RetroactiveRecordAndOverflowCounting) {
  TraceContext tc;
  auto start = TraceContext::Clock::now();
  auto end = start + std::chrono::milliseconds(7);
  uint32_t slot = tc.Record("queue_wait", start, end);
  EXPECT_NE(slot, 0u);
  auto spans = tc.Spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_STREQ(spans[0].name, "queue_wait");
  EXPECT_NEAR(spans[0].duration_ms, 7.0, 0.5);

  // Fill the buffer; the overflow is counted, not grown.
  for (uint32_t i = 0; i < TraceContext::kMaxSpans + 5; ++i) {
    tc.Record("filler", start, end);
  }
  EXPECT_EQ(tc.spans_recorded(), TraceContext::kMaxSpans);
  EXPECT_EQ(tc.spans_dropped(), 6u);
  // Dropped spans do not crash rendering.
  EXPECT_NE(tc.ToJson().find("\"spans_dropped\":6"), std::string::npos);
}

TEST(TraceContextTest, ToJsonNestsChildSpans) {
  TraceContext tc;
  {
    Span outer(&tc, "serialize");
    Span inner(&tc, "wire.flush");
  }
  std::string json = tc.ToJson();
  EXPECT_NE(json.find("\"trace_id\":\"" + tc.trace_id_hex() + "\""),
            std::string::npos)
      << json;
  // The child rides inside the parent's "spans" array.
  size_t outer_at = json.find("\"name\":\"serialize\"");
  size_t inner_at = json.find("\"name\":\"wire.flush\"");
  ASSERT_NE(outer_at, std::string::npos);
  ASSERT_NE(inner_at, std::string::npos);
  EXPECT_LT(outer_at, inner_at);
  EXPECT_NE(json.find("\"total_ms\":"), std::string::npos);
}

TEST(TraceContextTest, SummaryListsRootSpans) {
  TraceContext tc;
  {
    Span seal(&tc, "build.seal");
    Span nested(&tc, "nested");  // hidden from the one-line summary
  }
  { Span warm(&tc, "warm"); }
  std::string summary = tc.Summary();
  EXPECT_NE(summary.find("build.seal="), std::string::npos) << summary;
  EXPECT_NE(summary.find("warm="), std::string::npos) << summary;
  EXPECT_EQ(summary.find("nested"), std::string::npos) << summary;
}

TEST(LatencyHistogramTest, BucketBoundariesAreInclusive) {
  LatencyHistogram hist;
  hist.Observe(0.01);   // exactly the first bound -> bucket 0
  hist.Observe(0.011);  // just past it -> bucket 1
  hist.Observe(10000.0);  // the last finite bound
  hist.Observe(10000.1);  // beyond every bound -> +Inf bucket
  EXPECT_EQ(hist.bucket(0), 1u);
  EXPECT_EQ(hist.bucket(1), 1u);
  EXPECT_EQ(hist.bucket(LatencyHistogram::kNumBuckets - 2), 1u);
  EXPECT_EQ(hist.bucket(LatencyHistogram::kNumBuckets - 1), 1u);
  EXPECT_EQ(hist.count(), 4u);
}

TEST(LatencyHistogramTest, NegativeObservationsClampToZero) {
  LatencyHistogram hist;
  hist.Observe(-3.0);
  EXPECT_EQ(hist.bucket(0), 1u);
  EXPECT_EQ(hist.sum_ms(), 0.0);
}

TEST(LatencyHistogramTest, SumIsExactInMicroseconds) {
  LatencyHistogram hist;
  hist.Observe(1.5);
  hist.Observe(2.25);
  EXPECT_DOUBLE_EQ(hist.sum_ms(), 3.75);
}

TEST(LatencyHistogramTest, QuantileInterpolatesAndClampsAtTheTop) {
  LatencyHistogram hist;
  EXPECT_EQ(hist.Quantile(0.5), 0.0);  // empty
  for (int i = 0; i < 100; ++i) hist.Observe(0.7);  // bucket (0.5, 1.0]
  double p50 = hist.Quantile(0.50);
  EXPECT_GT(p50, 0.5);
  EXPECT_LE(p50, 1.0);
  LatencyHistogram top;
  top.Observe(99999.0);  // +Inf bucket reports the last finite bound
  EXPECT_EQ(top.Quantile(0.99),
            LatencyHistogram::kBucketBoundsMs.back());
}

TEST(LatencyHistogramTest, ConcurrentObserveLosesNothing) {
  LatencyHistogram hist;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist] {
      for (int i = 0; i < kPerThread; ++i) hist.Observe(1.0);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(hist.count(),
            static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(hist.sum_ms(), kThreads * kPerThread * 1.0);
  uint64_t bucket_total = 0;
  for (size_t i = 0; i < LatencyHistogram::kNumBuckets; ++i) {
    bucket_total += hist.bucket(i);
  }
  EXPECT_EQ(bucket_total, hist.count());
}

TEST(TraceOverheadTest, DisabledSpansAreEffectivelyFree) {
  // A null-trace span must not read the clock: a million of them should
  // complete near-instantly even on a loaded single-core machine. The
  // bound is deliberately enormous — this guards against accidentally
  // adding per-span work to the disabled path, not against scheduler
  // noise.
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < 1000000; ++i) {
    Span span(nullptr, "noop");
  }
  double ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - start)
                  .count();
  EXPECT_LT(ms, 500.0);
}

}  // namespace
}  // namespace trace
}  // namespace scube
