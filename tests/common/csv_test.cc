#include "common/csv.h"

#include <gtest/gtest.h>

#include <cstdio>

namespace scube {
namespace {

CsvDocument MustParse(const std::string& content,
                      CsvReader::Options opts = CsvReader::Options()) {
  CsvReader reader(opts);
  auto doc = reader.ParseString(content);
  EXPECT_TRUE(doc.ok()) << doc.status();
  return doc.value();
}

TEST(CsvReaderTest, SimpleHeaderAndRows) {
  auto doc = MustParse("id,gender,age\n1,F,33\n2,M,47\n");
  EXPECT_EQ(doc.header, (std::vector<std::string>{"id", "gender", "age"}));
  ASSERT_EQ(doc.rows.size(), 2u);
  EXPECT_EQ(doc.rows[0], (std::vector<std::string>{"1", "F", "33"}));
  EXPECT_EQ(doc.rows[1], (std::vector<std::string>{"2", "M", "47"}));
}

TEST(CsvReaderTest, MissingTrailingNewline) {
  auto doc = MustParse("a,b\n1,2");
  ASSERT_EQ(doc.rows.size(), 1u);
  EXPECT_EQ(doc.rows[0], (std::vector<std::string>{"1", "2"}));
}

TEST(CsvReaderTest, CrLfLineEndings) {
  auto doc = MustParse("a,b\r\n1,2\r\n3,4\r\n");
  ASSERT_EQ(doc.rows.size(), 2u);
  EXPECT_EQ(doc.rows[1], (std::vector<std::string>{"3", "4"}));
}

TEST(CsvReaderTest, QuotedFieldsWithSeparatorsAndQuotes) {
  auto doc = MustParse(
      "id,sector\n"
      "1,\"{electricity, transports}\"\n"
      "2,\"say \"\"hi\"\"\"\n");
  ASSERT_EQ(doc.rows.size(), 2u);
  EXPECT_EQ(doc.rows[0][1], "{electricity, transports}");
  EXPECT_EQ(doc.rows[1][1], "say \"hi\"");
}

TEST(CsvReaderTest, QuotedFieldWithEmbeddedNewline) {
  auto doc = MustParse("a,b\n\"line1\nline2\",x\n");
  ASSERT_EQ(doc.rows.size(), 1u);
  EXPECT_EQ(doc.rows[0][0], "line1\nline2");
}

TEST(CsvReaderTest, EmptyFields) {
  auto doc = MustParse("a,b,c\n,,\n");
  ASSERT_EQ(doc.rows.size(), 1u);
  EXPECT_EQ(doc.rows[0], (std::vector<std::string>{"", "", ""}));
}

TEST(CsvReaderTest, StrictFieldCountMismatchIsError) {
  CsvReader reader;
  auto doc = reader.ParseString("a,b\n1,2,3\n");
  EXPECT_FALSE(doc.ok());
  EXPECT_EQ(doc.status().code(), StatusCode::kParseError);
}

TEST(CsvReaderTest, LenientFieldCountPads) {
  CsvReader::Options opts;
  opts.strict_field_count = false;
  auto doc = MustParse("a,b,c\n1,2\n", opts);
  ASSERT_EQ(doc.rows.size(), 1u);
  EXPECT_EQ(doc.rows[0], (std::vector<std::string>{"1", "2", ""}));
}

TEST(CsvReaderTest, NoHeaderMode) {
  CsvReader::Options opts;
  opts.has_header = false;
  auto doc = MustParse("1,2\n3,4\n", opts);
  EXPECT_TRUE(doc.header.empty());
  EXPECT_EQ(doc.rows.size(), 2u);
}

TEST(CsvReaderTest, SemicolonSeparator) {
  CsvReader::Options opts;
  opts.separator = ';';
  auto doc = MustParse("a;b\n1;2\n", opts);
  EXPECT_EQ(doc.rows[0], (std::vector<std::string>{"1", "2"}));
}

TEST(CsvReaderTest, UnterminatedQuoteIsError) {
  CsvReader reader;
  auto doc = reader.ParseString("a\n\"unterminated\n");
  EXPECT_FALSE(doc.ok());
}

TEST(CsvReaderTest, ColumnIndexLookup) {
  auto doc = MustParse("id,gender,age\n1,F,30\n");
  EXPECT_EQ(doc.ColumnIndex("gender"), 1);
  EXPECT_EQ(doc.ColumnIndex("missing"), -1);
}

TEST(CsvWriterTest, EscapesOnlyWhenNeeded) {
  CsvWriter w;
  w.WriteRow({"plain", "with,comma", "with\"quote", "with\nnewline"});
  EXPECT_EQ(w.str(),
            "plain,\"with,comma\",\"with\"\"quote\",\"with\nnewline\"\n");
}

TEST(CsvWriterTest, RoundTripThroughReader) {
  CsvWriter w;
  w.WriteRow({"id", "attrs"});
  w.WriteRow({"1", "{a,b}"});
  w.WriteRow({"2", "plain"});
  auto doc = MustParse(w.str());
  ASSERT_EQ(doc.rows.size(), 2u);
  EXPECT_EQ(doc.rows[0][1], "{a,b}");
  EXPECT_EQ(doc.rows[1][1], "plain");
}

TEST(CsvFileTest, WriteAndReadBackFile) {
  std::string path = ::testing::TempDir() + "/scube_csv_test.csv";
  CsvWriter w;
  w.WriteRow({"a", "b"});
  w.WriteRow({"1", "2"});
  ASSERT_TRUE(w.SaveToFile(path).ok());
  CsvReader reader;
  auto doc = reader.ParseFile(path);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc.value().rows.size(), 1u);
  std::remove(path.c_str());
}

TEST(CsvFileTest, MissingFileIsIoError) {
  CsvReader reader;
  auto doc = reader.ParseFile("/nonexistent/path/file.csv");
  ASSERT_FALSE(doc.ok());
  EXPECT_EQ(doc.status().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace scube
