// Tests for the annotated synchronisation primitives (common/sync.h):
// lock/unlock and TryLock semantics, CondVar wait/signal, MutexLock and
// ReleasableMutexLock scoping, and the debug-build AssertHeld death test.
// The compile-time counterpart — a GUARDED_BY violation failing under
// -Werror=thread-safety — is the CMake try_compile check on
// tests/common/sync_negative_check.cc (clang + SCUBE_THREAD_SAFETY=ON).

#include "common/sync.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace scube {
namespace sync {
namespace {

TEST(MutexTest, LockUnlockRoundTrip) {
  Mutex mu;
  mu.Lock();
  mu.AssertHeld();
  mu.Unlock();
}

TEST(MutexTest, TryLockReportsContention) {
  Mutex mu;
  ASSERT_TRUE(mu.TryLock());
  // A second owner must be refused while we hold it — probe from another
  // thread because std::mutex::try_lock is UB when the caller already
  // owns the lock.
  bool acquired = true;
  std::thread probe([&] { acquired = mu.TryLock(); });
  probe.join();
  EXPECT_FALSE(acquired);
  mu.Unlock();
  ASSERT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(MutexTest, GuardsACounterAcrossThreads) {
  Mutex mu;
  int counter GUARDED_BY(mu) = 0;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 1000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) {
        MutexLock lock(&mu);
        ++counter;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  MutexLock lock(&mu);
  EXPECT_EQ(counter, kThreads * kIncrements);
}

TEST(MutexLockTest, ReleasesAtScopeExit) {
  Mutex mu;
  {
    MutexLock lock(&mu);
    mu.AssertHeld();
  }
  // Released: TryLock succeeds again.
  ASSERT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(ReleasableMutexLockTest, ExplicitReleaseEndsTheCriticalSection) {
  Mutex mu;
  {
    ReleasableMutexLock lock(&mu);
    mu.AssertHeld();
    lock.Release();
    ASSERT_TRUE(mu.TryLock());  // already released, not at scope exit
    mu.Unlock();
  }  // destructor must not double-unlock
  ASSERT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(ReleasableMutexLockTest, DestructorReleasesWhenNotReleased) {
  Mutex mu;
  {
    ReleasableMutexLock lock(&mu);
    mu.AssertHeld();
  }
  ASSERT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(CondVarTest, WaitWakesOnSignal) {
  Mutex mu;
  CondVar cv;
  bool ready GUARDED_BY(mu) = false;
  int observed GUARDED_BY(mu) = 0;

  std::thread waiter([&] {
    MutexLock lock(&mu);
    while (!ready) cv.Wait(&mu);
    mu.AssertHeld();  // Wait re-acquires before returning
    observed = 1;
  });

  {
    MutexLock lock(&mu);
    ready = true;
  }
  cv.Signal();
  waiter.join();

  MutexLock lock(&mu);
  EXPECT_EQ(observed, 1);
}

TEST(CondVarTest, SignalAllWakesEveryWaiter) {
  Mutex mu;
  CondVar cv;
  bool go GUARDED_BY(mu) = false;
  int awake GUARDED_BY(mu) = 0;
  constexpr int kWaiters = 4;

  std::vector<std::thread> waiters;
  waiters.reserve(kWaiters);
  for (int i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&] {
      MutexLock lock(&mu);
      while (!go) cv.Wait(&mu);
      ++awake;
    });
  }
  {
    MutexLock lock(&mu);
    go = true;
  }
  cv.SignalAll();
  for (std::thread& t : waiters) t.join();

  MutexLock lock(&mu);
  EXPECT_EQ(awake, kWaiters);
}

#ifndef NDEBUG
TEST(MutexDeathTest, AssertHeldAbortsWhenNotHeld) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Mutex mu;
  EXPECT_DEATH(mu.AssertHeld(), "CHECK FAILED");
}

TEST(MutexDeathTest, AssertHeldAbortsForAnotherThreadsLock) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Mutex mu;
  mu.Lock();
  std::thread other([&] {
    // Held, but by the spawning thread — still a discipline violation.
    EXPECT_DEATH(mu.AssertHeld(), "CHECK FAILED");
  });
  other.join();
  mu.Unlock();
}
#endif  // NDEBUG

}  // namespace
}  // namespace sync
}  // namespace scube
