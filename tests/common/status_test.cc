#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace scube {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("minsup must be positive");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "minsup must be positive");
  EXPECT_EQ(s.ToString(), "InvalidArgument: minsup must be positive");
}

TEST(StatusTest, AllNamedConstructorsProduceMatchingCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, WithContextPrepends) {
  Status s = Status::IoError("disk full").WithContext("writing cube.xlsx");
  EXPECT_EQ(s.ToString(), "IOError: writing cube.xlsx: disk full");
  EXPECT_TRUE(Status::OK().WithContext("ignored").ok());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

Status FailingHelper() { return Status::ParseError("bad line"); }

Status UsesReturnIfError() {
  SCUBE_RETURN_IF_ERROR(FailingHelper());
  return Status::Internal("unreachable");
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  Status s = UsesReturnIfError();
  EXPECT_EQ(s.code(), StatusCode::kParseError);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

Result<int> ProduceValue() { return 10; }

Result<int> Chained() {
  SCUBE_ASSIGN_OR_RETURN(int v, ProduceValue());
  return v * 2;
}

Result<int> ChainedError() {
  SCUBE_ASSIGN_OR_RETURN(int v, Result<int>(Status::IoError("x")));
  return v;
}

TEST(ResultTest, AssignOrReturnMacro) {
  EXPECT_EQ(Chained().value(), 20);
  EXPECT_EQ(ChainedError().status().code(), StatusCode::kIoError);
}

TEST(ResultTest, MoveOnlyValueWorks) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

}  // namespace
}  // namespace scube
