#include "datagen/scenarios.h"

#include <gtest/gtest.h>

#include <cmath>

namespace scube {
namespace datagen {
namespace {

ScenarioConfig TinyItalian() {
  ScenarioConfig config = ItalianConfig(0.001, /*seed=*/7);  // ~2150 companies
  return config;
}

TEST(ScenariosTest, DeterministicGivenSeed) {
  auto a = GenerateScenario(TinyItalian());
  auto b = GenerateScenario(TinyItalian());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->inputs.individuals.NumRows(), b->inputs.individuals.NumRows());
  EXPECT_EQ(a->inputs.membership.NumMemberships(),
            b->inputs.membership.NumMemberships());
  EXPECT_EQ(a->sector_female_share, b->sector_female_share);
}

TEST(ScenariosTest, ShapesMatchConfig) {
  auto s = GenerateScenario(TinyItalian());
  ASSERT_TRUE(s.ok()) << s.status();
  EXPECT_EQ(s->inputs.groups.NumRows(), 2150u);
  EXPECT_GT(s->inputs.individuals.NumRows(), 1000u);
  // Seats >= companies (every board has >= 1 seat).
  EXPECT_GE(s->inputs.membership.NumMemberships(),
            s->inputs.groups.NumRows());
  EXPECT_TRUE(s->inputs.Validate().ok());
  EXPECT_EQ(s->snapshot_years, (std::vector<graph::Date>{0}));
}

TEST(ScenariosTest, ColumnHandlesResolved) {
  auto s = GenerateScenario(TinyItalian());
  ASSERT_TRUE(s.ok());
  EXPECT_GE(s->individual_gender_col, 0);
  EXPECT_GE(s->individual_age_bin_col, 0);
  EXPECT_GE(s->individual_province_col, 0);
  EXPECT_GE(s->group_sector_col, 0);
  EXPECT_GE(s->group_region_col, 0);
}

TEST(ScenariosTest, PlantedSectorBiasIsRealised) {
  ScenarioConfig config = ItalianConfig(0.005, 11);  // ~10750 companies
  auto s = GenerateScenario(config);
  ASSERT_TRUE(s.ok());
  // Education (planted 0.55) must end up far more female than
  // construction (planted 0.12). Reuse and province bias add noise, so
  // assert a conservative gap.
  double education = s->sector_female_share.at("education");
  double construction = s->sector_female_share.at("construction");
  EXPECT_GT(education, construction + 0.20);
}

TEST(ScenariosTest, PlantedNorthSouthGradient) {
  ScenarioConfig config = ItalianConfig(0.005, 13);
  auto s = GenerateScenario(config);
  ASSERT_TRUE(s.ok());
  double milano = s->province_female_share.at("Milano");
  double palermo = s->province_female_share.at("Palermo");
  EXPECT_GT(milano, palermo);
}

TEST(ScenariosTest, AgeBinsUsePaperEdges) {
  auto s = GenerateScenario(TinyItalian());
  ASSERT_TRUE(s.ok());
  const auto& table = s->inputs.individuals;
  size_t bin_col = static_cast<size_t>(s->individual_age_bin_col);
  size_t age_col = static_cast<size_t>(s->individual_age_col);
  for (size_t r = 0; r < std::min<size_t>(table.NumRows(), 500); ++r) {
    int64_t age = table.Int64Value(r, age_col);
    std::string bin = table.CategoricalValue(r, bin_col);
    if (age >= 18 && age <= 38) {
      EXPECT_EQ(bin, "18-38") << age;
    }
    if (age >= 39 && age <= 46) {
      EXPECT_EQ(bin, "39-46") << age;
    }
    if (age >= 55 && age <= 90) {
      EXPECT_EQ(bin, "55-90") << age;
    }
  }
}

TEST(ScenariosTest, InterlocksExist) {
  auto s = GenerateScenario(TinyItalian());
  ASSERT_TRUE(s.ok());
  // With multi_board_prob > 0, seats exceed distinct directors.
  EXPECT_GT(s->inputs.membership.NumMemberships(),
            s->inputs.individuals.NumRows());
}

TEST(ScenariosTest, EstonianTemporalScenario) {
  ScenarioConfig config = EstonianConfig(0.002, 17);  // ~680 companies
  auto s = GenerateScenario(config);
  ASSERT_TRUE(s.ok()) << s.status();
  EXPECT_EQ(s->snapshot_years.size(), 20u);
  EXPECT_EQ(s->snapshot_years.front(), 1995);
  EXPECT_EQ(s->snapshot_years.back(), 2014);

  // Memberships carry genuine validity intervals within the range.
  bool any_bounded = false;
  for (const auto& m : s->inputs.membership.memberships()) {
    EXPECT_LT(m.valid_from, m.valid_to);
    if (m.valid_from != graph::kDateMin) {
      any_bounded = true;
      EXPECT_GE(m.valid_from, 1995);
      EXPECT_LE(m.valid_to, 2015);
    }
  }
  EXPECT_TRUE(any_bounded);
}

TEST(ScenariosTest, TemporalDriftFeminisesBoards) {
  ScenarioConfig config = EstonianConfig(0.01, 19);
  config.female_share_drift = 0.3;
  auto s = GenerateScenario(config);
  ASSERT_TRUE(s.ok());
  // Female share among seats active early vs late.
  const auto& individuals = s->inputs.individuals;
  size_t gender_col = static_cast<size_t>(s->individual_gender_col);
  auto female_share_at = [&](graph::Date year) {
    uint64_t seats = 0, female = 0;
    for (const auto& m : s->inputs.membership.memberships()) {
      if (!m.ActiveAt(year)) continue;
      ++seats;
      if (individuals.CategoricalValue(m.individual, gender_col) == "F") {
        ++female;
      }
    }
    return seats == 0 ? 0.0
                      : static_cast<double>(female) /
                            static_cast<double>(seats);
  };
  EXPECT_GT(female_share_at(2013), female_share_at(1996) + 0.05);
}

TEST(ScenariosTest, ValidatesConfig) {
  ScenarioConfig bad;
  bad.sectors.clear();
  EXPECT_FALSE(GenerateScenario(bad).ok());

  ScenarioConfig no_companies = ItalianConfig(0.001);
  no_companies.num_companies = 0;
  EXPECT_FALSE(GenerateScenario(no_companies).ok());

  ScenarioConfig bad_years = EstonianConfig(0.001);
  bad_years.end_year = bad_years.start_year;
  EXPECT_FALSE(GenerateScenario(bad_years).ok());
}

TEST(ScenariosTest, PresetScales) {
  EXPECT_EQ(ItalianConfig(1.0).num_companies, 2150000u);
  EXPECT_EQ(ItalianConfig(0.01).num_companies, 21500u);
  EXPECT_EQ(EstonianConfig(1.0).num_companies, 340000u);
  EXPECT_EQ(ItalianSectors().size(), 20u);
  EXPECT_EQ(ItalianProvinces().size(), 20u);
  EXPECT_EQ(EstonianSectors().size(), 10u);
  EXPECT_EQ(EstonianProvinces().size(), 15u);
}

}  // namespace
}  // namespace datagen
}  // namespace scube
