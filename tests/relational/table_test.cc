#include "relational/table.h"

#include <gtest/gtest.h>

namespace scube {
namespace relational {
namespace {

Schema TestSchema() {
  return Schema({
      {"id", ColumnType::kInt64, AttributeKind::kId},
      {"gender", ColumnType::kCategorical, AttributeKind::kSegregation},
      {"score", ColumnType::kDouble, AttributeKind::kIgnore},
      {"sector", ColumnType::kCategoricalSet, AttributeKind::kContext},
  });
}

TEST(TableTest, AppendTypedRows) {
  Table t(TestSchema());
  ASSERT_TRUE(t.AppendRow({int64_t{1}, std::string("F"), 0.5,
                           std::vector<std::string>{"edu", "agri"}})
                  .ok());
  ASSERT_TRUE(t.AppendRow({int64_t{2}, std::string("M"), 1.25,
                           std::vector<std::string>{}})
                  .ok());
  EXPECT_EQ(t.NumRows(), 2u);
  EXPECT_EQ(t.Int64Value(0, 0), 1);
  EXPECT_EQ(t.CategoricalValue(0, 1), "F");
  EXPECT_DOUBLE_EQ(t.DoubleValue(1, 2), 1.25);
  EXPECT_EQ(t.SetValues(0, 3), (std::vector<std::string>{"edu", "agri"}));
  EXPECT_TRUE(t.SetValues(1, 3).empty());
}

TEST(TableTest, DictionaryCodesShared) {
  Table t(TestSchema());
  ASSERT_TRUE(t.AppendRow({int64_t{1}, std::string("F"), 0.0,
                           std::vector<std::string>{}}).ok());
  ASSERT_TRUE(t.AppendRow({int64_t{2}, std::string("M"), 0.0,
                           std::vector<std::string>{}}).ok());
  ASSERT_TRUE(t.AppendRow({int64_t{3}, std::string("F"), 0.0,
                           std::vector<std::string>{}}).ok());
  EXPECT_EQ(t.CategoricalCode(0, 1), t.CategoricalCode(2, 1));
  EXPECT_NE(t.CategoricalCode(0, 1), t.CategoricalCode(1, 1));
  EXPECT_EQ(t.dictionary(1).size(), 2u);
}

TEST(TableTest, IntAcceptedForDoubleColumn) {
  Table t(TestSchema());
  ASSERT_TRUE(t.AppendRow({int64_t{1}, std::string("F"), int64_t{3},
                           std::vector<std::string>{}}).ok());
  EXPECT_DOUBLE_EQ(t.DoubleValue(0, 2), 3.0);
}

TEST(TableTest, TypeMismatchRejectedAtomically) {
  Table t(TestSchema());
  Status s = t.AppendRow({std::string("oops"), std::string("F"), 0.5,
                          std::vector<std::string>{}});
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(t.NumRows(), 0u);
}

TEST(TableTest, WrongArityRejected) {
  Table t(TestSchema());
  Status s = t.AppendRow({int64_t{1}});
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(TableTest, AppendFromStringsParsesTypes) {
  Table t(TestSchema());
  ASSERT_TRUE(
      t.AppendRowFromStrings({"7", "F", "0.25", "{transport, energy}"}).ok());
  EXPECT_EQ(t.Int64Value(0, 0), 7);
  EXPECT_DOUBLE_EQ(t.DoubleValue(0, 2), 0.25);
  EXPECT_EQ(t.SetValues(0, 3),
            (std::vector<std::string>{"transport", "energy"}));
}

TEST(TableTest, AppendFromStringsBadIntReported) {
  Table t(TestSchema());
  Status s = t.AppendRowFromStrings({"x", "F", "0.25", "edu"});
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_NE(s.message().find("id"), std::string::npos);
}

TEST(TableTest, ParseSetLiteralVariants) {
  EXPECT_EQ(Table::ParseSetLiteral("{a,b}"),
            (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(Table::ParseSetLiteral("{ a , b }"),
            (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(Table::ParseSetLiteral("bare"),
            (std::vector<std::string>{"bare"}));
  EXPECT_TRUE(Table::ParseSetLiteral("{}").empty());
  EXPECT_TRUE(Table::ParseSetLiteral("").empty());
  EXPECT_TRUE(Table::ParseSetLiteral("  ").empty());
}

TEST(TableTest, SetCellsDeduplicated) {
  Table t(TestSchema());
  ASSERT_TRUE(t.AppendRow({int64_t{1}, std::string("F"), 0.0,
                           std::vector<std::string>{"a", "b", "a"}}).ok());
  EXPECT_EQ(t.SetCodes(0, 3).size(), 2u);
}

TEST(TableTest, CellToStringRendering) {
  Table t(TestSchema());
  ASSERT_TRUE(t.AppendRow({int64_t{9}, std::string("M"), 0.5,
                           std::vector<std::string>{"a", "b"}}).ok());
  EXPECT_EQ(t.CellToString(0, 0), "9");
  EXPECT_EQ(t.CellToString(0, 1), "M");
  EXPECT_EQ(t.CellToString(0, 3), "{a,b}");
}

TEST(TableTest, AddCategoricalColumn) {
  Table t(TestSchema());
  ASSERT_TRUE(t.AppendRow({int64_t{1}, std::string("F"), 0.0,
                           std::vector<std::string>{}}).ok());
  ASSERT_TRUE(t.AppendRow({int64_t{2}, std::string("M"), 0.0,
                           std::vector<std::string>{}}).ok());
  ASSERT_TRUE(t.AddCategoricalColumn(
                   {"age_bin", ColumnType::kCategorical,
                    AttributeKind::kSegregation},
                   {"young", "elder"})
                  .ok());
  EXPECT_EQ(t.schema().NumAttributes(), 5u);
  EXPECT_EQ(t.CategoricalValue(0, 4), "young");
  EXPECT_EQ(t.CategoricalValue(1, 4), "elder");

  // Wrong length rejected.
  EXPECT_FALSE(t.AddCategoricalColumn({"x", ColumnType::kCategorical,
                                       AttributeKind::kContext},
                                      {"only-one"})
                   .ok());
}

TEST(TableTest, CsvRoundTrip) {
  Table t(TestSchema());
  ASSERT_TRUE(
      t.AppendRowFromStrings({"1", "F", "0.5", "{edu, agri}"}).ok());
  ASSERT_TRUE(t.AppendRowFromStrings({"2", "M", "1.5", "energy"}).ok());
  std::string csv = t.ToCsvString();

  CsvReader reader;
  auto doc = reader.ParseString(csv);
  ASSERT_TRUE(doc.ok());
  auto back = Table::FromCsv(doc.value(), TestSchema());
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->NumRows(), 2u);
  EXPECT_EQ(back->CategoricalValue(0, 1), "F");
  EXPECT_EQ(back->SetValues(0, 3), (std::vector<std::string>{"edu", "agri"}));
  EXPECT_EQ(back->SetValues(1, 3), (std::vector<std::string>{"energy"}));
}

TEST(TableTest, FromCsvMissingColumn) {
  CsvReader reader;
  auto doc = reader.ParseString("id,gender\n1,F\n");
  ASSERT_TRUE(doc.ok());
  auto t = Table::FromCsv(doc.value(), TestSchema());
  EXPECT_EQ(t.status().code(), StatusCode::kNotFound);
}

TEST(TableTest, FromCsvIgnoresExtraColumns) {
  CsvReader reader;
  auto doc = reader.ParseString(
      "extra,id,gender,score,sector\nzzz,1,F,0.5,edu\n");
  ASSERT_TRUE(doc.ok());
  auto t = Table::FromCsv(doc.value(), TestSchema());
  ASSERT_TRUE(t.ok()) << t.status();
  EXPECT_EQ(t->NumRows(), 1u);
  EXPECT_EQ(t->CategoricalValue(0, 1), "F");
}

}  // namespace
}  // namespace relational
}  // namespace scube
