#include "relational/schema.h"

#include <gtest/gtest.h>

namespace scube {
namespace relational {
namespace {

Schema AnalysisSchema() {
  return Schema({
      {"id", ColumnType::kInt64, AttributeKind::kId},
      {"gender", ColumnType::kCategorical, AttributeKind::kSegregation},
      {"age", ColumnType::kCategorical, AttributeKind::kSegregation},
      {"residence", ColumnType::kCategorical, AttributeKind::kContext},
      {"sector", ColumnType::kCategoricalSet, AttributeKind::kContext},
      {"unitID", ColumnType::kInt64, AttributeKind::kUnit},
  });
}

TEST(SchemaTest, IndexLookup) {
  Schema s = AnalysisSchema();
  EXPECT_EQ(s.NumAttributes(), 6u);
  EXPECT_EQ(s.IndexOf("gender"), 1);
  EXPECT_EQ(s.IndexOf("unitID"), 5);
  EXPECT_EQ(s.IndexOf("nope"), -1);
}

TEST(SchemaTest, IndicesOfKind) {
  Schema s = AnalysisSchema();
  EXPECT_EQ(s.IndicesOfKind(AttributeKind::kSegregation),
            (std::vector<size_t>{1, 2}));
  EXPECT_EQ(s.IndicesOfKind(AttributeKind::kContext),
            (std::vector<size_t>{3, 4}));
  EXPECT_EQ(s.IndicesOfKind(AttributeKind::kUnit), (std::vector<size_t>{5}));
  EXPECT_TRUE(s.IndicesOfKind(AttributeKind::kIgnore).empty());
}

TEST(SchemaTest, DuplicateNameRejected) {
  Schema s;
  EXPECT_TRUE(s.AddAttribute({"x", ColumnType::kCategorical,
                              AttributeKind::kContext}).ok());
  Status dup = s.AddAttribute({"x", ColumnType::kInt64, AttributeKind::kId});
  EXPECT_EQ(dup.code(), StatusCode::kAlreadyExists);
}

TEST(SchemaTest, ValidationRequiresSaAndOneUnit) {
  EXPECT_TRUE(AnalysisSchema().ValidateForAnalysis().ok());

  Schema no_sa({{"unitID", ColumnType::kInt64, AttributeKind::kUnit}});
  EXPECT_EQ(no_sa.ValidateForAnalysis().code(),
            StatusCode::kFailedPrecondition);

  Schema no_unit(
      {{"gender", ColumnType::kCategorical, AttributeKind::kSegregation}});
  EXPECT_EQ(no_unit.ValidateForAnalysis().code(),
            StatusCode::kFailedPrecondition);

  Schema two_units({
      {"gender", ColumnType::kCategorical, AttributeKind::kSegregation},
      {"u1", ColumnType::kInt64, AttributeKind::kUnit},
      {"u2", ColumnType::kInt64, AttributeKind::kUnit},
  });
  EXPECT_EQ(two_units.ValidateForAnalysis().code(),
            StatusCode::kFailedPrecondition);
}

TEST(SchemaTest, EnumNames) {
  EXPECT_STREQ(AttributeKindToString(AttributeKind::kSegregation),
               "segregation");
  EXPECT_STREQ(AttributeKindToString(AttributeKind::kUnit), "unit");
  EXPECT_STREQ(ColumnTypeToString(ColumnType::kCategoricalSet),
               "categorical-set");
}

}  // namespace
}  // namespace relational
}  // namespace scube
