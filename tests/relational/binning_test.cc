#include "relational/binning.h"

#include <gtest/gtest.h>

namespace scube {
namespace relational {
namespace {

TEST(BinnerTest, FromEdgesLabels) {
  // The paper's age bins: 15-38, 39-46, 47-54, 55-65.
  auto b = Binner::FromEdges({15, 39, 47, 55, 66});
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b->NumBins(), 4u);
  EXPECT_EQ(b->LabelOf(15), "15-38");
  EXPECT_EQ(b->LabelOf(38), "15-38");
  EXPECT_EQ(b->LabelOf(39), "39-46");
  EXPECT_EQ(b->LabelOf(46), "39-46");
  EXPECT_EQ(b->LabelOf(47), "47-54");
  EXPECT_EQ(b->LabelOf(55), "55-65");
  EXPECT_EQ(b->LabelOf(65), "55-65");
  EXPECT_EQ(b->LabelOf(14), "<15");
  EXPECT_EQ(b->LabelOf(66), ">=66");
  EXPECT_EQ(b->Labels(),
            (std::vector<std::string>{"15-38", "39-46", "47-54", "55-65"}));
}

TEST(BinnerTest, FromEdgesValidation) {
  EXPECT_FALSE(Binner::FromEdges({1}).ok());
  EXPECT_FALSE(Binner::FromEdges({1, 1}).ok());
  EXPECT_FALSE(Binner::FromEdges({2, 1}).ok());
}

TEST(BinnerTest, EqualWidthCoversRange) {
  auto b = Binner::EqualWidth(0, 99, 4);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b->NumBins(), 4u);
  EXPECT_EQ(b->LabelOf(0), "0-24");
  EXPECT_EQ(b->LabelOf(25), "25-49");
  EXPECT_EQ(b->LabelOf(99), "75-99");
}

TEST(BinnerTest, EqualWidthValidation) {
  EXPECT_FALSE(Binner::EqualWidth(0, 10, 0).ok());
  EXPECT_FALSE(Binner::EqualWidth(10, 10, 2).ok());
}

TEST(BinnerTest, EqualFrequencyBalances) {
  std::vector<int64_t> values;
  for (int64_t i = 0; i < 100; ++i) values.push_back(i);
  auto b = Binner::EqualFrequency(values, 4);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b->NumBins(), 4u);
  // Quartile cuts at 25/50/75.
  EXPECT_EQ(b->LabelOf(0), "0-24");
  EXPECT_EQ(b->LabelOf(30), "25-49");
  EXPECT_EQ(b->LabelOf(99), "75-99");
}

TEST(BinnerTest, EqualFrequencySkewedDuplicates) {
  // Heavy duplication collapses cuts; binner must stay valid.
  std::vector<int64_t> values(50, 7);
  values.push_back(9);
  auto b = Binner::EqualFrequency(values, 4);
  ASSERT_TRUE(b.ok());
  EXPECT_GE(b->NumBins(), 1u);
  EXPECT_EQ(b->LabelOf(7), b->LabelOf(7));
}

TEST(BinnerTest, DiscretizeColumnAppendsAttribute) {
  Schema schema({
      {"id", ColumnType::kInt64, AttributeKind::kId},
      {"age", ColumnType::kInt64, AttributeKind::kIgnore},
      {"unitID", ColumnType::kInt64, AttributeKind::kUnit},
  });
  Table t(schema);
  ASSERT_TRUE(t.AppendRow({int64_t{1}, int64_t{22}, int64_t{0}}).ok());
  ASSERT_TRUE(t.AppendRow({int64_t{2}, int64_t{45}, int64_t{0}}).ok());
  ASSERT_TRUE(t.AppendRow({int64_t{3}, int64_t{60}, int64_t{1}}).ok());

  auto binner = Binner::FromEdges({15, 39, 47, 55, 66});
  ASSERT_TRUE(binner.ok());
  ASSERT_TRUE(Binner::DiscretizeColumn(
                  &t, "age",
                  {"age_bin", ColumnType::kCategorical,
                   AttributeKind::kSegregation},
                  binner.value())
                  .ok());
  int col = t.schema().IndexOf("age_bin");
  ASSERT_GE(col, 0);
  EXPECT_EQ(t.CategoricalValue(0, static_cast<size_t>(col)), "15-38");
  EXPECT_EQ(t.CategoricalValue(1, static_cast<size_t>(col)), "39-46");
  EXPECT_EQ(t.CategoricalValue(2, static_cast<size_t>(col)), "55-65");
}

TEST(BinnerTest, DiscretizeMissingOrWrongTypeColumn) {
  Table t(Schema({{"name", ColumnType::kCategorical, AttributeKind::kId}}));
  auto binner = Binner::FromEdges({0, 10});
  ASSERT_TRUE(binner.ok());
  AttributeSpec spec{"b", ColumnType::kCategorical, AttributeKind::kContext};
  EXPECT_EQ(Binner::DiscretizeColumn(&t, "zzz", spec, binner.value()).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(Binner::DiscretizeColumn(&t, "name", spec, binner.value()).code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace relational
}  // namespace scube
