#include "relational/transactions.h"

#include <gtest/gtest.h>

namespace scube {
namespace relational {
namespace {

Table FinalTableFixture() {
  // Mirrors the finalTable of the paper's Fig. 3: SA = gender, age bin,
  // birthplace; CA = residence, sector (multi-valued); unitID.
  Schema schema({
      {"gender", ColumnType::kCategorical, AttributeKind::kSegregation},
      {"age", ColumnType::kCategorical, AttributeKind::kSegregation},
      {"birthplace", ColumnType::kCategorical, AttributeKind::kSegregation},
      {"residence", ColumnType::kCategorical, AttributeKind::kContext},
      {"sector", ColumnType::kCategoricalSet, AttributeKind::kContext},
      {"unitID", ColumnType::kInt64, AttributeKind::kUnit},
  });
  Table t(schema);
  EXPECT_TRUE(t.AppendRowFromStrings(
                   {"M", "15-38", "foreign", "north", "{education}", "1"})
                  .ok());
  EXPECT_TRUE(t.AppendRowFromStrings({"F", "39-46", "south", "south",
                                      "{electricity, transports}", "2"})
                  .ok());
  EXPECT_TRUE(t.AppendRowFromStrings(
                   {"M", "55-65", "north", "south", "{agriculture}", "1"})
                  .ok());
  return t;
}

TEST(EncodeTest, ProducesOneTransactionPerRow) {
  auto enc = EncodeForAnalysis(FinalTableFixture());
  ASSERT_TRUE(enc.ok()) << enc.status();
  EXPECT_EQ(enc->db.NumTransactions(), 3u);
  // Row 1 has 4 single-valued mined attrs + 2 sector values = 6 items.
  EXPECT_EQ(enc->db.Transaction(1).size(), 6u);
  EXPECT_EQ(enc->db.Transaction(0).size(), 5u);
}

TEST(EncodeTest, CatalogLabelsAndKinds) {
  auto enc = EncodeForAnalysis(FinalTableFixture());
  ASSERT_TRUE(enc.ok());
  const ItemCatalog& cat = enc->catalog;
  fpm::ItemId female = cat.Find(0, "F");
  ASSERT_NE(female, fpm::kInvalidItem);
  EXPECT_EQ(cat.Label(female), "gender=F");
  EXPECT_EQ(cat.info(female).kind, AttributeKind::kSegregation);

  fpm::ItemId transports = cat.Find(4, "transports");
  ASSERT_NE(transports, fpm::kInvalidItem);
  EXPECT_EQ(cat.info(transports).kind, AttributeKind::kContext);
  EXPECT_EQ(cat.Label(transports), "sector=transports");

  EXPECT_EQ(cat.Find(0, "X"), fpm::kInvalidItem);
}

TEST(EncodeTest, SplitSeparatesSaFromCa) {
  auto enc = EncodeForAnalysis(FinalTableFixture());
  ASSERT_TRUE(enc.ok());
  const ItemCatalog& cat = enc->catalog;
  fpm::ItemId female = cat.Find(0, "F");
  fpm::ItemId north = cat.Find(3, "north");
  fpm::ItemId edu = cat.Find(4, "education");
  ASSERT_NE(north, fpm::kInvalidItem);
  fpm::Itemset mixed({female, north, edu});
  fpm::Itemset sa, ca;
  cat.Split(mixed, &sa, &ca);
  EXPECT_EQ(sa, fpm::Itemset({female}));
  EXPECT_EQ(ca, fpm::Itemset({north, edu}));
  EXPECT_TRUE(cat.AllOfKind(sa, AttributeKind::kSegregation));
  EXPECT_TRUE(cat.AllOfKind(ca, AttributeKind::kContext));
  EXPECT_FALSE(cat.AllOfKind(mixed, AttributeKind::kContext));
}

TEST(EncodeTest, LabelSetRendering) {
  auto enc = EncodeForAnalysis(FinalTableFixture());
  ASSERT_TRUE(enc.ok());
  const ItemCatalog& cat = enc->catalog;
  fpm::ItemId female = cat.Find(0, "F");
  fpm::ItemId north = cat.Find(3, "north");
  EXPECT_EQ(cat.LabelSet(fpm::Itemset({female, north})),
            "gender=F & residence=north");
  EXPECT_EQ(cat.LabelSet(fpm::Itemset()), "*");
}

TEST(EncodeTest, UnitsAreDenseWithLabels) {
  auto enc = EncodeForAnalysis(FinalTableFixture());
  ASSERT_TRUE(enc.ok());
  EXPECT_EQ(enc->row_unit, (std::vector<uint32_t>{0, 1, 0}));
  EXPECT_EQ(enc->unit_labels, (std::vector<std::string>{"1", "2"}));
}

TEST(EncodeTest, CategoricalUnitColumn) {
  Schema schema({
      {"gender", ColumnType::kCategorical, AttributeKind::kSegregation},
      {"sector", ColumnType::kCategorical, AttributeKind::kUnit},
  });
  Table t(schema);
  ASSERT_TRUE(t.AppendRowFromStrings({"F", "education"}).ok());
  ASSERT_TRUE(t.AppendRowFromStrings({"M", "energy"}).ok());
  ASSERT_TRUE(t.AppendRowFromStrings({"F", "education"}).ok());
  auto enc = EncodeForAnalysis(t);
  ASSERT_TRUE(enc.ok()) << enc.status();
  EXPECT_EQ(enc->row_unit, (std::vector<uint32_t>{0, 1, 0}));
  EXPECT_EQ(enc->unit_labels,
            (std::vector<std::string>{"education", "energy"}));
}

TEST(EncodeTest, NumericSaRequiresBinning) {
  Schema schema({
      {"age", ColumnType::kInt64, AttributeKind::kSegregation},
      {"unitID", ColumnType::kInt64, AttributeKind::kUnit},
  });
  Table t(schema);
  ASSERT_TRUE(t.AppendRow({int64_t{30}, int64_t{1}}).ok());
  auto enc = EncodeForAnalysis(t);
  EXPECT_EQ(enc.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(enc.status().message().find("bin"), std::string::npos);
}

TEST(EncodeTest, InvalidSchemaRejected) {
  Schema schema({{"x", ColumnType::kCategorical, AttributeKind::kContext}});
  Table t(schema);
  auto enc = EncodeForAnalysis(t);
  EXPECT_EQ(enc.status().code(), StatusCode::kFailedPrecondition);
}

TEST(EncodeTest, NumAttributesOfKind) {
  auto enc = EncodeForAnalysis(FinalTableFixture());
  ASSERT_TRUE(enc.ok());
  EXPECT_EQ(enc->catalog.NumAttributesOfKind(AttributeKind::kSegregation), 3u);
  EXPECT_EQ(enc->catalog.NumAttributesOfKind(AttributeKind::kContext), 2u);
}

TEST(EncodeTest, SharedValuesAcrossAttributesGetDistinctItems) {
  Schema schema({
      {"birthplace", ColumnType::kCategorical, AttributeKind::kSegregation},
      {"residence", ColumnType::kCategorical, AttributeKind::kContext},
      {"unitID", ColumnType::kInt64, AttributeKind::kUnit},
  });
  Table t(schema);
  ASSERT_TRUE(t.AppendRowFromStrings({"north", "north", "0"}).ok());
  auto enc = EncodeForAnalysis(t);
  ASSERT_TRUE(enc.ok());
  // "north" as birthplace and "north" as residence are different items.
  EXPECT_EQ(enc->catalog.size(), 2u);
  EXPECT_NE(enc->catalog.Find(0, "north"), enc->catalog.Find(1, "north"));
}

}  // namespace
}  // namespace relational
}  // namespace scube
