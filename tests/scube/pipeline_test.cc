// End-to-end pipeline tests: the three demo scenarios (§4) on a small
// synthetic registry, plus temporal snapshots.

#include "scube/pipeline.h"

#include <gtest/gtest.h>

#include "cube/explorer.h"
#include "datagen/scenarios.h"

namespace scube {
namespace pipeline {
namespace {

datagen::GeneratedScenario SmallScenario() {
  datagen::ScenarioConfig config = datagen::ItalianConfig(0.001, 5);
  auto s = datagen::GenerateScenario(config);
  EXPECT_TRUE(s.ok()) << s.status();
  return std::move(s).value();
}

PipelineConfig BaseConfig() {
  PipelineConfig config;
  config.cube.min_support = 5;
  config.cube.mode = fpm::MineMode::kAll;
  config.cube.max_sa_items = 2;
  config.cube.max_ca_items = 1;
  return config;
}

TEST(PipelineTest, Scenario1TabularSectorUnits) {
  auto scenario = SmallScenario();
  PipelineConfig config = BaseConfig();
  config.unit_source = UnitSource::kGroupAttribute;
  config.group_unit_attribute = "sector";
  auto result = RunPipeline(scenario.inputs, config);
  ASSERT_TRUE(result.ok()) << result.status();
  // Units = the 20 sectors.
  EXPECT_EQ(result->clustering.num_clusters, 20u);
  EXPECT_GT(result->cube.NumCells(), 10u);
  EXPECT_GT(result->cube.NumDefinedCells(), 0u);
  EXPECT_GT(result->final_table.NumRows(), 0u);
  // No projection ran.
  EXPECT_EQ(result->projected_edges, 0u);

  // The female cell must exist and carry sensible indexes.
  const auto& cat = result->cube.catalog();
  int gender_col = result->final_table.schema().IndexOf("gender");
  ASSERT_GE(gender_col, 0);
  fpm::ItemId female =
      cat.Find(static_cast<size_t>(gender_col), "F");
  ASSERT_NE(female, fpm::kInvalidItem);
  const cube::CubeCell* cell =
      result->cube.Find(fpm::Itemset({female}), fpm::Itemset());
  ASSERT_NE(cell, nullptr);
  ASSERT_TRUE(cell->indexes.defined);
  double d = cell->Value(indexes::IndexKind::kDissimilarity);
  // Planted sector bias must yield visible segregation.
  EXPECT_GT(d, 0.05);
  EXPECT_LT(d, 0.9);
}

TEST(PipelineTest, Scenario2DirectorCommunities) {
  auto scenario = SmallScenario();
  PipelineConfig config = BaseConfig();
  config.unit_source = UnitSource::kIndividualClusters;
  config.method = ClusterMethod::kConnectedComponents;
  auto result = RunPipeline(scenario.inputs, config);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GT(result->projected_edges, 0u);
  EXPECT_GT(result->clustering.num_clusters, 1u);
  // One row per director.
  EXPECT_EQ(result->final_table.NumRows(),
            scenario.inputs.individuals.NumRows());
  EXPECT_GT(result->cube.NumDefinedCells(), 0u);
}

TEST(PipelineTest, Scenario3CompanyCommunities) {
  auto scenario = SmallScenario();
  PipelineConfig config = BaseConfig();
  config.unit_source = UnitSource::kGroupClusters;
  config.method = ClusterMethod::kThreshold;
  config.threshold.min_weight = 2.0;
  auto result = RunPipeline(scenario.inputs, config);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GT(result->projected_edges, 0u);
  EXPECT_GT(result->clustering.num_clusters, 1u);
  EXPECT_GT(result->cube.NumDefinedCells(), 0u);
  // Stage timings recorded for all four stages.
  EXPECT_EQ(result->timings.stages().size(), 4u);
}

TEST(PipelineTest, AllClusterMethodsRun) {
  auto scenario = SmallScenario();
  for (ClusterMethod method :
       {ClusterMethod::kConnectedComponents, ClusterMethod::kThreshold,
        ClusterMethod::kStoc, ClusterMethod::kLouvain}) {
    PipelineConfig config = BaseConfig();
    config.unit_source = UnitSource::kGroupClusters;
    config.method = method;
    config.stoc.tau = 0.2;
    auto result = RunPipeline(scenario.inputs, config);
    ASSERT_TRUE(result.ok())
        << ClusterMethodToString(method) << ": " << result.status();
    EXPECT_GT(result->clustering.num_clusters, 0u)
        << ClusterMethodToString(method);
  }
}

TEST(PipelineTest, UnknownGroupAttributeRejected) {
  auto scenario = SmallScenario();
  PipelineConfig config = BaseConfig();
  config.unit_source = UnitSource::kGroupAttribute;
  config.group_unit_attribute = "florb";
  EXPECT_EQ(RunPipeline(scenario.inputs, config).status().code(),
            StatusCode::kNotFound);
}

TEST(PipelineTest, TemporalSnapshotsDiffer) {
  datagen::ScenarioConfig ee = datagen::EstonianConfig(0.005, 23);
  auto scenario = datagen::GenerateScenario(ee);
  ASSERT_TRUE(scenario.ok());

  PipelineConfig config = BaseConfig();
  config.unit_source = UnitSource::kGroupAttribute;
  config.group_unit_attribute = "sector";
  config.cube.min_support = 2;

  config.date = 1997;
  auto early = RunPipeline(scenario->inputs, config);
  ASSERT_TRUE(early.ok()) << early.status();
  config.date = 2012;
  auto late = RunPipeline(scenario->inputs, config);
  ASSERT_TRUE(late.ok()) << late.status();

  // Different snapshots select different seat sets.
  EXPECT_NE(early->final_table.NumRows(), late->final_table.NumRows());
}

TEST(PipelineTest, StocUsesGroupAttributes) {
  auto scenario = SmallScenario();
  graph::NodeAttributes attrs = BuildNodeAttributes(scenario.inputs.groups);
  EXPECT_EQ(attrs.NumNodes(), scenario.inputs.groups.NumRows());
  // Companies in the same sector+province share both tokens.
  bool found_similar = false;
  for (uint32_t a = 0; a < 50 && !found_similar; ++a) {
    for (uint32_t b = a + 1; b < 50; ++b) {
      if (attrs.Jaccard(a, b) == 1.0) {
        found_similar = true;
        break;
      }
    }
  }
  EXPECT_TRUE(found_similar);
}

TEST(PipelineTest, EnumNames) {
  EXPECT_STREQ(UnitSourceToString(UnitSource::kGroupAttribute),
               "group-attribute");
  EXPECT_STREQ(UnitSourceToString(UnitSource::kGroupClusters),
               "group-clusters");
  EXPECT_STREQ(ClusterMethodToString(ClusterMethod::kStoc), "stoc");
  EXPECT_STREQ(ClusterMethodToString(ClusterMethod::kLouvain), "louvain");
}

}  // namespace
}  // namespace pipeline
}  // namespace scube
