#include "scube/config.h"

#include <gtest/gtest.h>

namespace scube {
namespace pipeline {
namespace {

TEST(ConfigTest, EmptyTextYieldsDefaults) {
  auto config = ParsePipelineConfig("");
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(config->unit_source, UnitSource::kGroupClusters);
  EXPECT_EQ(config->method, ClusterMethod::kThreshold);
  EXPECT_EQ(config->cube.min_support, 1u);
}

TEST(ConfigTest, ParsesAllKeys) {
  auto config = ParsePipelineConfig(R"(
# SCube analysis configuration
unit_source = group-attribute
group_unit_attribute = hq_province
date = 2010
method = stoc
threshold.min_weight = 3.5
threshold.giant_only = false
stoc.tau = 0.4
stoc.alpha = 0.7
stoc.max_radius = 3
projection.hub_cap = 25
projection.min_weight = 2
cube.min_support = 42
cube.min_support_fraction = 0.01
cube.max_sa_items = 3
cube.max_ca_items = 2
cube.miner = eclat
cube.mode = all
cube.atkinson_b = 0.25
cube.num_threads = 4
)");
  ASSERT_TRUE(config.ok()) << config.status();
  EXPECT_EQ(config->unit_source, UnitSource::kGroupAttribute);
  EXPECT_EQ(config->group_unit_attribute, "hq_province");
  EXPECT_EQ(config->date, 2010);
  EXPECT_EQ(config->method, ClusterMethod::kStoc);
  EXPECT_DOUBLE_EQ(config->threshold.min_weight, 3.5);
  EXPECT_FALSE(config->threshold.giant_only);
  EXPECT_DOUBLE_EQ(config->stoc.tau, 0.4);
  EXPECT_DOUBLE_EQ(config->stoc.alpha, 0.7);
  EXPECT_EQ(config->stoc.max_radius, 3u);
  EXPECT_EQ(config->projection.hub_cap, 25u);
  EXPECT_DOUBLE_EQ(config->projection.min_weight, 2.0);
  EXPECT_EQ(config->cube.min_support, 42u);
  EXPECT_DOUBLE_EQ(config->cube.min_support_fraction, 0.01);
  EXPECT_EQ(config->cube.max_sa_items, 3u);
  EXPECT_EQ(config->cube.max_ca_items, 2u);
  EXPECT_EQ(config->cube.miner, "eclat");
  EXPECT_EQ(config->cube.mode, fpm::MineMode::kAll);
  EXPECT_DOUBLE_EQ(config->cube.index_params.atkinson_b, 0.25);
  EXPECT_EQ(config->cube.num_threads, 4u);
}

TEST(ConfigTest, RejectsUnknownKey) {
  auto config = ParsePipelineConfig("frobnicate = 7\n");
  EXPECT_EQ(config.status().code(), StatusCode::kNotFound);
}

TEST(ConfigTest, RejectsMalformedLine) {
  auto config = ParsePipelineConfig("unit_source group-clusters\n");
  EXPECT_EQ(config.status().code(), StatusCode::kParseError);
}

TEST(ConfigTest, RejectsBadValues) {
  EXPECT_FALSE(ParsePipelineConfig("unit_source = galaxy\n").ok());
  EXPECT_FALSE(ParsePipelineConfig("method = k-means\n").ok());
  EXPECT_FALSE(ParsePipelineConfig("cube.mode = some\n").ok());
  EXPECT_FALSE(ParsePipelineConfig("cube.min_support = 0\n").ok());
  EXPECT_FALSE(ParsePipelineConfig("cube.min_support = banana\n").ok());
  EXPECT_FALSE(ParsePipelineConfig("threshold.giant_only = maybe\n").ok());
  EXPECT_FALSE(ParsePipelineConfig("stoc.max_radius = -1\n").ok());
  EXPECT_FALSE(ParsePipelineConfig("cube.num_threads = -2\n").ok());
  EXPECT_FALSE(ParsePipelineConfig("cube.num_threads = many\n").ok());
}

TEST(ConfigTest, ErrorsCarryLineNumbers) {
  auto config = ParsePipelineConfig("date = 2000\nbad_key = 1\n");
  ASSERT_FALSE(config.ok());
  EXPECT_NE(config.status().message().find("line 2"), std::string::npos);
}

TEST(ConfigTest, RoundTripThroughToString) {
  PipelineConfig original;
  original.unit_source = UnitSource::kIndividualClusters;
  original.method = ClusterMethod::kLouvain;
  original.date = 1999;
  original.cube.min_support = 77;
  original.cube.mode = fpm::MineMode::kMaximal;
  original.cube.num_threads = 8;
  original.stoc.tau = 0.35;

  auto parsed = ParsePipelineConfig(PipelineConfigToString(original));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->unit_source, original.unit_source);
  EXPECT_EQ(parsed->method, original.method);
  EXPECT_EQ(parsed->date, original.date);
  EXPECT_EQ(parsed->cube.min_support, original.cube.min_support);
  EXPECT_EQ(parsed->cube.mode, original.cube.mode);
  EXPECT_EQ(parsed->cube.num_threads, original.cube.num_threads);
  EXPECT_DOUBLE_EQ(parsed->stoc.tau, original.stoc.tau);
}

TEST(ConfigTest, CommentsAndBlanksIgnored) {
  auto config = ParsePipelineConfig(
      "# comment\n\n   \n# another\ndate = 5\n");
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(config->date, 5);
}

}  // namespace
}  // namespace pipeline
}  // namespace scube
