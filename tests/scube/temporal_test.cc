#include "scube/temporal.h"

#include <gtest/gtest.h>

#include "datagen/scenarios.h"

namespace scube {
namespace pipeline {
namespace {

TEST(TemporalTest, TracksFemaleCellAcrossYears) {
  auto scenario =
      datagen::GenerateScenario(datagen::EstonianConfig(0.003, 31));
  ASSERT_TRUE(scenario.ok());

  PipelineConfig config;
  config.unit_source = UnitSource::kGroupAttribute;
  config.group_unit_attribute = "sector";
  config.cube.min_support = 2;
  config.cube.mode = fpm::MineMode::kAll;
  config.cube.max_sa_items = 1;
  config.cube.max_ca_items = 0;

  std::vector<graph::Date> dates{2000, 2005, 2010};
  TrackedCell female;
  female.sa = {{"gender", "F"}};
  auto result = RunTemporalAnalysis(scenario->inputs, config, dates,
                                    {female});
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->dates, dates);
  ASSERT_EQ(result->series.size(), 1u);
  ASSERT_EQ(result->series[0].size(), 3u);
  int defined = 0;
  for (const TemporalPoint& p : result->series[0]) {
    if (p.defined) {
      ++defined;
      EXPECT_GT(p.context_size, 0u);
      EXPECT_GT(p.minority_size, 0u);
      EXPECT_GT(p.MinorityShare(), 0.0);
      EXPECT_LT(p.MinorityShare(), 1.0);
      double iso = p.indexes[indexes::IndexKind::kIsolation];
      double inter = p.indexes[indexes::IndexKind::kInteraction];
      EXPECT_NEAR(iso + inter, 1.0, 1e-9);
    }
  }
  EXPECT_GE(defined, 2);
}

TEST(TemporalTest, MultipleTrackedCells) {
  auto scenario =
      datagen::GenerateScenario(datagen::EstonianConfig(0.003, 37));
  ASSERT_TRUE(scenario.ok());
  PipelineConfig config;
  config.unit_source = UnitSource::kGroupAttribute;
  config.group_unit_attribute = "sector";
  config.cube.min_support = 2;
  config.cube.mode = fpm::MineMode::kAll;
  config.cube.max_sa_items = 2;
  config.cube.max_ca_items = 0;

  TrackedCell female{{{"gender", "F"}}, {}};
  TrackedCell male{{{"gender", "M"}}, {}};
  TrackedCell young_female{{{"gender", "F"}, {"age_bin", "18-38"}}, {}};
  auto result = RunTemporalAnalysis(scenario->inputs, config, {2005, 2010},
                                    {female, male, young_female});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->series.size(), 3u);
  // F and M shares are complementary where both defined.
  for (size_t j = 0; j < 2; ++j) {
    const auto& f = result->series[0][j];
    const auto& m = result->series[1][j];
    if (f.defined && m.defined) {
      EXPECT_EQ(f.context_size, m.context_size);
      EXPECT_EQ(f.minority_size + m.minority_size, f.context_size);
    }
  }
}

TEST(TemporalTest, UnknownAttributeYieldsUndefinedPoints) {
  auto scenario =
      datagen::GenerateScenario(datagen::EstonianConfig(0.002, 41));
  ASSERT_TRUE(scenario.ok());
  PipelineConfig config;
  config.unit_source = UnitSource::kGroupAttribute;
  config.group_unit_attribute = "sector";
  config.cube.min_support = 2;

  TrackedCell bogus{{{"species", "android"}}, {}};
  auto result = RunTemporalAnalysis(scenario->inputs, config, {2005},
                                    {bogus});
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->series[0][0].defined);
}

TEST(TemporalTest, ValidatesArguments) {
  auto scenario =
      datagen::GenerateScenario(datagen::EstonianConfig(0.002, 43));
  ASSERT_TRUE(scenario.ok());
  PipelineConfig config;
  TrackedCell female{{{"gender", "F"}}, {}};
  EXPECT_FALSE(
      RunTemporalAnalysis(scenario->inputs, config, {}, {female}).ok());
  EXPECT_FALSE(
      RunTemporalAnalysis(scenario->inputs, config, {2000}, {}).ok());
}

}  // namespace
}  // namespace pipeline
}  // namespace scube
