// Full-process integration test: the paper's Fig. 3 flow from raw CSV text
// (individual.csv, group.csv, individualGroup.csv) through loading,
// projection, clustering, the join, cube construction, exploration, and
// both export formats — asserting hand-computable values at the end.

#include <gtest/gtest.h>

#include <cstdio>

#include "cube/explorer.h"
#include "etl/loaders.h"
#include "scube/config.h"
#include "scube/pipeline.h"
#include "viz/report.h"
#include "viz/xlsx_writer.h"

namespace scube {
namespace {

using relational::AttributeKind;
using relational::ColumnType;
using relational::Schema;

// Two clearly-separated company communities:
//   community A: companies 100,101 (linked by shared directors 1,2) — all
//     male boards, sector electricity;
//   community B: companies 102,103 (linked by directors 5,6) — all female
//     boards, sector education.
// Company 104 is isolated (its own unit, mixed board).
constexpr char kIndividualsCsv[] =
    "id,gender,age_bin\n"
    "1,M,18-38\n"
    "2,M,39-46\n"
    "3,M,18-38\n"
    "4,M,39-46\n"
    "5,F,18-38\n"
    "6,F,39-46\n"
    "7,F,18-38\n"
    "8,F,39-46\n"
    "9,M,18-38\n"
    "10,F,18-38\n";

constexpr char kGroupsCsv[] =
    "id,sector\n"
    "100,electricity\n"
    "101,transports\n"
    "102,education\n"
    "103,health\n"
    "104,trade\n";

constexpr char kMembershipCsv[] =
    "individualID,groupID\n"
    "1,100\n1,101\n"   // director 1 links 100-101
    "2,100\n2,101\n"   // director 2 links them too (weight 2)
    "3,100\n"
    "4,101\n"
    "5,102\n5,103\n"   // director 5 links 102-103
    "6,102\n6,103\n"
    "7,102\n"
    "8,103\n"
    "9,104\n"
    "10,104\n";

etl::ScubeInputs LoadFixture() {
  CsvReader reader;
  auto ind = reader.ParseString(kIndividualsCsv);
  auto grp = reader.ParseString(kGroupsCsv);
  auto mem = reader.ParseString(kMembershipCsv);
  EXPECT_TRUE(ind.ok());
  EXPECT_TRUE(grp.ok());
  EXPECT_TRUE(mem.ok());
  Schema ind_schema({
      {"id", ColumnType::kInt64, AttributeKind::kId},
      {"gender", ColumnType::kCategorical, AttributeKind::kSegregation},
      {"age_bin", ColumnType::kCategorical, AttributeKind::kSegregation},
  });
  Schema grp_schema({
      {"id", ColumnType::kInt64, AttributeKind::kId},
      {"sector", ColumnType::kCategorical, AttributeKind::kContext},
  });
  auto inputs = etl::LoadInputsFromCsv(ind.value(), ind_schema, grp.value(),
                                       grp_schema, mem.value());
  EXPECT_TRUE(inputs.ok()) << inputs.status();
  return std::move(inputs).value();
}

TEST(IntegrationTest, CsvToDiscoveryEndToEnd) {
  etl::ScubeInputs inputs = LoadFixture();

  // Config supplied through the text format, as the wizard would persist it.
  auto config = pipeline::ParsePipelineConfig(
      "unit_source = group-clusters\n"
      "method = threshold-cc\n"
      "threshold.min_weight = 2\n"
      "cube.min_support = 1\n"
      "cube.mode = all\n"
      "cube.max_sa_items = 2\n"
      "cube.max_ca_items = 1\n");
  ASSERT_TRUE(config.ok()) << config.status();

  auto result = pipeline::RunPipeline(inputs, config.value());
  ASSERT_TRUE(result.ok()) << result.status();

  // Projection: 100-101 (weight 2), 102-103 (weight 2); 104 isolated.
  EXPECT_EQ(result->projected_edges, 2u);
  EXPECT_EQ(result->isolated_nodes, 1u);
  // Clustering: {100,101}, {102,103}, {104} -> 3 units.
  EXPECT_EQ(result->clustering.num_clusters, 3u);

  // finalTable: one row per (director, unit) = 10 rows.
  EXPECT_EQ(result->final_table.NumRows(), 10u);

  // The global female cell: units hold (4M,0F), (0M,4F), (1M,1F):
  // T=10, M=5, per-unit m=(0,4,1), t=(4,4,2).
  // D = 1/2(|0-4/5| + |4/5-0| + |1/5-1/5|) = 0.8.
  const auto& cube = result->cube;
  int gender_col = result->final_table.schema().IndexOf("gender");
  fpm::ItemId female =
      cube.catalog().Find(static_cast<size_t>(gender_col), "F");
  ASSERT_NE(female, fpm::kInvalidItem);
  const cube::CubeCell* cell = cube.Find(fpm::Itemset({female}),
                                         fpm::Itemset());
  ASSERT_NE(cell, nullptr);
  EXPECT_EQ(cell->context_size, 10u);
  EXPECT_EQ(cell->minority_size, 5u);
  EXPECT_EQ(cell->num_units, 3u);
  ASSERT_TRUE(cell->indexes.defined);
  EXPECT_NEAR(cell->Value(indexes::IndexKind::kDissimilarity), 0.8, 1e-9);
  // Isolation: (0)(0) + (4/5)(1) + (1/5)(1/2) = 0.9.
  EXPECT_NEAR(cell->Value(indexes::IndexKind::kIsolation), 0.9, 1e-9);

  // Context sector=education selects the all-female community (and the
  // education companies only): every member is female -> degenerate cell.
  int sector_col = result->final_table.schema().IndexOf("sector");
  ASSERT_GE(sector_col, 0);
  fpm::ItemId education =
      cube.catalog().Find(static_cast<size_t>(sector_col), "education");
  ASSERT_NE(education, fpm::kInvalidItem);
  const cube::CubeCell* edu_cell =
      cube.Find(fpm::Itemset({female}), fpm::Itemset({education}));
  ASSERT_NE(edu_cell, nullptr);
  EXPECT_EQ(edu_cell->context_size, edu_cell->minority_size);
  EXPECT_FALSE(edu_cell->indexes.defined);

  // Seal and explore: the female cell ranks at the top globally.
  cube::CubeView view = cube.Seal();
  cube::ExplorerOptions explore;
  explore.min_context_size = 5;
  explore.min_minority_size = 2;
  auto top = cube::TopSegregatedContexts(
      view, indexes::IndexKind::kDissimilarity, 3, explore);
  ASSERT_FALSE(top.empty());
  EXPECT_NEAR(top[0].value, 1.0, 0.3);

  // Exports parse/serialise without error.
  std::string csv = view.ToCsv();
  EXPECT_NE(csv.find("gender=F"), std::string::npos);
  std::string path = ::testing::TempDir() + "/scube_integration.xlsx";
  ASSERT_TRUE(viz::WriteCubeXlsx(view, path).ok());
  auto bytes = ReadFileToString(path);
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(bytes->substr(0, 2), "PK");
  std::remove(path.c_str());

  // A pivot renders with both defined and undefined cells.
  viz::PivotSpec pivot;
  pivot.sa_attribute = "gender";
  pivot.ca_attribute = "sector";
  auto grid = viz::RenderPivotTable(view, pivot);
  ASSERT_TRUE(grid.ok());
  EXPECT_NE(grid->find("-"), std::string::npos);
}

TEST(IntegrationTest, TabularShortcutMatchesPipelineSemantics) {
  // If the data already carries units (sector as unitID), the pre-processing
  // steps are skipped (paper §3): kGroupAttribute must produce the same
  // cube cells as manually encoding sector as the unit.
  etl::ScubeInputs inputs = LoadFixture();
  pipeline::PipelineConfig config;
  config.unit_source = pipeline::UnitSource::kGroupAttribute;
  config.group_unit_attribute = "sector";
  config.cube.min_support = 1;
  config.cube.mode = fpm::MineMode::kAll;
  config.cube.max_sa_items = 1;
  config.cube.max_ca_items = 0;
  auto result = pipeline::RunPipeline(inputs, config);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->clustering.num_clusters, 5u);  // five sectors

  // 14 (director, sector-unit) pairs: directors 1,2,5,6 sit in two sectors
  // each (10 directors + 4 extra pairs).
  EXPECT_EQ(result->final_table.NumRows(), 14u);

  int gender_col = result->final_table.schema().IndexOf("gender");
  fpm::ItemId female = result->cube.catalog().Find(
      static_cast<size_t>(gender_col), "F");
  const cube::CubeCell* cell =
      result->cube.Find(fpm::Itemset({female}), fpm::Itemset());
  ASSERT_NE(cell, nullptr);
  // Per-sector counts: elec(3M,0F) trans(3M,0F) edu(0M,3F) health(0M,3F)
  // trade(1M,1F): t=(3,3,3,3,2), m=(0,0,3,3,1), T=14, M=7, majority=7.
  // D = 1/2(2*|0-3/7| + 2*|3/7-0| + |1/7-1/7|) = 6/7.
  EXPECT_EQ(cell->context_size, 14u);
  EXPECT_EQ(cell->minority_size, 7u);
  ASSERT_TRUE(cell->indexes.defined);
  EXPECT_NEAR(cell->Value(indexes::IndexKind::kDissimilarity), 6.0 / 7.0,
              1e-9);
}

}  // namespace
}  // namespace scube
