// Property sweep: on randomized cubes — including pure-context and
// undefined cells — the sealed CubeView's indexes (point lookups, slices,
// posting-list dice, parent/child adjacency, ranked top-k) and the
// explorer's analyses over the view must agree exactly with naive
// recomputation on the mutable SegregationCube (the O(all cells) reference
// accessors).

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/random.h"
#include "cube/cube.h"
#include "cube/cube_view.h"
#include "cube/explorer.h"

namespace scube {
namespace cube {
namespace {

constexpr size_t kNumSaItems = 4;   // ids 0..3 on the SA axis
constexpr size_t kNumCaItems = 3;   // ids 4..6 on the CA axis

struct SweepParams {
  uint64_t seed;
  size_t target_cells;
};

fpm::Itemset RandomSubset(Rng* rng, fpm::ItemId first, size_t universe,
                          size_t max_size) {
  std::vector<fpm::ItemId> items;
  size_t size = rng->NextBounded(max_size + 1);
  for (size_t i = 0; i < size; ++i) {
    items.push_back(first + static_cast<fpm::ItemId>(
                                rng->NextBounded(universe)));
  }
  return fpm::Itemset(std::move(items));  // dedupes
}

SegregationCube RandomCube(const SweepParams& p, Rng* rng) {
  relational::ItemCatalog catalog;
  using relational::AttributeKind;
  for (size_t i = 0; i < kNumSaItems; ++i) {
    catalog.GetOrAdd(i, "sa" + std::to_string(i), "v",
                     AttributeKind::kSegregation);
  }
  for (size_t i = 0; i < kNumCaItems; ++i) {
    catalog.GetOrAdd(kNumSaItems + i, "ca" + std::to_string(i), "v",
                     AttributeKind::kContext);
  }
  SegregationCube cube(std::move(catalog), {"u0", "u1", "u2"});
  for (size_t i = 0; i < p.target_cells; ++i) {
    CubeCell cell;
    // Pure-context (empty SA) and root coordinates arise naturally.
    cell.coords = CellCoordinates{RandomSubset(rng, 0, kNumSaItems, 3),
                                  RandomSubset(rng, kNumSaItems,
                                               kNumCaItems, 2)};
    cell.context_size = 1 + rng->NextBounded(200);
    cell.minority_size = rng->NextBounded(cell.context_size + 1);
    cell.num_units = 1 + static_cast<uint32_t>(rng->NextBounded(3));
    // ~20% undefined cells (degenerate minorities).
    cell.indexes.defined = !rng->NextBool(0.2);
    for (indexes::IndexKind kind : indexes::AllIndexKinds()) {
      cell.indexes.values[static_cast<size_t>(kind)] = rng->NextDouble();
    }
    cube.Insert(std::move(cell));  // duplicate coordinates overwrite
  }
  return cube;
}

std::vector<const CubeCell*> IdsToCells(const CubeView& view,
                                        std::span<const CubeView::CellId> ids) {
  std::vector<const CubeCell*> out;
  for (CubeView::CellId id : ids) out.push_back(&view.cell(id));
  return out;
}

void ExpectSameCells(const std::vector<const CubeCell*>& naive,
                     const std::vector<const CubeCell*>& indexed,
                     const std::string& what) {
  ASSERT_EQ(naive.size(), indexed.size()) << what;
  for (size_t i = 0; i < naive.size(); ++i) {
    EXPECT_EQ(naive[i]->coords, indexed[i]->coords) << what << " at " << i;
    EXPECT_EQ(naive[i]->context_size, indexed[i]->context_size) << what;
  }
}

class CubeViewPropertyTest : public ::testing::TestWithParam<SweepParams> {};

TEST_P(CubeViewPropertyTest, ViewAgreesWithNaiveCube) {
  Rng rng(GetParam().seed);
  SegregationCube cube = RandomCube(GetParam(), &rng);
  CubeView view = cube.Seal();

  // --- dense array vs naive sorted pointer dump ---------------------------
  auto naive_cells = cube.Cells();
  ASSERT_EQ(view.NumCells(), naive_cells.size());
  EXPECT_EQ(view.NumDefinedCells(), cube.NumDefinedCells());
  for (size_t i = 0; i < naive_cells.size(); ++i) {
    EXPECT_EQ(view.Cells()[i].coords, naive_cells[i]->coords);
  }

  // --- point lookups ------------------------------------------------------
  for (const CubeCell* cell : naive_cells) {
    const CubeCell* found = view.Find(cell->coords);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->coords, cell->coords);
    EXPECT_EQ(found->minority_size, cell->minority_size);
  }
  EXPECT_EQ(view.Find(fpm::Itemset({0, 1, 2, 3}),
                      fpm::Itemset({4, 5, 6})),
            cube.Find(fpm::Itemset({0, 1, 2, 3}), fpm::Itemset({4, 5, 6})));

  // --- exact slices vs naive scans ---------------------------------------
  std::set<fpm::Itemset> sa_keys, ca_keys;
  for (const CubeCell* cell : naive_cells) {
    sa_keys.insert(cell->coords.sa);
    ca_keys.insert(cell->coords.ca);
  }
  for (const fpm::Itemset& sa : sa_keys) {
    ExpectSameCells(cube.SliceBySa(sa), IdsToCells(view, view.SliceBySa(sa)),
                    "SliceBySa " + sa.DebugString());
  }
  for (const fpm::Itemset& ca : ca_keys) {
    ExpectSameCells(cube.SliceByCa(ca), IdsToCells(view, view.SliceByCa(ca)),
                    "SliceByCa " + ca.DebugString());
  }

  // --- adjacency vs naive coordinate algebra ------------------------------
  for (const CubeCell* cell : naive_cells) {
    CubeView::CellId id = view.FindId(cell->coords);
    ASSERT_NE(id, CubeView::kNoCell);
    ExpectSameCells(cube.Parents(cell->coords),
                    IdsToCells(view, view.Parents(id)), "Parents");
    ExpectSameCells(cube.Children(cell->coords),
                    IdsToCells(view, view.Children(id)), "Children");
  }
  // Absent coordinates fall back to probes and must agree too.
  for (int trial = 0; trial < 20; ++trial) {
    CellCoordinates coords{RandomSubset(&rng, 0, kNumSaItems, 3),
                           RandomSubset(&rng, kNumSaItems, kNumCaItems, 2)};
    std::vector<CubeView::CellId> p = view.ParentsOf(coords);
    ExpectSameCells(cube.Parents(coords),
                    IdsToCells(view, std::span<const CubeView::CellId>(p)),
                    "ParentsOf");
    std::vector<CubeView::CellId> c = view.ChildrenOf(coords);
    ExpectSameCells(cube.Children(coords),
                    IdsToCells(view, std::span<const CubeView::CellId>(c)),
                    "ChildrenOf");
  }

  // --- dice vs naive subset filtering -------------------------------------
  for (int trial = 0; trial < 20; ++trial) {
    fpm::Itemset sa = RandomSubset(&rng, 0, kNumSaItems, 2);
    fpm::Itemset ca = RandomSubset(&rng, kNumSaItems, kNumCaItems, 2);
    std::vector<const CubeCell*> naive;
    for (const CubeCell* cell : naive_cells) {
      if (sa.IsSubsetOf(cell->coords.sa) && ca.IsSubsetOf(cell->coords.ca)) {
        naive.push_back(cell);
      }
    }
    std::vector<CubeView::CellId> ids = view.Dice(sa, ca);
    ExpectSameCells(naive,
                    IdsToCells(view, std::span<const CubeView::CellId>(ids)),
                    "Dice " + sa.DebugString() + ca.DebugString());
  }

  // --- explorer analyses vs naive recomputation ---------------------------
  ExplorerOptions options;
  options.min_context_size = 10;
  options.min_minority_size = 2;
  for (indexes::IndexKind kind :
       {indexes::IndexKind::kDissimilarity, indexes::IndexKind::kGini}) {
    // Top-k: naive = filter + full sort + truncate on the mutable cube.
    std::vector<RankedCell> naive_top;
    for (const CubeCell* cell : naive_cells) {
      if (!PassesExplorerFilters(*cell, options)) continue;
      naive_top.push_back(RankedCell{cell, cell->Value(kind)});
    }
    std::sort(naive_top.begin(), naive_top.end(),
              [](const RankedCell& a, const RankedCell& b) {
                if (a.value != b.value) return a.value > b.value;
                return a.cell->coords < b.cell->coords;
              });
    if (naive_top.size() > 5) naive_top.resize(5);
    auto top = TopSegregatedContexts(view, kind, 5, options);
    ASSERT_EQ(top.size(), naive_top.size());
    for (size_t i = 0; i < top.size(); ++i) {
      EXPECT_EQ(top[i].cell->coords, naive_top[i].cell->coords) << i;
      EXPECT_DOUBLE_EQ(top[i].value, naive_top[i].value) << i;
    }

    // Surprises: naive = per-cell hash probes on the mutable cube.
    std::vector<SurpriseFinding> naive_surprises;
    for (const CubeCell* cell : naive_cells) {
      if (!PassesExplorerFilters(*cell, options)) continue;
      if (cell->coords.sa.empty() && cell->coords.ca.empty()) continue;
      double best = 0.0;
      bool any = false;
      for (const CubeCell* parent : cube.Parents(cell->coords)) {
        if (!parent->indexes.defined) continue;
        if (options.require_nonempty_sa && parent->coords.sa.empty()) continue;
        any = true;
        best = std::max(best, parent->Value(kind));
      }
      if (!any) continue;
      double delta = cell->Value(kind) - best;
      if (delta >= 0.05) {
        naive_surprises.push_back(
            SurpriseFinding{cell, cell->Value(kind), best, delta});
      }
    }
    SortSurprises(&naive_surprises);
    auto surprises = DrillDownSurprises(view, kind, 0.05, options);
    ASSERT_EQ(surprises.size(), naive_surprises.size());
    for (size_t i = 0; i < surprises.size(); ++i) {
      EXPECT_EQ(surprises[i].cell->coords, naive_surprises[i].cell->coords);
      EXPECT_DOUBLE_EQ(surprises[i].delta, naive_surprises[i].delta);
      EXPECT_DOUBLE_EQ(surprises[i].best_parent_value,
                       naive_surprises[i].best_parent_value);
    }

    // Reversals: compare against the adjacency-free recomputation.
    std::vector<GranularityReversal> naive_reversals;
    for (const CubeCell* parent : naive_cells) {
      if (!PassesExplorerFilters(*parent, options)) continue;
      std::vector<const CubeCell*> children;
      for (const CubeCell* child : cube.Children(parent->coords)) {
        if (child->coords.sa == parent->coords.sa &&
            child->indexes.defined &&
            !(options.require_nonempty_sa && child->coords.sa.empty()) &&
            child->context_size >= options.min_context_size &&
            child->minority_size >= options.min_minority_size) {
          children.push_back(child);
        }
      }
      if (children.size() < 2) continue;
      double pv = parent->Value(kind);
      bool all_above = true, all_below = true;
      double min_child = 1e300, max_child = -1e300;
      for (const CubeCell* child : children) {
        double v = child->Value(kind);
        min_child = std::min(min_child, v);
        max_child = std::max(max_child, v);
        if (v < pv + 0.1) all_above = false;
        if (v > pv - 0.1) all_below = false;
      }
      if (all_above) {
        naive_reversals.push_back(
            GranularityReversal{parent, children, pv, min_child, true});
      } else if (all_below) {
        naive_reversals.push_back(
            GranularityReversal{parent, children, pv, max_child, false});
      }
    }
    SortReversals(&naive_reversals);
    auto reversals = FindGranularityReversals(view, kind, 0.1, options);
    ASSERT_EQ(reversals.size(), naive_reversals.size());
    for (size_t i = 0; i < reversals.size(); ++i) {
      EXPECT_EQ(reversals[i].parent->coords,
                naive_reversals[i].parent->coords);
      EXPECT_EQ(reversals[i].children.size(),
                naive_reversals[i].children.size());
      EXPECT_DOUBLE_EQ(reversals[i].min_child_value,
                       naive_reversals[i].min_child_value);
      EXPECT_EQ(reversals[i].children_higher,
                naive_reversals[i].children_higher);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CubeViewPropertyTest,
    ::testing::Values(SweepParams{1, 20}, SweepParams{2, 60},
                      SweepParams{3, 120}, SweepParams{4, 250},
                      SweepParams{5, 400}));

}  // namespace
}  // namespace cube
}  // namespace scube
