#include "cube/cube.h"

#include <gtest/gtest.h>

namespace scube {
namespace cube {
namespace {

CubeCell MakeCell(std::vector<fpm::ItemId> sa, std::vector<fpm::ItemId> ca,
                  uint64_t t, uint64_t m, double dissimilarity) {
  CubeCell cell;
  cell.coords = CellCoordinates{fpm::Itemset(std::move(sa)),
                                fpm::Itemset(std::move(ca))};
  cell.context_size = t;
  cell.minority_size = m;
  cell.num_units = 2;
  cell.indexes.defined = true;
  cell.indexes.values[static_cast<size_t>(
      indexes::IndexKind::kDissimilarity)] = dissimilarity;
  return cell;
}

TEST(CellCoordinatesTest, OrderingByTotalLengthThenLex) {
  CellCoordinates root{fpm::Itemset(), fpm::Itemset()};
  CellCoordinates a{fpm::Itemset({0}), fpm::Itemset()};
  CellCoordinates b{fpm::Itemset({0}), fpm::Itemset({5})};
  EXPECT_LT(root, a);
  EXPECT_LT(a, b);
  EXPECT_FALSE(b < a);
  EXPECT_EQ(a, (CellCoordinates{fpm::Itemset({0}), fpm::Itemset()}));
}

TEST(SegregationCubeTest, InsertFindReplace) {
  SegregationCube cube;
  cube.Insert(MakeCell({1}, {2}, 100, 30, 0.4));
  EXPECT_EQ(cube.NumCells(), 1u);
  const CubeCell* cell = cube.Find(fpm::Itemset({1}), fpm::Itemset({2}));
  ASSERT_NE(cell, nullptr);
  EXPECT_EQ(cell->context_size, 100u);

  // Replacement, not duplication.
  cube.Insert(MakeCell({1}, {2}, 200, 60, 0.5));
  EXPECT_EQ(cube.NumCells(), 1u);
  EXPECT_EQ(cube.Find(fpm::Itemset({1}), fpm::Itemset({2}))->context_size,
            200u);

  EXPECT_EQ(cube.Find(fpm::Itemset({9}), fpm::Itemset()), nullptr);
}

TEST(SegregationCubeTest, CellsDeterministicOrder) {
  SegregationCube cube;
  cube.Insert(MakeCell({1}, {2}, 10, 3, 0.1));
  cube.Insert(MakeCell({}, {}, 50, 20, 0.0));
  cube.Insert(MakeCell({1}, {}, 20, 5, 0.2));
  auto cells = cube.Cells();
  ASSERT_EQ(cells.size(), 3u);
  EXPECT_TRUE(cells[0]->coords.sa.empty());  // root first (length 0)
  EXPECT_EQ(cells[1]->coords.sa, fpm::Itemset({1}));
  EXPECT_TRUE(cells[1]->coords.ca.empty());
  EXPECT_EQ(cells[2]->coords.ca, fpm::Itemset({2}));
}

TEST(SegregationCubeTest, Slices) {
  SegregationCube cube;
  cube.Insert(MakeCell({1}, {}, 10, 3, 0.1));
  cube.Insert(MakeCell({1}, {7}, 10, 3, 0.2));
  cube.Insert(MakeCell({2}, {7}, 10, 3, 0.3));
  EXPECT_EQ(cube.SliceBySa(fpm::Itemset({1})).size(), 2u);
  EXPECT_EQ(cube.SliceByCa(fpm::Itemset({7})).size(), 2u);
  EXPECT_EQ(cube.SliceByCa(fpm::Itemset()).size(), 1u);
  EXPECT_TRUE(cube.SliceBySa(fpm::Itemset({9})).empty());
}

TEST(SegregationCubeTest, ParentsAndChildren) {
  SegregationCube cube;
  cube.Insert(MakeCell({}, {}, 40, 0, 0.0));
  cube.Insert(MakeCell({}, {7}, 20, 0, 0.0));
  cube.Insert(MakeCell({1}, {}, 40, 10, 0.1));
  cube.Insert(MakeCell({1}, {7}, 20, 5, 0.2));
  cube.Insert(MakeCell({1, 2}, {}, 40, 4, 0.3));
  cube.Insert(MakeCell({1, 2}, {7}, 20, 2, 0.4));

  const CubeCell* mid = cube.Find(fpm::Itemset({1}), fpm::Itemset({7}));
  ASSERT_NE(mid, nullptr);
  auto parents = cube.Parents(mid->coords);
  ASSERT_EQ(parents.size(), 2u);  // remove SA item 1; remove CA item 7

  auto children = cube.Children(mid->coords);
  ASSERT_EQ(children.size(), 1u);
  EXPECT_EQ(children[0]->coords.sa, fpm::Itemset({1, 2}));

  auto root_children = cube.Children(CellCoordinates{});
  EXPECT_EQ(root_children.size(), 2u);  // {1}|* and *|{7}
}

TEST(SegregationCubeTest, NumDefinedCells) {
  SegregationCube cube;
  cube.Insert(MakeCell({1}, {}, 10, 3, 0.5));
  CubeCell undefined_cell = MakeCell({2}, {}, 10, 0, 0.0);
  undefined_cell.indexes.defined = false;
  cube.Insert(std::move(undefined_cell));
  EXPECT_EQ(cube.NumCells(), 2u);
  EXPECT_EQ(cube.NumDefinedCells(), 1u);
}

TEST(SegregationCubeTest, CsvExportShape) {
  relational::ItemCatalog catalog;
  catalog.GetOrAdd(0, "gender", "F", relational::AttributeKind::kSegregation);
  SegregationCube cube(std::move(catalog), {"u0", "u1"});
  cube.Insert(MakeCell({}, {}, 40, 0, 0.0));
  cube.Insert(MakeCell({0}, {}, 40, 10, 0.25));
  std::string csv = cube.ToCsv();
  // Header + 2 rows.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);
  EXPECT_NE(csv.find("dissimilarity"), std::string::npos);
  EXPECT_NE(csv.find("atkinson"), std::string::npos);
}

}  // namespace
}  // namespace cube
}  // namespace scube
