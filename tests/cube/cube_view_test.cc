#include "cube/cube_view.h"

#include <gtest/gtest.h>

#include "cube/cube.h"

namespace scube {
namespace cube {
namespace {

CubeCell MakeCell(std::vector<fpm::ItemId> sa, std::vector<fpm::ItemId> ca,
                  uint64_t t, uint64_t m, double dissimilarity,
                  bool defined = true) {
  CubeCell cell;
  cell.coords = CellCoordinates{fpm::Itemset(std::move(sa)),
                                fpm::Itemset(std::move(ca))};
  cell.context_size = t;
  cell.minority_size = m;
  cell.num_units = 2;
  cell.indexes.defined = defined;
  cell.indexes.values[static_cast<size_t>(
      indexes::IndexKind::kDissimilarity)] = dissimilarity;
  return cell;
}

// The executor-test fixture: items sex=F (0), age=young (1) on SA;
// region=north (2), region=south (3) on CA.
CubeView MakeView() {
  relational::ItemCatalog catalog;
  using relational::AttributeKind;
  catalog.GetOrAdd(0, "sex", "F", AttributeKind::kSegregation);      // id 0
  catalog.GetOrAdd(1, "age", "young", AttributeKind::kSegregation);  // id 1
  catalog.GetOrAdd(2, "region", "north", AttributeKind::kContext);   // id 2
  catalog.GetOrAdd(3, "region", "south", AttributeKind::kContext);   // id 3

  SegregationCube cube(std::move(catalog), {"u0", "u1"});
  cube.Insert(MakeCell({}, {}, 100, 0, 0.0, /*defined=*/false));  // root
  cube.Insert(MakeCell({0}, {}, 100, 40, 0.10));       // F | *
  cube.Insert(MakeCell({1}, {}, 100, 30, 0.05));       // young | *
  cube.Insert(MakeCell({0, 1}, {}, 100, 12, 0.30));    // F & young | *
  cube.Insert(MakeCell({}, {2}, 60, 0, 0.0, false));   // * | north
  cube.Insert(MakeCell({0}, {2}, 60, 25, 0.50));       // F | north
  cube.Insert(MakeCell({0}, {3}, 40, 15, 0.20));       // F | south
  cube.Insert(MakeCell({1}, {2}, 60, 18, 0.15));       // young | north
  cube.Insert(MakeCell({0, 1}, {2}, 60, 8, 0.70));     // F & young | north
  return std::move(cube).Seal();
}

TEST(CubeViewTest, CellsSortedAndCounted) {
  CubeView view = MakeView();
  EXPECT_EQ(view.NumCells(), 9u);
  EXPECT_EQ(view.NumDefinedCells(), 7u);
  auto cells = view.Cells();
  ASSERT_EQ(cells.size(), 9u);
  for (size_t i = 1; i < cells.size(); ++i) {
    EXPECT_TRUE(cells[i - 1].coords < cells[i].coords);
  }
  // The span is stable: repeated calls alias the same storage.
  EXPECT_EQ(view.Cells().data(), cells.data());
  // Root (⋆ | ⋆) sorts first under the (|sa|+|ca|, sa, ca) order.
  EXPECT_TRUE(cells[0].coords.sa.empty());
  EXPECT_TRUE(cells[0].coords.ca.empty());
}

TEST(CubeViewTest, PointLookups) {
  CubeView view = MakeView();
  const CubeCell* cell = view.Find(fpm::Itemset({0}), fpm::Itemset({2}));
  ASSERT_NE(cell, nullptr);
  EXPECT_EQ(cell->context_size, 60u);
  EXPECT_EQ(cell->minority_size, 25u);
  EXPECT_EQ(view.Find(fpm::Itemset({1}), fpm::Itemset({3})), nullptr);
  EXPECT_EQ(view.FindId(CellCoordinates{fpm::Itemset({1}), fpm::Itemset({3})}),
            CubeView::kNoCell);
  CubeView::CellId id = view.FindId(cell->coords);
  ASSERT_NE(id, CubeView::kNoCell);
  EXPECT_EQ(&view.cell(id), cell);
}

TEST(CubeViewTest, PostingListsAreSortedAndComplete) {
  CubeView view = MakeView();
  // Item 0 (sex=F) appears in the SA of 5 cells.
  auto postings = view.SaPostings(0);
  EXPECT_EQ(postings.size(), 5u);
  for (size_t i = 1; i < postings.size(); ++i) {
    EXPECT_LT(postings[i - 1], postings[i]);
  }
  for (CubeView::CellId id : postings) {
    EXPECT_TRUE(view.cell(id).coords.sa.Contains(0));
  }
  // Item 2 (region=north) appears in the CA of 4 cells.
  EXPECT_EQ(view.CaPostings(2).size(), 4u);
  // Items absent from every cell (or beyond the universe) yield empty.
  EXPECT_TRUE(view.SaPostings(2).empty());  // north is never an SA item
  EXPECT_TRUE(view.SaPostings(999).empty());
}

TEST(CubeViewTest, ExactSliceGroups) {
  CubeView view = MakeView();
  auto f_cells = view.SliceBySa(fpm::Itemset({0}));
  EXPECT_EQ(f_cells.size(), 3u);  // F|*, F|north, F|south
  for (CubeView::CellId id : f_cells) {
    EXPECT_EQ(view.cell(id).coords.sa, fpm::Itemset({0}));
  }
  EXPECT_EQ(view.SliceByCa(fpm::Itemset({2})).size(), 4u);
  EXPECT_EQ(view.SliceByCa(fpm::Itemset()).size(), 4u);  // the ⋆ context
  EXPECT_TRUE(view.SliceBySa(fpm::Itemset({9})).empty());
}

TEST(CubeViewTest, AdjacencyMatchesCoordinateAlgebra) {
  CubeView view = MakeView();
  CubeView::CellId id =
      view.FindId(CellCoordinates{fpm::Itemset({0, 1}), fpm::Itemset({2})});
  ASSERT_NE(id, CubeView::kNoCell);

  // Parents of (F & young | north), removal order: drop item 0 ->
  // (young|north), drop item 1 -> (F|north), drop item 2 -> (F&young|*).
  auto parents = view.Parents(id);
  ASSERT_EQ(parents.size(), 3u);
  EXPECT_EQ(view.cell(parents[0]).coords,
            (CellCoordinates{fpm::Itemset({1}), fpm::Itemset({2})}));
  EXPECT_EQ(view.cell(parents[1]).coords,
            (CellCoordinates{fpm::Itemset({0}), fpm::Itemset({2})}));
  EXPECT_EQ(view.cell(parents[2]).coords,
            (CellCoordinates{fpm::Itemset({0, 1}), fpm::Itemset()}));
  EXPECT_TRUE(view.Children(id).empty());

  // Children of (F | ⋆): (F|north), (F|south), (F&young|⋆) in coord order.
  CubeView::CellId f_star =
      view.FindId(CellCoordinates{fpm::Itemset({0}), fpm::Itemset()});
  auto children = view.Children(f_star);
  ASSERT_EQ(children.size(), 3u);
  for (size_t i = 1; i < children.size(); ++i) {
    EXPECT_LT(children[i - 1], children[i]);
  }
}

TEST(CubeViewTest, ParentsChildrenOfAbsentCoordinates) {
  CubeView view = MakeView();
  // (young | south) is not a cell; its parents still resolve by probing.
  CellCoordinates absent{fpm::Itemset({1}), fpm::Itemset({3})};
  ASSERT_EQ(view.FindId(absent), CubeView::kNoCell);
  auto parents = view.ParentsOf(absent);
  ASSERT_EQ(parents.size(), 1u);  // (⋆|south) absent, (young|⋆) present
  EXPECT_EQ(view.cell(parents[0]).coords,
            (CellCoordinates{fpm::Itemset({1}), fpm::Itemset()}));

  // Children of an absent coordinate probe one-item extensions.
  CellCoordinates root{fpm::Itemset(), fpm::Itemset()};
  auto root_children = view.ChildrenOf(root);
  EXPECT_EQ(root_children.size(), 3u);  // F|*, young|*, *|north
}

TEST(CubeViewTest, DiceIntersectsPostingLists) {
  CubeView view = MakeView();
  uint64_t examined = 0;
  auto ids = view.Dice(fpm::Itemset({0}), fpm::Itemset({2}), &examined);
  ASSERT_EQ(ids.size(), 2u);  // F|north, F&young|north
  for (CubeView::CellId id : ids) {
    EXPECT_TRUE(fpm::Itemset({0}).IsSubsetOf(view.cell(id).coords.sa));
    EXPECT_TRUE(fpm::Itemset({2}).IsSubsetOf(view.cell(id).coords.ca));
  }
  // The shortest posting list drives the intersection.
  EXPECT_LE(examined, view.SaPostings(0).size());

  // No constraints selects every cell.
  EXPECT_EQ(view.Dice(fpm::Itemset(), fpm::Itemset()).size(), 9u);
  // Unknown items select nothing.
  EXPECT_TRUE(view.Dice(fpm::Itemset({42}), fpm::Itemset()).empty());
}

TEST(CubeViewTest, RankedOrderIsValueDescending) {
  CubeView view = MakeView();
  auto ranked = view.RankedByIndex(indexes::IndexKind::kDissimilarity);
  ASSERT_EQ(ranked.size(), view.NumDefinedCells());
  for (size_t i = 1; i < ranked.size(); ++i) {
    double prev = view.cell(ranked[i - 1]).Value(
        indexes::IndexKind::kDissimilarity);
    double cur =
        view.cell(ranked[i]).Value(indexes::IndexKind::kDissimilarity);
    EXPECT_GE(prev, cur);
    if (prev == cur) EXPECT_LT(ranked[i - 1], ranked[i]);
  }
  EXPECT_DOUBLE_EQ(
      view.cell(ranked[0]).Value(indexes::IndexKind::kDissimilarity), 0.70);
}

TEST(CubeViewTest, SealPreservesCatalogLabelsAndCsv) {
  relational::ItemCatalog catalog;
  catalog.GetOrAdd(0, "sex", "F", relational::AttributeKind::kSegregation);
  SegregationCube cube(std::move(catalog), {"a", "b"});
  cube.Insert(MakeCell({0}, {}, 10, 4, 0.5));

  // Const-ref seal copies: the cube keeps its cells.
  CubeView copied = cube.Seal();
  EXPECT_EQ(cube.NumCells(), 1u);
  EXPECT_EQ(copied.NumCells(), 1u);
  EXPECT_EQ(copied.unit_labels().size(), 2u);
  EXPECT_EQ(copied.LabelOf(copied.Cells()[0].coords), "sex=F | *");
  EXPECT_EQ(copied.ToCsv(), cube.ToCsv());

  // Rvalue seal consumes.
  CubeView moved = std::move(cube).Seal();
  EXPECT_EQ(moved.NumCells(), 1u);
}

TEST(CubeViewTest, HandBuiltCubesWithoutCatalogStillIndex) {
  // Item ids beyond the (empty) catalog must not break the posting
  // universe — the store tests publish such cubes.
  SegregationCube cube;
  cube.Insert(MakeCell({7}, {}, 10, 2, 0.1));
  cube.Insert(MakeCell({7}, {11}, 8, 2, 0.2));
  CubeView view = std::move(cube).Seal();
  EXPECT_EQ(view.SaPostings(7).size(), 2u);
  EXPECT_EQ(view.CaPostings(11).size(), 1u);
  EXPECT_EQ(view.Dice(fpm::Itemset({7}), fpm::Itemset({11})).size(), 1u);
}

}  // namespace
}  // namespace cube
}  // namespace scube
