// Parallel-build determinism: BuildSegregationCube and Seal() must produce
// bit-identical output for every num_threads setting — same cells and
// values, same posting lists, slice groups, adjacency rows and ranked
// orders as the sequential (num_threads = 1) reference.

#include <gtest/gtest.h>

#include <vector>

#include "common/random.h"
#include "cube/builder.h"
#include "cube/cube_view.h"
#include "indexes/segregation_index.h"

namespace scube {
namespace cube {
namespace {

using relational::AttributeKind;
using relational::ColumnType;
using relational::Schema;
using relational::Table;

Table RandomTable(uint64_t seed, size_t rows, size_t num_units) {
  Schema schema({
      {"g", ColumnType::kCategorical, AttributeKind::kSegregation},
      {"a", ColumnType::kCategorical, AttributeKind::kSegregation},
      {"r", ColumnType::kCategorical, AttributeKind::kContext},
      {"s", ColumnType::kCategorical, AttributeKind::kContext},
      {"unitID", ColumnType::kCategorical, AttributeKind::kUnit},
  });
  Table t(schema);
  Rng rng(seed);
  const char* kG[] = {"F", "M"};
  const char* kA[] = {"y", "m", "e"};
  const char* kR[] = {"n", "s", "c"};
  const char* kS[] = {"s0", "s1", "s2", "s3"};
  for (size_t i = 0; i < rows; ++i) {
    EXPECT_TRUE(t.AppendRowFromStrings(
                     {kG[rng.NextBounded(2)], kA[rng.NextBounded(3)],
                      kR[rng.NextBounded(3)], kS[rng.NextBounded(4)],
                      "u" + std::to_string(rng.NextBounded(num_units))})
                    .ok());
  }
  return t;
}

CubeBuilderOptions Options(size_t num_threads) {
  CubeBuilderOptions opts;
  opts.min_support = 2;
  opts.mode = fpm::MineMode::kAll;
  opts.max_sa_items = 2;
  opts.max_ca_items = 2;
  opts.num_threads = num_threads;
  return opts;
}

void ExpectCellsIdentical(const CubeView& a, const CubeView& b) {
  ASSERT_EQ(a.NumCells(), b.NumCells());
  ASSERT_EQ(a.NumDefinedCells(), b.NumDefinedCells());
  for (size_t i = 0; i < a.NumCells(); ++i) {
    const CubeCell& ca = a.cell(static_cast<CubeView::CellId>(i));
    const CubeCell& cb = b.cell(static_cast<CubeView::CellId>(i));
    ASSERT_EQ(ca.coords.sa, cb.coords.sa) << "cell " << i;
    ASSERT_EQ(ca.coords.ca, cb.coords.ca) << "cell " << i;
    EXPECT_EQ(ca.context_size, cb.context_size) << "cell " << i;
    EXPECT_EQ(ca.minority_size, cb.minority_size) << "cell " << i;
    EXPECT_EQ(ca.num_units, cb.num_units) << "cell " << i;
    ASSERT_EQ(ca.indexes.defined, cb.indexes.defined) << "cell " << i;
    if (ca.indexes.defined) {
      for (indexes::IndexKind kind : indexes::AllIndexKinds()) {
        // Bit-identical, not approximately equal: both sides must have
        // performed the same arithmetic in the same order.
        EXPECT_EQ(ca.indexes[kind], cb.indexes[kind])
            << "cell " << i << " index "
            << indexes::IndexKindToString(kind);
      }
    }
  }
}

template <typename Span>
std::vector<uint32_t> ToVec(Span span) {
  return std::vector<uint32_t>(span.begin(), span.end());
}

void ExpectViewsIdentical(const CubeView& a, const CubeView& b) {
  ExpectCellsIdentical(a, b);

  size_t max_item = std::max(a.catalog().size(), b.catalog().size());
  for (size_t item = 0; item < max_item; ++item) {
    fpm::ItemId id = static_cast<fpm::ItemId>(item);
    EXPECT_EQ(ToVec(a.SaPostings(id)), ToVec(b.SaPostings(id)))
        << "SA postings of item " << item;
    EXPECT_EQ(ToVec(a.CaPostings(id)), ToVec(b.CaPostings(id)))
        << "CA postings of item " << item;
  }

  for (size_t i = 0; i < a.NumCells(); ++i) {
    CubeView::CellId id = static_cast<CubeView::CellId>(i);
    const CellCoordinates& coords = a.cell(id).coords;
    EXPECT_EQ(ToVec(a.SliceBySa(coords.sa)), ToVec(b.SliceBySa(coords.sa)));
    EXPECT_EQ(ToVec(a.SliceByCa(coords.ca)), ToVec(b.SliceByCa(coords.ca)));
    EXPECT_EQ(ToVec(a.Parents(id)), ToVec(b.Parents(id))) << "cell " << i;
    EXPECT_EQ(ToVec(a.Children(id)), ToVec(b.Children(id))) << "cell " << i;
  }

  for (indexes::IndexKind kind : indexes::AllIndexKinds()) {
    EXPECT_EQ(ToVec(a.RankedByIndex(kind)), ToVec(b.RankedByIndex(kind)))
        << "ranked order " << indexes::IndexKindToString(kind);
  }

  EXPECT_EQ(a.ToCsv(), b.ToCsv());
}

TEST(ParallelBuildTest, ParallelFillMatchesSequential) {
  Table table = RandomTable(/*seed=*/11, /*rows=*/600, /*num_units=*/12);
  for (size_t threads : {2, 3, 4, 8}) {
    CubeBuildStats seq_stats, par_stats;
    auto seq = BuildSegregationCube(table, Options(1), &seq_stats);
    auto par = BuildSegregationCube(table, Options(threads), &par_stats);
    ASSERT_TRUE(seq.ok()) << seq.status();
    ASSERT_TRUE(par.ok()) << par.status();

    EXPECT_EQ(par_stats.mined_itemsets, seq_stats.mined_itemsets);
    EXPECT_EQ(par_stats.cells_created, seq_stats.cells_created);
    EXPECT_EQ(par_stats.cells_defined, seq_stats.cells_defined);
    EXPECT_EQ(par_stats.contexts_memoized, seq_stats.contexts_memoized);
    EXPECT_EQ(seq_stats.threads_used, 1u);
    EXPECT_GE(par_stats.threads_used, 1u);

    // The mutable cubes agree cell-for-cell (ToCsv walks coordinate order
    // and renders every count and index value).
    EXPECT_EQ(seq->ToCsv(), par->ToCsv()) << threads << " threads";
  }
}

TEST(ParallelBuildTest, ParallelSealMatchesSequential) {
  Table table = RandomTable(/*seed=*/23, /*rows=*/500, /*num_units=*/10);
  auto built = BuildSegregationCube(table, Options(1));
  ASSERT_TRUE(built.ok()) << built.status();
  CubeView sequential = built->Seal(1);
  for (size_t threads : {2, 4, 8}) {
    CubeView parallel = built->Seal(threads);
    ExpectViewsIdentical(sequential, parallel);
  }
  // 0 = hardware concurrency, still identical.
  CubeView hw = built->Seal(0);
  ExpectViewsIdentical(sequential, hw);
}

TEST(ParallelBuildTest, ParallelBuildPlusSealEndToEnd) {
  // The production path: parallel fill, then parallel (moving) seal, must
  // be indistinguishable from the fully sequential pipeline.
  Table table = RandomTable(/*seed=*/37, /*rows=*/400, /*num_units=*/8);
  auto seq_build = BuildSegregationCube(table, Options(1));
  auto par_build = BuildSegregationCube(table, Options(4));
  ASSERT_TRUE(seq_build.ok()) << seq_build.status();
  ASSERT_TRUE(par_build.ok()) << par_build.status();
  CubeView seq_view = std::move(*seq_build).Seal(1);
  CubeView par_view = std::move(*par_build).Seal(4);
  ExpectViewsIdentical(seq_view, par_view);
}

TEST(ParallelBuildTest, ThreadCountBeyondContextsIsSafe) {
  // Tiny cube, huge thread request: workers beyond the group count must
  // neither crash nor change the result.
  Table table = RandomTable(/*seed=*/5, /*rows=*/40, /*num_units=*/3);
  auto seq = BuildSegregationCube(table, Options(1));
  auto par = BuildSegregationCube(table, Options(64));
  ASSERT_TRUE(seq.ok()) << seq.status();
  ASSERT_TRUE(par.ok()) << par.status();
  EXPECT_EQ(seq->ToCsv(), par->ToCsv());
}

}  // namespace
}  // namespace cube
}  // namespace scube
