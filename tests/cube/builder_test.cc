// SegregationDataCubeBuilder correctness: hand-computed anchors on a small
// finalTable, plus an exhaustive cross-check of every materialised cell
// against a naive recomputation that filters table rows directly.

#include "cube/builder.h"

#include <gtest/gtest.h>

#include <map>

#include "indexes/counts.h"

namespace scube {
namespace cube {
namespace {

using relational::AttributeKind;
using relational::ColumnType;
using relational::Schema;
using relational::Table;

Table SmallFinalTable() {
  Schema schema({
      {"gender", ColumnType::kCategorical, AttributeKind::kSegregation},
      {"age", ColumnType::kCategorical, AttributeKind::kSegregation},
      {"region", ColumnType::kCategorical, AttributeKind::kContext},
      {"unitID", ColumnType::kCategorical, AttributeKind::kUnit},
  });
  Table t(schema);
  const char* rows[][4] = {
      {"F", "young", "north", "u0"}, {"F", "young", "north", "u0"},
      {"M", "young", "north", "u0"}, {"M", "old", "north", "u1"},
      {"F", "old", "north", "u1"},   {"M", "young", "north", "u1"},
      {"F", "young", "south", "u2"}, {"M", "old", "south", "u2"},
      {"M", "old", "south", "u2"},   {"F", "old", "south", "u3"},
      {"M", "young", "south", "u3"}, {"F", "young", "south", "u3"},
  };
  for (const auto& r : rows) {
    EXPECT_TRUE(t.AppendRowFromStrings({r[0], r[1], r[2], r[3]}).ok());
  }
  return t;
}

CubeBuilderOptions AllCellsOptions() {
  CubeBuilderOptions opts;
  opts.min_support = 1;
  opts.mode = fpm::MineMode::kAll;
  opts.max_sa_items = 2;
  opts.max_ca_items = 1;
  return opts;
}

TEST(CubeBuilderTest, GlobalFemaleCellAnchor) {
  auto cube = BuildSegregationCube(SmallFinalTable(), AllCellsOptions());
  ASSERT_TRUE(cube.ok()) << cube.status();

  const auto& cat = cube->catalog();
  fpm::ItemId female = cat.Find(0, "F");
  ASSERT_NE(female, fpm::kInvalidItem);

  // (sex=F | ⋆): 4 units of 3, minority (2,1,1,2) -> D = 1/3.
  const CubeCell* cell = cube->Find(fpm::Itemset({female}), fpm::Itemset());
  ASSERT_NE(cell, nullptr);
  EXPECT_EQ(cell->context_size, 12u);
  EXPECT_EQ(cell->minority_size, 6u);
  EXPECT_EQ(cell->num_units, 4u);
  ASSERT_TRUE(cell->indexes.defined);
  EXPECT_NEAR(cell->Value(indexes::IndexKind::kDissimilarity), 1.0 / 3.0,
              1e-9);
}

TEST(CubeBuilderTest, ContextRestrictedCellAnchor) {
  auto cube = BuildSegregationCube(SmallFinalTable(), AllCellsOptions());
  ASSERT_TRUE(cube.ok());
  const auto& cat = cube->catalog();
  fpm::ItemId female = cat.Find(0, "F");
  fpm::ItemId young = cat.Find(1, "young");
  fpm::ItemId north = cat.Find(2, "north");
  ASSERT_NE(young, fpm::kInvalidItem);
  ASSERT_NE(north, fpm::kInvalidItem);

  // (sex=F | region=north): T=6 over units u0,u1; m=(2,1) -> D = 1/3.
  const CubeCell* cell =
      cube->Find(fpm::Itemset({female}), fpm::Itemset({north}));
  ASSERT_NE(cell, nullptr);
  EXPECT_EQ(cell->context_size, 6u);
  EXPECT_EQ(cell->minority_size, 3u);
  EXPECT_EQ(cell->num_units, 2u);
  EXPECT_NEAR(cell->Value(indexes::IndexKind::kDissimilarity), 1.0 / 3.0,
              1e-9);

  // (sex=F & age=young | region=north): m=(2,0), majority=(1,3) -> D = 0.75.
  const CubeCell* fine =
      cube->Find(fpm::Itemset({female, young}), fpm::Itemset({north}));
  ASSERT_NE(fine, nullptr);
  EXPECT_EQ(fine->minority_size, 2u);
  EXPECT_NEAR(fine->Value(indexes::IndexKind::kDissimilarity), 0.75, 1e-9);
}

TEST(CubeBuilderTest, RootAndPureSaCellsAreUndefined) {
  auto cube = BuildSegregationCube(SmallFinalTable(), AllCellsOptions());
  ASSERT_TRUE(cube.ok());
  // Root (⋆|⋆): M = T -> undefined ("-" in Fig. 1).
  const CubeCell* root = cube->Find(fpm::Itemset(), fpm::Itemset());
  ASSERT_NE(root, nullptr);
  EXPECT_FALSE(root->indexes.defined);
  EXPECT_EQ(root->context_size, 12u);
  EXPECT_EQ(root->minority_size, 12u);

  // Pure-context cell (⋆ | region=north): M = T = 6 -> undefined.
  const auto& cat = cube->catalog();
  fpm::ItemId north = cat.Find(2, "north");
  const CubeCell* ctx = cube->Find(fpm::Itemset(), fpm::Itemset({north}));
  ASSERT_NE(ctx, nullptr);
  EXPECT_FALSE(ctx->indexes.defined);
}

// Naive recomputation of a cell by scanning table rows.
struct NaiveCell {
  uint64_t context_size = 0;
  uint64_t minority_size = 0;
  indexes::GroupDistribution dist;
};

NaiveCell NaiveCompute(const Table& t, const SegregationCube& cube,
                       const CellCoordinates& coords) {
  const auto& cat = cube.catalog();
  auto row_matches = [&](size_t row, const fpm::Itemset& items) {
    for (fpm::ItemId item : items.items()) {
      const auto& info = cat.info(item);
      if (t.CategoricalValue(row, info.attr_index) != info.value) return false;
    }
    return true;
  };
  int unit_col = t.schema().IndexOf("unitID");
  std::map<std::string, std::pair<uint64_t, uint64_t>> per_unit;  // t, m
  NaiveCell out;
  for (size_t row = 0; row < t.NumRows(); ++row) {
    if (!row_matches(row, coords.ca)) continue;
    std::string unit = t.CategoricalValue(row, static_cast<size_t>(unit_col));
    ++out.context_size;
    ++per_unit[unit].first;
    if (row_matches(row, coords.sa)) {
      ++out.minority_size;
      ++per_unit[unit].second;
    }
  }
  for (const auto& [unit, tm] : per_unit) {
    out.dist.AddUnit(tm.first, tm.second);
  }
  return out;
}

TEST(CubeBuilderTest, EveryCellMatchesNaiveRecomputation) {
  Table t = SmallFinalTable();
  auto cube = BuildSegregationCube(t, AllCellsOptions());
  ASSERT_TRUE(cube.ok());
  EXPECT_GT(cube->NumCells(), 20u);

  for (const CubeCell* cell : cube->Cells()) {
    NaiveCell naive = NaiveCompute(t, cube.value(), cell->coords);
    EXPECT_EQ(cell->context_size, naive.context_size)
        << cube->LabelOf(cell->coords);
    EXPECT_EQ(cell->minority_size, naive.minority_size)
        << cube->LabelOf(cell->coords);
    EXPECT_EQ(cell->num_units, naive.dist.NumUnits())
        << cube->LabelOf(cell->coords);
    auto expected = indexes::ComputeAllIndexes(naive.dist);
    ASSERT_TRUE(expected.ok());
    EXPECT_EQ(cell->indexes.defined, expected->defined)
        << cube->LabelOf(cell->coords);
    if (cell->indexes.defined) {
      for (indexes::IndexKind kind : indexes::AllIndexKinds()) {
        EXPECT_NEAR(cell->Value(kind), (*expected)[kind], 1e-9)
            << cube->LabelOf(cell->coords) << " "
            << indexes::IndexKindToString(kind);
      }
    }
  }
}

TEST(CubeBuilderTest, ClosedModeCellsAgreeWithAllMode) {
  // Plant a perfect correlation (every F is foreign-born) so {gender=F} is
  // NOT closed — its closure adds birthplace=foreign — and closed mode
  // materialises strictly fewer cells.
  Schema schema({
      {"gender", ColumnType::kCategorical, AttributeKind::kSegregation},
      {"birthplace", ColumnType::kCategorical, AttributeKind::kSegregation},
      {"region", ColumnType::kCategorical, AttributeKind::kContext},
      {"unitID", ColumnType::kCategorical, AttributeKind::kUnit},
  });
  Table t(schema);
  const char* rows[][4] = {
      {"F", "foreign", "north", "u0"}, {"F", "foreign", "north", "u1"},
      {"M", "native", "north", "u0"},  {"M", "foreign", "north", "u1"},
      {"F", "foreign", "south", "u0"}, {"M", "native", "south", "u1"},
      {"M", "native", "south", "u0"},  {"F", "foreign", "south", "u1"},
  };
  for (const auto& r : rows) {
    ASSERT_TRUE(t.AppendRowFromStrings({r[0], r[1], r[2], r[3]}).ok());
  }

  auto all_opts = AllCellsOptions();
  auto closed_opts = AllCellsOptions();
  closed_opts.mode = fpm::MineMode::kClosed;

  auto all_cube = BuildSegregationCube(t, all_opts);
  auto closed_cube = BuildSegregationCube(t, closed_opts);
  ASSERT_TRUE(all_cube.ok());
  ASSERT_TRUE(closed_cube.ok());
  EXPECT_LT(closed_cube->NumCells(), all_cube->NumCells());
  EXPECT_GT(closed_cube->NumCells(), 0u);
  // {gender=F} alone is not closed: absent in closed mode, present in all.
  const auto& cat = all_cube->catalog();
  fpm::ItemId female = cat.Find(0, "F");
  EXPECT_NE(all_cube->Find(fpm::Itemset({female}), fpm::Itemset()), nullptr);
  EXPECT_EQ(closed_cube->Find(fpm::Itemset({female}), fpm::Itemset()),
            nullptr);

  for (const CubeCell* cell : closed_cube->Cells()) {
    const CubeCell* same = all_cube->Find(cell->coords);
    ASSERT_NE(same, nullptr);
    EXPECT_EQ(cell->context_size, same->context_size);
    EXPECT_EQ(cell->minority_size, same->minority_size);
    if (cell->indexes.defined) {
      EXPECT_NEAR(cell->Value(indexes::IndexKind::kGini),
                  same->Value(indexes::IndexKind::kGini), 1e-12);
    }
  }
}

TEST(CubeBuilderTest, MinSupportPrunesRareCells) {
  Table t = SmallFinalTable();
  auto opts = AllCellsOptions();
  opts.min_support = 4;
  auto cube = BuildSegregationCube(t, opts);
  ASSERT_TRUE(cube.ok());
  for (const CubeCell* cell : cube->Cells()) {
    EXPECT_GE(cell->minority_size, 4u) << cube->LabelOf(cell->coords);
  }
}

TEST(CubeBuilderTest, MinSupportFractionApplies) {
  Table t = SmallFinalTable();
  auto opts = AllCellsOptions();
  opts.min_support = 1;
  opts.min_support_fraction = 0.5;  // 6 of 12 rows
  auto cube = BuildSegregationCube(t, opts);
  ASSERT_TRUE(cube.ok());
  for (const CubeCell* cell : cube->Cells()) {
    EXPECT_GE(cell->minority_size, 6u);
  }
}

TEST(CubeBuilderTest, CoordinateCapsRespected) {
  Table t = SmallFinalTable();
  auto opts = AllCellsOptions();
  opts.max_sa_items = 1;
  opts.max_ca_items = 1;
  auto cube = BuildSegregationCube(t, opts);
  ASSERT_TRUE(cube.ok());
  for (const CubeCell* cell : cube->Cells()) {
    EXPECT_LE(cell->coords.sa.size(), 1u);
    EXPECT_LE(cell->coords.ca.size(), 1u);
  }
}

TEST(CubeBuilderTest, StatsPopulated) {
  Table t = SmallFinalTable();
  CubeBuildStats stats;
  auto cube = BuildSegregationCube(t, AllCellsOptions(), &stats);
  ASSERT_TRUE(cube.ok());
  EXPECT_GT(stats.mined_itemsets, 0u);
  EXPECT_EQ(stats.cells_created, cube->NumCells());
  EXPECT_EQ(stats.cells_defined, cube->NumDefinedCells());
  EXPECT_GT(stats.contexts_memoized, 0u);
  EXPECT_GE(stats.seconds_mining, 0.0);
  EXPECT_GE(stats.seconds_grouping, 0.0);
  EXPECT_GE(stats.seconds_filling, 0.0);
  EXPECT_EQ(stats.threads_used, 1u);
}

TEST(CubeBuilderTest, AllMinerEnginesAgree) {
  Table t = SmallFinalTable();
  auto base = AllCellsOptions();
  auto reference = BuildSegregationCube(t, base);
  ASSERT_TRUE(reference.ok());
  for (const char* engine : {"eclat", "apriori", "brute-force"}) {
    auto opts = base;
    opts.miner = engine;
    auto cube = BuildSegregationCube(t, opts);
    ASSERT_TRUE(cube.ok()) << engine;
    EXPECT_EQ(cube->NumCells(), reference->NumCells()) << engine;
    for (const CubeCell* cell : reference->Cells()) {
      const CubeCell* other = cube->Find(cell->coords);
      ASSERT_NE(other, nullptr) << engine;
      EXPECT_EQ(other->minority_size, cell->minority_size) << engine;
    }
  }
}

TEST(CubeBuilderTest, UnknownMinerRejected) {
  Table t = SmallFinalTable();
  auto opts = AllCellsOptions();
  opts.miner = "quantum";
  EXPECT_EQ(BuildSegregationCube(t, opts).status().code(),
            StatusCode::kNotFound);
}

TEST(CubeBuilderTest, EmptyTableRejected) {
  Schema schema({
      {"gender", ColumnType::kCategorical, AttributeKind::kSegregation},
      {"unitID", ColumnType::kCategorical, AttributeKind::kUnit},
  });
  Table t(schema);
  EXPECT_EQ(BuildSegregationCube(t, AllCellsOptions()).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(CubeBuilderTest, MultiValuedContextCountsInEveryValue) {
  Schema schema({
      {"gender", ColumnType::kCategorical, AttributeKind::kSegregation},
      {"sector", ColumnType::kCategoricalSet, AttributeKind::kContext},
      {"unitID", ColumnType::kCategorical, AttributeKind::kUnit},
  });
  Table t(schema);
  ASSERT_TRUE(t.AppendRowFromStrings({"F", "{edu,agri}", "u0"}).ok());
  ASSERT_TRUE(t.AppendRowFromStrings({"M", "{edu}", "u0"}).ok());
  ASSERT_TRUE(t.AppendRowFromStrings({"F", "{agri}", "u1"}).ok());
  ASSERT_TRUE(t.AppendRowFromStrings({"M", "{agri}", "u1"}).ok());

  auto cube = BuildSegregationCube(t, AllCellsOptions());
  ASSERT_TRUE(cube.ok());
  const auto& cat = cube->catalog();
  fpm::ItemId female = cat.Find(0, "F");
  fpm::ItemId agri = cat.Find(1, "agri");
  ASSERT_NE(agri, fpm::kInvalidItem);

  // Context sector=agri covers rows 0, 2, 3 (row 0 via the set value).
  const CubeCell* cell =
      cube->Find(fpm::Itemset({female}), fpm::Itemset({agri}));
  ASSERT_NE(cell, nullptr);
  EXPECT_EQ(cell->context_size, 3u);
  EXPECT_EQ(cell->minority_size, 2u);
}

}  // namespace
}  // namespace cube
}  // namespace scube
