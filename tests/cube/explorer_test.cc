#include "cube/explorer.h"

#include <gtest/gtest.h>

#include "cube/builder.h"

namespace scube {
namespace cube {
namespace {

using relational::AttributeKind;
using relational::ColumnType;
using relational::Schema;
using relational::Table;

// Simpson-style fixture: units span regions. Per-unit gender mix is
// perfectly balanced overall (D = 0) but skewed within each region
// (D = 0.5): aggregation masks the segregation.
Table SimpsonTable() {
  Schema schema({
      {"gender", ColumnType::kCategorical, AttributeKind::kSegregation},
      {"region", ColumnType::kCategorical, AttributeKind::kContext},
      {"unitID", ColumnType::kCategorical, AttributeKind::kUnit},
  });
  Table t(schema);
  auto add = [&t](const char* g, const char* r, const char* u, int copies) {
    for (int i = 0; i < copies; ++i) {
      EXPECT_TRUE(t.AppendRowFromStrings({g, r, u}).ok());
    }
  };
  // u0 north: 3F 1M; u0 south: 1F 3M; u1 north: 1F 3M; u1 south: 3F 1M.
  add("F", "north", "u0", 3);
  add("M", "north", "u0", 1);
  add("F", "south", "u0", 1);
  add("M", "south", "u0", 3);
  add("F", "north", "u1", 1);
  add("M", "north", "u1", 3);
  add("F", "south", "u1", 3);
  add("M", "south", "u1", 1);
  return t;
}

CubeView BuildFixture() {
  CubeBuilderOptions opts;
  opts.min_support = 1;
  opts.mode = fpm::MineMode::kAll;
  opts.max_sa_items = 1;
  opts.max_ca_items = 1;
  auto cube = BuildSegregationCube(SimpsonTable(), opts);
  EXPECT_TRUE(cube.ok()) << cube.status();
  return std::move(cube).value().Seal();
}

ExplorerOptions LooseFilters() {
  ExplorerOptions opts;
  opts.min_context_size = 1;
  opts.min_minority_size = 1;
  return opts;
}

TEST(ExplorerTest, FixtureAnchors) {
  CubeView cube = BuildFixture();
  const auto& cat = cube.catalog();
  fpm::ItemId female = cat.Find(0, "F");
  fpm::ItemId north = cat.Find(1, "north");

  const CubeCell* global = cube.Find(fpm::Itemset({female}), fpm::Itemset());
  ASSERT_NE(global, nullptr);
  EXPECT_NEAR(global->Value(indexes::IndexKind::kDissimilarity), 0.0, 1e-9);

  const CubeCell* in_north =
      cube.Find(fpm::Itemset({female}), fpm::Itemset({north}));
  ASSERT_NE(in_north, nullptr);
  EXPECT_NEAR(in_north->Value(indexes::IndexKind::kDissimilarity), 0.5, 1e-9);
}

TEST(ExplorerTest, TopSegregatedContextsRanksRegionsFirst) {
  CubeView cube = BuildFixture();
  auto top = TopSegregatedContexts(cube, indexes::IndexKind::kDissimilarity,
                                   3, LooseFilters());
  ASSERT_GE(top.size(), 2u);
  // The two region-restricted cells (D = 0.5) outrank the global (D = 0).
  EXPECT_NEAR(top[0].value, 0.5, 1e-9);
  EXPECT_NEAR(top[1].value, 0.5, 1e-9);
  EXPECT_FALSE(top[0].cell->coords.ca.empty());
  // Ranked descending.
  for (size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(top[i - 1].value, top[i].value);
  }
}

TEST(ExplorerTest, FiltersExcludeSmallAndPureContextCells) {
  CubeView cube = BuildFixture();
  ExplorerOptions strict;
  strict.min_context_size = 1000;  // nothing passes
  auto none = TopSegregatedContexts(cube, indexes::IndexKind::kGini, 10,
                                    strict);
  EXPECT_TRUE(none.empty());

  // require_nonempty_sa keeps ⋆-subgroup cells out.
  auto loose = TopSegregatedContexts(cube, indexes::IndexKind::kGini, 100,
                                     LooseFilters());
  for (const RankedCell& rc : loose) {
    EXPECT_FALSE(rc.cell->coords.sa.empty());
  }
}

TEST(ExplorerTest, DrillDownSurprisesFindMaskedContexts) {
  CubeView cube = BuildFixture();
  auto surprises = DrillDownSurprises(
      cube, indexes::IndexKind::kDissimilarity, 0.3, LooseFilters());
  // (F|north) and (F|south) jump from parent D=0 to 0.5.
  ASSERT_GE(surprises.size(), 2u);
  EXPECT_NEAR(surprises[0].delta, 0.5, 1e-9);
  EXPECT_NEAR(surprises[0].best_parent_value, 0.0, 1e-9);
  // Sorted by delta descending.
  for (size_t i = 1; i < surprises.size(); ++i) {
    EXPECT_GE(surprises[i - 1].delta, surprises[i].delta);
  }
}

TEST(ExplorerTest, GranularityReversalDetectsSimpsonMasking) {
  CubeView cube = BuildFixture();
  auto reversals = FindGranularityReversals(
      cube, indexes::IndexKind::kDissimilarity, 0.3, LooseFilters());
  // Both minority readings (gender=F and gender=M) exhibit the masking.
  ASSERT_EQ(reversals.size(), 2u);
  for (const GranularityReversal& r : reversals) {
    EXPECT_TRUE(r.children_higher);
    EXPECT_NEAR(r.parent_value, 0.0, 1e-9);
    EXPECT_NEAR(r.min_child_value, 0.5, 1e-9);
    EXPECT_EQ(r.children.size(), 2u);
    EXPECT_TRUE(r.parent->coords.ca.empty());
    EXPECT_EQ(r.parent->coords.sa.size(), 1u);
  }
}

TEST(ExplorerTest, NoReversalWhenGapTooLarge) {
  CubeView cube = BuildFixture();
  auto reversals = FindGranularityReversals(
      cube, indexes::IndexKind::kDissimilarity, 0.9, LooseFilters());
  EXPECT_TRUE(reversals.empty());
}

TEST(ExplorerTest, PureContextCellsNeverServeAsSurpriseBaselines) {
  // Hand-built cube: the pure-context root is (unrealistically) flagged
  // defined. With require_nonempty_sa it must not serve as the roll-up
  // baseline for (sa={1} | ⋆) — pure-context cells carry no segregation
  // reading, so the cell has no usable parent and is not a surprise.
  auto make_cell = [](std::vector<fpm::ItemId> sa, std::vector<fpm::ItemId> ca,
                      uint64_t t, uint64_t m, double d) {
    CubeCell cell;
    cell.coords = CellCoordinates{fpm::Itemset(std::move(sa)),
                                  fpm::Itemset(std::move(ca))};
    cell.context_size = t;
    cell.minority_size = m;
    cell.num_units = 2;
    cell.indexes.defined = true;
    cell.indexes.values[static_cast<size_t>(
        indexes::IndexKind::kDissimilarity)] = d;
    return cell;
  };
  SegregationCube cube;
  cube.Insert(make_cell({}, {}, 100, 40, 0.0));  // corrupt defined root
  cube.Insert(make_cell({1}, {}, 100, 40, 0.4));
  CubeView view = std::move(cube).Seal();

  auto surprises = DrillDownSurprises(
      view, indexes::IndexKind::kDissimilarity, 0.1, LooseFilters());
  EXPECT_TRUE(surprises.empty());

  // Without the subgroup requirement the root is a legitimate baseline.
  ExplorerOptions allow_pure = LooseFilters();
  allow_pure.require_nonempty_sa = false;
  surprises = DrillDownSurprises(view, indexes::IndexKind::kDissimilarity,
                                 0.1, allow_pure);
  ASSERT_EQ(surprises.size(), 1u);
  EXPECT_NEAR(surprises[0].delta, 0.4, 1e-9);
}

TEST(ExplorerTest, TopKTruncates) {
  CubeView cube = BuildFixture();
  auto top1 = TopSegregatedContexts(cube, indexes::IndexKind::kDissimilarity,
                                    1, LooseFilters());
  EXPECT_EQ(top1.size(), 1u);
  // k = 0 asks for nothing, not everything.
  auto top0 = TopSegregatedContexts(cube, indexes::IndexKind::kDissimilarity,
                                    0, LooseFilters());
  EXPECT_TRUE(top0.empty());
}

}  // namespace
}  // namespace cube
}  // namespace scube
