// Property sweep: on randomized finalTables, every cell the builder
// materialises must match a naive recomputation (row filtering), for every
// mining mode, and closed-mode cells must be a value-preserving subset of
// all-mode cells.

#include <gtest/gtest.h>

#include <map>

#include "common/random.h"
#include "cube/builder.h"
#include "indexes/counts.h"

namespace scube {
namespace cube {
namespace {

using relational::AttributeKind;
using relational::ColumnType;
using relational::Schema;
using relational::Table;

struct SweepParams {
  uint64_t seed;
  size_t rows;
  size_t num_units;
  uint64_t min_support;
  bool multi_valued_context;
};

Table RandomTable(const SweepParams& p, Rng* rng) {
  Schema schema({
      {"g", ColumnType::kCategorical, AttributeKind::kSegregation},
      {"a", ColumnType::kCategorical, AttributeKind::kSegregation},
      {"r", ColumnType::kCategorical, AttributeKind::kContext},
      {"s", p.multi_valued_context ? ColumnType::kCategoricalSet
                                   : ColumnType::kCategorical,
       AttributeKind::kContext},
      {"unitID", ColumnType::kCategorical, AttributeKind::kUnit},
  });
  Table t(schema);
  const char* kG[] = {"F", "M"};
  const char* kA[] = {"y", "m", "e"};
  const char* kR[] = {"n", "s"};
  const char* kS[] = {"s0", "s1", "s2", "s3"};
  for (size_t i = 0; i < p.rows; ++i) {
    std::string sector;
    if (p.multi_valued_context) {
      sector = "{";
      size_t count = 1 + rng->NextBounded(2);
      for (size_t k = 0; k < count; ++k) {
        if (k > 0) sector += ",";
        sector += kS[rng->NextBounded(4)];
      }
      sector += "}";
    } else {
      sector = kS[rng->NextBounded(4)];
    }
    EXPECT_TRUE(t.AppendRowFromStrings(
                     {kG[rng->NextBounded(2)], kA[rng->NextBounded(3)],
                      kR[rng->NextBounded(2)], sector,
                      "u" + std::to_string(rng->NextBounded(p.num_units))})
                    .ok());
  }
  return t;
}

// Naive per-cell recomputation by scanning rows.
struct NaiveCell {
  uint64_t context_size = 0;
  uint64_t minority_size = 0;
  indexes::GroupDistribution dist;
};

NaiveCell NaiveCompute(const Table& t, const relational::ItemCatalog& cat,
                       const CellCoordinates& coords) {
  auto row_matches = [&](size_t row, const fpm::Itemset& items) {
    for (fpm::ItemId item : items.items()) {
      const auto& info = cat.info(item);
      const auto& spec = t.schema().attribute(info.attr_index);
      if (spec.type == ColumnType::kCategorical) {
        if (t.CategoricalValue(row, info.attr_index) != info.value) {
          return false;
        }
      } else {
        auto values = t.SetValues(row, info.attr_index);
        if (std::find(values.begin(), values.end(), info.value) ==
            values.end()) {
          return false;
        }
      }
    }
    return true;
  };
  int unit_col = t.schema().IndexOf("unitID");
  std::map<std::string, std::pair<uint64_t, uint64_t>> per_unit;
  NaiveCell out;
  for (size_t row = 0; row < t.NumRows(); ++row) {
    if (!row_matches(row, coords.ca)) continue;
    std::string unit = t.CategoricalValue(row, static_cast<size_t>(unit_col));
    ++out.context_size;
    ++per_unit[unit].first;
    if (row_matches(row, coords.sa)) {
      ++out.minority_size;
      ++per_unit[unit].second;
    }
  }
  for (const auto& [unit, tm] : per_unit) {
    out.dist.AddUnit(tm.first, tm.second);
  }
  return out;
}

class BuilderPropertyTest : public ::testing::TestWithParam<SweepParams> {};

TEST_P(BuilderPropertyTest, CellsMatchNaiveInEveryMode) {
  const SweepParams& p = GetParam();
  Rng rng(p.seed);
  Table t = RandomTable(p, &rng);

  for (fpm::MineMode mode :
       {fpm::MineMode::kAll, fpm::MineMode::kClosed}) {
    CubeBuilderOptions opts;
    opts.min_support = p.min_support;
    opts.mode = mode;
    opts.max_sa_items = 2;
    opts.max_ca_items = 2;
    auto cube = BuildSegregationCube(t, opts);
    ASSERT_TRUE(cube.ok()) << cube.status();
    EXPECT_GT(cube->NumCells(), 0u);

    for (const CubeCell* cell : cube->Cells()) {
      NaiveCell naive = NaiveCompute(t, cube->catalog(), cell->coords);
      ASSERT_EQ(cell->context_size, naive.context_size)
          << cube->LabelOf(cell->coords);
      ASSERT_EQ(cell->minority_size, naive.minority_size)
          << cube->LabelOf(cell->coords);
      ASSERT_EQ(cell->num_units, naive.dist.NumUnits());
      auto expected = indexes::ComputeAllIndexes(naive.dist);
      ASSERT_TRUE(expected.ok());
      ASSERT_EQ(cell->indexes.defined, expected->defined);
      if (cell->indexes.defined) {
        for (indexes::IndexKind kind : indexes::AllIndexKinds()) {
          ASSERT_NEAR(cell->Value(kind), (*expected)[kind], 1e-9)
              << cube->LabelOf(cell->coords) << " "
              << indexes::IndexKindToString(kind);
        }
      }
    }
  }
}

TEST_P(BuilderPropertyTest, ClosedCellsSubsetOfAllCells) {
  const SweepParams& p = GetParam();
  Rng rng(p.seed * 31337);
  Table t = RandomTable(p, &rng);

  CubeBuilderOptions all_opts;
  all_opts.min_support = p.min_support;
  all_opts.mode = fpm::MineMode::kAll;
  all_opts.max_sa_items = 2;
  all_opts.max_ca_items = 2;
  CubeBuilderOptions closed_opts = all_opts;
  closed_opts.mode = fpm::MineMode::kClosed;

  auto all_cube = BuildSegregationCube(t, all_opts);
  auto closed_cube = BuildSegregationCube(t, closed_opts);
  ASSERT_TRUE(all_cube.ok());
  ASSERT_TRUE(closed_cube.ok());
  EXPECT_LE(closed_cube->NumCells(), all_cube->NumCells());
  for (const CubeCell* cell : closed_cube->Cells()) {
    const CubeCell* twin = all_cube->Find(cell->coords);
    ASSERT_NE(twin, nullptr);
    EXPECT_EQ(cell->context_size, twin->context_size);
    EXPECT_EQ(cell->minority_size, twin->minority_size);
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomTables, BuilderPropertyTest,
    ::testing::Values(SweepParams{1, 60, 3, 2, false},
                      SweepParams{2, 100, 5, 3, false},
                      SweepParams{3, 40, 2, 1, false},
                      SweepParams{4, 80, 4, 2, true},   // set-valued CA
                      SweepParams{5, 120, 6, 5, true},
                      SweepParams{6, 50, 8, 2, false},  // many units
                      SweepParams{7, 30, 1, 1, false},  // single unit
                      SweepParams{8, 150, 4, 10, true}));

}  // namespace
}  // namespace cube
}  // namespace scube
