#include "query/cube_store.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace scube {
namespace query {
namespace {

cube::SegregationCube CubeWithCells(size_t n) {
  cube::SegregationCube cube;
  for (size_t i = 0; i < n; ++i) {
    cube::CubeCell cell;
    cell.coords = cube::CellCoordinates{
        fpm::Itemset({static_cast<fpm::ItemId>(i)}), fpm::Itemset()};
    cell.context_size = 10;
    cell.minority_size = 2;
    cube.Insert(std::move(cell));
  }
  return cube;
}

TEST(CubeStoreTest, PublishGetVersion) {
  CubeStore store;
  EXPECT_EQ(store.Get("italy"), nullptr);
  EXPECT_EQ(store.Version("italy"), 0u);

  EXPECT_EQ(store.Publish("italy", CubeWithCells(3)), 1u);
  EXPECT_EQ(store.Publish("estonia", CubeWithCells(5)), 1u);
  EXPECT_EQ(store.Publish("italy", CubeWithCells(4)), 2u);

  uint64_t version = 0;
  auto italy = store.Get("italy", &version);
  ASSERT_NE(italy, nullptr);
  EXPECT_EQ(version, 2u);
  EXPECT_EQ(italy->NumCells(), 4u);
  EXPECT_EQ(store.Names(), (std::vector<std::string>{"estonia", "italy"}));
}

TEST(CubeStoreTest, ParallelSealPublishMatchesSequential) {
  CubeStore store;
  store.Publish("seq", CubeWithCells(64), /*num_threads=*/1);
  store.Publish("par", CubeWithCells(64), /*num_threads=*/4);
  auto seq = store.Get("seq");
  auto par = store.Get("par");
  ASSERT_NE(seq, nullptr);
  ASSERT_NE(par, nullptr);
  ASSERT_EQ(seq->NumCells(), par->NumCells());
  for (size_t i = 0; i < seq->NumCells(); ++i) {
    auto id = static_cast<cube::CubeView::CellId>(i);
    EXPECT_EQ(seq->cell(id).coords, par->cell(id).coords);
    fpm::ItemId item = static_cast<fpm::ItemId>(i);
    auto sp = seq->SaPostings(item);
    auto pp = par->SaPostings(item);
    EXPECT_TRUE(std::equal(sp.begin(), sp.end(), pp.begin(), pp.end()));
  }
}

TEST(CubeStoreTest, GetVersionServesRetainedVersionsOnly) {
  CubeStore store(/*max_versions=*/2);
  store.Publish("c", CubeWithCells(3));  // v1
  store.Publish("c", CubeWithCells(4));  // v2
  store.Publish("c", CubeWithCells(5));  // v3 -> v1 evicted

  EXPECT_EQ(store.RetainedVersions("c"), (std::vector<uint64_t>{2, 3}));
  EXPECT_EQ(store.GetVersion("c", 1), nullptr);  // evicted
  ASSERT_NE(store.GetVersion("c", 2), nullptr);
  EXPECT_EQ(store.GetVersion("c", 2)->NumCells(), 4u);
  ASSERT_NE(store.GetVersion("c", 3), nullptr);
  EXPECT_EQ(store.GetVersion("c", 3)->NumCells(), 5u);
  EXPECT_EQ(store.GetVersion("c", 4), nullptr);   // never published
  EXPECT_EQ(store.GetVersion("d", 1), nullptr);   // unknown cube
  EXPECT_TRUE(store.RetainedVersions("d").empty());

  // The latest snapshot is unaffected by eviction of older versions.
  uint64_t version = 0;
  ASSERT_NE(store.Get("c", &version), nullptr);
  EXPECT_EQ(version, 3u);
}

TEST(CubeStoreTest, EvictedSnapshotsStayAliveForHolders) {
  CubeStore store(/*max_versions=*/1);
  store.Publish("c", CubeWithCells(3));
  CubeStore::Snapshot held = store.GetVersion("c", 1);
  ASSERT_NE(held, nullptr);
  store.Publish("c", CubeWithCells(9));  // evicts v1 from the store
  EXPECT_EQ(store.GetVersion("c", 1), nullptr);
  EXPECT_EQ(held->NumCells(), 3u);  // reader's snapshot is untouched
}

TEST(CubeStoreTest, SnapshotsSurvivePublishes) {
  CubeStore store;
  store.Publish("c", CubeWithCells(3));
  CubeStore::Snapshot old_snapshot = store.Get("c");
  ASSERT_NE(old_snapshot, nullptr);

  // A new publish must not disturb readers holding the old snapshot.
  store.Publish("c", CubeWithCells(8));
  EXPECT_EQ(old_snapshot->NumCells(), 3u);
  EXPECT_EQ(store.Get("c")->NumCells(), 8u);
  EXPECT_EQ(store.Version("c"), 2u);
}

TEST(CubeStoreTest, PublishPipelineResultMovesCubeIn) {
  CubeStore store;
  pipeline::PipelineResult result;
  result.cube = CubeWithCells(6);
  EXPECT_EQ(PublishPipelineResult(&store, "run", std::move(result)), 1u);
  ASSERT_NE(store.Get("run"), nullptr);
  EXPECT_EQ(store.Get("run")->NumCells(), 6u);
}

QueryResult ResultWithRows(size_t n) {
  QueryResult result;
  result.rows.resize(n);
  return result;
}

TEST(ResultCacheTest, HitMissAndVersionKeying) {
  ResultCache cache(4);
  EXPECT_FALSE(cache.Get("c", 1, "TOPK 5 BY gini").has_value());
  cache.Put("c", 1, "TOPK 5 BY gini", ResultWithRows(2));

  auto hit = cache.Get("c", 1, "TOPK 5 BY gini");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->rows.size(), 2u);

  // A new cube version or another cube never serves the stale entry.
  EXPECT_FALSE(cache.Get("c", 2, "TOPK 5 BY gini").has_value());
  EXPECT_FALSE(cache.Get("d", 1, "TOPK 5 BY gini").has_value());

  auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 3u);
}

TEST(ResultCacheTest, LruEviction) {
  ResultCache cache(2);
  cache.Put("c", 1, "a", ResultWithRows(1));
  cache.Put("c", 1, "b", ResultWithRows(2));

  // Touch "a" so "b" becomes the least recently used entry.
  EXPECT_TRUE(cache.Get("c", 1, "a").has_value());
  cache.Put("c", 1, "x", ResultWithRows(3));

  EXPECT_EQ(cache.size(), 2u);
  EXPECT_TRUE(cache.Get("c", 1, "a").has_value());
  EXPECT_FALSE(cache.Get("c", 1, "b").has_value());  // evicted
  EXPECT_TRUE(cache.Get("c", 1, "x").has_value());
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(ResultCacheTest, PutRefreshesExistingEntry) {
  ResultCache cache(2);
  cache.Put("c", 1, "a", ResultWithRows(1));
  cache.Put("c", 1, "b", ResultWithRows(2));
  // Re-putting "a" refreshes both payload and recency; inserting a third
  // entry then evicts "b".
  cache.Put("c", 1, "a", ResultWithRows(9));
  cache.Put("c", 1, "x", ResultWithRows(3));

  auto a = cache.Get("c", 1, "a");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->rows.size(), 9u);
  EXPECT_FALSE(cache.Get("c", 1, "b").has_value());
}

TEST(ResultCacheTest, ZeroCapacityDisablesCaching) {
  ResultCache cache(0);
  cache.Put("c", 1, "a", ResultWithRows(1));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Get("c", 1, "a").has_value());
}

TEST(ResultCacheTest, ClearEmptiesEntries) {
  ResultCache cache(4);
  cache.Put("c", 1, "a", ResultWithRows(1));
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Get("c", 1, "a").has_value());
}

}  // namespace
}  // namespace query
}  // namespace scube
