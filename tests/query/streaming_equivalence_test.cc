// Streaming-vs-materialised equivalence: for every verb, the bytes a
// JsonWriter/CsvWriter produce over the streaming path must equal
// ToJson/ToCsv of the materialised answer — across all four combinations
// of {cold execution, cache replay} x {streamed, batch}. Cursor-resumed
// pages must stitch back into exactly the unpaginated answer.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "query/cube_store.h"
#include "query/row_sink.h"
#include "query/service.h"

namespace scube {
namespace query {
namespace {

// The executor_test fixture, build-side: items
//   sex=F (SA, id 0), age=young (SA, id 1),
//   region=north (CA, id 2), region=south (CA, id 3).
cube::CubeCell MakeCell(std::vector<fpm::ItemId> sa,
                        std::vector<fpm::ItemId> ca, uint64_t t, uint64_t m,
                        double dissimilarity, bool defined = true) {
  cube::CubeCell cell;
  cell.coords = cube::CellCoordinates{fpm::Itemset(std::move(sa)),
                                      fpm::Itemset(std::move(ca))};
  cell.context_size = t;
  cell.minority_size = m;
  cell.num_units = 2;
  cell.indexes.defined = defined;
  cell.indexes.values[static_cast<size_t>(
      indexes::IndexKind::kDissimilarity)] = dissimilarity;
  cell.indexes.values[static_cast<size_t>(indexes::IndexKind::kGini)] =
      dissimilarity / 2;
  return cell;
}

cube::SegregationCube MakeCube() {
  relational::ItemCatalog catalog;
  using relational::AttributeKind;
  catalog.GetOrAdd(0, "sex", "F", AttributeKind::kSegregation);      // id 0
  catalog.GetOrAdd(1, "age", "young", AttributeKind::kSegregation);  // id 1
  catalog.GetOrAdd(2, "region", "north", AttributeKind::kContext);   // id 2
  catalog.GetOrAdd(3, "region", "south", AttributeKind::kContext);   // id 3

  cube::SegregationCube cube(std::move(catalog), {"u0", "u1"});
  cube.Insert(MakeCell({}, {}, 100, 0, 0.0, /*defined=*/false));  // root
  cube.Insert(MakeCell({0}, {}, 100, 40, 0.10));       // F | *
  cube.Insert(MakeCell({1}, {}, 100, 30, 0.05));       // young | *
  cube.Insert(MakeCell({0, 1}, {}, 100, 12, 0.30));    // F & young | *
  cube.Insert(MakeCell({}, {2}, 60, 0, 0.0, false));   // * | north
  cube.Insert(MakeCell({0}, {2}, 60, 25, 0.50));       // F | north
  cube.Insert(MakeCell({0}, {3}, 40, 15, 0.20));       // F | south
  cube.Insert(MakeCell({1}, {2}, 60, 18, 0.15));       // young | north
  cube.Insert(MakeCell({0, 1}, {2}, 60, 8, 0.70));     // F & young | north
  return cube;
}

/// Every verb, plus ORDER BY / WHERE / LIMIT / OFFSET shapes.
const std::vector<std::string>& AllVerbTexts() {
  static const std::vector<std::string> texts = {
      "SLICE sa=sex=F",
      "SLICE sa=sex=F | ca=region=north",
      "SLICE ca=region=north",
      "DICE sa=sex=F",
      "DICE sa=sex=F WHERE T >= 50 AND M >= 20",
      "ROLLUP sa=sex=F & age=young | ca=region=north",
      "DRILLDOWN sa=sex=F",
      "DRILLDOWN",
      "TOPK 3 BY dissimilarity WHERE T >= 1 AND M >= 1",
      "TOPK 5 BY gini WHERE T >= 1 AND M >= 1 ORDER BY T DESC",
      "SURPRISES BY dissimilarity MINDELTA 0.05",
      "REVERSALS MINGAP 0.05",
      "DICE sa=sex=F ORDER BY dissimilarity ASC",
      "DICE sa=sex=F LIMIT 2",
      "DICE sa=sex=F LIMIT 2 OFFSET 1",
      "DICE sa=sex=F ORDER BY T DESC LIMIT 2",
      "SLICE sa=sex=F LIMIT 10",  // limit beyond the stream: exhausted
  };
  return texts;
}

std::string StreamJson(QueryService* service, const std::string& text,
                       QueryService::StreamOutcome* outcome = nullptr,
                       const std::string& cursor = "") {
  std::string out;
  JsonWriter writer([&out](std::string_view chunk) {
    out.append(chunk);
    return true;
  });
  auto result = service->ExecuteStreaming(text, writer, {}, cursor);
  EXPECT_TRUE(result.status.ok()) << text << " -> " << result.status;
  if (outcome != nullptr) *outcome = result;
  return out;
}

std::string StreamCsv(QueryService* service, const std::string& text) {
  std::string out;
  CsvWriter writer([&out](std::string_view chunk) {
    out.append(chunk);
    return true;
  });
  auto result = service->ExecuteStreaming(text, writer);
  EXPECT_TRUE(result.status.ok()) << text << " -> " << result.status;
  return out;
}

class StreamingEquivalenceTest : public ::testing::Test {
 protected:
  StreamingEquivalenceTest() {
    store_.Publish("default", MakeCube());
    service_ = std::make_unique<QueryService>(&store_, ServiceOptions{});
  }

  CubeStore store_;
  std::unique_ptr<QueryService> service_;
};

TEST_F(StreamingEquivalenceTest, EveryVerbStreamsByteIdentical) {
  for (const std::string& text : AllVerbTexts()) {
    // Cold streamed execution (fills the cache through the tee)...
    std::string streamed_json = StreamJson(service_.get(), text);
    // ...then the batch path answers from the cache: same bytes.
    auto cached = service_->ExecuteOne(text);
    ASSERT_TRUE(cached.status.ok()) << text << " -> " << cached.status;
    EXPECT_TRUE(cached.cache_hit) << text;
    EXPECT_EQ(ToJson(cached.result), streamed_json) << text;

    // Cold batch execution (no cache)...
    service_->ClearCache();
    auto cold = service_->ExecuteOne(text);
    ASSERT_TRUE(cold.status.ok()) << text;
    EXPECT_FALSE(cold.cache_hit) << text;
    EXPECT_EQ(ToJson(cold.result), streamed_json) << text;

    // ...and a streamed cache replay of the batch-path entry: same bytes.
    std::string replayed_json = StreamJson(service_.get(), text);
    EXPECT_EQ(replayed_json, streamed_json) << text;

    // CSV: streamed vs materialised.
    std::string streamed_csv = StreamCsv(service_.get(), text);
    EXPECT_EQ(streamed_csv, ToCsv(cold.result)) << text;
    service_->ClearCache();
  }
}

TEST_F(StreamingEquivalenceTest, CursorPaginationStitchesToUnpaginated) {
  const std::vector<std::string> streams = {
      "DICE sa=sex=F",
      "DICE sa=sex=F ORDER BY dissimilarity DESC",
      "TOPK 5 BY dissimilarity WHERE T >= 1 AND M >= 1",
      "SURPRISES BY dissimilarity MINDELTA 0.01",
  };
  for (const std::string& base : streams) {
    auto unpaginated = service_->ExecuteOne(base);
    ASSERT_TRUE(unpaginated.status.ok()) << base;
    ASSERT_GT(unpaginated.result.rows.size(), 2u) << base;
    EXPECT_TRUE(unpaginated.result.exhausted) << base;
    EXPECT_TRUE(unpaginated.result.next_cursor.empty()) << base;

    // Page through with LIMIT 2 + cursor resumption.
    const std::string paged_text = base + " LIMIT 2";
    std::vector<ResultRow> stitched;
    std::string cursor;
    size_t pages = 0;
    do {
      VectorSink sink;
      auto outcome =
          service_->ExecuteStreaming(paged_text, sink, {}, cursor);
      ASSERT_TRUE(outcome.status.ok()) << paged_text;
      for (const ResultRow& row : sink.result().rows) {
        stitched.push_back(row);
      }
      cursor = outcome.next_cursor;
      ASSERT_LT(++pages, 32u) << "cursor loop did not terminate: " << base;
    } while (!cursor.empty());

    ASSERT_EQ(stitched.size(), unpaginated.result.rows.size()) << base;
    for (size_t i = 0; i < stitched.size(); ++i) {
      EXPECT_EQ(stitched[i].sa, unpaginated.result.rows[i].sa) << base;
      EXPECT_EQ(stitched[i].ca, unpaginated.result.rows[i].ca) << base;
      EXPECT_EQ(stitched[i].t, unpaginated.result.rows[i].t) << base;
      EXPECT_EQ(stitched[i].m, unpaginated.result.rows[i].m) << base;
    }
  }
}

TEST_F(StreamingEquivalenceTest, CursorPinsTheSnapshotAcrossPublishes) {
  auto page1 = service_->ExecuteOne("DICE sa=sex=F LIMIT 2");
  ASSERT_TRUE(page1.status.ok());
  ASSERT_FALSE(page1.result.next_cursor.empty());
  ASSERT_EQ(page1.cube_version, 1u);

  // A publish between pages must not change what the cursor resumes.
  store_.Publish("default", MakeCube());  // v2

  VectorSink sink;
  auto page2 = service_->ExecuteStreaming("DICE sa=sex=F LIMIT 2", sink, {},
                                          page1.result.next_cursor);
  ASSERT_TRUE(page2.status.ok()) << page2.status;
  EXPECT_EQ(page2.cube_version, 1u);  // pinned to the page-1 snapshot

  // A fresh (cursor-less) request targets the new latest version.
  auto fresh = service_->ExecuteOne("DICE sa=sex=F LIMIT 2");
  EXPECT_EQ(fresh.cube_version, 2u);
}

TEST_F(StreamingEquivalenceTest, CursorToEvictedVersionIsNotFound) {
  CubeStore small(/*max_versions=*/1);
  small.Publish("default", MakeCube());
  QueryService service(&small, ServiceOptions{});

  auto page1 = service.ExecuteOne("DICE sa=sex=F LIMIT 2");
  ASSERT_TRUE(page1.status.ok());
  ASSERT_FALSE(page1.result.next_cursor.empty());

  small.Publish("default", MakeCube());  // evicts v1
  VectorSink sink;
  auto page2 = service.ExecuteStreaming("DICE sa=sex=F LIMIT 2", sink, {},
                                        page1.result.next_cursor);
  EXPECT_EQ(page2.status.code(), StatusCode::kNotFound);
  EXPECT_FALSE(page2.begun);
}

TEST_F(StreamingEquivalenceTest, CursorCubeMismatchRejected) {
  auto page1 = service_->ExecuteOne("DICE sa=sex=F LIMIT 2");
  ASSERT_FALSE(page1.result.next_cursor.empty());
  VectorSink sink;
  auto mismatch = service_->ExecuteStreaming(
      "DICE sa=sex=F FROM other LIMIT 2", sink, {}, page1.result.next_cursor);
  EXPECT_EQ(mismatch.status.code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(mismatch.begun);
}

TEST_F(StreamingEquivalenceTest, CursorQueryMismatchRejected) {
  auto page1 = service_->ExecuteOne("DICE sa=sex=F LIMIT 2");
  ASSERT_FALSE(page1.result.next_cursor.empty());

  // A different statement must not be offset into by someone else's
  // cursor — that would silently return rows of neither query.
  VectorSink sink;
  auto wrong = service_->ExecuteStreaming(
      "TOPK 5 BY dissimilarity WHERE T >= 1 AND M >= 1 LIMIT 2", sink, {},
      page1.result.next_cursor);
  EXPECT_EQ(wrong.status.code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(wrong.begun);

  // Changing only the page size is allowed: same stream, bigger pages.
  VectorSink resized;
  auto ok = service_->ExecuteStreaming("DICE sa=sex=F LIMIT 3", resized, {},
                                       page1.result.next_cursor);
  EXPECT_TRUE(ok.status.ok()) << ok.status;
  EXPECT_EQ(resized.result().rows.size(), 3u);  // rows 2..4 of 5
}

TEST_F(StreamingEquivalenceTest, LimitPushdownBoundsTheWalk) {
  auto full = service_->ExecuteOne("SLICE sa=sex=F");
  service_->ClearCache();
  auto paged = service_->ExecuteOne("SLICE sa=sex=F LIMIT 1");
  ASSERT_TRUE(full.status.ok());
  ASSERT_TRUE(paged.status.ok());
  ASSERT_EQ(full.result.rows.size(), 3u);
  ASSERT_EQ(paged.result.rows.size(), 1u);
  // The paged walk stops as soon as the page (plus its one-row
  // exhaustion probe) is served: fewer cells inspected than the full walk.
  EXPECT_LT(paged.result.cells_scanned, full.result.cells_scanned);
  EXPECT_FALSE(paged.result.exhausted);
  // An ORDER BY forbids pushdown (the sort needs every row).
  service_->ClearCache();
  auto ordered = service_->ExecuteOne("SLICE sa=sex=F ORDER BY T DESC LIMIT 1");
  EXPECT_EQ(ordered.result.cells_scanned, full.result.cells_scanned);
}

TEST_F(StreamingEquivalenceTest, ExpiredDeadlineFailsBeforeAnyOutput) {
  std::string out;
  JsonWriter writer([&out](std::string_view chunk) {
    out.append(chunk);
    return true;
  });
  auto outcome = service_->ExecuteStreaming(
      "DICE sa=sex=F", writer, QueryContext::WithTimeout(-1));
  EXPECT_EQ(outcome.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_FALSE(outcome.begun);
  EXPECT_TRUE(out.empty());
}

TEST_F(StreamingEquivalenceTest, AdmissionShedsStreamsToo) {
  ServiceOptions options;
  options.max_pending = 0;  // shed everything
  QueryService service(&store_, options);
  VectorSink sink;
  auto outcome = service.ExecuteStreaming("DICE sa=sex=F", sink);
  EXPECT_EQ(outcome.status.code(), StatusCode::kUnavailable);
  EXPECT_FALSE(outcome.begun);
}

TEST_F(StreamingEquivalenceTest, AbortedCacheReplayIssuesNoCursor) {
  // Seed the cache with a paginated answer (more pages exist)...
  auto seeded = service_->ExecuteOne("DICE sa=sex=F LIMIT 2");
  ASSERT_FALSE(seeded.result.next_cursor.empty());

  // ...then replay it into a sink that aborts after one row (client
  // gone). An aborted stream must not advertise a resume cursor — on the
  // cache-hit path exactly as on the live path.
  struct OneRowSink : RowSink {
    bool Begin(const ResultHeader&) override { return true; }
    bool Row(const ResultRow&) override { return false; }
    void Finish(const ResultTrailer& trailer) override {
      final_trailer = trailer;
    }
    ResultTrailer final_trailer;
  } sink;
  auto replay = service_->ExecuteStreaming("DICE sa=sex=F LIMIT 2", sink);
  ASSERT_TRUE(replay.status.ok());
  EXPECT_TRUE(replay.cache_hit);
  EXPECT_TRUE(replay.next_cursor.empty());
  EXPECT_TRUE(sink.final_trailer.next_cursor.empty());
  EXPECT_EQ(replay.rows, 0u);
}

TEST_F(StreamingEquivalenceTest, InFlightStreamsOccupyAdmissionSlots) {
  ServiceOptions options;
  options.max_pending = 1;
  options.cache_capacity = 0;
  QueryService service(&store_, options);

  // A sink that tries to start a second stream mid-row: the outer stream
  // holds the only admission slot, so the nested one must shed — a
  // streaming-only overload is not invisible to admission control.
  struct NestedSink : RowSink {
    QueryService* service = nullptr;
    Status nested_status;
    bool Begin(const ResultHeader&) override { return true; }
    bool Row(const ResultRow&) override {
      VectorSink inner;
      nested_status =
          service->ExecuteStreaming("SLICE sa=sex=F", inner).status;
      return true;
    }
    void Finish(const ResultTrailer&) override {}
  } sink;
  sink.service = &service;

  auto outer = service.ExecuteStreaming("DICE sa=sex=F", sink);
  EXPECT_TRUE(outer.status.ok()) << outer.status;
  EXPECT_EQ(sink.nested_status.code(), StatusCode::kUnavailable);

  // The slot frees once the stream finishes.
  VectorSink after;
  EXPECT_TRUE(service.ExecuteStreaming("SLICE sa=sex=F", after).status.ok());
}

TEST_F(StreamingEquivalenceTest, OversizedStreamsBypassTheCache) {
  ServiceOptions options;
  options.cache_max_rows = 2;  // DICE sa=sex=F yields 5 rows
  QueryService service(&store_, options);
  VectorSink first;
  auto a = service.ExecuteStreaming("DICE sa=sex=F", first);
  ASSERT_TRUE(a.status.ok());
  EXPECT_EQ(first.result().rows.size(), 5u);  // the client still gets all
  VectorSink second;
  auto b = service.ExecuteStreaming("DICE sa=sex=F", second);
  EXPECT_FALSE(b.cache_hit);  // too large to have been cached
  EXPECT_EQ(service.cache_stats().hits, 0u);

  // A small answer does get cached by the tee.
  VectorSink small;
  service.ExecuteStreaming("SLICE sa=sex=F | ca=region=north", small);
  VectorSink replay;
  auto hit = service.ExecuteStreaming("SLICE sa=sex=F | ca=region=north",
                                      replay);
  EXPECT_TRUE(hit.cache_hit);
}

}  // namespace
}  // namespace query
}  // namespace scube
