// The shard wire format must survive a full round trip bit-exactly:
// whatever a shard's WireWriter emits, the router's ParseWireLine must
// reconstruct — labels with embedded separators, doubles down to the NaN
// payload, raw merge-key bytes — because the router re-renders rows
// through the same writers a single node uses and any drift breaks
// byte-identity. Plus the merge-key ordering contracts the k-way merge
// stands on.

#include "query/wire_format.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "cube/cell.h"
#include "query/merge_key.h"

namespace scube {
namespace query {
namespace {

uint64_t Bits(double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

/// Runs the writer over one (header, rows, trailer) answer and returns
/// the emitted lines (trailing newlines stripped).
std::vector<std::string> EmitLines(const ResultHeader& header,
                                   const std::vector<ResultRow>& rows,
                                   const ResultTrailer& trailer) {
  std::string out;
  WireWriter writer([&out](std::string_view chunk) {
    out.append(chunk);
    return true;
  });
  EXPECT_TRUE(writer.Begin(header));
  for (const ResultRow& row : rows) EXPECT_TRUE(writer.Row(row));
  writer.Finish(trailer);

  std::vector<std::string> lines;
  size_t start = 0;
  while (start < out.size()) {
    size_t nl = out.find('\n', start);
    EXPECT_NE(nl, std::string::npos) << "unterminated wire line";
    lines.push_back(out.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

TEST(WireFormatTest, HeaderRoundTripsWithHostileNames) {
  ResultHeader header;
  header.verb = Verb::kReversals;
  header.by = indexes::IndexKind::kAtkinson;
  header.has_value = true;
  header.has_aux = true;
  header.has_aux2 = true;
  header.has_tag = true;
  header.aux_name = "child\tvalue";       // embedded tab
  header.aux2_name = "n\\children";       // embedded backslash
  header.tag_name = "status\r\nline";     // embedded CR/LF

  auto lines = EmitLines(header, {}, {});
  ASSERT_GE(lines.size(), 1u);
  auto event = ParseWireLine(lines[0]);
  ASSERT_TRUE(event.ok()) << event.status();
  ASSERT_EQ(event->kind, WireEvent::Kind::kHeader);
  EXPECT_EQ(event->header.verb, Verb::kReversals);
  EXPECT_EQ(event->header.by, indexes::IndexKind::kAtkinson);
  EXPECT_TRUE(event->header.has_value);
  EXPECT_TRUE(event->header.has_aux);
  EXPECT_TRUE(event->header.has_aux2);
  EXPECT_TRUE(event->header.has_tag);
  EXPECT_EQ(event->header.aux_name, "child\tvalue");
  EXPECT_EQ(event->header.aux2_name, "n\\children");
  EXPECT_EQ(event->header.tag_name, "status\r\nline");
}

TEST(WireFormatTest, RowRoundTripsBitExact) {
  ResultRow row;
  row.sa = "sex=F & age\t18-25";   // tab inside a label
  row.ca = "prov\\ince=V\nR";      // backslash and newline
  row.t = 123456789;
  row.m = 42;
  row.units = 7;
  row.defined = true;
  const double hostile[] = {
      0.0,
      -0.0,
      1.0 / 3.0,
      std::numeric_limits<double>::infinity(),
      -std::numeric_limits<double>::infinity(),
      std::numeric_limits<double>::denorm_min(),
  };
  for (size_t i = 0; i < indexes::kNumIndexKinds; ++i) {
    row.indexes[i] = hostile[i % (sizeof(hostile) / sizeof(hostile[0]))];
  }
  row.value = std::nan("");  // NaN payload must survive too
  row.aux = -0.0;
  row.aux2 = 6.02214076e23;
  row.tag = "masked\ttag";
  // Raw merge-key bytes, including NUL and high bytes.
  row.skey = std::string("\x00\x01\x7f\xff\t\n\\", 7);

  ResultHeader header;
  header.has_value = true;
  header.has_aux = true;
  header.has_aux2 = true;
  header.has_tag = true;

  auto lines = EmitLines(header, {row}, {});
  ASSERT_GE(lines.size(), 2u);
  auto event = ParseWireLine(lines[1]);
  ASSERT_TRUE(event.ok()) << event.status();
  ASSERT_EQ(event->kind, WireEvent::Kind::kRow);
  const ResultRow& parsed = event->row;
  EXPECT_EQ(parsed.sa, row.sa);
  EXPECT_EQ(parsed.ca, row.ca);
  EXPECT_EQ(parsed.t, row.t);
  EXPECT_EQ(parsed.m, row.m);
  EXPECT_EQ(parsed.units, row.units);
  EXPECT_EQ(parsed.defined, row.defined);
  for (size_t i = 0; i < indexes::kNumIndexKinds; ++i) {
    EXPECT_EQ(Bits(parsed.indexes[i]), Bits(row.indexes[i])) << "index " << i;
  }
  EXPECT_EQ(Bits(parsed.value), Bits(row.value)) << "NaN payload drifted";
  EXPECT_EQ(Bits(parsed.aux), Bits(row.aux)) << "-0.0 must stay negative";
  EXPECT_EQ(Bits(parsed.aux2), Bits(row.aux2));
  EXPECT_EQ(parsed.tag, row.tag);
  EXPECT_EQ(parsed.skey, row.skey) << "merge-key bytes must round-trip";
}

TEST(WireFormatTest, TrailerRoundTripsWithAndWithoutCursor) {
  ResultTrailer with_cursor;
  with_cursor.cells_scanned = 987654;
  with_cursor.next_cursor = "c2N4MX...|token";
  auto lines = EmitLines({}, {}, with_cursor);
  ASSERT_GE(lines.size(), 2u);
  auto event = ParseWireLine(lines.back());
  ASSERT_TRUE(event.ok()) << event.status();
  ASSERT_EQ(event->kind, WireEvent::Kind::kTrailer);
  EXPECT_EQ(event->cells_scanned, 987654u);
  EXPECT_EQ(event->next_cursor, "c2N4MX...|token");

  auto plain_lines = EmitLines({}, {}, {});
  auto plain = ParseWireLine(plain_lines.back());
  ASSERT_TRUE(plain.ok());
  ASSERT_EQ(plain->kind, WireEvent::Kind::kTrailer);
  EXPECT_EQ(plain->cells_scanned, 0u);
  EXPECT_TRUE(plain->next_cursor.empty());
}

TEST(WireFormatTest, StatusLineRoundTrips) {
  std::string line = WireStatusLine(StatusCode::kNotFound,
                                    "no cube\tnamed 'x'\nretry", 17,
                                    /*cache_hit=*/true, /*rows=*/359);
  ASSERT_FALSE(line.empty());
  ASSERT_EQ(line.back(), '\n');
  line.pop_back();
  auto event = ParseWireLine(line);
  ASSERT_TRUE(event.ok()) << event.status();
  ASSERT_EQ(event->kind, WireEvent::Kind::kStatus);
  EXPECT_EQ(event->code, StatusCode::kNotFound);
  EXPECT_EQ(event->message, "no cube\tnamed 'x'\nretry");
  EXPECT_EQ(event->version, 17u);
  EXPECT_TRUE(event->cache_hit);
  EXPECT_EQ(event->rows, 359u);

  std::string ok = WireStatusLine(StatusCode::kOk, "", 1, false, 0);
  ok.pop_back();
  auto ok_event = ParseWireLine(ok);
  ASSERT_TRUE(ok_event.ok());
  EXPECT_EQ(ok_event->code, StatusCode::kOk);
  EXPECT_TRUE(ok_event->message.empty());
  EXPECT_FALSE(ok_event->cache_hit);
}

TEST(WireFormatTest, MalformedLinesAreParseErrors) {
  for (const char* bad : {
           "",                 // empty
           "X\tnope",          // unknown event kind
           "R\tonly\ttwo",     // truncated row
           "H\t999",           // truncated header
           "T\tnot-a-number\t",
           "S\t12345\tmsg\t1\t0\t0",  // out-of-range status code
       }) {
    auto event = ParseWireLine(bad);
    EXPECT_FALSE(event.ok()) << "accepted malformed line: " << bad;
  }
}

TEST(WireFormatTest, WireDoubleIsTheRawBitPattern) {
  EXPECT_EQ(WireDouble(1.0), "3ff0000000000000");
  EXPECT_EQ(WireDouble(0.0), "0000000000000000");
  EXPECT_EQ(WireDouble(-0.0), "8000000000000000");
}

// --- merge-key ordering contracts ------------------------------------

TEST(MergeKeyTest, DoubleKeyOrderMatchesNumericOrder) {
  const double sorted[] = {
      -std::numeric_limits<double>::infinity(), -1e300, -2.5, -1e-300,
      0.0, 1e-300, 0.5, 1.0, 3.14159, 1e300,
      std::numeric_limits<double>::infinity()};
  const size_t n = sizeof(sorted) / sizeof(sorted[0]);
  for (size_t i = 0; i + 1 < n; ++i) {
    std::string lo, hi;
    AppendDoubleKey(sorted[i], /*descending=*/false, &lo);
    AppendDoubleKey(sorted[i + 1], /*descending=*/false, &hi);
    EXPECT_LT(lo, hi) << sorted[i] << " vs " << sorted[i + 1];

    std::string lo_desc, hi_desc;
    AppendDoubleKey(sorted[i], /*descending=*/true, &lo_desc);
    AppendDoubleKey(sorted[i + 1], /*descending=*/true, &hi_desc);
    EXPECT_GT(lo_desc, hi_desc) << "descending must invert the order";
  }
  // -0.0 and +0.0 compare equal, so their keys must be identical — two
  // shards disagreeing on the zero sign must not disagree on order.
  std::string pos, neg;
  AppendDoubleKey(0.0, false, &pos);
  AppendDoubleKey(-0.0, false, &neg);
  EXPECT_EQ(pos, neg);
}

TEST(MergeKeyTest, ItemsetKeyOrderMatchesItemsetOrder) {
  // A prefix itemset sorts before its extensions, matching Itemset::<.
  const std::vector<std::vector<fpm::ItemId>> sorted = {
      {}, {1}, {1, 2}, {1, 3}, {2}, {2, 3}, {3}};
  for (size_t i = 0; i + 1 < sorted.size(); ++i) {
    std::string a, b;
    AppendItemsetKey(fpm::Itemset(std::vector<fpm::ItemId>(sorted[i])), &a);
    AppendItemsetKey(fpm::Itemset(std::vector<fpm::ItemId>(sorted[i + 1])),
                     &b);
    EXPECT_LT(a, b) << "itemset key order broke at index " << i;
  }
}

TEST(MergeKeyTest, CoordKeyOrderMatchesCellCoordinateOrder) {
  using cube::CellCoordinates;
  // CellCoordinates orders by (|sa|+|ca|, sa, ca) — size-major.
  std::vector<CellCoordinates> coords = {
      {fpm::Itemset(), fpm::Itemset()},
      {fpm::Itemset({1}), fpm::Itemset()},
      {fpm::Itemset(), fpm::Itemset({5})},
      {fpm::Itemset({1}), fpm::Itemset({5})},
      {fpm::Itemset({1, 2}), fpm::Itemset()},
      {fpm::Itemset({1, 2}), fpm::Itemset({5, 6})},
  };
  std::sort(coords.begin(), coords.end());
  for (size_t i = 0; i + 1 < coords.size(); ++i) {
    std::string a, b;
    AppendCoordKey(coords[i], &a);
    AppendCoordKey(coords[i + 1], &b);
    EXPECT_LT(a, b) << "coordinate key order broke at index " << i;
  }
}

}  // namespace
}  // namespace query
}  // namespace scube
