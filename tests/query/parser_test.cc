#include "query/parser.h"

#include <gtest/gtest.h>

#include "query/ast.h"

namespace scube {
namespace query {
namespace {

Query MustParse(const std::string& text) {
  auto q = Parse(text);
  EXPECT_TRUE(q.ok()) << text << " -> " << q.status();
  return q.ok() ? std::move(q).value() : Query{};
}

TEST(ParserTest, TopKWithWhere) {
  Query q = MustParse("TOPK 5 BY dissimilarity WHERE T >= 30 AND M >= 5");
  EXPECT_EQ(q.verb, Verb::kTopK);
  EXPECT_EQ(q.k, 5u);
  EXPECT_EQ(q.by, indexes::IndexKind::kDissimilarity);
  ASSERT_TRUE(q.min_t.has_value());
  EXPECT_EQ(*q.min_t, 30u);
  ASSERT_TRUE(q.min_m.has_value());
  EXPECT_EQ(*q.min_m, 5u);
}

TEST(ParserTest, SliceBothAxes) {
  Query q = MustParse("SLICE sa=sex=F & age=young | ca=region=north");
  EXPECT_EQ(q.verb, Verb::kSlice);
  ASSERT_EQ(q.sa.size(), 2u);
  // Constraints are normalised into sorted order.
  EXPECT_EQ(q.sa[0], (AttrValue{"age", "young"}));
  EXPECT_EQ(q.sa[1], (AttrValue{"sex", "F"}));
  ASSERT_EQ(q.ca.size(), 1u);
  EXPECT_EQ(q.ca[0], (AttrValue{"region", "north"}));
}

TEST(ParserTest, KeywordsCaseInsensitiveValuesNot) {
  Query q = MustParse("topk 3 by GINI where t >= 10");
  EXPECT_EQ(q.verb, Verb::kTopK);
  EXPECT_EQ(q.by, indexes::IndexKind::kGini);
  Query v = MustParse("slice sa=sex=F");
  EXPECT_EQ(v.sa[0].value, "F");  // value case preserved
}

TEST(ParserTest, QuotedValuesAndClauses) {
  Query q = MustParse(
      "DICE ca=sector='real estate' FROM italy_2012 ORDER BY T ASC LIMIT 7");
  EXPECT_EQ(q.verb, Verb::kDice);
  EXPECT_EQ(q.ca[0].value, "real estate");
  EXPECT_EQ(q.cube, "italy_2012");
  ASSERT_TRUE(q.order.has_value());
  EXPECT_EQ(q.order->key, OrderBy::Key::kContextSize);
  EXPECT_FALSE(q.order->descending);
  ASSERT_TRUE(q.limit.has_value());
  EXPECT_EQ(*q.limit, 7u);
}

TEST(ParserTest, ExplorerVerbsWithThresholds) {
  Query s = MustParse("SURPRISES BY information MINDELTA 0.25");
  EXPECT_EQ(s.verb, Verb::kSurprises);
  EXPECT_EQ(s.by, indexes::IndexKind::kInformation);
  EXPECT_DOUBLE_EQ(s.threshold, 0.25);

  Query r = MustParse("REVERSALS MINGAP 0.4");
  EXPECT_EQ(r.verb, Verb::kReversals);
  EXPECT_DOUBLE_EQ(r.threshold, 0.4);
  // BY defaults to dissimilarity.
  EXPECT_EQ(r.by, indexes::IndexKind::kDissimilarity);
}

TEST(ParserTest, RollupAndDrilldownCoordsOptional) {
  Query root = MustParse("DRILLDOWN");
  EXPECT_EQ(root.verb, Verb::kDrilldown);
  EXPECT_TRUE(root.sa.empty());
  EXPECT_TRUE(root.ca.empty());

  Query up = MustParse("ROLLUP sa=sex=F | ca=region=north");
  EXPECT_EQ(up.verb, Verb::kRollup);
  EXPECT_EQ(up.sa.size(), 1u);
  EXPECT_EQ(up.ca.size(), 1u);
}

TEST(ParserTest, FromVersionPin) {
  Query q = MustParse("TOPK 5 BY gini FROM italy@3");
  EXPECT_EQ(q.cube, "italy");
  ASSERT_TRUE(q.cube_version.has_value());
  EXPECT_EQ(*q.cube_version, 3u);
  EXPECT_EQ(Canonical(q), "TOPK 5 BY gini FROM italy@3");

  // Unpinned FROM leaves the version unset (latest).
  Query latest = MustParse("TOPK 5 BY gini FROM italy");
  EXPECT_FALSE(latest.cube_version.has_value());
  EXPECT_FALSE(latest == q);
}

TEST(ParserTest, LimitOffsetPagination) {
  Query q = MustParse("DICE sa=sex=F LIMIT 10 OFFSET 20");
  ASSERT_TRUE(q.limit.has_value());
  EXPECT_EQ(*q.limit, 10u);
  ASSERT_TRUE(q.offset.has_value());
  EXPECT_EQ(*q.offset, 20u);
  EXPECT_EQ(Canonical(q), "DICE sa=sex=F LIMIT 10 OFFSET 20");

  // OFFSET stands alone too (skip a prefix, unbounded tail).
  Query skip = MustParse("SLICE sa=sex=F OFFSET 5");
  EXPECT_FALSE(skip.limit.has_value());
  ASSERT_TRUE(skip.offset.has_value());
  EXPECT_EQ(*skip.offset, 5u);

  // An unset OFFSET is not the same query as OFFSET 0 (distinct canonical
  // forms), and a bare LIMIT parses as before.
  Query plain = MustParse("DICE sa=sex=F LIMIT 10");
  EXPECT_FALSE(plain.offset.has_value());
  EXPECT_FALSE(plain == q);
}

TEST(ParserTest, DuplicateConstraintsDeduplicated) {
  Query q = MustParse("DICE sa=sex=F & sex=F");
  EXPECT_EQ(q.sa.size(), 1u);
}

TEST(ParserTest, CanonicalRoundTrip) {
  const char* inputs[] = {
      "TOPK 5 BY dissimilarity WHERE T >= 30",
      "topk 10 by atkinson where m >= 5 and t >= 100 order by gini asc",
      "SLICE sa=sex=F & age=young | ca=region=north",
      "slice ca=region=south",
      "DICE sa=age=young LIMIT 3",
      "DICE sa=age=young LIMIT 3 OFFSET 6",
      "SLICE sa=sex=F OFFSET 2",
      "ROLLUP sa=sex=F | ca=region=north FROM cube_b",
      "DRILLDOWN",
      "SURPRISES BY isolation MINDELTA 0.2 ORDER BY M DESC",
      "REVERSALS MINGAP 0.15 FROM sectors LIMIT 4",
      "DICE ca=sector='real estate'",
      "TOPK 3 BY gini FROM italy_2012@2",
  };
  for (const char* text : inputs) {
    Query first = MustParse(text);
    std::string canonical = Canonical(first);
    Query second = MustParse(canonical);
    EXPECT_TRUE(first == second) << text << " vs " << canonical;
    EXPECT_EQ(canonical, Canonical(second)) << text;
  }
}

TEST(ParserTest, CanonicalNormalisesEquivalentSpellings) {
  Query a = MustParse("topk 5 by gini where t >= 30");
  Query b = MustParse("TOPK 5 BY gini WHERE T >= 30");
  EXPECT_EQ(Canonical(a), Canonical(b));

  // Coordinate order does not matter.
  Query c = MustParse("DICE sa=sex=F & age=young");
  Query d = MustParse("DICE sa=age=young & sex=F");
  EXPECT_EQ(Canonical(c), Canonical(d));
}

struct ErrorCase {
  const char* text;
  const char* expect_substring;
};

TEST(ParserTest, ErrorsCarryColumnAndContext) {
  const ErrorCase cases[] = {
      {"FROBNICATE sa=sex=F", "unknown verb"},
      {"", "expected a query verb"},
      {"SLICE", "expected coordinates"},
      {"SLICE sex=F", "expected 'sa=' or 'ca='"},
      {"SLICE sa=sex", "expected '=' after attribute 'sex'"},
      {"TOPK BY gini", "expected an integer for TOPK count"},
      {"TOPK 5 gini", "expected BY"},
      {"TOPK 5 BY fairness", "unknown index 'fairness'"},
      {"TOPK 0 BY gini", "must be positive"},
      {"TOPK 5 BY gini WHERE T > 30", "only '>=' comparisons"},
      {"TOPK 5 BY gini WHERE T >= -1", "non-negative integer"},
      {"TOPK -5 BY gini", "non-negative integer"},
      {"TOPK 5 BY gini LIMIT -1", "non-negative integer"},
      {"TOPK 5 BY gini LIMIT 0", "LIMIT must be positive"},
      {"TOPK 5 BY gini OFFSET -2", "non-negative integer"},
      {"TOPK 5 BY gini OFFSET", "expected an integer for OFFSET"},
      {"TOPK 5 BY gini WHERE units >= 3", "WHERE supports T >="},
      {"TOPK 5 BY gini ORDER BY size", "unknown ORDER BY key"},
      {"DICE ca=sector='real estate", "unterminated quoted value"},
      {"DRILLDOWN sa=sex=F garbage", "unexpected trailing input"},
      {"SLICE sa=sex=F ^", "unexpected character"},
      {"TOPK 5 BY gini FROM italy@", "expected an integer for FROM version"},
      {"TOPK 5 BY gini FROM italy@v2", "expected an integer for FROM version"},
      {"TOPK 5 BY gini FROM italy@0", "versions start at 1"},
  };
  for (const ErrorCase& c : cases) {
    auto q = Parse(c.text);
    ASSERT_FALSE(q.ok()) << c.text;
    EXPECT_EQ(q.status().code(), StatusCode::kParseError) << c.text;
    EXPECT_NE(q.status().message().find("col "), std::string::npos)
        << c.text << " -> " << q.status().message();
    EXPECT_NE(q.status().message().find(c.expect_substring),
              std::string::npos)
        << c.text << " -> " << q.status().message();
  }
}

}  // namespace
}  // namespace query
}  // namespace scube
