// Temporal snapshots in the serving layer: each date's cube is published
// into the CubeStore as its own sealed version, addressable from SCubeQL
// as `FROM name@version`.

#include "query/temporal_publish.h"

#include <gtest/gtest.h>

#include "datagen/scenarios.h"
#include "query/service.h"

namespace scube {
namespace query {
namespace {

pipeline::PipelineConfig SectorConfig() {
  pipeline::PipelineConfig config;
  config.unit_source = pipeline::UnitSource::kGroupAttribute;
  config.group_unit_attribute = "sector";
  config.cube.min_support = 2;
  config.cube.mode = fpm::MineMode::kAll;
  config.cube.max_sa_items = 1;
  config.cube.max_ca_items = 0;
  return config;
}

TEST(TemporalPublishTest, PublishesOneVersionPerDate) {
  auto scenario =
      datagen::GenerateScenario(datagen::EstonianConfig(0.003, 31));
  ASSERT_TRUE(scenario.ok());

  std::vector<graph::Date> dates{2000, 2005, 2010};
  pipeline::TrackedCell female;
  female.sa = {{"gender", "F"}};

  CubeStore store(/*max_versions=*/4);
  auto result = RunTemporalAnalysisPublished(
      &store, "estonia", scenario->inputs, SectorConfig(), dates, {female});
  ASSERT_TRUE(result.ok()) << result.status();

  // One version per date, in date order, all retained.
  ASSERT_EQ(result->versions.size(), dates.size());
  EXPECT_EQ(result->versions, (std::vector<uint64_t>{1, 2, 3}));
  EXPECT_EQ(store.RetainedVersions("estonia"),
            (std::vector<uint64_t>{1, 2, 3}));
  EXPECT_EQ(result->cube_name, "estonia");

  // The tracked-cell series is unchanged by publishing.
  ASSERT_EQ(result->temporal.series.size(), 1u);
  ASSERT_EQ(result->temporal.series[0].size(), dates.size());

  // Each snapshot is queryable through SCubeQL via `FROM name@version`,
  // and the published cell agrees with the tracked-cell extraction.
  QueryService service(&store, ServiceOptions{});
  for (size_t j = 0; j < dates.size(); ++j) {
    const pipeline::TemporalPoint& point = result->temporal.series[0][j];
    if (!point.defined) continue;
    auto resp = service.ExecuteOne(
        "SLICE sa=gender=F FROM estonia@" +
        std::to_string(result->versions[j]));
    ASSERT_TRUE(resp.status.ok()) << resp.status;
    EXPECT_EQ(resp.cube_version, result->versions[j]);
    bool found = false;
    for (const auto& row : resp.result.rows) {
      if (row.ca == "*") {
        EXPECT_EQ(row.t, point.context_size);
        EXPECT_EQ(row.m, point.minority_size);
        found = true;
      }
    }
    EXPECT_TRUE(found) << "no * context row at date "
                       << result->temporal.dates[j];
  }
}

TEST(TemporalPublishTest, RejectsStoresWithTooFewRetainedVersions) {
  auto scenario =
      datagen::GenerateScenario(datagen::EstonianConfig(0.002, 41));
  ASSERT_TRUE(scenario.ok());
  pipeline::TrackedCell female;
  female.sa = {{"gender", "F"}};

  CubeStore store(/*max_versions=*/2);
  auto result = RunTemporalAnalysisPublished(
      &store, "estonia", scenario->inputs, SectorConfig(),
      {2000, 2005, 2010}, {female});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("evicted mid-run"),
            std::string::npos);
}

}  // namespace
}  // namespace query
}  // namespace scube
