#include "query/service.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace scube {
namespace query {
namespace {

// Small hand-built cube: sex=F (SA), region=north/south (CA).
cube::SegregationCube MakeCube(double f_north_dissimilarity) {
  relational::ItemCatalog catalog;
  using relational::AttributeKind;
  catalog.GetOrAdd(0, "sex", "F", AttributeKind::kSegregation);     // id 0
  catalog.GetOrAdd(1, "region", "north", AttributeKind::kContext);  // id 1
  catalog.GetOrAdd(2, "region", "south", AttributeKind::kContext);  // id 2

  auto make_cell = [](std::vector<fpm::ItemId> sa,
                      std::vector<fpm::ItemId> ca, uint64_t t, uint64_t m,
                      double d) {
    cube::CubeCell cell;
    cell.coords = cube::CellCoordinates{fpm::Itemset(std::move(sa)),
                                        fpm::Itemset(std::move(ca))};
    cell.context_size = t;
    cell.minority_size = m;
    cell.num_units = 2;
    cell.indexes.defined = true;
    cell.indexes.values[static_cast<size_t>(
        indexes::IndexKind::kDissimilarity)] = d;
    return cell;
  };
  cube::SegregationCube cube(std::move(catalog), {"u0", "u1"});
  cube.Insert(make_cell({0}, {}, 100, 40, 0.10));
  cube.Insert(make_cell({0}, {1}, 60, 25, f_north_dissimilarity));
  cube.Insert(make_cell({0}, {2}, 40, 15, 0.20));
  return cube;
}

TEST(QueryServiceTest, ExecutesAndCaches) {
  CubeStore store;
  store.Publish("default", MakeCube(0.5));
  QueryService service(&store, ServiceOptions{});

  auto first =
      service.ExecuteOne("TOPK 2 BY dissimilarity WHERE T >= 1 AND M >= 1");
  ASSERT_TRUE(first.status.ok()) << first.status;
  ASSERT_EQ(first.result.rows.size(), 2u);
  EXPECT_DOUBLE_EQ(first.result.rows[0].value, 0.5);
  EXPECT_FALSE(first.cache_hit);
  EXPECT_EQ(first.cube, "default");
  EXPECT_EQ(first.cube_version, 1u);

  // Equivalent spelling: same canonical form, answered from the cache.
  auto second =
      service.ExecuteOne("topk 2 by dissimilarity where m >= 1 and t >= 1");
  ASSERT_TRUE(second.status.ok());
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(ToJson(second.result), ToJson(first.result));
  EXPECT_EQ(service.cache_stats().hits, 1u);
}

TEST(QueryServiceTest, ErrorsAreReportedPerQuery) {
  CubeStore store;
  store.Publish("default", MakeCube(0.5));
  QueryService service(&store, ServiceOptions{});

  auto responses = service.ExecuteBatch({
      "TOPK 1 BY dissimilarity WHERE M >= 1",
      "TOPK 1 BY",                   // parse error
      "SLICE sa=sex=X",              // resolution error
      "TOPK 1 BY gini FROM nowhere"  // unknown cube
  });
  ASSERT_EQ(responses.size(), 4u);
  EXPECT_TRUE(responses[0].status.ok());
  EXPECT_EQ(responses[1].status.code(), StatusCode::kParseError);
  EXPECT_EQ(responses[2].status.code(), StatusCode::kNotFound);
  EXPECT_EQ(responses[3].status.code(), StatusCode::kNotFound);
  EXPECT_NE(responses[3].status.message().find("no cube published"),
            std::string::npos);
}

TEST(QueryServiceTest, PublishingInvalidatesByVersion) {
  CubeStore store;
  store.Publish("default", MakeCube(0.5));
  QueryService service(&store, ServiceOptions{});

  auto before = service.ExecuteOne("SLICE sa=sex=F | ca=region=north");
  ASSERT_TRUE(before.status.ok());
  ASSERT_EQ(before.result.rows.size(), 1u);
  EXPECT_DOUBLE_EQ(
      before.result.rows[0].indexes[static_cast<size_t>(
          indexes::IndexKind::kDissimilarity)],
      0.5);

  // Publish a new version of the cube: the same query must not be served
  // from the now-stale cache entry.
  store.Publish("default", MakeCube(0.9));
  auto after = service.ExecuteOne("SLICE sa=sex=F | ca=region=north");
  ASSERT_TRUE(after.status.ok());
  EXPECT_FALSE(after.cache_hit);
  EXPECT_EQ(after.cube_version, 2u);
  EXPECT_DOUBLE_EQ(
      after.result.rows[0].indexes[static_cast<size_t>(
          indexes::IndexKind::kDissimilarity)],
      0.9);
}

TEST(QueryServiceTest, FromVersionPinServesRetainedVersions) {
  CubeStore store(/*max_versions=*/2);
  store.Publish("default", MakeCube(0.5));  // v1
  store.Publish("default", MakeCube(0.9));  // v2
  QueryService service(&store, ServiceOptions{});

  // Pinned to v1: the pre-update value, even though v2 is latest.
  auto v1 = service.ExecuteOne("SLICE sa=sex=F | ca=region=north FROM default@1");
  ASSERT_TRUE(v1.status.ok()) << v1.status;
  EXPECT_EQ(v1.cube_version, 1u);
  ASSERT_EQ(v1.result.rows.size(), 1u);
  EXPECT_DOUBLE_EQ(v1.result.rows[0].indexes[static_cast<size_t>(
                       indexes::IndexKind::kDissimilarity)],
                   0.5);

  // Unpinned: the latest version answers.
  auto latest = service.ExecuteOne("SLICE sa=sex=F | ca=region=north");
  ASSERT_TRUE(latest.status.ok());
  EXPECT_EQ(latest.cube_version, 2u);
  EXPECT_DOUBLE_EQ(latest.result.rows[0].indexes[static_cast<size_t>(
                       indexes::IndexKind::kDissimilarity)],
                   0.9);

  // Publishing a third version evicts v1 (K = 2): the pin now fails.
  store.Publish("default", MakeCube(0.7));  // v3, retained {2, 3}
  auto evicted =
      service.ExecuteOne("SLICE sa=sex=F | ca=region=north FROM default@1");
  EXPECT_EQ(evicted.status.code(), StatusCode::kNotFound);
  EXPECT_NE(evicted.status.message().find("evicted or never published"),
            std::string::npos);
  auto unknown =
      service.ExecuteOne("TOPK 1 BY gini FROM default@99");
  EXPECT_EQ(unknown.status.code(), StatusCode::kNotFound);
}

TEST(QueryServiceTest, BatchFansOutAcrossWorkersAndCubes) {
  CubeStore store;
  store.Publish("default", MakeCube(0.5));
  store.Publish("other", MakeCube(0.8));
  ServiceOptions options;
  options.num_workers = 4;
  QueryService service(&store, options);

  // 40 queries, duplicates included, across two cubes.
  std::vector<std::string> texts;
  for (int i = 0; i < 10; ++i) {
    texts.push_back("TOPK 2 BY dissimilarity WHERE M >= 1");
    texts.push_back("SLICE sa=sex=F | ca=region=north");
    texts.push_back("SLICE sa=sex=F | ca=region=north FROM other");
    texts.push_back("DICE sa=sex=F FROM other WHERE T >= 50");
  }
  auto responses = service.ExecuteBatch(texts);
  ASSERT_EQ(responses.size(), texts.size());
  for (size_t i = 0; i < responses.size(); ++i) {
    ASSERT_TRUE(responses[i].status.ok())
        << texts[i] << " -> " << responses[i].status;
  }
  // Positional integrity: every 4th response answers the "other" point
  // query with the other cube's value.
  EXPECT_DOUBLE_EQ(
      responses[2].result.rows[0].indexes[static_cast<size_t>(
          indexes::IndexKind::kDissimilarity)],
      0.8);
  EXPECT_EQ(responses[2].cube, "other");
  // In-batch duplicates execute once but all respond.
  EXPECT_EQ(ToJson(responses[1].result), ToJson(responses[5].result));
}

TEST(QueryServiceTest, CsvAndJsonSerialisationsStayStable) {
  CubeStore store;
  store.Publish("default", MakeCube(0.5));
  QueryService service(&store, ServiceOptions{});
  auto resp = service.ExecuteOne("SLICE sa=sex=F | ca=region=north");
  ASSERT_TRUE(resp.status.ok());
  EXPECT_EQ(ToCsv(resp.result),
            "sa,ca,T,M,units,dissimilarity,gini,information,isolation,"
            "interaction,atkinson\n"
            "sex=F,region=north,60,25,2,0.5,0,0,0,0,0\n");
  EXPECT_NE(ToJson(resp.result).find("\"T\":60"), std::string::npos);
}

}  // namespace
}  // namespace query
}  // namespace scube
