// Concurrency edges of the QueryService serving contract: admission
// rejection under a full queue, deadline expiry (queued and mid-batch),
// graceful shutdown draining in-flight work without deadlock, and
// publish-time cache warming.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "query/service.h"

namespace scube {
namespace query {
namespace {

// Small hand-built cube: sex=F (SA), region=north/south (CA).
cube::SegregationCube MakeCube(double f_north_dissimilarity) {
  relational::ItemCatalog catalog;
  using relational::AttributeKind;
  catalog.GetOrAdd(0, "sex", "F", AttributeKind::kSegregation);     // id 0
  catalog.GetOrAdd(1, "region", "north", AttributeKind::kContext);  // id 1
  catalog.GetOrAdd(2, "region", "south", AttributeKind::kContext);  // id 2

  auto make_cell = [](std::vector<fpm::ItemId> sa,
                      std::vector<fpm::ItemId> ca, uint64_t t, uint64_t m,
                      double d) {
    cube::CubeCell cell;
    cell.coords = cube::CellCoordinates{fpm::Itemset(std::move(sa)),
                                        fpm::Itemset(std::move(ca))};
    cell.context_size = t;
    cell.minority_size = m;
    cell.num_units = 2;
    cell.indexes.defined = true;
    cell.indexes.values[static_cast<size_t>(
        indexes::IndexKind::kDissimilarity)] = d;
    return cell;
  };
  cube::SegregationCube cube(std::move(catalog), {"u0", "u1"});
  cube.Insert(make_cell({0}, {}, 100, 40, 0.10));
  cube.Insert(make_cell({0}, {1}, 60, 25, f_north_dissimilarity));
  cube.Insert(make_cell({0}, {2}, 40, 15, 0.20));
  return cube;
}

TEST(ServiceAdmissionTest, ShedsWhenQueueBoundIsZero) {
  CubeStore store;
  store.Publish("default", MakeCube(0.5));
  ServiceOptions options;
  options.max_pending = 0;  // bound 0: every batch sheds
  QueryService service(&store, options);

  auto responses = service.ExecuteBatch(
      {"TOPK 1 BY dissimilarity", "SLICE sa=sex=F"});
  ASSERT_EQ(responses.size(), 2u);
  for (const auto& resp : responses) {
    EXPECT_EQ(resp.status.code(), StatusCode::kUnavailable) << resp.status;
    EXPECT_NE(resp.status.message().find("admission queue full"),
              std::string::npos);
  }
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.rejected, 2u);
  EXPECT_EQ(stats.accepted, 0u);
}

TEST(ServiceAdmissionTest, AdmitsAgainOnceIdle) {
  CubeStore store;
  store.Publish("default", MakeCube(0.5));
  ServiceOptions options;
  options.max_pending = 8;
  QueryService service(&store, options);

  auto ok = service.ExecuteOne("TOPK 1 BY dissimilarity WHERE M >= 1");
  EXPECT_TRUE(ok.status.ok()) << ok.status;
  EXPECT_EQ(service.stats().accepted, 1u);
  EXPECT_EQ(service.stats().rejected, 0u);
}

TEST(ServiceDeadlineTest, AlreadyExpiredDeadlineAnswersDeadlineExceeded) {
  CubeStore store;
  store.Publish("default", MakeCube(0.5));
  QueryService service(&store, ServiceOptions{});

  QueryContext expired = QueryContext::WithTimeout(-1);
  ASSERT_TRUE(expired.Expired());
  auto responses = service.ExecuteBatch(
      {"TOPK 1 BY dissimilarity WHERE M >= 1",
       "SURPRISES BY dissimilarity MINDELTA 0.01 WHERE T >= 1 AND M >= 1"},
      expired);
  for (const auto& resp : responses) {
    EXPECT_EQ(resp.status.code(), StatusCode::kDeadlineExceeded)
        << resp.status;
  }
  EXPECT_EQ(service.stats().deadline_expired, 2u);
}

TEST(ServiceDeadlineTest, GenerousDeadlinePasses) {
  CubeStore store;
  store.Publish("default", MakeCube(0.5));
  QueryService service(&store, ServiceOptions{});

  auto resp = service.ExecuteOne("TOPK 2 BY dissimilarity WHERE M >= 1",
                                 QueryContext::WithTimeout(60'000));
  EXPECT_TRUE(resp.status.ok()) << resp.status;
  EXPECT_EQ(service.stats().deadline_expired, 0u);
}

TEST(ServiceDeadlineTest, DefaultDeadlineFromOptionsApplies) {
  CubeStore store;
  store.Publish("default", MakeCube(0.5));
  ServiceOptions options;
  options.default_deadline_ms = 0.0001;  // expires before any chunk runs
  QueryService service(&store, options);

  auto resp = service.ExecuteOne("SLICE sa=sex=F | ca=region=north");
  EXPECT_EQ(resp.status.code(), StatusCode::kDeadlineExceeded) << resp.status;
}

TEST(ServiceShutdownTest, DrainsInFlightBatchesWithoutDeadlock) {
  CubeStore store;
  store.Publish("default", MakeCube(0.5));
  ServiceOptions options;
  options.num_workers = 2;
  options.cache_capacity = 0;  // every query executes
  QueryService service(&store, options);

  // Several threads keep submitting scan-heavy batches while the main
  // thread shuts the service down; every batch must return (drained or
  // shed), never hang.
  std::atomic<bool> go{true};
  std::atomic<uint64_t> returned{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&] {
      std::vector<std::string> batch;
      for (int i = 0; i < 8; ++i) {
        batch.push_back("SURPRISES BY dissimilarity MINDELTA 0.0" +
                        std::to_string(i + 1) + " WHERE T >= 1 AND M >= 1");
      }
      while (go.load()) {
        auto responses = service.ExecuteBatch(batch);
        for (const auto& resp : responses) {
          EXPECT_TRUE(resp.status.ok() ||
                      resp.status.code() == StatusCode::kUnavailable)
              << resp.status;
        }
        returned.fetch_add(1);
      }
    });
  }
  // Let some batches through, then shut down concurrently with traffic.
  while (returned.load() < 4) std::this_thread::yield();
  service.Shutdown();
  go.store(false);
  for (auto& client : clients) client.join();

  // After shutdown everything is shed.
  auto post = service.ExecuteOne("TOPK 1 BY dissimilarity");
  EXPECT_EQ(post.status.code(), StatusCode::kUnavailable);
  EXPECT_NE(post.status.message().find("shutting down"), std::string::npos);
}

TEST(ServiceShutdownTest, ShutdownIsIdempotent) {
  CubeStore store;
  store.Publish("default", MakeCube(0.5));
  QueryService service(&store, ServiceOptions{});
  service.Shutdown();
  service.Shutdown();  // second call is a no-op; destructor adds a third
}

TEST(ServiceWarmingTest, PublishAndWarmPrefillsTheNewVersion) {
  CubeStore store;
  QueryService service(&store, ServiceOptions{});
  service.PublishAndWarm("default", MakeCube(0.5));  // nothing cached yet

  // Establish traffic: two distinct queries, one repeated (hotter).
  const std::string hot = "TOPK 2 BY dissimilarity WHERE M >= 1";
  const std::string cold = "SLICE sa=sex=F | ca=region=north";
  EXPECT_FALSE(service.ExecuteOne(hot).cache_hit);
  EXPECT_TRUE(service.ExecuteOne(hot).cache_hit);
  EXPECT_FALSE(service.ExecuteOne(cold).cache_hit);

  auto info = service.PublishAndWarm("default", MakeCube(0.9));
  EXPECT_EQ(info.version, 2u);
  EXPECT_EQ(info.warmed, 2u);  // both texts re-executed against v2

  // The very first post-publish request is already a hit — and carries
  // the *new* version's data.
  auto warmed = service.ExecuteOne(hot);
  ASSERT_TRUE(warmed.status.ok()) << warmed.status;
  EXPECT_TRUE(warmed.cache_hit);
  EXPECT_EQ(warmed.cube_version, 2u);
  EXPECT_DOUBLE_EQ(warmed.result.rows[0].value, 0.9);
}

TEST(ServiceWarmingTest, VersionPinnedTextsAreNotWarmed) {
  CubeStore store;
  QueryService service(&store, ServiceOptions{});
  service.PublishAndWarm("default", MakeCube(0.5));

  auto pinned = service.ExecuteOne("TOPK 1 BY dissimilarity FROM default@1");
  ASSERT_TRUE(pinned.status.ok()) << pinned.status;

  auto info = service.PublishAndWarm("default", MakeCube(0.9));
  EXPECT_EQ(info.version, 2u);
  EXPECT_EQ(info.warmed, 0u);  // the only cached text is pinned to v1
}

}  // namespace
}  // namespace query
}  // namespace scube
