// Unit tests for the streaming sink layer: writers against hand-built
// results, replay semantics, abort propagation and cursor tokens. The
// end-to-end streamed-vs-materialised equivalence lives in
// streaming_equivalence_test.cc.

#include "query/row_sink.h"

#include <gtest/gtest.h>

#include <string>

#include "query/parser.h"

namespace scube {
namespace query {
namespace {

QueryResult SmallResult() {
  QueryResult result;
  result.verb = Verb::kTopK;
  result.has_value = true;
  result.cells_scanned = 7;
  for (int i = 0; i < 3; ++i) {
    ResultRow row;
    row.sa = "sex=F";
    row.ca = "region=r" + std::to_string(i);
    row.t = 100 + i;
    row.m = 10 + i;
    row.units = 2;
    row.defined = true;
    row.value = 0.5 - 0.1 * i;
    result.rows.push_back(row);
  }
  return result;
}

TEST(RowSinkTest, VectorSinkRoundTripsThroughReplay) {
  QueryResult original = SmallResult();
  original.next_cursor = "tok";
  VectorSink sink;
  EXPECT_EQ(ReplayResult(original, sink), 3u);
  const QueryResult& copy = sink.result();
  EXPECT_EQ(copy.verb, original.verb);
  EXPECT_EQ(copy.rows.size(), 3u);
  EXPECT_EQ(copy.cells_scanned, 7u);
  EXPECT_EQ(copy.next_cursor, "tok");
  EXPECT_EQ(ToJson(copy), ToJson(original));
  EXPECT_EQ(ToCsv(copy), ToCsv(original));
}

TEST(RowSinkTest, JsonWriterMatchesToJsonIncludingCursor) {
  QueryResult result = SmallResult();
  result.next_cursor = "abc123";
  std::string streamed;
  JsonWriter writer([&streamed](std::string_view chunk) {
    streamed.append(chunk);
    return true;
  });
  ReplayResult(result, writer);
  EXPECT_EQ(streamed, ToJson(result));
  EXPECT_NE(streamed.find("\"next_cursor\":\"abc123\""), std::string::npos);
  // cells_scanned rides in the trailer, after the rows.
  EXPECT_GT(streamed.find("\"cells_scanned\""), streamed.find("\"rows\""));
}

TEST(RowSinkTest, CsvWriterMatchesToCsvIncludingCursorComment) {
  QueryResult result = SmallResult();
  result.next_cursor = "abc123";
  std::string streamed;
  CsvWriter writer([&streamed](std::string_view chunk) {
    streamed.append(chunk);
    return true;
  });
  ReplayResult(result, writer);
  EXPECT_EQ(streamed, ToCsv(result));
  EXPECT_NE(streamed.find("# next_cursor: abc123\n"), std::string::npos);
}

TEST(RowSinkTest, WriterAbortStopsReplayEarly) {
  QueryResult result = SmallResult();
  int writes_allowed = 2;  // header + first row
  std::string streamed;
  JsonWriter writer([&](std::string_view chunk) {
    if (writes_allowed == 0) return false;
    --writes_allowed;
    streamed.append(chunk);
    return true;
  });
  uint64_t delivered = ReplayResult(result, writer);
  EXPECT_LT(delivered, result.rows.size());
  EXPECT_FALSE(writer.ok());
}

TEST(RowSinkTest, ReplayTrailerOverrideWins) {
  QueryResult result = SmallResult();
  result.next_cursor = "stale";
  ResultTrailer fresh;
  fresh.cells_scanned = 99;
  fresh.next_cursor = "fresh";
  VectorSink sink;
  ReplayResult(result, sink, &fresh);
  EXPECT_EQ(sink.result().cells_scanned, 99u);
  EXPECT_EQ(sink.result().next_cursor, "fresh");
}

TEST(CursorTest, RoundTripsAndRejectsGarbage) {
  Cursor cursor{"italy_2012", 42, 12345, 0xdeadbeefcafef00dull};
  std::string token = EncodeCursor(cursor);
  auto decoded = DecodeCursor(token);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->cube, "italy_2012");
  EXPECT_EQ(decoded->version, 42u);
  EXPECT_EQ(decoded->position, 12345u);
  EXPECT_EQ(decoded->query_hash, 0xdeadbeefcafef00dull);

  EXPECT_FALSE(DecodeCursor("not base64!").ok());
  EXPECT_FALSE(DecodeCursor("aGVsbG8=").ok());  // valid base64, wrong layout
  EXPECT_FALSE(DecodeCursor("").ok());
  // Tokens are deterministic: same snapshot+position -> same token, so
  // cached and freshly executed answers render identical bytes.
  EXPECT_EQ(token, EncodeCursor(cursor));
}

TEST(CursorTest, CubeNamesMayContainTheSeparator) {
  // The cube name rides last in the token, so an embedded '|' (the field
  // separator) must survive the round trip.
  Cursor cursor{"a|b|c", 7, 99, 1};
  auto decoded = DecodeCursor(EncodeCursor(cursor));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->cube, "a|b|c");
  EXPECT_EQ(decoded->version, 7u);
  EXPECT_EQ(decoded->position, 99u);
}

TEST(CursorTest, QueryHashBindsTheStatementNotThePage) {
  auto hash_of = [](const char* text) {
    auto q = Parse(text);
    EXPECT_TRUE(q.ok()) << text;
    return CursorQueryHash(*q);
  };
  // Page size / offset / FROM pin do not change the stream identity...
  EXPECT_EQ(hash_of("DICE sa=sex=F LIMIT 2"),
            hash_of("DICE sa=sex=F LIMIT 50 OFFSET 10"));
  EXPECT_EQ(hash_of("DICE sa=sex=F"), hash_of("DICE sa=sex=F FROM c@3"));
  // ...but the verb, coordinates, filters and ordering do.
  EXPECT_NE(hash_of("DICE sa=sex=F"), hash_of("SLICE sa=sex=F"));
  EXPECT_NE(hash_of("DICE sa=sex=F"), hash_of("DICE sa=sex=F WHERE T >= 9"));
  EXPECT_NE(hash_of("DICE sa=sex=F"),
            hash_of("DICE sa=sex=F ORDER BY T ASC"));
}

}  // namespace
}  // namespace query
}  // namespace scube
