// Regression tests for the result serialisations, in particular JSON
// string escaping: attribute values containing quotes, backslashes or
// control characters must yield valid JSON (they reach ToJson via the
// catalog labels, and reach HTTP clients via scubed's /query handler).

#include "query/query_result.h"

#include <gtest/gtest.h>

#include <string>

namespace scube {
namespace query {
namespace {

QueryResult MakeResult(const std::string& sa_label,
                       const std::string& ca_label) {
  QueryResult result;
  result.verb = Verb::kSlice;
  ResultRow row;
  row.sa = sa_label;
  row.ca = ca_label;
  row.t = 10;
  row.m = 4;
  row.units = 2;
  row.defined = true;
  result.rows.push_back(row);
  return result;
}

TEST(QueryResultJsonTest, EscapesQuotesBackslashesAndControls) {
  QueryResult result =
      MakeResult("sector=say \"hi\"", "region=back\\slash\nnewline");
  std::string json = ToJson(result);

  EXPECT_NE(json.find("\"sa\":\"sector=say \\\"hi\\\"\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"ca\":\"region=back\\\\slash\\nnewline\""),
            std::string::npos)
      << json;
  // No raw control characters survive anywhere in the output.
  for (char c : json) {
    EXPECT_GE(static_cast<unsigned char>(c), 0x20u) << json;
  }
}

TEST(QueryResultJsonTest, EscapesVerbSpecificStringColumns) {
  QueryResult result = MakeResult("sex=F", "region=north");
  result.has_tag = true;
  result.tag_name = "di\"rection";
  result.rows[0].tag = "mask\"ed";
  std::string json = ToJson(result);
  EXPECT_NE(json.find("\"di\\\"rection\":\"mask\\\"ed\""), std::string::npos)
      << json;
}

TEST(QueryResultJsonTest, UndefinedIndexesSerialiseAsNull) {
  QueryResult result = MakeResult("sex=F", "region=north");
  result.rows[0].defined = false;
  std::string json = ToJson(result);
  EXPECT_NE(json.find("\"dissimilarity\":null"), std::string::npos) << json;
}

TEST(QueryResultCsvTest, QuotesFieldsWithSeparators) {
  QueryResult result = MakeResult("sector=a,b", "note=say \"hi\"");
  std::string csv = ToCsv(result);
  EXPECT_NE(csv.find("\"sector=a,b\""), std::string::npos) << csv;
  EXPECT_NE(csv.find("\"note=say \"\"hi\"\"\""), std::string::npos) << csv;
}

}  // namespace
}  // namespace query
}  // namespace scube
