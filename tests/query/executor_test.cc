#include "query/executor.h"

#include <gtest/gtest.h>

#include "cube/cube.h"

#include "query/parser.h"
#include "query/query_result.h"

namespace scube {
namespace query {
namespace {

// Hand-built fixture (the MakeCell pattern of cube_test): items
//   sex=F (SA, id 0), age=young (SA, id 1),
//   region=north (CA, id 2), region=south (CA, id 3).
cube::CubeCell MakeCell(std::vector<fpm::ItemId> sa,
                        std::vector<fpm::ItemId> ca, uint64_t t, uint64_t m,
                        double dissimilarity, bool defined = true) {
  cube::CubeCell cell;
  cell.coords = cube::CellCoordinates{fpm::Itemset(std::move(sa)),
                                      fpm::Itemset(std::move(ca))};
  cell.context_size = t;
  cell.minority_size = m;
  cell.num_units = 2;
  cell.indexes.defined = defined;
  cell.indexes.values[static_cast<size_t>(
      indexes::IndexKind::kDissimilarity)] = dissimilarity;
  return cell;
}

cube::CubeView MakeView() {
  relational::ItemCatalog catalog;
  using relational::AttributeKind;
  catalog.GetOrAdd(0, "sex", "F", AttributeKind::kSegregation);      // id 0
  catalog.GetOrAdd(1, "age", "young", AttributeKind::kSegregation);  // id 1
  catalog.GetOrAdd(2, "region", "north", AttributeKind::kContext);   // id 2
  catalog.GetOrAdd(3, "region", "south", AttributeKind::kContext);   // id 3

  cube::SegregationCube cube(std::move(catalog), {"u0", "u1"});
  cube.Insert(MakeCell({}, {}, 100, 0, 0.0, /*defined=*/false));  // root
  cube.Insert(MakeCell({0}, {}, 100, 40, 0.10));       // F | *
  cube.Insert(MakeCell({1}, {}, 100, 30, 0.05));       // young | *
  cube.Insert(MakeCell({0, 1}, {}, 100, 12, 0.30));    // F & young | *
  cube.Insert(MakeCell({}, {2}, 60, 0, 0.0, false));   // * | north
  cube.Insert(MakeCell({0}, {2}, 60, 25, 0.50));       // F | north
  cube.Insert(MakeCell({0}, {3}, 40, 15, 0.20));       // F | south
  cube.Insert(MakeCell({1}, {2}, 60, 18, 0.15));       // young | north
  cube.Insert(MakeCell({0, 1}, {2}, 60, 8, 0.70));     // F & young | north
  return std::move(cube).Seal();
}

QueryResult MustExecute(const Executor& executor, const std::string& text) {
  auto query = Parse(text);
  EXPECT_TRUE(query.ok()) << text << " -> " << query.status();
  auto result = executor.Execute(*query);
  EXPECT_TRUE(result.ok()) << text << " -> " << result.status();
  return result.ok() ? std::move(result).value() : QueryResult{};
}

TEST(ExecutorTest, SliceOneAxisMatchesExactCoordinates) {
  cube::CubeView view = MakeView();
  Executor executor(view);
  QueryResult r = MustExecute(executor, "SLICE sa=sex=F");
  ASSERT_EQ(r.rows.size(), 3u);  // F|*, F|north, F|south in coord order
  EXPECT_EQ(r.rows[0].sa, "sex=F");
  EXPECT_EQ(r.rows[0].ca, "*");
  EXPECT_EQ(r.rows[1].ca, "region=north");
  EXPECT_EQ(r.rows[2].ca, "region=south");
}

TEST(ExecutorTest, SliceBothAxesIsPointLookup) {
  cube::CubeView view = MakeView();
  Executor executor(view);
  QueryResult r =
      MustExecute(executor, "SLICE sa=sex=F | ca=region=north");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0].t, 60u);
  EXPECT_EQ(r.rows[0].m, 25u);
  EXPECT_EQ(r.cells_scanned, 1u);  // no scan for a fully addressed cell

  QueryResult missing =
      MustExecute(executor, "SLICE sa=age=young | ca=region=south");
  EXPECT_TRUE(missing.rows.empty());
}

TEST(ExecutorTest, DiceSelectsSubcube) {
  cube::CubeView view = MakeView();
  Executor executor(view);
  QueryResult r = MustExecute(executor, "DICE sa=sex=F");
  // Every cell whose SA contains sex=F: F|*, F|north, F|south,
  // F&young|*, F&young|north.
  EXPECT_EQ(r.rows.size(), 5u);

  QueryResult filtered =
      MustExecute(executor, "DICE sa=sex=F WHERE T >= 50 AND M >= 20");
  ASSERT_EQ(filtered.rows.size(), 2u);  // F|* (100/40), F|north (60/25)
}

TEST(ExecutorTest, RollupReturnsParents) {
  cube::CubeView view = MakeView();
  Executor executor(view);
  QueryResult r =
      MustExecute(executor, "ROLLUP sa=sex=F & age=young | ca=region=north");
  // Parents of (F & young | north): (young|north), (F|north), (F&young|*).
  ASSERT_EQ(r.rows.size(), 3u);
}

TEST(ExecutorTest, DrilldownReturnsChildrenAndRootWorks) {
  cube::CubeView view = MakeView();
  Executor executor(view);
  QueryResult r = MustExecute(executor, "DRILLDOWN sa=sex=F");
  // Children of (F|*): (F&young|*), (F|north), (F|south).
  ASSERT_EQ(r.rows.size(), 3u);

  QueryResult root = MustExecute(executor, "DRILLDOWN");
  // Children of the root: (F|*), (young|*), (*|north).
  EXPECT_EQ(root.rows.size(), 3u);
}

TEST(ExecutorTest, TopKRanksAndTruncates) {
  cube::CubeView view = MakeView();
  Executor executor(view);
  QueryResult r = MustExecute(
      executor, "TOPK 3 BY dissimilarity WHERE T >= 1 AND M >= 1");
  ASSERT_EQ(r.rows.size(), 3u);
  EXPECT_TRUE(r.has_value);
  EXPECT_DOUBLE_EQ(r.rows[0].value, 0.70);  // F & young | north
  EXPECT_DOUBLE_EQ(r.rows[1].value, 0.50);  // F | north
  EXPECT_DOUBLE_EQ(r.rows[2].value, 0.30);  // F & young | *
  // Undefined and pure-context cells never rank.
  for (const ResultRow& row : r.rows) {
    EXPECT_TRUE(row.defined);
    EXPECT_NE(row.sa, "*");
  }
}

TEST(ExecutorTest, TopKZeroReturnsNoRows) {
  // The parser rejects "TOPK 0", but Query::k is a public field.
  cube::CubeView view = MakeView();
  Executor executor(view);
  Query q = *Parse("TOPK 1 BY dissimilarity");
  q.k = 0;
  auto result = executor.Execute(q);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->rows.empty());
}

TEST(ExecutorTest, TopKDefaultsToExplorerFloors) {
  cube::CubeView view = MakeView();
  Executor executor(view);
  // Without WHERE, the explorer defaults (T >= 30, M >= 5) apply; every
  // fixture cell passes T, and only M >= 5 cells rank.
  QueryResult r = MustExecute(executor, "TOPK 10 BY dissimilarity");
  EXPECT_EQ(r.rows.size(), 7u);
}

TEST(ExecutorTest, OrderByAndLimit) {
  cube::CubeView view = MakeView();
  Executor executor(view);
  QueryResult r =
      MustExecute(executor, "DICE sa=sex=F ORDER BY T ASC LIMIT 2");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_LE(r.rows[0].t, r.rows[1].t);
  EXPECT_EQ(r.rows[0].t, 40u);  // F | south
}

TEST(ExecutorTest, SurprisesComputeDeltaAgainstBestParent) {
  cube::CubeView view = MakeView();
  Executor executor(view);
  QueryResult r = MustExecute(
      executor,
      "SURPRISES BY dissimilarity MINDELTA 0.15 WHERE T >= 1 AND M >= 1");
  ASSERT_EQ(r.rows.size(), 3u);
  EXPECT_EQ(r.aux_name, "delta");
  // F|north: 0.5 vs best parent F|* (0.1) -> delta 0.4 (the * | north
  // parent is undefined and must not participate).
  EXPECT_EQ(r.rows[0].ca, "region=north");
  EXPECT_DOUBLE_EQ(r.rows[0].aux, 0.4);
  EXPECT_DOUBLE_EQ(r.rows[1].aux, 0.2);
  EXPECT_DOUBLE_EQ(r.rows[2].aux, 0.2);
}

TEST(ExecutorTest, ResolutionErrors) {
  cube::CubeView view = MakeView();
  Executor executor(view);

  auto unknown_attr = executor.Execute(*Parse("SLICE sa=hair=red"));
  ASSERT_FALSE(unknown_attr.ok());
  EXPECT_EQ(unknown_attr.status().code(), StatusCode::kNotFound);
  EXPECT_NE(unknown_attr.status().message().find("unknown attribute"),
            std::string::npos);

  auto unknown_value = executor.Execute(*Parse("SLICE sa=sex=X"));
  ASSERT_FALSE(unknown_value.ok());
  EXPECT_NE(unknown_value.status().message().find("unknown value 'X'"),
            std::string::npos);

  auto wrong_axis = executor.Execute(*Parse("SLICE sa=region=north"));
  ASSERT_FALSE(wrong_axis.ok());
  EXPECT_EQ(wrong_axis.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(wrong_axis.status().message().find("context attribute"),
            std::string::npos);
}

TEST(ExecutorTest, BatchSharedScanMatchesIndividualExecution) {
  cube::CubeView view = MakeView();
  Executor executor(view);
  const char* texts[] = {
      "SLICE sa=sex=F",
      "DICE sa=sex=F WHERE M >= 20",
      "TOPK 3 BY dissimilarity WHERE T >= 1 AND M >= 1",
      "DRILLDOWN sa=sex=F",
      "SLICE sa=sex=X",  // resolution error must stay positional
      "SURPRISES BY dissimilarity MINDELTA 0.15 WHERE T >= 1 AND M >= 1",
  };
  std::vector<Query> queries;
  std::vector<Result<QueryResult>> individual;
  for (const char* text : texts) {
    auto q = Parse(text);
    ASSERT_TRUE(q.ok()) << text;
    individual.push_back(executor.Execute(*q));
    queries.push_back(std::move(*q));
  }
  auto batched = executor.ExecuteBatch(queries);
  ASSERT_EQ(batched.size(), individual.size());
  for (size_t i = 0; i < batched.size(); ++i) {
    ASSERT_EQ(batched[i].ok(), individual[i].ok()) << texts[i];
    if (batched[i].ok()) {
      EXPECT_EQ(ToJson(*batched[i]), ToJson(*individual[i])) << texts[i];
    } else {
      EXPECT_EQ(batched[i].status(), individual[i].status()) << texts[i];
    }
  }
}

TEST(ExecutorTest, SerialisationShapes) {
  cube::CubeView view = MakeView();
  Executor executor(view);
  QueryResult r = MustExecute(
      executor, "TOPK 2 BY dissimilarity WHERE T >= 1 AND M >= 1");

  std::string csv = ToCsv(r);
  EXPECT_NE(csv.find("sa,ca,T,M,units,dissimilarity"), std::string::npos);
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);  // header + 2 rows

  std::string json = ToJson(r);
  EXPECT_NE(json.find("\"verb\":\"TOPK\""), std::string::npos);
  EXPECT_NE(json.find("\"value\":0.7"), std::string::npos);

  // Undefined cells serialise as null (the ⋆ | north cell).
  QueryResult north = MustExecute(executor, "SLICE ca=region=north");
  ASSERT_EQ(north.rows.size(), 4u);  // ⋆, F, young, F&young | north
  EXPECT_NE(ToJson(north).find("null"), std::string::npos);
}

}  // namespace
}  // namespace query
}  // namespace scube
