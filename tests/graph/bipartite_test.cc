#include "graph/bipartite.h"

#include <gtest/gtest.h>

namespace scube {
namespace graph {
namespace {

TEST(BipartiteTest, BasicMemberships) {
  BipartiteGraph b(3, 2);
  ASSERT_TRUE(b.AddMembership(0, 0).ok());
  ASSERT_TRUE(b.AddMembership(0, 1).ok());
  ASSERT_TRUE(b.AddMembership(2, 1).ok());
  EXPECT_EQ(b.NumMemberships(), 3u);
  auto by_ind = b.GroupsByIndividual(0);
  EXPECT_EQ(by_ind[0], (std::vector<NodeId>{0, 1}));
  EXPECT_TRUE(by_ind[1].empty());
  EXPECT_EQ(by_ind[2], (std::vector<NodeId>{1}));
  auto by_group = b.IndividualsByGroup(0);
  EXPECT_EQ(by_group[0], (std::vector<NodeId>{0}));
  EXPECT_EQ(by_group[1], (std::vector<NodeId>{0, 2}));
}

TEST(BipartiteTest, OutOfRangeRejected) {
  BipartiteGraph b(2, 2);
  EXPECT_EQ(b.AddMembership(2, 0).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(b.AddMembership(0, 2).code(), StatusCode::kOutOfRange);
}

TEST(BipartiteTest, ValidityIntervalFiltering) {
  BipartiteGraph b(1, 3);
  // Board seat held 2000-2005, another 2003-2010, a third forever.
  ASSERT_TRUE(b.AddMembership(0, 0, 2000, 2005).ok());
  ASSERT_TRUE(b.AddMembership(0, 1, 2003, 2010).ok());
  ASSERT_TRUE(b.AddMembership(0, 2).ok());

  EXPECT_EQ(b.GroupsByIndividual(1999)[0], (std::vector<NodeId>{2}));
  EXPECT_EQ(b.GroupsByIndividual(2000)[0], (std::vector<NodeId>{0, 2}));
  EXPECT_EQ(b.GroupsByIndividual(2004)[0], (std::vector<NodeId>{0, 1, 2}));
  EXPECT_EQ(b.GroupsByIndividual(2005)[0], (std::vector<NodeId>{1, 2}));
  EXPECT_EQ(b.GroupsByIndividual(2010)[0], (std::vector<NodeId>{2}));
}

TEST(BipartiteTest, EmptyIntervalRejected) {
  BipartiteGraph b(1, 1);
  EXPECT_EQ(b.AddMembership(0, 0, 5, 5).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(b.AddMembership(0, 0, 6, 5).code(), StatusCode::kInvalidArgument);
}

TEST(BipartiteTest, DuplicateMembershipsDeduplicatedInLists) {
  BipartiteGraph b(1, 1);
  ASSERT_TRUE(b.AddMembership(0, 0, 0, 10).ok());
  ASSERT_TRUE(b.AddMembership(0, 0, 5, 20).ok());
  // Overlap at date 7: the lists deduplicate.
  EXPECT_EQ(b.GroupsByIndividual(7)[0], (std::vector<NodeId>{0}));
}

TEST(MembershipTest, ActiveAtIsRightOpen) {
  Membership m{0, 0, 10, 20};
  EXPECT_FALSE(m.ActiveAt(9));
  EXPECT_TRUE(m.ActiveAt(10));
  EXPECT_TRUE(m.ActiveAt(19));
  EXPECT_FALSE(m.ActiveAt(20));
}

}  // namespace
}  // namespace graph
}  // namespace scube
