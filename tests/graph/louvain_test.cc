#include "graph/louvain.h"

#include <gtest/gtest.h>

#include "graph/clustering.h"

namespace scube {
namespace graph {
namespace {

Graph MustBuild(uint32_t n, const std::vector<WeightedEdge>& edges) {
  auto g = Graph::FromEdges(n, edges);
  EXPECT_TRUE(g.ok()) << g.status();
  return std::move(g).value();
}

Graph RingOfCliques(uint32_t num_cliques, uint32_t clique_size) {
  std::vector<WeightedEdge> edges;
  uint32_t n = num_cliques * clique_size;
  for (uint32_t c = 0; c < num_cliques; ++c) {
    uint32_t base = c * clique_size;
    for (uint32_t i = 0; i < clique_size; ++i) {
      for (uint32_t j = i + 1; j < clique_size; ++j) {
        edges.push_back({base + i, base + j, 1.0});
      }
    }
    // One bridge to the next clique.
    uint32_t next_base = ((c + 1) % num_cliques) * clique_size;
    edges.push_back({base + clique_size - 1, next_base, 1.0});
  }
  return MustBuild(n, edges);
}

TEST(LouvainTest, TwoCliquesWithBridge) {
  Graph g = MustBuild(8, {{0, 1, 1}, {0, 2, 1}, {0, 3, 1}, {1, 2, 1},
                          {1, 3, 1}, {2, 3, 1},
                          {4, 5, 1}, {4, 6, 1}, {4, 7, 1}, {5, 6, 1},
                          {5, 7, 1}, {6, 7, 1},
                          {3, 4, 1}});
  auto c = LouvainClustering(g);
  ASSERT_TRUE(c.ok()) << c.status();
  EXPECT_EQ(c->num_clusters, 2u);
  EXPECT_EQ(c->labels[0], c->labels[3]);
  EXPECT_EQ(c->labels[4], c->labels[7]);
  EXPECT_NE(c->labels[0], c->labels[4]);
  EXPECT_GT(Modularity(g, c.value()), 0.3);
}

TEST(LouvainTest, RingOfCliquesRecovered) {
  Graph g = RingOfCliques(6, 5);
  auto c = LouvainClustering(g);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->num_clusters, 6u);
  // Each clique must be monochromatic.
  for (uint32_t clique = 0; clique < 6; ++clique) {
    uint32_t label = c->labels[clique * 5];
    for (uint32_t i = 1; i < 5; ++i) {
      EXPECT_EQ(c->labels[clique * 5 + i], label) << "clique " << clique;
    }
  }
  EXPECT_GT(Modularity(g, c.value()), 0.6);
}

TEST(LouvainTest, DeterministicGivenSeed) {
  Graph g = RingOfCliques(4, 4);
  LouvainOptions opts;
  opts.rng_seed = 42;
  auto a = LouvainClustering(g, opts);
  auto b = LouvainClustering(g, opts);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->labels, b->labels);
}

TEST(LouvainTest, EmptyGraphSingletons) {
  Graph g = MustBuild(4, {});
  auto c = LouvainClustering(g);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->num_clusters, 4u);
}

TEST(LouvainTest, WeightsMatter) {
  // Path 0 -10- 1 -1- 2 -10- 3: heavy pairs should cluster together.
  Graph g = MustBuild(4, {{0, 1, 10}, {1, 2, 1}, {2, 3, 10}});
  auto c = LouvainClustering(g);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->labels[0], c->labels[1]);
  EXPECT_EQ(c->labels[2], c->labels[3]);
  EXPECT_NE(c->labels[0], c->labels[2]);
}

TEST(LouvainTest, ValidatesOptions) {
  Graph g = MustBuild(2, {{0, 1, 1}});
  LouvainOptions opts;
  opts.max_levels = 0;
  EXPECT_FALSE(LouvainClustering(g, opts).ok());
}

TEST(LouvainTest, BeatsTrivialPartitionOnModularity) {
  Graph g = RingOfCliques(5, 6);
  auto c = LouvainClustering(g);
  ASSERT_TRUE(c.ok());
  Clustering trivial;
  trivial.labels.assign(g.NumNodes(), 0);
  trivial.num_clusters = 1;
  EXPECT_GT(Modularity(g, c.value()), Modularity(g, trivial));
}

}  // namespace
}  // namespace graph
}  // namespace scube
