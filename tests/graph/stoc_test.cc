#include "graph/stoc.h"

#include <gtest/gtest.h>

namespace scube {
namespace graph {
namespace {

Graph MustBuild(uint32_t n, const std::vector<WeightedEdge>& edges) {
  auto g = Graph::FromEdges(n, edges);
  EXPECT_TRUE(g.ok()) << g.status();
  return std::move(g).value();
}

// Two 4-cliques joined by one bridge; attribute tokens aligned with cliques.
struct TwoCliqueFixture {
  Graph graph;
  NodeAttributes attrs;

  TwoCliqueFixture()
      : graph(MustBuild(8, {{0, 1, 1}, {0, 2, 1}, {0, 3, 1}, {1, 2, 1},
                            {1, 3, 1}, {2, 3, 1},
                            {4, 5, 1}, {4, 6, 1}, {4, 7, 1}, {5, 6, 1},
                            {5, 7, 1}, {6, 7, 1},
                            {3, 4, 1}})),  // bridge
        attrs(8) {
    for (NodeId u = 0; u < 4; ++u) attrs.SetTokens(u, {100, 101});
    for (NodeId u = 4; u < 8; ++u) attrs.SetTokens(u, {200, 201});
  }
};

TEST(StocSimilarityTest, CombinedMix) {
  TwoCliqueFixture f;
  // Same clique: high topological overlap, identical attributes.
  double same = StocSimilarity(f.graph, f.attrs, 0, 1, 0.5);
  // Across the bridge: no attribute overlap, low topology overlap.
  double cross = StocSimilarity(f.graph, f.attrs, 0, 4, 0.5);
  EXPECT_GT(same, 0.8);
  EXPECT_LT(cross, 0.2);

  // alpha = 0: pure attributes.
  EXPECT_DOUBLE_EQ(StocSimilarity(f.graph, f.attrs, 0, 1, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(StocSimilarity(f.graph, f.attrs, 0, 4, 0.0), 0.0);

  // alpha = 1: pure topology. Nodes 0,1 share {0,1,2,3}; union adds nothing
  // else -> J = 4/4 = 1.
  EXPECT_DOUBLE_EQ(StocSimilarity(f.graph, f.attrs, 0, 1, 1.0), 1.0);
}

TEST(StocClusteringTest, SeparatesAttributedCliques) {
  TwoCliqueFixture f;
  StocOptions opts;
  opts.tau = 0.5;
  auto c = StocClustering(f.graph, f.attrs, opts);
  ASSERT_TRUE(c.ok()) << c.status();
  EXPECT_EQ(c->num_clusters, 2u);
  EXPECT_EQ(c->labels[0], c->labels[1]);
  EXPECT_EQ(c->labels[0], c->labels[2]);
  EXPECT_EQ(c->labels[0], c->labels[3]);
  EXPECT_EQ(c->labels[4], c->labels[5]);
  EXPECT_EQ(c->labels[4], c->labels[7]);
  EXPECT_NE(c->labels[0], c->labels[4]);
}

TEST(StocClusteringTest, TauOneYieldsFinePartition) {
  TwoCliqueFixture f;
  StocOptions opts;
  opts.tau = 1.0;
  auto c = StocClustering(f.graph, f.attrs, opts);
  ASSERT_TRUE(c.ok());
  // Only pairs with perfect combined similarity can merge — with the bridge
  // present no cross-clique merge is possible; the partition is fine-grained.
  EXPECT_GE(c->num_clusters, 2u);
  for (NodeId u = 0; u < 4; ++u) {
    for (NodeId v = 4; v < 8; ++v) {
      EXPECT_NE(c->labels[u], c->labels[v]);
    }
  }
}

TEST(StocClusteringTest, TauZeroMergesNeighbourhoods) {
  TwoCliqueFixture f;
  StocOptions opts;
  opts.tau = 0.0;
  opts.max_radius = 8;
  auto c = StocClustering(f.graph, f.attrs, opts);
  ASSERT_TRUE(c.ok());
  // Everything reachable joins the first seed's cluster.
  EXPECT_EQ(c->num_clusters, 1u);
}

TEST(StocClusteringTest, DeterministicGivenSeed) {
  TwoCliqueFixture f;
  StocOptions opts;
  opts.rng_seed = 77;
  auto a = StocClustering(f.graph, f.attrs, opts);
  auto b = StocClustering(f.graph, f.attrs, opts);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->labels, b->labels);
}

TEST(StocClusteringTest, RadiusLimitsBallGrowth) {
  // Path graph with identical attributes: tau 0 would merge everything,
  // but radius 1 creates balls of limited reach.
  Graph path = MustBuild(6, {{0, 1, 1}, {1, 2, 1}, {2, 3, 1}, {3, 4, 1},
                             {4, 5, 1}});
  NodeAttributes attrs(6);
  for (NodeId u = 0; u < 6; ++u) attrs.SetTokens(u, {1});
  StocOptions opts;
  opts.tau = 0.0;
  opts.max_radius = 1;
  auto c = StocClustering(path, attrs, opts);
  ASSERT_TRUE(c.ok());
  EXPECT_GT(c->num_clusters, 1u);
}

TEST(StocClusteringTest, ValidatesParameters) {
  TwoCliqueFixture f;
  StocOptions opts;
  opts.tau = 1.5;
  EXPECT_FALSE(StocClustering(f.graph, f.attrs, opts).ok());
  opts.tau = 0.5;
  opts.alpha = -0.1;
  EXPECT_FALSE(StocClustering(f.graph, f.attrs, opts).ok());

  NodeAttributes short_attrs(2);
  opts.alpha = 0.5;
  EXPECT_FALSE(StocClustering(f.graph, short_attrs, opts).ok());
}

TEST(StocClusteringTest, EveryNodeAssigned) {
  TwoCliqueFixture f;
  StocOptions opts;
  opts.tau = 0.9;
  auto c = StocClustering(f.graph, f.attrs, opts);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->labels.size(), 8u);
  for (uint32_t label : c->labels) {
    EXPECT_LT(label, c->num_clusters);
  }
}

}  // namespace
}  // namespace graph
}  // namespace scube
