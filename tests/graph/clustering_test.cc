#include "graph/clustering.h"

#include <gtest/gtest.h>

#include "graph/connected_components.h"
#include "graph/threshold_clustering.h"

namespace scube {
namespace graph {
namespace {

Graph MustBuild(uint32_t n, const std::vector<WeightedEdge>& edges) {
  auto g = Graph::FromEdges(n, edges);
  EXPECT_TRUE(g.ok()) << g.status();
  return std::move(g).value();
}

TEST(NormalizeLabelsTest, DenseFirstSeenOrder) {
  Clustering c = NormalizeLabels({7, 7, 3, 7, 9, 3});
  EXPECT_EQ(c.num_clusters, 3u);
  EXPECT_EQ(c.labels, (std::vector<uint32_t>{0, 0, 1, 0, 2, 1}));
  EXPECT_EQ(c.ClusterSizes(), (std::vector<uint32_t>{3, 2, 1}));
  EXPECT_EQ(c.GiantSize(), 3u);
}

TEST(ClusteringTest, MembersInverse) {
  Clustering c = NormalizeLabels({0, 1, 0, 1});
  auto members = c.Members();
  ASSERT_EQ(members.size(), 2u);
  EXPECT_EQ(members[0], (std::vector<NodeId>{0, 2}));
  EXPECT_EQ(members[1], (std::vector<NodeId>{1, 3}));
}

TEST(ConnectedComponentsTest, TwoComponentsAndIsolated) {
  // 0-1-2 path, 3-4 edge, 5 isolated.
  Graph g = MustBuild(6, {{0, 1, 1}, {1, 2, 1}, {3, 4, 1}});
  Clustering c = ConnectedComponents(g);
  EXPECT_EQ(c.num_clusters, 3u);
  EXPECT_EQ(c.labels[0], c.labels[1]);
  EXPECT_EQ(c.labels[1], c.labels[2]);
  EXPECT_EQ(c.labels[3], c.labels[4]);
  EXPECT_NE(c.labels[0], c.labels[3]);
  EXPECT_NE(c.labels[5], c.labels[0]);
  EXPECT_NE(c.labels[5], c.labels[3]);
}

TEST(ConnectedComponentsTest, FullyConnected) {
  Graph g = MustBuild(4, {{0, 1, 1}, {1, 2, 1}, {2, 3, 1}, {0, 3, 1}});
  Clustering c = ConnectedComponents(g);
  EXPECT_EQ(c.num_clusters, 1u);
}

TEST(ConnectedComponentsTest, EmptyGraphAllSingletons) {
  Graph g = MustBuild(5, {});
  Clustering c = ConnectedComponents(g);
  EXPECT_EQ(c.num_clusters, 5u);
}

TEST(ThresholdClusteringTest, GlobalThresholdSplits) {
  // Chain 0 -2- 1 -1- 2 -3- 3: cutting weight<2 splits at the middle edge.
  Graph g = MustBuild(4, {{0, 1, 2}, {1, 2, 1}, {2, 3, 3}});
  ThresholdClusteringOptions opts;
  opts.min_weight = 2.0;
  opts.giant_only = false;
  auto c = ThresholdClustering(g, opts);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->num_clusters, 2u);
  EXPECT_EQ(c->labels[0], c->labels[1]);
  EXPECT_EQ(c->labels[2], c->labels[3]);
  EXPECT_NE(c->labels[0], c->labels[2]);
}

TEST(ThresholdClusteringTest, GiantOnlyPreservesSmallComponents) {
  // Giant: 0-1-2-3-4 weak chain. Small: 5-6 weak edge.
  Graph g = MustBuild(
      7, {{0, 1, 1}, {1, 2, 1}, {2, 3, 1}, {3, 4, 1}, {5, 6, 1}});
  ThresholdClusteringOptions opts;
  opts.min_weight = 2.0;
  opts.giant_only = true;
  auto c = ThresholdClustering(g, opts);
  ASSERT_TRUE(c.ok());
  // Giant shattered into 5 singletons; 5-6 kept together.
  EXPECT_EQ(c->num_clusters, 6u);
  EXPECT_EQ(c->labels[5], c->labels[6]);

  opts.giant_only = false;
  auto c2 = ThresholdClustering(g, opts);
  ASSERT_TRUE(c2.ok());
  EXPECT_EQ(c2->num_clusters, 7u);  // everything shattered
}

TEST(ThresholdClusteringTest, RejectsNegativeThreshold) {
  Graph g = MustBuild(2, {{0, 1, 1}});
  ThresholdClusteringOptions opts;
  opts.min_weight = -1.0;
  EXPECT_FALSE(ThresholdClustering(g, opts).ok());
}

TEST(ModularityTest, TwoTrianglesPartition) {
  Graph g = MustBuild(6, {{0, 1, 1}, {1, 2, 1}, {0, 2, 1},
                          {3, 4, 1}, {4, 5, 1}, {3, 5, 1}});
  Clustering c = NormalizeLabels({0, 0, 0, 1, 1, 1});
  EXPECT_NEAR(Modularity(g, c), 0.5, 1e-12);
  EXPECT_NEAR(IntraClusterWeightFraction(g, c), 1.0, 1e-12);

  // All nodes in one cluster: Q = 0.
  Clustering one = NormalizeLabels({0, 0, 0, 0, 0, 0});
  EXPECT_NEAR(Modularity(g, one), 0.0, 1e-12);
}

TEST(ModularityTest, BadPartitionScoresLower) {
  Graph g = MustBuild(6, {{0, 1, 1}, {1, 2, 1}, {0, 2, 1},
                          {3, 4, 1}, {4, 5, 1}, {3, 5, 1}});
  Clustering good = NormalizeLabels({0, 0, 0, 1, 1, 1});
  Clustering bad = NormalizeLabels({0, 1, 0, 1, 0, 1});
  EXPECT_GT(Modularity(g, good), Modularity(g, bad));
  EXPECT_LT(IntraClusterWeightFraction(g, bad), 0.5);
}

TEST(AttributeHomogeneityTest, HomogeneousClustersScoreHigh) {
  NodeAttributes attrs(4);
  attrs.SetTokens(0, {1, 2});
  attrs.SetTokens(1, {1, 2});
  attrs.SetTokens(2, {3, 4});
  attrs.SetTokens(3, {3, 4});
  Rng rng(5);
  Clustering aligned = NormalizeLabels({0, 0, 1, 1});
  Clustering crossed = NormalizeLabels({0, 1, 0, 1});
  EXPECT_NEAR(AttributeHomogeneity(attrs, aligned, &rng, 500), 1.0, 1e-12);
  EXPECT_NEAR(AttributeHomogeneity(attrs, crossed, &rng, 500), 0.0, 1e-12);
}

TEST(AttributeHomogeneityTest, SingletonsOnlyYieldZero) {
  NodeAttributes attrs(2);
  attrs.SetTokens(0, {1});
  attrs.SetTokens(1, {1});
  Rng rng(5);
  Clustering singletons = NormalizeLabels({0, 1});
  EXPECT_DOUBLE_EQ(AttributeHomogeneity(attrs, singletons, &rng, 100), 0.0);
}

}  // namespace
}  // namespace graph
}  // namespace scube
