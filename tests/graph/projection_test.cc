#include "graph/projection.h"

#include <gtest/gtest.h>

namespace scube {
namespace graph {
namespace {

BipartiteGraph BoardFixture() {
  // Directors I0..I3, companies A=0, B=1, C=2, D=3.
  // I0 on {A,B}, I1 on {A,B}, I2 on {B,C}, I3 on {D}.
  BipartiteGraph b(4, 4);
  EXPECT_TRUE(b.AddMembership(0, 0).ok());
  EXPECT_TRUE(b.AddMembership(0, 1).ok());
  EXPECT_TRUE(b.AddMembership(1, 0).ok());
  EXPECT_TRUE(b.AddMembership(1, 1).ok());
  EXPECT_TRUE(b.AddMembership(2, 1).ok());
  EXPECT_TRUE(b.AddMembership(2, 2).ok());
  EXPECT_TRUE(b.AddMembership(3, 3).ok());
  return b;
}

TEST(ProjectionTest, GroupsSideWeightsAreSharedDirectors) {
  auto r = ProjectBipartite(BoardFixture(), ProjectionOptions{});
  ASSERT_TRUE(r.ok()) << r.status();
  const Graph& g = r->graph;
  EXPECT_EQ(g.NumNodes(), 4u);
  EXPECT_EQ(g.NumEdges(), 2u);
  EXPECT_DOUBLE_EQ(g.EdgeWeight(0, 1), 2.0);  // A-B share I0, I1
  EXPECT_DOUBLE_EQ(g.EdgeWeight(1, 2), 1.0);  // B-C share I2
  EXPECT_FALSE(g.HasEdge(0, 2));
  EXPECT_EQ(r->isolated, (std::vector<NodeId>{3}));  // D has no shared edge
  EXPECT_EQ(r->raw_pairs, 2u);
  EXPECT_EQ(r->hubs_skipped, 0u);
}

TEST(ProjectionTest, IndividualsSideConnectsCoBoardMembers) {
  ProjectionOptions opts;
  opts.side = ProjectionSide::kIndividuals;
  auto r = ProjectBipartite(BoardFixture(), opts);
  ASSERT_TRUE(r.ok());
  const Graph& g = r->graph;
  EXPECT_EQ(g.NumNodes(), 4u);
  // I0-I1 share boards A and B -> weight 2; I0-I2 and I1-I2 share B.
  EXPECT_DOUBLE_EQ(g.EdgeWeight(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(g.EdgeWeight(0, 2), 1.0);
  EXPECT_DOUBLE_EQ(g.EdgeWeight(1, 2), 1.0);
  EXPECT_EQ(r->isolated, (std::vector<NodeId>{3}));
}

TEST(ProjectionTest, MinWeightDropsWeakTies) {
  ProjectionOptions opts;
  opts.min_weight = 2.0;
  auto r = ProjectBipartite(BoardFixture(), opts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->graph.NumEdges(), 1u);
  EXPECT_TRUE(r->graph.HasEdge(0, 1));
  // B-C edge (weight 1) dropped; C becomes isolated too.
  EXPECT_EQ(r->isolated, (std::vector<NodeId>{2, 3}));
}

TEST(ProjectionTest, HubCapSkipsProlificDirectors) {
  BipartiteGraph b(2, 5);
  // I0 sits on 5 boards (a hub); I1 on 2.
  for (NodeId g = 0; g < 5; ++g) ASSERT_TRUE(b.AddMembership(0, g).ok());
  ASSERT_TRUE(b.AddMembership(1, 0).ok());
  ASSERT_TRUE(b.AddMembership(1, 1).ok());

  ProjectionOptions no_cap;
  auto full = ProjectBipartite(b, no_cap);
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full->graph.NumEdges(), 10u);  // clique over 5
  EXPECT_EQ(full->hubs_skipped, 0u);

  ProjectionOptions capped;
  capped.hub_cap = 3;
  auto r = ProjectBipartite(b, capped);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->hubs_skipped, 1u);
  EXPECT_EQ(r->graph.NumEdges(), 1u);  // only I1's pair remains
  EXPECT_DOUBLE_EQ(r->graph.EdgeWeight(0, 1), 1.0);
}

TEST(ProjectionTest, SnapshotDateControlsEdges) {
  BipartiteGraph b(1, 2);
  ASSERT_TRUE(b.AddMembership(0, 0, 2000, 2010).ok());
  ASSERT_TRUE(b.AddMembership(0, 1, 2005, 2015).ok());

  ProjectionOptions at_2003;
  at_2003.date = 2003;
  auto r1 = ProjectBipartite(b, at_2003);
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(r1->graph.NumEdges(), 0u);  // only group 0 active

  ProjectionOptions at_2007;
  at_2007.date = 2007;
  auto r2 = ProjectBipartite(b, at_2007);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->graph.NumEdges(), 1u);  // both active: edge 0-1
}

TEST(ProjectionTest, EmptyBipartiteYieldsAllIsolated) {
  BipartiteGraph b(3, 3);
  auto r = ProjectBipartite(b, ProjectionOptions{});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->graph.NumEdges(), 0u);
  EXPECT_EQ(r->isolated.size(), 3u);
}

}  // namespace
}  // namespace graph
}  // namespace scube
