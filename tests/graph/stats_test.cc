#include "graph/stats.h"

#include <gtest/gtest.h>

#include "graph/connected_components.h"
#include "graph/louvain.h"

namespace scube {
namespace graph {
namespace {

Graph MustBuild(uint32_t n, const std::vector<WeightedEdge>& edges) {
  auto g = Graph::FromEdges(n, edges);
  EXPECT_TRUE(g.ok()) << g.status();
  return std::move(g).value();
}

TEST(GraphStatsTest, BasicCounts) {
  Graph g = MustBuild(5, {{0, 1, 2.0}, {1, 2, 4.0}, {0, 2, 6.0}});
  GraphStats stats = ComputeGraphStats(g);
  EXPECT_EQ(stats.num_nodes, 5u);
  EXPECT_EQ(stats.num_edges, 3u);
  EXPECT_EQ(stats.num_isolated, 2u);
  EXPECT_DOUBLE_EQ(stats.mean_degree, 6.0 / 5.0);
  EXPECT_EQ(stats.max_degree, 2u);
  EXPECT_DOUBLE_EQ(stats.mean_edge_weight, 4.0);
  EXPECT_DOUBLE_EQ(stats.max_edge_weight, 6.0);
}

TEST(GraphStatsTest, EmptyGraph) {
  Graph g = MustBuild(0, {});
  GraphStats stats = ComputeGraphStats(g);
  EXPECT_EQ(stats.num_nodes, 0u);
  EXPECT_DOUBLE_EQ(stats.mean_degree, 0.0);
}

TEST(DegreeHistogramTest, BucketsAndOverflow) {
  // Star: centre degree 4, leaves degree 1.
  Graph g = MustBuild(5, {{0, 1, 1}, {0, 2, 1}, {0, 3, 1}, {0, 4, 1}});
  auto h = DegreeHistogram(g, 3);
  ASSERT_EQ(h.size(), 4u);
  EXPECT_EQ(h[0], 0u);
  EXPECT_EQ(h[1], 4u);
  EXPECT_EQ(h[2], 0u);
  EXPECT_EQ(h[3], 1u);  // centre capped into the last bucket
}

TEST(ClusteringCoefficientTest, TriangleAndStar) {
  Graph triangle = MustBuild(3, {{0, 1, 1}, {1, 2, 1}, {0, 2, 1}});
  EXPECT_DOUBLE_EQ(LocalClusteringCoefficient(triangle, 0), 1.0);

  Graph star = MustBuild(4, {{0, 1, 1}, {0, 2, 1}, {0, 3, 1}});
  EXPECT_DOUBLE_EQ(LocalClusteringCoefficient(star, 0), 0.0);
  EXPECT_DOUBLE_EQ(LocalClusteringCoefficient(star, 1), 0.0);  // degree 1

  Rng rng(3);
  EXPECT_DOUBLE_EQ(MeanClusteringCoefficient(triangle, &rng, 100), 1.0);
}

TEST(AdjustedRandIndexTest, IdenticalPartitions) {
  Clustering a = NormalizeLabels({0, 0, 1, 1, 2, 2});
  Clustering b = NormalizeLabels({5, 5, 9, 9, 7, 7});  // same up to renaming
  EXPECT_DOUBLE_EQ(AdjustedRandIndex(a, a), 1.0);
  EXPECT_DOUBLE_EQ(AdjustedRandIndex(a, b), 1.0);
}

TEST(AdjustedRandIndexTest, OrthogonalPartitionsScoreLow) {
  // a splits {0..3} vs {4..7}; b alternates: agreement is chance-level.
  Clustering a = NormalizeLabels({0, 0, 0, 0, 1, 1, 1, 1});
  Clustering b = NormalizeLabels({0, 1, 0, 1, 0, 1, 0, 1});
  double ari = AdjustedRandIndex(a, b);
  EXPECT_LT(ari, 0.1);
  EXPECT_GT(ari, -0.5);
}

TEST(AdjustedRandIndexTest, PartialAgreement) {
  Clustering truth = NormalizeLabels({0, 0, 0, 1, 1, 1});
  Clustering close = NormalizeLabels({0, 0, 1, 1, 1, 1});  // one misplaced
  double ari = AdjustedRandIndex(truth, close);
  EXPECT_GT(ari, 0.3);
  EXPECT_LT(ari, 1.0);
}

TEST(AdjustedRandIndexTest, TrivialPartitions) {
  Clustering all_one = NormalizeLabels({0, 0, 0, 0});
  EXPECT_DOUBLE_EQ(AdjustedRandIndex(all_one, all_one), 1.0);
  Clustering singletons = NormalizeLabels({0, 1, 2, 3});
  EXPECT_DOUBLE_EQ(AdjustedRandIndex(singletons, singletons), 1.0);
}

TEST(AdjustedRandIndexTest, LouvainRecoversPlantedCliques) {
  // Ring of 4 cliques of 5; ground truth = clique membership.
  std::vector<WeightedEdge> edges;
  std::vector<uint32_t> truth_labels;
  for (uint32_t c = 0; c < 4; ++c) {
    uint32_t base = c * 5;
    for (uint32_t i = 0; i < 5; ++i) {
      truth_labels.push_back(c);
      for (uint32_t j = i + 1; j < 5; ++j) {
        edges.push_back({base + i, base + j, 1.0});
      }
    }
    edges.push_back({base + 4, ((c + 1) % 4) * 5, 1.0});
  }
  auto g = Graph::FromEdges(20, edges);
  ASSERT_TRUE(g.ok());
  auto louvain = LouvainClustering(g.value());
  ASSERT_TRUE(louvain.ok());
  Clustering truth = NormalizeLabels(std::move(truth_labels));
  EXPECT_GT(AdjustedRandIndex(truth, louvain.value()), 0.95);
}

}  // namespace
}  // namespace graph
}  // namespace scube
