#include "graph/graph.h"

#include <gtest/gtest.h>

namespace scube {
namespace graph {
namespace {

Graph MustBuild(uint32_t n, const std::vector<WeightedEdge>& edges) {
  auto g = Graph::FromEdges(n, edges);
  EXPECT_TRUE(g.ok()) << g.status();
  return std::move(g).value();
}

TEST(GraphTest, EmptyGraph) {
  Graph g = MustBuild(3, {});
  EXPECT_EQ(g.NumNodes(), 3u);
  EXPECT_EQ(g.NumEdges(), 0u);
  EXPECT_EQ(g.Degree(0), 0u);
  EXPECT_DOUBLE_EQ(g.TotalWeight(), 0.0);
}

TEST(GraphTest, BasicAdjacency) {
  Graph g = MustBuild(4, {{0, 1, 2.0}, {1, 2, 1.0}, {0, 3, 5.0}});
  EXPECT_EQ(g.NumEdges(), 3u);
  EXPECT_EQ(g.Degree(0), 2u);
  EXPECT_EQ(g.Degree(1), 2u);
  EXPECT_EQ(g.Degree(2), 1u);
  EXPECT_DOUBLE_EQ(g.TotalWeight(), 8.0);
  EXPECT_DOUBLE_EQ(g.WeightedDegree(0), 7.0);
  EXPECT_DOUBLE_EQ(g.EdgeWeight(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(g.EdgeWeight(1, 0), 2.0);
  EXPECT_DOUBLE_EQ(g.EdgeWeight(2, 3), 0.0);
  EXPECT_TRUE(g.HasEdge(0, 3));
  EXPECT_FALSE(g.HasEdge(1, 3));
}

TEST(GraphTest, NeighborsAreSortedByNode) {
  Graph g = MustBuild(5, {{2, 4, 1.0}, {2, 0, 1.0}, {2, 3, 1.0}, {2, 1, 1.0}});
  auto nbrs = g.Neighbors(2);
  ASSERT_EQ(nbrs.size(), 4u);
  for (size_t i = 1; i < nbrs.size(); ++i) {
    EXPECT_LT(nbrs[i - 1].node, nbrs[i].node);
  }
}

TEST(GraphTest, ParallelEdgesMergeWeights) {
  Graph g = MustBuild(2, {{0, 1, 1.0}, {1, 0, 2.5}, {0, 1, 0.5}});
  EXPECT_EQ(g.NumEdges(), 1u);
  EXPECT_DOUBLE_EQ(g.EdgeWeight(0, 1), 4.0);
}

TEST(GraphTest, SelfLoopRejected) {
  auto g = Graph::FromEdges(2, {{1, 1, 1.0}});
  EXPECT_EQ(g.status().code(), StatusCode::kInvalidArgument);
}

TEST(GraphTest, OutOfRangeEndpointRejected) {
  auto g = Graph::FromEdges(2, {{0, 2, 1.0}});
  EXPECT_EQ(g.status().code(), StatusCode::kOutOfRange);
}

TEST(GraphTest, NonPositiveWeightRejected) {
  EXPECT_FALSE(Graph::FromEdges(2, {{0, 1, 0.0}}).ok());
  EXPECT_FALSE(Graph::FromEdges(2, {{0, 1, -1.0}}).ok());
}

TEST(GraphTest, FilterEdgesKeepsHeavyOnes) {
  Graph g = MustBuild(4, {{0, 1, 1.0}, {1, 2, 3.0}, {2, 3, 2.0}});
  Graph f = g.FilterEdges(2.0);
  EXPECT_EQ(f.NumEdges(), 2u);
  EXPECT_FALSE(f.HasEdge(0, 1));
  EXPECT_TRUE(f.HasEdge(1, 2));
  EXPECT_TRUE(f.HasEdge(2, 3));
  EXPECT_EQ(f.NumNodes(), 4u);
}

TEST(GraphTest, EdgesRoundTrip) {
  std::vector<WeightedEdge> in{{0, 1, 2.0}, {1, 3, 1.0}, {2, 3, 4.0}};
  Graph g = MustBuild(4, in);
  auto out = g.Edges();
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], (WeightedEdge{0, 1, 2.0}));
  EXPECT_EQ(out[1], (WeightedEdge{1, 3, 1.0}));
  EXPECT_EQ(out[2], (WeightedEdge{2, 3, 4.0}));
}

TEST(NodeAttributesTest, JaccardSimilarity) {
  NodeAttributes attrs(3);
  attrs.SetTokens(0, {1, 2, 3});
  attrs.SetTokens(1, {2, 3, 4});
  attrs.SetTokens(2, {});
  EXPECT_DOUBLE_EQ(attrs.Jaccard(0, 1), 0.5);  // |{2,3}| / |{1,2,3,4}|
  EXPECT_DOUBLE_EQ(attrs.Jaccard(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(attrs.Jaccard(0, 2), 0.0);
  EXPECT_DOUBLE_EQ(attrs.Jaccard(2, 2), 1.0);  // both empty: identical
}

TEST(NodeAttributesTest, TokensDeduplicated) {
  NodeAttributes attrs(1);
  attrs.SetTokens(0, {5, 5, 1, 1});
  EXPECT_EQ(attrs.Tokens(0), (std::vector<uint32_t>{1, 5}));
}

}  // namespace
}  // namespace graph
}  // namespace scube
