#include "indexes/segregation_index.h"

#include <algorithm>
#include <cmath>

namespace scube {
namespace indexes {

const std::array<IndexKind, kNumIndexKinds>& AllIndexKinds() {
  static const std::array<IndexKind, kNumIndexKinds> kAll = {
      IndexKind::kDissimilarity, IndexKind::kGini, IndexKind::kInformation,
      IndexKind::kIsolation,     IndexKind::kInteraction,
      IndexKind::kAtkinson,
  };
  return kAll;
}

const char* IndexKindToString(IndexKind kind) {
  switch (kind) {
    case IndexKind::kDissimilarity:
      return "dissimilarity";
    case IndexKind::kGini:
      return "gini";
    case IndexKind::kInformation:
      return "information";
    case IndexKind::kIsolation:
      return "isolation";
    case IndexKind::kInteraction:
      return "interaction";
    case IndexKind::kAtkinson:
      return "atkinson";
  }
  return "?";
}

Result<IndexKind> IndexKindFromString(const std::string& name) {
  for (IndexKind kind : AllIndexKinds()) {
    if (name == IndexKindToString(kind)) return kind;
  }
  return Status::NotFound("unknown segregation index: " + name);
}

namespace {

Status CheckComputable(const GroupDistribution& dist) {
  SCUBE_RETURN_IF_ERROR(dist.Validate());
  if (dist.Total() == 0) {
    return Status::FailedPrecondition("empty population (T = 0)");
  }
  if (dist.Minority() == 0) {
    return Status::FailedPrecondition("empty minority group (M = 0)");
  }
  if (dist.Minority() == dist.Total()) {
    return Status::FailedPrecondition("minority equals population (M = T)");
  }
  return Status::OK();
}

double EntropyOf(double p) {
  // Binary entropy in nats with the 0*ln(0) = 0 convention.
  double e = 0.0;
  if (p > 0.0) e -= p * std::log(p);
  if (p < 1.0) e -= (1.0 - p) * std::log(1.0 - p);
  return e;
}

}  // namespace

Result<double> Dissimilarity(const GroupDistribution& dist) {
  SCUBE_RETURN_IF_ERROR(CheckComputable(dist));
  const double m_total = static_cast<double>(dist.Minority());
  const double maj_total = static_cast<double>(dist.Total() - dist.Minority());
  double sum = 0.0;
  for (size_t i = 0; i < dist.NumUnits(); ++i) {
    double mi = static_cast<double>(dist.UnitMinority(i));
    double oi = static_cast<double>(dist.UnitTotal(i) - dist.UnitMinority(i));
    sum += std::fabs(mi / m_total - oi / maj_total);
  }
  return 0.5 * sum;
}

Result<double> Gini(const GroupDistribution& dist) {
  SCUBE_RETURN_IF_ERROR(CheckComputable(dist));
  // O(n log n): sort units by p_i; then
  //   sum_{i,j} t_i t_j |p_i - p_j| = 2 * sum_j t_j * (p_j * S_t - S_tp)
  // over the prefix before j in sorted order.
  std::vector<std::pair<double, double>> units;  // (p_i, t_i)
  units.reserve(dist.NumUnits());
  for (size_t i = 0; i < dist.NumUnits(); ++i) {
    double ti = static_cast<double>(dist.UnitTotal(i));
    if (ti == 0.0) continue;
    double pi = static_cast<double>(dist.UnitMinority(i)) / ti;
    units.emplace_back(pi, ti);
  }
  std::sort(units.begin(), units.end());
  double prefix_t = 0.0, prefix_tp = 0.0, pair_sum = 0.0;
  for (const auto& [p, t] : units) {
    pair_sum += t * (p * prefix_t - prefix_tp);
    prefix_t += t;
    prefix_tp += t * p;
  }
  pair_sum *= 2.0;
  double total = static_cast<double>(dist.Total());
  double prop = dist.MinorityProportion();
  return pair_sum / (2.0 * total * total * prop * (1.0 - prop));
}

Result<double> GiniQuadraticReference(const GroupDistribution& dist) {
  SCUBE_RETURN_IF_ERROR(CheckComputable(dist));
  double sum = 0.0;
  for (size_t i = 0; i < dist.NumUnits(); ++i) {
    double ti = static_cast<double>(dist.UnitTotal(i));
    if (ti == 0.0) continue;
    double pi = static_cast<double>(dist.UnitMinority(i)) / ti;
    for (size_t j = 0; j < dist.NumUnits(); ++j) {
      double tj = static_cast<double>(dist.UnitTotal(j));
      if (tj == 0.0) continue;
      double pj = static_cast<double>(dist.UnitMinority(j)) / tj;
      sum += ti * tj * std::fabs(pi - pj);
    }
  }
  double total = static_cast<double>(dist.Total());
  double prop = dist.MinorityProportion();
  return sum / (2.0 * total * total * prop * (1.0 - prop));
}

Result<double> Information(const GroupDistribution& dist) {
  SCUBE_RETURN_IF_ERROR(CheckComputable(dist));
  double entropy = EntropyOf(dist.MinorityProportion());
  double total = static_cast<double>(dist.Total());
  double sum = 0.0;
  for (size_t i = 0; i < dist.NumUnits(); ++i) {
    double ti = static_cast<double>(dist.UnitTotal(i));
    if (ti == 0.0) continue;
    double pi = static_cast<double>(dist.UnitMinority(i)) / ti;
    sum += ti * (entropy - EntropyOf(pi));
  }
  return sum / (total * entropy);
}

Result<double> Isolation(const GroupDistribution& dist) {
  SCUBE_RETURN_IF_ERROR(CheckComputable(dist));
  double m_total = static_cast<double>(dist.Minority());
  double sum = 0.0;
  for (size_t i = 0; i < dist.NumUnits(); ++i) {
    double ti = static_cast<double>(dist.UnitTotal(i));
    if (ti == 0.0) continue;
    double mi = static_cast<double>(dist.UnitMinority(i));
    sum += (mi / m_total) * (mi / ti);
  }
  return sum;
}

Result<double> Interaction(const GroupDistribution& dist) {
  SCUBE_RETURN_IF_ERROR(CheckComputable(dist));
  double m_total = static_cast<double>(dist.Minority());
  double sum = 0.0;
  for (size_t i = 0; i < dist.NumUnits(); ++i) {
    double ti = static_cast<double>(dist.UnitTotal(i));
    if (ti == 0.0) continue;
    double mi = static_cast<double>(dist.UnitMinority(i));
    sum += (mi / m_total) * ((ti - mi) / ti);
  }
  return sum;
}

Result<double> Atkinson(const GroupDistribution& dist, double b) {
  SCUBE_RETURN_IF_ERROR(CheckComputable(dist));
  if (b <= 0.0 || b >= 1.0) {
    return Status::InvalidArgument("Atkinson parameter b must be in (0,1)");
  }
  double total = static_cast<double>(dist.Total());
  double prop = dist.MinorityProportion();
  double sum = 0.0;
  for (size_t i = 0; i < dist.NumUnits(); ++i) {
    double ti = static_cast<double>(dist.UnitTotal(i));
    if (ti == 0.0) continue;
    double pi = static_cast<double>(dist.UnitMinority(i)) / ti;
    sum += std::pow(1.0 - pi, 1.0 - b) * std::pow(pi, b) * ti;
  }
  double inner = sum / (prop * total);
  return 1.0 - (prop / (1.0 - prop)) * std::pow(inner, 1.0 / (1.0 - b));
}

Result<double> ComputeIndex(IndexKind kind, const GroupDistribution& dist,
                            const IndexParams& params) {
  switch (kind) {
    case IndexKind::kDissimilarity:
      return Dissimilarity(dist);
    case IndexKind::kGini:
      return Gini(dist);
    case IndexKind::kInformation:
      return Information(dist);
    case IndexKind::kIsolation:
      return Isolation(dist);
    case IndexKind::kInteraction:
      return Interaction(dist);
    case IndexKind::kAtkinson:
      return Atkinson(dist, params.atkinson_b);
  }
  return Status::Internal("unreachable index kind");
}

Result<IndexVector> ComputeAllIndexes(const GroupDistribution& dist,
                                      const IndexParams& params) {
  SCUBE_RETURN_IF_ERROR(dist.Validate());
  IndexVector out;
  if (dist.IsDegenerate()) {
    out.defined = false;
    return out;
  }
  for (IndexKind kind : AllIndexKinds()) {
    auto v = ComputeIndex(kind, dist, params);
    if (!v.ok()) return v.status();
    out.values[static_cast<size_t>(kind)] = v.value();
  }
  out.defined = true;
  return out;
}

}  // namespace indexes
}  // namespace scube
