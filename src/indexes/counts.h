// GroupDistribution: per-unit population/minority counts, the common input
// of every segregation index.
//
// Notation follows the paper (§2): T = total population, 0 < M < T the
// minority size, n organisational units, t_i the unit-i population and m_i
// the unit-i minority count, P = M/T.

#ifndef SCUBE_INDEXES_COUNTS_H_
#define SCUBE_INDEXES_COUNTS_H_

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace scube {
namespace indexes {

/// \brief Per-unit (t_i, m_i) counts for one cube cell.
class GroupDistribution {
 public:
  GroupDistribution() = default;

  /// Appends a unit with `total` members of which `minority` are minority.
  /// Units with total == 0 may be added; they are ignored by all indexes.
  void AddUnit(uint64_t total, uint64_t minority);

  /// Convenience: builds from parallel vectors.
  static GroupDistribution FromVectors(const std::vector<uint64_t>& totals,
                                       const std::vector<uint64_t>& minorities);

  size_t NumUnits() const { return totals_.size(); }
  uint64_t UnitTotal(size_t i) const { return totals_[i]; }
  uint64_t UnitMinority(size_t i) const { return minorities_[i]; }

  /// T: total population over all units.
  uint64_t Total() const { return total_; }

  /// M: total minority over all units.
  uint64_t Minority() const { return minority_; }

  /// P = M/T (0 when T == 0).
  double MinorityProportion() const;

  /// Checks structural invariants: m_i <= t_i for every unit.
  Status Validate() const;

  /// True iff a segregation index is well defined: T > 0, 0 < M < T, and at
  /// least one non-empty unit.
  bool IsDegenerate() const;

 private:
  std::vector<uint64_t> totals_;
  std::vector<uint64_t> minorities_;
  uint64_t total_ = 0;
  uint64_t minority_ = 0;
};

}  // namespace indexes
}  // namespace scube

#endif  // SCUBE_INDEXES_COUNTS_H_
