// Permutation significance test for segregation indexes (extension).
//
// Observed index values can be high by chance when units are small. This
// test draws the null distribution of an index under random assignment of
// the M minority members across units (multivariate hypergeometric: unit
// sizes fixed, minority placed uniformly at random) and reports a one-sided
// p-value for the observed value.

#ifndef SCUBE_INDEXES_SIGNIFICANCE_H_
#define SCUBE_INDEXES_SIGNIFICANCE_H_

#include <cstdint>

#include "common/random.h"
#include "common/result.h"
#include "indexes/counts.h"
#include "indexes/segregation_index.h"

namespace scube {
namespace indexes {

/// \brief Result of a permutation test.
struct SignificanceResult {
  double observed = 0.0;    ///< index value on the real data
  double null_mean = 0.0;   ///< mean index under the null
  double null_stddev = 0.0; ///< stddev under the null
  double p_value = 1.0;     ///< P(null >= observed), add-one corrected
  uint32_t num_samples = 0;
};

/// \brief Options for the permutation test.
struct SignificanceOptions {
  uint32_t num_samples = 200;
  uint64_t seed = 0xC0FFEEULL;
  IndexParams params;
};

/// Runs the test for `kind` on `dist`. Fails on degenerate distributions.
Result<SignificanceResult> PermutationTest(
    IndexKind kind, const GroupDistribution& dist,
    const SignificanceOptions& options = SignificanceOptions());

}  // namespace indexes
}  // namespace scube

#endif  // SCUBE_INDEXES_SIGNIFICANCE_H_
