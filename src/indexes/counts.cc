#include "indexes/counts.h"

namespace scube {
namespace indexes {

void GroupDistribution::AddUnit(uint64_t total, uint64_t minority) {
  totals_.push_back(total);
  minorities_.push_back(minority);
  total_ += total;
  minority_ += minority;
}

GroupDistribution GroupDistribution::FromVectors(
    const std::vector<uint64_t>& totals,
    const std::vector<uint64_t>& minorities) {
  GroupDistribution d;
  size_t n = totals.size() < minorities.size() ? totals.size()
                                               : minorities.size();
  for (size_t i = 0; i < n; ++i) d.AddUnit(totals[i], minorities[i]);
  return d;
}

double GroupDistribution::MinorityProportion() const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(minority_) / static_cast<double>(total_);
}

Status GroupDistribution::Validate() const {
  for (size_t i = 0; i < totals_.size(); ++i) {
    if (minorities_[i] > totals_[i]) {
      return Status::InvalidArgument(
          "unit " + std::to_string(i) + " has minority " +
          std::to_string(minorities_[i]) + " > total " +
          std::to_string(totals_[i]));
    }
  }
  return Status::OK();
}

bool GroupDistribution::IsDegenerate() const {
  return total_ == 0 || minority_ == 0 || minority_ == total_;
}

}  // namespace indexes
}  // namespace scube
