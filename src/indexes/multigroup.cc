#include "indexes/multigroup.h"

#include <cmath>

#include "indexes/segregation_index.h"

namespace scube {
namespace indexes {

Status MultigroupDistribution::AddUnit(
    const std::vector<uint64_t>& group_counts) {
  if (group_counts.size() != num_groups_) {
    return Status::InvalidArgument(
        "unit has " + std::to_string(group_counts.size()) +
        " group counts, expected " + std::to_string(num_groups_));
  }
  units_.push_back(group_counts);
  for (size_t g = 0; g < num_groups_; ++g) {
    group_totals_[g] += group_counts[g];
    total_ += group_counts[g];
  }
  return Status::OK();
}

uint64_t MultigroupDistribution::UnitTotal(size_t i) const {
  uint64_t total = 0;
  for (uint64_t c : units_[i]) total += c;
  return total;
}

bool MultigroupDistribution::IsDegenerate() const {
  if (total_ == 0) return true;
  size_t nonempty = 0;
  for (uint64_t g : group_totals_) {
    if (g > 0) ++nonempty;
  }
  return nonempty < 2;
}

GroupDistribution MultigroupDistribution::BinaryView(size_t group) const {
  GroupDistribution out;
  for (size_t i = 0; i < units_.size(); ++i) {
    out.AddUnit(UnitTotal(i), units_[i][group]);
  }
  return out;
}

namespace {

Status CheckComputable(const MultigroupDistribution& dist) {
  if (dist.IsDegenerate()) {
    return Status::FailedPrecondition(
        "multigroup index needs at least two non-empty groups");
  }
  return Status::OK();
}

}  // namespace

Result<double> MultigroupDissimilarity(const MultigroupDistribution& dist) {
  SCUBE_RETURN_IF_ERROR(CheckComputable(dist));
  const double total = static_cast<double>(dist.Total());
  double simpson = 0.0;  // I = sum_g P_g (1 - P_g)
  for (size_t g = 0; g < dist.num_groups(); ++g) {
    double pg = static_cast<double>(dist.GroupTotal(g)) / total;
    simpson += pg * (1.0 - pg);
  }
  double sum = 0.0;
  for (size_t i = 0; i < dist.NumUnits(); ++i) {
    double ti = static_cast<double>(dist.UnitTotal(i));
    if (ti == 0.0) continue;
    for (size_t g = 0; g < dist.num_groups(); ++g) {
      double pig = static_cast<double>(dist.UnitGroup(i, g)) / ti;
      double pg = static_cast<double>(dist.GroupTotal(g)) / total;
      sum += ti * std::fabs(pig - pg);
    }
  }
  return sum / (2.0 * total * simpson);
}

Result<double> MultigroupInformation(const MultigroupDistribution& dist) {
  SCUBE_RETURN_IF_ERROR(CheckComputable(dist));
  const double total = static_cast<double>(dist.Total());
  auto entropy = [](const std::vector<double>& proportions) {
    double e = 0.0;
    for (double p : proportions) {
      if (p > 0.0) e -= p * std::log(p);
    }
    return e;
  };
  std::vector<double> global;
  for (size_t g = 0; g < dist.num_groups(); ++g) {
    global.push_back(static_cast<double>(dist.GroupTotal(g)) / total);
  }
  double e_global = entropy(global);
  if (e_global == 0.0) {
    return Status::FailedPrecondition("zero global entropy");
  }
  double weighted = 0.0;
  for (size_t i = 0; i < dist.NumUnits(); ++i) {
    double ti = static_cast<double>(dist.UnitTotal(i));
    if (ti == 0.0) continue;
    std::vector<double> local;
    for (size_t g = 0; g < dist.num_groups(); ++g) {
      local.push_back(static_cast<double>(dist.UnitGroup(i, g)) / ti);
    }
    weighted += ti * entropy(local);
  }
  return 1.0 - weighted / (total * e_global);
}

Result<double> NormalizedExposure(const MultigroupDistribution& dist) {
  SCUBE_RETURN_IF_ERROR(CheckComputable(dist));
  const double total = static_cast<double>(dist.Total());
  double sum = 0.0;
  for (size_t g = 0; g < dist.num_groups(); ++g) {
    double pg = static_cast<double>(dist.GroupTotal(g)) / total;
    if (pg == 0.0 || pg == 1.0) continue;
    for (size_t i = 0; i < dist.NumUnits(); ++i) {
      double ti = static_cast<double>(dist.UnitTotal(i));
      if (ti == 0.0) continue;
      double pig = static_cast<double>(dist.UnitGroup(i, g)) / ti;
      sum += ti * (pig - pg) * (pig - pg) / (1.0 - pg);
    }
  }
  return sum / total;
}

Result<double> CorrelationRatio(const GroupDistribution& dist) {
  auto isolation = Isolation(dist);
  if (!isolation.ok()) return isolation.status();
  double p = dist.MinorityProportion();
  return (isolation.value() - p) / (1.0 - p);
}

}  // namespace indexes
}  // namespace scube
