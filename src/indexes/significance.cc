#include "indexes/significance.h"

#include <cmath>
#include <vector>

namespace scube {
namespace indexes {

namespace {

// Draws unit minority counts from the multivariate hypergeometric
// distribution: M draws without replacement from T slots partitioned by
// unit sizes. Sequential conditional binomial-free sampling.
GroupDistribution SampleNull(const GroupDistribution& dist, Rng* rng) {
  uint64_t remaining_population = dist.Total();
  uint64_t remaining_minority = dist.Minority();
  GroupDistribution out;
  for (size_t i = 0; i < dist.NumUnits(); ++i) {
    uint64_t ti = dist.UnitTotal(i);
    // Hypergeometric draw: of the remaining minority, how many land in the
    // next ti slots? Sample slot by slot (exact, O(t_i)).
    uint64_t mi = 0;
    for (uint64_t s = 0; s < ti; ++s) {
      // P(next slot minority) = remaining_minority / remaining_population.
      if (rng->NextBounded(remaining_population) < remaining_minority) {
        ++mi;
        --remaining_minority;
      }
      --remaining_population;
    }
    out.AddUnit(ti, mi);
  }
  return out;
}

}  // namespace

Result<SignificanceResult> PermutationTest(IndexKind kind,
                                           const GroupDistribution& dist,
                                           const SignificanceOptions& options) {
  if (options.num_samples == 0) {
    return Status::InvalidArgument("num_samples must be >= 1");
  }
  auto observed = ComputeIndex(kind, dist, options.params);
  if (!observed.ok()) return observed.status();

  Rng rng(options.seed);
  double sum = 0.0, sum_sq = 0.0;
  uint32_t at_least = 0;
  constexpr double kTie = 1e-12;
  for (uint32_t s = 0; s < options.num_samples; ++s) {
    GroupDistribution null_dist = SampleNull(dist, &rng);
    // A null draw can be degenerate (all minority in... impossible since
    // M and T preserved; M in (0,T) still holds). Compute directly.
    auto v = ComputeIndex(kind, null_dist, options.params);
    if (!v.ok()) return v.status();
    sum += v.value();
    sum_sq += v.value() * v.value();
    if (v.value() >= observed.value() - kTie) ++at_least;
  }
  SignificanceResult out;
  out.observed = observed.value();
  out.num_samples = options.num_samples;
  out.null_mean = sum / options.num_samples;
  double var = sum_sq / options.num_samples - out.null_mean * out.null_mean;
  out.null_stddev = var > 0 ? std::sqrt(var) : 0.0;
  // Add-one (Phipson-Smyth) correction keeps p > 0.
  out.p_value = (static_cast<double>(at_least) + 1.0) /
                (static_cast<double>(options.num_samples) + 1.0);
  return out;
}

}  // namespace indexes
}  // namespace scube
