// The six segregation indexes computed by SCube (paper §2):
// Dissimilarity, Gini, Information (Theil's H), Isolation, Interaction,
// Atkinson. Definitions follow Massey & Denton, "The dimensions of
// residential segregation", Social Forces 67(2), 1988.
//
// All indexes take per-unit counts (t_i, m_i) with totals T and M:
//
//   Dissimilarity  D = 1/2 * sum_i | m_i/M - (t_i-m_i)/(T-M) |
//   Gini           G = sum_{i,j} t_i t_j |p_i - p_j| / (2 T^2 P(1-P))
//   Information    H = sum_i t_i (E - E_i) / (T E)
//                      E = -P ln P - (1-P) ln(1-P), E_i likewise with p_i
//   Isolation      xPx = sum_i (m_i/M)(m_i/t_i)
//   Interaction    xPy = sum_i (m_i/M)((t_i-m_i)/t_i)
//   Atkinson(b)    A = 1 - P/(1-P) * [ sum_i (1-p_i)^(1-b) p_i^b t_i / (PT)
//                      ]^(1/(1-b)),  b in (0,1)
//
// where p_i = m_i/t_i and P = M/T. Evenness indexes (D, G, H, A) and
// Isolation grow with segregation; Interaction = 1 - Isolation shrinks.
// Every index is undefined (error) when T = 0, M = 0 or M = T.

#ifndef SCUBE_INDEXES_SEGREGATION_INDEX_H_
#define SCUBE_INDEXES_SEGREGATION_INDEX_H_

#include <array>
#include <string>
#include <vector>

#include "common/result.h"
#include "indexes/counts.h"

namespace scube {
namespace indexes {

/// The indexes SCube computes (paper §2 lists exactly these six).
enum class IndexKind {
  kDissimilarity = 0,
  kGini = 1,
  kInformation = 2,
  kIsolation = 3,
  kInteraction = 4,
  kAtkinson = 5,
};

inline constexpr size_t kNumIndexKinds = 6;

/// All six kinds, in enum order.
const std::array<IndexKind, kNumIndexKinds>& AllIndexKinds();

/// Stable lowercase name ("dissimilarity", ...).
const char* IndexKindToString(IndexKind kind);

/// Parses an index name; NotFound on unknown names.
Result<IndexKind> IndexKindFromString(const std::string& name);

/// \brief Computation parameters (only Atkinson is parametric).
struct IndexParams {
  /// Atkinson shape parameter b in (0,1); 0.5 is the symmetric default.
  double atkinson_b = 0.5;
};

/// Computes one index; FailedPrecondition when the distribution is
/// degenerate (T = 0, M = 0 or M = T), InvalidArgument on broken counts.
Result<double> ComputeIndex(IndexKind kind, const GroupDistribution& dist,
                            const IndexParams& params = IndexParams());

// Direct entry points (same contract as ComputeIndex).
Result<double> Dissimilarity(const GroupDistribution& dist);
Result<double> Gini(const GroupDistribution& dist);
Result<double> Information(const GroupDistribution& dist);
Result<double> Isolation(const GroupDistribution& dist);
Result<double> Interaction(const GroupDistribution& dist);
Result<double> Atkinson(const GroupDistribution& dist, double b = 0.5);

/// O(n^2) reference Gini used by tests to validate the O(n log n) version.
Result<double> GiniQuadraticReference(const GroupDistribution& dist);

/// \brief All six index values for one distribution (one cube-cell payload).
struct IndexVector {
  std::array<double, kNumIndexKinds> values{};
  bool defined = false;

  double operator[](IndexKind kind) const {
    return values[static_cast<size_t>(kind)];
  }
};

/// Computes all six at once (shares the p_i pass); `defined` is false when
/// the distribution is degenerate.
Result<IndexVector> ComputeAllIndexes(const GroupDistribution& dist,
                                      const IndexParams& params =
                                          IndexParams());

}  // namespace indexes
}  // namespace scube

#endif  // SCUBE_INDEXES_SEGREGATION_INDEX_H_
