// Multigroup segregation indexes (extension beyond the paper's binary set).
//
// The paper restricts to binary minority/majority groups; the natural
// next step in the social-science literature (Reardon & Firebaugh 2002)
// generalises to k groups. Provided here: multigroup Dissimilarity D*,
// multigroup Theil H*, the normalised exposure P* and — for the binary
// case — the correlation ratio V (eta^2), Massey & Denton's sixth evenness
// candidate.

#ifndef SCUBE_INDEXES_MULTIGROUP_H_
#define SCUBE_INDEXES_MULTIGROUP_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "indexes/counts.h"

namespace scube {
namespace indexes {

/// \brief Per-unit counts for k groups: counts[i][g] = members of group g
/// in unit i.
class MultigroupDistribution {
 public:
  explicit MultigroupDistribution(size_t num_groups)
      : num_groups_(num_groups) {}

  /// Appends a unit's per-group counts (size must equal num_groups()).
  Status AddUnit(const std::vector<uint64_t>& group_counts);

  size_t NumUnits() const { return units_.size(); }
  size_t num_groups() const { return num_groups_; }
  uint64_t UnitTotal(size_t i) const;
  uint64_t UnitGroup(size_t i, size_t g) const { return units_[i][g]; }
  uint64_t Total() const { return total_; }
  uint64_t GroupTotal(size_t g) const { return group_totals_[g]; }

  /// True when fewer than two groups are non-empty or T = 0.
  bool IsDegenerate() const;

  /// Binary projection: group g against the rest.
  GroupDistribution BinaryView(size_t group) const;

 private:
  size_t num_groups_;
  std::vector<std::vector<uint64_t>> units_;
  std::vector<uint64_t> group_totals_ = std::vector<uint64_t>(num_groups_, 0);
  uint64_t total_ = 0;
};

/// Multigroup dissimilarity (Reardon & Firebaugh D):
///   D = sum_g sum_i t_i |p_ig - P_g| / (2 T I), I = sum_g P_g (1 - P_g).
Result<double> MultigroupDissimilarity(const MultigroupDistribution& dist);

/// Multigroup information theory index (Theil's H over k groups):
///   H = 1 - sum_i t_i E_i / (T E), E = entropy of the global group mix.
Result<double> MultigroupInformation(const MultigroupDistribution& dist);

/// Normalised exposure P* (Reardon & Firebaugh's interaction-based index):
///   P = sum_g sum_i t_i (p_ig - P_g)^2 / (T (1 - P_g)).
Result<double> NormalizedExposure(const MultigroupDistribution& dist);

/// Binary correlation ratio V = (xPx - P) / (1 - P), eta-squared.
Result<double> CorrelationRatio(const GroupDistribution& dist);

}  // namespace indexes
}  // namespace scube

#endif  // SCUBE_INDEXES_MULTIGROUP_H_
