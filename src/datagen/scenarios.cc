#include "datagen/scenarios.h"

#include <algorithm>
#include <cmath>

#include "common/random.h"
#include "relational/binning.h"

namespace scube {
namespace datagen {

using relational::AttributeKind;
using relational::CellValue;
using relational::ColumnType;
using relational::Schema;
using relational::Table;

std::vector<SectorSpec> ItalianSectors() {
  return {
      {"agriculture", 0.060, 0.22},   {"mining", 0.010, 0.10},
      {"manufacturing", 0.180, 0.20}, {"electricity", 0.010, 0.15},
      {"water", 0.010, 0.18},         {"construction", 0.120, 0.12},
      {"trade", 0.200, 0.28},         {"transport", 0.050, 0.16},
      {"hospitality", 0.060, 0.35},   {"ict", 0.040, 0.26},
      {"finance", 0.030, 0.30},       {"realestate", 0.050, 0.33},
      {"professional", 0.060, 0.32},  {"administrative", 0.030, 0.30},
      {"publicadmin", 0.005, 0.33},   {"education", 0.010, 0.55},
      {"health", 0.020, 0.52},        {"arts", 0.015, 0.38},
      {"otherservices", 0.020, 0.42}, {"domestic", 0.005, 0.60},
  };
}

std::vector<ProvinceSpec> ItalianProvinces() {
  return {
      {"Milano", "north", 3.0, 0.03},   {"Torino", "north", 2.0, 0.03},
      {"Genova", "north", 1.0, 0.02},   {"Venezia", "north", 1.0, 0.03},
      {"Bologna", "north", 1.2, 0.04},  {"Firenze", "north", 1.1, 0.03},
      {"Brescia", "north", 1.0, 0.02},  {"Verona", "north", 0.9, 0.02},
      {"Padova", "north", 0.9, 0.03},   {"Trieste", "north", 0.5, 0.02},
      {"Napoli", "south", 2.0, -0.06},  {"Bari", "south", 1.2, -0.05},
      {"Palermo", "south", 1.1, -0.07}, {"Catania", "south", 0.9, -0.06},
      {"ReggioCalabria", "south", 0.6, -0.08},
      {"Salerno", "south", 0.8, -0.05}, {"Foggia", "south", 0.5, -0.07},
      {"Taranto", "south", 0.5, -0.06}, {"Messina", "south", 0.5, -0.06},
      {"Cagliari", "south", 0.7, -0.04},
  };
}

std::vector<SectorSpec> EstonianSectors() {
  return {
      {"agriculture", 0.08, 0.28}, {"manufacturing", 0.16, 0.26},
      {"construction", 0.12, 0.15}, {"trade", 0.22, 0.34},
      {"transport", 0.08, 0.20},    {"ict", 0.08, 0.30},
      {"finance", 0.04, 0.38},      {"realestate", 0.08, 0.36},
      {"education", 0.04, 0.58},    {"health", 0.10, 0.55},
  };
}

std::vector<ProvinceSpec> EstonianProvinces() {
  return {
      {"Harju", "north", 4.0, 0.02},    {"Tartu", "south", 1.5, 0.01},
      {"Ida-Viru", "north", 1.0, -0.03}, {"Parnu", "south", 0.8, 0.00},
      {"Laane-Viru", "north", 0.6, -0.01}, {"Viljandi", "south", 0.5, 0.00},
      {"Rapla", "north", 0.4, 0.00},    {"Voru", "south", 0.4, -0.02},
      {"Saare", "south", 0.4, 0.01},    {"Jogeva", "south", 0.3, -0.01},
      {"Jarva", "north", 0.3, 0.00},    {"Valga", "south", 0.3, -0.02},
      {"Polva", "south", 0.3, -0.01},   {"Laane", "north", 0.3, 0.01},
      {"Hiiu", "north", 0.2, 0.02},
  };
}

ScenarioConfig ItalianConfig(double scale, uint64_t seed) {
  ScenarioConfig config;
  config.country = "IT";
  config.num_companies =
      std::max<uint32_t>(50, static_cast<uint32_t>(2150000.0 * scale));
  config.seed = seed;
  config.sectors = ItalianSectors();
  config.provinces = ItalianProvinces();
  config.temporal = false;
  return config;
}

ScenarioConfig EstonianConfig(double scale, uint64_t seed) {
  ScenarioConfig config;
  config.country = "EE";
  config.num_companies =
      std::max<uint32_t>(50, static_cast<uint32_t>(340000.0 * scale));
  config.seed = seed;
  config.sectors = EstonianSectors();
  config.provinces = EstonianProvinces();
  config.temporal = true;
  config.start_year = 1995;
  config.end_year = 2015;
  config.female_share_drift = 0.15;
  config.multi_board_prob = 0.20;
  return config;
}

namespace {

struct DirectorDraft {
  bool female;
  int64_t age;
  std::string birthplace;
  uint32_t province;  // residence
};

Schema IndividualSchema() {
  return Schema({
      {"id", ColumnType::kInt64, AttributeKind::kId},
      {"gender", ColumnType::kCategorical, AttributeKind::kSegregation},
      {"age", ColumnType::kInt64, AttributeKind::kIgnore},
      {"age_bin", ColumnType::kCategorical, AttributeKind::kSegregation},
      {"birthplace", ColumnType::kCategorical, AttributeKind::kSegregation},
      {"residence_province", ColumnType::kCategorical,
       AttributeKind::kContext},
      {"residence_region", ColumnType::kCategorical, AttributeKind::kContext},
  });
}

Schema GroupSchema() {
  return Schema({
      {"id", ColumnType::kInt64, AttributeKind::kId},
      {"sector", ColumnType::kCategorical, AttributeKind::kContext},
      {"hq_province", ColumnType::kCategorical, AttributeKind::kContext},
      {"hq_region", ColumnType::kCategorical, AttributeKind::kContext},
  });
}

}  // namespace

Result<GeneratedScenario> GenerateScenario(const ScenarioConfig& config) {
  if (config.sectors.empty() || config.provinces.empty()) {
    return Status::InvalidArgument("scenario needs sectors and provinces");
  }
  if (config.num_companies == 0) {
    return Status::InvalidArgument("num_companies must be positive");
  }
  if (config.temporal && config.end_year <= config.start_year) {
    return Status::InvalidArgument("temporal scenario needs end_year > "
                                   "start_year");
  }

  Rng rng(config.seed);
  std::vector<double> sector_weights, province_weights;
  for (const auto& s : config.sectors) sector_weights.push_back(s.weight);
  for (const auto& p : config.provinces) province_weights.push_back(p.weight);
  AliasSampler sector_sampler(sector_weights);
  AliasSampler province_sampler(province_weights);

  const int64_t years =
      config.temporal ? config.end_year - config.start_year : 1;

  // --- Companies ----------------------------------------------------------
  struct Company {
    uint32_t sector;
    uint32_t province;
    int64_t founded;
    int64_t dissolved;  // exclusive
    uint32_t board_size;
  };
  std::vector<Company> companies;
  companies.reserve(config.num_companies);
  for (uint32_t c = 0; c < config.num_companies; ++c) {
    Company company;
    company.sector = static_cast<uint32_t>(sector_sampler.Sample(&rng));
    company.province = static_cast<uint32_t>(province_sampler.Sample(&rng));
    if (config.temporal) {
      company.founded =
          config.start_year + static_cast<int64_t>(rng.NextBounded(
                                  static_cast<uint64_t>(years)));
      int64_t max_life = config.end_year - company.founded;
      int64_t life = 1 + static_cast<int64_t>(rng.NextBounded(
                             static_cast<uint64_t>(std::max<int64_t>(
                                 1, max_life))));
      company.dissolved = std::min(config.end_year, company.founded + life + 5);
    } else {
      company.founded = graph::kDateMin;
      company.dissolved = graph::kDateMax;
    }
    company.board_size = static_cast<uint32_t>(
        rng.NextZipf(config.max_board_size, config.board_size_skew));
    companies.push_back(company);
  }

  // --- Directors & seats ---------------------------------------------------
  std::vector<DirectorDraft> directors;
  std::vector<std::vector<uint32_t>> by_province(config.provinces.size());
  std::vector<graph::Membership> seats;
  // Ground-truth tallies (seat-weighted).
  std::vector<uint64_t> sector_seats(config.sectors.size(), 0);
  std::vector<uint64_t> sector_female(config.sectors.size(), 0);
  std::vector<uint64_t> province_seats(config.provinces.size(), 0);
  std::vector<uint64_t> province_female(config.provinces.size(), 0);

  auto female_probability = [&](uint32_t sector, uint32_t province,
                                int64_t year) {
    double p = config.sectors[sector].female_share +
               config.provinces[province].female_bias;
    if (config.temporal && config.female_share_drift != 0.0 && years > 1) {
      double progress = static_cast<double>(year - config.start_year) /
                        static_cast<double>(years - 1);
      p += config.female_share_drift * (progress - 0.5);
    }
    return std::clamp(p, 0.02, 0.98);
  };

  for (uint32_t c = 0; c < config.num_companies; ++c) {
    const Company& company = companies[c];
    for (uint32_t seat = 0; seat < company.board_size; ++seat) {
      int64_t seat_start = company.founded;
      int64_t seat_end = company.dissolved;
      if (config.temporal) {
        // Tenure: a sub-interval of the company's life.
        int64_t life = company.dissolved - company.founded;
        int64_t offset = static_cast<int64_t>(
            rng.NextBounded(static_cast<uint64_t>(std::max<int64_t>(1, life))));
        seat_start = company.founded + offset;
        int64_t tenure = 1 + static_cast<int64_t>(rng.NextBounded(12));
        seat_end = std::min(company.dissolved, seat_start + tenure);
        if (seat_end <= seat_start) seat_end = seat_start + 1;
      }

      uint32_t director;
      bool reuse = !directors.empty() && rng.NextBool(config.multi_board_prob);
      if (reuse) {
        const auto& pool = by_province[company.province];
        if (!pool.empty() && rng.NextBool(config.same_province_reuse)) {
          director = pool[rng.NextBounded(pool.size())];
        } else {
          director =
              static_cast<uint32_t>(rng.NextBounded(directors.size()));
        }
      } else {
        DirectorDraft draft;
        int64_t birth_year_ref =
            config.temporal ? seat_start : config.start_year;
        (void)birth_year_ref;
        draft.female = rng.NextBool(
            female_probability(company.sector, company.province,
                               config.temporal ? seat_start
                                               : config.start_year));
        double age = config.age_mean + config.age_stddev * rng.NextGaussian();
        draft.age = std::clamp<int64_t>(static_cast<int64_t>(age), 18, 90);
        double r = rng.NextDouble() *
                   (config.birthplace_north + config.birthplace_south +
                    config.birthplace_foreign);
        if (r < config.birthplace_north) {
          draft.birthplace = "north";
        } else if (r < config.birthplace_north + config.birthplace_south) {
          draft.birthplace = "south";
        } else {
          draft.birthplace = "foreign";
        }
        draft.province = rng.NextBool(0.9)
                             ? company.province
                             : static_cast<uint32_t>(
                                   province_sampler.Sample(&rng));
        director = static_cast<uint32_t>(directors.size());
        directors.push_back(draft);
        by_province[draft.province].push_back(director);
      }

      seats.push_back(graph::Membership{director, c, seat_start, seat_end});
      ++sector_seats[company.sector];
      ++province_seats[company.province];
      if (directors[director].female) {
        ++sector_female[company.sector];
        ++province_female[company.province];
      }
    }
  }

  // --- Tables ---------------------------------------------------------------
  auto age_binner = relational::Binner::FromEdges({18, 39, 47, 55, 91});
  if (!age_binner.ok()) return age_binner.status();

  Table individuals(IndividualSchema());
  for (uint32_t d = 0; d < directors.size(); ++d) {
    const DirectorDraft& draft = directors[d];
    const ProvinceSpec& province = config.provinces[draft.province];
    Status s = individuals.AppendRow({
        static_cast<int64_t>(d),
        std::string(draft.female ? "F" : "M"),
        draft.age,
        age_binner->LabelOf(draft.age),
        draft.birthplace,
        province.name,
        province.region,
    });
    if (!s.ok()) return s;
  }

  Table groups(GroupSchema());
  for (uint32_t c = 0; c < config.num_companies; ++c) {
    const Company& company = companies[c];
    Status s = groups.AppendRow({
        static_cast<int64_t>(c),
        config.sectors[company.sector].name,
        config.provinces[company.province].name,
        config.provinces[company.province].region,
    });
    if (!s.ok()) return s;
  }

  graph::BipartiteGraph membership(
      static_cast<uint32_t>(directors.size()), config.num_companies);
  for (const graph::Membership& m : seats) {
    SCUBE_RETURN_IF_ERROR(membership.AddMembership(
        m.individual, m.group, m.valid_from, m.valid_to));
  }

  GeneratedScenario out;
  out.inputs = etl::ScubeInputs(std::move(individuals), std::move(groups),
                                std::move(membership));
  if (config.temporal) {
    for (int64_t y = config.start_year; y < config.end_year; ++y) {
      out.snapshot_years.push_back(y);
    }
  } else {
    out.snapshot_years.push_back(0);
  }
  for (size_t s = 0; s < config.sectors.size(); ++s) {
    out.sector_female_share[config.sectors[s].name] =
        sector_seats[s] == 0 ? 0.0
                             : static_cast<double>(sector_female[s]) /
                                   static_cast<double>(sector_seats[s]);
  }
  for (size_t p = 0; p < config.provinces.size(); ++p) {
    out.province_female_share[config.provinces[p].name] =
        province_seats[p] == 0 ? 0.0
                               : static_cast<double>(province_female[p]) /
                                     static_cast<double>(province_seats[p]);
  }
  const Schema& is = out.inputs.individuals.schema();
  out.individual_gender_col = is.IndexOf("gender");
  out.individual_age_col = is.IndexOf("age");
  out.individual_age_bin_col = is.IndexOf("age_bin");
  out.individual_birthplace_col = is.IndexOf("birthplace");
  out.individual_province_col = is.IndexOf("residence_province");
  out.individual_region_col = is.IndexOf("residence_region");
  const Schema& gs = out.inputs.groups.schema();
  out.group_sector_col = gs.IndexOf("sector");
  out.group_province_col = gs.IndexOf("hq_province");
  out.group_region_col = gs.IndexOf("hq_region");
  return out;
}

}  // namespace datagen
}  // namespace scube
