// Synthetic board-of-directors scenarios.
//
// The demo explores two proprietary registries: a 2012 snapshot of Italian
// companies (3.6M directors, 2.15M companies) and a 20-year Estonian
// registry (440K directors, 340K companies). Neither is redistributable, so
// this module generates synthetic replicas with the same *structure*:
// realistic marginals (gender share, age profile, sector and province
// distributions), interlocking directorates (directors sitting on several
// boards, preferentially within a province), and — crucially — *planted*
// gender segregation whose ground truth is returned alongside the data, so
// discovery quality is measurable. Scale factors shrink the population while
// preserving every code path.

#ifndef SCUBE_DATAGEN_SCENARIOS_H_
#define SCUBE_DATAGEN_SCENARIOS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "etl/inputs.h"

namespace scube {
namespace datagen {

/// \brief One industry sector with its planted gender mix.
struct SectorSpec {
  std::string name;
  double weight = 1.0;        ///< relative company frequency
  double female_share = 0.3;  ///< planted share of women on new seats
};

/// \brief One province (NUTS-3-like) with region and residence bias.
struct ProvinceSpec {
  std::string name;
  std::string region;        ///< "north" / "south" (CA roll-up level)
  double weight = 1.0;       ///< relative company frequency
  double female_bias = 0.0;  ///< additive shift applied to female_share
};

/// \brief Scenario parameters.
struct ScenarioConfig {
  std::string country = "IT";
  uint32_t num_companies = 21500;  ///< Italian 1/100 scale by default
  uint64_t seed = 0x17A12012ULL;

  std::vector<SectorSpec> sectors;
  std::vector<ProvinceSpec> provinces;

  /// Age profile (years), clipped to [18, 90].
  double age_mean = 48.0;
  double age_stddev = 10.0;

  /// Birthplace mix: {north, south, foreign} (normalised internally).
  double birthplace_north = 0.5;
  double birthplace_south = 0.38;
  double birthplace_foreign = 0.12;

  /// Probability that a board seat is filled by an existing director
  /// (creates interlocks — the edges of the projected company graph).
  double multi_board_prob = 0.25;

  /// Probability that the reused director comes from the same province
  /// (makes clusters geographically meaningful).
  double same_province_reuse = 0.8;

  /// Board size = 1 + (Zipf(max_board_size, board_size_skew) - 1).
  uint32_t max_board_size = 9;
  double board_size_skew = 1.8;

  /// Temporal registries (Estonian style): memberships get validity years
  /// in [start_year, end_year); company founding years are uniform.
  bool temporal = false;
  int64_t start_year = 2012;
  int64_t end_year = 2013;

  /// Linear drift of female share over the temporal range (e.g. +0.15 means
  /// boards feminise by 15 points across the registry's life).
  double female_share_drift = 0.0;
};

/// Preset mirroring the Italian case study at `scale` (1.0 = paper size).
ScenarioConfig ItalianConfig(double scale = 0.01, uint64_t seed = 2012);

/// Preset mirroring the Estonian 20-year registry at `scale`.
ScenarioConfig EstonianConfig(double scale = 0.05, uint64_t seed = 1995);

/// \brief Generated data plus the planted ground truth.
struct GeneratedScenario {
  etl::ScubeInputs inputs;
  std::vector<graph::Date> snapshot_years;

  /// Realised female share per sector / per province (ground truth the
  /// discovery should surface).
  std::map<std::string, double> sector_female_share;
  std::map<std::string, double> province_female_share;

  /// Index of schema columns for convenience.
  int individual_gender_col = -1;
  int individual_age_col = -1;
  int individual_age_bin_col = -1;
  int individual_birthplace_col = -1;
  int individual_province_col = -1;
  int individual_region_col = -1;
  int group_sector_col = -1;
  int group_province_col = -1;
  int group_region_col = -1;
};

/// Generates a scenario. Deterministic given config.seed.
Result<GeneratedScenario> GenerateScenario(const ScenarioConfig& config);

/// The 20 Italian company sectors used by Fig. 5, with planted female
/// shares (education/health female-leaning; construction/mining male-heavy).
std::vector<SectorSpec> ItalianSectors();

/// A 20-province subset of the Italian provinces (10 north, 10 south) with
/// a planted north-south gradient.
std::vector<ProvinceSpec> ItalianProvinces();

/// Estonian counterparts (15 counties, single "north"-like region split).
std::vector<SectorSpec> EstonianSectors();
std::vector<ProvinceSpec> EstonianProvinces();

}  // namespace datagen
}  // namespace scube

#endif  // SCUBE_DATAGEN_SCENARIOS_H_
