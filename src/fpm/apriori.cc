#include "fpm/apriori.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace scube {
namespace fpm {

namespace {

// Canonical key for a sorted item vector (for candidate hash lookups).
struct VecHash {
  size_t operator()(const std::vector<ItemId>& v) const {
    uint64_t h = 0xA9F1E3ULL;
    for (ItemId i : v) h = h * 0x100000001B3ULL + i + 1;
    return static_cast<size_t>(h);
  }
};

using CandidateCounts =
    std::unordered_map<std::vector<ItemId>, uint64_t, VecHash>;

// Enumerate all k-subsets of `t` (restricted to frequent items) that are
// candidate keys, incrementing their counters.
void CountSubsets(const std::vector<ItemId>& t, size_t k, size_t start,
                  std::vector<ItemId>* current, CandidateCounts* counts) {
  if (current->size() == k) {
    auto it = counts->find(*current);
    if (it != counts->end()) ++it->second;
    return;
  }
  size_t needed = k - current->size();
  for (size_t i = start; i + needed <= t.size(); ++i) {
    current->push_back(t[i]);
    CountSubsets(t, k, i + 1, current, counts);
    current->pop_back();
  }
}

}  // namespace

Result<std::vector<FrequentItemset>> AprioriMiner::Mine(
    const TransactionDb& db, const MinerOptions& options) const {
  SCUBE_RETURN_IF_ERROR(ValidateMinerOptions(options));
  std::vector<FrequentItemset> out;
  if (options.include_empty) {
    out.push_back({Itemset(), db.NumTransactions()});
  }

  // L1: frequent items.
  std::vector<ItemId> frequent_items;
  for (ItemId item = 0; item < db.NumItems(); ++item) {
    uint64_t support = db.ItemSupport(item);
    if (support >= options.min_support) {
      frequent_items.push_back(item);
      out.push_back({Itemset({item}), support});
    }
  }
  std::unordered_set<ItemId> frequent_set(frequent_items.begin(),
                                          frequent_items.end());

  // Project transactions onto frequent items once.
  std::vector<std::vector<ItemId>> projected;
  projected.reserve(db.NumTransactions());
  for (uint32_t tid = 0; tid < db.NumTransactions(); ++tid) {
    std::vector<ItemId> filtered;
    for (ItemId item : db.Transaction(tid)) {
      if (frequent_set.count(item)) filtered.push_back(item);
    }
    projected.push_back(std::move(filtered));
  }

  // Previous level, sorted lexicographically (required by the prefix join).
  std::vector<std::vector<ItemId>> prev_level;
  for (ItemId item : frequent_items) prev_level.push_back({item});
  std::sort(prev_level.begin(), prev_level.end());

  for (size_t k = 2; k <= options.max_length && prev_level.size() >= 2; ++k) {
    // Join step: pairs sharing the first k-2 items.
    std::unordered_set<std::vector<ItemId>, VecHash> prev_set(
        prev_level.begin(), prev_level.end());
    CandidateCounts candidates;
    for (size_t i = 0; i < prev_level.size(); ++i) {
      for (size_t j = i + 1; j < prev_level.size(); ++j) {
        const auto& a = prev_level[i];
        const auto& b = prev_level[j];
        if (!std::equal(a.begin(), a.end() - 1, b.begin())) break;
        std::vector<ItemId> candidate = a;
        candidate.push_back(b.back());
        if (candidate[k - 2] > candidate[k - 1]) {
          std::swap(candidate[k - 2], candidate[k - 1]);
        }
        // Prune: all (k-1)-subsets must be frequent.
        bool all_frequent = true;
        std::vector<ItemId> subset(candidate.begin(), candidate.end() - 1);
        for (size_t drop = 0; drop + 1 <= k; ++drop) {
          subset.assign(candidate.begin(), candidate.end());
          subset.erase(subset.begin() + static_cast<ptrdiff_t>(drop));
          if (!prev_set.count(subset)) {
            all_frequent = false;
            break;
          }
        }
        if (all_frequent) candidates.emplace(std::move(candidate), 0);
      }
    }
    if (candidates.empty()) break;

    // Count step.
    std::vector<ItemId> scratch;
    for (const auto& t : projected) {
      if (t.size() < k) continue;
      scratch.clear();
      CountSubsets(t, k, 0, &scratch, &candidates);
    }

    // Harvest the frequent candidates.
    std::vector<std::vector<ItemId>> next_level;
    for (const auto& [items, support] : candidates) {
      if (support >= options.min_support) {
        out.push_back({Itemset(items), support});
        next_level.push_back(items);
      }
    }
    std::sort(next_level.begin(), next_level.end());
    prev_level = std::move(next_level);
  }

  switch (options.mode) {
    case MineMode::kAll:
      break;
    case MineMode::kClosed:
      out = FilterClosed(std::move(out));
      break;
    case MineMode::kMaximal:
      out = FilterMaximal(std::move(out));
      break;
  }
  SortItemsets(&out);
  return out;
}

}  // namespace fpm
}  // namespace scube
