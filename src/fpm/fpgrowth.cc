#include "fpm/fpgrowth.h"

#include <algorithm>
#include <unordered_map>

#include "common/logging.h"

namespace scube {
namespace fpm {

namespace {

// Prefix tree with parent pointers and per-item node chains.
class FpTree {
 public:
  struct Node {
    ItemId item;
    uint64_t count;
    int32_t parent;
    int32_t first_child = -1;
    int32_t next_sibling = -1;
    int32_t next_homonym = -1;  // header chain of nodes with the same item
  };

  struct HeaderEntry {
    ItemId item;
    uint64_t total = 0;
    int32_t head = -1;
  };

  // `item_order` lists this tree's frequent items, most frequent first;
  // transactions inserted must already be filtered+sorted to that order.
  explicit FpTree(std::vector<std::pair<ItemId, uint64_t>> item_totals) {
    nodes_.push_back(Node{kInvalidItem, 0, -1});
    header_.reserve(item_totals.size());
    for (const auto& [item, total] : item_totals) {
      rank_[item] = header_.size();
      header_.push_back(HeaderEntry{item, total, -1});
    }
  }

  bool HasItem(ItemId item) const { return rank_.count(item) > 0; }

  // Rank of an item in this tree's order (0 = most frequent).
  size_t Rank(ItemId item) const { return rank_.at(item); }

  size_t NumHeaderItems() const { return header_.size(); }
  const HeaderEntry& Header(size_t idx) const { return header_[idx]; }
  const Node& node(int32_t idx) const { return nodes_[idx]; }

  // Inserts a rank-sorted item path with multiplicity `count`.
  void Insert(const std::vector<ItemId>& path, uint64_t count) {
    int32_t current = 0;  // root
    for (ItemId item : path) {
      int32_t child = nodes_[current].first_child;
      while (child != -1 && nodes_[child].item != item) {
        child = nodes_[child].next_sibling;
      }
      if (child == -1) {
        child = static_cast<int32_t>(nodes_.size());
        nodes_.push_back(Node{item, 0, current});
        nodes_[child].next_sibling = nodes_[current].first_child;
        nodes_[current].first_child = child;
        size_t h = rank_.at(item);
        nodes_[child].next_homonym = header_[h].head;
        header_[h].head = child;
      }
      nodes_[child].count += count;
      current = child;
    }
  }

  // True iff the tree is one downward chain (enables subset enumeration).
  bool IsSinglePath() const {
    int32_t current = 0;
    while (true) {
      int32_t child = nodes_[current].first_child;
      if (child == -1) return true;
      if (nodes_[child].next_sibling != -1) return false;
      current = child;
    }
  }

  // The single path's (item, count) pairs, root side first. Only valid when
  // IsSinglePath().
  std::vector<std::pair<ItemId, uint64_t>> SinglePath() const {
    std::vector<std::pair<ItemId, uint64_t>> path;
    int32_t current = nodes_[0].first_child;
    while (current != -1) {
      path.emplace_back(nodes_[current].item, nodes_[current].count);
      current = nodes_[current].first_child;
    }
    return path;
  }

 private:
  std::vector<Node> nodes_;
  std::vector<HeaderEntry> header_;
  std::unordered_map<ItemId, size_t> rank_;
};

struct MineContext {
  const MinerOptions* options;
  std::vector<FrequentItemset>* out;
  std::vector<ItemId> suffix;
};

// Emits suffix+subset combinations for a single prefix path. The support of
// a subset is the count of its deepest (largest-index) selected node.
void EnumerateSinglePath(const std::vector<std::pair<ItemId, uint64_t>>& path,
                         size_t pos, uint64_t deepest_count,
                         MineContext* ctx) {
  if (ctx->suffix.size() >= ctx->options->max_length) return;
  for (size_t i = pos; i < path.size(); ++i) {
    ctx->suffix.push_back(path[i].first);
    ctx->out->push_back({Itemset(ctx->suffix), path[i].second});
    EnumerateSinglePath(path, i + 1, path[i].second, ctx);
    ctx->suffix.pop_back();
  }
  (void)deepest_count;
}

void MineTree(const FpTree& tree, MineContext* ctx) {
  if (ctx->suffix.size() >= ctx->options->max_length) return;

  if (tree.IsSinglePath()) {
    EnumerateSinglePath(tree.SinglePath(), 0, 0, ctx);
    return;
  }

  // Process header items from least frequent (deepest in tree) upward.
  for (size_t h = tree.NumHeaderItems(); h-- > 0;) {
    const auto& entry = tree.Header(h);
    ctx->suffix.push_back(entry.item);
    ctx->out->push_back({Itemset(ctx->suffix), entry.total});

    if (ctx->suffix.size() < ctx->options->max_length) {
      // Conditional pattern base: prefix paths of every node of this item.
      std::vector<std::pair<std::vector<ItemId>, uint64_t>> base;
      std::unordered_map<ItemId, uint64_t> cond_counts;
      for (int32_t n = entry.head; n != -1; n = tree.node(n).next_homonym) {
        uint64_t count = tree.node(n).count;
        std::vector<ItemId> prefix_path;
        for (int32_t p = tree.node(n).parent; p > 0; p = tree.node(p).parent) {
          prefix_path.push_back(tree.node(p).item);
        }
        if (prefix_path.empty()) continue;
        std::reverse(prefix_path.begin(), prefix_path.end());
        for (ItemId item : prefix_path) cond_counts[item] += count;
        base.emplace_back(std::move(prefix_path), count);
      }

      // Conditionally frequent items, most frequent first.
      std::vector<std::pair<ItemId, uint64_t>> cond_items;
      for (const auto& [item, count] : cond_counts) {
        if (count >= ctx->options->min_support) {
          cond_items.emplace_back(item, count);
        }
      }
      if (!cond_items.empty()) {
        std::sort(cond_items.begin(), cond_items.end(),
                  [](const auto& a, const auto& b) {
                    if (a.second != b.second) return a.second > b.second;
                    return a.first < b.first;
                  });
        FpTree cond_tree(cond_items);
        for (auto& [path, count] : base) {
          std::vector<ItemId> filtered;
          for (ItemId item : path) {
            if (cond_tree.HasItem(item)) filtered.push_back(item);
          }
          if (filtered.empty()) continue;
          std::sort(filtered.begin(), filtered.end(),
                    [&cond_tree](ItemId a, ItemId b) {
                      return cond_tree.Rank(a) < cond_tree.Rank(b);
                    });
          cond_tree.Insert(filtered, count);
        }
        MineTree(cond_tree, ctx);
      }
    }
    ctx->suffix.pop_back();
  }
}

}  // namespace

Result<std::vector<FrequentItemset>> FpGrowthMiner::Mine(
    const TransactionDb& db, const MinerOptions& options) const {
  SCUBE_RETURN_IF_ERROR(ValidateMinerOptions(options));
  std::vector<FrequentItemset> out;
  if (options.include_empty) {
    out.push_back({Itemset(), db.NumTransactions()});
  }

  // Global frequent items, most frequent first.
  std::vector<std::pair<ItemId, uint64_t>> item_totals;
  for (ItemId item = 0; item < db.NumItems(); ++item) {
    uint64_t support = db.ItemSupport(item);
    if (support >= options.min_support) item_totals.emplace_back(item, support);
  }
  std::sort(item_totals.begin(), item_totals.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });

  FpTree tree(item_totals);
  for (uint32_t tid = 0; tid < db.NumTransactions(); ++tid) {
    std::vector<ItemId> filtered;
    for (ItemId item : db.Transaction(tid)) {
      if (tree.HasItem(item)) filtered.push_back(item);
    }
    if (filtered.empty()) continue;
    std::sort(filtered.begin(), filtered.end(), [&tree](ItemId a, ItemId b) {
      return tree.Rank(a) < tree.Rank(b);
    });
    tree.Insert(filtered, 1);
  }

  MineContext ctx;
  ctx.options = &options;
  ctx.out = &out;
  MineTree(tree, &ctx);

  switch (options.mode) {
    case MineMode::kAll:
      break;
    case MineMode::kClosed:
      out = FilterClosed(std::move(out));
      break;
    case MineMode::kMaximal:
      out = FilterMaximal(std::move(out));
      break;
  }
  SortItemsets(&out);
  return out;
}

}  // namespace fpm
}  // namespace scube
