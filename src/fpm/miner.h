// Frequent-itemset miner interface and result types.
//
// SCube's data-cube construction is driven by frequent (closed) itemset
// mining (the original system uses Borgelt's FPGrowth). Three miners are
// provided — FP-Growth (the production engine), Apriori and Eclat (baselines
// for the efficiency study) — plus a brute-force reference used in tests.

#ifndef SCUBE_FPM_MINER_H_
#define SCUBE_FPM_MINER_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/result.h"
#include "fpm/itemset.h"
#include "fpm/transaction_db.h"

namespace scube {
namespace fpm {

/// Which itemsets to report.
enum class MineMode {
  kAll,      ///< every frequent itemset
  kClosed,   ///< frequent itemsets with no equal-support proper superset
  kMaximal,  ///< frequent itemsets with no frequent proper superset
};

/// \brief Mining parameters.
struct MinerOptions {
  /// Absolute minimum support (number of transactions). Must be >= 1.
  uint64_t min_support = 1;

  /// Maximum itemset length; mining never reports longer sets. Closedness /
  /// maximality are relative to the length-bounded collection.
  uint32_t max_length = std::numeric_limits<uint32_t>::max();

  /// Which itemsets to report.
  MineMode mode = MineMode::kAll;

  /// When true, the empty itemset (support = |DB|) is included.
  bool include_empty = false;
};

/// \brief A mined itemset with its support.
struct FrequentItemset {
  Itemset items;
  uint64_t support = 0;

  bool operator==(const FrequentItemset& other) const {
    return support == other.support && items == other.items;
  }
};

/// \brief Abstract miner; implementations must be deterministic.
class FrequentItemsetMiner {
 public:
  virtual ~FrequentItemsetMiner() = default;

  /// Human-readable engine name (e.g. "fpgrowth").
  virtual std::string Name() const = 0;

  /// Mines `db` under `options`. The result order is unspecified; use
  /// SortItemsets for deterministic comparisons.
  virtual Result<std::vector<FrequentItemset>> Mine(
      const TransactionDb& db, const MinerOptions& options) const = 0;
};

/// Sorts lexicographically by items (deterministic canonical order).
void SortItemsets(std::vector<FrequentItemset>* sets);

/// Validates options (min_support >= 1 etc.).
Status ValidateMinerOptions(const MinerOptions& options);

/// Keeps only closed itemsets: no proper superset in `sets` has equal
/// support. Exact; relative to the given collection.
std::vector<FrequentItemset> FilterClosed(std::vector<FrequentItemset> sets);

/// Keeps only maximal itemsets: no proper superset in `sets` at all.
std::vector<FrequentItemset> FilterMaximal(std::vector<FrequentItemset> sets);

}  // namespace fpm
}  // namespace scube

#endif  // SCUBE_FPM_MINER_H_
