// Itemset: an immutable, sorted, duplicate-free set of items.

#ifndef SCUBE_FPM_ITEMSET_H_
#define SCUBE_FPM_ITEMSET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "fpm/item.h"

namespace scube {
namespace fpm {

/// \brief Sorted vector of distinct ItemIds with set operations.
class Itemset {
 public:
  Itemset() = default;

  /// Takes arbitrary items; sorts and deduplicates.
  explicit Itemset(std::vector<ItemId> items);

  /// The empty itemset (cube coordinate "⋆" on both axes).
  static const Itemset& Empty();

  size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }
  const std::vector<ItemId>& items() const { return items_; }
  ItemId operator[](size_t i) const { return items_[i]; }

  /// True iff `item` is a member. O(log n).
  bool Contains(ItemId item) const;

  /// True iff every item of this set is in `other`.
  bool IsSubsetOf(const Itemset& other) const;

  /// Set union / difference / intersection (result is sorted).
  Itemset Union(const Itemset& other) const;
  Itemset Minus(const Itemset& other) const;
  Itemset Intersect(const Itemset& other) const;

  /// New set with `item` added (no-op if present).
  Itemset With(ItemId item) const;

  /// Order-insensitive 64-bit hash.
  uint64_t Hash() const;

  bool operator==(const Itemset& other) const { return items_ == other.items_; }
  bool operator!=(const Itemset& other) const { return !(*this == other); }
  /// Lexicographic order (for deterministic output ordering).
  bool operator<(const Itemset& other) const { return items_ < other.items_; }

  /// Debug rendering, e.g. "[2 5 9]".
  std::string DebugString() const;

 private:
  std::vector<ItemId> items_;
};

/// Hash functor for unordered containers keyed by Itemset.
struct ItemsetHash {
  size_t operator()(const Itemset& s) const {
    return static_cast<size_t>(s.Hash());
  }
};

}  // namespace fpm
}  // namespace scube

#endif  // SCUBE_FPM_ITEMSET_H_
