// Item identifiers for transaction databases.
//
// Items are dense 32-bit codes. The mapping from (attribute, value) pairs to
// items is owned by the relational layer (relational/transactions.h); the
// mining substrate is agnostic to what an item denotes.

#ifndef SCUBE_FPM_ITEM_H_
#define SCUBE_FPM_ITEM_H_

#include <cstdint>

namespace scube {
namespace fpm {

/// Dense item code; items are assigned 0..NumItems-1 by the encoder.
using ItemId = uint32_t;

/// Sentinel for "no item".
inline constexpr ItemId kInvalidItem = 0xFFFFFFFFu;

}  // namespace fpm
}  // namespace scube

#endif  // SCUBE_FPM_ITEM_H_
