#include "fpm/brute_force.h"

#include <algorithm>

namespace scube {
namespace fpm {

namespace {

// Counts support of `items` by scanning every transaction.
uint64_t ScanSupport(const TransactionDb& db, const std::vector<ItemId>& items) {
  uint64_t support = 0;
  for (uint32_t tid = 0; tid < db.NumTransactions(); ++tid) {
    const auto& t = db.Transaction(tid);
    if (std::includes(t.begin(), t.end(), items.begin(), items.end())) {
      ++support;
    }
  }
  return support;
}

void Dfs(const TransactionDb& db, const MinerOptions& options,
         std::vector<ItemId>* prefix, ItemId next_item,
         std::vector<FrequentItemset>* out) {
  if (prefix->size() >= options.max_length) return;
  for (ItemId item = next_item; item < db.NumItems(); ++item) {
    prefix->push_back(item);
    uint64_t support = ScanSupport(db, *prefix);
    if (support >= options.min_support) {
      out->push_back({Itemset(*prefix), support});
      Dfs(db, options, prefix, item + 1, out);
    }
    prefix->pop_back();
  }
}

}  // namespace

Result<std::vector<FrequentItemset>> BruteForceMiner::Mine(
    const TransactionDb& db, const MinerOptions& options) const {
  SCUBE_RETURN_IF_ERROR(ValidateMinerOptions(options));
  std::vector<FrequentItemset> out;
  if (options.include_empty) {
    out.push_back({Itemset(), db.NumTransactions()});
  }
  std::vector<ItemId> prefix;
  Dfs(db, options, &prefix, 0, &out);
  switch (options.mode) {
    case MineMode::kAll:
      break;
    case MineMode::kClosed:
      out = FilterClosed(std::move(out));
      break;
    case MineMode::kMaximal:
      out = FilterMaximal(std::move(out));
      break;
  }
  SortItemsets(&out);
  return out;
}

}  // namespace fpm
}  // namespace scube
