#include "fpm/miner.h"

#include <algorithm>
#include <unordered_map>

namespace scube {
namespace fpm {

void SortItemsets(std::vector<FrequentItemset>* sets) {
  std::sort(sets->begin(), sets->end(),
            [](const FrequentItemset& a, const FrequentItemset& b) {
              if (a.items.size() != b.items.size()) {
                return a.items.size() < b.items.size();
              }
              return a.items < b.items;
            });
}

Status ValidateMinerOptions(const MinerOptions& options) {
  if (options.min_support < 1) {
    return Status::InvalidArgument("min_support must be >= 1");
  }
  if (options.max_length < 1) {
    return Status::InvalidArgument("max_length must be >= 1");
  }
  return Status::OK();
}

namespace {

// Shared subsumption machinery for the closed/maximal filters. Processes
// candidates in descending length order; a candidate is dropped when a kept
// proper superset "covers" it (same support for closed; any for maximal).
std::vector<FrequentItemset> FilterSubsumed(std::vector<FrequentItemset> sets,
                                            bool require_equal_support) {
  std::sort(sets.begin(), sets.end(),
            [](const FrequentItemset& a, const FrequentItemset& b) {
              return a.items.size() > b.items.size();
            });
  std::vector<FrequentItemset> kept;
  kept.reserve(sets.size());
  // Inverted index: item -> indices (into kept) of kept sets containing it.
  std::unordered_map<ItemId, std::vector<size_t>> index;

  for (auto& candidate : sets) {
    bool subsumed = false;
    if (!candidate.items.empty()) {
      // Probe the index through the candidate's rarest item: pick the item
      // with the shortest posting list to minimise superset checks.
      const std::vector<size_t>* best_list = nullptr;
      for (ItemId item : candidate.items.items()) {
        auto it = index.find(item);
        if (it == index.end()) {
          best_list = nullptr;
          subsumed = false;
          goto check_done;  // an item never kept: no superset exists
        }
        if (best_list == nullptr || it->second.size() < best_list->size()) {
          best_list = &it->second;
        }
      }
      if (best_list != nullptr) {
        for (size_t kept_idx : *best_list) {
          const FrequentItemset& s = kept[kept_idx];
          if (s.items.size() <= candidate.items.size()) continue;
          if (require_equal_support && s.support != candidate.support) {
            continue;
          }
          if (candidate.items.IsSubsetOf(s.items)) {
            subsumed = true;
            break;
          }
        }
      }
    } else {
      // The empty itemset: subsumed iff any kept set has equal support
      // (closed) or any kept set exists (maximal).
      for (const auto& s : kept) {
        if (!require_equal_support || s.support == candidate.support) {
          subsumed = true;
          break;
        }
      }
    }
  check_done:
    if (!subsumed) {
      size_t idx = kept.size();
      for (ItemId item : candidate.items.items()) {
        index[item].push_back(idx);
      }
      kept.push_back(std::move(candidate));
    }
  }
  return kept;
}

}  // namespace

std::vector<FrequentItemset> FilterClosed(std::vector<FrequentItemset> sets) {
  return FilterSubsumed(std::move(sets), /*require_equal_support=*/true);
}

std::vector<FrequentItemset> FilterMaximal(std::vector<FrequentItemset> sets) {
  return FilterSubsumed(std::move(sets), /*require_equal_support=*/false);
}

}  // namespace fpm
}  // namespace scube
