// Apriori: classic level-wise frequent-itemset mining (baseline engine).

#ifndef SCUBE_FPM_APRIORI_H_
#define SCUBE_FPM_APRIORI_H_

#include "fpm/miner.h"

namespace scube {
namespace fpm {

/// \brief Level-wise candidate-generation miner (Agrawal & Srikant).
///
/// Candidates of size k are joined from frequent (k-1)-sets sharing a
/// (k-2)-prefix, pruned by the downward-closure property, and counted by
/// enumerating k-subsets of each (frequent-item-filtered) transaction.
class AprioriMiner : public FrequentItemsetMiner {
 public:
  std::string Name() const override { return "apriori"; }

  Result<std::vector<FrequentItemset>> Mine(
      const TransactionDb& db, const MinerOptions& options) const override;
};

}  // namespace fpm
}  // namespace scube

#endif  // SCUBE_FPM_APRIORI_H_
