// TransactionDb: the in-memory transaction database mined by SCube.
//
// Each transaction is a sorted set of items (one transaction per individual
// in the finalTable). The database also materialises per-item EWAH covers
// (tidsets) used by Eclat, the cube builder, and support counting.

#ifndef SCUBE_FPM_TRANSACTION_DB_H_
#define SCUBE_FPM_TRANSACTION_DB_H_

#include <cstdint>
#include <vector>

#include "common/ewah.h"
#include "fpm/item.h"
#include "fpm/itemset.h"

namespace scube {
namespace fpm {

/// \brief Append-only transaction database with per-item covers.
class TransactionDb {
 public:
  TransactionDb() = default;

  /// Appends a transaction (items are sorted/deduplicated internally).
  /// Returns the transaction id (0-based, dense).
  uint32_t AddTransaction(std::vector<ItemId> items);

  /// Number of transactions.
  size_t NumTransactions() const { return transactions_.size(); }

  /// One past the largest item id seen (dense item universe size).
  size_t NumItems() const { return num_items_; }

  /// The (sorted) items of transaction `tid`.
  const std::vector<ItemId>& Transaction(uint32_t tid) const {
    return transactions_[tid];
  }

  /// Number of transactions containing `item` (0 for unseen items).
  uint64_t ItemSupport(ItemId item) const;

  /// EWAH cover (set of tids) of a single item. Covers are built lazily on
  /// first call; subsequent calls are O(1).
  const EwahBitmap& ItemCover(ItemId item) const;

  /// Cover of an itemset: intersection of the item covers. The empty itemset
  /// covers every transaction.
  EwahBitmap Cover(const Itemset& items) const;

  /// Support of an itemset (cover cardinality; counted without materialising
  /// the full intersection when possible).
  uint64_t Support(const Itemset& items) const;

  /// Total number of item occurrences across all transactions.
  uint64_t TotalItemOccurrences() const { return total_occurrences_; }

 private:
  void BuildCovers() const;

  std::vector<std::vector<ItemId>> transactions_;
  size_t num_items_ = 0;
  uint64_t total_occurrences_ = 0;

  // Lazily built; logically const.
  mutable std::vector<EwahBitmap> covers_;
  mutable std::vector<uint64_t> supports_;
  mutable bool covers_built_ = false;
};

}  // namespace fpm
}  // namespace scube

#endif  // SCUBE_FPM_TRANSACTION_DB_H_
