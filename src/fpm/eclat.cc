#include "fpm/eclat.h"

#include <algorithm>

namespace scube {
namespace fpm {

namespace {

struct EclatNodeItem {
  ItemId item;
  EwahBitmap cover;
  uint64_t support;
};

void Dfs(const std::vector<EclatNodeItem>& siblings, size_t pos,
         std::vector<ItemId>* prefix, const MinerOptions& options,
         std::vector<FrequentItemset>* out) {
  const EclatNodeItem& node = siblings[pos];
  prefix->push_back(node.item);
  out->push_back({Itemset(*prefix), node.support});

  if (prefix->size() < options.max_length) {
    std::vector<EclatNodeItem> children;
    for (size_t j = pos + 1; j < siblings.size(); ++j) {
      uint64_t support = node.cover.AndCardinality(siblings[j].cover);
      if (support >= options.min_support) {
        children.push_back(
            {siblings[j].item, node.cover.And(siblings[j].cover), support});
      }
    }
    for (size_t j = 0; j < children.size(); ++j) {
      Dfs(children, j, prefix, options, out);
    }
  }
  prefix->pop_back();
}

}  // namespace

Result<std::vector<FrequentItemset>> EclatMiner::Mine(
    const TransactionDb& db, const MinerOptions& options) const {
  SCUBE_RETURN_IF_ERROR(ValidateMinerOptions(options));
  std::vector<FrequentItemset> out;
  if (options.include_empty) {
    out.push_back({Itemset(), db.NumTransactions()});
  }

  std::vector<EclatNodeItem> roots;
  for (ItemId item = 0; item < db.NumItems(); ++item) {
    uint64_t support = db.ItemSupport(item);
    if (support >= options.min_support) {
      roots.push_back({item, db.ItemCover(item), support});
    }
  }
  // Ascending support: small covers first keeps intermediate tidsets small.
  std::stable_sort(roots.begin(), roots.end(),
                   [](const EclatNodeItem& a, const EclatNodeItem& b) {
                     return a.support < b.support;
                   });

  std::vector<ItemId> prefix;
  for (size_t i = 0; i < roots.size(); ++i) {
    Dfs(roots, i, &prefix, options, &out);
  }

  switch (options.mode) {
    case MineMode::kAll:
      break;
    case MineMode::kClosed:
      out = FilterClosed(std::move(out));
      break;
    case MineMode::kMaximal:
      out = FilterMaximal(std::move(out));
      break;
  }
  SortItemsets(&out);
  return out;
}

}  // namespace fpm
}  // namespace scube
