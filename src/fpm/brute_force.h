// Brute-force reference miner: exhaustive DFS with per-set transaction scans.
//
// Exponential; only for tests (ground truth on small inputs) and as the
// pedagogical baseline in the mining benchmark.

#ifndef SCUBE_FPM_BRUTE_FORCE_H_
#define SCUBE_FPM_BRUTE_FORCE_H_

#include "fpm/miner.h"

namespace scube {
namespace fpm {

/// \brief Exhaustive reference implementation of FrequentItemsetMiner.
class BruteForceMiner : public FrequentItemsetMiner {
 public:
  std::string Name() const override { return "brute-force"; }

  Result<std::vector<FrequentItemset>> Mine(
      const TransactionDb& db, const MinerOptions& options) const override;
};

}  // namespace fpm
}  // namespace scube

#endif  // SCUBE_FPM_BRUTE_FORCE_H_
