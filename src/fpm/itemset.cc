#include "fpm/itemset.h"

#include <algorithm>

#include "common/hashing.h"

namespace scube {
namespace fpm {

Itemset::Itemset(std::vector<ItemId> items) : items_(std::move(items)) {
  std::sort(items_.begin(), items_.end());
  items_.erase(std::unique(items_.begin(), items_.end()), items_.end());
}

const Itemset& Itemset::Empty() {
  static const Itemset kEmpty;
  return kEmpty;
}

bool Itemset::Contains(ItemId item) const {
  return std::binary_search(items_.begin(), items_.end(), item);
}

bool Itemset::IsSubsetOf(const Itemset& other) const {
  return std::includes(other.items_.begin(), other.items_.end(),
                       items_.begin(), items_.end());
}

Itemset Itemset::Union(const Itemset& other) const {
  std::vector<ItemId> out;
  out.reserve(items_.size() + other.items_.size());
  std::set_union(items_.begin(), items_.end(), other.items_.begin(),
                 other.items_.end(), std::back_inserter(out));
  Itemset result;
  result.items_ = std::move(out);
  return result;
}

Itemset Itemset::Minus(const Itemset& other) const {
  std::vector<ItemId> out;
  std::set_difference(items_.begin(), items_.end(), other.items_.begin(),
                      other.items_.end(), std::back_inserter(out));
  Itemset result;
  result.items_ = std::move(out);
  return result;
}

Itemset Itemset::Intersect(const Itemset& other) const {
  std::vector<ItemId> out;
  std::set_intersection(items_.begin(), items_.end(), other.items_.begin(),
                        other.items_.end(), std::back_inserter(out));
  Itemset result;
  result.items_ = std::move(out);
  return result;
}

Itemset Itemset::With(ItemId item) const {
  if (Contains(item)) return *this;
  std::vector<ItemId> out = items_;
  out.insert(std::upper_bound(out.begin(), out.end(), item), item);
  Itemset result;
  result.items_ = std::move(out);
  return result;
}

uint64_t Itemset::Hash() const {
  uint64_t h = 0x17E45E7345ULL;
  for (ItemId item : items_) h = HashCombine(h, Mix64(item));
  return h;
}

std::string Itemset::DebugString() const {
  std::string out = "[";
  for (size_t i = 0; i < items_.size(); ++i) {
    if (i > 0) out += " ";
    out += std::to_string(items_[i]);
  }
  out += "]";
  return out;
}

}  // namespace fpm
}  // namespace scube
