#include "fpm/transaction_db.h"

#include <algorithm>

#include "common/logging.h"

namespace scube {
namespace fpm {

uint32_t TransactionDb::AddTransaction(std::vector<ItemId> items) {
  std::sort(items.begin(), items.end());
  items.erase(std::unique(items.begin(), items.end()), items.end());
  if (!items.empty()) {
    num_items_ = std::max(num_items_, static_cast<size_t>(items.back()) + 1);
  }
  total_occurrences_ += items.size();
  covers_built_ = false;
  transactions_.push_back(std::move(items));
  return static_cast<uint32_t>(transactions_.size() - 1);
}

void TransactionDb::BuildCovers() const {
  std::vector<EwahBitmap::Builder> builders(num_items_);
  for (uint32_t tid = 0; tid < transactions_.size(); ++tid) {
    for (ItemId item : transactions_[tid]) {
      builders[item].Add(tid);
    }
  }
  covers_.assign(num_items_, EwahBitmap());
  supports_.assign(num_items_, 0);
  for (size_t i = 0; i < num_items_; ++i) {
    covers_[i] = builders[i].Build();
    supports_[i] = covers_[i].Cardinality();
  }
  covers_built_ = true;
}

uint64_t TransactionDb::ItemSupport(ItemId item) const {
  if (!covers_built_) BuildCovers();
  if (item >= supports_.size()) return 0;
  return supports_[item];
}

const EwahBitmap& TransactionDb::ItemCover(ItemId item) const {
  if (!covers_built_) BuildCovers();
  SCUBE_CHECK(item < covers_.size());
  return covers_[item];
}

EwahBitmap TransactionDb::Cover(const Itemset& items) const {
  if (items.empty()) {
    // Every transaction: a solid run of ones.
    std::vector<uint64_t> all(NumTransactions());
    for (size_t i = 0; i < all.size(); ++i) all[i] = i;
    return EwahBitmap::FromIndices(all);
  }
  EwahBitmap cover = ItemCover(items[0]);
  for (size_t i = 1; i < items.size(); ++i) {
    cover = cover.And(ItemCover(items[i]));
    if (cover.Empty()) break;
  }
  return cover;
}

uint64_t TransactionDb::Support(const Itemset& items) const {
  if (items.empty()) return NumTransactions();
  if (items.size() == 1) return ItemSupport(items[0]);
  if (items.size() == 2) {
    return ItemCover(items[0]).AndCardinality(ItemCover(items[1]));
  }
  EwahBitmap cover = ItemCover(items[0]);
  for (size_t i = 1; i + 1 < items.size(); ++i) {
    cover = cover.And(ItemCover(items[i]));
    if (cover.Empty()) return 0;
  }
  return cover.AndCardinality(ItemCover(items[items.size() - 1]));
}

}  // namespace fpm
}  // namespace scube
