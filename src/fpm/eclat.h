// Eclat: depth-first tidset-intersection mining over EWAH covers.

#ifndef SCUBE_FPM_ECLAT_H_
#define SCUBE_FPM_ECLAT_H_

#include "fpm/miner.h"

namespace scube {
namespace fpm {

/// \brief Vertical-layout miner (Zaki's Eclat) on compressed bitmaps.
///
/// Each DFS node carries the EWAH cover of its prefix; children intersect
/// with sibling item covers. This is also the engine that demonstrates what
/// the EWAH substrate buys: cover intersections dominate its runtime.
class EclatMiner : public FrequentItemsetMiner {
 public:
  std::string Name() const override { return "eclat"; }

  Result<std::vector<FrequentItemset>> Mine(
      const TransactionDb& db, const MinerOptions& options) const override;
};

}  // namespace fpm
}  // namespace scube

#endif  // SCUBE_FPM_ECLAT_H_
