// FP-Growth: the production frequent-itemset engine (Han et al.).
//
// From-scratch replacement for the Borgelt FPGrowth binary the original
// SCube shells out to. Implements the standard FP-tree with header chains,
// recursive conditional trees, and the single-prefix-path shortcut.

#ifndef SCUBE_FPM_FPGROWTH_H_
#define SCUBE_FPM_FPGROWTH_H_

#include "fpm/miner.h"

namespace scube {
namespace fpm {

/// \brief FP-tree based miner; the default engine of the cube builder.
class FpGrowthMiner : public FrequentItemsetMiner {
 public:
  std::string Name() const override { return "fpgrowth"; }

  Result<std::vector<FrequentItemset>> Mine(
      const TransactionDb& db, const MinerOptions& options) const override;
};

}  // namespace fpm
}  // namespace scube

#endif  // SCUBE_FPM_FPGROWTH_H_
