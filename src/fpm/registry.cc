#include "fpm/registry.h"

#include "fpm/apriori.h"
#include "fpm/brute_force.h"
#include "fpm/eclat.h"
#include "fpm/fpgrowth.h"

namespace scube {
namespace fpm {

std::vector<std::string> MinerNames() {
  return {"fpgrowth", "eclat", "apriori", "brute-force"};
}

Result<std::unique_ptr<FrequentItemsetMiner>> MakeMiner(
    const std::string& name) {
  if (name == "fpgrowth") {
    return std::unique_ptr<FrequentItemsetMiner>(new FpGrowthMiner());
  }
  if (name == "eclat") {
    return std::unique_ptr<FrequentItemsetMiner>(new EclatMiner());
  }
  if (name == "apriori") {
    return std::unique_ptr<FrequentItemsetMiner>(new AprioriMiner());
  }
  if (name == "brute-force") {
    return std::unique_ptr<FrequentItemsetMiner>(new BruteForceMiner());
  }
  return Status::NotFound("unknown miner engine: " + name);
}

}  // namespace fpm
}  // namespace scube
