// Miner registry: construct a miner engine by name.

#ifndef SCUBE_FPM_REGISTRY_H_
#define SCUBE_FPM_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "fpm/miner.h"

namespace scube {
namespace fpm {

/// Names of all registered engines ("fpgrowth", "eclat", "apriori",
/// "brute-force").
std::vector<std::string> MinerNames();

/// Instantiates the engine with the given name; NotFound for unknown names.
Result<std::unique_ptr<FrequentItemsetMiner>> MakeMiner(
    const std::string& name);

}  // namespace fpm
}  // namespace scube

#endif  // SCUBE_FPM_REGISTRY_H_
