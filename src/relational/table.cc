#include "relational/table.h"

#include <algorithm>

#include "common/logging.h"
#include "common/string_util.h"

namespace scube {
namespace relational {

Table::Table(Schema schema) : schema_(std::move(schema)) {
  columns_.resize(schema_.NumAttributes());
}

std::vector<std::string> Table::ParseSetLiteral(const std::string& raw) {
  std::string_view s = Trim(raw);
  if (s.empty()) return {};
  if (s.front() != '{') return {std::string(s)};
  if (s.back() != '}') return {std::string(s)};  // malformed: keep verbatim
  s = s.substr(1, s.size() - 2);
  if (Trim(s).empty()) return {};
  std::vector<std::string> out;
  for (const std::string& part : Split(s, ',')) {
    std::string trimmed(Trim(part));
    if (!trimmed.empty()) out.push_back(std::move(trimmed));
  }
  return out;
}

Status Table::AppendRow(const std::vector<CellValue>& cells) {
  if (cells.size() != schema_.NumAttributes()) {
    return Status::InvalidArgument(
        "row has " + std::to_string(cells.size()) + " cells, schema has " +
        std::to_string(schema_.NumAttributes()));
  }
  // Validate first so a failed append leaves the table unchanged.
  for (size_t c = 0; c < cells.size(); ++c) {
    ColumnType type = schema_.attribute(c).type;
    const CellValue& cell = cells[c];
    bool ok = false;
    switch (type) {
      case ColumnType::kCategorical:
        ok = std::holds_alternative<std::string>(cell);
        break;
      case ColumnType::kInt64:
        ok = std::holds_alternative<int64_t>(cell);
        break;
      case ColumnType::kDouble:
        ok = std::holds_alternative<double>(cell) ||
             std::holds_alternative<int64_t>(cell);
        break;
      case ColumnType::kCategoricalSet:
        ok = std::holds_alternative<std::vector<std::string>>(cell) ||
             std::holds_alternative<std::string>(cell);
        break;
    }
    if (!ok) {
      return Status::InvalidArgument(
          "cell " + std::to_string(c) + " type mismatch for attribute '" +
          schema_.attribute(c).name + "' (" +
          ColumnTypeToString(type) + ")");
    }
  }
  for (size_t c = 0; c < cells.size(); ++c) {
    Column& col = columns_[c];
    const CellValue& cell = cells[c];
    switch (schema_.attribute(c).type) {
      case ColumnType::kCategorical:
        col.codes.push_back(col.dict.GetOrAdd(std::get<std::string>(cell)));
        break;
      case ColumnType::kInt64:
        col.ints.push_back(std::get<int64_t>(cell));
        break;
      case ColumnType::kDouble:
        col.doubles.push_back(std::holds_alternative<double>(cell)
                                  ? std::get<double>(cell)
                                  : static_cast<double>(std::get<int64_t>(cell)));
        break;
      case ColumnType::kCategoricalSet: {
        std::vector<std::string> values;
        if (std::holds_alternative<std::string>(cell)) {
          values = ParseSetLiteral(std::get<std::string>(cell));
        } else {
          values = std::get<std::vector<std::string>>(cell);
        }
        std::vector<Code> codes;
        codes.reserve(values.size());
        for (const std::string& v : values) codes.push_back(col.dict.GetOrAdd(v));
        std::sort(codes.begin(), codes.end());
        codes.erase(std::unique(codes.begin(), codes.end()), codes.end());
        col.set_codes.insert(col.set_codes.end(), codes.begin(), codes.end());
        col.set_offsets.push_back(static_cast<uint32_t>(col.set_codes.size()));
        break;
      }
    }
  }
  ++num_rows_;
  return Status::OK();
}

Status Table::AppendRowFromStrings(const std::vector<std::string>& fields) {
  if (fields.size() != schema_.NumAttributes()) {
    return Status::InvalidArgument(
        "row has " + std::to_string(fields.size()) + " fields, schema has " +
        std::to_string(schema_.NumAttributes()));
  }
  std::vector<CellValue> cells;
  cells.reserve(fields.size());
  for (size_t c = 0; c < fields.size(); ++c) {
    switch (schema_.attribute(c).type) {
      case ColumnType::kCategorical:
        cells.emplace_back(fields[c]);
        break;
      case ColumnType::kInt64: {
        auto v = ParseInt64(fields[c]);
        if (!v.ok()) {
          return v.status().WithContext("attribute '" +
                                        schema_.attribute(c).name + "'");
        }
        cells.emplace_back(v.value());
        break;
      }
      case ColumnType::kDouble: {
        auto v = ParseDouble(fields[c]);
        if (!v.ok()) {
          return v.status().WithContext("attribute '" +
                                        schema_.attribute(c).name + "'");
        }
        cells.emplace_back(v.value());
        break;
      }
      case ColumnType::kCategoricalSet:
        cells.emplace_back(ParseSetLiteral(fields[c]));
        break;
    }
  }
  return AppendRow(cells);
}

Code Table::CategoricalCode(size_t row, size_t col) const {
  SCUBE_CHECK(schema_.attribute(col).type == ColumnType::kCategorical);
  return columns_[col].codes[row];
}

const std::string& Table::CategoricalValue(size_t row, size_t col) const {
  return columns_[col].dict.ValueOf(CategoricalCode(row, col));
}

int64_t Table::Int64Value(size_t row, size_t col) const {
  SCUBE_CHECK(schema_.attribute(col).type == ColumnType::kInt64);
  return columns_[col].ints[row];
}

double Table::DoubleValue(size_t row, size_t col) const {
  SCUBE_CHECK(schema_.attribute(col).type == ColumnType::kDouble);
  return columns_[col].doubles[row];
}

std::span<const Code> Table::SetCodes(size_t row, size_t col) const {
  SCUBE_CHECK(schema_.attribute(col).type == ColumnType::kCategoricalSet);
  const Column& c = columns_[col];
  uint32_t begin = c.set_offsets[row];
  uint32_t end = c.set_offsets[row + 1];
  return std::span<const Code>(c.set_codes.data() + begin, end - begin);
}

std::vector<std::string> Table::SetValues(size_t row, size_t col) const {
  std::vector<std::string> out;
  for (Code code : SetCodes(row, col)) {
    out.push_back(columns_[col].dict.ValueOf(code));
  }
  return out;
}

const Dictionary& Table::dictionary(size_t col) const {
  return columns_[col].dict;
}

std::string Table::CellToString(size_t row, size_t col) const {
  switch (schema_.attribute(col).type) {
    case ColumnType::kCategorical:
      return CategoricalValue(row, col);
    case ColumnType::kInt64:
      return std::to_string(Int64Value(row, col));
    case ColumnType::kDouble:
      return FormatDouble(DoubleValue(row, col), 6);
    case ColumnType::kCategoricalSet: {
      std::string out = "{";
      bool first = true;
      for (const std::string& v : SetValues(row, col)) {
        if (!first) out += ",";
        out += v;
        first = false;
      }
      out += "}";
      return out;
    }
  }
  return "";
}

Status Table::AddCategoricalColumn(const AttributeSpec& spec,
                                   const std::vector<std::string>& values) {
  if (spec.type != ColumnType::kCategorical) {
    return Status::InvalidArgument("derived column must be categorical");
  }
  if (values.size() != num_rows_) {
    return Status::InvalidArgument(
        "derived column has " + std::to_string(values.size()) +
        " values, table has " + std::to_string(num_rows_) + " rows");
  }
  SCUBE_RETURN_IF_ERROR(schema_.AddAttribute(spec));
  Column col;
  col.codes.reserve(values.size());
  for (const std::string& v : values) col.codes.push_back(col.dict.GetOrAdd(v));
  columns_.push_back(std::move(col));
  return Status::OK();
}

Result<Table> Table::FromCsv(const CsvDocument& doc, const Schema& schema) {
  // Map each schema attribute to its CSV column.
  std::vector<int> csv_col(schema.NumAttributes(), -1);
  for (size_t a = 0; a < schema.NumAttributes(); ++a) {
    csv_col[a] = doc.ColumnIndex(schema.attribute(a).name);
    if (csv_col[a] < 0) {
      return Status::NotFound("CSV is missing schema attribute '" +
                              schema.attribute(a).name + "'");
    }
  }
  Table table(schema);
  std::vector<std::string> fields(schema.NumAttributes());
  for (size_t r = 0; r < doc.rows.size(); ++r) {
    for (size_t a = 0; a < schema.NumAttributes(); ++a) {
      fields[a] = doc.rows[r][static_cast<size_t>(csv_col[a])];
    }
    Status s = table.AppendRowFromStrings(fields);
    if (!s.ok()) return s.WithContext("row " + std::to_string(r));
  }
  return table;
}

std::string Table::ToCsvString() const {
  CsvWriter writer;
  std::vector<std::string> header;
  for (const auto& attr : schema_.attributes()) header.push_back(attr.name);
  writer.WriteRow(header);
  std::vector<std::string> fields(schema_.NumAttributes());
  for (size_t r = 0; r < num_rows_; ++r) {
    for (size_t c = 0; c < schema_.NumAttributes(); ++c) {
      fields[c] = CellToString(r, c);
    }
    writer.WriteRow(fields);
  }
  return writer.str();
}

}  // namespace relational
}  // namespace scube
