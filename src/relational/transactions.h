// Transaction encoding: finalTable -> transaction database + item catalog.
//
// Cube coordinates are encoded as itemsets: one item per (attribute, value)
// pair, partitioned into segregation items (SA) and context items (CA). The
// catalog records the meaning of every item so mined itemsets can be decoded
// back into cube coordinates.

#ifndef SCUBE_RELATIONAL_TRANSACTIONS_H_
#define SCUBE_RELATIONAL_TRANSACTIONS_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "fpm/itemset.h"
#include "fpm/transaction_db.h"
#include "relational/table.h"

namespace scube {
namespace relational {

/// \brief What an item denotes.
struct ItemInfo {
  size_t attr_index = 0;       ///< column in the source table
  std::string attr_name;
  std::string value;
  AttributeKind kind = AttributeKind::kIgnore;
};

/// \brief Registry of (attribute, value) items.
class ItemCatalog {
 public:
  /// Returns the item for the pair, creating it if new.
  fpm::ItemId GetOrAdd(size_t attr_index, const std::string& attr_name,
                       const std::string& value, AttributeKind kind);

  /// Looks up an existing item; kInvalidItem when absent.
  fpm::ItemId Find(size_t attr_index, const std::string& value) const;

  size_t size() const { return infos_.size(); }
  const ItemInfo& info(fpm::ItemId item) const { return infos_[item]; }

  /// Human-readable item label, e.g. "sex=female".
  std::string Label(fpm::ItemId item) const;

  /// Renders an itemset as "sex=female & region=north" ("⋆" when empty).
  std::string LabelSet(const fpm::Itemset& items) const;

  /// Partitions an itemset into its SA and CA parts.
  void Split(const fpm::Itemset& items, fpm::Itemset* sa_part,
             fpm::Itemset* ca_part) const;

  /// True iff every item in `items` is a segregation (resp. context) item.
  bool AllOfKind(const fpm::Itemset& items, AttributeKind kind) const;

  /// Number of distinct attributes among items of the given kind.
  size_t NumAttributesOfKind(AttributeKind kind) const;

 private:
  std::vector<ItemInfo> infos_;
  std::unordered_map<std::string, fpm::ItemId> index_;  // "attr\x1Fvalue"
};

/// \brief A finalTable encoded for mining.
struct EncodedRelation {
  fpm::TransactionDb db;             ///< one transaction per individual
  ItemCatalog catalog;               ///< item meanings
  std::vector<uint32_t> row_unit;    ///< row -> dense unit index
  std::vector<std::string> unit_labels;  ///< unit index -> label
};

/// Encodes a finalTable for cube analysis. Requirements (checked):
///   - schema passes Schema::ValidateForAnalysis();
///   - every SA/CA attribute is kCategorical or kCategoricalSet (numeric
///     attributes must be binned first, see relational/binning.h);
///   - the unit attribute is kCategorical or kInt64.
Result<EncodedRelation> EncodeForAnalysis(const Table& final_table);

}  // namespace relational
}  // namespace scube

#endif  // SCUBE_RELATIONAL_TRANSACTIONS_H_
