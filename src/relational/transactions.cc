#include "relational/transactions.h"

#include <algorithm>

#include "common/logging.h"

namespace scube {
namespace relational {

namespace {
std::string CatalogKey(size_t attr_index, const std::string& value) {
  return std::to_string(attr_index) + "\x1F" + value;
}
}  // namespace

fpm::ItemId ItemCatalog::GetOrAdd(size_t attr_index,
                                  const std::string& attr_name,
                                  const std::string& value,
                                  AttributeKind kind) {
  std::string key = CatalogKey(attr_index, value);
  auto it = index_.find(key);
  if (it != index_.end()) return it->second;
  fpm::ItemId item = static_cast<fpm::ItemId>(infos_.size());
  infos_.push_back(ItemInfo{attr_index, attr_name, value, kind});
  index_.emplace(std::move(key), item);
  return item;
}

fpm::ItemId ItemCatalog::Find(size_t attr_index,
                              const std::string& value) const {
  auto it = index_.find(CatalogKey(attr_index, value));
  return it == index_.end() ? fpm::kInvalidItem : it->second;
}

std::string ItemCatalog::Label(fpm::ItemId item) const {
  SCUBE_CHECK(item < infos_.size());
  const ItemInfo& info = infos_[item];
  return info.attr_name + "=" + info.value;
}

std::string ItemCatalog::LabelSet(const fpm::Itemset& items) const {
  if (items.empty()) return "*";
  // Render in (attribute, value) order rather than raw item-id order so the
  // output is stable and human-sensible regardless of encoding order.
  std::vector<fpm::ItemId> ordered(items.items());
  std::sort(ordered.begin(), ordered.end(),
            [this](fpm::ItemId a, fpm::ItemId b) {
              const ItemInfo& ia = infos_[a];
              const ItemInfo& ib = infos_[b];
              if (ia.attr_index != ib.attr_index) {
                return ia.attr_index < ib.attr_index;
              }
              return ia.value < ib.value;
            });
  std::string out;
  for (size_t i = 0; i < ordered.size(); ++i) {
    if (i > 0) out += " & ";
    out += Label(ordered[i]);
  }
  return out;
}

void ItemCatalog::Split(const fpm::Itemset& items, fpm::Itemset* sa_part,
                        fpm::Itemset* ca_part) const {
  std::vector<fpm::ItemId> sa, ca;
  for (fpm::ItemId item : items.items()) {
    SCUBE_CHECK(item < infos_.size());
    if (infos_[item].kind == AttributeKind::kSegregation) {
      sa.push_back(item);
    } else {
      ca.push_back(item);
    }
  }
  *sa_part = fpm::Itemset(std::move(sa));
  *ca_part = fpm::Itemset(std::move(ca));
}

bool ItemCatalog::AllOfKind(const fpm::Itemset& items,
                            AttributeKind kind) const {
  for (fpm::ItemId item : items.items()) {
    if (infos_[item].kind != kind) return false;
  }
  return true;
}

size_t ItemCatalog::NumAttributesOfKind(AttributeKind kind) const {
  std::vector<size_t> seen;
  for (const ItemInfo& info : infos_) {
    if (info.kind == kind) seen.push_back(info.attr_index);
  }
  std::sort(seen.begin(), seen.end());
  seen.erase(std::unique(seen.begin(), seen.end()), seen.end());
  return seen.size();
}

Result<EncodedRelation> EncodeForAnalysis(const Table& final_table) {
  const Schema& schema = final_table.schema();
  SCUBE_RETURN_IF_ERROR(schema.ValidateForAnalysis());

  // Collect the mined attributes and validate their types.
  std::vector<size_t> mined_attrs;
  for (size_t a = 0; a < schema.NumAttributes(); ++a) {
    const AttributeSpec& spec = schema.attribute(a);
    if (spec.kind != AttributeKind::kSegregation &&
        spec.kind != AttributeKind::kContext) {
      continue;
    }
    if (spec.type != ColumnType::kCategorical &&
        spec.type != ColumnType::kCategoricalSet) {
      return Status::FailedPrecondition(
          "attribute '" + spec.name +
          "' is numeric; bin it before analysis (relational/binning.h)");
    }
    mined_attrs.push_back(a);
  }

  size_t unit_attr = schema.IndicesOfKind(AttributeKind::kUnit)[0];
  const AttributeSpec& unit_spec = schema.attribute(unit_attr);
  if (unit_spec.type != ColumnType::kCategorical &&
      unit_spec.type != ColumnType::kInt64) {
    return Status::FailedPrecondition(
        "unit attribute '" + unit_spec.name +
        "' must be categorical or int64");
  }

  EncodedRelation out;
  out.row_unit.reserve(final_table.NumRows());
  std::unordered_map<int64_t, uint32_t> int_units;

  for (size_t r = 0; r < final_table.NumRows(); ++r) {
    // Items.
    std::vector<fpm::ItemId> items;
    for (size_t a : mined_attrs) {
      const AttributeSpec& spec = schema.attribute(a);
      if (spec.type == ColumnType::kCategorical) {
        items.push_back(out.catalog.GetOrAdd(
            a, spec.name, final_table.CategoricalValue(r, a), spec.kind));
      } else {
        for (const std::string& v : final_table.SetValues(r, a)) {
          items.push_back(out.catalog.GetOrAdd(a, spec.name, v, spec.kind));
        }
      }
    }
    out.db.AddTransaction(std::move(items));

    // Unit assignment.
    uint32_t unit;
    if (unit_spec.type == ColumnType::kCategorical) {
      unit = final_table.CategoricalCode(r, unit_attr);
      while (out.unit_labels.size() <= unit) {
        out.unit_labels.push_back(final_table.dictionary(unit_attr).ValueOf(
            static_cast<Code>(out.unit_labels.size())));
      }
    } else {
      int64_t raw = final_table.Int64Value(r, unit_attr);
      auto [it, inserted] = int_units.emplace(
          raw, static_cast<uint32_t>(out.unit_labels.size()));
      if (inserted) out.unit_labels.push_back(std::to_string(raw));
      unit = it->second;
    }
    out.row_unit.push_back(unit);
  }
  return out;
}

}  // namespace relational
}  // namespace scube
