// Dictionary: bidirectional string <-> dense code mapping.

#ifndef SCUBE_RELATIONAL_DICTIONARY_H_
#define SCUBE_RELATIONAL_DICTIONARY_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace scube {
namespace relational {

/// Dense categorical code; per-attribute dictionaries start at 0.
using Code = uint32_t;

inline constexpr Code kNullCode = 0xFFFFFFFFu;

/// \brief Append-only dictionary used by categorical columns.
class Dictionary {
 public:
  /// Returns the code of `value`, inserting it if new.
  Code GetOrAdd(const std::string& value);

  /// Returns the code of `value` or kNullCode when absent.
  Code Find(const std::string& value) const;

  /// The string for a code; code must be < size().
  const std::string& ValueOf(Code code) const { return values_[code]; }

  size_t size() const { return values_.size(); }

 private:
  std::vector<std::string> values_;
  std::unordered_map<std::string, Code> index_;
};

}  // namespace relational
}  // namespace scube

#endif  // SCUBE_RELATIONAL_DICTIONARY_H_
