// Schema: attribute names, types, and segregation-analysis roles.
//
// SCube distinguishes *segregation attributes* (SA: traits of individuals
// that define minority groups — sex, age, birthplace) from *context
// attributes* (CA: where segregation may appear — residence, sector) and the
// *unit* attribute (the organisational unit an individual belongs to).

#ifndef SCUBE_RELATIONAL_SCHEMA_H_
#define SCUBE_RELATIONAL_SCHEMA_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace scube {
namespace relational {

/// Role of an attribute in segregation analysis.
enum class AttributeKind {
  kId,           ///< entity identifier; never mined
  kSegregation,  ///< SA: defines minority subgroups (cube rows)
  kContext,      ///< CA: defines contexts (cube columns)
  kUnit,         ///< organisational unit id (exactly one per finalTable)
  kIgnore,       ///< carried through but not analysed
};

/// Physical type of an attribute.
enum class ColumnType {
  kCategorical,     ///< dictionary-encoded string
  kInt64,           ///< integer (ids, counts, years); binnable
  kDouble,          ///< real; binnable
  kCategoricalSet,  ///< multi-valued categorical, e.g. owns={house,car}
};

const char* AttributeKindToString(AttributeKind kind);
const char* ColumnTypeToString(ColumnType type);

/// \brief One attribute declaration.
struct AttributeSpec {
  std::string name;
  ColumnType type = ColumnType::kCategorical;
  AttributeKind kind = AttributeKind::kIgnore;
};

/// \brief Ordered list of attribute declarations with name lookup.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<AttributeSpec> attributes);

  /// Appends an attribute; fails if the name already exists.
  Status AddAttribute(AttributeSpec spec);

  size_t NumAttributes() const { return attributes_.size(); }
  const AttributeSpec& attribute(size_t i) const { return attributes_[i]; }
  const std::vector<AttributeSpec>& attributes() const { return attributes_; }

  /// Index of an attribute by name, or -1.
  int IndexOf(const std::string& name) const;

  /// Indices of all attributes with the given kind.
  std::vector<size_t> IndicesOfKind(AttributeKind kind) const;

  /// Validates the schema for cube analysis: at least one SA, at least one
  /// unit-or-CA attribute, and at most one kUnit attribute.
  Status ValidateForAnalysis() const;

 private:
  std::vector<AttributeSpec> attributes_;
};

}  // namespace relational
}  // namespace scube

#endif  // SCUBE_RELATIONAL_SCHEMA_H_
