// Binning: discretisation of numeric attributes into categorical bins.
//
// Segregation attributes like age arrive as integers; the cube needs
// categorical values ("15-38", "39-46", ...). Mirrors the age bins visible
// in the paper's finalTable example (Fig. 3).

#ifndef SCUBE_RELATIONAL_BINNING_H_
#define SCUBE_RELATIONAL_BINNING_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "relational/table.h"

namespace scube {
namespace relational {

/// \brief Maps numeric values into labelled bins.
class Binner {
 public:
  /// Bins defined by explicit right-open edges: values in [edges[i],
  /// edges[i+1]) get label "edges[i]-(edges[i+1]-1)". Values below the first
  /// edge / at-or-above the last go to "<lo" / ">=hi" overflow bins.
  static Result<Binner> FromEdges(std::vector<int64_t> edges);

  /// `count` equal-width bins spanning [lo, hi].
  static Result<Binner> EqualWidth(int64_t lo, int64_t hi, size_t count);

  /// `count` equal-frequency bins from a sample of values (quantile cuts).
  static Result<Binner> EqualFrequency(std::vector<int64_t> values,
                                       size_t count);

  /// Bin label of a single value.
  std::string LabelOf(int64_t value) const;

  /// All interior labels in order (excluding overflow bins).
  std::vector<std::string> Labels() const;

  size_t NumBins() const { return edges_.size() - 1; }

  /// Discretises `table`'s Int64 column `source_attr` into a new categorical
  /// attribute `target_spec` appended to the table.
  static Status DiscretizeColumn(Table* table, const std::string& source_attr,
                                 const AttributeSpec& target_spec,
                                 const Binner& binner);

 private:
  explicit Binner(std::vector<int64_t> edges);
  std::vector<int64_t> edges_;  // size >= 2, strictly increasing
};

}  // namespace relational
}  // namespace scube

#endif  // SCUBE_RELATIONAL_BINNING_H_
