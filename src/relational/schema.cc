#include "relational/schema.h"

namespace scube {
namespace relational {

const char* AttributeKindToString(AttributeKind kind) {
  switch (kind) {
    case AttributeKind::kId:
      return "id";
    case AttributeKind::kSegregation:
      return "segregation";
    case AttributeKind::kContext:
      return "context";
    case AttributeKind::kUnit:
      return "unit";
    case AttributeKind::kIgnore:
      return "ignore";
  }
  return "?";
}

const char* ColumnTypeToString(ColumnType type) {
  switch (type) {
    case ColumnType::kCategorical:
      return "categorical";
    case ColumnType::kInt64:
      return "int64";
    case ColumnType::kDouble:
      return "double";
    case ColumnType::kCategoricalSet:
      return "categorical-set";
  }
  return "?";
}

Schema::Schema(std::vector<AttributeSpec> attributes)
    : attributes_(std::move(attributes)) {}

Status Schema::AddAttribute(AttributeSpec spec) {
  if (IndexOf(spec.name) >= 0) {
    return Status::AlreadyExists("attribute already declared: " + spec.name);
  }
  attributes_.push_back(std::move(spec));
  return Status::OK();
}

int Schema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

std::vector<size_t> Schema::IndicesOfKind(AttributeKind kind) const {
  std::vector<size_t> out;
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].kind == kind) out.push_back(i);
  }
  return out;
}

Status Schema::ValidateForAnalysis() const {
  size_t num_sa = IndicesOfKind(AttributeKind::kSegregation).size();
  size_t num_unit = IndicesOfKind(AttributeKind::kUnit).size();
  if (num_sa == 0) {
    return Status::FailedPrecondition(
        "analysis requires at least one segregation attribute");
  }
  if (num_unit != 1) {
    return Status::FailedPrecondition(
        "analysis requires exactly one unit attribute, found " +
        std::to_string(num_unit));
  }
  return Status::OK();
}

}  // namespace relational
}  // namespace scube
