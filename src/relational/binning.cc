#include "relational/binning.h"

#include <algorithm>

namespace scube {
namespace relational {

Binner::Binner(std::vector<int64_t> edges) : edges_(std::move(edges)) {}

Result<Binner> Binner::FromEdges(std::vector<int64_t> edges) {
  if (edges.size() < 2) {
    return Status::InvalidArgument("binner needs at least two edges");
  }
  for (size_t i = 1; i < edges.size(); ++i) {
    if (edges[i] <= edges[i - 1]) {
      return Status::InvalidArgument("bin edges must be strictly increasing");
    }
  }
  return Binner(std::move(edges));
}

Result<Binner> Binner::EqualWidth(int64_t lo, int64_t hi, size_t count) {
  if (count == 0) return Status::InvalidArgument("bin count must be >= 1");
  if (hi <= lo) return Status::InvalidArgument("hi must exceed lo");
  std::vector<int64_t> edges;
  edges.reserve(count + 1);
  double width = static_cast<double>(hi - lo + 1) / static_cast<double>(count);
  for (size_t i = 0; i <= count; ++i) {
    int64_t e = lo + static_cast<int64_t>(static_cast<double>(i) * width);
    if (edges.empty() || e > edges.back()) edges.push_back(e);
  }
  if (edges.back() <= hi) edges.back() = hi + 1;
  return FromEdges(std::move(edges));
}

Result<Binner> Binner::EqualFrequency(std::vector<int64_t> values,
                                      size_t count) {
  if (count == 0) return Status::InvalidArgument("bin count must be >= 1");
  if (values.empty()) return Status::InvalidArgument("no values to bin");
  std::sort(values.begin(), values.end());
  std::vector<int64_t> edges;
  edges.push_back(values.front());
  for (size_t i = 1; i < count; ++i) {
    size_t idx = i * values.size() / count;
    int64_t cut = values[idx];
    if (cut > edges.back()) edges.push_back(cut);
  }
  if (values.back() + 1 > edges.back()) {
    edges.push_back(values.back() + 1);
  }
  if (edges.size() < 2) edges.push_back(edges.back() + 1);
  return FromEdges(std::move(edges));
}

std::string Binner::LabelOf(int64_t value) const {
  if (value < edges_.front()) {
    std::string out = "<";
    out += std::to_string(edges_.front());
    return out;
  }
  if (value >= edges_.back()) {
    std::string out = ">=";
    out += std::to_string(edges_.back());
    return out;
  }
  auto it = std::upper_bound(edges_.begin(), edges_.end(), value);
  size_t bin = static_cast<size_t>(it - edges_.begin()) - 1;
  std::string out = std::to_string(edges_[bin]);
  out += "-";
  out += std::to_string(edges_[bin + 1] - 1);
  return out;
}

std::vector<std::string> Binner::Labels() const {
  std::vector<std::string> out;
  for (size_t i = 0; i + 1 < edges_.size(); ++i) {
    out.push_back(std::to_string(edges_[i]) + "-" +
                  std::to_string(edges_[i + 1] - 1));
  }
  return out;
}

Status Binner::DiscretizeColumn(Table* table, const std::string& source_attr,
                                const AttributeSpec& target_spec,
                                const Binner& binner) {
  int col = table->schema().IndexOf(source_attr);
  if (col < 0) {
    return Status::NotFound("no such attribute: " + source_attr);
  }
  if (table->schema().attribute(static_cast<size_t>(col)).type !=
      ColumnType::kInt64) {
    return Status::InvalidArgument("attribute '" + source_attr +
                                   "' is not int64; cannot bin");
  }
  std::vector<std::string> labels;
  labels.reserve(table->NumRows());
  for (size_t r = 0; r < table->NumRows(); ++r) {
    labels.push_back(
        binner.LabelOf(table->Int64Value(r, static_cast<size_t>(col))));
  }
  return table->AddCategoricalColumn(target_spec, labels);
}

}  // namespace relational
}  // namespace scube
