// Table: columnar relational table with dictionary-encoded categoricals.
//
// This is the representation of SCube's `individual.csv`, `group.csv` and the
// joined `finalTable`. Categorical data is dictionary-encoded per column;
// multi-valued attributes (e.g. a company active in several sectors, Fig. 3
// of the paper) are stored as flattened code lists with offsets.

#ifndef SCUBE_RELATIONAL_TABLE_H_
#define SCUBE_RELATIONAL_TABLE_H_

#include <cstdint>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "common/csv.h"
#include "common/result.h"
#include "relational/dictionary.h"
#include "relational/schema.h"

namespace scube {
namespace relational {

/// A typed cell for programmatic row construction.
using CellValue =
    std::variant<int64_t, double, std::string, std::vector<std::string>>;

/// \brief Columnar table bound to a Schema.
class Table {
 public:
  explicit Table(Schema schema);

  const Schema& schema() const { return schema_; }
  size_t NumRows() const { return num_rows_; }

  /// Appends a row of typed cells; cell count and types must match schema.
  Status AppendRow(const std::vector<CellValue>& cells);

  /// Appends a row of raw strings, parsing each per the column type.
  /// Set-valued cells use brace syntax: "{electricity, transports}"; a bare
  /// string is treated as a singleton set.
  Status AppendRowFromStrings(const std::vector<std::string>& fields);

  // Accessors (row < NumRows(), col bound to the matching column type).
  Code CategoricalCode(size_t row, size_t col) const;
  const std::string& CategoricalValue(size_t row, size_t col) const;
  int64_t Int64Value(size_t row, size_t col) const;
  double DoubleValue(size_t row, size_t col) const;
  /// Codes of a set-valued cell (sorted, deduplicated).
  std::span<const Code> SetCodes(size_t row, size_t col) const;
  /// String values of a set-valued cell.
  std::vector<std::string> SetValues(size_t row, size_t col) const;

  /// The dictionary of a categorical or set column.
  const Dictionary& dictionary(size_t col) const;

  /// Renders any cell as a string (sets as "{a,b}").
  std::string CellToString(size_t row, size_t col) const;

  /// Appends a derived categorical column (used by binning); `values` must
  /// have NumRows() entries.
  Status AddCategoricalColumn(const AttributeSpec& spec,
                              const std::vector<std::string>& values);

  /// Builds a table from a parsed CSV document; the document header must
  /// contain every schema attribute (extra columns are ignored).
  static Result<Table> FromCsv(const CsvDocument& doc, const Schema& schema);

  /// Serialises to CSV (header + rows).
  std::string ToCsvString() const;

  /// Parses brace-syntax set literals: "{a, b}" -> {"a","b"}; "x" -> {"x"};
  /// "{}" -> {}.
  static std::vector<std::string> ParseSetLiteral(const std::string& raw);

 private:
  struct Column {
    std::vector<Code> codes;          // kCategorical
    std::vector<int64_t> ints;        // kInt64
    std::vector<double> doubles;      // kDouble
    std::vector<uint32_t> set_offsets{0};  // kCategoricalSet
    std::vector<Code> set_codes;
    Dictionary dict;
  };

  Schema schema_;
  std::vector<Column> columns_;
  size_t num_rows_ = 0;
};

}  // namespace relational
}  // namespace scube

#endif  // SCUBE_RELATIONAL_TABLE_H_
