#include "relational/dictionary.h"

namespace scube {
namespace relational {

Code Dictionary::GetOrAdd(const std::string& value) {
  auto it = index_.find(value);
  if (it != index_.end()) return it->second;
  Code code = static_cast<Code>(values_.size());
  values_.push_back(value);
  index_.emplace(value, code);
  return code;
}

Code Dictionary::Find(const std::string& value) const {
  auto it = index_.find(value);
  return it == index_.end() ? kNullCode : it->second;
}

}  // namespace relational
}  // namespace scube
