#include "server/reactor.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "common/string_util.h"
#include "common/timer.h"

namespace scube {
namespace server {

namespace {

using Clock = std::chrono::steady_clock;

// epoll data.u64 tags for the two non-connection fds.
constexpr uint64_t kListenerTag = 0;
constexpr uint64_t kWakeTag = 1;

/// Bound on the inbox while hunting for the first complete line of a
/// request (dialect sniff / request line / line-protocol line) — the same
/// 64 KiB the blocking BufferedReader::ReadLine enforces.
constexpr size_t kMaxPendingLineBytes = 64 * 1024 + 2;

Status Errno(const char* what) {
  return Status::IoError(std::string(what) + ": " + std::strerror(errno));
}

Clock::time_point After(double seconds) {
  return Clock::now() +
         std::chrono::duration_cast<Clock::duration>(
             std::chrono::duration<double>(seconds));
}

}  // namespace

/// One connection. Most fields belong to the loop thread; the mu-guarded
/// block at the bottom is the loop↔worker response channel, and the
/// pending_* handoff fields are synchronised by the task-queue mutex.
struct Reactor::Conn {
  enum class Dialect { kUnknown, kHttp, kLine };

  uint64_t id = 0;
  net::Socket socket;
  Dialect dialect = Dialect::kUnknown;

  // Loop-thread state machine.
  std::string inbox;             ///< bytes read, not yet parsed
  net::HttpRequestParser parser;
  bool parser_started = false;   ///< current HTTP message fed the parser
  bool reading_request = false;  ///< first byte seen, message incomplete
  bool in_dispatch = false;      ///< a worker owns the response
  bool peer_eof = false;         ///< orderly shutdown seen on read
  bool dead = false;             ///< CloseConn ran (loop-side guard)
  bool want_read = true;         ///< EPOLLIN armed
  bool want_write = false;       ///< EPOLLOUT armed
  uint64_t timer_gen = 0;        ///< lazy-deletes stale heap entries
  Clock::time_point read_start{};

  // Loop → worker handoff (happens-before via the task queue mutex).
  net::HttpRequest pending_request;
  std::string pending_line;

  // Loop ↔ worker response channel.
  sync::Mutex mu;
  sync::CondVar drain_cv;
  std::string outbox GUARDED_BY(mu);
  size_t outbox_pos GUARDED_BY(mu) = 0;
  bool response_done GUARDED_BY(mu) = false;
  bool close_after_response GUARDED_BY(mu) = false;
  std::atomic<bool> closed{false};
};

Reactor::Reactor(RouterContext router, ServerMetrics* metrics,
                 ReactorOptions options)
    : router_(router), metrics_(metrics), options_(options) {
  options_.num_dispatch_threads =
      std::max<size_t>(1, options_.num_dispatch_threads);
}

Reactor::~Reactor() { Stop(); }

Status Reactor::Start(net::ListenSocket listener) {
  if (started_) return Status::FailedPrecondition("reactor already started");
  listener_ = std::move(listener);
  port_ = listener_.port();
  Status nb = listener_.SetNonBlocking(true);
  if (!nb.ok()) return nb;

  epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) return Errno("epoll_create1");
  wake_fd_ = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) {
    close(epoll_fd_);
    epoll_fd_ = -1;
    return Errno("eventfd");
  }

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kWakeTag;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0) {
    Status s = Errno("epoll_ctl(wakeup)");
    close(epoll_fd_);
    close(wake_fd_);
    epoll_fd_ = wake_fd_ = -1;
    return s;
  }
  ev.events = EPOLLIN;
  ev.data.u64 = kListenerTag;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listener_.fd(), &ev) != 0) {
    Status s = Errno("epoll_ctl(listener)");
    close(epoll_fd_);
    close(wake_fd_);
    epoll_fd_ = wake_fd_ = -1;
    return s;
  }

  started_ = true;
  stopping_.store(false, std::memory_order_release);
  stop_begun_ = false;
  workers_stop_ = false;
  workers_.reserve(options_.num_dispatch_threads);
  for (size_t i = 0; i < options_.num_dispatch_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  loop_ = std::thread([this] { LoopThread(); });
  return Status::OK();
}

void Reactor::Stop() {
  if (!started_) return;
  started_ = false;
  stopping_.store(true, std::memory_order_release);
  NotifyReady(kWakeTag);  // wake the loop so it notices `stopping_`
  if (loop_.joinable()) loop_.join();
  {
    sync::MutexLock lock(&task_mu_);
    workers_stop_ = true;
  }
  task_cv_.SignalAll();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  {
    sync::MutexLock lock(&task_mu_);
    tasks_.clear();
  }
  if (epoll_fd_ >= 0) {
    close(epoll_fd_);
    epoll_fd_ = -1;
  }
  if (wake_fd_ >= 0) {
    close(wake_fd_);
    wake_fd_ = -1;
  }
}

// ---------------------------------------------------------------------------
// Loop thread.

void Reactor::LoopThread() {
  std::vector<epoll_event> events(256);
  while (true) {
    if (stopping_.load(std::memory_order_acquire) && !stop_begun_) {
      BeginStopInLoop();
    }
    if (stop_begun_) {
      if (conns_.empty()) break;
      if (Clock::now() >= stop_deadline_) {
        // Drain budget exhausted: force-close the stragglers.
        std::vector<std::shared_ptr<Conn>> remaining;
        remaining.reserve(conns_.size());
        for (auto& kv : conns_) remaining.push_back(kv.second);
        for (auto& conn : remaining) CloseConn(conn);
        break;
      }
    }

    int n = epoll_wait(epoll_fd_, events.data(),
                       static_cast<int>(events.size()), PollTimeoutMs());
    metrics_->Inc(metrics_->reactor_loops);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // epoll itself failed; nothing sane left to do
    }
    for (int i = 0; i < n; ++i) {
      const uint64_t tag = events[i].data.u64;
      if (tag == kListenerTag) {
        AcceptReady();
        continue;
      }
      if (tag == kWakeTag) {
        uint64_t drained;
        while (read(wake_fd_, &drained, sizeof(drained)) > 0) {
        }
        continue;
      }
      auto it = conns_.find(tag);
      if (it == conns_.end()) continue;  // closed earlier this batch
      std::shared_ptr<Conn> conn = it->second;
      OnConnEvent(conn, events[i].events);
    }
    ProcessReady();
    ProcessTimers();
  }
}

int Reactor::PollTimeoutMs() {
  // Lazy deletion: pop heap tops whose connection vanished or re-armed.
  while (!timers_.empty()) {
    const TimerEntry& top = timers_.top();
    auto it = conns_.find(top.id);
    if (it == conns_.end() || it->second->timer_gen != top.gen) {
      timers_.pop();
      continue;
    }
    break;
  }
  bool have = false;
  Clock::time_point next = Clock::time_point::max();
  if (!timers_.empty()) {
    next = timers_.top().when;
    have = true;
  }
  if (stop_begun_ && stop_deadline_ < next) {
    next = stop_deadline_;
    have = true;
  }
  if (!have) return -1;
  const Clock::time_point now = Clock::now();
  if (next <= now) return 0;
  const long long ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(next - now)
          .count() +
      1;
  return static_cast<int>(std::min<long long>(ms, 60'000));
}

void Reactor::AcceptReady() {
  while (true) {
    net::Socket socket;
    Status error;
    const net::IoOutcome outcome = listener_.TryAccept(&socket, &error);
    if (outcome == net::IoOutcome::kWouldBlock) return;
    if (outcome == net::IoOutcome::kError) {
      // Transient (EMFILE under an fd flood, and friends). Level-
      // triggered epoll re-reports pending connections next iteration,
      // so returning here cannot lose accepts or spin.
      return;
    }
    if (stopping_.load(std::memory_order_acquire)) continue;  // RAII close
    metrics_->ConnOpened();
    if (conns_.size() >= options_.max_connections) {
      // Connection-level load shedding: answer 503 without parsing.
      metrics_->Inc(metrics_->connections_shed);
      net::HttpResponse resp(503,
                             "{\"error\":\"connection limit reached\"}\n");
      resp.SetHeader("Retry-After", "1");
      socket.SetNonBlocking(true);
      socket.WriteNonBlocking(
          net::SerializeResponse(resp, /*keep_alive=*/false));
      metrics_->ConnClosed();
      continue;
    }
    socket.SetNoDelay();
    if (!socket.SetNonBlocking(true).ok()) {
      metrics_->ConnClosed();
      continue;
    }
    auto conn = std::make_shared<Conn>();
    conn->id = next_conn_id_++;
    conn->socket = std::move(socket);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = conn->id;
    if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, conn->socket.fd(), &ev) != 0) {
      metrics_->ConnClosed();
      continue;
    }
    conns_.emplace(conn->id, conn);
    ArmTimer(conn, options_.idle_timeout_seconds);
  }
}

void Reactor::OnConnEvent(const std::shared_ptr<Conn>& conn,
                          uint32_t events) {
  if (conn->dead) return;
  if (events & (EPOLLHUP | EPOLLERR)) {
    CloseConn(conn);
    return;
  }
  if (events & EPOLLIN) OnReadable(conn);
  if (conn->dead) return;
  if (events & EPOLLOUT) HandleWrite(conn);
}

void Reactor::OnReadable(const std::shared_ptr<Conn>& conn) {
  char buf[16 * 1024];
  while (!conn->dead) {
    const net::IoResult r = conn->socket.ReadNonBlocking(buf, sizeof(buf));
    if (r.outcome == net::IoOutcome::kReady) {
      if (!conn->in_dispatch && !conn->reading_request) {
        // First byte of a new request: start the header-read clock. A
        // byte-at-a-time slow loris keeps resetting nothing — the timer
        // runs from here to parse-complete.
        conn->reading_request = true;
        conn->read_start = Clock::now();
        ArmTimer(conn, options_.header_read_seconds);
      }
      conn->inbox.append(buf, r.bytes);
      if (r.bytes < sizeof(buf)) break;  // kernel buffer drained
      continue;
    }
    if (r.outcome == net::IoOutcome::kWouldBlock) break;
    if (r.outcome == net::IoOutcome::kEof) {
      conn->peer_eof = true;
      break;
    }
    CloseConn(conn);
    return;
  }
  if (conn->dead) return;
  ParseAvailable(conn);
  if (!conn->dead && conn->peer_eof && !conn->in_dispatch) {
    // Nothing more will arrive, so a partial request can never complete
    // (the threaded path's read error on the same bytes also closes).
    CloseConn(conn);
  }
}

void Reactor::ParseAvailable(const std::shared_ptr<Conn>& conn) {
  while (!conn->dead && !conn->in_dispatch) {
    if (conn->dialect != Conn::Dialect::kHttp || !conn->parser_started) {
      // Line-oriented stage: the dialect sniff, a line-protocol line, or
      // the request line that re-arms the HTTP parser all need one
      // complete line first.
      const size_t nl = conn->inbox.find('\n');
      if (nl == std::string::npos) {
        if (conn->inbox.size() > kMaxPendingLineBytes) CloseConn(conn);
        return;  // need more bytes
      }
      std::string line = conn->inbox.substr(0, nl);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (conn->dialect == Conn::Dialect::kUnknown) {
        conn->dialect = net::SniffsAsHttp(line) ? Conn::Dialect::kHttp
                                                : Conn::Dialect::kLine;
      }
      if (conn->dialect == Conn::Dialect::kLine) {
        conn->inbox.erase(0, nl + 1);
        std::string trimmed(Trim(line));
        if (trimmed == "QUIT" || trimmed == ".quit") {
          CloseConn(conn);
          return;
        }
        if (trimmed.empty()) continue;
        DispatchLine(conn, std::move(trimmed));
        return;
      }
      // HTTP: a blank line between keep-alive requests closes the
      // connection (threaded front-end parity).
      if (line.empty()) {
        CloseConn(conn);
        return;
      }
      conn->parser_started = true;
      // Fall through: the parser consumes the line (still in the inbox)
      // itself.
    }
    const size_t used = conn->parser.Feed(conn->inbox);
    conn->inbox.erase(0, used);
    if (conn->parser.failed()) {
      RespondParseError(conn);
      return;
    }
    if (conn->parser.done()) {
      DispatchHttp(conn);
      return;
    }
    return;  // mid-message: wait for more bytes
  }
}

void Reactor::DispatchHttp(const std::shared_ptr<Conn>& conn) {
  conn->pending_request = std::move(conn->parser.request());
  conn->pending_request.read_start = conn->read_start;
  conn->pending_request.read_end = Clock::now();
  conn->parser.Reset();
  conn->parser_started = false;
  conn->reading_request = false;
  DisarmTimer(conn);
  BeginDispatch(conn);
}

void Reactor::DispatchLine(const std::shared_ptr<Conn>& conn,
                           std::string line) {
  conn->pending_line = std::move(line);
  conn->reading_request = false;
  DisarmTimer(conn);
  BeginDispatch(conn);
}

void Reactor::BeginDispatch(const std::shared_ptr<Conn>& conn) {
  conn->in_dispatch = true;
  // Stop reading while a worker owns the response: pipelined bytes wait
  // in the kernel buffer, which bounds the inbox.
  SetInterest(conn, /*read=*/false, conn->want_write);
  {
    sync::MutexLock lock(&task_mu_);
    tasks_.push_back(conn);
  }
  task_cv_.Signal();
}

void Reactor::RespondParseError(const std::shared_ptr<Conn>& conn) {
  // Mirrors the threaded path byte-for-byte: 400 with the parser's
  // message, counted as a request + error under route="other", then close.
  metrics_->Inc(metrics_->http_requests);
  metrics_->Inc(metrics_->http_errors);
  WallTimer route_timer;
  net::HttpResponse response(
      400,
      "{\"error\":" + JsonQuote(conn->parser.status().message()) + "}\n");
  std::string wire = net::SerializeResponse(response, /*keep_alive=*/false);
  DisarmTimer(conn);
  conn->reading_request = false;
  conn->in_dispatch = true;  // response in flight; no further parsing
  {
    sync::MutexLock lock(&conn->mu);
    conn->outbox.append(wire);
    conn->response_done = true;
    conn->close_after_response = true;
  }
  metrics_->ObserveRoute(Route::kOther, route_timer.Millis());
  HandleWrite(conn);
}

Reactor::FlushResult Reactor::FlushOutbox(const std::shared_ptr<Conn>& conn) {
  sync::ReleasableMutexLock lock(&conn->mu);
  while (conn->outbox_pos < conn->outbox.size()) {
    const std::string_view rest =
        std::string_view(conn->outbox).substr(conn->outbox_pos);
    const net::IoResult r = conn->socket.WriteNonBlocking(rest);
    if (r.outcome == net::IoOutcome::kReady) {
      conn->outbox_pos += r.bytes;
      continue;
    }
    if (r.outcome == net::IoOutcome::kWouldBlock) break;
    lock.Release();
    return FlushResult::kFailed;
  }
  if (conn->outbox_pos >= conn->outbox.size()) {
    conn->outbox.clear();
    conn->outbox_pos = 0;
  } else if (conn->outbox_pos > (1u << 20)) {
    conn->outbox.erase(0, conn->outbox_pos);
    conn->outbox_pos = 0;
  }
  const bool drained = conn->outbox.empty();
  const bool below_watermark =
      conn->outbox.size() - conn->outbox_pos <= options_.max_outbox_bytes;
  // Notify off-lock: the blocked worker re-acquires mu in its wait loop.
  lock.Release();
  if (below_watermark) conn->drain_cv.SignalAll();
  return drained ? FlushResult::kDrained : FlushResult::kBlocked;
}

void Reactor::HandleWrite(const std::shared_ptr<Conn>& conn) {
  if (conn->dead) return;
  const FlushResult r = FlushOutbox(conn);
  if (r == FlushResult::kFailed) {
    CloseConn(conn);
    return;
  }
  if (r == FlushResult::kBlocked) {
    // EAGAIN: yield to the loop, resume on EPOLLOUT.
    if (!conn->want_write) SetInterest(conn, conn->want_read, true);
    return;
  }
  if (conn->want_write) SetInterest(conn, conn->want_read, false);
  bool done = false;
  bool close = false;
  {
    sync::MutexLock lock(&conn->mu);
    done = conn->response_done;
    close = conn->close_after_response;
  }
  if (conn->in_dispatch && done) CompleteResponse(conn, close);
}

void Reactor::CompleteResponse(const std::shared_ptr<Conn>& conn,
                               bool close) {
  if (close || stopping_.load(std::memory_order_acquire)) {
    CloseConn(conn);
    return;
  }
  // Keep-alive reset: back to READ_HEAD.
  conn->in_dispatch = false;
  {
    sync::MutexLock lock(&conn->mu);
    conn->response_done = false;
    conn->close_after_response = false;
  }
  SetInterest(conn, /*read=*/true, conn->want_write);
  ArmTimer(conn, options_.idle_timeout_seconds);
  // Pipelined requests may already be buffered — serve them now instead
  // of waiting for more bytes.
  ParseAvailable(conn);
  if (!conn->dead && !conn->in_dispatch && conn->peer_eof) CloseConn(conn);
}

void Reactor::CloseConn(const std::shared_ptr<Conn>& conn) {
  if (conn->dead) return;
  conn->dead = true;
  {
    sync::MutexLock lock(&conn->mu);
    conn->closed.store(true, std::memory_order_release);
  }
  conn->drain_cv.SignalAll();  // unblock a worker stuck in EnqueueOutput
  epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->socket.fd(), nullptr);
  conn->socket.Close();
  DisarmTimer(conn);
  metrics_->ConnClosed();
  conns_.erase(conn->id);
}

void Reactor::SetInterest(const std::shared_ptr<Conn>& conn, bool read,
                          bool write) {
  if (conn->dead) return;
  if (conn->want_read == read && conn->want_write == write) return;
  conn->want_read = read;
  conn->want_write = write;
  epoll_event ev{};
  ev.events = (read ? EPOLLIN : 0u) | (write ? EPOLLOUT : 0u);
  ev.data.u64 = conn->id;
  epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->socket.fd(), &ev);
}

void Reactor::ArmTimer(const std::shared_ptr<Conn>& conn, double seconds) {
  ++conn->timer_gen;  // invalidates the previous entry (lazy deletion)
  timers_.push(TimerEntry{After(seconds), conn->id, conn->timer_gen});
}

void Reactor::DisarmTimer(const std::shared_ptr<Conn>& conn) {
  ++conn->timer_gen;
}

void Reactor::ProcessTimers() {
  const Clock::time_point now = Clock::now();
  while (!timers_.empty() && timers_.top().when <= now) {
    const TimerEntry fired = timers_.top();
    timers_.pop();
    auto it = conns_.find(fired.id);
    if (it == conns_.end() || it->second->timer_gen != fired.gen) continue;
    std::shared_ptr<Conn> conn = it->second;
    if (conn->reading_request) {
      metrics_->Inc(metrics_->header_deadline_closes);
    } else {
      metrics_->Inc(metrics_->idle_timeout_closes);
    }
    CloseConn(conn);
  }
}

void Reactor::ProcessReady() {
  std::vector<uint64_t> ready;
  {
    sync::MutexLock lock(&ready_mu_);
    ready.swap(ready_);
  }
  for (const uint64_t id : ready) {
    auto it = conns_.find(id);
    if (it == conns_.end()) continue;
    std::shared_ptr<Conn> conn = it->second;
    if (!conn->dead) HandleWrite(conn);
  }
}

void Reactor::BeginStopInLoop() {
  stop_begun_ = true;
  stop_deadline_ = After(options_.drain_timeout_seconds);
  listener_.Close();  // closing deregisters it from the epoll set
  // Idle connections (no response in flight — their outbox is empty by
  // construction) drop immediately; dispatched ones get the drain budget.
  std::vector<std::shared_ptr<Conn>> idle;
  for (auto& kv : conns_) {
    if (!kv.second->in_dispatch) idle.push_back(kv.second);
  }
  for (auto& conn : idle) CloseConn(conn);
}

// ---------------------------------------------------------------------------
// Dispatch pool.

void Reactor::WorkerLoop() {
  while (true) {
    std::shared_ptr<Conn> conn;
    {
      sync::MutexLock lock(&task_mu_);
      while (!workers_stop_ && tasks_.empty()) task_cv_.Wait(&task_mu_);
      if (tasks_.empty()) return;  // stopping and drained
      conn = std::move(tasks_.front());
      tasks_.pop_front();
    }
    if (conn->dialect == Conn::Dialect::kHttp) {
      RunHttpTask(conn);
    } else {
      RunLineTask(conn);
    }
  }
}

void Reactor::RunHttpTask(const std::shared_ptr<Conn>& conn) {
  net::HttpRequest request = std::move(conn->pending_request);
  const bool keep_alive =
      request.keep_alive && !stopping_.load(std::memory_order_acquire);
  const bool head = request.method == "HEAD";
  const bool streamed = IsStreamingQuery(request);
  metrics_->Inc(metrics_->http_requests);
  WallTimer route_timer;
  const Route route = ClassifyRoute(request);
  bool close = !keep_alive;
  if (streamed) {
    // Streamed answers write through the outbox: the handler blocks on
    // the watermark (EnqueueOutput) while the loop drains to the socket —
    // the reactor's version of "yield to the loop on EAGAIN".
    auto self = conn;
    const bool alive = HandleQueryStream(
        router_, request, keep_alive, [this, self](std::string_view data) {
          return EnqueueOutput(self, data);
        });
    metrics_->ObserveRoute(route, route_timer.Millis());
    if (!alive) close = true;
  } else {
    net::HttpResponse response = HandleHttpRequest(router_, request);
    if (response.status >= 400) metrics_->Inc(metrics_->http_errors);
    metrics_->RaiseMax(metrics_->buffered_body_peak, response.body.size());
    std::string wire = net::SerializeResponse(response, keep_alive);
    // HEAD: same headers as GET (including the true Content-Length),
    // no body bytes.
    if (head) wire.resize(wire.size() - response.body.size());
    if (!EnqueueOutput(conn, wire).ok()) close = true;
    metrics_->ObserveRoute(route, route_timer.Millis());
  }
  FinishResponse(conn, close);
}

void Reactor::RunLineTask(const std::shared_ptr<Conn>& conn) {
  const std::string line = std::move(conn->pending_line);
  metrics_->Inc(metrics_->line_requests);
  WallTimer route_timer;
  std::string answer = HandleProtocolLine(router_, line);
  bool close = false;
  if (!answer.empty()) {
    answer += '\n';
    if (!EnqueueOutput(conn, answer).ok()) close = true;
  }
  metrics_->ObserveRoute(Route::kLine, route_timer.Millis());
  FinishResponse(conn, close);
}

void Reactor::FinishResponse(const std::shared_ptr<Conn>& conn, bool close) {
  {
    sync::MutexLock lock(&conn->mu);
    conn->response_done = true;
    if (close) conn->close_after_response = true;
  }
  NotifyReady(conn->id);
}

Status Reactor::EnqueueOutput(const std::shared_ptr<Conn>& conn,
                              std::string_view data) {
  {
    sync::MutexLock lock(&conn->mu);
    if (conn->closed.load(std::memory_order_acquire)) {
      return Status::IoError("connection closed");
    }
    conn->outbox.append(data);
  }
  NotifyReady(conn->id);
  sync::MutexLock lock(&conn->mu);
  while (!conn->closed.load(std::memory_order_acquire) &&
         conn->outbox.size() - conn->outbox_pos > options_.max_outbox_bytes) {
    conn->drain_cv.Wait(&conn->mu);
  }
  if (conn->closed.load(std::memory_order_acquire)) {
    return Status::IoError("connection closed");
  }
  return Status::OK();
}

void Reactor::NotifyReady(uint64_t id) {
  if (id != kWakeTag) {
    sync::MutexLock lock(&ready_mu_);
    ready_.push_back(id);
  }
  const uint64_t one = 1;
  const ssize_t ignored = write(wake_fd_, &one, sizeof(one));
  (void)ignored;
}

}  // namespace server
}  // namespace scube
