// Threshold-gated structured slow-query log: every request slower than
// `--slow-query-ms` emits exactly one JSON line to the configured sink
// (stderr by default), carrying the request's span tree when it was
// traced. One line per offender keeps the log greppable and
// machine-parseable:
//
//   {"ts":"2026-08-08T14:03:21.042Z","slow_query_ms":87.3,
//    "route":"stream","code":"OK","rows":1200,
//    "query":"TOPK 50 BY gini",
//    "trace":{"trace_id":"…","total_ms":87.3,"spans":[…]}}
//
// Enabling the log also makes the router trace every request (the span
// tree must exist by the time the threshold check fires), so the cost of
// `--slow-query-ms` is the cost of tracing — a handful of clock reads per
// request — not of logging.

#ifndef SCUBE_SERVER_SLOW_QUERY_LOG_H_
#define SCUBE_SERVER_SLOW_QUERY_LOG_H_

#include <cstdint>
#include <cstdio>
#include <string>

#include "common/sync.h"
#include "common/trace.h"

namespace scube {
namespace server {

/// \brief One offending request, as the handlers describe it.
struct SlowQueryRecord {
  const char* route = "";      ///< RouteLabel value ("query", "stream", …)
  std::string query;           ///< the statement text (or batch summary)
  const char* code = "OK";     ///< final StatusCodeToString value
  double total_ms = 0;         ///< end-to-end wall time
  uint64_t rows = 0;           ///< rows answered/streamed
  const trace::TraceContext* trace = nullptr;  ///< span tree, may be null
};

/// \brief Thread-safe slow-query sink. Threshold <= 0 disables it (every
/// MaybeLog becomes a cheap no-op).
class SlowQueryLog {
 public:
  /// Logs to `sink` (not owned; stderr by default — tests pass a
  /// tmpfile()). A null sink falls back to stderr.
  explicit SlowQueryLog(double threshold_ms, std::FILE* sink = stderr)
      : threshold_ms_(threshold_ms), sink_(sink ? sink : stderr) {}

  bool enabled() const { return threshold_ms_ > 0; }
  double threshold_ms() const { return threshold_ms_; }

  /// Emits one JSON line when enabled and record.total_ms crosses the
  /// threshold. Returns true when a line was written (the caller bumps
  /// the scubed_slow_queries_total counter on true).
  bool MaybeLog(const SlowQueryRecord& record);

  /// The JSON line for a record (no trailing newline) — the format is a
  /// contract (CI archives these lines), so it is a pure, testable
  /// function.
  static std::string FormatLine(const SlowQueryRecord& record,
                                double threshold_ms);

 private:
  double threshold_ms_;
  std::FILE* sink_;  ///< const after construction; fprintf serialised by mu_
  sync::Mutex mu_;   ///< one line at a time: no interleaved records
};

}  // namespace server
}  // namespace scube

#endif  // SCUBE_SERVER_SLOW_QUERY_LOG_H_
