// ServerMetrics: scubed's monotonic counters, rendered for GET /metrics
// in Prometheus text exposition format. Connection/request counters live
// here; query admission/deadline/cache counters come from the underlying
// QueryService at render time.

#ifndef SCUBE_SERVER_METRICS_H_
#define SCUBE_SERVER_METRICS_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "query/service.h"

namespace scube {
namespace server {

/// \brief Lock-free serving counters. One instance per ScubedServer.
struct ServerMetrics {
  std::atomic<uint64_t> connections{0};       ///< accepted TCP connections
  std::atomic<uint64_t> connections_shed{0};  ///< refused: conn queue full
  std::atomic<uint64_t> http_requests{0};     ///< HTTP requests handled
  std::atomic<uint64_t> http_errors{0};       ///< 4xx/5xx responses
  std::atomic<uint64_t> line_requests{0};     ///< line-protocol queries

  void Inc(std::atomic<uint64_t>& counter) {
    counter.fetch_add(1, std::memory_order_relaxed);
  }
};

/// Renders the full exposition: server counters plus the service's
/// admission/deadline stats, queue depth and cache hit rate.
std::string RenderPrometheus(const ServerMetrics& metrics,
                             const query::QueryService& service);

}  // namespace server
}  // namespace scube

#endif  // SCUBE_SERVER_METRICS_H_
