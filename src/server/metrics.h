// ServerMetrics: scubed's monotonic counters, rendered for GET /metrics
// in Prometheus text exposition format. Connection/request counters live
// here; query admission/deadline counters plus backend-specific series
// (queue depth and cache counters for a QueryService, per-shard fanout
// series for a scatter router) come from the QueryBackend at render time.
//
// Thread-safety: counters are relaxed atomics (monotonic increments read
// at render time; exactness across a concurrent render is not promised),
// so there is no mutex here to annotate — audited as lock-free during the
// thread-safety annotation pass (common/sync.h).

#ifndef SCUBE_SERVER_METRICS_H_
#define SCUBE_SERVER_METRICS_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "common/trace.h"
#include "net/http.h"
#include "query/ast.h"
#include "query/backend.h"

namespace scube {
namespace server {

/// Request routes with their own latency series
/// (scubed_request_latency_seconds{route="..."}).
enum class Route {
  kQuery = 0,    ///< POST /query (buffered)
  kStream,       ///< POST /query?stream=1 (chunked)
  kCubes,        ///< GET /cubes
  kHealthz,      ///< GET /healthz
  kMetrics,      ///< GET /metrics
  kLine,         ///< line-protocol query lines
  kOther,        ///< unmatched paths (404s and friends)
};
constexpr size_t kNumRoutes = 7;

/// The route's Prometheus label value ("query", "stream", …).
const char* RouteLabel(Route route);

/// Classifies a parsed request into a Route (the same decision the
/// router's dispatch makes, shared so latency attribution can't drift).
Route ClassifyRoute(const net::HttpRequest& request);

/// \brief Lock-free serving counters. One instance per ScubedServer.
struct ServerMetrics {
  std::atomic<uint64_t> connections{0};       ///< accepted TCP connections
  std::atomic<uint64_t> connections_shed{0};  ///< refused: conn queue full
  std::atomic<uint64_t> connections_closed{0};  ///< closed (any reason)
  std::atomic<uint64_t> http_requests{0};     ///< HTTP requests handled
  std::atomic<uint64_t> http_errors{0};       ///< 4xx/5xx responses
  std::atomic<uint64_t> line_requests{0};     ///< line-protocol queries

  /// Currently open connections (accepted minus closed/shed) — THE gauge
  /// the reactor front-end exists to move: it may sit at 10k+ while the
  /// worker thread count stays fixed.
  std::atomic<int64_t> open_connections{0};

  /// Connections dropped by the keep-alive idle timeout (no request
  /// bytes for the idle window).
  std::atomic<uint64_t> idle_timeout_closes{0};

  /// Connections dropped by the header-read deadline: a peer that began
  /// a request but did not complete it within the total read cap
  /// (slow-loris defence, both front-ends).
  std::atomic<uint64_t> header_deadline_closes{0};

  /// Reactor event-loop iterations (epoll_wait returns). Zero under the
  /// threaded front-end.
  std::atomic<uint64_t> reactor_loops{0};

  // Streaming read path (POST /query?stream=1).
  std::atomic<uint64_t> streamed_requests{0};  ///< chunked responses begun
  std::atomic<uint64_t> streamed_rows{0};      ///< rows streamed to clients
  std::atomic<uint64_t> streamed_bytes{0};     ///< wire bytes incl. framing
  std::atomic<uint64_t> streamed_errors{0};    ///< failed after the 200 head

  /// High-water marks of per-response buffering, kept separate so the
  /// streamed bound stays visible: the streamed gauge is the chunk buffer
  /// (~flush threshold, flat in the result size), the buffered gauge is
  /// the largest whole serialised body — the number the streaming path
  /// exists to avoid.
  std::atomic<uint64_t> streamed_buffer_peak{0};
  std::atomic<uint64_t> buffered_body_peak{0};

  /// Requests whose total latency crossed the slow-query threshold (only
  /// counted when the slow-query log is enabled).
  std::atomic<uint64_t> slow_queries{0};

  /// End-to-end request latency per route, handler entry to last byte
  /// written (scubed_request_latency_seconds{route=...}).
  trace::LatencyHistogram route_latency[kNumRoutes];

  /// Execution latency per SCubeQL verb, cache hits included
  /// (scubed_query_latency_seconds{verb=...}).
  trace::LatencyHistogram verb_latency[query::kNumVerbs];

  /// Streaming time-to-first-byte: request entry until the first response
  /// byte is handed to the socket (scubed_stream_ttfb_seconds).
  trace::LatencyHistogram stream_ttfb;

  void ObserveRoute(Route route, double ms) {
    route_latency[static_cast<size_t>(route)].Observe(ms);
  }

  /// Records one verb execution; `verb` is QueryResponse::verb (any case;
  /// unknown/empty strings — parse errors — are dropped).
  void ObserveVerb(const std::string& verb, double ms);

  void Inc(std::atomic<uint64_t>& counter) {
    counter.fetch_add(1, std::memory_order_relaxed);
  }

  void Add(std::atomic<uint64_t>& counter, uint64_t n) {
    counter.fetch_add(n, std::memory_order_relaxed);
  }

  /// Pairs every accept with Inc(connections); ConnClosed undoes it.
  void ConnOpened() {
    Inc(connections);
    open_connections.fetch_add(1, std::memory_order_relaxed);
  }

  void ConnClosed() {
    Inc(connections_closed);
    open_connections.fetch_sub(1, std::memory_order_relaxed);
  }

  /// Raises `gauge` to at least `value` (monotonic high-water mark).
  void RaiseMax(std::atomic<uint64_t>& gauge, uint64_t value) {
    uint64_t seen = gauge.load(std::memory_order_relaxed);
    while (seen < value &&
           !gauge.compare_exchange_weak(seen, value,
                                        std::memory_order_relaxed)) {
    }
  }
};

/// Renders the full exposition: server counters plus the backend's
/// admission/deadline stats and its backend-specific series
/// (QueryBackend::AppendBackendMetrics).
std::string RenderPrometheus(const ServerMetrics& metrics,
                             const query::QueryBackend& backend);

}  // namespace server
}  // namespace scube

#endif  // SCUBE_SERVER_METRICS_H_
