// Reactor front-end: one epoll event loop driving every connection over
// non-blocking sockets, so the open-connection ceiling is the fd limit —
// not the thread count. Selected with --frontend=reactor; the classic
// thread-per-connection path stays available (and byte-identical) under
// --frontend=threads.
//
// Division of labour:
//
//   loop thread      accept, read, incremental parse (HttpRequestParser),
//                    non-blocking writes, keep-alive/header timers —
//                    never blocks on a socket or a query
//   dispatch pool    runs the router handlers (router.h) for parsed
//                    requests; query execution stays in the QueryBackend's
//                    own workers. Streamed responses write through a
//                    per-connection outbox: the worker blocks on the
//                    outbox watermark (backpressure), the loop drains it
//                    to the socket and yields on EAGAIN
//
// Per-connection state machine:
//
//   READ_HEAD → READ_BODY → DISPATCH → WRITE → (keep-alive reset) → …
//
// with a min-heap of lazy-deleted timers enforcing the header-read
// deadline (first request byte → parse complete) and the keep-alive idle
// timeout between requests. Stop() is graceful: the listener closes, idle
// connections drop immediately, in-flight responses drain (bounded by
// drain_timeout_seconds), then the loop and pool join.

#ifndef SCUBE_SERVER_REACTOR_H_
#define SCUBE_SERVER_REACTOR_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <queue>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/sync.h"
#include "net/http.h"
#include "net/socket.h"
#include "server/metrics.h"
#include "server/router.h"

namespace scube {
namespace server {

/// \brief Reactor tuning (derived from ServerOptions by ScubedServer).
struct ReactorOptions {
  /// Handler threads running router dispatch (not query execution —
  /// that happens in the QueryBackend's own worker pool).
  size_t num_dispatch_threads = 8;

  /// Keep-alive idle timeout: seconds without request bytes before the
  /// connection closes.
  double idle_timeout_seconds = 60.0;

  /// Header-read deadline: first byte of a request to parse complete.
  /// The slow-loris bound — a byte-at-a-time peer cannot evade it.
  double header_read_seconds = 10.0;

  /// Open-connection cap; accepts beyond it shed with an immediate 503.
  size_t max_connections = 60000;

  /// Outbox watermark: a streaming handler blocks once this many
  /// unwritten response bytes queue up, keeping per-connection memory
  /// O(watermark) for arbitrarily large streamed answers.
  size_t max_outbox_bytes = 256 * 1024;

  /// Stop(): seconds granted to in-flight responses before force-close.
  double drain_timeout_seconds = 5.0;
};

/// \brief The epoll front-end. Construct, Start(listener), Stop().
class Reactor {
 public:
  Reactor(RouterContext router, ServerMetrics* metrics,
          ReactorOptions options);
  ~Reactor();

  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  /// Takes ownership of a bound listener and spawns the loop + dispatch
  /// threads. IoError when epoll/eventfd setup fails.
  Status Start(net::ListenSocket listener);

  /// Graceful shutdown (see file comment). Idempotent.
  void Stop();

  /// The bound port (valid after Start, also after Stop).
  uint16_t port() const { return port_; }

 private:
  struct Conn;
  struct TimerEntry {
    std::chrono::steady_clock::time_point when;
    uint64_t id = 0;
    uint64_t gen = 0;
  };
  struct TimerLater {
    bool operator()(const TimerEntry& a, const TimerEntry& b) const {
      return a.when > b.when;
    }
  };
  enum class FlushResult { kDrained, kBlocked, kFailed };

  // Loop thread.
  void LoopThread();
  int PollTimeoutMs();
  void AcceptReady();
  void OnConnEvent(const std::shared_ptr<Conn>& conn, uint32_t events);
  void OnReadable(const std::shared_ptr<Conn>& conn);
  void ParseAvailable(const std::shared_ptr<Conn>& conn);
  void DispatchHttp(const std::shared_ptr<Conn>& conn);
  void DispatchLine(const std::shared_ptr<Conn>& conn, std::string line);
  void BeginDispatch(const std::shared_ptr<Conn>& conn);
  void RespondParseError(const std::shared_ptr<Conn>& conn);
  FlushResult FlushOutbox(const std::shared_ptr<Conn>& conn);
  void HandleWrite(const std::shared_ptr<Conn>& conn);
  void CompleteResponse(const std::shared_ptr<Conn>& conn, bool close);
  void CloseConn(const std::shared_ptr<Conn>& conn);
  void SetInterest(const std::shared_ptr<Conn>& conn, bool read, bool write);
  void ArmTimer(const std::shared_ptr<Conn>& conn, double seconds);
  void DisarmTimer(const std::shared_ptr<Conn>& conn);
  void ProcessTimers();
  void ProcessReady();
  void BeginStopInLoop();

  // Dispatch pool.
  void WorkerLoop();
  void RunHttpTask(const std::shared_ptr<Conn>& conn);
  void RunLineTask(const std::shared_ptr<Conn>& conn);
  void FinishResponse(const std::shared_ptr<Conn>& conn, bool close);

  /// Worker-side response write: appends to the connection outbox, wakes
  /// the loop, and blocks while the outbox exceeds the watermark (the
  /// worker yields; the loop never blocks). IoError once the connection
  /// closed under the writer.
  Status EnqueueOutput(const std::shared_ptr<Conn>& conn,
                       std::string_view data);

  /// Queues a loop wake-up for `id` (eventfd).
  void NotifyReady(uint64_t id);

  RouterContext router_;
  ServerMetrics* metrics_;
  ReactorOptions options_;

  net::ListenSocket listener_;
  uint16_t port_ = 0;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;

  std::atomic<bool> stopping_{false};
  bool started_ = false;
  bool stop_begun_ = false;  ///< loop-thread: shutdown sequence entered
  std::chrono::steady_clock::time_point stop_deadline_{};

  uint64_t next_conn_id_ = 2;  ///< 0 = listener, 1 = wake eventfd
  std::unordered_map<uint64_t, std::shared_ptr<Conn>> conns_;
  std::priority_queue<TimerEntry, std::vector<TimerEntry>, TimerLater>
      timers_;

  sync::Mutex ready_mu_;
  std::vector<uint64_t> ready_ GUARDED_BY(ready_mu_);

  sync::Mutex task_mu_;
  sync::CondVar task_cv_;
  std::deque<std::shared_ptr<Conn>> tasks_ GUARDED_BY(task_mu_);
  bool workers_stop_ GUARDED_BY(task_mu_) = false;

  std::thread loop_;
  std::vector<std::thread> workers_;
};

}  // namespace server
}  // namespace scube

#endif  // SCUBE_SERVER_REACTOR_H_
