// ScubedServer: the network front-end over a QueryBackend (a local
// QueryService, or a cluster::ScatterExecutor in router mode).
//
// One acceptor thread pushes connections onto a bounded queue consumed by
// a fixed pool of connection threads (thread count and queue bound are the
// connection-level admission control; query-level admission lives in
// QueryService). Each connection thread sniffs the first line to pick a
// dialect:
//
//   HTTP/1.1       keep-alive request loop (router.h routes)
//   line protocol  one SCubeQL statement per line in, one JSON object
//                  per line out — for scripted clients and netcat
//
// Stop() is graceful: the listener closes, idle keep-alive connections
// drop at their next poll tick, in-flight requests finish, and the
// underlying QueryService drains (it is not owned and stays usable).

#ifndef SCUBE_SERVER_SERVER_H_
#define SCUBE_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/sync.h"
#include "net/http.h"
#include "net/socket.h"
#include "query/cube_store.h"
#include "query/service.h"
#include "server/metrics.h"
#include "server/router.h"
#include "server/slow_query_log.h"

namespace scube {
namespace server {

class Reactor;

/// Which connection front-end drives the sockets (--frontend flag).
enum class Frontend {
  kThreads,  ///< acceptor + bounded queue + thread-per-connection pool
  kReactor,  ///< one epoll event loop + dispatch pool (reactor.h)
};

/// \brief Connection-level tuning.
struct ServerOptions {
  /// TCP port; 0 = kernel-assigned (read back via port()).
  uint16_t port = 8080;

  /// Bind 127.0.0.1 only (benches, tests, local demos).
  bool loopback_only = false;

  /// Connection handler threads. Each handles one connection at a time;
  /// with keep-alive this is the concurrent-connection capacity.
  size_t num_connection_threads = 8;

  /// Accepted connections waiting for a handler beyond which new ones are
  /// shed with an immediate 503 + close.
  size_t max_queued_connections = 64;

  /// Seconds a connection may sit idle between requests before the
  /// handler polls for shutdown (and, when stopping, closes it). Also the
  /// bound on Stop() latency for idle keep-alive connections.
  double idle_poll_seconds = 0.5;

  /// Idle poll ticks before an inactive connection is dropped
  /// (idle timeout = idle_poll_seconds * max_idle_polls).
  size_t max_idle_polls = 120;

  /// Receive-timeout bound while *inside* one request (headers/body after
  /// the request line). Larger than the idle poll so a brief network
  /// stall mid-request is not fatal; small enough that a stalled peer
  /// cannot pin a handler thread indefinitely.
  double request_read_seconds = 10.0;

  /// Slow-query threshold in milliseconds (--slow-query-ms); requests
  /// slower than this emit one JSON line with their span tree. 0 = off.
  double slow_query_ms = 0;

  /// Where slow-query lines go (not owned; tests pass a tmpfile()).
  /// Null falls back to stderr.
  std::FILE* slow_query_sink = nullptr;

  /// Trace every request even without ?debug=trace (--trace flag).
  bool trace_all = false;

  /// Connection front-end. Both serve every route byte-identically; the
  /// reactor holds 10k+ mostly-idle keep-alive connections on a fixed
  /// thread count where the threaded path needs a thread per connection.
  Frontend frontend = Frontend::kThreads;

  /// Keep-alive idle timeout in seconds (--idle-timeout-ms). 0 derives
  /// it as idle_poll_seconds * max_idle_polls; both front-ends honour
  /// the effective value.
  double idle_timeout_seconds = 0;

  /// Reactor only: open-connection cap beyond which accepts shed with an
  /// immediate 503 (the threaded path's cap is its thread pool + queue).
  size_t max_connections = 60000;

  /// Reactor only: seconds Stop() grants in-flight responses to drain
  /// before force-closing.
  double drain_timeout_seconds = 5.0;
};

/// \brief The scubed serving front-end. Start() spawns threads; Stop()
/// (or the destructor) shuts down gracefully.
class ScubedServer {
 public:
  ScubedServer(query::QueryBackend* backend, ServerOptions options = {});

  /// Legacy signature; `store` is unused — /cubes and /healthz go through
  /// QueryBackend::ListCubes now.
  ScubedServer(query::QueryService* service, query::CubeStore* store,
               ServerOptions options = {});
  ~ScubedServer();

  ScubedServer(const ScubedServer&) = delete;
  ScubedServer& operator=(const ScubedServer&) = delete;

  /// Binds and starts accepting. IoError when the port is taken.
  Status Start();

  /// Graceful shutdown: stop accepting, finish in-flight requests, join
  /// all threads. Idempotent.
  void Stop();

  /// The bound port (valid after Start()).
  uint16_t port() const;

  bool running() const { return running_.load(std::memory_order_acquire); }

  const ServerMetrics& metrics() const { return metrics_; }

 private:
  void AcceptLoop();
  void ConnectionLoop();
  void ServeConnection(net::Socket socket);
  void ServeHttp(net::Socket* socket, net::BufferedReader* reader,
                 std::string first_line);
  void ServeLineProtocol(net::Socket* socket, net::BufferedReader* reader,
                         std::string first_line);

  /// ReadLine that tolerates idle-poll timeouts while running; returns
  /// nullopt when the connection should close (EOF, error, shutdown,
  /// or idle timeout).
  std::optional<std::string> NextLine(net::BufferedReader* reader);

  /// The keep-alive idle timeout both front-ends enforce (explicit
  /// idle_timeout_seconds, or derived from the idle-poll tick budget).
  double EffectiveIdleTimeout() const;

  query::QueryBackend* backend_;
  ServerOptions options_;
  ServerMetrics metrics_;
  SlowQueryLog slow_log_;  ///< initialised from options_: declare after it
  RouterContext router_;

  net::ListenSocket listener_;
  std::atomic<bool> running_{false};
  bool started_ = false;

  /// Non-null iff frontend == kReactor (owns the event loop + dispatch
  /// pool; kept after Stop() so port() stays readable).
  std::unique_ptr<Reactor> reactor_;

  sync::Mutex conn_mu_;
  sync::CondVar conn_cv_;
  std::deque<net::Socket> pending_ GUARDED_BY(conn_mu_);
  std::thread acceptor_;
  std::vector<std::thread> handlers_;
};

}  // namespace server
}  // namespace scube

#endif  // SCUBE_SERVER_SERVER_H_
