#include "server/server.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

#include "common/string_util.h"
#include "common/timer.h"
#include "server/reactor.h"

namespace scube {
namespace server {

ScubedServer::ScubedServer(query::QueryBackend* backend,
                           ServerOptions options)
    : backend_(backend),
      options_(std::move(options)),
      slow_log_(options_.slow_query_ms, options_.slow_query_sink) {
  options_.num_connection_threads =
      std::max<size_t>(1, options_.num_connection_threads);
  router_ = RouterContext{backend_, &metrics_, &slow_log_,
                          options_.trace_all};
}

ScubedServer::ScubedServer(query::QueryService* service,
                           query::CubeStore* store, ServerOptions options)
    : ScubedServer(static_cast<query::QueryBackend*>(service),
                   std::move(options)) {
  (void)store;  // /cubes answers via QueryBackend::ListCubes now
}

ScubedServer::~ScubedServer() { Stop(); }

uint16_t ScubedServer::port() const {
  return reactor_ ? reactor_->port() : listener_.port();
}

double ScubedServer::EffectiveIdleTimeout() const {
  if (options_.idle_timeout_seconds > 0) return options_.idle_timeout_seconds;
  return options_.idle_poll_seconds *
         static_cast<double>(options_.max_idle_polls);
}

Status ScubedServer::Start() {
  if (started_) return Status::FailedPrecondition("server already started");
  auto listener = net::ListenSocket::Bind(options_.port,
                                          options_.loopback_only);
  if (!listener.ok()) return listener.status();
  listener_ = std::move(listener).value();

  if (options_.frontend == Frontend::kReactor) {
    ReactorOptions ropts;
    ropts.num_dispatch_threads = options_.num_connection_threads;
    ropts.idle_timeout_seconds = EffectiveIdleTimeout();
    ropts.header_read_seconds = options_.request_read_seconds;
    ropts.max_connections = options_.max_connections;
    ropts.drain_timeout_seconds = options_.drain_timeout_seconds;
    reactor_ = std::make_unique<Reactor>(router_, &metrics_, ropts);
    Status s = reactor_->Start(std::move(listener_));
    if (!s.ok()) {
      reactor_.reset();
      return s;
    }
    started_ = true;
    running_.store(true, std::memory_order_release);
    return Status::OK();
  }

  started_ = true;
  running_.store(true, std::memory_order_release);
  acceptor_ = std::thread([this] { AcceptLoop(); });
  handlers_.reserve(options_.num_connection_threads);
  for (size_t i = 0; i < options_.num_connection_threads; ++i) {
    handlers_.emplace_back([this] { ConnectionLoop(); });
  }
  return Status::OK();
}

void ScubedServer::Stop() {
  if (!started_) return;
  started_ = false;
  running_.store(false, std::memory_order_release);
  if (reactor_) {
    reactor_->Stop();
    return;
  }
  // Wake the blocked accept() without closing the fd: the fd number must
  // not be reused by a concurrent connection while accept() still holds
  // it. The actual close happens after the acceptor is joined.
  listener_.ShutdownAccept();
  {
    // Broadcast under conn_mu_. ConnectionLoop evaluates its wait
    // predicate (!running() || !pending_.empty()) while holding this
    // mutex, but running_ is flipped above WITHOUT it — so a handler
    // that read running()==true could block right after a bare notify
    // and never wake (lost wakeup: Stop() then hangs on handler.join()).
    // Holding the mutex for the broadcast pins every handler on one side
    // of the predicate check: it is either blocked in Wait (gets this
    // notify) or has yet to acquire conn_mu_ (will see running false).
    sync::MutexLock lock(&conn_mu_);
    conn_cv_.SignalAll();
  }
  if (acceptor_.joinable()) acceptor_.join();
  listener_.Close();
  for (std::thread& handler : handlers_) {
    if (handler.joinable()) handler.join();
  }
  handlers_.clear();
  // Connections still queued but never handled just close (RAII).
  sync::MutexLock lock(&conn_mu_);
  for (size_t i = 0; i < pending_.size(); ++i) metrics_.ConnClosed();
  pending_.clear();
}

void ScubedServer::AcceptLoop() {
  while (running()) {
    auto accepted = listener_.Accept();
    if (!accepted.ok()) {
      // Listener closed (shutdown) or transient error; only exit on
      // shutdown. Back off briefly so a persistent error (EMFILE under
      // an fd flood) does not busy-spin a core at the worst moment.
      if (!running()) return;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      continue;
    }
    metrics_.ConnOpened();
    net::Socket socket = std::move(accepted).value();
    bool shed = false;
    {
      sync::MutexLock lock(&conn_mu_);
      if (pending_.size() >= options_.max_queued_connections) {
        shed = true;
      } else {
        pending_.push_back(std::move(socket));
      }
    }
    if (shed) {
      // Connection-level load shedding: answer 503 without parsing.
      metrics_.Inc(metrics_.connections_shed);
      net::HttpResponse resp(503,
                             "{\"error\":\"connection queue full\"}\n");
      resp.SetHeader("Retry-After", "1");
      socket.WriteAll(net::SerializeResponse(resp, /*keep_alive=*/false));
      metrics_.ConnClosed();
      continue;  // socket closes via RAII
    }
    conn_cv_.Signal();
  }
}

void ScubedServer::ConnectionLoop() {
  while (true) {
    net::Socket socket;
    {
      sync::MutexLock lock(&conn_mu_);
      while (running() && pending_.empty()) conn_cv_.Wait(&conn_mu_);
      if (pending_.empty()) return;  // stopping and drained
      socket = std::move(pending_.front());
      pending_.pop_front();
    }
    ServeConnection(std::move(socket));
    metrics_.ConnClosed();
  }
}

std::optional<std::string> ScubedServer::NextLine(
    net::BufferedReader* reader) {
  const double idle_timeout = EffectiveIdleTimeout();
  // Total wall cap on getting one line. The per-read SO_RCVTIMEO alone is
  // defeatable by a peer trickling a byte per tick (each byte resets the
  // timer); this deadline is not.
  reader->set_deadline(std::chrono::steady_clock::now() +
                       std::chrono::duration_cast<
                           std::chrono::steady_clock::duration>(
                           std::chrono::duration<double>(idle_timeout)));
  const size_t max_polls = std::max<size_t>(
      1, static_cast<size_t>(std::ceil(
             idle_timeout / std::max(options_.idle_poll_seconds, 1e-3))));
  for (size_t idle = 0; idle < max_polls; ++idle) {
    auto line = reader->ReadLine();
    if (line.ok()) {
      reader->clear_deadline();
      return std::move(line).value();
    }
    // A receive timeout is the idle poll tick: keep waiting while the
    // server runs, close once it stops (this bounds Stop() latency).
    if (line.status().code() != StatusCode::kDeadlineExceeded ||
        !running()) {
      reader->clear_deadline();
      return std::nullopt;
    }
  }
  reader->clear_deadline();
  metrics_.Inc(metrics_.idle_timeout_closes);
  return std::nullopt;  // idle timeout
}

void ScubedServer::ServeConnection(net::Socket socket) {
  socket.SetNoDelay();
  socket.SetRecvTimeout(options_.idle_poll_seconds);
  net::BufferedReader reader(&socket);

  auto first = NextLine(&reader);
  if (!first) return;
  if (net::SniffsAsHttp(*first)) {
    ServeHttp(&socket, &reader, std::move(*first));
  } else {
    ServeLineProtocol(&socket, &reader, std::move(*first));
  }
}

void ScubedServer::ServeHttp(net::Socket* socket,
                             net::BufferedReader* reader,
                             std::string first_line) {
  std::string request_line = std::move(first_line);
  while (true) {
    // Mid-request reads (headers, body) get the longer request-read
    // bound; the short idle-poll timeout is only for the gap *between*
    // requests, where it doubles as the shutdown poll tick. The reader
    // deadline caps the request's TOTAL read time — the per-read timeout
    // alone is defeatable by a slow loris dripping a byte per tick.
    const auto read_start = std::chrono::steady_clock::now();
    socket->SetRecvTimeout(options_.request_read_seconds);
    reader->set_deadline(
        read_start +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(options_.request_read_seconds)));
    auto parsed = net::ReadHttpRequest(reader, request_line);
    reader->clear_deadline();
    socket->SetRecvTimeout(options_.idle_poll_seconds);
    net::HttpResponse response;
    bool keep_alive = false;
    bool head = false;
    bool streamed = parsed.ok() && IsStreamingQuery(*parsed);
    if (!parsed.ok()) {
      if (parsed.status().code() == StatusCode::kDeadlineExceeded) {
        metrics_.Inc(metrics_.header_deadline_closes);
        response = net::HttpResponse(
            408, "{\"error\":\"request read timed out\"}\n");
      } else {
        response = net::HttpResponse(
            400,
            "{\"error\":" + JsonQuote(parsed.status().message()) + "}\n");
      }
    } else {
      keep_alive = parsed->keep_alive && running();
      head = parsed->method == "HEAD";
      // Stamp the read window so handlers can record a retroactive
      // conn.read span (request line to parse complete).
      parsed->read_start = read_start;
      parsed->read_end = std::chrono::steady_clock::now();
    }
    metrics_.Inc(metrics_.http_requests);
    // Route latency: handler entry (request fully read) to last byte
    // written. Unparseable requests land under route="other".
    WallTimer route_timer;
    const Route route = parsed.ok() ? ClassifyRoute(*parsed) : Route::kOther;
    if (streamed) {
      // Streamed answers write incrementally — chunked transfer encoding
      // straight onto the socket, no response buffer. The handler owns
      // error rendering and metrics; a false return means the transport
      // died mid-stream and the connection must close.
      bool alive = HandleQueryStream(
          router_, *parsed, keep_alive,
          [socket](std::string_view data) { return socket->WriteAll(data); });
      metrics_.ObserveRoute(route, route_timer.Millis());
      if (!alive) return;
    } else {
      if (parsed.ok()) response = HandleHttpRequest(router_, *parsed);
      if (response.status >= 400) metrics_.Inc(metrics_.http_errors);
      // Buffered responses hold the whole serialised body — the number
      // the streamed path keeps flat (compare the two peaks in /metrics).
      metrics_.RaiseMax(metrics_.buffered_body_peak, response.body.size());
      std::string wire = net::SerializeResponse(response, keep_alive);
      // HEAD: same headers as GET (including the true Content-Length),
      // no body bytes.
      if (head) wire.resize(wire.size() - response.body.size());
      const bool wrote = socket->WriteAll(wire).ok();
      metrics_.ObserveRoute(route, route_timer.Millis());
      if (!wrote) return;
    }
    if (!keep_alive) return;

    auto next = NextLine(reader);
    if (!next) return;
    request_line = std::move(*next);
    if (request_line.empty()) return;
  }
}

void ScubedServer::ServeLineProtocol(net::Socket* socket,
                                     net::BufferedReader* reader,
                                     std::string first_line) {
  std::string line = std::move(first_line);
  while (true) {
    std::string trimmed(Trim(line));
    if (trimmed == "QUIT" || trimmed == ".quit") return;
    if (!trimmed.empty()) {
      metrics_.Inc(metrics_.line_requests);
      WallTimer route_timer;
      std::string answer = HandleProtocolLine(router_, trimmed);
      if (!answer.empty()) {
        answer += '\n';
        const bool wrote = socket->WriteAll(answer).ok();
        metrics_.ObserveRoute(Route::kLine, route_timer.Millis());
        if (!wrote) return;
      } else {
        metrics_.ObserveRoute(Route::kLine, route_timer.Millis());
      }
    }
    auto next = NextLine(reader);
    if (!next) return;
    line = std::move(*next);
  }
}

}  // namespace server
}  // namespace scube
