#include "server/server.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/string_util.h"
#include "common/timer.h"

namespace scube {
namespace server {

ScubedServer::ScubedServer(query::QueryBackend* backend,
                           ServerOptions options)
    : backend_(backend),
      options_(std::move(options)),
      slow_log_(options_.slow_query_ms, options_.slow_query_sink) {
  options_.num_connection_threads =
      std::max<size_t>(1, options_.num_connection_threads);
  router_ = RouterContext{backend_, &metrics_, &slow_log_,
                          options_.trace_all};
}

ScubedServer::ScubedServer(query::QueryService* service,
                           query::CubeStore* store, ServerOptions options)
    : ScubedServer(static_cast<query::QueryBackend*>(service),
                   std::move(options)) {
  (void)store;  // /cubes answers via QueryBackend::ListCubes now
}

ScubedServer::~ScubedServer() { Stop(); }

Status ScubedServer::Start() {
  if (started_) return Status::FailedPrecondition("server already started");
  auto listener = net::ListenSocket::Bind(options_.port,
                                          options_.loopback_only);
  if (!listener.ok()) return listener.status();
  listener_ = std::move(listener).value();

  started_ = true;
  running_.store(true, std::memory_order_release);
  acceptor_ = std::thread([this] { AcceptLoop(); });
  handlers_.reserve(options_.num_connection_threads);
  for (size_t i = 0; i < options_.num_connection_threads; ++i) {
    handlers_.emplace_back([this] { ConnectionLoop(); });
  }
  return Status::OK();
}

void ScubedServer::Stop() {
  if (!started_) return;
  started_ = false;
  running_.store(false, std::memory_order_release);
  // Wake the blocked accept() without closing the fd: the fd number must
  // not be reused by a concurrent connection while accept() still holds
  // it. The actual close happens after the acceptor is joined.
  listener_.ShutdownAccept();
  conn_cv_.notify_all();
  if (acceptor_.joinable()) acceptor_.join();
  listener_.Close();
  for (std::thread& handler : handlers_) {
    if (handler.joinable()) handler.join();
  }
  handlers_.clear();
  // Connections still queued but never handled just close (RAII).
  std::lock_guard<std::mutex> lock(conn_mu_);
  pending_.clear();
}

void ScubedServer::AcceptLoop() {
  while (running()) {
    auto accepted = listener_.Accept();
    if (!accepted.ok()) {
      // Listener closed (shutdown) or transient error; only exit on
      // shutdown. Back off briefly so a persistent error (EMFILE under
      // an fd flood) does not busy-spin a core at the worst moment.
      if (!running()) return;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      continue;
    }
    metrics_.Inc(metrics_.connections);
    net::Socket socket = std::move(accepted).value();
    bool shed = false;
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      if (pending_.size() >= options_.max_queued_connections) {
        shed = true;
      } else {
        pending_.push_back(std::move(socket));
      }
    }
    if (shed) {
      // Connection-level load shedding: answer 503 without parsing.
      metrics_.Inc(metrics_.connections_shed);
      net::HttpResponse resp(503,
                             "{\"error\":\"connection queue full\"}\n");
      resp.SetHeader("Retry-After", "1");
      socket.WriteAll(net::SerializeResponse(resp, /*keep_alive=*/false));
      continue;  // socket closes via RAII
    }
    conn_cv_.notify_one();
  }
}

void ScubedServer::ConnectionLoop() {
  while (true) {
    net::Socket socket;
    {
      std::unique_lock<std::mutex> lock(conn_mu_);
      conn_cv_.wait(lock, [this] {
        return !running() || !pending_.empty();
      });
      if (pending_.empty()) return;  // stopping and drained
      socket = std::move(pending_.front());
      pending_.pop_front();
    }
    ServeConnection(std::move(socket));
  }
}

std::optional<std::string> ScubedServer::NextLine(
    net::BufferedReader* reader) {
  for (size_t idle = 0; idle < options_.max_idle_polls; ++idle) {
    auto line = reader->ReadLine();
    if (line.ok()) return std::move(line).value();
    // A receive timeout is the idle poll tick: keep waiting while the
    // server runs, close once it stops (this bounds Stop() latency).
    if (line.status().code() != StatusCode::kDeadlineExceeded ||
        !running()) {
      return std::nullopt;
    }
  }
  return std::nullopt;  // idle timeout
}

void ScubedServer::ServeConnection(net::Socket socket) {
  socket.SetNoDelay();
  socket.SetRecvTimeout(options_.idle_poll_seconds);
  net::BufferedReader reader(&socket);

  auto first = NextLine(&reader);
  if (!first) return;
  if (net::SniffsAsHttp(*first)) {
    ServeHttp(&socket, &reader, std::move(*first));
  } else {
    ServeLineProtocol(&socket, &reader, std::move(*first));
  }
}

void ScubedServer::ServeHttp(net::Socket* socket,
                             net::BufferedReader* reader,
                             std::string first_line) {
  std::string request_line = std::move(first_line);
  while (true) {
    // Mid-request reads (headers, body) get the longer request-read
    // bound; the short idle-poll timeout is only for the gap *between*
    // requests, where it doubles as the shutdown poll tick.
    socket->SetRecvTimeout(options_.request_read_seconds);
    auto parsed = net::ReadHttpRequest(reader, request_line);
    socket->SetRecvTimeout(options_.idle_poll_seconds);
    net::HttpResponse response;
    bool keep_alive = false;
    bool head = false;
    bool streamed = parsed.ok() && IsStreamingQuery(*parsed);
    if (!parsed.ok()) {
      response = net::HttpResponse(
          400, "{\"error\":" + JsonQuote(parsed.status().message()) + "}\n");
    } else {
      keep_alive = parsed->keep_alive && running();
      head = parsed->method == "HEAD";
    }
    metrics_.Inc(metrics_.http_requests);
    // Route latency: handler entry (request fully read) to last byte
    // written. Unparseable requests land under route="other".
    WallTimer route_timer;
    const Route route = parsed.ok() ? ClassifyRoute(*parsed) : Route::kOther;
    if (streamed) {
      // Streamed answers write incrementally — chunked transfer encoding
      // straight onto the socket, no response buffer. The handler owns
      // error rendering and metrics; a false return means the transport
      // died mid-stream and the connection must close.
      bool alive = HandleQueryStream(
          router_, *parsed, keep_alive,
          [socket](std::string_view data) { return socket->WriteAll(data); });
      metrics_.ObserveRoute(route, route_timer.Millis());
      if (!alive) return;
    } else {
      if (parsed.ok()) response = HandleHttpRequest(router_, *parsed);
      if (response.status >= 400) metrics_.Inc(metrics_.http_errors);
      // Buffered responses hold the whole serialised body — the number
      // the streamed path keeps flat (compare the two peaks in /metrics).
      metrics_.RaiseMax(metrics_.buffered_body_peak, response.body.size());
      std::string wire = net::SerializeResponse(response, keep_alive);
      // HEAD: same headers as GET (including the true Content-Length),
      // no body bytes.
      if (head) wire.resize(wire.size() - response.body.size());
      const bool wrote = socket->WriteAll(wire).ok();
      metrics_.ObserveRoute(route, route_timer.Millis());
      if (!wrote) return;
    }
    if (!keep_alive) return;

    auto next = NextLine(reader);
    if (!next) return;
    request_line = std::move(*next);
    if (request_line.empty()) return;
  }
}

void ScubedServer::ServeLineProtocol(net::Socket* socket,
                                     net::BufferedReader* reader,
                                     std::string first_line) {
  std::string line = std::move(first_line);
  while (true) {
    std::string trimmed(Trim(line));
    if (trimmed == "QUIT" || trimmed == ".quit") return;
    if (!trimmed.empty()) {
      metrics_.Inc(metrics_.line_requests);
      WallTimer route_timer;
      std::string answer = HandleProtocolLine(router_, trimmed);
      if (!answer.empty()) {
        answer += '\n';
        const bool wrote = socket->WriteAll(answer).ok();
        metrics_.ObserveRoute(Route::kLine, route_timer.Millis());
        if (!wrote) return;
      } else {
        metrics_.ObserveRoute(Route::kLine, route_timer.Millis());
      }
    }
    auto next = NextLine(reader);
    if (!next) return;
    line = std::move(*next);
  }
}

}  // namespace server
}  // namespace scube
