#include "server/metrics.h"

#include <cstdio>

namespace scube {
namespace server {

namespace {

void Counter(std::string* out, const char* name, uint64_t value,
             const char* help) {
  *out += "# HELP ";
  *out += name;
  *out += ' ';
  *out += help;
  *out += "\n# TYPE ";
  *out += name;
  *out += " counter\n";
  *out += name;
  *out += ' ';
  *out += std::to_string(value);
  *out += '\n';
}

void Gauge(std::string* out, const char* name, double value,
           const char* help) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", value);
  *out += "# HELP ";
  *out += name;
  *out += ' ';
  *out += help;
  *out += "\n# TYPE ";
  *out += name;
  *out += " gauge\n";
  *out += name;
  *out += ' ';
  *out += buf;
  *out += '\n';
}

}  // namespace

std::string RenderPrometheus(const ServerMetrics& metrics,
                             const query::QueryService& service) {
  std::string out;
  out.reserve(2048);

  Counter(&out, "scubed_connections_total",
          metrics.connections.load(std::memory_order_relaxed),
          "TCP connections accepted");
  Counter(&out, "scubed_connections_shed_total",
          metrics.connections_shed.load(std::memory_order_relaxed),
          "Connections refused because the connection queue was full");
  Counter(&out, "scubed_http_requests_total",
          metrics.http_requests.load(std::memory_order_relaxed),
          "HTTP requests handled");
  Counter(&out, "scubed_http_errors_total",
          metrics.http_errors.load(std::memory_order_relaxed),
          "HTTP responses with a 4xx/5xx status");
  Counter(&out, "scubed_line_requests_total",
          metrics.line_requests.load(std::memory_order_relaxed),
          "Line-protocol queries handled");
  Counter(&out, "scubed_streamed_requests_total",
          metrics.streamed_requests.load(std::memory_order_relaxed),
          "Chunked streaming responses begun (POST /query?stream=1)");
  Counter(&out, "scubed_streamed_rows_total",
          metrics.streamed_rows.load(std::memory_order_relaxed),
          "Result rows streamed to clients");
  Counter(&out, "scubed_streamed_bytes_total",
          metrics.streamed_bytes.load(std::memory_order_relaxed),
          "Wire bytes of streamed responses (including chunk framing)");
  Counter(&out, "scubed_streamed_errors_total",
          metrics.streamed_errors.load(std::memory_order_relaxed),
          "Streamed responses that failed after the 200 head left "
          "(error carried in the body tail)");
  Gauge(&out, "scubed_streamed_buffer_peak_bytes",
        static_cast<double>(
            metrics.streamed_buffer_peak.load(std::memory_order_relaxed)),
        "High-water mark of the streamed-response chunk buffer "
        "(bounded by the flush threshold, flat in the result size)");
  Gauge(&out, "scubed_buffered_body_peak_bytes",
        static_cast<double>(
            metrics.buffered_body_peak.load(std::memory_order_relaxed)),
        "High-water mark of buffered response bodies (the whole "
        "serialised answer)");

  query::ServiceStats stats = service.stats();
  Counter(&out, "scubed_queries_accepted_total", stats.accepted,
          "Queries admitted past the admission queue bound");
  Counter(&out, "scubed_queries_rejected_total", stats.rejected,
          "Queries shed by admission control (HTTP 503)");
  Counter(&out, "scubed_queries_deadline_expired_total",
          stats.deadline_expired,
          "Queries answered DeadlineExceeded");
  Counter(&out, "scubed_queries_completed_total", stats.completed,
          "Admitted queries answered (any status)");
  Gauge(&out, "scubed_queue_depth",
        static_cast<double>(service.queue_depth()),
        "Worker tasks currently queued");

  query::ResultCache::Stats cache = service.cache_stats();
  Counter(&out, "scubed_cache_hits_total", cache.hits,
          "Result-cache hits");
  Counter(&out, "scubed_cache_misses_total", cache.misses,
          "Result-cache misses");
  Counter(&out, "scubed_cache_evictions_total", cache.evictions,
          "Result-cache LRU evictions");
  uint64_t lookups = cache.hits + cache.misses;
  Gauge(&out, "scubed_cache_hit_rate",
        lookups == 0 ? 0.0
                     : static_cast<double>(cache.hits) /
                           static_cast<double>(lookups),
        "Result-cache hit fraction since start");
  return out;
}

}  // namespace server
}  // namespace scube
