#include "server/metrics.h"

#include <cstdio>

#include "common/string_util.h"

namespace scube {
namespace server {

namespace {

/// Lower-case per-verb label values, in query::Verb enumerator order.
constexpr const char* kVerbLabels[query::kNumVerbs] = {
    "slice", "dice", "rollup", "drilldown", "topk", "surprises", "reversals"};

void Counter(std::string* out, const char* name, uint64_t value,
             const char* help) {
  *out += "# HELP ";
  *out += name;
  *out += ' ';
  *out += help;
  *out += "\n# TYPE ";
  *out += name;
  *out += " counter\n";
  *out += name;
  *out += ' ';
  *out += std::to_string(value);
  *out += '\n';
}

void Gauge(std::string* out, const char* name, double value,
           const char* help) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", value);
  *out += "# HELP ";
  *out += name;
  *out += ' ';
  *out += help;
  *out += "\n# TYPE ";
  *out += name;
  *out += " gauge\n";
  *out += name;
  *out += ' ';
  *out += buf;
  *out += '\n';
}

/// Formats a seconds value for exposition ("0.005", "2.5", "1e-05").
std::string Seconds(double s) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", s);
  return buf;
}

/// HELP/TYPE comment lines for one histogram family; emitted once per
/// family no matter how many labelled series follow.
void HistogramHeader(std::string* out, const char* name, const char* help) {
  *out += "# HELP ";
  *out += name;
  *out += ' ';
  *out += help;
  *out += "\n# TYPE ";
  *out += name;
  *out += " histogram\n";
}

/// One labelled series of a histogram family: the cumulative _bucket
/// samples (le in seconds, "+Inf" last), then _sum and _count. `label` is
/// a complete `key="value"` pair, or "" for an unlabelled family.
void HistogramSeries(std::string* out, const char* name,
                     const std::string& label,
                     const trace::LatencyHistogram& hist) {
  auto bucket_line = [&](const std::string& le, uint64_t cumulative) {
    *out += name;
    *out += "_bucket{";
    if (!label.empty()) {
      *out += label;
      *out += ',';
    }
    *out += "le=\"";
    *out += le;
    *out += "\"} ";
    *out += std::to_string(cumulative);
    *out += '\n';
  };
  uint64_t cumulative = 0;
  for (size_t i = 0; i < trace::LatencyHistogram::kBucketBoundsMs.size();
       ++i) {
    cumulative += hist.bucket(i);
    bucket_line(Seconds(trace::LatencyHistogram::kBucketBoundsMs[i] / 1000.0),
                cumulative);
  }
  cumulative += hist.bucket(trace::LatencyHistogram::kNumBuckets - 1);
  bucket_line("+Inf", cumulative);

  auto sample = [&](const char* suffix, const std::string& value) {
    *out += name;
    *out += suffix;
    if (!label.empty()) {
      *out += '{';
      *out += label;
      *out += '}';
    }
    *out += ' ';
    *out += value;
    *out += '\n';
  };
  sample("_sum", Seconds(hist.sum_ms() / 1000.0));
  sample("_count", std::to_string(hist.count()));
}

}  // namespace

const char* RouteLabel(Route route) {
  switch (route) {
    case Route::kQuery:
      return "query";
    case Route::kStream:
      return "stream";
    case Route::kCubes:
      return "cubes";
    case Route::kHealthz:
      return "healthz";
    case Route::kMetrics:
      return "metrics";
    case Route::kLine:
      return "line";
    case Route::kOther:
      return "other";
  }
  return "other";
}

Route ClassifyRoute(const net::HttpRequest& request) {
  if (request.path == "/query") {
    return request.Param("stream") == "1" ? Route::kStream : Route::kQuery;
  }
  if (request.path == "/cubes") return Route::kCubes;
  if (request.path == "/healthz") return Route::kHealthz;
  if (request.path == "/metrics") return Route::kMetrics;
  return Route::kOther;
}

void ServerMetrics::ObserveVerb(const std::string& verb, double ms) {
  const std::string lowered = ToLower(verb);
  for (size_t i = 0; i < query::kNumVerbs; ++i) {
    if (lowered == kVerbLabels[i]) {
      verb_latency[i].Observe(ms);
      return;
    }
  }
  // Unknown verb strings (parse errors leave QueryResponse::verb empty)
  // carry no execution worth attributing — dropped by design.
}

std::string RenderPrometheus(const ServerMetrics& metrics,
                             const query::QueryBackend& backend) {
  std::string out;
  out.reserve(2048);

  Counter(&out, "scubed_connections_total",
          metrics.connections.load(std::memory_order_relaxed),
          "TCP connections accepted");
  Counter(&out, "scubed_connections_shed_total",
          metrics.connections_shed.load(std::memory_order_relaxed),
          "Connections refused because the connection queue was full");
  Counter(&out, "scubed_connections_closed_total",
          metrics.connections_closed.load(std::memory_order_relaxed),
          "TCP connections closed (any reason)");
  Gauge(&out, "scubed_open_connections",
        static_cast<double>(
            metrics.open_connections.load(std::memory_order_relaxed)),
        "Currently open connections (accepted minus closed/shed)");
  Counter(&out, "scubed_idle_timeout_closes_total",
          metrics.idle_timeout_closes.load(std::memory_order_relaxed),
          "Connections dropped by the keep-alive idle timeout");
  Counter(&out, "scubed_header_deadline_closes_total",
          metrics.header_deadline_closes.load(std::memory_order_relaxed),
          "Connections dropped by the header-read deadline "
          "(slow-loris defence)");
  Counter(&out, "scubed_reactor_loops_total",
          metrics.reactor_loops.load(std::memory_order_relaxed),
          "Reactor event-loop iterations (0 under --frontend=threads)");
  Counter(&out, "scubed_http_requests_total",
          metrics.http_requests.load(std::memory_order_relaxed),
          "HTTP requests handled");
  Counter(&out, "scubed_http_errors_total",
          metrics.http_errors.load(std::memory_order_relaxed),
          "HTTP responses with a 4xx/5xx status");
  Counter(&out, "scubed_line_requests_total",
          metrics.line_requests.load(std::memory_order_relaxed),
          "Line-protocol queries handled");
  Counter(&out, "scubed_streamed_requests_total",
          metrics.streamed_requests.load(std::memory_order_relaxed),
          "Chunked streaming responses begun (POST /query?stream=1)");
  Counter(&out, "scubed_streamed_rows_total",
          metrics.streamed_rows.load(std::memory_order_relaxed),
          "Result rows streamed to clients");
  Counter(&out, "scubed_streamed_bytes_total",
          metrics.streamed_bytes.load(std::memory_order_relaxed),
          "Wire bytes of streamed responses (including chunk framing)");
  Counter(&out, "scubed_streamed_errors_total",
          metrics.streamed_errors.load(std::memory_order_relaxed),
          "Streamed responses that failed after the 200 head left "
          "(error carried in the body tail)");
  Gauge(&out, "scubed_streamed_buffer_peak_bytes",
        static_cast<double>(
            metrics.streamed_buffer_peak.load(std::memory_order_relaxed)),
        "High-water mark of the streamed-response chunk buffer "
        "(bounded by the flush threshold, flat in the result size)");
  Gauge(&out, "scubed_buffered_body_peak_bytes",
        static_cast<double>(
            metrics.buffered_body_peak.load(std::memory_order_relaxed)),
        "High-water mark of buffered response bodies (the whole "
        "serialised answer)");

  query::ServiceStats stats = backend.stats();
  Counter(&out, "scubed_queries_accepted_total", stats.accepted,
          "Queries admitted past the admission queue bound");
  Counter(&out, "scubed_queries_rejected_total", stats.rejected,
          "Queries shed by admission control (HTTP 503)");
  Counter(&out, "scubed_queries_deadline_expired_total",
          stats.deadline_expired,
          "Queries answered DeadlineExceeded");
  Counter(&out, "scubed_queries_completed_total", stats.completed,
          "Admitted queries answered (any status)");

  // Backend-specific series: queue depth + cache counters (QueryService)
  // or per-shard fanout counters (scatter router) — emitted here so the
  // exposition's series order is stable across backends.
  backend.AppendBackendMetrics(&out);

  Counter(&out, "scubed_slow_queries_total",
          metrics.slow_queries.load(std::memory_order_relaxed),
          "Requests that crossed the slow-query threshold "
          "(--slow-query-ms; 0 when the slow-query log is disabled)");

  // Latency histograms. Every label value is emitted even at zero count,
  // so dashboards and the CI exposition check see the full series set
  // from the first scrape.
  HistogramHeader(&out, "scubed_request_latency_seconds",
                  "End-to-end request latency by route, handler entry to "
                  "last byte written");
  for (size_t i = 0; i < kNumRoutes; ++i) {
    HistogramSeries(&out, "scubed_request_latency_seconds",
                    std::string("route=\"") +
                        RouteLabel(static_cast<Route>(i)) + "\"",
                    metrics.route_latency[i]);
  }

  HistogramHeader(&out, "scubed_query_latency_seconds",
                  "Query execution latency by SCubeQL verb (cache hits "
                  "included)");
  for (size_t i = 0; i < query::kNumVerbs; ++i) {
    HistogramSeries(&out, "scubed_query_latency_seconds",
                    std::string("verb=\"") + kVerbLabels[i] + "\"",
                    metrics.verb_latency[i]);
  }

  HistogramHeader(&out, "scubed_stream_ttfb_seconds",
                  "Streaming time-to-first-byte: request entry until the "
                  "first response byte reaches the socket");
  HistogramSeries(&out, "scubed_stream_ttfb_seconds", "",
                  metrics.stream_ttfb);
  return out;
}

}  // namespace server
}  // namespace scube
