#include "server/router.h"

#include <cstdio>

#include "common/string_util.h"

namespace scube {
namespace server {

namespace {

net::HttpResponse JsonError(int status, const std::string& message) {
  net::HttpResponse resp(status, "{\"error\":" + JsonQuote(message) + "}\n");
  return resp;
}

std::string FormatMillis(double ms) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", ms);
  return buf;
}

/// Splits a /query body into statements: one per line, blank lines and
/// `#` comments skipped.
std::vector<std::string> SplitStatements(const std::string& body) {
  std::vector<std::string> out;
  for (const std::string& raw : Split(body, '\n')) {
    std::string_view line = Trim(raw);
    if (line.empty() || line.front() == '#') continue;
    out.emplace_back(line);
  }
  return out;
}

bool AllUnavailable(const std::vector<query::QueryResponse>& responses) {
  if (responses.empty()) return false;
  for (const auto& r : responses) {
    if (r.status.code() != StatusCode::kUnavailable) return false;
  }
  return true;
}

net::HttpResponse HandleQuery(const RouterContext& ctx,
                              const net::HttpRequest& request) {
  const std::string format = request.Param("format", "json");
  if (format != "json" && format != "csv") {
    return JsonError(400, "unknown format '" + format +
                              "' (expected json or csv)");
  }

  query::QueryContext qctx;
  const std::string deadline = request.Param("deadline_ms");
  if (!deadline.empty()) {
    auto ms = ParseDouble(deadline);
    if (!ms.ok() || *ms <= 0) {
      return JsonError(400, "bad deadline_ms '" + deadline +
                                "' (must be a positive number of "
                                "milliseconds)");
    }
    qctx = query::QueryContext::WithTimeout(*ms);
  }

  std::vector<std::string> statements = SplitStatements(request.body);
  if (statements.empty()) {
    return JsonError(400,
                     "empty query body (one SCubeQL statement per line)");
  }

  std::vector<query::QueryResponse> responses =
      ctx.service->ExecuteBatch(statements, qctx);

  if (AllUnavailable(responses)) {
    net::HttpResponse resp =
        JsonError(503, responses.front().status.message());
    resp.SetHeader("Retry-After", "1");
    return resp;
  }

  if (format == "csv") {
    net::HttpResponse resp;
    resp.content_type = "text/csv";
    for (size_t i = 0; i < responses.size(); ++i) {
      const query::QueryResponse& r = responses[i];
      resp.body += "# query " + std::to_string(i) + ": " + r.text + " [" +
                   StatusCodeToString(r.status.code()) + "]\n";
      if (r.status.ok()) {
        resp.body += query::ToCsv(r.result);
      }
      if (i + 1 < responses.size()) resp.body += '\n';
    }
    return resp;
  }

  std::string body = "{\"count\":" + std::to_string(responses.size()) +
                     ",\"results\":[";
  for (size_t i = 0; i < responses.size(); ++i) {
    if (i > 0) body += ',';
    body += ResponseToJson(responses[i]);
  }
  body += "]}\n";
  return net::HttpResponse(200, std::move(body));
}

net::HttpResponse HandleCubes(const RouterContext& ctx) {
  std::string body = "{\"cubes\":[";
  bool first = true;
  for (const std::string& name : ctx.store->Names()) {
    uint64_t version = 0;
    auto snapshot = ctx.store->Get(name, &version);
    if (snapshot == nullptr) continue;
    if (!first) body += ',';
    first = false;
    body += "{\"name\":" + JsonQuote(name) +
            ",\"version\":" + std::to_string(version) + ",\"retained\":[";
    bool first_version = true;
    for (uint64_t v : ctx.store->RetainedVersions(name)) {
      if (!first_version) body += ',';
      first_version = false;
      body += std::to_string(v);
    }
    body += "],\"cells\":" + std::to_string(snapshot->NumCells()) +
            ",\"defined_cells\":" + std::to_string(snapshot->NumDefinedCells()) +
            "}";
  }
  body += "]}\n";
  return net::HttpResponse(200, std::move(body));
}

net::HttpResponse HandleHealthz(const RouterContext& ctx) {
  return net::HttpResponse(
      200, "{\"status\":\"ok\",\"cubes\":" +
               std::to_string(ctx.store->Names().size()) + "}\n");
}

net::HttpResponse HandleMetrics(const RouterContext& ctx) {
  net::HttpResponse resp(200, RenderPrometheus(*ctx.metrics, *ctx.service));
  resp.content_type = "text/plain; version=0.0.4";
  return resp;
}

}  // namespace

std::string ResponseToJson(const query::QueryResponse& response) {
  std::string out = "{\"query\":" + JsonQuote(response.text) +
                    ",\"code\":" +
                    JsonQuote(StatusCodeToString(response.status.code()));
  if (!response.status.ok()) {
    out += ",\"message\":" + JsonQuote(response.status.message());
  }
  if (!response.cube.empty()) {
    out += ",\"cube\":" + JsonQuote(response.cube) +
           ",\"version\":" + std::to_string(response.cube_version);
  }
  out += ",\"cache_hit\":";
  out += response.cache_hit ? "true" : "false";
  out += ",\"exec_ms\":" + FormatMillis(response.exec_ms);
  out += ",\"result\":";
  out += response.status.ok() ? query::ToJson(response.result) : "null";
  out += '}';
  return out;
}

net::HttpResponse HandleHttpRequest(const RouterContext& ctx,
                                    const net::HttpRequest& request) {
  if (request.path == "/query") {
    if (request.method != "POST") {
      return JsonError(405, "use POST /query");
    }
    return HandleQuery(ctx, request);
  }
  if (request.method != "GET" && request.method != "HEAD") {
    return JsonError(405, "unsupported method " + request.method);
  }
  if (request.path == "/healthz") return HandleHealthz(ctx);
  if (request.path == "/metrics") return HandleMetrics(ctx);
  if (request.path == "/cubes") return HandleCubes(ctx);
  return JsonError(404, "no route for " + request.path);
}

std::string HandleProtocolLine(const RouterContext& ctx,
                               const std::string& line) {
  std::string_view text = Trim(line);
  if (text.empty() || text.front() == '#') return "";
  return ResponseToJson(ctx.service->ExecuteOne(std::string(text)));
}

}  // namespace server
}  // namespace scube
