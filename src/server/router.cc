#include "server/router.h"

#include <cstdio>
#include <memory>
#include <optional>

#include "common/string_util.h"
#include "common/timer.h"
#include "common/trace.h"
#include "query/wire_format.h"

namespace scube {
namespace server {

namespace {

/// Whether this request gets a TraceContext: explicitly requested
/// (?debug=trace), globally forced (--trace), or implied by the
/// slow-query log (an offending line must carry its span tree, which
/// only exists if the request was traced from the start).
bool ShouldTrace(const RouterContext& ctx, const net::HttpRequest& request) {
  return request.Param("debug") == "trace" || ctx.trace_all ||
         (ctx.slow_log != nullptr && ctx.slow_log->enabled());
}

/// Records per-verb execution latency for every parsed statement of a
/// batch answer (parse errors have no verb and are skipped).
void ObserveVerbs(const RouterContext& ctx,
                  const std::vector<query::QueryResponse>& responses) {
  if (ctx.metrics == nullptr) return;
  for (const query::QueryResponse& r : responses) {
    if (!r.verb.empty()) ctx.metrics->ObserveVerb(r.verb, r.exec_ms);
  }
}

/// Retroactive "conn.read" span: the request's socket-read window
/// (request line to parse complete), stamped by the connection front-end.
/// Unstamped requests (both time points at the epoch) record nothing.
void MaybeRecordConnRead(trace::TraceContext* tc,
                         const net::HttpRequest& request) {
  if (tc != nullptr && request.read_end > request.read_start) {
    tc->Record("conn.read", request.read_start, request.read_end);
  }
}

net::HttpResponse JsonError(int status, const std::string& message) {
  net::HttpResponse resp(status, "{\"error\":" + JsonQuote(message) + "}\n");
  return resp;
}

std::string FormatMillis(double ms) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", ms);
  return buf;
}

/// Splits a /query body into statements: one per line, blank lines and
/// `#` comments skipped.
std::vector<std::string> SplitStatements(const std::string& body) {
  std::vector<std::string> out;
  for (const std::string& raw : Split(body, '\n')) {
    std::string_view line = Trim(raw);
    if (line.empty() || line.front() == '#') continue;
    out.emplace_back(line);
  }
  return out;
}

bool AllUnavailable(const std::vector<query::QueryResponse>& responses) {
  if (responses.empty()) return false;
  for (const auto& r : responses) {
    if (r.status.code() != StatusCode::kUnavailable) return false;
  }
  return true;
}

/// Validates the parameters shared by the buffered and streamed /query
/// routes (?format=, ?deadline_ms=). Returns "" on success, else the
/// error message for a 400. "wire" is the shard protocol and only valid
/// on the streamed route — the buffered handler rejects it.
std::string ParseQueryParams(const net::HttpRequest& request,
                             std::string* format,
                             query::QueryContext* qctx) {
  *format = request.Param("format", "json");
  if (*format != "json" && *format != "csv" && *format != "wire") {
    return "unknown format '" + *format + "' (expected json, csv or wire)";
  }
  const std::string deadline = request.Param("deadline_ms");
  if (!deadline.empty()) {
    auto ms = ParseDouble(deadline);
    if (!ms.ok() || *ms <= 0) {
      return "bad deadline_ms '" + deadline +
             "' (must be a positive number of milliseconds)";
    }
    *qctx = query::QueryContext::WithTimeout(*ms);
  }
  return "";
}

net::HttpResponse HandleQuery(const RouterContext& ctx,
                              const net::HttpRequest& request) {
  WallTimer timer;
  std::string format;
  query::QueryContext qctx;
  std::string validation = ParseQueryParams(request, &format, &qctx);
  if (validation.empty() && format == "wire") {
    validation = "format=wire requires stream=1 (the shard wire protocol "
                 "is streamed only)";
  }
  if (!validation.empty()) return JsonError(400, validation);

  // The trace must attach AFTER ParseQueryParams: ?deadline_ms= replaces
  // the whole context, which would silently drop an earlier pointer.
  std::optional<trace::TraceContext> tc;
  if (ShouldTrace(ctx, request)) tc.emplace();
  qctx.trace = tc ? &*tc : nullptr;
  qctx.allow_partial = request.Param("allow_partial") == "1";
  MaybeRecordConnRead(qctx.trace, request);

  std::vector<std::string> statements = SplitStatements(request.body);
  if (statements.empty()) {
    return JsonError(400,
                     "empty query body (one SCubeQL statement per line)");
  }

  std::vector<query::QueryResponse> responses =
      ctx.backend->ExecuteBatch(statements, qctx);
  ObserveVerbs(ctx, responses);

  auto maybe_slow_log = [&](const char* code, uint64_t rows) {
    if (ctx.slow_log == nullptr) return;
    SlowQueryRecord record;
    record.route = RouteLabel(Route::kQuery);
    record.query = statements.size() == 1
                       ? statements[0]
                       : statements[0] + " (+" +
                             std::to_string(statements.size() - 1) +
                             " more statements)";
    record.code = code;
    record.total_ms = timer.Millis();
    record.rows = rows;
    record.trace = tc ? &*tc : nullptr;
    if (ctx.slow_log->MaybeLog(record) && ctx.metrics != nullptr) {
      ctx.metrics->Inc(ctx.metrics->slow_queries);
    }
  };

  if (AllUnavailable(responses)) {
    net::HttpResponse resp =
        JsonError(503, responses.front().status.message());
    resp.SetHeader("Retry-After", "1");
    maybe_slow_log("UNAVAILABLE", 0);
    return resp;
  }

  uint64_t total_rows = 0;
  for (const query::QueryResponse& r : responses) {
    if (r.status.ok()) total_rows += r.result.rows.size();
  }

  if (format == "csv") {
    net::HttpResponse resp;
    resp.content_type = "text/csv; charset=utf-8";
    resp.SetHeader("Content-Disposition",
                   "attachment; filename=\"scube_query.csv\"");
    trace::Span serialize_span(qctx.trace, "serialize");
    for (size_t i = 0; i < responses.size(); ++i) {
      const query::QueryResponse& r = responses[i];
      resp.body += "# query " + std::to_string(i) + ": " + r.text + " [" +
                   StatusCodeToString(r.status.code()) + "]\n";
      if (r.status.ok()) {
        resp.body += query::ToCsv(r.result);
      }
      if (i + 1 < responses.size()) resp.body += '\n';
    }
    serialize_span.End();
    maybe_slow_log(StatusCodeToString(responses.front().status.code()),
                   total_rows);
    return resp;
  }

  trace::Span serialize_span(qctx.trace, "serialize");
  std::string body = "{\"count\":" + std::to_string(responses.size()) +
                     ",\"results\":[";
  for (size_t i = 0; i < responses.size(); ++i) {
    if (i > 0) body += ',';
    body += ResponseToJson(responses[i]);
  }
  body += "]";
  serialize_span.End();
  // Opt-in span breakdown in the envelope: only for ?debug=trace, not for
  // traces that merely exist for --trace or the slow-query log.
  if (tc && request.Param("debug") == "trace") {
    body += ",\"trace\":" + tc->ToJson();
  }
  body += "}\n";
  maybe_slow_log(StatusCodeToString(responses.front().status.code()),
                 total_rows);
  return net::HttpResponse(200, std::move(body));
}

net::HttpResponse HandleCubes(const RouterContext& ctx) {
  std::string body = "{\"cubes\":[";
  bool first = true;
  for (const query::CubeInfo& info : ctx.backend->ListCubes()) {
    if (!first) body += ',';
    first = false;
    body += "{\"name\":" + JsonQuote(info.name) +
            ",\"version\":" + std::to_string(info.version) +
            ",\"retained\":[";
    bool first_version = true;
    for (uint64_t v : info.retained) {
      if (!first_version) body += ',';
      first_version = false;
      body += std::to_string(v);
    }
    body += "],\"cells\":" + std::to_string(info.cells) +
            ",\"defined_cells\":" + std::to_string(info.defined_cells) +
            "}";
  }
  body += "]}\n";
  return net::HttpResponse(200, std::move(body));
}

net::HttpResponse HandleHealthz(const RouterContext& ctx) {
  return net::HttpResponse(
      200, "{\"status\":\"ok\",\"cubes\":" +
               std::to_string(ctx.backend->ListCubes().size()) + "}\n");
}

net::HttpResponse HandleMetrics(const RouterContext& ctx) {
  net::HttpResponse resp(200, RenderPrometheus(*ctx.metrics, *ctx.backend));
  resp.content_type = "text/plain; version=0.0.4";
  return resp;
}

/// HTTP status for an error caught before any streamed byte left.
int HttpStatusFor(StatusCode code) {
  switch (code) {
    case StatusCode::kNotFound:
      return 404;
    case StatusCode::kUnavailable:
      return 503;
    case StatusCode::kDeadlineExceeded:
      return 504;
    case StatusCode::kInvalidArgument:
    case StatusCode::kParseError:
      return 400;
    default:
      return 500;
  }
}

/// Streams one answer over the chunked writer: the first chunk carries
/// the HTTP head, an optional envelope prefix (JSON wraps the result in
/// {"query":...,"result":; CSV streams bare) and the inner writer's
/// header bytes, flushed eagerly so the client's time-to-first-byte does
/// not wait for the first row. Rows and the trailer forward to the inner
/// writer; the handler appends any envelope tail after the trailer.
class StreamSink : public query::RowSink {
 public:
  StreamSink(net::ChunkedWriter* writer, net::HttpResponse head,
             bool keep_alive, std::string prefix,
             const std::string& format,
             trace::TraceContext* trace = nullptr,
             const WallTimer* request_timer = nullptr)
      : writer_(writer),
        head_(std::move(head)),
        keep_alive_(keep_alive),
        prefix_(std::move(prefix)),
        trace_(trace),
        request_timer_(request_timer) {
    auto emit = [writer](std::string_view data) {
      return writer->Write(data).ok();
    };
    if (format == "csv") {
      inner_ = std::make_unique<query::CsvWriter>(emit);
    } else if (format == "wire") {
      inner_ = std::make_unique<query::WireWriter>(emit);
    } else {
      inner_ = std::make_unique<query::JsonWriter>(emit);
    }
  }

  bool Begin(const query::ResultHeader& header) override {
    // "first_byte" covers the head, the envelope prefix and the eager
    // flush — everything between execution reaching Begin and the client
    // seeing its first byte.
    trace::Span span(trace_, "first_byte");
    if (!writer_->WriteHead(head_, keep_alive_).ok()) return false;
    if (!prefix_.empty() && !writer_->Write(prefix_).ok()) return false;
    bool ok = inner_->Begin(header);
    bool flushed = writer_->Flush().ok();
    if (request_timer_ != nullptr) ttfb_ms_ = request_timer_->Millis();
    return flushed && ok;
  }

  bool Row(const query::ResultRow& row) override { return inner_->Row(row); }

  void Finish(const query::ResultTrailer& trailer) override {
    inner_->Finish(trailer);
  }

  /// Milliseconds from request entry to the first byte reaching the
  /// socket; negative until Begin has run.
  double ttfb_ms() const { return ttfb_ms_; }

 private:
  net::ChunkedWriter* writer_;
  net::HttpResponse head_;
  bool keep_alive_;
  std::string prefix_;
  trace::TraceContext* trace_;
  const WallTimer* request_timer_;
  double ttfb_ms_ = -1;
  std::unique_ptr<query::ResultWriter> inner_;
};

}  // namespace

bool IsStreamingQuery(const net::HttpRequest& request) {
  // POST only: HEAD (whose responses must carry no body bytes) and other
  // methods take the buffered route, where the connection loop applies
  // the usual method/HEAD handling.
  return request.method == "POST" && request.path == "/query" &&
         request.Param("stream") == "1";
}

bool HandleQueryStream(const RouterContext& ctx,
                       const net::HttpRequest& request, bool keep_alive,
                       const net::ChunkedWriter::WriteFn& write) {
  WallTimer timer;
  auto buffered_error = [&](net::HttpResponse resp) {
    resp.content_type = "application/json";
    return write(net::SerializeResponse(resp, keep_alive)).ok();
  };

  // Method filtering happened at IsStreamingQuery: only POST reaches here
  // (HEAD in particular must take the buffered route for body stripping).

  std::string format;
  query::QueryContext qctx;
  std::string validation = ParseQueryParams(request, &format, &qctx);

  // Attach AFTER ParseQueryParams: ?deadline_ms= replaces the context.
  std::optional<trace::TraceContext> tc;
  if (ShouldTrace(ctx, request)) tc.emplace();
  qctx.trace = tc ? &*tc : nullptr;
  qctx.allow_partial = request.Param("allow_partial") == "1";
  MaybeRecordConnRead(qctx.trace, request);

  std::vector<std::string> statements = SplitStatements(request.body);
  if (validation.empty() && statements.size() != 1) {
    validation = statements.empty()
                     ? "empty query body (one SCubeQL statement)"
                     : "stream=1 answers exactly one statement per request "
                       "(got " +
                           std::to_string(statements.size()) +
                           "); batch statements through the buffered path";
  }
  if (!validation.empty()) {
    if (ctx.metrics != nullptr) ctx.metrics->Inc(ctx.metrics->http_errors);
    return buffered_error(JsonError(400, validation));
  }

  const std::string cursor = request.Param("cursor");

  net::HttpResponse head;
  if (format == "csv") {
    head.content_type = "text/csv; charset=utf-8";
    head.SetHeader("Content-Disposition",
                   "attachment; filename=\"scube_query.csv\"");
  } else if (format == "wire") {
    head.content_type = "application/x-scube-wire";
    // The shard protocol: every row carries its order-preserving merge
    // key so the scatter router can k-way merge shard streams back into
    // the exact single-node emission order.
    qctx.merge_keys = true;
  }

  // "conn.write" wraps the raw connection write: on the threaded
  // front-end that is the blocking socket write, on the reactor it is the
  // outbox enqueue including any backpressure wait — either way, the time
  // this response spent pushing bytes toward the peer (nests under
  // wire.flush in the span tree).
  net::ChunkedWriter::WriteFn traced_write = write;
  if (qctx.trace != nullptr) {
    trace::TraceContext* trace_ptr = qctx.trace;
    traced_write = [write, trace_ptr](std::string_view data) {
      trace::Span span(trace_ptr, "conn.write");
      return write(data);
    };
  }

  net::ChunkedWriter writer(traced_write);
  writer.set_trace(qctx.trace);
  std::string prefix =
      format == "json"
          ? "{\"query\":" + JsonQuote(statements[0]) + ",\"result\":"
          : "";
  StreamSink sink(&writer, head, keep_alive, std::move(prefix), format,
                  qctx.trace, &timer);
  query::StreamOutcome outcome =
      ctx.backend->ExecuteStreaming(statements[0], sink, qctx, cursor);
  if (ctx.metrics != nullptr) {
    if (!outcome.verb.empty()) {
      ctx.metrics->ObserveVerb(outcome.verb, outcome.exec_ms);
    }
    if (sink.ttfb_ms() >= 0) {
      ctx.metrics->stream_ttfb.Observe(sink.ttfb_ms());
    }
  }

  auto maybe_slow_log = [&](const char* code) {
    if (ctx.slow_log == nullptr) return;
    SlowQueryRecord record;
    record.route = RouteLabel(Route::kStream);
    record.query = statements[0];
    record.code = code;
    record.total_ms = timer.Millis();
    record.rows = outcome.rows;
    record.trace = tc ? &*tc : nullptr;
    if (ctx.slow_log->MaybeLog(record) && ctx.metrics != nullptr) {
      ctx.metrics->Inc(ctx.metrics->slow_queries);
    }
  };

  if (!outcome.begun) {
    // Nothing on the wire yet: answer as a plain buffered HTTP error.
    int status = HttpStatusFor(outcome.status.code());
    net::HttpResponse resp = JsonError(status, outcome.status.message());
    if (status == 503) resp.SetHeader("Retry-After", "1");
    if (ctx.metrics != nullptr) ctx.metrics->Inc(ctx.metrics->http_errors);
    maybe_slow_log(StatusCodeToString(outcome.status.code()));
    return buffered_error(std::move(resp));
  }

  // The stream is live (head already sent as 200): append the envelope
  // tail and the terminal chunk. Post-Begin failures surface inside the
  // body — the status line is long gone.
  if (format == "json") {
    std::string tail =
        ",\"code\":" + JsonQuote(StatusCodeToString(outcome.status.code()));
    if (!outcome.status.ok()) {
      tail += ",\"message\":" + JsonQuote(outcome.status.message());
    }
    tail += ",\"cube\":" + JsonQuote(outcome.cube) +
            ",\"version\":" + std::to_string(outcome.cube_version) +
            ",\"cache_hit\":";
    tail += outcome.cache_hit ? "true" : "false";
    tail += ",\"rows\":" + std::to_string(outcome.rows);
    // Span breakdown rides in the trailer chunk of the streamed envelope
    // — rendered after execution, so it contains the full walk spans.
    if (tc && request.Param("debug") == "trace") {
      tail += ",\"trace\":" + tc->ToJson();
    }
    tail += "}\n";
    writer.Write(tail);
  } else if (format == "wire") {
    // The authoritative close of a wire stream: the router treats a
    // stream without an S line as transport failure.
    writer.Write(query::WireStatusLine(
        outcome.status.code(), outcome.status.message(),
        outcome.cube_version, outcome.cache_hit, outcome.rows));
  } else if (!outcome.status.ok()) {
    writer.Write("# code: " +
                 std::string(StatusCodeToString(outcome.status.code())) +
                 "\n# message: " + outcome.status.message() + "\n");
  }
  // Account the response before the terminal chunk leaves: a client that
  // has seen the end of the stream must find it in /metrics (the terminal
  // "0\r\n\r\n" is 5 wire bytes, added up front).
  writer.Flush();
  if (ctx.metrics != nullptr) {
    ctx.metrics->Inc(ctx.metrics->streamed_requests);
    if (!outcome.status.ok()) {
      // The 200 head already left; the error rides in the body tail. It
      // still counts as a failed response for monitoring.
      ctx.metrics->Inc(ctx.metrics->streamed_errors);
    }
    ctx.metrics->Add(ctx.metrics->streamed_rows, outcome.rows);
    ctx.metrics->Add(ctx.metrics->streamed_bytes,
                     writer.bytes_written() + 5);
    ctx.metrics->RaiseMax(ctx.metrics->streamed_buffer_peak,
                          writer.peak_buffer_bytes());
  }
  // Log before the terminal chunk for the same reason metrics are
  // accounted above: a client that has seen the end of the stream must
  // find the offender in the slow-query log. Logging after Finish()
  // raced readers of the sink (a just-finished request's line could be
  // missing for a moment) — caught by the slow-query-log HTTP test going
  // flaky under the thread-safety annotation pass.
  maybe_slow_log(StatusCodeToString(outcome.status.code()));
  writer.Finish();
  return writer.ok();
}

std::string ResponseToJson(const query::QueryResponse& response) {
  std::string out = "{\"query\":" + JsonQuote(response.text) +
                    ",\"code\":" +
                    JsonQuote(StatusCodeToString(response.status.code()));
  if (!response.status.ok()) {
    out += ",\"message\":" + JsonQuote(response.status.message());
  }
  if (!response.cube.empty()) {
    out += ",\"cube\":" + JsonQuote(response.cube) +
           ",\"version\":" + std::to_string(response.cube_version);
  }
  out += ",\"cache_hit\":";
  out += response.cache_hit ? "true" : "false";
  out += ",\"exec_ms\":" + FormatMillis(response.exec_ms);
  out += ",\"result\":";
  out += response.status.ok() ? query::ToJson(response.result) : "null";
  out += '}';
  return out;
}

net::HttpResponse HandleHttpRequest(const RouterContext& ctx,
                                    const net::HttpRequest& request) {
  if (request.path == "/query") {
    if (request.method != "POST") {
      return JsonError(405, "use POST /query");
    }
    return HandleQuery(ctx, request);
  }
  if (request.method != "GET" && request.method != "HEAD") {
    return JsonError(405, "unsupported method " + request.method);
  }
  if (request.path == "/healthz") return HandleHealthz(ctx);
  if (request.path == "/metrics") return HandleMetrics(ctx);
  if (request.path == "/cubes") return HandleCubes(ctx);
  return JsonError(404, "no route for " + request.path);
}

std::string HandleProtocolLine(const RouterContext& ctx,
                               const std::string& line) {
  std::string_view text = Trim(line);
  if (text.empty() || text.front() == '#') return "";

  WallTimer timer;
  // No ?debug= on the line protocol: tracing comes from --trace or the
  // slow-query log needing span trees.
  std::optional<trace::TraceContext> tc;
  if (ctx.trace_all ||
      (ctx.slow_log != nullptr && ctx.slow_log->enabled())) {
    tc.emplace();
  }
  query::QueryContext qctx;
  qctx.trace = tc ? &*tc : nullptr;

  query::QueryResponse response =
      ctx.backend->ExecuteOne(std::string(text), qctx);
  if (ctx.metrics != nullptr && !response.verb.empty()) {
    ctx.metrics->ObserveVerb(response.verb, response.exec_ms);
  }
  std::string answer = ResponseToJson(response);
  if (ctx.slow_log != nullptr) {
    SlowQueryRecord record;
    record.route = RouteLabel(Route::kLine);
    record.query = std::string(text);
    record.code = StatusCodeToString(response.status.code());
    record.total_ms = timer.Millis();
    record.rows = response.status.ok() ? response.result.rows.size() : 0;
    record.trace = tc ? &*tc : nullptr;
    if (ctx.slow_log->MaybeLog(record) && ctx.metrics != nullptr) {
      ctx.metrics->Inc(ctx.metrics->slow_queries);
    }
  }
  return answer;
}

}  // namespace server
}  // namespace scube
