// scubed's request router and handlers, separated from connection
// plumbing so they can be unit-tested without sockets:
//
//   POST /query     execute a SCubeQL batch (one statement per body line);
//                   ?format=json|csv, ?deadline_ms=N overrides the default,
//                   ?debug=trace attaches the request's span breakdown to
//                   the JSON envelope (trailer chunk on the streamed path)
//   POST /query?stream=1
//                   stream ONE statement's answer with chunked transfer
//                   encoding: rows leave as the index walks produce them,
//                   O(1) response buffering. ?cursor=TOKEN resumes the
//                   next page of a LIMIT'ed answer against the same
//                   name@version snapshot. ?format=wire (streamed only)
//                   answers in the shard wire format with per-row merge
//                   keys — the scatter-gather router's shard protocol
//                   (query/wire_format.h).
//   GET  /cubes     published cube names, versions and sizes
//   GET  /healthz   liveness: {"status":"ok",...}
//   GET  /metrics   Prometheus text exposition (see metrics.h)
//
// Admission shedding surfaces as HTTP 503 with a Retry-After header; the
// line protocol answers one JSON object per submitted query line.

#ifndef SCUBE_SERVER_ROUTER_H_
#define SCUBE_SERVER_ROUTER_H_

#include <string>

#include "net/http.h"
#include "query/backend.h"
#include "server/metrics.h"
#include "server/slow_query_log.h"

namespace scube {
namespace server {

/// \brief Everything a handler may touch (non-owning). The backend is
/// either a query::QueryService (single node) or a
/// cluster::ScatterExecutor (shard router) — handlers cannot tell.
struct RouterContext {
  query::QueryBackend* backend = nullptr;
  ServerMetrics* metrics = nullptr;

  /// Threshold-gated slow-query sink; null or disabled = off. When
  /// enabled, every query request is traced (the offending line needs its
  /// span tree).
  SlowQueryLog* slow_log = nullptr;

  /// Trace every request even without ?debug=trace (--trace flag).
  bool trace_all = false;
};

/// Dispatches one parsed HTTP request to its handler. Never throws; any
/// failure becomes a JSON error response with the appropriate status.
/// (POST /query?stream=1 is not routed here — connection loops call
/// HandleQueryStream so bytes can leave incrementally.)
net::HttpResponse HandleHttpRequest(const RouterContext& ctx,
                                    const net::HttpRequest& request);

/// True when `request` selects the streamed query path.
bool IsStreamingQuery(const net::HttpRequest& request);

/// Handles POST /query?stream=1: exactly one statement, answered over
/// chunked transfer encoding through `write` (the raw connection write).
/// The first chunk carries the envelope + result header metadata, rows
/// stream as produced, and the trailing chunk carries cells_scanned, the
/// resume cursor and the final status code. Errors caught before any byte
/// left (parse, admission, unknown cube) are answered as plain buffered
/// HTTP errors instead. Returns false when the transport failed and the
/// connection must close.
bool HandleQueryStream(const RouterContext& ctx,
                       const net::HttpRequest& request, bool keep_alive,
                       const net::ChunkedWriter::WriteFn& write);

/// Executes one line-protocol query line; returns a single-line JSON
/// answer (no trailing newline). Empty/comment lines return "".
std::string HandleProtocolLine(const RouterContext& ctx,
                               const std::string& line);

/// One QueryResponse as a JSON object (shared by /query and the line
/// protocol): {"query":...,"code":...,"cube":...,"version":...,
/// "cache_hit":...,"exec_ms":...,"result":{...}|null,"message":...}.
std::string ResponseToJson(const query::QueryResponse& response);

}  // namespace server
}  // namespace scube

#endif  // SCUBE_SERVER_ROUTER_H_
