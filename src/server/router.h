// scubed's request router and handlers, separated from connection
// plumbing so they can be unit-tested without sockets:
//
//   POST /query     execute a SCubeQL batch (one statement per body line);
//                   ?format=json|csv, ?deadline_ms=N overrides the default
//   GET  /cubes     published cube names, versions and sizes
//   GET  /healthz   liveness: {"status":"ok",...}
//   GET  /metrics   Prometheus text exposition (see metrics.h)
//
// Admission shedding surfaces as HTTP 503 with a Retry-After header; the
// line protocol answers one JSON object per submitted query line.

#ifndef SCUBE_SERVER_ROUTER_H_
#define SCUBE_SERVER_ROUTER_H_

#include <string>

#include "net/http.h"
#include "query/cube_store.h"
#include "query/service.h"
#include "server/metrics.h"

namespace scube {
namespace server {

/// \brief Everything a handler may touch (non-owning).
struct RouterContext {
  query::QueryService* service = nullptr;
  query::CubeStore* store = nullptr;
  ServerMetrics* metrics = nullptr;
};

/// Dispatches one parsed HTTP request to its handler. Never throws; any
/// failure becomes a JSON error response with the appropriate status.
net::HttpResponse HandleHttpRequest(const RouterContext& ctx,
                                    const net::HttpRequest& request);

/// Executes one line-protocol query line; returns a single-line JSON
/// answer (no trailing newline). Empty/comment lines return "".
std::string HandleProtocolLine(const RouterContext& ctx,
                               const std::string& line);

/// One QueryResponse as a JSON object (shared by /query and the line
/// protocol): {"query":...,"code":...,"cube":...,"version":...,
/// "cache_hit":...,"exec_ms":...,"result":{...}|null,"message":...}.
std::string ResponseToJson(const query::QueryResponse& response);

}  // namespace server
}  // namespace scube

#endif  // SCUBE_SERVER_ROUTER_H_
