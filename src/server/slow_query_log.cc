#include "server/slow_query_log.h"

#include "common/logging.h"
#include "common/string_util.h"

namespace scube {
namespace server {

std::string SlowQueryLog::FormatLine(const SlowQueryRecord& record,
                                     double threshold_ms) {
  std::string out = "{\"ts\":";
  out += JsonQuote(FormatWallTimestampMillis());
  out += ",\"slow_query_ms\":";
  out += FormatDouble(threshold_ms, 3);
  out += ",\"route\":";
  out += JsonQuote(record.route);
  out += ",\"code\":";
  out += JsonQuote(record.code);
  out += ",\"total_ms\":";
  out += FormatDouble(record.total_ms, 3);
  out += ",\"rows\":";
  out += std::to_string(record.rows);
  out += ",\"query\":";
  out += JsonQuote(record.query);
  if (record.trace != nullptr) {
    out += ",\"trace\":";
    out += record.trace->ToJson();
  }
  out += '}';
  return out;
}

bool SlowQueryLog::MaybeLog(const SlowQueryRecord& record) {
  if (!enabled() || record.total_ms < threshold_ms_) return false;
  const std::string line = FormatLine(record, threshold_ms_);
  sync::MutexLock lock(&mu_);
  std::fprintf(sink_, "%s\n", line.c_str());
  std::fflush(sink_);
  return true;
}

}  // namespace server
}  // namespace scube
