#include "cluster/scatter.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <optional>
#include <utility>

#include "cluster/merge.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "query/ast.h"
#include "query/executor.h"
#include "query/parser.h"
#include "query/wire_format.h"

namespace scube {
namespace cluster {

namespace {

// Composite cursor layout (before base64url): the consumed counts join
// with ';' so '|' stays free as the field separator, and the cube name
// goes last because it alone may contain '|'.
constexpr char kScatterCursorMagic[] = "scx1";
constexpr char kScatterCursorSep = '|';

/// Span names must be string literals (TraceContext stores the pointer);
/// shards beyond the table share one generic label.
const char* ShardRttName(size_t shard) {
  static const char* kNames[] = {
      "shard[0].rtt", "shard[1].rtt", "shard[2].rtt", "shard[3].rtt",
      "shard[4].rtt", "shard[5].rtt", "shard[6].rtt", "shard[7].rtt",
  };
  return shard < 8 ? kNames[shard] : "shard[n].rtt";
}

/// The front-end's HttpStatusFor, inverted: a shard's buffered error
/// response mapped back onto the status it left the shard with.
StatusCode CodeForHttpStatus(int status) {
  switch (status) {
    case 400:
      return StatusCode::kInvalidArgument;
    case 404:
      return StatusCode::kNotFound;
    case 503:
      return StatusCode::kUnavailable;
    case 504:
      return StatusCode::kDeadlineExceeded;
    default:
      return StatusCode::kInternal;
  }
}

/// Parses the JSON string whose opening '"' is at (*pos); leaves *pos one
/// past the closing quote. Understands exactly what JsonEscape emits.
bool ParseJsonString(const std::string& body, size_t* pos, std::string* out) {
  size_t i = *pos;
  while (i < body.size() && (body[i] == ' ' || body[i] == '\t')) ++i;
  if (i >= body.size() || body[i] != '"') return false;
  ++i;
  out->clear();
  while (i < body.size()) {
    char c = body[i];
    if (c == '"') {
      *pos = i + 1;
      return true;
    }
    if (c == '\\') {
      if (i + 1 >= body.size()) return false;
      char e = body[i + 1];
      switch (e) {
        case '"': *out += '"'; break;
        case '\\': *out += '\\'; break;
        case '/': *out += '/'; break;
        case 'b': *out += '\b'; break;
        case 'f': *out += '\f'; break;
        case 'n': *out += '\n'; break;
        case 'r': *out += '\r'; break;
        case 't': *out += '\t'; break;
        case 'u': {
          if (i + 5 >= body.size()) return false;
          auto hex = ParseHexU64(body.substr(i + 2, 4));
          if (!hex.ok()) return false;
          // JsonEscape only \u-encodes control bytes, so the low byte is
          // the whole code point.
          *out += static_cast<char>(*hex & 0xFF);
          i += 4;
          break;
        }
        default:
          return false;
      }
      i += 2;
      continue;
    }
    *out += c;
    ++i;
  }
  return false;
}

/// "error" field of a shard's buffered JSON error body; falls back to the
/// raw (trimmed) body for anything unexpected.
std::string ParseErrorBody(const std::string& body) {
  size_t pos = body.find("\"error\":");
  if (pos != std::string::npos) {
    pos += std::strlen("\"error\":");
    std::string message;
    if (ParseJsonString(body, &pos, &message)) return message;
  }
  std::string fallback(Trim(body));
  return fallback.empty() ? "(empty error body)" : fallback;
}

/// Decimal digits at (*pos) as a uint64, advancing past them.
bool ParseJsonUint(const std::string& body, size_t* pos, uint64_t* out) {
  size_t i = *pos;
  uint64_t v = 0;
  bool any = false;
  while (i < body.size() && body[i] >= '0' && body[i] <= '9') {
    v = v * 10 + static_cast<uint64_t>(body[i] - '0');
    any = true;
    ++i;
  }
  if (!any) return false;
  *pos = i;
  *out = v;
  return true;
}

/// Parses GET /cubes output. Fixed-shape: this JSON is produced by this
/// repo's own HandleCubes, so a key scan (not a general JSON parser) is
/// exact — every object carries name/version/retained/cells/defined_cells
/// in that order.
Result<std::vector<query::CubeInfo>> ParseCubesJson(const std::string& body) {
  std::vector<query::CubeInfo> cubes;
  constexpr char kNameKey[] = "\"name\":";
  size_t pos = body.find(kNameKey);
  while (pos != std::string::npos) {
    pos += std::strlen(kNameKey);
    query::CubeInfo info;
    if (!ParseJsonString(body, &pos, &info.name)) {
      return Status::ParseError("malformed /cubes body: bad cube name");
    }
    auto number_after = [&](const char* key, uint64_t* out) {
      size_t k = body.find(key, pos);
      if (k == std::string::npos) return false;
      k += std::strlen(key);
      if (!ParseJsonUint(body, &k, out)) return false;
      pos = k;
      return true;
    };
    if (!number_after("\"version\":", &info.version)) {
      return Status::ParseError("malformed /cubes body: missing version");
    }
    size_t ret = body.find("\"retained\":[", pos);
    if (ret == std::string::npos) {
      return Status::ParseError("malformed /cubes body: missing retained");
    }
    pos = ret + std::strlen("\"retained\":[");
    while (pos < body.size() && body[pos] != ']') {
      if (body[pos] == ',') {
        ++pos;
        continue;
      }
      uint64_t v = 0;
      if (!ParseJsonUint(body, &pos, &v)) {
        return Status::ParseError("malformed /cubes body: bad retained list");
      }
      info.retained.push_back(v);
    }
    if (!number_after("\"cells\":", &info.cells) ||
        !number_after("\"defined_cells\":", &info.defined_cells)) {
      return Status::ParseError("malformed /cubes body: missing cell counts");
    }
    cubes.push_back(std::move(info));
    pos = body.find(kNameKey, pos);
  }
  return cubes;
}

/// Reads a non-200 response's body so the connection ends at a message
/// boundary and the shard's error message is recoverable.
Status ReadErrorResponseBody(net::BufferedReader* reader,
                             const net::HttpResponseHead& head,
                             std::string* body) {
  if (head.chunked) {
    net::ChunkedBodyReader chunks(reader);
    for (;;) {
      auto more = chunks.ReadSome(body);
      if (!more.ok()) return more.status();
      if (!*more) return Status::OK();
    }
  }
  if (head.have_length) return reader->ReadExactAppend(head.length, body);
  return Status::IoError("error response without body framing");
}

}  // namespace

std::string EncodeScatterCursor(const ScatterCursor& cursor) {
  char hash_hex[17];
  std::snprintf(hash_hex, sizeof(hash_hex), "%016llx",
                static_cast<unsigned long long>(cursor.query_hash));
  std::string consumed;
  for (uint64_t c : cursor.consumed) {
    if (!consumed.empty()) consumed += ';';
    consumed += std::to_string(c);
  }
  std::string plain = std::string(kScatterCursorMagic) + kScatterCursorSep +
                      std::to_string(cursor.version) + kScatterCursorSep +
                      hash_hex + kScatterCursorSep + consumed +
                      kScatterCursorSep + cursor.cube;
  std::string token = Base64Encode(plain);
  for (char& c : token) {
    if (c == '+') c = '-';
    if (c == '/') c = '_';
  }
  return token;
}

Result<ScatterCursor> DecodeScatterCursor(std::string_view token) {
  std::string standard(token);
  for (char& c : standard) {
    if (c == '-') c = '+';
    if (c == '_') c = '/';
  }
  auto plain = Base64Decode(standard);
  if (!plain.ok()) {
    return Status::InvalidArgument("malformed cursor: not base64");
  }
  std::vector<std::string> parts = Split(*plain, kScatterCursorSep);
  if (parts.size() < 5 || parts[0] != kScatterCursorMagic) {
    return Status::InvalidArgument("malformed cursor: not a scatter cursor");
  }
  ScatterCursor cursor;
  cursor.cube = parts[4];
  for (size_t i = 5; i < parts.size(); ++i) {
    cursor.cube += kScatterCursorSep;
    cursor.cube += parts[i];
  }
  if (cursor.cube.empty()) {
    return Status::InvalidArgument("malformed cursor: empty cube name");
  }
  auto version = ParseInt64(parts[1]);
  if (!version.ok() || *version <= 0) {
    return Status::InvalidArgument("malformed cursor: bad version");
  }
  cursor.version = static_cast<uint64_t>(*version);
  if (parts[2].size() != 16) {
    return Status::InvalidArgument("malformed cursor: bad query hash");
  }
  auto hash = ParseHexU64(parts[2]);
  if (!hash.ok()) {
    return Status::InvalidArgument("malformed cursor: bad query hash");
  }
  cursor.query_hash = *hash;
  for (const std::string& c : Split(parts[3], ';')) {
    auto v = ParseInt64(c);
    if (!v.ok() || *v < 0) {
      return Status::InvalidArgument("malformed cursor: bad consumed count");
    }
    cursor.consumed.push_back(static_cast<uint64_t>(*v));
  }
  if (cursor.consumed.empty()) {
    return Status::InvalidArgument("malformed cursor: no consumed counts");
  }
  return cursor;
}

// ---------------------------------------------------------------------------
// ShardStream: one shard's in-flight wire stream during a scatter.

struct ScatterExecutor::ShardStream {
  size_t index = 0;
  ShardClient* client = nullptr;

  std::unique_ptr<net::ChunkedBodyReader> body;
  std::string buf;        ///< undecoded tail of the body
  size_t pos = 0;         ///< parse position into buf
  bool body_done = false; ///< terminal chunk consumed

  Status error;           ///< fan-out failure (StartStream / HTTP error)
  bool started = false;   ///< a stream is open on the shard connection
  bool ended = false;     ///< parsed to the end of the wire stream
  bool dropped = false;   ///< removed from the request (allow_partial)

  query::ResultHeader header;
  bool have_header = false;
  query::ResultRow row;   ///< the shard's current (unconsumed) row
  bool have_row = false;

  uint64_t cells_scanned = 0;
  bool have_trailer = false;
  std::string shard_cursor;  ///< shard's own resume token (unused; sanity)

  bool have_status = false;  ///< the closing S line arrived
  StatusCode code = StatusCode::kOk;
  std::string message;
  bool cache_hit = false;

  /// Next '\n'-terminated line of the stream body. `*have` false at a
  /// clean end of stream; a body ending mid-line is a transport error.
  Status NextLine(std::string* line, bool* have);

  /// Pulls wire events until the next row (`stop_at_row`) or the end of
  /// the stream, recording H/T/S along the way. At the end, a missing S
  /// line is a transport failure and a non-OK S is the shard's own
  /// execution error.
  Status Advance(bool stop_at_row);
};

Status ScatterExecutor::ShardStream::NextLine(std::string* line, bool* have) {
  ShardStream& s = *this;
  *have = false;
  for (;;) {
    size_t nl = s.buf.find('\n', s.pos);
    if (nl != std::string::npos) {
      line->assign(s.buf, s.pos, nl - s.pos);
      s.pos = nl + 1;
      *have = true;
      return Status::OK();
    }
    if (s.body_done) {
      if (s.pos < s.buf.size()) {
        return Status::IoError("shard stream ended mid-line");
      }
      return Status::OK();
    }
    if (s.pos > 0) {
      s.buf.erase(0, s.pos);
      s.pos = 0;
    }
    auto more = s.body->ReadSome(&s.buf);
    if (!more.ok()) return more.status();
    if (!*more) s.body_done = true;
  }
}

Status ScatterExecutor::ShardStream::Advance(bool stop_at_row) {
  ShardStream& s = *this;
  while (!s.ended) {
    std::string line;
    bool have = false;
    Status read = NextLine(&line, &have);
    if (!read.ok()) return read;
    if (!have) {
      s.ended = true;
      if (!s.have_status) {
        return Status::IoError("shard stream ended without a status line");
      }
      if (s.code != StatusCode::kOk) return Status(s.code, s.message);
      return Status::OK();
    }
    auto event = query::ParseWireLine(line);
    if (!event.ok()) return event.status();
    switch (event->kind) {
      case query::WireEvent::Kind::kHeader:
        s.header = std::move(event->header);
        s.have_header = true;
        break;
      case query::WireEvent::Kind::kRow:
        if (stop_at_row) {
          s.row = std::move(event->row);
          s.have_row = true;
          return Status::OK();
        }
        break;
      case query::WireEvent::Kind::kTrailer:
        s.cells_scanned = event->cells_scanned;
        s.shard_cursor = std::move(event->next_cursor);
        s.have_trailer = true;
        break;
      case query::WireEvent::Kind::kStatus:
        s.have_status = true;
        s.code = event->code;
        s.message = std::move(event->message);
        s.cache_hit = event->cache_hit;
        break;
    }
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// ScatterExecutor

ScatterExecutor::ScatterExecutor(std::vector<ShardSpec> shards,
                                 ScatterOptions options)
    : options_(std::move(options)) {
  clients_.reserve(shards.size());
  rtt_.reserve(shards.size());
  for (ShardSpec& spec : shards) {
    clients_.push_back(
        std::make_unique<ShardClient>(std::move(spec), options_.client));
    rtt_.push_back(std::make_unique<trace::LatencyHistogram>());
  }
  // One worker per shard: the fan-out opens every shard stream
  // concurrently (ParallelFor adds the calling thread as a participant).
  pool_ = std::make_unique<ThreadPool>(std::max<size_t>(1, clients_.size()));
}

ScatterExecutor::~ScatterExecutor() = default;

query::StreamOutcome ScatterExecutor::ExecuteStreaming(
    const std::string& text, query::RowSink& sink,
    const query::QueryContext& ctx, const std::string& cursor) {
  sync::MutexLock lock(&request_mu_);
  return ScatterLocked(text, sink, ctx, cursor);
}

std::vector<query::QueryResponse> ScatterExecutor::ExecuteBatch(
    const std::vector<std::string>& texts, const query::QueryContext& ctx) {
  sync::MutexLock lock(&request_mu_);
  std::vector<query::QueryResponse> responses;
  responses.reserve(texts.size());
  for (const std::string& text : texts) {
    query::VectorSink sink;
    query::StreamOutcome outcome = ScatterLocked(text, sink, ctx, "");
    query::QueryResponse resp;
    resp.text = outcome.text;
    resp.canonical = outcome.canonical;
    resp.cube = outcome.cube;
    resp.verb = outcome.verb;
    resp.cube_version = outcome.cube_version;
    resp.status = std::move(outcome.status);
    resp.cache_hit = outcome.cache_hit;
    resp.exec_ms = outcome.exec_ms;
    if (resp.status.ok()) {
      resp.result = sink.TakeResult();
      auto parsed = query::Parse(text);
      if (parsed.ok()) resp.query_hash = query::CursorQueryHash(*parsed);
    }
    responses.push_back(std::move(resp));
  }
  return responses;
}

query::ServiceStats ScatterExecutor::stats() const {
  query::ServiceStats s;
  s.accepted = accepted_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.deadline_expired = deadline_expired_.load(std::memory_order_relaxed);
  s.rejected = 0;  // admission control lives on the shards
  return s;
}

std::vector<query::CubeInfo> ScatterExecutor::ListCubes() const {
  sync::MutexLock lock(&request_mu_);
  const size_t n = clients_.size();
  std::vector<std::vector<query::CubeInfo>> per(n);
  std::vector<char> responded(n, 0);
  pool_->ParallelFor(n, [&](size_t i) {
    auto resp = clients_[i]->RoundTrip("GET", "/cubes");
    if (!resp.ok() || resp->status != 200) return;
    auto cubes = ParseCubesJson(resp->body);
    if (!cubes.ok()) return;
    per[i] = std::move(cubes).value();
    responded[i] = 1;
  });

  size_t base = n;
  for (size_t i = 0; i < n; ++i) {
    if (responded[i]) {
      base = i;
      break;
    }
  }
  std::vector<query::CubeInfo> out;
  if (base == n) return out;

  for (const query::CubeInfo& info : per[base]) {
    query::CubeInfo merged;
    merged.name = info.name;
    merged.version = info.version;
    std::vector<uint64_t> retained = info.retained;
    std::sort(retained.begin(), retained.end());
    bool agree = true;
    for (size_t j = 0; j < n && agree; ++j) {
      if (!responded[j]) continue;
      const query::CubeInfo* found = nullptr;
      for (const query::CubeInfo& c : per[j]) {
        if (c.name == info.name) {
          found = &c;
          break;
        }
      }
      if (found == nullptr || found->version != info.version) {
        agree = false;
        break;
      }
      std::vector<uint64_t> theirs = found->retained;
      std::sort(theirs.begin(), theirs.end());
      std::vector<uint64_t> common;
      std::set_intersection(retained.begin(), retained.end(), theirs.begin(),
                            theirs.end(), std::back_inserter(common));
      retained = std::move(common);
      merged.cells += found->cells;
      merged.defined_cells += found->defined_cells;
    }
    if (!agree) continue;
    merged.retained = std::move(retained);
    out.push_back(std::move(merged));
  }
  return out;
}

query::StreamOutcome ScatterExecutor::ScatterLocked(
    const std::string& text, query::RowSink& sink,
    const query::QueryContext& ctx, const std::string& cursor) {
  query::StreamOutcome outcome;
  outcome.text = text;
  accepted_.fetch_add(1, std::memory_order_relaxed);

  auto finish = [this, &outcome](Status status) -> query::StreamOutcome& {
    outcome.status = std::move(status);
    if (outcome.status.code() == StatusCode::kDeadlineExceeded) {
      deadline_expired_.fetch_add(1, std::memory_order_relaxed);
    }
    completed_.fetch_add(1, std::memory_order_relaxed);
    return outcome;
  };

  if (clients_.empty()) {
    return finish(Status::Internal("scatter executor has no shards"));
  }

  query::QueryContext context = ctx;
  if (!context.deadline && options_.default_deadline_ms > 0) {
    context.deadline =
        query::QueryContext::Clock::now() +
        std::chrono::duration_cast<query::QueryContext::Clock::duration>(
            std::chrono::duration<double, std::milli>(
                options_.default_deadline_ms));
  }

  auto parsed = query::Parse(text);
  if (!parsed.ok()) return finish(parsed.status());
  query::Query q = std::move(parsed).value();
  outcome.canonical = query::Canonical(q);
  outcome.cube = q.cube.empty() ? options_.default_cube : q.cube;
  outcome.verb = query::VerbToString(q.verb);
  const uint64_t query_hash = query::CursorQueryHash(q);
  const size_t n = clients_.size();

  // Degrading to a shard subset only ever applies to analytic verbs: an
  // incomplete TOPK/SURPRISES/REVERSALS answer is still a meaningful
  // ranking, an incomplete SLICE is silently wrong data.
  const bool partial_ok =
      context.allow_partial && (q.verb == query::Verb::kTopK ||
                                q.verb == query::Verb::kSurprises ||
                                q.verb == query::Verb::kReversals);

  // TOPK with an explicit ORDER BY is the one verb shape where the
  // selection order (ranked index, count-capped at k) differs from the
  // emission order (the ORDER BY key). Merging shard streams in emission
  // order and stopping at k would pick the k best *by the ORDER BY key*
  // from the union of shard-local top-ks — the wrong set. Instead the
  // router asks shards for their natural ranked streams, merges the
  // global top-k exactly as for plain TOPK, then re-sorts with the
  // executor's own SortRows (stable: ties keep ranked order, matching
  // the single node's stable_sort) and pages the sorted rows locally.
  const bool ranked_reorder =
      q.verb == query::Verb::kTopK && q.order.has_value();

  WallTimer timer;

  std::vector<ShardStream> streams(n);
  for (size_t i = 0; i < n; ++i) {
    streams[i].index = i;
    streams[i].client = clients_[i].get();
  }

  bool used_partial = false;
  auto live_count = [&streams]() {
    size_t count = 0;
    for (const ShardStream& s : streams) {
      if (!s.dropped) ++count;
    }
    return count;
  };
  auto shard_error = [this](size_t i, const Status& s) {
    return Status(s.code(), "shard " + std::to_string(i) + " (" +
                                clients_[i]->spec().Label() +
                                "): " + s.message());
  };
  // Drops shard i from the request when the partial policy allows it
  // (analytic verb, opted in, at least one other shard still live).
  auto try_drop = [&](size_t i) {
    if (!partial_ok || live_count() <= 1) return false;
    ShardStream& s = streams[i];
    if (s.started && !s.ended) s.client->FinishStream(false);
    s.dropped = true;
    used_partial = true;
    return true;
  };
  auto abort_started = [&streams]() {
    for (ShardStream& s : streams) {
      if (!s.dropped && s.started && !s.ended) s.client->FinishStream(false);
    }
  };
  auto sum_scanned = [&streams]() {
    uint64_t total = 0;
    for (const ShardStream& s : streams) {
      if (!s.dropped && s.have_trailer) total += s.cells_scanned;
    }
    return total;
  };

  // --- pin one version: from the cursor, or by preflighting every shard.
  uint64_t version = 0;
  std::vector<uint64_t> consumed(n, 0);
  uint64_t router_skip = 0;

  if (!cursor.empty()) {
    auto decoded = DecodeScatterCursor(cursor);
    if (!decoded.ok()) return finish(decoded.status());
    if (decoded->cube != outcome.cube) {
      return finish(Status::InvalidArgument(
          "cursor belongs to cube '" + decoded->cube +
          "', but the query addresses '" + outcome.cube + "'"));
    }
    if (decoded->query_hash != query_hash) {
      return finish(Status::InvalidArgument(
          "cursor was issued for a different query; resend the original "
          "statement (the page size may change, the rest may not)"));
    }
    if (decoded->consumed.size() != n) {
      return finish(Status::InvalidArgument(
          "cursor was issued for a " +
          std::to_string(decoded->consumed.size()) +
          "-shard topology, but this router has " + std::to_string(n) +
          " shards; restart the scan"));
    }
    if (q.cube_version && *q.cube_version != decoded->version) {
      return finish(Status::InvalidArgument(
          "cursor pins version " + std::to_string(decoded->version) +
          ", but the query pins @" + std::to_string(*q.cube_version)));
    }
    version = decoded->version;
    consumed = std::move(decoded->consumed);
    // The original OFFSET was consumed while producing the first page (it
    // is part of the consumed counts); resumption never re-skips.
    router_skip = 0;
  } else {
    if (context.Expired()) {
      return finish(
          Status::DeadlineExceeded("deadline expired before fan-out"));
    }
    struct Preflight {
      Status error;
      std::vector<query::CubeInfo> cubes;
    };
    std::vector<Preflight> pre(n);
    {
      trace::Span span(context.trace, "scatter.preflight");
      pool_->ParallelFor(n, [&](size_t i) {
        auto resp = clients_[i]->RoundTrip("GET", "/cubes");
        if (!resp.ok()) {
          pre[i].error = resp.status();
          return;
        }
        if (resp->status != 200) {
          pre[i].error = Status::Internal("GET /cubes answered HTTP " +
                                          std::to_string(resp->status));
          return;
        }
        auto cubes = ParseCubesJson(resp->body);
        if (!cubes.ok()) {
          pre[i].error = cubes.status();
          return;
        }
        pre[i].cubes = std::move(cubes).value();
      });
    }
    for (size_t i = 0; i < n; ++i) {
      if (pre[i].error.ok()) continue;
      Status err = shard_error(i, pre[i].error);
      if (!try_drop(i)) return finish(std::move(err));
    }

    std::vector<const query::CubeInfo*> info(n, nullptr);
    for (size_t i = 0; i < n; ++i) {
      if (streams[i].dropped) continue;
      for (const query::CubeInfo& c : pre[i].cubes) {
        if (c.name == outcome.cube) {
          info[i] = &c;
          break;
        }
      }
    }

    if (q.cube_version) {
      version = *q.cube_version;
      for (size_t i = 0; i < n; ++i) {
        if (streams[i].dropped) continue;
        bool has = false;
        if (info[i] != nullptr) {
          has = info[i]->version == version ||
                std::find(info[i]->retained.begin(), info[i]->retained.end(),
                          version) != info[i]->retained.end();
        }
        if (!has) {
          Status err = shard_error(
              i, Status::NotFound("no version " + std::to_string(version) +
                                  " of cube '" + outcome.cube +
                                  "' (evicted or never published)"));
          if (!try_drop(i)) return finish(std::move(err));
        }
      }
    } else {
      bool any = false;
      for (size_t i = 0; i < n; ++i) {
        if (!streams[i].dropped && info[i] != nullptr) any = true;
      }
      if (!any) {
        return finish(Status::NotFound("no cube published under '" +
                                       outcome.cube + "'"));
      }
      for (size_t i = 0; i < n; ++i) {
        if (streams[i].dropped || info[i] != nullptr) continue;
        Status err = shard_error(
            i, Status::Unavailable("cube '" + outcome.cube +
                                   "' not published on this shard"));
        if (!try_drop(i)) return finish(std::move(err));
      }
      // Version agreement: a rolling publish that has reached only some
      // shards must not produce a Frankenstein answer.
      size_t first = n;
      for (size_t i = 0; i < n; ++i) {
        if (!streams[i].dropped) {
          first = i;
          break;
        }
      }
      version = info[first]->version;
      for (size_t i = first + 1; i < n; ++i) {
        if (streams[i].dropped) continue;
        if (info[i]->version != version) {
          return finish(Status::Unavailable(
              "cube '" + outcome.cube + "' is at version " +
              std::to_string(version) + " on shard " + std::to_string(first) +
              " (" + clients_[first]->spec().Label() + ") but version " +
              std::to_string(info[i]->version) + " on shard " +
              std::to_string(i) + " (" + clients_[i]->spec().Label() +
              "); retry once the rolling publish settles"));
        }
      }
    }
    router_skip = q.offset.value_or(0);
  }
  outcome.cube_version = version;

  // ranked_reorder pagination is positional in the *sorted* stream: the
  // global selection must be recomputed every page, so per-shard resume
  // offsets are meaningless. The cursor's consumed[] instead carries the
  // post-sort resume position (its sum; encoded in slot 0) — unambiguous
  // because the query hash pins the statement shape.
  uint64_t sort_start = 0;
  if (ranked_reorder) {
    for (uint64_t c : consumed) sort_start += c;
    consumed.assign(n, 0);
    sort_start += router_skip;  // a fresh request's OFFSET
    router_skip = 0;
  }

  // --- per-shard statements. Each shard is asked for the page-relevant
  // slice of ITS OWN stream: resume at consumed[i], deliver at most
  // skip + page + 1 rows (the +1 row proves non-exhaustion without a
  // second round trip). TOPK additionally caps global pops at k below.
  std::optional<uint64_t> pops_cap;
  if (q.verb == query::Verb::kTopK) {
    uint64_t used = 0;
    for (uint64_t c : consumed) used += c;
    pops_cap = q.k > used ? q.k - used : 0;
  }

  std::string target = "/query?stream=1&format=wire";
  if (context.has_deadline()) {
    double remaining = context.RemainingMillis();
    if (remaining < 1.0) remaining = 1.0;
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3f", remaining);
    target += "&deadline_ms=";
    target += buf;
  }

  std::vector<std::string> bodies(n);
  for (size_t i = 0; i < n; ++i) {
    if (streams[i].dropped) continue;
    query::Query shard_q = q;
    shard_q.cube = outcome.cube;
    shard_q.cube_version = version;
    if (consumed[i] > 0) {
      shard_q.offset = consumed[i];
    } else {
      shard_q.offset.reset();
    }
    if (q.limit && !ranked_reorder) {
      shard_q.limit = router_skip + *q.limit + 1;
    } else {
      shard_q.limit.reset();
    }
    if (ranked_reorder) {
      // Natural ranked streams: the shard's local top-k in selection
      // order, bounded by k rows — the router sorts and pages.
      shard_q.order.reset();
    }
    bodies[i] = query::Canonical(shard_q);
  }

  // --- fan out: open every shard stream concurrently.
  {
    trace::Span fanout(context.trace, "scatter.fanout");
    pool_->ParallelFor(n, [&](size_t i) {
      ShardStream& s = streams[i];
      if (s.dropped) return;
      auto t0 = trace::TraceContext::Clock::now();
      auto head =
          s.client->StartStream("POST", target, bodies[i], "text/plain");
      auto t1 = trace::TraceContext::Clock::now();
      rtt_[i]->Observe(
          std::chrono::duration<double, std::milli>(t1 - t0).count());
      if (context.trace != nullptr) {
        context.trace->Record(ShardRttName(i), t0, t1);
      }
      if (!head.ok()) {
        s.error = head.status();
        return;
      }
      if (head->status != 200) {
        // The shard rejected the statement before streaming (parse error,
        // missing version, shed). Recover its error message and leave the
        // connection clean.
        std::string body;
        Status read = ReadErrorResponseBody(s.client->reader(), *head, &body);
        s.client->FinishStream(read.ok());
        s.error = Status(CodeForHttpStatus(head->status),
                         read.ok() ? ParseErrorBody(body)
                                   : "HTTP " + std::to_string(head->status));
        return;
      }
      if (!head->chunked) {
        s.client->FinishStream(false);
        s.error = Status::IoError("streamed response is not chunked");
        return;
      }
      s.started = true;
      s.body = std::make_unique<net::ChunkedBodyReader>(s.client->reader());
    });
  }
  for (size_t i = 0; i < n; ++i) {
    ShardStream& s = streams[i];
    if (s.dropped || s.started) continue;
    Status err = shard_error(i, s.error);
    if (!try_drop(i)) {
      abort_started();
      return finish(std::move(err));
    }
  }

  // --- prime: first row (or end) of every stream, before Begin, so any
  // early shard failure can still be answered as a plain HTTP error.
  for (size_t i = 0; i < n; ++i) {
    ShardStream& s = streams[i];
    if (s.dropped) continue;
    Status st = s.Advance(/*stop_at_row=*/true);
    if (!st.ok()) {
      Status err = shard_error(i, st);
      if (!try_drop(i)) {
        abort_started();
        return finish(std::move(err));
      }
    }
  }

  const query::ResultHeader* header = nullptr;
  for (const ShardStream& s : streams) {
    if (!s.dropped && s.have_header) {
      header = &s.header;
      break;
    }
  }
  if (header == nullptr) {
    // A 200-chunked wire stream always opens with H; its absence on every
    // live shard is a protocol violation, not an empty result.
    abort_started();
    return finish(Status::Internal("no shard produced a result header"));
  }

  outcome.begun = true;
  if (!sink.Begin(*header)) {
    // Mirror the single-node path: an aborted stream is still closed with
    // a trailer, reports OK, and never carries a resume cursor.
    abort_started();
    query::ResultTrailer trailer;
    trailer.cells_scanned = sum_scanned();
    sink.Finish(trailer);
    outcome.cells_scanned = trailer.cells_scanned;
    outcome.exec_ms = timer.Millis();
    return finish(Status::OK());
  }

  // --- the merge: pop the globally-smallest key until the page fills,
  // the global TOPK budget is spent, or every stream runs dry.
  KWayMerger merger;
  for (const ShardStream& s : streams) {
    if (!s.dropped && s.have_row) merger.Push(s.index, s.row.skey);
  }

  uint64_t pops = 0;
  uint64_t emitted = 0;
  bool more = false;
  bool aborted = false;
  bool cap_break = false;
  Status merge_error;
  std::vector<query::ResultRow> ranked_rows;  // ranked_reorder selection
  query::DeadlineTicker ticker(context, 64);
  {
    trace::Span merge_span(context.trace, "scatter.merge");
    while (!merger.empty()) {
      if (pops_cap && pops >= *pops_cap) {
        // The global top-k is complete even though shards (each asked for
        // their own top k) still hold rows.
        cap_break = true;
        break;
      }
      if (ticker.Tick()) {
        merge_error =
            Status::DeadlineExceeded("deadline expired during scatter merge");
        break;
      }
      size_t si = merger.Pop();
      ShardStream& s = streams[si];
      if (!ranked_reorder && q.limit && router_skip == 0 &&
          emitted >= *q.limit) {
        // Offered a row beyond the page: the stream is provably not
        // exhausted. The row stays unconsumed (not counted in consumed[]),
        // exactly like the single-node Pager.
        more = true;
        break;
      }
      query::ResultRow row = std::move(s.row);
      s.have_row = false;
      ++consumed[si];
      ++pops;
      if (ranked_reorder) {
        // Selection only: the page is cut after the re-sort below.
        ranked_rows.push_back(std::move(row));
      } else if (router_skip > 0) {
        --router_skip;
      } else if (!sink.Row(std::move(row))) {
        aborted = true;
        break;
      } else {
        ++emitted;
      }
      Status advanced = s.Advance(/*stop_at_row=*/true);
      if (!advanced.ok()) {
        Status err = shard_error(si, advanced);
        if (!try_drop(si)) {
          merge_error = std::move(err);
          break;
        }
        continue;
      }
      if (s.have_row) merger.Push(si, s.row.skey);
    }
  }

  if (ranked_reorder && merge_error.ok() && !aborted) {
    // The merged pops are the global top-k in ranked order — exactly the
    // single node's pre-sort sequence. SortRows is stable, so ties keep
    // that order, and the sorted stream is byte-identical.
    query::SortRows(*q.order, &ranked_rows);
    size_t at = sort_start < ranked_rows.size()
                    ? static_cast<size_t>(sort_start)
                    : ranked_rows.size();
    while (at < ranked_rows.size()) {
      if (q.limit && emitted >= *q.limit) {
        more = true;
        break;
      }
      if (ticker.Tick()) {
        merge_error =
            Status::DeadlineExceeded("deadline expired during scatter merge");
        break;
      }
      if (!sink.Row(std::move(ranked_rows[at]))) {
        aborted = true;
        break;
      }
      ++emitted;
      ++at;
    }
  }

  if (!merge_error.ok()) {
    // Post-Begin failure: rows are already on the wire, so close the
    // stream properly (no cursor — a broken merge has no resume point)
    // and surface the error status for the envelope/trailing diagnostics.
    abort_started();
    query::ResultTrailer trailer;
    trailer.cells_scanned = sum_scanned();
    sink.Finish(trailer);
    outcome.rows = emitted;
    outcome.cells_scanned = trailer.cells_scanned;
    outcome.exec_ms = timer.Millis();
    return finish(std::move(merge_error));
  }

  if (aborted) {
    // Client gone: leftover shard bodies may be unbounded, tear down.
    abort_started();
  } else {
    // Page filled / budget spent: the leftovers are bounded by the LIMIT
    // pushdown, so drain them — the connections stay reusable and the
    // shard trailers (scan accounting, cache bits) become available.
    for (ShardStream& s : streams) {
      if (s.dropped || !s.started || s.ended) continue;
      s.have_row = false;
      Status drained = s.Advance(/*stop_at_row=*/false);
      if (!drained.ok()) s.client->FinishStream(false);
    }
  }

  bool exhausted;
  if (aborted || more) {
    exhausted = false;
  } else if (cap_break) {
    exhausted = true;
  } else {
    // Merger drained. With the +1-row shard limit this implies every
    // shard's stream truly ended, but trust the shards' own cursors over
    // the inference.
    exhausted = true;
    for (const ShardStream& s : streams) {
      if (!s.dropped && !s.shard_cursor.empty()) exhausted = false;
    }
  }

  query::ResultTrailer trailer;
  trailer.cells_scanned = sum_scanned();
  // A partial answer gets no cursor: resuming it could reach the failed
  // shard again and stitch rows the first page never saw.
  if (!aborted && !exhausted && !used_partial) {
    std::vector<uint64_t> resume = consumed;
    if (ranked_reorder) {
      // Positional resume in the sorted stream (see sort_start above).
      resume.assign(n, 0);
      resume[0] = sort_start + emitted;
    }
    trailer.next_cursor = EncodeScatterCursor(
        ScatterCursor{outcome.cube, version, query_hash, std::move(resume)});
  }
  outcome.next_cursor = trailer.next_cursor;
  sink.Finish(trailer);

  bool cache_hit = true;
  for (const ShardStream& s : streams) {
    if (s.dropped) continue;
    if (!s.have_status || !s.cache_hit) cache_hit = false;
  }
  outcome.cache_hit = cache_hit;
  outcome.rows = emitted;
  outcome.cells_scanned = trailer.cells_scanned;
  outcome.exec_ms = timer.Millis();
  if (used_partial) partial_.fetch_add(1, std::memory_order_relaxed);
  return finish(Status::OK());
}

// ---------------------------------------------------------------------------
// Metrics

namespace {

// server/metrics.cc keeps its exposition helpers file-local on purpose;
// these are the scatter router's own minimal equivalents.

void FamilyHeader(std::string* out, const char* name, const char* type,
                  const char* help) {
  *out += "# HELP ";
  *out += name;
  *out += ' ';
  *out += help;
  *out += "\n# TYPE ";
  *out += name;
  *out += ' ';
  *out += type;
  *out += '\n';
}

std::string SecondsText(double s) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", s);
  return buf;
}

void ShardHistogramSeries(std::string* out, const char* name,
                          const std::string& label,
                          const trace::LatencyHistogram& hist) {
  auto bucket_line = [&](const std::string& le, uint64_t cumulative) {
    *out += name;
    *out += "_bucket{";
    *out += label;
    *out += ",le=\"";
    *out += le;
    *out += "\"} ";
    *out += std::to_string(cumulative);
    *out += '\n';
  };
  uint64_t cumulative = 0;
  for (size_t i = 0; i < trace::LatencyHistogram::kBucketBoundsMs.size();
       ++i) {
    cumulative += hist.bucket(i);
    bucket_line(
        SecondsText(trace::LatencyHistogram::kBucketBoundsMs[i] / 1000.0),
        cumulative);
  }
  cumulative += hist.bucket(trace::LatencyHistogram::kNumBuckets - 1);
  bucket_line("+Inf", cumulative);
  *out += name;
  *out += "_sum{";
  *out += label;
  *out += "} ";
  *out += SecondsText(hist.sum_ms() / 1000.0);
  *out += '\n';
  *out += name;
  *out += "_count{";
  *out += label;
  *out += "} ";
  *out += std::to_string(hist.count());
  *out += '\n';
}

}  // namespace

void ScatterExecutor::AppendBackendMetrics(std::string* out) const {
  const size_t n = clients_.size();
  auto shard_label = [this](size_t i) {
    return "shard=\"" + std::to_string(i) + "\",backend=\"" +
           clients_[i]->spec().Label() + "\"";
  };

  FamilyHeader(out, "scubed_shard_requests_total", "counter",
               "Round trips the scatter router attempted per shard.");
  for (size_t i = 0; i < n; ++i) {
    *out += "scubed_shard_requests_total{" + shard_label(i) + "} " +
            std::to_string(clients_[i]->health().requests) + "\n";
  }
  FamilyHeader(out, "scubed_shard_failures_total", "counter",
               "Round trips that exhausted every replica of a shard.");
  for (size_t i = 0; i < n; ++i) {
    *out += "scubed_shard_failures_total{" + shard_label(i) + "} " +
            std::to_string(clients_[i]->health().failures) + "\n";
  }
  FamilyHeader(out, "scubed_scatter_partial_total", "counter",
               "Requests answered from a shard subset (allow_partial).");
  *out += "scubed_scatter_partial_total " +
          std::to_string(partial_.load(std::memory_order_relaxed)) + "\n";

  FamilyHeader(out, "scubed_shard_rtt_seconds", "histogram",
               "Shard stream head latency (request out to head in).");
  for (size_t i = 0; i < n; ++i) {
    ShardHistogramSeries(out, "scubed_shard_rtt_seconds", shard_label(i),
                         *rtt_[i]);
  }
}

}  // namespace cluster
}  // namespace scube
