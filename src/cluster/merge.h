// K-way ranked merge over shard row streams.
//
// Each shard emits its rows in the single-node emission order, stamped
// with order-preserving merge keys (query/merge_key.h): lexicographic
// byte order of keys equals emission order for every verb. Because the
// partitioner makes each shard's stream an exact disjoint subsequence of
// the global stream, popping the smallest key across shards reproduces
// the global stream exactly — this heap is the whole merge.
//
// Ties cannot occur between shards (natural keys embed the cell
// coordinate, and shards own disjoint cells); the shard-index tie-break
// exists so the order is total even if that invariant were violated.

#ifndef SCUBE_CLUSTER_MERGE_H_
#define SCUBE_CLUSTER_MERGE_H_

#include <cstddef>
#include <queue>
#include <string>
#include <utility>
#include <vector>

namespace scube {
namespace cluster {

/// \brief Min-heap of (merge key, source index): Pop returns the source
/// holding the globally next row. Push the source's next key after
/// consuming the popped row; stop pushing when the source is exhausted.
class KWayMerger {
 public:
  void Push(size_t source, std::string key) {
    heap_.push(Entry{std::move(key), source});
  }

  /// The source whose current row is globally next (smallest key, ties to
  /// the lowest source index). Undefined when empty().
  size_t Pop() {
    size_t source = heap_.top().source;
    heap_.pop();
    return source;
  }

  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }

 private:
  struct Entry {
    std::string key;
    size_t source = 0;
  };
  struct Later {
    // priority_queue keeps the *largest* on top, so "later than" orders
    // the smallest (key, source) to the top.
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.key != b.key) return a.key > b.key;
      return a.source > b.source;
    }
  };
  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
};

}  // namespace cluster
}  // namespace scube

#endif  // SCUBE_CLUSTER_MERGE_H_
