// ScatterExecutor: a query::QueryBackend that answers SCubeQL by fanning
// each statement out to N shard scubeds and k-way merging their wire
// streams back into the exact single-node row order.
//
// How byte-identity works, end to end:
//   1. cluster/partition.h splits a sealed cube by context coordinate;
//      each shard's row stream is a disjoint subsequence of the global
//      stream (ghost cells cover cross-shard adjacency, the executor
//      never emits them).
//   2. Shards answer POST /query?stream=1&format=wire with every row
//      stamped by an order-preserving merge key (query/merge_key.h) and
//      every double as its raw IEEE-754 bit pattern (query/wire_format.h).
//   3. This executor opens all shard streams concurrently (scatter.fanout
//      span, per-shard shard[i].rtt spans), then pops the smallest key
//      across streams (scatter.merge span) — reproducing the global
//      stream — and pushes rows into the caller's RowSink, where the very
//      same JsonWriter/CsvWriter as a single node renders them.
//
// Pagination: LIMIT/OFFSET is executed at the router. Shards are asked
// for OFFSET <consumed_i> LIMIT <page + 1> of their own streams (LIMIT
// pushdown still applies shard-side), and the resume token is a
// *composite* cursor recording how many rows of each shard's stream the
// client has consumed. Stitched pages equal the unpaginated answer for
// the same reason single-node pages do: every shard stream is
// deterministic.
//
// Versions: each statement is pinned to one sealed version before
// fan-out. A non-cursor request preflights GET /cubes on every shard and
// requires them to agree on the latest version (a mismatch — e.g. a
// rolling publish in progress — is Unavailable and names the shard);
// cursors carry the pin themselves. Shard requests always say FROM
// name@version, so a concurrent publish cannot tear one answer.
//
// Failure: a failed shard fails the request with an error envelope that
// names it ("shard 2 (host:port): ..."). With ?allow_partial=1, analytic
// verbs (TOPK / SURPRISES / REVERSALS) instead answer from the shards
// that responded — navigation verbs never degrade silently.
//
// Concurrency: one request at a time (an internal mutex). The executor
// owns one connection pool; scaling request concurrency means running
// more router processes, which are stateless.

#ifndef SCUBE_CLUSTER_SCATTER_H_
#define SCUBE_CLUSTER_SCATTER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/sync.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "cluster/shard_client.h"
#include "net/http.h"
#include "query/backend.h"

namespace scube {
namespace cluster {

/// \brief Router tuning knobs.
struct ScatterOptions {
  /// Cube name used when a statement has no FROM clause (must match the
  /// shards' default for unqualified queries to resolve).
  std::string default_cube = "default";

  /// Connect/read timeouts and retry policy for all shard round trips.
  net::ClientOptions client;

  /// Deadline applied to requests that carry none (milliseconds, 0 =
  /// unbounded); forwarded to shards as ?deadline_ms=.
  double default_deadline_ms = 0;
};

/// \brief The composite resume token of a scattered stream: the pinned
/// cube/version, the statement fingerprint, and how many rows of each
/// shard's stream the client has consumed (skipped offsets included).
struct ScatterCursor {
  std::string cube;
  uint64_t version = 0;
  uint64_t query_hash = 0;          ///< query::CursorQueryHash
  std::vector<uint64_t> consumed;   ///< one entry per shard, shard order
};

/// Renders a composite cursor as an opaque URL-safe token.
std::string EncodeScatterCursor(const ScatterCursor& cursor);

/// Parses a token; InvalidArgument when malformed or not a scatter
/// cursor (single-node tokens are a different format).
Result<ScatterCursor> DecodeScatterCursor(std::string_view token);

/// \brief Scatter-gather query backend over a shard topology.
class ScatterExecutor : public query::QueryBackend {
 public:
  ScatterExecutor(std::vector<ShardSpec> shards, ScatterOptions options = {});
  ~ScatterExecutor() override;

  ScatterExecutor(const ScatterExecutor&) = delete;
  ScatterExecutor& operator=(const ScatterExecutor&) = delete;

  std::vector<query::QueryResponse> ExecuteBatch(
      const std::vector<std::string>& texts,
      const query::QueryContext& ctx) override;

  query::StreamOutcome ExecuteStreaming(const std::string& text,
                                        query::RowSink& sink,
                                        const query::QueryContext& ctx,
                                        const std::string& cursor) override;

  query::ServiceStats stats() const override;

  /// The cubes every reachable shard agrees on (same latest version);
  /// cells/defined_cells are summed across shards and therefore count
  /// ghost replicas once per holding shard.
  std::vector<query::CubeInfo> ListCubes() const override;

  /// Per-shard fan-out series: scubed_shard_requests_total,
  /// scubed_shard_failures_total, scubed_shard_rtt_seconds and
  /// scubed_scatter_partial_total.
  void AppendBackendMetrics(std::string* out) const override;

  size_t num_shards() const { return clients_.size(); }

 private:
  struct ShardStream;  // one in-flight shard wire stream (scatter.cc)

  query::StreamOutcome ScatterLocked(const std::string& text,
                                     query::RowSink& sink,
                                     const query::QueryContext& ctx,
                                     const std::string& cursor)
      REQUIRES(request_mu_);

  ScatterOptions options_;

  /// The vector itself is const after construction (safe to size/iterate
  /// anywhere); each ShardClient's connection state is single-flight and
  /// only touched under request_mu_ — not expressible through
  /// vector<unique_ptr>, so the discipline is documented here. The
  /// atomic health counters inside ShardClient are the exception: they
  /// exist precisely so /metrics can read them off-lock.
  std::vector<std::unique_ptr<ShardClient>> clients_;
  std::unique_ptr<ThreadPool> pool_ PT_GUARDED_BY(request_mu_);

  /// Serialises requests: the shard connection pool (and the per-shard
  /// merge state) is single-flight by design.
  mutable sync::Mutex request_mu_;

  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> deadline_expired_{0};
  std::atomic<uint64_t> partial_{0};  ///< requests answered from a subset

  /// Head latency (request out -> response head in) per shard.
  std::vector<std::unique_ptr<trace::LatencyHistogram>> rtt_;
};

}  // namespace cluster
}  // namespace scube

#endif  // SCUBE_CLUSTER_SCATTER_H_
