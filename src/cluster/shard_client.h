// Shard client pool: persistent keep-alive HTTP connections to each
// shard's replica set, with round-robin replica selection for read-only
// traffic, failover, and per-shard health counters.
//
// Topology syntax (the --shards flag): shards are comma-separated,
// replicas of one shard pipe-separated:
//
//   --shards host1:7101,host2:7102            three shards, no replicas
//   --shards a:7101|b:7101,c:7102|d:7102      two shards, two replicas each
//
// All shard traffic is read-only (/query, /cubes, /metrics), so any
// replica of a shard can answer any request and a failed round trip can
// be retried on a sibling without double-apply risk.
//
// Thread-safety: distinct ShardClients may be used concurrently (the
// scatter fan-out drives one thread per shard); one ShardClient must not
// be used from two threads at once.

#ifndef SCUBE_CLUSTER_SHARD_CLIENT_H_
#define SCUBE_CLUSTER_SHARD_CLIENT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "net/http.h"

namespace scube {
namespace cluster {

/// \brief One backend address.
struct ShardEndpoint {
  std::string host;
  uint16_t port = 0;

  std::string Label() const { return host + ":" + std::to_string(port); }
};

/// \brief One shard: the replica set that can answer for its partition.
struct ShardSpec {
  std::vector<ShardEndpoint> replicas;

  /// "host:port|host:port" — the shard's display name in errors/metrics.
  std::string Label() const;
};

/// Parses the --shards topology ("h:p|h:p,h:p"). InvalidArgument on an
/// empty list, a malformed endpoint or a port outside [1, 65535].
Result<std::vector<ShardSpec>> ParseShardList(std::string_view spec);

/// \brief Snapshot of one shard's health counters.
struct ShardHealth {
  uint64_t requests = 0;  ///< round trips attempted (streams included)
  uint64_t failures = 0;  ///< round trips that exhausted every replica
  /// Consecutive exhausted-all-replicas failures; reset by any success.
  uint64_t consecutive_failures = 0;
};

/// \brief Client for one shard's replica set.
class ShardClient {
 public:
  ShardClient(ShardSpec spec, net::ClientOptions options);

  const ShardSpec& spec() const { return spec_; }

  /// Buffered request/response. Replicas are tried round-robin, each with
  /// the full RoundTripWithRetry policy (stale keep-alive reconnect,
  /// backoff); the error of the last replica is returned when all fail.
  Result<net::HttpClientResponse> RoundTrip(
      const std::string& method, const std::string& target,
      const std::string& body = "",
      const std::string& content_type = "text/plain");

  /// Starts a streamed request: sends it and reads the response head,
  /// leaving the connection positioned at the first body byte. The caller
  /// pulls the body incrementally (net::ChunkedBodyReader over reader()),
  /// then MUST call FinishStream. Failover across replicas applies only
  /// up to the head — once body bytes flow, a failure surfaces to the
  /// caller (re-requesting mid-merge would desync the k-way order).
  Result<net::HttpResponseHead> StartStream(
      const std::string& method, const std::string& target,
      const std::string& body = "",
      const std::string& content_type = "text/plain");

  /// The connection carrying the active stream (valid after a successful
  /// StartStream, until FinishStream).
  net::BufferedReader* reader();

  /// Ends the active stream. `clean` = the body was consumed exactly to
  /// its end (the connection sits at a message boundary and is kept for
  /// reuse); otherwise the connection is torn down.
  void FinishStream(bool clean);

  ShardHealth health() const;

 private:
  /// The replica to try first for the next request.
  size_t NextReplica();

  ShardSpec spec_;
  net::ClientOptions options_;
  /// One persistent connection per replica. unique_ptr: a BufferedReader
  /// points at its Socket, so the pair must stay at a fixed address.
  std::vector<std::unique_ptr<net::ClientConnection>> conns_;
  size_t rr_ = 0;              ///< round-robin cursor
  size_t stream_replica_ = 0;  ///< replica serving the active stream

  /// Health counters are atomics on purpose, not GUARDED_BY a mutex: the
  /// single writer is the request path (serialised by the scatter layer's
  /// request_mu_ per the class contract above), while /metrics reads
  /// health() from server threads concurrently. fetch_add/store(0) from
  /// one thread + relaxed loads from others is race-free by construction;
  /// audited during the thread-safety annotation pass.
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> failures_{0};
  std::atomic<uint64_t> consecutive_{0};
};

}  // namespace cluster
}  // namespace scube

#endif  // SCUBE_CLUSTER_SHARD_CLIENT_H_
