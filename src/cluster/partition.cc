#include "cluster/partition.h"

#include <algorithm>

namespace scube {
namespace cluster {

uint64_t ContextFingerprint(const fpm::Itemset& ca) {
  // FNV-1a 64-bit, bytes fed as 4 little-endian bytes per item id. The
  // itemset is stored sorted, so equal sets always feed equal bytes.
  uint64_t h = 1469598103934665603ull;
  for (fpm::ItemId item : ca.items()) {
    uint32_t v = static_cast<uint32_t>(item);
    for (int shift = 0; shift < 32; shift += 8) {
      h ^= (v >> shift) & 0xFFu;
      h *= 1099511628211ull;
    }
  }
  return h;
}

size_t ShardOfContext(const fpm::Itemset& ca, const PartitionOptions& options,
                      size_t universe) {
  const size_t n = std::max<size_t>(1, options.num_shards);
  if (n == 1) return 0;
  switch (options.strategy) {
    case PartitionStrategy::kHash:
      return static_cast<size_t>(ContextFingerprint(ca) % n);
    case PartitionStrategy::kRange: {
      // Contiguous buckets of the first (smallest) CA item id. The empty
      // context — the cube apex and every pure-SA cell — goes to shard 0.
      if (ca.empty()) return 0;
      const size_t u = std::max<size_t>(1, universe);
      size_t first = std::min<size_t>(static_cast<size_t>(ca[0]), u - 1);
      return first * n / u;
    }
  }
  return 0;
}

std::vector<cube::SegregationCube> PartitionCube(
    const cube::CubeView& view, const PartitionOptions& options,
    PartitionStats* stats) {
  const size_t n = std::max<size_t>(1, options.num_shards);
  const size_t universe = view.catalog().size();

  std::vector<cube::SegregationCube> shards;
  shards.reserve(n);
  for (size_t s = 0; s < n; ++s) {
    shards.emplace_back(view.catalog(), view.unit_labels());
  }
  if (stats != nullptr) {
    stats->owned.assign(n, 0);
    stats->ghosts.assign(n, 0);
  }

  // Ownership per cell id, computed once — the ghost pass reuses it.
  const auto cells = view.Cells();
  std::vector<uint32_t> owner(cells.size());
  for (size_t id = 0; id < cells.size(); ++id) {
    owner[id] = static_cast<uint32_t>(
        ShardOfContext(cells[id].coords.ca, options, universe));
  }

  // Pass 1: every cell goes to its owner, ghost flag cleared.
  for (size_t id = 0; id < cells.size(); ++id) {
    cube::CubeCell copy = cells[id];
    copy.ghost = false;
    if (stats != nullptr) ++stats->owned[owner[id]];
    shards[owner[id]].Insert(std::move(copy));
  }

  // Pass 2: one-hop ghost closure across the CA axis. SA-axis neighbours
  // share the cell's CA and are therefore already shard-local; only
  // CA-removal parents and CA-extension children can live elsewhere.
  auto replicate = [&](size_t into, const cube::CubeCell& cell) {
    // Insert replaces, so never overwrite the shard's own copy; a ghost
    // inserted twice is harmless (identical payload).
    if (shards[into].Find(cell.coords) != nullptr) return;
    cube::CubeCell copy = cell;
    copy.ghost = true;
    if (stats != nullptr) ++stats->ghosts[into];
    shards[into].Insert(std::move(copy));
  };
  for (cube::CubeView::CellId id = 0; id < cells.size(); ++id) {
    const cube::CubeCell& cell = cells[id];
    const size_t home = owner[id];
    for (cube::CubeView::CellId pid : view.Parents(id)) {
      if (owner[pid] != home) replicate(home, view.cell(pid));
      // The parent's shard also needs this cell: it is the parent's
      // CA-extension child (ROLLUP anchors there, REVERSALS compares it).
      if (owner[pid] != home) replicate(owner[pid], cell);
    }
    // Children: the child edge is the parent edge seen from the other
    // end, so the loop above already replicated both directions — every
    // (parent, child) pair is visited once with id = child.
  }

  return shards;
}

}  // namespace cluster
}  // namespace scube
