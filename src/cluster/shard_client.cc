#include "cluster/shard_client.h"

#include <cstdlib>

#include "common/string_util.h"

namespace scube {
namespace cluster {

std::string ShardSpec::Label() const {
  std::string out;
  for (const ShardEndpoint& r : replicas) {
    if (!out.empty()) out += '|';
    out += r.Label();
  }
  return out;
}

namespace {

Result<ShardEndpoint> ParseEndpoint(std::string_view text) {
  size_t colon = text.rfind(':');
  if (colon == std::string_view::npos || colon == 0 ||
      colon + 1 == text.size()) {
    return Status::InvalidArgument("bad shard endpoint '" +
                                   std::string(text) +
                                   "' (expected host:port)");
  }
  ShardEndpoint ep;
  ep.host = std::string(text.substr(0, colon));
  std::string port_text(text.substr(colon + 1));
  char* end = nullptr;
  unsigned long port = std::strtoul(port_text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || port == 0 || port > 65535) {
    return Status::InvalidArgument("bad shard port '" + port_text +
                                   "' in '" + std::string(text) + "'");
  }
  ep.port = static_cast<uint16_t>(port);
  return ep;
}

}  // namespace

Result<std::vector<ShardSpec>> ParseShardList(std::string_view spec) {
  std::vector<ShardSpec> shards;
  for (const std::string& shard_text : Split(std::string(spec), ',')) {
    std::string_view trimmed = Trim(shard_text);
    if (trimmed.empty()) continue;
    ShardSpec shard;
    for (const std::string& replica_text :
         Split(std::string(trimmed), '|')) {
      std::string_view rep = Trim(replica_text);
      if (rep.empty()) continue;
      auto ep = ParseEndpoint(rep);
      if (!ep.ok()) return ep.status();
      shard.replicas.push_back(std::move(ep).value());
    }
    if (shard.replicas.empty()) {
      return Status::InvalidArgument("shard with no replicas in '" +
                                     std::string(spec) + "'");
    }
    shards.push_back(std::move(shard));
  }
  if (shards.empty()) {
    return Status::InvalidArgument("empty shard list");
  }
  return shards;
}

ShardClient::ShardClient(ShardSpec spec, net::ClientOptions options)
    : spec_(std::move(spec)), options_(options) {
  conns_.reserve(spec_.replicas.size());
  for (size_t i = 0; i < spec_.replicas.size(); ++i) {
    conns_.push_back(std::make_unique<net::ClientConnection>());
  }
}

size_t ShardClient::NextReplica() {
  size_t r = rr_;
  rr_ = (rr_ + 1) % spec_.replicas.size();
  return r;
}

Result<net::HttpClientResponse> ShardClient::RoundTrip(
    const std::string& method, const std::string& target,
    const std::string& body, const std::string& content_type) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  const size_t n = spec_.replicas.size();
  size_t start = NextReplica();
  Status last = Status::IoError("no replicas");
  for (size_t i = 0; i < n; ++i) {
    const size_t r = (start + i) % n;
    const ShardEndpoint& ep = spec_.replicas[r];
    auto resp = net::RoundTripWithRetry(conns_[r].get(), ep.host, ep.port,
                                        method, target, body, content_type,
                                        options_);
    if (resp.ok()) {
      consecutive_.store(0, std::memory_order_relaxed);
      return resp;
    }
    last = resp.status();
  }
  failures_.fetch_add(1, std::memory_order_relaxed);
  consecutive_.fetch_add(1, std::memory_order_relaxed);
  return last;
}

Result<net::HttpResponseHead> ShardClient::StartStream(
    const std::string& method, const std::string& target,
    const std::string& body, const std::string& content_type) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  const size_t n = spec_.replicas.size();
  size_t start = NextReplica();
  Status last = Status::IoError("no replicas");

  std::string request = method + " " + target + " HTTP/1.1\r\n";
  request += "Host: localhost\r\n";
  request += "Content-Type: " + content_type + "\r\n";
  request += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  request += "Connection: keep-alive\r\n\r\n";
  request += body;

  for (size_t i = 0; i < n; ++i) {
    const size_t r = (start + i) % n;
    const ShardEndpoint& ep = spec_.replicas[r];
    net::ClientConnection* conn = conns_[r].get();
    // A reused keep-alive connection the peer has since closed fails the
    // first send/read — reconnect and resend once before moving on; a
    // fresh connection that fails moves straight to the next replica.
    bool reused = conn->valid();
    for (int pass = 0; pass < 2; ++pass) {
      if (!conn->valid()) {
        Status opened =
            net::OpenClientConnection(ep.host, ep.port, options_, conn);
        if (!opened.ok()) {
          last = std::move(opened);
          break;
        }
      }
      Status sent = conn->socket.WriteAll(request);
      if (sent.ok()) {
        auto head = net::ReadHttpResponseHead(conn->reader.get());
        if (head.ok()) {
          consecutive_.store(0, std::memory_order_relaxed);
          stream_replica_ = r;
          return head;
        }
        last = head.status();
      } else {
        last = std::move(sent);
      }
      conn->Reset();
      if (!reused) break;
      reused = false;
    }
  }
  failures_.fetch_add(1, std::memory_order_relaxed);
  consecutive_.fetch_add(1, std::memory_order_relaxed);
  return last;
}

net::BufferedReader* ShardClient::reader() {
  return conns_[stream_replica_]->reader.get();
}

void ShardClient::FinishStream(bool clean) {
  if (!clean) conns_[stream_replica_]->Reset();
}

ShardHealth ShardClient::health() const {
  ShardHealth h;
  h.requests = requests_.load(std::memory_order_relaxed);
  h.failures = failures_.load(std::memory_order_relaxed);
  h.consecutive_failures = consecutive_.load(std::memory_order_relaxed);
  return h;
}

}  // namespace cluster
}  // namespace scube
