// Shard partitioner: splits one sealed cube (cube::CubeView) into N
// shard cubes, partitioned by the *context* coordinate (CA). Every cell
// with the same CA lands on the same shard, so an exact-CA slice group,
// and every SA-axis neighbour of a cell (SA-removal parents, SA-extension
// children — they share the cell's CA), is shard-local.
//
// Cross-shard adjacency is handled by **ghost cells**: for each owned
// cell, its CA-removal parents and CA-extension children that hash to a
// different shard are replicated into the shard with CubeCell::ghost set.
// Ghosts participate fully in the shard view's indexes and adjacency —
// they are the comparison baselines SURPRISES/REVERSALS evaluate owned
// cells against, and the probe targets ROLLUP/DRILLDOWN anchor on — but
// the executor never *emits* them, so each shard's row stream is an exact
// disjoint subsequence of the global stream. That disjointness is what
// makes per-shard LIMIT pushdown and the router's k-way merge-key
// stitching byte-identical to a single node.
//
// Assignment is deterministic across processes: a stable FNV-1a over the
// CA item ids (4 bytes little-endian each), NOT fpm::Itemset::Hash — N
// independent shard processes building their own slice of a demo cube
// must agree on ownership without coordination.

#ifndef SCUBE_CLUSTER_PARTITION_H_
#define SCUBE_CLUSTER_PARTITION_H_

#include <cstdint>
#include <vector>

#include "cube/cube.h"
#include "cube/cube_view.h"
#include "fpm/itemset.h"

namespace scube {
namespace cluster {

/// \brief How context coordinates map to shards.
enum class PartitionStrategy {
  kHash,   ///< FNV-1a of the CA item ids, mod num_shards (the default)
  kRange,  ///< contiguous ranges of the first CA item id (empty CA -> 0)
};

/// \brief Partitioning knobs.
struct PartitionOptions {
  size_t num_shards = 1;
  PartitionStrategy strategy = PartitionStrategy::kHash;
};

/// Stable FNV-1a over the CA item ids (4 bytes little-endian per item).
/// Deterministic across processes and builds — the whole point.
uint64_t ContextFingerprint(const fpm::Itemset& ca);

/// The shard owning context coordinate `ca`. `universe` is the item-id
/// universe size (catalog size), used only by kRange to size its buckets.
size_t ShardOfContext(const fpm::Itemset& ca, const PartitionOptions& options,
                      size_t universe);

/// \brief Per-shard accounting from one PartitionCube call.
struct PartitionStats {
  std::vector<size_t> owned;  ///< cells the shard answers for
  std::vector<size_t> ghosts; ///< replicated adjacency baselines
};

/// Splits `view` into options.num_shards build-side cubes. Shard i holds
/// every cell whose CA it owns (ghost = false) plus the one-hop ghost
/// closure of those cells across the CA axis (ghost = true). Each shard
/// cube carries the full catalog and unit labels, so label rendering and
/// coordinate resolution match the global cube exactly. Seal() each
/// result to serve it.
std::vector<cube::SegregationCube> PartitionCube(
    const cube::CubeView& view, const PartitionOptions& options,
    PartitionStats* stats = nullptr);

}  // namespace cluster
}  // namespace scube

#endif  // SCUBE_CLUSTER_PARTITION_H_
