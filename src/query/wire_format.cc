#include "query/wire_format.h"

#include <bit>
#include <cstdio>
#include <vector>

#include "common/string_util.h"

namespace scube {
namespace query {

namespace {

constexpr char kHexDigits[] = "0123456789abcdef";

void AppendHex(std::string_view bytes, std::string* out) {
  for (unsigned char c : bytes) {
    out->push_back(kHexDigits[c >> 4]);
    out->push_back(kHexDigits[c & 0xf]);
  }
}

int HexNibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

bool DecodeHex(std::string_view hex, std::string* out) {
  if (hex.size() % 2 != 0) return false;
  out->clear();
  out->reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    int hi = HexNibble(hex[i]);
    int lo = HexNibble(hex[i + 1]);
    if (hi < 0 || lo < 0) return false;
    out->push_back(static_cast<char>((hi << 4) | lo));
  }
  return true;
}

bool UnescapeWire(std::string_view field, std::string* out) {
  out->clear();
  out->reserve(field.size());
  for (size_t i = 0; i < field.size(); ++i) {
    char c = field[i];
    if (c != '\\') {
      out->push_back(c);
      continue;
    }
    if (++i >= field.size()) return false;
    switch (field[i]) {
      case '\\': out->push_back('\\'); break;
      case 't': out->push_back('\t'); break;
      case 'n': out->push_back('\n'); break;
      case 'r': out->push_back('\r'); break;
      default: return false;
    }
  }
  return true;
}

/// Splits a raw wire line on (unescaped) tabs. Escaped tabs are "\t" two-
/// character sequences, so a plain split is correct.
std::vector<std::string_view> SplitFields(std::string_view line) {
  std::vector<std::string_view> fields;
  size_t start = 0;
  for (size_t i = 0; i <= line.size(); ++i) {
    if (i == line.size() || line[i] == '\t') {
      fields.push_back(line.substr(start, i - start));
      start = i + 1;
    }
  }
  return fields;
}

bool ParseWireDouble(std::string_view field, double* out) {
  auto bits = ParseHexU64(field);
  if (!bits.ok()) return false;
  *out = std::bit_cast<double>(*bits);
  return true;
}

bool ParseWireU64(std::string_view field, uint64_t* out) {
  auto v = ParseInt64(field);
  if (!v.ok() || *v < 0) return false;
  *out = static_cast<uint64_t>(*v);
  return true;
}

bool ParseWireBool(std::string_view field, bool* out) {
  if (field == "1") { *out = true; return true; }
  if (field == "0") { *out = false; return true; }
  return false;
}

Status BadLine(const char* what) {
  return Status::ParseError(std::string("malformed wire line: ") + what);
}

}  // namespace

void AppendWireEscaped(std::string_view text, std::string* out) {
  for (char c : text) {
    switch (c) {
      case '\\': *out += "\\\\"; break;
      case '\t': *out += "\\t"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      default: out->push_back(c);
    }
  }
}

std::string WireDouble(double v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(std::bit_cast<uint64_t>(v)));
  return buf;
}

bool WireWriter::Begin(const ResultHeader& header) {
  std::string line = "H\t";
  line += std::to_string(static_cast<int>(header.verb));
  line += '\t';
  line += std::to_string(static_cast<int>(header.by));
  line += '\t';
  line += header.has_value ? '1' : '0';
  line += '\t';
  line += header.has_aux ? '1' : '0';
  line += '\t';
  line += header.has_aux2 ? '1' : '0';
  line += '\t';
  line += header.has_tag ? '1' : '0';
  line += '\t';
  AppendWireEscaped(header.aux_name, &line);
  line += '\t';
  AppendWireEscaped(header.aux2_name, &line);
  line += '\t';
  AppendWireEscaped(header.tag_name, &line);
  line += '\n';
  return Write(line);
}

bool WireWriter::Row(const ResultRow& row) {
  std::string line = "R\t";
  AppendHex(row.skey, &line);
  line += '\t';
  AppendWireEscaped(row.sa, &line);
  line += '\t';
  AppendWireEscaped(row.ca, &line);
  line += '\t';
  line += std::to_string(row.t);
  line += '\t';
  line += std::to_string(row.m);
  line += '\t';
  line += std::to_string(row.units);
  line += '\t';
  line += row.defined ? '1' : '0';
  for (double v : row.indexes) {
    line += '\t';
    line += WireDouble(v);
  }
  line += '\t';
  line += WireDouble(row.value);
  line += '\t';
  line += WireDouble(row.aux);
  line += '\t';
  line += WireDouble(row.aux2);
  line += '\t';
  AppendWireEscaped(row.tag, &line);
  line += '\n';
  return Write(line);
}

void WireWriter::Finish(const ResultTrailer& trailer) {
  std::string line = "T\t";
  line += std::to_string(trailer.cells_scanned);
  line += '\t';
  AppendWireEscaped(trailer.next_cursor, &line);
  line += '\n';
  Write(line);
}

std::string WireStatusLine(StatusCode code, const std::string& message,
                           uint64_t version, bool cache_hit, uint64_t rows) {
  std::string line = "S\t";
  line += std::to_string(static_cast<int>(code));
  line += '\t';
  AppendWireEscaped(message, &line);
  line += '\t';
  line += std::to_string(version);
  line += '\t';
  line += cache_hit ? '1' : '0';
  line += '\t';
  line += std::to_string(rows);
  line += '\n';
  return line;
}

Result<WireEvent> ParseWireLine(std::string_view line) {
  if (!line.empty() && line.back() == '\n') line.remove_suffix(1);
  std::vector<std::string_view> fields = SplitFields(line);
  if (fields.empty() || fields[0].size() != 1) {
    return BadLine("missing event tag");
  }
  WireEvent event;
  switch (fields[0][0]) {
    case 'H': {
      if (fields.size() != 10) return BadLine("H wants 10 fields");
      event.kind = WireEvent::Kind::kHeader;
      uint64_t verb = 0, by = 0;
      if (!ParseWireU64(fields[1], &verb) || verb >= kNumVerbs ||
          !ParseWireU64(fields[2], &by) ||
          by >= indexes::kNumIndexKinds ||
          !ParseWireBool(fields[3], &event.header.has_value) ||
          !ParseWireBool(fields[4], &event.header.has_aux) ||
          !ParseWireBool(fields[5], &event.header.has_aux2) ||
          !ParseWireBool(fields[6], &event.header.has_tag) ||
          !UnescapeWire(fields[7], &event.header.aux_name) ||
          !UnescapeWire(fields[8], &event.header.aux2_name) ||
          !UnescapeWire(fields[9], &event.header.tag_name)) {
        return BadLine("bad H field");
      }
      event.header.verb = static_cast<Verb>(verb);
      event.header.by = static_cast<indexes::IndexKind>(by);
      return event;
    }
    case 'R': {
      constexpr size_t kFixed = 8;  // tag, skey, sa, ca, t, m, units, defined
      constexpr size_t kDoubles = indexes::kNumIndexKinds + 3;
      if (fields.size() != kFixed + kDoubles + 1) {
        return BadLine("R wants skey + row fields");
      }
      event.kind = WireEvent::Kind::kRow;
      ResultRow& row = event.row;
      uint64_t units = 0;
      if (!DecodeHex(fields[1], &row.skey) ||
          !UnescapeWire(fields[2], &row.sa) ||
          !UnescapeWire(fields[3], &row.ca) ||
          !ParseWireU64(fields[4], &row.t) ||
          !ParseWireU64(fields[5], &row.m) ||
          !ParseWireU64(fields[6], &units) || units > UINT32_MAX ||
          !ParseWireBool(fields[7], &row.defined)) {
        return BadLine("bad R field");
      }
      row.units = static_cast<uint32_t>(units);
      size_t at = kFixed;
      for (size_t i = 0; i < indexes::kNumIndexKinds; ++i) {
        if (!ParseWireDouble(fields[at++], &row.indexes[i])) {
          return BadLine("bad R index value");
        }
      }
      if (!ParseWireDouble(fields[at++], &row.value) ||
          !ParseWireDouble(fields[at++], &row.aux) ||
          !ParseWireDouble(fields[at++], &row.aux2) ||
          !UnescapeWire(fields[at++], &row.tag)) {
        return BadLine("bad R value field");
      }
      return event;
    }
    case 'T': {
      if (fields.size() != 3) return BadLine("T wants 3 fields");
      event.kind = WireEvent::Kind::kTrailer;
      if (!ParseWireU64(fields[1], &event.cells_scanned) ||
          !UnescapeWire(fields[2], &event.next_cursor)) {
        return BadLine("bad T field");
      }
      return event;
    }
    case 'S': {
      if (fields.size() != 6) return BadLine("S wants 6 fields");
      event.kind = WireEvent::Kind::kStatus;
      uint64_t code = 0;
      if (!ParseWireU64(fields[1], &code) ||
          code > static_cast<uint64_t>(StatusCode::kDeadlineExceeded) ||
          !UnescapeWire(fields[2], &event.message) ||
          !ParseWireU64(fields[3], &event.version) ||
          !ParseWireBool(fields[4], &event.cache_hit) ||
          !ParseWireU64(fields[5], &event.rows)) {
        return BadLine("bad S field");
      }
      event.code = static_cast<StatusCode>(code);
      return event;
    }
    default:
      return BadLine("unknown event tag");
  }
}

}  // namespace query
}  // namespace scube
