// RowSink: the streaming read path of SCubeQL answers.
//
// Instead of materialising a full QueryResult and rendering it into one
// string, the executor pushes rows into a RowSink one at a time:
//
//     sink.Begin(header)        once, before any row
//     sink.Row(row) -> bool     per row; false = stop (backpressure,
//                               page filled, client gone)
//     sink.Finish(trailer)      once, after the last row
//
// Begin and Row are called by the row *producer* (Executor::ExecuteToSink,
// ReplayResult); Finish is called by the *driver* (QueryService, the
// serialisation helpers) because only it knows the trailer — the resume
// cursor needs the cube name and pinned version, which the executor never
// sees.
//
// Three sink families cover every consumer:
//   VectorSink            materialises the stream back into a QueryResult
//                         (the pre-streaming behaviour; feeds the cache),
//   JsonWriter/CsvWriter  render incrementally through a write callback in
//                         O(row) memory — the chunked HTTP path. ToJson and
//                         ToCsv replay through these writers, so streamed
//                         and materialised renderings are byte-identical
//                         by construction.
//
// Cursors: an answer page (LIMIT n OFFSET k) that stops before the row
// stream is exhausted yields an opaque resume token encoding
// (cube name, sealed version, absolute row position). Resuming against the
// same name@version snapshot continues the deterministic row stream exactly
// where the page ended, so stitched pages equal the unpaginated answer.

#ifndef SCUBE_QUERY_ROW_SINK_H_
#define SCUBE_QUERY_ROW_SINK_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <utility>

#include "common/result.h"
#include "query/query_result.h"

namespace scube {
namespace query {

/// \brief Receives one answer as header -> rows -> trailer.
class RowSink {
 public:
  virtual ~RowSink() = default;

  /// Called once before any row. Returning false aborts the stream.
  virtual bool Begin(const ResultHeader& header) = 0;

  /// Called once per row. Returning false stops the producer (the scan
  /// terminates early); Finish still follows.
  virtual bool Row(const ResultRow& row) = 0;

  /// Rvalue overload: producers hand freshly built rows here, so sinks
  /// that store rows (VectorSink, the cache tee) can move the strings
  /// instead of copying. Defaults to the const& version — renderers that
  /// only read the row need not care.
  virtual bool Row(ResultRow&& row) {
    return Row(static_cast<const ResultRow&>(row));
  }

  /// Called once after the last row (see file comment for who calls it).
  virtual void Finish(const ResultTrailer& trailer) = 0;
};

/// \brief Materialises the stream into a QueryResult — the streaming
/// path's answer is exactly the pre-streaming materialised answer.
class VectorSink : public RowSink {
 public:
  bool Begin(const ResultHeader& header) override;
  bool Row(const ResultRow& row) override;
  bool Row(ResultRow&& row) override;
  void Finish(const ResultTrailer& trailer) override;

  const QueryResult& result() const { return result_; }
  QueryResult TakeResult() { return std::move(result_); }

  /// Copies pagination plumbing (exhausted/next_offset) into the result;
  /// the producer's StreamStats carry them, not the trailer.
  void SetPagination(bool exhausted, uint64_t next_offset) {
    result_.exhausted = exhausted;
    result_.next_offset = next_offset;
  }

 private:
  QueryResult result_;
};

/// \brief Base for incremental text renderers. Bytes go to `write`; a
/// false return (client disconnected, buffer refused) aborts the stream:
/// Row starts returning false and further output is suppressed.
class ResultWriter : public RowSink {
 public:
  /// Sinks bytes; false = stop producing.
  using WriteFn = std::function<bool(std::string_view)>;

  explicit ResultWriter(WriteFn write) : write_(std::move(write)) {}

  bool ok() const { return ok_; }

 protected:
  /// Forwards to the write callback, latching failure.
  bool Write(std::string_view data) {
    if (ok_ && !write_(data)) ok_ = false;
    return ok_;
  }

 private:
  WriteFn write_;
  bool ok_ = true;
};

/// \brief Streams the ToJson rendering:
/// {"verb":...,"by":...,"rows":[R,...],"cells_scanned":N[,"next_cursor":C]}.
class JsonWriter : public ResultWriter {
 public:
  using ResultWriter::ResultWriter;

  bool Begin(const ResultHeader& header) override;
  bool Row(const ResultRow& row) override;
  void Finish(const ResultTrailer& trailer) override;

 private:
  ResultHeader header_;
  bool first_row_ = true;
};

/// \brief Streams the ToCsv rendering: header line, one line per row, and
/// a trailing "# next_cursor: ..." comment when a resume token is set.
class CsvWriter : public ResultWriter {
 public:
  using ResultWriter::ResultWriter;

  bool Begin(const ResultHeader& header) override;
  bool Row(const ResultRow& row) override;
  void Finish(const ResultTrailer& trailer) override;

 private:
  ResultHeader header_;
};

/// Replays a materialised result through a sink: Begin, each row (stopping
/// early if the sink asks), then Finish — this is how cache hits answer
/// through the same interface as live streams. The trailer defaults to the
/// result's own; the serving layer overrides it to stamp a freshly encoded
/// resume cursor. When the sink stops the replay early (`aborted`, if
/// given, reports this), the trailer's next_cursor is suppressed: a
/// partial stream has no valid resume point — the same rule the live
/// execution path applies. Returns the number of rows delivered.
uint64_t ReplayResult(const QueryResult& result, RowSink& sink,
                      const ResultTrailer* trailer_override = nullptr,
                      bool* aborted = nullptr);

/// \brief Decoded resume token: which snapshot the stream was walking,
/// the absolute row position (into the unpaginated stream) to resume
/// from, and a fingerprint of the statement that produced the stream so a
/// cursor cannot be replayed against a different query.
struct Cursor {
  std::string cube;        ///< cube name
  uint64_t version = 0;    ///< sealed version the stream is pinned to
  uint64_t position = 0;   ///< absolute row offset of the next page
  uint64_t query_hash = 0; ///< CursorQueryHash of the originating query
};

/// Fingerprint of the parts of a query that define its row stream: the
/// canonical text with the pagination clauses (LIMIT/OFFSET) and the FROM
/// pin stripped — those are carried by the cursor itself, and a client may
/// legitimately change the page size between pages. Deterministic across
/// processes (FNV-1a, not std::hash).
uint64_t CursorQueryHash(const Query& query);

/// Renders a cursor as an opaque URL-safe token (base64url).
std::string EncodeCursor(const Cursor& cursor);

/// Parses a token; InvalidArgument when malformed or not one of ours.
Result<Cursor> DecodeCursor(std::string_view token);

}  // namespace query
}  // namespace scube

#endif  // SCUBE_QUERY_ROW_SINK_H_
