// SCubeQL executor: lowers a parsed Query onto one sealed cube snapshot
// (cube::CubeView). Coordinate constraints (attribute=value) resolve to
// item ids through the view's ItemCatalog; verbs lower onto the view's
// secondary indexes:
//
//   SLICE     exact-coordinate slice groups (hash lookup -> id span), or a
//             single point lookup when both axes are given,
//   DICE      posting-list intersection over the per-item inverted lists,
//   TOPK      a walk of the view's precomputed ranked order,
//   ROLLUP /
//   DRILLDOWN parent/child adjacency lists (coordinate probes when the
//             addressed cell is absent from the cube),
//   SURPRISES /
//   REVERSALS one shared pass over the dense cell array, evaluating every
//             such query per cell via the adjacency lists (the explorer's
//             per-cell evaluators) — with B such queries the cube is
//             walked once, not B times.
//
// No verb scans the full cube per call except the shared analytic pass,
// and that pass is amortised across the batch.

#ifndef SCUBE_QUERY_EXECUTOR_H_
#define SCUBE_QUERY_EXECUTOR_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "cube/cube_view.h"
#include "cube/explorer.h"
#include "query/ast.h"
#include "query/context.h"
#include "query/query_result.h"
#include "query/row_sink.h"

namespace scube {
namespace query {

/// \brief Accounting for one streamed execution (ExecuteToSink).
struct StreamStats {
  /// sink.Begin was called — bytes may be on the wire. When false, the
  /// query failed before any output (resolution error, expired deadline)
  /// and the caller can still answer with a plain error response.
  bool begun = false;

  /// The sink stopped the stream (Row returned false) for its own reasons
  /// — typically a closed client connection. Distinct from the page limit.
  bool aborted = false;

  /// The underlying row stream ran out: there is no further page.
  bool exhausted = true;

  /// Rows delivered to the sink (after OFFSET skipping and LIMIT).
  uint64_t rows_emitted = 0;

  /// Absolute row offset (into the unpaginated stream) the next page
  /// starts at; meaningful when !exhausted.
  uint64_t next_offset = 0;

  /// Cells/candidates inspected — LIMIT and deadline pushdown stop walks
  /// early, so this can be far below the materialised path's count.
  uint64_t cells_scanned = 0;
};

/// The ORDER BY sort, shared between the executor's materialised path
/// and the scatter-gather router: a router re-sorting the merged global
/// TOPK selection must use the exact comparator (stable, undefined cells
/// last under index keys) or sharded output drifts from single-node.
void SortRows(const OrderBy& order, std::vector<ResultRow>* rows);

/// \brief Executes queries against one sealed cube snapshot.
///
/// Construction indexes the catalog (attribute/value -> item id); the
/// executor itself is immutable and safe to share across threads.
class Executor {
 public:
  explicit Executor(const cube::CubeView& view);

  /// Executes one query.
  Result<QueryResult> Execute(const Query& query,
                              const QueryContext& ctx = {}) const;

  /// Executes one query, pushing rows into `sink` as the index walks
  /// produce them (O(1) result memory for unordered verbs). The page is
  /// `query.offset` / `query.limit` over the deterministic row stream;
  /// `stats` reports whether more rows remain and where to resume.
  ///
  /// Protocol: this calls sink.Begin and sink.Row only — never
  /// sink.Finish; the caller finishes the sink with the trailer (it owns
  /// the cursor token). When the returned status is not OK and
  /// stats->begun is false, the sink was never touched.
  ///
  /// LIMIT/deadline pushdown: ranked walks, slice walks and posting-list
  /// intersections stop as soon as the page is full, the sink declines a
  /// row, or the context deadline expires (checked every few thousand
  /// candidates, not just at statement boundaries).
  Status ExecuteToSink(const Query& query, const QueryContext& ctx,
                       RowSink& sink, StreamStats* stats = nullptr) const;

  /// Executes a batch, sharing one cell pass across the analytic
  /// (SURPRISES/REVERSALS) queries. result[i] answers queries[i].
  ///
  /// The context's deadline is checked cooperatively at batch-statement
  /// boundaries and every few thousand cells inside the shared scan:
  /// queries not finalised before expiry return DeadlineExceeded (queries
  /// finalised earlier in the same batch keep their results).
  std::vector<Result<QueryResult>> ExecuteBatch(
      const std::vector<Query>& queries, const QueryContext& ctx = {}) const;

  /// Resolves attribute=value constraints into an itemset of the given
  /// kind. NotFound for unknown attributes/values, InvalidArgument when a
  /// constraint names an attribute of the other kind (e.g. a context
  /// attribute inside `sa=`).
  Result<fpm::Itemset> ResolveItems(const std::vector<AttrValue>& constraints,
                                    relational::AttributeKind kind) const;

 private:
  const cube::CubeView& view_;
  std::unordered_map<std::string, fpm::ItemId> item_by_key_;  // attr \x1F value
  std::unordered_map<std::string, relational::AttributeKind> kind_by_attr_;
};

}  // namespace query
}  // namespace scube

#endif  // SCUBE_QUERY_EXECUTOR_H_
