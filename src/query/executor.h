// SCubeQL executor: lowers a parsed Query onto one sealed cube snapshot
// (cube::CubeView). Coordinate constraints (attribute=value) resolve to
// item ids through the view's ItemCatalog; verbs lower onto the view's
// secondary indexes:
//
//   SLICE     exact-coordinate slice groups (hash lookup -> id span), or a
//             single point lookup when both axes are given,
//   DICE      posting-list intersection over the per-item inverted lists,
//   TOPK      a walk of the view's precomputed ranked order,
//   ROLLUP /
//   DRILLDOWN parent/child adjacency lists (coordinate probes when the
//             addressed cell is absent from the cube),
//   SURPRISES /
//   REVERSALS one shared pass over the dense cell array, evaluating every
//             such query per cell via the adjacency lists (the explorer's
//             per-cell evaluators) — with B such queries the cube is
//             walked once, not B times.
//
// No verb scans the full cube per call except the shared analytic pass,
// and that pass is amortised across the batch.

#ifndef SCUBE_QUERY_EXECUTOR_H_
#define SCUBE_QUERY_EXECUTOR_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "cube/cube_view.h"
#include "cube/explorer.h"
#include "query/ast.h"
#include "query/context.h"
#include "query/query_result.h"

namespace scube {
namespace query {

/// \brief Executes queries against one sealed cube snapshot.
///
/// Construction indexes the catalog (attribute/value -> item id); the
/// executor itself is immutable and safe to share across threads.
class Executor {
 public:
  explicit Executor(const cube::CubeView& view);

  /// Executes one query.
  Result<QueryResult> Execute(const Query& query,
                              const QueryContext& ctx = {}) const;

  /// Executes a batch, sharing one cell pass across the analytic
  /// (SURPRISES/REVERSALS) queries. result[i] answers queries[i].
  ///
  /// The context's deadline is checked cooperatively at batch-statement
  /// boundaries and every few thousand cells inside the shared scan:
  /// queries not finalised before expiry return DeadlineExceeded (queries
  /// finalised earlier in the same batch keep their results).
  std::vector<Result<QueryResult>> ExecuteBatch(
      const std::vector<Query>& queries, const QueryContext& ctx = {}) const;

  /// Resolves attribute=value constraints into an itemset of the given
  /// kind. NotFound for unknown attributes/values, InvalidArgument when a
  /// constraint names an attribute of the other kind (e.g. a context
  /// attribute inside `sa=`).
  Result<fpm::Itemset> ResolveItems(const std::vector<AttrValue>& constraints,
                                    relational::AttributeKind kind) const;

 private:
  const cube::CubeView& view_;
  std::unordered_map<std::string, fpm::ItemId> item_by_key_;  // attr \x1F value
  std::unordered_map<std::string, relational::AttributeKind> kind_by_attr_;
};

}  // namespace query
}  // namespace scube

#endif  // SCUBE_QUERY_EXECUTOR_H_
