// SCubeQL executor: lowers a parsed Query onto one immutable cube
// snapshot. Coordinate constraints (attribute=value) resolve to item ids
// through the cube's ItemCatalog; navigation verbs map onto
// SegregationCube lookups, analytic verbs onto the cube explorer.
//
// ExecuteBatch shares a single pass over the cube's cells across every
// scan-shaped query in the batch (SLICE on one axis, DICE, TOPK) — the
// batched-scan idiom: with B such queries the cube is walked once, not B
// times. Point lookups (ROLLUP, DRILLDOWN, fully-addressed SLICE) and the
// explorer verbs (SURPRISES, REVERSALS) run per query.

#ifndef SCUBE_QUERY_EXECUTOR_H_
#define SCUBE_QUERY_EXECUTOR_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "cube/cube.h"
#include "cube/explorer.h"
#include "query/ast.h"
#include "query/query_result.h"

namespace scube {
namespace query {

/// \brief Executes queries against one cube snapshot.
///
/// Construction indexes the catalog (attribute/value -> item id); the
/// executor itself is immutable and safe to share across threads.
class Executor {
 public:
  explicit Executor(const cube::SegregationCube& cube);

  /// Executes one query.
  Result<QueryResult> Execute(const Query& query) const;

  /// Executes a batch, sharing one cell scan across scan-shaped queries.
  /// result[i] answers queries[i].
  std::vector<Result<QueryResult>> ExecuteBatch(
      const std::vector<Query>& queries) const;

  /// Resolves attribute=value constraints into an itemset of the given
  /// kind. NotFound for unknown attributes/values, InvalidArgument when a
  /// constraint names an attribute of the other kind (e.g. a context
  /// attribute inside `sa=`).
  Result<fpm::Itemset> ResolveItems(const std::vector<AttrValue>& constraints,
                                    relational::AttributeKind kind) const;

 private:
  const cube::SegregationCube& cube_;
  std::unordered_map<std::string, fpm::ItemId> item_by_key_;  // attr \x1F value
  std::unordered_map<std::string, relational::AttributeKind> kind_by_attr_;
};

}  // namespace query
}  // namespace scube

#endif  // SCUBE_QUERY_EXECUTOR_H_
