// SCubeQL parser: text -> Query AST.
//
// Grammar (keywords case-insensitive; values may be 'quoted' for spaces):
//
//   query      := verb [FROM ident ['@' int]] [where] [order] [LIMIT int]
//   verb       := SLICE coords | DICE coords
//              | ROLLUP [coords] | DRILLDOWN [coords]
//              | TOPK int BY index
//              | SURPRISES [BY index] [MINDELTA num]
//              | REVERSALS [BY index] [MINGAP num]
//   coords     := part [ '|' part ]
//   part       := ('sa' | 'ca') '=' assign ('&' assign)*
//   assign     := ident '=' value
//   where      := WHERE cond (AND cond)*
//   cond       := ('T' | 'M') '>=' int
//   order      := ORDER BY key [ASC | DESC]
//   key        := 'T' | 'M' | index
//   index      := dissimilarity | gini | information | isolation
//              | interaction | atkinson
//
// Errors carry the column of the offending token, e.g.
//   ParseError: col 18: expected '=' after attribute 'region', got '&'

#ifndef SCUBE_QUERY_PARSER_H_
#define SCUBE_QUERY_PARSER_H_

#include <string>

#include "common/result.h"
#include "query/ast.h"

namespace scube {
namespace query {

/// Parses one SCubeQL query. ParseError with column context on bad input.
Result<Query> Parse(const std::string& text);

}  // namespace query
}  // namespace scube

#endif  // SCUBE_QUERY_PARSER_H_
