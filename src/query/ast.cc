#include "query/ast.h"

#include <cstdio>

namespace scube {
namespace query {

namespace {

/// Shortest round-trip rendering of a threshold, e.g. 0.1 -> "0.1".
std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

bool NeedsQuoting(const std::string& value) {
  if (value.empty()) return true;
  for (char c : value) {
    bool plain = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                 (c >= '0' && c <= '9') || c == '_' || c == '.' || c == '-';
    if (!plain) return true;
  }
  return false;
}

std::string RenderValue(const std::string& value) {
  return NeedsQuoting(value) ? "'" + value + "'" : value;
}

std::string RenderConjunction(const std::vector<AttrValue>& items) {
  std::string out;
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += " & ";
    out += items[i].attr + "=" + RenderValue(items[i].value);
  }
  return out;
}

std::string RenderOrderKey(const OrderBy& order) {
  switch (order.key) {
    case OrderBy::Key::kContextSize:
      return "T";
    case OrderBy::Key::kMinoritySize:
      return "M";
    case OrderBy::Key::kIndex:
      break;
  }
  return indexes::IndexKindToString(order.index);
}

}  // namespace

const char* VerbToString(Verb verb) {
  switch (verb) {
    case Verb::kSlice:
      return "SLICE";
    case Verb::kDice:
      return "DICE";
    case Verb::kRollup:
      return "ROLLUP";
    case Verb::kDrilldown:
      return "DRILLDOWN";
    case Verb::kTopK:
      return "TOPK";
    case Verb::kSurprises:
      return "SURPRISES";
    case Verb::kReversals:
      return "REVERSALS";
  }
  return "?";
}

bool Query::operator==(const Query& other) const {
  return verb == other.verb && cube == other.cube &&
         cube_version == other.cube_version && sa == other.sa &&
         ca == other.ca && k == other.k && by == other.by &&
         threshold == other.threshold && min_t == other.min_t &&
         min_m == other.min_m && order == other.order &&
         limit == other.limit && offset == other.offset;
}

std::string Canonical(const Query& query) {
  std::string out = VerbToString(query.verb);
  switch (query.verb) {
    case Verb::kTopK:
      out += " " + std::to_string(query.k) + " BY " +
             indexes::IndexKindToString(query.by);
      break;
    case Verb::kSurprises:
      out += std::string(" BY ") + indexes::IndexKindToString(query.by) +
             " MINDELTA " + FormatDouble(query.threshold);
      break;
    case Verb::kReversals:
      out += std::string(" BY ") + indexes::IndexKindToString(query.by) +
             " MINGAP " + FormatDouble(query.threshold);
      break;
    default:
      break;
  }
  if (!query.sa.empty()) out += " sa=" + RenderConjunction(query.sa);
  if (!query.sa.empty() && !query.ca.empty()) out += " |";
  if (!query.ca.empty()) out += " ca=" + RenderConjunction(query.ca);
  if (!query.cube.empty()) {
    out += " FROM " + query.cube;
    if (query.cube_version) out += "@" + std::to_string(*query.cube_version);
  }
  if (query.min_t || query.min_m) {
    out += " WHERE ";
    if (query.min_t) out += "T >= " + std::to_string(*query.min_t);
    if (query.min_t && query.min_m) out += " AND ";
    if (query.min_m) out += "M >= " + std::to_string(*query.min_m);
  }
  if (query.order) {
    out += " ORDER BY " + RenderOrderKey(*query.order) +
           (query.order->descending ? " DESC" : " ASC");
  }
  if (query.limit) out += " LIMIT " + std::to_string(*query.limit);
  if (query.offset) out += " OFFSET " + std::to_string(*query.offset);
  return out;
}

}  // namespace query
}  // namespace scube
