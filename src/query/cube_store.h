// CubeStore: the registry between cube *builds* and cube *queries*.
//
// Pipeline runs publish immutable SegregationCube snapshots under a name;
// queries take shared_ptr snapshots and keep working on them even while a
// newer version of the same cube is being published — publishing never
// blocks readers, readers never block builds. Each publish bumps a
// monotonically increasing version, which the result cache keys on, so
// stale results age out without explicit invalidation.

#ifndef SCUBE_QUERY_CUBE_STORE_H_
#define SCUBE_QUERY_CUBE_STORE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "cube/cube.h"
#include "query/query_result.h"
#include "scube/pipeline.h"

namespace scube {
namespace query {

/// \brief Named, versioned, immutable cube snapshots. Thread-safe.
class CubeStore {
 public:
  using Snapshot = std::shared_ptr<const cube::SegregationCube>;

  /// Publishes (or replaces) the cube under `name`; returns the new
  /// version (1 on first publish). Existing snapshots stay valid.
  uint64_t Publish(const std::string& name, cube::SegregationCube cube);

  /// Current snapshot, or nullptr when no cube has that name. When
  /// `version` is non-null it receives the snapshot's version (0 when
  /// absent) — taken under the same lock, so the pair is consistent even
  /// against concurrent publishes.
  Snapshot Get(const std::string& name, uint64_t* version = nullptr) const;

  /// Current version; 0 when absent.
  uint64_t Version(const std::string& name) const;

  /// Published cube names, sorted.
  std::vector<std::string> Names() const;

 private:
  struct Entry {
    Snapshot cube;
    uint64_t version = 0;
  };
  mutable std::mutex mu_;
  std::unordered_map<std::string, Entry> entries_;
};

/// Publishes the cube a pipeline run produced. The rest of the
/// PipelineResult (final table, clustering, timings) stays with the
/// caller; only the cube enters the serving layer.
uint64_t PublishPipelineResult(CubeStore* store, const std::string& name,
                               pipeline::PipelineResult&& result);

/// \brief LRU cache of query results, keyed by (cube, version, canonical
/// query text). Thread-safe. A new cube version changes the key, so stale
/// entries are never served and fall out through normal LRU eviction.
class ResultCache {
 public:
  explicit ResultCache(size_t capacity) : capacity_(capacity) {}

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
  };

  /// Cache lookup; refreshes recency on hit.
  std::optional<QueryResult> Get(const std::string& cube, uint64_t version,
                                 const std::string& canonical_query);

  /// Inserts (or refreshes) an entry, evicting the least-recently-used
  /// entry when over capacity. No-op when capacity is 0.
  void Put(const std::string& cube, uint64_t version,
           const std::string& canonical_query, QueryResult result);

  Stats stats() const;
  size_t size() const;
  void Clear();

 private:
  using LruList = std::list<std::pair<std::string, QueryResult>>;

  static std::string MakeKey(const std::string& cube, uint64_t version,
                             const std::string& canonical_query);

  mutable std::mutex mu_;
  size_t capacity_;
  LruList lru_;  ///< front = most recent
  std::unordered_map<std::string, LruList::iterator> index_;
  Stats stats_;
};

}  // namespace query
}  // namespace scube

#endif  // SCUBE_QUERY_CUBE_STORE_H_
