// CubeStore: the registry between cube *builds* and cube *queries*.
//
// Pipeline runs publish mutable SegregationCube builds under a name; the
// store seals each build into an immutable, indexed cube::CubeView exactly
// once at publish time (not per query) and hands out
// shared_ptr<const CubeView> snapshots. Queries keep working on their
// snapshot even while a newer version of the same cube is being published —
// publishing never blocks readers, readers never block builds.
//
// Each publish bumps a monotonically increasing version; the store retains
// the last `max_versions` sealed views per name, so `FROM name@version`
// pins can be answered for recent history. The result cache keys on the
// version, so stale results age out without explicit invalidation.

#ifndef SCUBE_QUERY_CUBE_STORE_H_
#define SCUBE_QUERY_CUBE_STORE_H_

#include <cstdint>
#include <deque>
#include <list>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/sync.h"
#include "common/trace.h"
#include "cube/cube.h"
#include "cube/cube_view.h"
#include "query/query_result.h"
#include "scube/pipeline.h"

namespace scube {
namespace query {

class Executor;

/// \brief Named, versioned, immutable sealed-cube snapshots. Thread-safe.
class CubeStore {
 public:
  using Snapshot = std::shared_ptr<const cube::CubeView>;

  /// Sealed versions retained per cube name by default.
  static constexpr size_t kDefaultMaxVersions = 4;

  explicit CubeStore(size_t max_versions = kDefaultMaxVersions)
      : max_versions_(max_versions == 0 ? 1 : max_versions) {}

  /// Sealed versions retained per name (construction-time setting).
  size_t max_versions() const { return max_versions_; }

  /// Seals the cube and publishes it under `name`; returns the new version
  /// (1 on first publish). Existing snapshots stay valid; versions older
  /// than the last `max_versions` are evicted from the store (readers
  /// holding them keep them alive). `num_threads` parallelises the seal
  /// (see SegregationCube::Seal(): 1 = sequential, 0 = hardware, N = at
  /// most N shared-pool threads) — the sealed view is identical either
  /// way, only publish latency changes. When `trace` is non-null the seal
  /// is recorded as a "build.seal" span (the same phase name
  /// bench_cube_builder reports, so publish and bench timings line up).
  uint64_t Publish(const std::string& name, cube::SegregationCube cube,
                   size_t num_threads = 1,
                   trace::TraceContext* trace = nullptr);

  /// Latest snapshot, or nullptr when no cube has that name. When
  /// `version` is non-null it receives the snapshot's version (0 when
  /// absent) — taken under the same lock, so the pair is consistent even
  /// against concurrent publishes.
  Snapshot Get(const std::string& name, uint64_t* version = nullptr) const;

  /// Exact-version snapshot (`FROM name@version`); nullptr when the name
  /// is unknown or the version was evicted / never published.
  Snapshot GetVersion(const std::string& name, uint64_t version) const;

  /// The shared Executor for one retained sealed version — built once at
  /// publish time (the executor's attribute/value item index is O(catalog)
  /// to construct, and was previously rebuilt per request/chunk/page).
  /// The returned pointer keeps the underlying snapshot alive on its own,
  /// so it stays valid after the version is evicted. Nullptr when the
  /// name/version is unknown or already evicted (callers fall back to
  /// constructing an executor from their snapshot).
  std::shared_ptr<const Executor> GetExecutor(const std::string& name,
                                              uint64_t version) const;

  /// Current version; 0 when absent.
  uint64_t Version(const std::string& name) const;

  /// Versions currently retained for `name`, ascending; empty when absent.
  std::vector<uint64_t> RetainedVersions(const std::string& name) const;

  /// Published cube names, sorted.
  std::vector<std::string> Names() const;

 private:
  struct SealedVersion {
    uint64_t version = 0;
    Snapshot view;
    /// Built at publish; its control block co-owns the snapshot.
    std::shared_ptr<const Executor> executor;
  };
  struct Entry {
    uint64_t latest = 0;
    /// Ascending by version; at most max_versions_.
    std::deque<SealedVersion> versions;
  };
  const size_t max_versions_;
  mutable sync::Mutex mu_;
  std::unordered_map<std::string, Entry> entries_ GUARDED_BY(mu_);
};

/// Publishes the cube a pipeline run produced. The rest of the
/// PipelineResult (final table, clustering, timings) stays with the
/// caller; only the cube enters the serving layer. `num_threads`
/// parallelises the seal (typically forwarded from the pipeline's
/// cube.num_threads option).
uint64_t PublishPipelineResult(CubeStore* store, const std::string& name,
                               pipeline::PipelineResult&& result,
                               size_t num_threads = 1);

/// \brief LRU cache of query results, keyed by (cube, version, canonical
/// query text). Thread-safe. A new cube version changes the key, so stale
/// entries are never served and fall out through normal LRU eviction.
class ResultCache {
 public:
  explicit ResultCache(size_t capacity) : capacity_(capacity) {}

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
  };

  /// Cache lookup; refreshes recency on hit.
  std::optional<QueryResult> Get(const std::string& cube, uint64_t version,
                                 const std::string& canonical_query);

  /// Inserts (or refreshes) an entry, evicting the least-recently-used
  /// entry when over capacity. No-op when capacity is 0.
  void Put(const std::string& cube, uint64_t version,
           const std::string& canonical_query, QueryResult result);

  Stats stats() const;
  size_t size() const;
  void Clear();

  /// The `n` most-hit canonical query texts cached for `cube`, hottest
  /// first (hit counts summed across cube versions, ties broken by
  /// recency). This is the publish-time warming set: re-executing these
  /// against a freshly published version refills the cache before organic
  /// traffic misses.
  std::vector<std::string> Hottest(const std::string& cube, size_t n) const;

 private:
  /// Key components are stored once; the flat lookup key (see MakeKey)
  /// is rebuilt on demand (eviction) rather than duplicated per entry.
  struct Entry {
    std::string cube;       ///< cube name
    uint64_t version = 0;   ///< cube version
    std::string canonical;  ///< canonical query text
    uint64_t hits = 0;      ///< Get() hits on this entry
    QueryResult result;
  };
  using LruList = std::list<Entry>;

  static std::string MakeKey(const std::string& cube, uint64_t version,
                             const std::string& canonical_query);

  mutable sync::Mutex mu_;
  size_t capacity_;
  LruList lru_ GUARDED_BY(mu_);  ///< front = most recent
  std::unordered_map<std::string, LruList::iterator> index_ GUARDED_BY(mu_);
  Stats stats_ GUARDED_BY(mu_);
};

}  // namespace query
}  // namespace scube

#endif  // SCUBE_QUERY_CUBE_STORE_H_
