#include "query/query_result.h"

#include <cstdio>

#include "common/string_util.h"

namespace scube {
namespace query {

namespace {

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

/// Escapes a CSV field (quotes when it contains comma/quote/newline).
std::string CsvField(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

// JSON string escaping is shared with the HTTP front-end (scube::JsonQuote,
// common/string_util.h) so the /query handler and the result serialiser
// cannot drift.
std::string JsonString(const std::string& s) { return JsonQuote(s); }

}  // namespace

std::string ToCsv(const QueryResult& result) {
  std::string out = "sa,ca,T,M,units";
  for (indexes::IndexKind kind : indexes::AllIndexKinds()) {
    out += ",";
    out += indexes::IndexKindToString(kind);
  }
  if (result.has_value) out += ",value";
  if (result.has_aux) out += "," + result.aux_name;
  if (result.has_aux2) out += "," + result.aux2_name;
  if (result.has_tag) out += "," + result.tag_name;
  out += '\n';

  for (const ResultRow& row : result.rows) {
    out += CsvField(row.sa) + "," + CsvField(row.ca) + "," +
           std::to_string(row.t) + "," + std::to_string(row.m) + "," +
           std::to_string(row.units);
    for (indexes::IndexKind kind : indexes::AllIndexKinds()) {
      out += ",";
      if (row.defined) {
        out += FormatDouble(row.indexes[static_cast<size_t>(kind)]);
      }
    }
    if (result.has_value) out += "," + FormatDouble(row.value);
    if (result.has_aux) out += "," + FormatDouble(row.aux);
    if (result.has_aux2) out += "," + FormatDouble(row.aux2);
    if (result.has_tag) out += "," + CsvField(row.tag);
    out += '\n';
  }
  return out;
}

std::string ToJson(const QueryResult& result) {
  std::string out = "{\"verb\":";
  out += JsonString(VerbToString(result.verb));
  out += ",\"by\":";
  out += JsonString(indexes::IndexKindToString(result.by));
  out += ",\"cells_scanned\":" + std::to_string(result.cells_scanned);
  out += ",\"rows\":[";
  for (size_t i = 0; i < result.rows.size(); ++i) {
    const ResultRow& row = result.rows[i];
    if (i > 0) out += ',';
    out += "{\"sa\":" + JsonString(row.sa) + ",\"ca\":" + JsonString(row.ca) +
           ",\"T\":" + std::to_string(row.t) +
           ",\"M\":" + std::to_string(row.m) +
           ",\"units\":" + std::to_string(row.units) + ",\"indexes\":{";
    bool first = true;
    for (indexes::IndexKind kind : indexes::AllIndexKinds()) {
      if (!first) out += ',';
      first = false;
      out += JsonString(indexes::IndexKindToString(kind));
      out += ':';
      out += row.defined
                 ? FormatDouble(row.indexes[static_cast<size_t>(kind)])
                 : "null";
    }
    out += '}';
    if (result.has_value) out += ",\"value\":" + FormatDouble(row.value);
    if (result.has_aux) {
      out += "," + JsonString(result.aux_name) + ":" + FormatDouble(row.aux);
    }
    if (result.has_aux2) {
      out += "," + JsonString(result.aux2_name) + ":" + FormatDouble(row.aux2);
    }
    if (result.has_tag) {
      out += "," + JsonString(result.tag_name) + ":" + JsonString(row.tag);
    }
    out += '}';
  }
  out += "]}";
  return out;
}

}  // namespace query
}  // namespace scube
