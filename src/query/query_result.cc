#include "query/query_result.h"

#include "query/row_sink.h"

namespace scube {
namespace query {

// Both renderings replay the materialised result through the streaming
// writers (query/row_sink.h): one code path produces the bytes whether the
// answer was streamed live or served from the cache, so the two can never
// drift apart.

std::string ToCsv(const QueryResult& result) {
  std::string out;
  CsvWriter writer([&out](std::string_view chunk) {
    out.append(chunk);
    return true;
  });
  ReplayResult(result, writer);
  return out;
}

std::string ToJson(const QueryResult& result) {
  std::string out;
  JsonWriter writer([&out](std::string_view chunk) {
    out.append(chunk);
    return true;
  });
  ReplayResult(result, writer);
  return out;
}

}  // namespace query
}  // namespace scube
