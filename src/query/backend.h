// QueryBackend: the serving-layer seam between scubed's HTTP surface and
// whatever answers SCubeQL statements behind it.
//
// Two implementations exist:
//   query::QueryService      one process, one CubeStore (the classic path)
//   cluster::ScatterExecutor a router fanning statements out over shard
//                            backends and merging their streams
//
// The router/server stack (server/router.h, server/server.h) programs
// against this interface only, so a scubed binary serves either mode with
// the same HTTP envelope, metrics and streaming contract.

#ifndef SCUBE_QUERY_BACKEND_H_
#define SCUBE_QUERY_BACKEND_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "query/context.h"
#include "query/query_result.h"
#include "query/row_sink.h"

namespace scube {
namespace query {

/// \brief Monotonic serving counters (exported by scubed's /metrics).
struct ServiceStats {
  uint64_t accepted = 0;          ///< queries admitted past the queue bound
  uint64_t rejected = 0;          ///< queries shed by admission control
  uint64_t deadline_expired = 0;  ///< queries answered DeadlineExceeded
  uint64_t completed = 0;         ///< admitted queries answered (any status)
};

/// \brief The answer to one query text.
struct QueryResponse {
  std::string text;       ///< the query as submitted
  std::string canonical;  ///< normalised form (empty on parse errors)
  std::string cube;       ///< resolved cube name
  std::string verb;       ///< SCubeQL verb ("slice", "topk", …; empty on
                          ///< parse errors) — the per-verb histogram label
  uint64_t cube_version = 0;

  Status status;       ///< parse / resolution / execution outcome
  QueryResult result;  ///< valid iff status.ok()

  /// Stream fingerprint (CursorQueryHash) embedded in resume cursors so a
  /// cursor cannot be replayed against a different statement.
  uint64_t query_hash = 0;

  bool cache_hit = false;
  double parse_ms = 0.0;
  /// Execution wall time. Queries answered inside a shared-scan chunk
  /// report the chunk's time (`shared_batch` tells how many queries
  /// amortised that scan); cache hits report ~0.
  double exec_ms = 0.0;
  uint32_t shared_batch = 1;
};

/// \brief Outcome of one streamed execution (ExecuteStreaming).
struct StreamOutcome {
  std::string text;       ///< the query as submitted
  std::string canonical;  ///< normalised form (empty on parse errors)
  std::string cube;       ///< resolved cube name
  std::string verb;       ///< SCubeQL verb (empty on parse errors)
  uint64_t cube_version = 0;

  Status status;  ///< parse / resolution / execution outcome

  /// The sink received Begin (and possibly rows) — bytes may already be
  /// on the wire. False on errors caught before any output, which can
  /// still be answered with a plain (non-streamed) error response.
  bool begun = false;

  bool cache_hit = false;
  uint64_t rows = 0;           ///< rows delivered to the sink
  uint64_t cells_scanned = 0;  ///< scan accounting (pushdown-bounded)

  /// Resume token for the next page; empty when the stream is
  /// exhausted (or the client aborted mid-stream).
  std::string next_cursor;

  double exec_ms = 0.0;
};

/// \brief One published cube as reported by GET /cubes and /healthz.
struct CubeInfo {
  std::string name;
  uint64_t version = 0;
  std::vector<uint64_t> retained;
  uint64_t cells = 0;
  uint64_t defined_cells = 0;
};

/// \brief Anything that answers SCubeQL statements for the HTTP surface.
/// Implementations must be thread-safe: the server calls concurrently
/// from every connection handler thread.
class QueryBackend {
 public:
  virtual ~QueryBackend() = default;

  /// Parses and executes a batch; responses[i] answers texts[i].
  virtual std::vector<QueryResponse> ExecuteBatch(
      const std::vector<std::string>& texts, const QueryContext& ctx) = 0;

  /// Streams one query's answer into `sink` on the caller's thread
  /// (Begin -> rows -> Finish). `cursor` resumes a previous page.
  virtual StreamOutcome ExecuteStreaming(const std::string& text,
                                         RowSink& sink,
                                         const QueryContext& ctx,
                                         const std::string& cursor) = 0;

  /// Parses and executes one query (line protocol). Default: a
  /// single-statement batch.
  virtual QueryResponse ExecuteOne(const std::string& text,
                                   const QueryContext& ctx) {
    return ExecuteBatch({text}, ctx).front();
  }

  /// Serving counters snapshot (the scubed_queries_* series).
  virtual ServiceStats stats() const = 0;

  /// Published cubes as seen by this backend (GET /cubes). A scatter
  /// backend reports the intersection its shards agree on.
  virtual std::vector<CubeInfo> ListCubes() const = 0;

  /// Appends backend-specific Prometheus series to the shared /metrics
  /// exposition (queue depth and cache counters for a QueryService,
  /// per-shard fanout series for a scatter router).
  virtual void AppendBackendMetrics(std::string* out) const {
    (void)out;
  }
};

}  // namespace query
}  // namespace scube

#endif  // SCUBE_QUERY_BACKEND_H_
