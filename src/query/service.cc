#include "query/service.h"

#include <algorithm>
#include <map>
#include <memory>

#include "common/timer.h"
#include "query/executor.h"
#include "query/parser.h"

namespace scube {
namespace query {

QueryService::QueryService(CubeStore* store, ServiceOptions options)
    : store_(store),
      options_(std::move(options)),
      cache_(options_.cache_capacity) {
  options_.num_workers = std::max<size_t>(1, options_.num_workers);
  workers_.reserve(options_.num_workers);
  for (size_t i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

QueryService::~QueryService() {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void QueryService::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void QueryService::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    queue_.push_back(std::move(task));
  }
  queue_cv_.notify_one();
}

QueryResponse QueryService::ExecuteOne(const std::string& text) {
  return std::move(ExecuteBatch({text})[0]);
}

std::vector<QueryResponse> QueryService::ExecuteBatch(
    const std::vector<std::string>& texts) {
  std::vector<QueryResponse> responses(texts.size());

  // --- parse, resolve cube, consult the cache -----------------------------
  // A miss is one distinct (canonical) query awaiting execution, plus every
  // response slot it answers: duplicates inside a batch execute once.
  struct Miss {
    std::vector<size_t> indices;
    Query query;
  };
  // Misses grouped by cube snapshot identity (name + version).
  struct Group {
    CubeStore::Snapshot snapshot;
    std::vector<Miss> misses;
    std::unordered_map<std::string, size_t> by_canonical;  // -> misses index
  };
  std::map<std::string, Group> groups;  // key: name \x1F version

  for (size_t i = 0; i < texts.size(); ++i) {
    QueryResponse& resp = responses[i];
    resp.text = texts[i];

    WallTimer parse_timer;
    auto parsed = Parse(texts[i]);
    resp.parse_ms = parse_timer.Millis();
    if (!parsed.ok()) {
      resp.status = parsed.status();
      continue;
    }
    Query query = std::move(parsed).value();
    resp.canonical = Canonical(query);
    resp.cube = query.cube.empty() ? options_.default_cube : query.cube;

    uint64_t version = 0;
    CubeStore::Snapshot snapshot;
    if (query.cube_version) {
      // FROM name@version pin: the store keeps the last K sealed versions.
      version = *query.cube_version;
      snapshot = store_->GetVersion(resp.cube, version);
      if (snapshot == nullptr) {
        resp.status = Status::NotFound(
            "no version " + std::to_string(version) + " of cube '" +
            resp.cube + "' (evicted or never published)");
        continue;
      }
    } else {
      snapshot = store_->Get(resp.cube, &version);
      if (snapshot == nullptr) {
        resp.status =
            Status::NotFound("no cube published under '" + resp.cube + "'");
        continue;
      }
    }
    resp.cube_version = version;

    if (auto cached =
            cache_.Get(resp.cube, resp.cube_version, resp.canonical)) {
      resp.result = std::move(*cached);
      resp.cache_hit = true;
      continue;
    }

    std::string key = resp.cube + '\x1F' + std::to_string(resp.cube_version);
    Group& group = groups[key];
    group.snapshot = std::move(snapshot);
    auto [it, inserted] =
        group.by_canonical.emplace(resp.canonical, group.misses.size());
    if (inserted) {
      group.misses.push_back(Miss{{i}, std::move(query)});
    } else {
      group.misses[it->second].indices.push_back(i);
    }
  }

  if (groups.empty()) return responses;

  // --- fan the misses out to the worker pool ------------------------------
  // Each chunk shares one cube scan; chunks across (and within) groups run
  // concurrently. With G groups and W workers, each group gets ~W/G chunks.
  struct Chunk {
    const Group* group;
    std::vector<Miss> misses;
    std::vector<QueryResponse>* responses;
    ResultCache* cache;
    std::string cube_name;
    uint64_t cube_version;
  };
  std::vector<std::unique_ptr<Chunk>> chunks;
  size_t chunks_per_group =
      std::max<size_t>(1, options_.num_workers / groups.size());
  for (auto& [key, group] : groups) {
    size_t n = group.misses.size();
    size_t num_chunks = std::min(n, chunks_per_group);
    size_t base = n / num_chunks, extra = n % num_chunks;
    size_t next = 0;
    for (size_t c = 0; c < num_chunks; ++c) {
      size_t take = base + (c < extra ? 1 : 0);
      auto chunk = std::make_unique<Chunk>();
      chunk->group = &group;
      chunk->responses = &responses;
      chunk->cache = &cache_;
      const Miss& first = group.misses[next];
      chunk->cube_name = responses[first.indices[0]].cube;
      chunk->cube_version = responses[first.indices[0]].cube_version;
      chunk->misses.assign(
          std::make_move_iterator(group.misses.begin() + next),
          std::make_move_iterator(group.misses.begin() + next + take));
      next += take;
      chunks.push_back(std::move(chunk));
    }
  }

  std::mutex done_mu;
  std::condition_variable done_cv;
  size_t remaining = chunks.size();

  for (auto& chunk_ptr : chunks) {
    Chunk* chunk = chunk_ptr.get();
    Submit([chunk, &done_mu, &done_cv, &remaining] {
      WallTimer timer;
      Executor executor(*chunk->group->snapshot);
      std::vector<Query> queries;
      queries.reserve(chunk->misses.size());
      for (const Miss& miss : chunk->misses) queries.push_back(miss.query);
      auto results = executor.ExecuteBatch(queries);
      double elapsed = timer.Millis();

      for (size_t i = 0; i < chunk->misses.size(); ++i) {
        bool cached = false;
        for (size_t slot : chunk->misses[i].indices) {
          QueryResponse& resp = (*chunk->responses)[slot];
          resp.exec_ms = elapsed;
          resp.shared_batch = static_cast<uint32_t>(chunk->misses.size());
          if (!results[i].ok()) {
            resp.status = results[i].status();
            continue;
          }
          resp.result = results[i].value();
          if (!cached) {
            chunk->cache->Put(chunk->cube_name, chunk->cube_version,
                              resp.canonical, resp.result);
            cached = true;
          }
        }
      }
      {
        // Notify while holding the lock: the batch thread cannot observe
        // remaining == 0 (and destroy done_cv) before this worker is done
        // touching it.
        std::lock_guard<std::mutex> lock(done_mu);
        --remaining;
        done_cv.notify_one();
      }
    });
  }

  std::unique_lock<std::mutex> lock(done_mu);
  done_cv.wait(lock, [&remaining] { return remaining == 0; });
  return responses;
}

}  // namespace query
}  // namespace scube
