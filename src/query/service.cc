#include "query/service.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>

#include "common/logging.h"
#include "common/timer.h"
#include "common/trace.h"
#include "query/executor.h"
#include "query/parser.h"

namespace scube {
namespace query {

namespace {

/// Stamps resume tokens onto answers whose row stream has more pages:
/// the token pins the exact snapshot (name@version) plus the absolute
/// resume position, so the next page continues the same deterministic
/// stream. Deterministic, so cached and freshly executed answers carry
/// identical tokens.
void StampCursor(QueryResponse* resp) {
  if (!resp->status.ok() || resp->result.exhausted) return;
  resp->result.next_cursor =
      EncodeCursor(Cursor{resp->cube, resp->cube_version,
                          resp->result.next_offset, resp->query_hash});
}

/// A cached answer stamped with merge keys serves any request; a keyless
/// one cannot answer a merge-keys request (the shard wire path) — that
/// request must re-execute so its rows carry keys, and the re-execution's
/// Put upgrades the entry.
bool UsableFromCache(const QueryResult& result, const QueryContext& ctx) {
  return !ctx.merge_keys || result.rows.empty() ||
         !result.rows.front().skey.empty();
}

/// Prometheus exposition helpers for AppendBackendMetrics (same output
/// shape as server/metrics.cc renders for the shared series).
void MetricCounter(std::string* out, const char* name, uint64_t value,
                   const char* help) {
  *out += "# HELP ";
  *out += name;
  *out += ' ';
  *out += help;
  *out += "\n# TYPE ";
  *out += name;
  *out += " counter\n";
  *out += name;
  *out += ' ';
  *out += std::to_string(value);
  *out += '\n';
}

void MetricGauge(std::string* out, const char* name, double value,
                 const char* help) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", value);
  *out += "# HELP ";
  *out += name;
  *out += ' ';
  *out += help;
  *out += "\n# TYPE ";
  *out += name;
  *out += " gauge\n";
  *out += name;
  *out += ' ';
  *out += buf;
  *out += '\n';
}

/// Forwards a stream to `out` while materialising a copy for the result
/// cache — up to `max_rows` rows, beyond which the copy is dropped and the
/// stream stays O(1): giant answers flow through uncached.
class CachingTee : public RowSink {
 public:
  CachingTee(RowSink& out, size_t max_rows)
      : out_(out), max_rows_(max_rows) {}

  bool Begin(const ResultHeader& header) override {
    vec_.Begin(header);
    return out_.Begin(header);
  }

  bool Row(const ResultRow& row) override {
    CollectForCache(row);
    return out_.Row(row);
  }

  bool Row(ResultRow&& row) override {
    CollectForCache(row);  // the cache copy; the original moves onward
    return out_.Row(std::move(row));
  }

  void Finish(const ResultTrailer& trailer) override {
    vec_.Finish(trailer);
    out_.Finish(trailer);
  }

  bool cacheable() const { return cacheable_; }
  VectorSink& collected() { return vec_; }

 private:
  void CollectForCache(const ResultRow& row) {
    if (!cacheable_) return;
    if (vec_.result().rows.size() >= max_rows_) {
      cacheable_ = false;
      vec_ = VectorSink();  // free what was collected
    } else {
      vec_.Row(row);
    }
  }

  RowSink& out_;
  size_t max_rows_;
  VectorSink vec_;
  bool cacheable_ = true;
};

}  // namespace

QueryService::QueryService(CubeStore* store, ServiceOptions options)
    : store_(store),
      options_(std::move(options)),
      cache_(options_.cache_capacity) {
  options_.num_workers = std::max<size_t>(1, options_.num_workers);
  workers_.reserve(options_.num_workers);
  for (size_t i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

QueryService::~QueryService() { Shutdown(); }

void QueryService::Shutdown() {
  {
    sync::MutexLock lock(&queue_mu_);
    stopping_ = true;
  }
  queue_cv_.SignalAll();
  // Workers drain the queue before exiting, so every admitted batch's
  // chunks still execute and their ExecuteBatch callers return normally.
  // join_mu_ serialises concurrent Shutdown() callers: every caller
  // (including the destructor) blocks until the join has finished, so
  // no caller can start tearing the service down while another is still
  // joining.
  sync::MutexLock join_lock(&join_mu_);
  if (joined_) return;
  for (std::thread& worker : workers_) worker.join();
  joined_ = true;
}

void QueryService::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      sync::MutexLock lock(&queue_mu_);
      while (!stopping_ && queue_.empty()) queue_cv_.Wait(&queue_mu_);
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

ServiceStats QueryService::stats() const {
  ServiceStats s;
  s.accepted = accepted_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.deadline_expired = deadline_expired_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  return s;
}

size_t QueryService::queue_depth() const {
  sync::MutexLock lock(&queue_mu_);
  return queue_.size();
}

Status QueryService::AdmitOrShed(bool stream) {
  sync::MutexLock lock(&queue_mu_);
  if (stopping_) return Status::Unavailable("service is shutting down");
  const size_t backlog =
      queue_.size() + streams_in_flight_.load(std::memory_order_relaxed);
  if (backlog >= options_.max_pending) {
    return Status::Unavailable(
        "admission queue full (" + std::to_string(backlog) +
        " pending >= " + std::to_string(options_.max_pending) +
        "); retry later");
  }
  if (stream) streams_in_flight_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

QueryContext QueryService::WithDefaultDeadline(const QueryContext& ctx) const {
  if (ctx.has_deadline() || options_.default_deadline_ms <= 0) return ctx;
  // Copy, don't rebuild: the context carries more than the deadline now
  // (the trace pointer), and all of it must survive defaulting.
  QueryContext with_deadline = ctx;
  with_deadline.deadline =
      QueryContext::WithTimeout(options_.default_deadline_ms).deadline;
  return with_deadline;
}

QueryResponse QueryService::ExecuteOne(const std::string& text,
                                       const QueryContext& ctx) {
  return std::move(ExecuteBatch({text}, ctx)[0]);
}

std::vector<QueryResponse> QueryService::ExecuteBatch(
    const std::vector<std::string>& texts, const QueryContext& ctx) {
  std::vector<QueryResponse> responses(texts.size());

  // --- admission control --------------------------------------------------
  // Shedding must be cheap: check the backlog before any parse or cache
  // work, and reject the whole batch when the queue is at its bound. The
  // front-end maps Unavailable to HTTP 503 + Retry-After.
  trace::Span admit_span(ctx.trace, "admit");
  Status admitted = AdmitOrShed(/*stream=*/false);
  admit_span.End();
  if (!admitted.ok()) {
    for (size_t i = 0; i < texts.size(); ++i) {
      responses[i].text = texts[i];
      responses[i].status = admitted;
    }
    rejected_.fetch_add(texts.size(), std::memory_order_relaxed);
    return responses;
  }
  accepted_.fetch_add(texts.size(), std::memory_order_relaxed);

  QueryContext context = WithDefaultDeadline(ctx);

  // --- parse, resolve cube, consult the cache -----------------------------
  // A miss is one distinct (canonical) query awaiting execution, plus every
  // response slot it answers: duplicates inside a batch execute once.
  struct Miss {
    std::vector<size_t> indices;
    Query query;
  };
  // Misses grouped by cube snapshot identity (name + version).
  struct Group {
    CubeStore::Snapshot snapshot;
    std::vector<Miss> misses;
    std::unordered_map<std::string, size_t> by_canonical;  // -> misses index
  };
  std::map<std::string, Group> groups;  // key: name \x1F version

  trace::Span prepare_span(context.trace, "prepare");
  for (size_t i = 0; i < texts.size(); ++i) {
    QueryResponse& resp = responses[i];
    resp.text = texts[i];

    WallTimer parse_timer;
    auto parsed = Parse(texts[i]);
    resp.parse_ms = parse_timer.Millis();
    if (!parsed.ok()) {
      resp.status = parsed.status();
      continue;
    }
    Query query = std::move(parsed).value();
    resp.canonical = Canonical(query);
    resp.cube = query.cube.empty() ? options_.default_cube : query.cube;
    resp.verb = VerbToString(query.verb);
    resp.query_hash = CursorQueryHash(query);

    uint64_t version = 0;
    CubeStore::Snapshot snapshot;
    if (query.cube_version) {
      // FROM name@version pin: the store keeps the last K sealed versions.
      version = *query.cube_version;
      snapshot = store_->GetVersion(resp.cube, version);
      if (snapshot == nullptr) {
        resp.status = Status::NotFound(
            "no version " + std::to_string(version) + " of cube '" +
            resp.cube + "' (evicted or never published)");
        continue;
      }
    } else {
      snapshot = store_->Get(resp.cube, &version);
      if (snapshot == nullptr) {
        resp.status =
            Status::NotFound("no cube published under '" + resp.cube + "'");
        continue;
      }
    }
    resp.cube_version = version;

    if (auto cached =
            cache_.Get(resp.cube, resp.cube_version, resp.canonical);
        cached && UsableFromCache(*cached, context)) {
      resp.result = std::move(*cached);
      resp.cache_hit = true;
      continue;
    }

    std::string key = resp.cube + '\x1F' + std::to_string(resp.cube_version);
    Group& group = groups[key];
    group.snapshot = std::move(snapshot);
    auto [it, inserted] =
        group.by_canonical.emplace(resp.canonical, group.misses.size());
    if (inserted) {
      group.misses.push_back(Miss{{i}, std::move(query)});
    } else {
      group.misses[it->second].indices.push_back(i);
    }
  }
  prepare_span.End();

  if (groups.empty()) {
    completed_.fetch_add(texts.size(), std::memory_order_relaxed);
    for (QueryResponse& resp : responses) StampCursor(&resp);
    return responses;
  }

  // --- fan the misses out to the worker pool ------------------------------
  // Each chunk shares one cube scan; chunks across (and within) groups run
  // concurrently. With G groups and W workers, each group gets ~W/G chunks.
  struct Chunk {
    const Group* group;
    std::vector<Miss> misses;
    std::vector<QueryResponse>* responses;
    ResultCache* cache;
    std::string cube_name;
    uint64_t cube_version;
    QueryContext ctx;
    /// When the chunk entered the worker queue; the gap to execution start
    /// is recorded retroactively as the "queue_wait" span.
    QueryContext::Clock::time_point enqueued;
  };
  std::vector<std::unique_ptr<Chunk>> chunks;
  size_t chunks_per_group =
      std::max<size_t>(1, options_.num_workers / groups.size());
  for (auto& [key, group] : groups) {
    size_t n = group.misses.size();
    size_t num_chunks = std::min(n, chunks_per_group);
    size_t base = n / num_chunks, extra = n % num_chunks;
    size_t next = 0;
    for (size_t c = 0; c < num_chunks; ++c) {
      size_t take = base + (c < extra ? 1 : 0);
      auto chunk = std::make_unique<Chunk>();
      chunk->group = &group;
      chunk->responses = &responses;
      chunk->cache = &cache_;
      const Miss& first = group.misses[next];
      chunk->cube_name = responses[first.indices[0]].cube;
      chunk->cube_version = responses[first.indices[0]].cube_version;
      chunk->ctx = context;
      chunk->misses.assign(
          std::make_move_iterator(group.misses.begin() + next),
          std::make_move_iterator(group.misses.begin() + next + take));
      next += take;
      chunks.push_back(std::move(chunk));
    }
  }

  sync::Mutex done_mu;
  sync::CondVar done_cv;
  size_t remaining = chunks.size();  // guarded by done_mu (local: the
                                     // analysis cannot annotate locals)

  auto run_chunk = [this, &done_mu, &done_cv, &remaining](Chunk* chunk) {
    if (chunk->ctx.trace != nullptr) {
      // Queue wait spans two threads (enqueue on the batch thread, start
      // here), so it is recorded retroactively rather than via RAII.
      chunk->ctx.trace->Record("queue_wait", chunk->enqueued,
                               QueryContext::Clock::now());
    }
    trace::Span execute_span(chunk->ctx.trace, "execute");
    // A chunk whose deadline passed while it sat in the queue answers
    // DeadlineExceeded outright — no executor construction, no scan: the
    // worker moves straight on to still-live work.
    if (chunk->ctx.Expired()) {
      for (const Miss& miss : chunk->misses) {
        for (size_t slot : miss.indices) {
          (*chunk->responses)[slot].status = Status::DeadlineExceeded(
              "query deadline expired while queued");
        }
      }
    } else {
      WallTimer timer;
      // The per-snapshot executor is built once at publish; falling back
      // to a one-off build only happens if the version was evicted after
      // prepare (the chunk's snapshot keeps the view itself alive).
      std::shared_ptr<const Executor> executor =
          store_->GetExecutor(chunk->cube_name, chunk->cube_version);
      if (executor == nullptr) {
        executor = std::make_shared<const Executor>(*chunk->group->snapshot);
      }
      std::vector<Query> queries;
      queries.reserve(chunk->misses.size());
      for (const Miss& miss : chunk->misses) queries.push_back(miss.query);
      auto results = executor->ExecuteBatch(queries, chunk->ctx);
      double elapsed = timer.Millis();

      for (size_t i = 0; i < chunk->misses.size(); ++i) {
        bool cached = false;
        for (size_t slot : chunk->misses[i].indices) {
          QueryResponse& resp = (*chunk->responses)[slot];
          resp.exec_ms = elapsed;
          resp.shared_batch = static_cast<uint32_t>(chunk->misses.size());
          if (!results[i].ok()) {
            resp.status = results[i].status();
            continue;
          }
          resp.result = results[i].value();
          if (!cached) {
            chunk->cache->Put(chunk->cube_name, chunk->cube_version,
                              resp.canonical, resp.result);
            cached = true;
          }
        }
      }
    }
    // The span must close BEFORE the notify below: once remaining hits 0
    // the batch thread returns and the caller may destroy the
    // TraceContext, so no touch of it may follow the notify.
    execute_span.End();
    {
      // Notify while holding the lock: the batch thread cannot observe
      // remaining == 0 (and destroy done_cv) before this worker is done
      // touching it.
      sync::MutexLock lock(&done_mu);
      --remaining;
      done_cv.Signal();
    }
  };

  // Enqueue every chunk in one critical section so no chunk can slip in
  // after Shutdown() flipped `stopping_` (workers drain, then exit; a
  // later enqueue would hang this batch forever).
  bool enqueued = false;
  {
    sync::MutexLock lock(&queue_mu_);
    if (!stopping_) {
      const auto now = QueryContext::Clock::now();
      for (auto& chunk_ptr : chunks) {
        Chunk* chunk = chunk_ptr.get();
        chunk->enqueued = now;
        queue_.push_back([chunk, &run_chunk] { run_chunk(chunk); });
      }
      enqueued = true;
    }
  }
  uint64_t shed_in_race = 0;
  if (enqueued) {
    queue_cv_.SignalAll();
    sync::MutexLock lock(&done_mu);
    while (remaining != 0) done_cv.Wait(&done_mu);
  } else {
    // Lost the race with Shutdown(): answer the misses as shed. They
    // move from accepted to rejected (and are not completed), keeping
    // the invariants accepted == completed + in-flight and
    // accepted + rejected == submitted.
    for (auto& chunk_ptr : chunks) {
      for (const Miss& miss : chunk_ptr->misses) {
        for (size_t slot : miss.indices) {
          responses[slot].status =
              Status::Unavailable("service is shutting down");
          ++shed_in_race;
        }
      }
    }
    rejected_.fetch_add(shed_in_race, std::memory_order_relaxed);
    accepted_.fetch_sub(shed_in_race, std::memory_order_relaxed);
  }

  uint64_t expired = 0;
  for (const QueryResponse& resp : responses) {
    if (resp.status.code() == StatusCode::kDeadlineExceeded) ++expired;
  }
  if (expired > 0) {
    deadline_expired_.fetch_add(expired, std::memory_order_relaxed);
  }
  completed_.fetch_add(texts.size() - shed_in_race,
                       std::memory_order_relaxed);
  for (QueryResponse& resp : responses) StampCursor(&resp);
  return responses;
}

QueryService::StreamOutcome QueryService::ExecuteStreaming(
    const std::string& text, RowSink& sink, const QueryContext& ctx,
    const std::string& cursor) {
  StreamOutcome outcome;
  outcome.text = text;

  // --- admission control: streams obey the same backlog bound as batches.
  // Streaming runs on the caller's thread, but each stream still holds a
  // cube snapshot and burns CPU, so it occupies an admission slot for its
  // whole lifetime (streams_in_flight_) and an overloaded service sheds
  // new work the same way (the front-end maps Unavailable to 503 +
  // Retry-After).
  trace::Span admit_span(ctx.trace, "admit");
  Status admitted = AdmitOrShed(/*stream=*/true);
  admit_span.End();
  if (!admitted.ok()) {
    outcome.status = std::move(admitted);
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return outcome;
  }
  accepted_.fetch_add(1, std::memory_order_relaxed);

  QueryContext context = WithDefaultDeadline(ctx);

  // Every post-admission exit funnels through here: the admission slot is
  // released exactly once, when the stream is done.
  auto finish = [this, &outcome](Status status) -> StreamOutcome& {
    streams_in_flight_.fetch_sub(1, std::memory_order_relaxed);
    outcome.status = std::move(status);
    if (outcome.status.code() == StatusCode::kDeadlineExceeded) {
      deadline_expired_.fetch_add(1, std::memory_order_relaxed);
    }
    completed_.fetch_add(1, std::memory_order_relaxed);
    return outcome;
  };

  // --- parse and resolve the snapshot -------------------------------------
  trace::Span prepare_span(context.trace, "prepare");
  auto parsed = Parse(text);
  if (!parsed.ok()) return finish(parsed.status());
  Query query = std::move(parsed).value();
  outcome.canonical = Canonical(query);
  outcome.cube = query.cube.empty() ? options_.default_cube : query.cube;
  outcome.verb = VerbToString(query.verb);
  const uint64_t query_hash = CursorQueryHash(query);

  CubeStore::Snapshot snapshot;
  uint64_t version = 0;
  if (!cursor.empty()) {
    // Resume: the token pins the snapshot the previous page walked, so the
    // stitched stream is deterministic even across publishes.
    auto decoded = DecodeCursor(cursor);
    if (!decoded.ok()) return finish(decoded.status());
    if (decoded->cube != outcome.cube) {
      return finish(Status::InvalidArgument(
          "cursor belongs to cube '" + decoded->cube +
          "', but the query addresses '" + outcome.cube + "'"));
    }
    if (decoded->query_hash != query_hash) {
      // A cursor resumes the stream that issued it; offsetting into a
      // different statement's stream would silently return wrong rows.
      return finish(Status::InvalidArgument(
          "cursor was issued for a different query; resend the original "
          "statement (the page size may change, the rest may not)"));
    }
    if (query.cube_version && *query.cube_version != decoded->version) {
      return finish(Status::InvalidArgument(
          "cursor pins version " + std::to_string(decoded->version) +
          ", but the query pins @" + std::to_string(*query.cube_version)));
    }
    version = decoded->version;
    snapshot = store_->GetVersion(outcome.cube, version);
    if (snapshot == nullptr) {
      return finish(Status::NotFound(
          "cursor version " + std::to_string(version) + " of cube '" +
          outcome.cube + "' is gone (evicted); restart the scan"));
    }
    query.offset = decoded->position;
  } else if (query.cube_version) {
    version = *query.cube_version;
    snapshot = store_->GetVersion(outcome.cube, version);
    if (snapshot == nullptr) {
      return finish(Status::NotFound(
          "no version " + std::to_string(version) + " of cube '" +
          outcome.cube + "' (evicted or never published)"));
    }
  } else {
    snapshot = store_->Get(outcome.cube, &version);
    if (snapshot == nullptr) {
      return finish(Status::NotFound("no cube published under '" +
                                     outcome.cube + "'"));
    }
  }
  outcome.cube_version = version;
  prepare_span.End();

  // --- cache: hits replay through the sink, byte-identical to a live
  // stream (cursor-resumed pages are never cached or served from cache).
  if (cursor.empty()) {
    if (auto cached = cache_.Get(outcome.cube, version, outcome.canonical);
        cached && UsableFromCache(*cached, context)) {
      outcome.cache_hit = true;
      outcome.begun = true;
      ResultTrailer trailer;
      trailer.cells_scanned = cached->cells_scanned;
      if (!cached->exhausted) {
        trailer.next_cursor = EncodeCursor(Cursor{
            outcome.cube, version, cached->next_offset, query_hash});
      }
      WallTimer timer;
      // ReplayResult suppresses the cursor when the sink aborts
      // mid-replay: a partial stream has no resume point, exactly as on
      // the live path below.
      bool aborted = false;
      trace::Span replay_span(context.trace, "cache_replay");
      outcome.rows = ReplayResult(*cached, sink, &trailer, &aborted);
      replay_span.End();
      outcome.exec_ms = timer.Millis();
      outcome.cells_scanned = cached->cells_scanned;
      outcome.next_cursor = aborted ? "" : trailer.next_cursor;
      return finish(Status::OK());
    }
  }

  // --- execute on the caller's thread, streaming as the walks produce ----
  const bool try_cache =
      cursor.empty() && options_.cache_capacity > 0;
  CachingTee tee(sink, options_.cache_max_rows);
  RowSink& target = try_cache ? static_cast<RowSink&>(tee) : sink;

  WallTimer timer;
  std::shared_ptr<const Executor> executor =
      store_->GetExecutor(outcome.cube, version);
  if (executor == nullptr) {
    // The version was evicted between snapshot resolution and here (or the
    // snapshot came from a cursor pin that outlived retention).
    executor = std::make_shared<const Executor>(*snapshot);
  }
  StreamStats stats;
  trace::Span execute_span(context.trace, "execute");
  Status status = executor->ExecuteToSink(query, context, target, &stats);
  execute_span.End();
  outcome.exec_ms = timer.Millis();
  outcome.begun = stats.begun;
  outcome.rows = stats.rows_emitted;
  outcome.cells_scanned = stats.cells_scanned;

  if (!status.ok()) {
    // A stream that failed after Begin (deadline mid-walk) is still closed
    // properly — the writer can terminate its output — but never gets a
    // resume cursor and never enters the cache.
    if (stats.begun) {
      ResultTrailer trailer;
      trailer.cells_scanned = stats.cells_scanned;
      target.Finish(trailer);
    }
    return finish(std::move(status));
  }

  ResultTrailer trailer;
  trailer.cells_scanned = stats.cells_scanned;
  if (!stats.exhausted && !stats.aborted) {
    trailer.next_cursor = EncodeCursor(
        Cursor{outcome.cube, version, stats.next_offset, query_hash});
  }
  outcome.next_cursor = trailer.next_cursor;
  target.Finish(trailer);

  if (try_cache && !stats.aborted && tee.cacheable()) {
    tee.collected().SetPagination(stats.exhausted, stats.next_offset);
    cache_.Put(outcome.cube, version, outcome.canonical,
               tee.collected().TakeResult());
  }
  return finish(Status::OK());
}

QueryService::PublishInfo QueryService::PublishAndWarm(
    const std::string& name, cube::SegregationCube cube) {
  PublishInfo info;
  // Publishes are rare and expensive enough to always trace: the span
  // summary (build.seal + warm phases) goes to the log so publish latency
  // regressions are attributable without flipping any flag.
  trace::TraceContext tc;
  // The warming set is decided by traffic up to now: the hottest cached
  // texts for this cube, across the versions currently in cache.
  std::vector<std::string> hottest = cache_.Hottest(name, options_.warm_top_n);
  info.version =
      store_->Publish(name, std::move(cube), options_.seal_threads, &tc);
  auto log_summary = [&] {
    SCUBE_LOG(Info) << "published '" << name << "' v" << info.version
                    << " warmed=" << info.warmed << " [" << tc.Summary()
                    << "]";
  };
  if (hottest.empty()) {
    log_summary();
    return info;
  }

  CubeStore::Snapshot snapshot = store_->GetVersion(name, info.version);
  if (snapshot == nullptr) {
    log_summary();
    return info;
  }

  std::vector<Query> queries;
  std::vector<std::string> canonicals;
  for (const std::string& text : hottest) {
    auto parsed = Parse(text);
    if (!parsed.ok()) continue;
    Query q = std::move(parsed).value();
    // Version-pinned texts target their old snapshot, not the new one.
    if (q.cube_version) continue;
    canonicals.push_back(Canonical(q));
    queries.push_back(std::move(q));
  }
  if (queries.empty()) {
    log_summary();
    return info;
  }

  // Warming runs on the publisher's thread, off the admission queue: it
  // cannot be shed by the very overload it exists to soften, and it does
  // not displace live traffic from the workers.
  trace::Span warm_span(&tc, "warm");
  std::shared_ptr<const Executor> executor =
      store_->GetExecutor(name, info.version);
  if (executor == nullptr) {
    executor = std::make_shared<const Executor>(*snapshot);
  }
  auto results = executor->ExecuteBatch(queries);
  for (size_t i = 0; i < results.size(); ++i) {
    if (!results[i].ok()) continue;
    cache_.Put(name, info.version, canonicals[i],
               std::move(results[i]).value());
    ++info.warmed;
  }
  warm_span.End();
  log_summary();
  return info;
}

std::vector<CubeInfo> QueryService::ListCubes() const {
  std::vector<CubeInfo> out;
  for (const std::string& name : store_->Names()) {
    uint64_t version = 0;
    CubeStore::Snapshot snapshot = store_->Get(name, &version);
    if (snapshot == nullptr) continue;
    CubeInfo info;
    info.name = name;
    info.version = version;
    info.retained = store_->RetainedVersions(name);
    info.cells = snapshot->NumCells();
    info.defined_cells = snapshot->NumDefinedCells();
    out.push_back(std::move(info));
  }
  return out;
}

void QueryService::AppendBackendMetrics(std::string* out) const {
  MetricGauge(out, "scubed_queue_depth",
              static_cast<double>(queue_depth()),
              "Worker tasks currently queued");
  ResultCache::Stats cache = cache_.stats();
  MetricCounter(out, "scubed_cache_hits_total", cache.hits,
                "Result-cache hits");
  MetricCounter(out, "scubed_cache_misses_total", cache.misses,
                "Result-cache misses");
  MetricCounter(out, "scubed_cache_evictions_total", cache.evictions,
                "Result-cache LRU evictions");
  uint64_t lookups = cache.hits + cache.misses;
  MetricGauge(out, "scubed_cache_hit_rate",
              lookups == 0 ? 0.0
                           : static_cast<double>(cache.hits) /
                                 static_cast<double>(lookups),
              "Result-cache hit fraction since start");
}

}  // namespace query
}  // namespace scube
