// QueryContext: per-request execution constraints carried alongside a
// SCubeQL batch. Today that is one thing — a deadline. The service applies
// its configured default when a request carries none; the executor checks
// the deadline cooperatively at batch-statement boundaries (and periodically
// inside the shared analytic scan), so an expired query returns
// DeadlineExceeded instead of burning a worker to completion.

#ifndef SCUBE_QUERY_CONTEXT_H_
#define SCUBE_QUERY_CONTEXT_H_

#include <chrono>
#include <limits>
#include <optional>

#include "common/trace.h"

namespace scube {
namespace query {

/// \brief Deadline (and future per-request knobs) for one query batch.
/// Cheap to copy; an empty context imposes no constraints.
struct QueryContext {
  using Clock = std::chrono::steady_clock;

  /// Absolute deadline; unset = unbounded.
  std::optional<Clock::time_point> deadline;

  /// Span sink for this request; null = tracing off (the common case —
  /// every instrumentation site passes this straight to trace::Span,
  /// which is a no-op on null). Non-owning: the router keeps the
  /// TraceContext alive for the request's duration.
  trace::TraceContext* trace = nullptr;

  /// Stamp each emitted row with an order-preserving merge key
  /// (ResultRow::skey, see query/merge_key.h). Set by the shard-side wire
  /// route so a scatter-gather router can k-way merge shard streams back
  /// into the exact single-node emission order. Costs a small allocation
  /// per row; off for ordinary requests.
  bool merge_keys = false;

  /// Scatter-gather only (?allow_partial=1): analytic verbs may answer
  /// from the shards that responded when one shard fails, instead of
  /// failing the whole request. Ignored by single-node backends.
  bool allow_partial = false;

  /// A context whose deadline is `ms` milliseconds from now. Non-positive
  /// `ms` yields an already-expired context (useful in tests).
  static QueryContext WithTimeout(double ms) {
    QueryContext ctx;
    ctx.deadline = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                      std::chrono::duration<double, std::milli>(ms));
    return ctx;
  }

  bool has_deadline() const { return deadline.has_value(); }

  /// True once the deadline has passed. Never true without a deadline.
  bool Expired() const { return deadline && Clock::now() >= *deadline; }

  /// Milliseconds until expiry; negative once expired, +infinity when
  /// unbounded.
  double RemainingMillis() const {
    if (!deadline) return std::numeric_limits<double>::infinity();
    return std::chrono::duration<double, std::milli>(*deadline - Clock::now())
        .count();
  }
};

/// \brief Amortised deadline probe for tight loops (index walks, posting
/// intersections): one clock read per `stride` ticks instead of per
/// iteration. Once expired, stays expired.
class DeadlineTicker {
 public:
  explicit DeadlineTicker(const QueryContext& ctx, uint64_t stride = 1024)
      : ctx_(&ctx), stride_(stride == 0 ? 1 : stride) {}

  /// Call once per loop iteration; true once the deadline has passed.
  /// The very first tick probes the clock, so an already-expired context
  /// stops a walk before it inspects anything.
  bool Tick() {
    if (expired_) return true;
    if (count_++ % stride_ == 0 && ctx_->Expired()) expired_ = true;
    return expired_;
  }

  bool expired() const { return expired_; }

 private:
  const QueryContext* ctx_;
  uint64_t stride_;
  uint64_t count_ = 0;
  bool expired_ = false;
};

}  // namespace query
}  // namespace scube

#endif  // SCUBE_QUERY_CONTEXT_H_
