// QueryService: the concurrent SCubeQL serving layer.
//
// One service owns a fixed pool of worker threads and an LRU result
// cache in front of a CubeStore. A batch of textual queries is parsed,
// answered from the cache where possible, and the misses are grouped by
// cube snapshot and fanned out to the workers, each worker chunk sharing
// one cube scan (Executor::ExecuteBatch). Publishing new cubes proceeds
// concurrently: in-flight queries keep their snapshot.
//
// Overload safety (the network front-end's contract):
//   - admission control: the worker queue is bounded; batches arriving
//     while the backlog is at the bound are shed immediately with
//     Unavailable (scubed turns that into HTTP 503 + Retry-After),
//   - per-query deadlines: a QueryContext deadline (or the configured
//     default) is checked cooperatively at batch-statement boundaries, so
//     expired queries return DeadlineExceeded instead of burning a worker,
//   - graceful shutdown: Shutdown() stops admitting, drains every
//     in-flight chunk, and joins the workers,
//   - publish-time warming: PublishAndWarm() re-executes the hottest
//     cached query texts against the freshly sealed view, so a publish
//     does not cliff the cache hit rate.

#ifndef SCUBE_QUERY_SERVICE_H_
#define SCUBE_QUERY_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/sync.h"
#include "query/ast.h"
#include "query/backend.h"
#include "query/context.h"
#include "query/cube_store.h"
#include "query/query_result.h"
#include "query/row_sink.h"

namespace scube {
namespace query {

/// \brief Service tuning knobs.
struct ServiceOptions {
  /// Worker threads answering queries (clamped to >= 1).
  size_t num_workers = 4;

  /// Result-cache entries across all cubes (0 disables caching).
  size_t cache_capacity = 256;

  /// Cube name used when a query has no FROM clause.
  std::string default_cube = "default";

  /// Admission bound: work arriving while the backlog — queued worker
  /// tasks plus in-flight streaming executions — is at this bound is shed
  /// with Unavailable. Streams run on their caller's thread rather than
  /// the queue, but each one pins a cube snapshot and burns CPU, so they
  /// count toward the same bound. 0 sheds everything (useful for drain
  /// tests); pick ~num_workers * expected batch latency budget.
  size_t max_pending = 256;

  /// Deadline applied to requests that carry none (milliseconds);
  /// 0 = unbounded.
  double default_deadline_ms = 0;

  /// Hottest cached query texts re-executed by PublishAndWarm().
  size_t warm_top_n = 8;

  /// Threads sealing a cube at publish time (PublishAndWarm runs the seal
  /// inline on the serving path, so this bounds publish latency):
  /// 1 = sequential, 0 = all hardware threads, N = at most N threads from
  /// the shared pool. The sealed view is identical for every setting.
  size_t seal_threads = 1;

  /// Streamed answers above this many rows are not materialised into the
  /// result cache — the streaming path's memory stays bounded no matter
  /// how large the answer is. (Batch answers are materialised by nature
  /// and cache regardless.)
  size_t cache_max_rows = 10000;
};

// ServiceStats, QueryResponse and StreamOutcome live in query/backend.h
// (shared with every QueryBackend implementation); this header keeps the
// names reachable for existing includers.

/// \brief Concurrent query server over a CubeStore. Thread-safe.
class QueryService : public QueryBackend {
 public:
  explicit QueryService(CubeStore* store, ServiceOptions options = {});
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Parses and executes one query.
  QueryResponse ExecuteOne(const std::string& text,
                           const QueryContext& ctx = {}) override;

  /// Parses and executes a batch; responses[i] answers texts[i]. When the
  /// admission queue is full every response carries Unavailable; when the
  /// context (or default) deadline expires mid-batch the unfinished
  /// responses carry DeadlineExceeded.
  std::vector<QueryResponse> ExecuteBatch(
      const std::vector<std::string>& texts,
      const QueryContext& ctx = {}) override;

  /// Streamed-execution outcome (kept as a nested alias for existing
  /// callers; the struct itself lives in query/backend.h).
  using StreamOutcome = query::StreamOutcome;

  /// Streams one query's answer into `sink` on the caller's thread
  /// (header -> rows -> trailer; the service calls sink.Finish). Shares
  /// the batch path's contract: admission control (Unavailable when the
  /// backlog is at the bound), the default deadline, the result cache —
  /// hits replay the materialised result through the sink byte-identically
  /// to a live stream; misses that stay under options().cache_max_rows
  /// rows are materialised into the cache as they stream past.
  ///
  /// `cursor` resumes a previous page: it pins the exact name@version
  /// snapshot the first page walked (NotFound once evicted) and overrides
  /// the query's OFFSET with the saved position, so stitched pages equal
  /// the unpaginated answer. Cursor-resumed requests bypass the cache.
  StreamOutcome ExecuteStreaming(const std::string& text, RowSink& sink,
                                 const QueryContext& ctx = {},
                                 const std::string& cursor = "") override;

  /// \brief Outcome of a PublishAndWarm call.
  struct PublishInfo {
    uint64_t version = 0;  ///< the newly published version
    size_t warmed = 0;     ///< cache entries pre-filled for that version
  };

  /// Publishes `cube` under `name` and immediately re-executes the
  /// hottest cached query texts for that cube (options().warm_top_n)
  /// against the fresh snapshot, pre-filling the result cache. Warming
  /// runs on the caller's thread and bypasses admission control — the
  /// publisher pays for it, traffic is not displaced. Version-pinned
  /// texts (`FROM name@v`) are skipped: they do not target the new
  /// version.
  PublishInfo PublishAndWarm(const std::string& name,
                             cube::SegregationCube cube);

  /// Stops admitting new batches, drains every queued chunk (in-flight
  /// ExecuteBatch calls complete normally) and joins the workers.
  /// Idempotent; also called by the destructor.
  void Shutdown();

  ResultCache::Stats cache_stats() const { return cache_.stats(); }
  void ClearCache() { cache_.Clear(); }
  const ServiceOptions& options() const { return options_; }

  /// Serving counters snapshot.
  ServiceStats stats() const override;

  /// Published cubes in the underlying store (GET /cubes).
  std::vector<CubeInfo> ListCubes() const override;

  /// Queue-depth gauge and result-cache counters for /metrics.
  void AppendBackendMetrics(std::string* out) const override;

  /// Worker tasks currently queued (the admission-controlled backlog).
  size_t queue_depth() const;

 private:
  void WorkerLoop();

  /// Admission check shared by the batch and streaming paths: OK to
  /// proceed, or the Unavailable shed status. The backlog is queued
  /// worker tasks plus in-flight streams; when admitting a stream, the
  /// in-flight count is bumped under the same lock (released by the
  /// stream's finish path).
  Status AdmitOrShed(bool stream);

  /// Applies the configured default deadline to contexts carrying none.
  QueryContext WithDefaultDeadline(const QueryContext& ctx) const;

  CubeStore* store_;
  ServiceOptions options_;
  ResultCache cache_;

  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> deadline_expired_{0};
  std::atomic<uint64_t> completed_{0};

  /// Admitted ExecuteStreaming calls that have not finished; counts
  /// toward the admission backlog alongside queue_.size().
  std::atomic<uint64_t> streams_in_flight_{0};

  mutable sync::Mutex queue_mu_;
  sync::CondVar queue_cv_;
  std::deque<std::function<void()>> queue_ GUARDED_BY(queue_mu_);
  bool stopping_ GUARDED_BY(queue_mu_) = false;

  sync::Mutex join_mu_;  ///< serialises the join in Shutdown()
  bool joined_ GUARDED_BY(join_mu_) = false;
  std::vector<std::thread> workers_;
};

}  // namespace query
}  // namespace scube

#endif  // SCUBE_QUERY_SERVICE_H_
