// QueryService: the concurrent SCubeQL serving layer.
//
// One service owns a fixed pool of worker threads and an LRU result
// cache in front of a CubeStore. A batch of textual queries is parsed,
// answered from the cache where possible, and the misses are grouped by
// cube snapshot and fanned out to the workers, each worker chunk sharing
// one cube scan (Executor::ExecuteBatch). Publishing new cubes proceeds
// concurrently: in-flight queries keep their snapshot.

#ifndef SCUBE_QUERY_SERVICE_H_
#define SCUBE_QUERY_SERVICE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "query/ast.h"
#include "query/cube_store.h"
#include "query/query_result.h"

namespace scube {
namespace query {

/// \brief Service tuning knobs.
struct ServiceOptions {
  /// Worker threads answering queries (clamped to >= 1).
  size_t num_workers = 4;

  /// Result-cache entries across all cubes (0 disables caching).
  size_t cache_capacity = 256;

  /// Cube name used when a query has no FROM clause.
  std::string default_cube = "default";
};

/// \brief The answer to one query text.
struct QueryResponse {
  std::string text;       ///< the query as submitted
  std::string canonical;  ///< normalised form (empty on parse errors)
  std::string cube;       ///< resolved cube name
  uint64_t cube_version = 0;

  Status status;       ///< parse / resolution / execution outcome
  QueryResult result;  ///< valid iff status.ok()

  bool cache_hit = false;
  double parse_ms = 0.0;
  /// Execution wall time. Queries answered inside a shared-scan chunk
  /// report the chunk's time (`shared_batch` tells how many queries
  /// amortised that scan); cache hits report ~0.
  double exec_ms = 0.0;
  uint32_t shared_batch = 1;
};

/// \brief Concurrent query server over a CubeStore. Thread-safe.
class QueryService {
 public:
  explicit QueryService(CubeStore* store, ServiceOptions options = {});
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Parses and executes one query.
  QueryResponse ExecuteOne(const std::string& text);

  /// Parses and executes a batch; responses[i] answers texts[i].
  std::vector<QueryResponse> ExecuteBatch(
      const std::vector<std::string>& texts);

  ResultCache::Stats cache_stats() const { return cache_.stats(); }
  void ClearCache() { cache_.Clear(); }
  const ServiceOptions& options() const { return options_; }

 private:
  void WorkerLoop();
  void Submit(std::function<void()> task);

  CubeStore* store_;
  ServiceOptions options_;
  ResultCache cache_;

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace query
}  // namespace scube

#endif  // SCUBE_QUERY_SERVICE_H_
