// The shard wire format: how a shard scubed streams one answer to the
// scatter-gather router (POST /query?stream=1&format=wire).
//
// Line-oriented, escaped TSV, one event per line:
//
//   H \t verb \t by \t has_value \t has_aux \t has_aux2 \t has_tag
//     \t aux_name \t aux2_name \t tag_name
//   R \t skey-hex \t sa \t ca \t t \t m \t units \t defined
//     \t idx0..idx5 \t value \t aux \t aux2 \t tag
//   T \t cells_scanned \t next_cursor
//   S \t code \t message \t version \t cache_hit \t rows
//
// Every double travels as the hex of its IEEE-754 bit pattern, so the
// router re-renders rows through the very same JsonWriter/CsvWriter a
// single-node server uses and the output is byte-identical — no decimal
// round-trip anywhere. The skey column is the row's order-preserving
// merge key (query/merge_key.h), hex-encoded; it is what the router's
// k-way merge compares. Free-text fields escape \, tab, CR and LF.
//
// H/R/T are written by WireWriter (a ResultWriter like Json/CsvWriter);
// the final S line is appended by the HTTP handler once the execution
// outcome (status, version, cache_hit) is known. Errors caught before
// Begin never enter the stream: they are plain buffered HTTP errors.

#ifndef SCUBE_QUERY_WIRE_FORMAT_H_
#define SCUBE_QUERY_WIRE_FORMAT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"
#include "query/query_result.h"
#include "query/row_sink.h"

namespace scube {
namespace query {

/// \brief Renders the wire stream's H/R/T lines (the shard side).
class WireWriter : public ResultWriter {
 public:
  using ResultWriter::ResultWriter;

  bool Begin(const ResultHeader& header) override;
  bool Row(const ResultRow& row) override;
  void Finish(const ResultTrailer& trailer) override;
};

/// The closing S line (status, shard cube version, cache_hit, row count);
/// appended by the handler after execution, newline included.
std::string WireStatusLine(StatusCode code, const std::string& message,
                           uint64_t version, bool cache_hit, uint64_t rows);

/// \brief One parsed wire line (the router side).
struct WireEvent {
  enum class Kind { kHeader, kRow, kTrailer, kStatus };
  Kind kind = Kind::kHeader;

  ResultHeader header;  ///< kHeader
  ResultRow row;        ///< kRow (skey hex-decoded back to bytes)

  // kTrailer
  uint64_t cells_scanned = 0;
  std::string next_cursor;

  // kStatus
  StatusCode code = StatusCode::kOk;
  std::string message;
  uint64_t version = 0;
  bool cache_hit = false;
  uint64_t rows = 0;
};

/// Parses one wire line (without its trailing newline). ParseError when
/// the line is not a well-formed H/R/T/S event.
Result<WireEvent> ParseWireLine(std::string_view line);

/// Escapes a free-text field for one TSV cell (\, tab, CR, LF).
void AppendWireEscaped(std::string_view text, std::string* out);

/// Hex of a double's IEEE-754 bit pattern ("3ff0000000000000").
std::string WireDouble(double v);

}  // namespace query
}  // namespace scube

#endif  // SCUBE_QUERY_WIRE_FORMAT_H_
