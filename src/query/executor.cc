#include "query/executor.h"

#include <algorithm>
#include <functional>

#include "common/trace.h"
#include "query/merge_key.h"

namespace scube {
namespace query {

namespace {

constexpr char kKeySep = '\x1F';

/// Deadline probes inside index walks are amortised: one clock read per
/// kDeadlineStride candidates, not per candidate.
constexpr uint64_t kDeadlineStride = 4096;

std::string ItemKey(const std::string& attr, const std::string& value) {
  return attr + kKeySep + value;
}

ResultRow MakeRow(const cube::CubeView& view, const cube::CubeCell& cell) {
  ResultRow row;
  row.sa = view.catalog().LabelSet(cell.coords.sa);
  row.ca = view.catalog().LabelSet(cell.coords.ca);
  row.t = cell.context_size;
  row.m = cell.minority_size;
  row.units = cell.num_units;
  row.defined = cell.indexes.defined;
  row.indexes = cell.indexes.values;
  return row;
}

/// WHERE filter for navigation verbs: only the explicitly given bounds.
bool PassesWhere(const cube::CubeCell& cell, const Query& q) {
  if (q.min_t && cell.context_size < *q.min_t) return false;
  if (q.min_m && cell.minority_size < *q.min_m) return false;
  return true;
}

/// Analytic verbs inherit the explorer defaults (T >= 30, M >= 5,
/// non-empty subgroup) with WHERE bounds overriding.
cube::ExplorerOptions ExplorerOptionsFor(const Query& q) {
  cube::ExplorerOptions opts;
  if (q.min_t) opts.min_context_size = *q.min_t;
  if (q.min_m) opts.min_minority_size = *q.min_m;
  return opts;
}

/// The ORDER BY sort key of one row; shared between SortRows and the
/// merge-key prefix so shards and the single node can never disagree.
double OrderKeyValue(const OrderBy& order, const ResultRow& row) {
  switch (order.key) {
    case OrderBy::Key::kContextSize:
      return static_cast<double>(row.t);
    case OrderBy::Key::kMinoritySize:
      return static_cast<double>(row.m);
    case OrderBy::Key::kIndex:
      break;
  }
  return row.indexes[static_cast<size_t>(order.index)];
}

}  // namespace

/// ORDER BY sort, identical to the pre-streaming materialised path.
/// External linkage: the scatter-gather router re-sorts the merged
/// global TOPK selection with this exact comparator (executor.h).
void SortRows(const OrderBy& order, std::vector<ResultRow>* rows) {
  std::stable_sort(rows->begin(), rows->end(),
                   [&](const ResultRow& a, const ResultRow& b) {
                     // Undefined cells sort last under index keys.
                     if (order.key == OrderBy::Key::kIndex &&
                         a.defined != b.defined) {
                       return a.defined;
                     }
                     return order.descending
                                ? OrderKeyValue(order, a) > OrderKeyValue(order, b)
                                : OrderKeyValue(order, a) < OrderKeyValue(order, b);
                   });
}

namespace {

/// Rewrites each row's merge key as (ORDER BY sort key ++ natural walk
/// key). stable_sort breaks ties by walk position, which is exactly the
/// natural-key order, so the combined key reproduces the sorted stream.
void PrefixOrderKeys(const OrderBy& order, std::vector<ResultRow>* rows) {
  for (ResultRow& row : *rows) {
    std::string key;
    key.reserve(9 + row.skey.size());
    if (order.key == OrderBy::Key::kIndex) {
      key.push_back(row.defined ? '\x00' : '\x01');  // undefined sorts last
    }
    AppendDoubleKey(OrderKeyValue(order, row), order.descending, &key);
    key += row.skey;
    row.skey = std::move(key);
  }
}

/// The verb-specific column layout, known before any row is produced.
ResultHeader HeaderFor(const Query& q) {
  ResultHeader header;
  header.verb = q.verb;
  header.by = q.by;
  switch (q.verb) {
    case Verb::kTopK:
      header.has_value = true;
      break;
    case Verb::kSurprises:
      header.has_value = true;
      header.has_aux = true;
      header.aux_name = "delta";
      header.has_aux2 = true;
      header.aux2_name = "best_parent";
      break;
    case Verb::kReversals:
      header.has_value = true;
      header.has_aux = true;
      header.aux_name = "boundary_child";
      header.has_aux2 = true;
      header.aux2_name = "children";
      header.has_tag = true;
      header.tag_name = "direction";
      break;
    default:
      break;
  }
  return header;
}

/// How a query consumes the view's indexes.
enum class Mode {
  kPoint,      ///< fully addressed SLICE: one map lookup
  kSliceSa,    ///< exact-SA slice group
  kSliceCa,    ///< exact-CA slice group
  kSliceAll,   ///< degenerate SLICE with no coordinates: every cell
  kDice,       ///< posting-list intersection
  kTopK,       ///< ranked-order walk
  kRollup,     ///< parent adjacency / probes
  kDrilldown,  ///< child adjacency / probes
  kScan,       ///< SURPRISES / REVERSALS: shared pass over the cell array
};

/// Span name of the index walk a mode performs — the per-verb phase names
/// surfaced by ?debug=trace and the slow-query log.
const char* SpanNameFor(Mode mode) {
  switch (mode) {
    case Mode::kPoint:
      return "walk.point";
    case Mode::kSliceSa:
    case Mode::kSliceCa:
      return "walk.slice";
    case Mode::kSliceAll:
      return "walk.all";
    case Mode::kDice:
      return "walk.dice";
    case Mode::kTopK:
      return "walk.topk";
    case Mode::kRollup:
      return "walk.rollup";
    case Mode::kDrilldown:
      return "walk.drilldown";
    case Mode::kScan:
      return "walk.analytic";
  }
  return "walk";
}

struct Prepared {
  const Query* query = nullptr;
  Status error;       ///< resolution failure, reported at finalise time
  fpm::Itemset sa;    ///< resolved SA constraint items
  fpm::Itemset ca;    ///< resolved CA constraint items
  Mode mode = Mode::kPoint;
  cube::ExplorerOptions explorer;  ///< analytic-verb filters, precomputed
  std::vector<cube::SurpriseFinding> surprises;      ///< shared-pass hits
  std::vector<cube::GranularityReversal> reversals;  ///< shared-pass hits
};

Mode ClassifyQuery(const Query& q) {
  switch (q.verb) {
    case Verb::kSlice:
      if (!q.sa.empty() && !q.ca.empty()) return Mode::kPoint;
      if (!q.sa.empty()) return Mode::kSliceSa;
      if (!q.ca.empty()) return Mode::kSliceCa;
      return Mode::kSliceAll;
    case Verb::kDice:
      return Mode::kDice;
    case Verb::kTopK:
      return Mode::kTopK;
    case Verb::kRollup:
      return Mode::kRollup;
    case Verb::kDrilldown:
      return Mode::kDrilldown;
    case Verb::kSurprises:
    case Verb::kReversals:
      return Mode::kScan;
  }
  return Mode::kPoint;
}

/// One shared pass over the cell array for the analytic queries in
/// `scans`. Each cell is evaluated against each SURPRISES/REVERSALS query
/// via the view's precomputed parent/child adjacency (the explorer's
/// per-cell evaluators) — B analytic queries walk the cube once, not B
/// times. Returns false when the deadline expired mid-scan.
bool RunSharedScan(const cube::CubeView& view,
                   const std::vector<Prepared*>& scans,
                   const QueryContext& ctx) {
  DeadlineTicker ticker(ctx, kDeadlineStride);
  const size_t n = view.NumCells();
  for (cube::CubeView::CellId id = 0; id < n; ++id) {
    if (ticker.Tick()) return false;
    // Ghost cells (shard replicas of cells owned elsewhere) are never
    // analytic candidates — their owning shard reports them — but they
    // stay in the view's adjacency, serving as comparison baselines for
    // the owned cells evaluated here.
    if (view.cell(id).ghost) continue;
    for (Prepared* p : scans) {
      const Query& q = *p->query;
      if (q.verb == Verb::kSurprises) {
        if (auto finding = cube::EvaluateSurprise(view, id, q.by, q.threshold,
                                                  p->explorer)) {
          p->surprises.push_back(*finding);
        }
      } else {
        if (auto reversal = cube::EvaluateReversal(view, id, q.by,
                                                   q.threshold, p->explorer)) {
          p->reversals.push_back(std::move(*reversal));
        }
      }
    }
  }
  return true;
}

/// Pages the unpaginated row stream into a sink: skips `offset` rows,
/// delivers up to `limit`, and learns that more rows remain when the
/// producer offers one past the page. Rows arrive as factories so that
/// skipped and beyond-page rows never pay row construction (label copies)
/// — a cursor page at offset k walks but does not materialise the first k
/// rows.
class Pager {
 public:
  Pager(uint64_t offset, std::optional<uint64_t> limit, RowSink& sink)
      : offset_(offset), limit_(limit), sink_(sink) {}

  /// Offers the next stream row. False = the producer should stop.
  template <typename RowFactory>
  bool Offer(RowFactory&& make) {
    if (skipped_ < offset_) {
      ++skipped_;
      return true;
    }
    if (limit_ && emitted_ >= *limit_) {
      more_ = true;  // a row exists beyond the page: not exhausted
      return false;
    }
    if (!sink_.Row(make())) {
      aborted_ = true;
      return false;
    }
    ++emitted_;
    return true;
  }

  bool aborted() const { return aborted_; }
  bool more() const { return more_; }
  uint64_t emitted() const { return emitted_; }

 private:
  uint64_t offset_;
  std::optional<uint64_t> limit_;
  RowSink& sink_;
  uint64_t skipped_ = 0;
  uint64_t emitted_ = 0;
  bool more_ = false;
  bool aborted_ = false;
};

/// Produces the unpaginated row stream of a prepared query, calling
/// feed(row_factory) per row in stream order until feed returns false —
/// the factory builds the ResultRow, so consumers that discard the row
/// (OFFSET skipping) never construct it. `scanned` counts inspected
/// cells/candidates. DeadlineExceeded when the ticker fires mid-walk.
///
/// Ghost cells (shard replicas owned by another shard) are filtered at
/// every emission site — each shard's stream is then an exact subsequence
/// of the global stream, which is what makes per-shard LIMIT pushdown and
/// merge-key stitching sound. `keys` (QueryContext::merge_keys) stamps
/// each row with its order-preserving merge key (query/merge_key.h).
template <typename Feed>
Status WalkRows(const cube::CubeView& view, Prepared& p, DeadlineTicker& ticker,
                bool keys, uint64_t* scanned, Feed&& feed) {
  const Query& q = *p.query;
  auto expired = [] {
    return Status::DeadlineExceeded(
        "query deadline expired before execution completed");
  };

  switch (p.mode) {
    case Mode::kPoint: {
      const cube::CubeCell* cell = view.Find(p.sa, p.ca);
      *scanned = 1;
      if (cell != nullptr && !cell->ghost && PassesWhere(*cell, q)) {
        feed([&] {
          ResultRow row = MakeRow(view, *cell);
          if (keys) AppendCoordKey(cell->coords, &row.skey);
          return row;
        });
      }
      return Status::OK();
    }

    case Mode::kSliceSa:
    case Mode::kSliceCa: {
      auto group = p.mode == Mode::kSliceSa ? view.SliceBySa(p.sa)
                                            : view.SliceByCa(p.ca);
      for (cube::CubeView::CellId id : group) {
        ++*scanned;
        if (ticker.Tick()) return expired();
        const cube::CubeCell& cell = view.cell(id);
        if (cell.ghost) continue;
        if (PassesWhere(cell, q) && !feed([&] {
              ResultRow row = MakeRow(view, cell);
              if (keys) AppendCoordKey(cell.coords, &row.skey);
              return row;
            })) {
          break;
        }
      }
      return Status::OK();
    }

    case Mode::kSliceAll: {
      // Hand-constructed SLICE with no coordinates: every cell (the
      // legacy shared-scan behaviour; unreachable through the parser).
      for (const cube::CubeCell& cell : view.Cells()) {
        ++*scanned;
        if (ticker.Tick()) return expired();
        if (cell.ghost) continue;
        if (!feed([&] {
              ResultRow row = MakeRow(view, cell);
              if (keys) AppendCoordKey(cell.coords, &row.skey);
              return row;
            })) {
          break;
        }
      }
      return Status::OK();
    }

    case Mode::kDice: {
      view.DiceVisit(
          p.sa, p.ca, scanned,
          [&](cube::CubeView::CellId id) {
            const cube::CubeCell& cell = view.cell(id);
            if (cell.ghost || !PassesWhere(cell, q)) return true;
            return feed([&] {
              ResultRow row = MakeRow(view, cell);
              if (keys) AppendCoordKey(cell.coords, &row.skey);
              return row;
            });
          },
          [&] { return !ticker.Tick(); });
      if (ticker.expired()) return expired();
      return Status::OK();
    }

    case Mode::kTopK: {
      uint64_t produced = 0;
      for (cube::CubeView::CellId id : view.RankedByIndex(q.by)) {
        if (produced >= q.k) break;
        ++*scanned;
        if (ticker.Tick()) return expired();
        const cube::CubeCell& cell = view.cell(id);
        // Ghosts are skipped before the k cap: the shard's top-k are the
        // k best *owned* cells, a superset of its share of the global
        // top-k.
        if (cell.ghost) continue;
        if (!cube::PassesExplorerFilters(cell, p.explorer)) continue;
        ++produced;
        bool keep = feed([&] {
          ResultRow row = MakeRow(view, cell);
          row.value = cell.Value(q.by);
          if (keys) {
            AppendDoubleKey(row.value, /*descending=*/true, &row.skey);
            AppendCoordKey(cell.coords, &row.skey);
          }
          return row;
        });
        if (!keep) break;
      }
      return Status::OK();
    }

    case Mode::kRollup:
    case Mode::kDrilldown: {
      auto ids = p.mode == Mode::kRollup
                     ? view.ParentsOf(cube::CellCoordinates{p.sa, p.ca})
                     : view.ChildrenOf(cube::CellCoordinates{p.sa, p.ca});
      for (cube::CubeView::CellId id : ids) {
        ++*scanned;
        if (ticker.Tick()) return expired();
        const cube::CubeCell& cell = view.cell(id);
        if (cell.ghost) continue;
        if (PassesWhere(cell, q) && !feed([&] {
              ResultRow row = MakeRow(view, cell);
              if (keys) {
                if (p.mode == Mode::kRollup) {
                  // Parents stream in item-removal order (SA items
                  // ascending, then CA items ascending; absent parents
                  // skipped): the key is the removal ordinal itself.
                  fpm::Itemset removed_sa = p.sa.Minus(cell.coords.sa);
                  if (!removed_sa.empty()) {
                    row.skey.push_back('\x00');
                    AppendItemKey(removed_sa[0], &row.skey);
                  } else {
                    fpm::Itemset removed_ca = p.ca.Minus(cell.coords.ca);
                    row.skey.push_back('\x01');
                    AppendItemKey(removed_ca.empty() ? 0 : removed_ca[0],
                                  &row.skey);
                  }
                } else {
                  AppendCoordKey(cell.coords, &row.skey);
                }
              }
              return row;
            })) {
          break;
        }
      }
      return Status::OK();
    }

    case Mode::kScan: {
      // Findings come pre-computed from the shared pass; the row stream is
      // their sorted order.
      *scanned = view.NumCells();
      if (q.verb == Verb::kSurprises) {
        cube::SortSurprises(&p.surprises);
        for (const cube::SurpriseFinding& f : p.surprises) {
          bool keep = feed([&] {
            ResultRow row = MakeRow(view, *f.cell);
            row.value = f.value;
            row.aux = f.delta;
            row.aux2 = f.best_parent_value;
            if (keys) {
              AppendDoubleKey(f.delta, /*descending=*/true, &row.skey);
              AppendCoordKey(f.cell->coords, &row.skey);
            }
            return row;
          });
          if (!keep) break;
        }
      } else {
        cube::SortReversals(&p.reversals);
        for (const cube::GranularityReversal& r : p.reversals) {
          bool keep = feed([&] {
            ResultRow row = MakeRow(view, *r.parent);
            row.value = r.parent_value;
            row.aux = r.min_child_value;
            row.aux2 = static_cast<double>(r.children.size());
            row.tag = r.children_higher ? "masked" : "inflated";
            if (keys) {
              // SortReversals ranks by the parent/boundary-child gap.
              const double gap = r.children_higher
                                     ? r.min_child_value - r.parent_value
                                     : r.parent_value - r.min_child_value;
              AppendDoubleKey(gap, /*descending=*/true, &row.skey);
              AppendCoordKey(r.parent->coords, &row.skey);
            }
            return row;
          });
          if (!keep) break;
        }
      }
      return Status::OK();
    }
  }
  return Status::Internal("unhandled query mode");
}

/// Streams one prepared query into a sink: Begin, the page's rows, and
/// pagination accounting. Never calls sink.Finish (see ExecuteToSink).
Status EmitPrepared(const cube::CubeView& view, Prepared& p,
                    const QueryContext& ctx, RowSink& sink,
                    StreamStats* stats) {
  const Query& q = *p.query;
  stats->begun = true;
  if (!sink.Begin(HeaderFor(q))) {
    stats->aborted = true;
    stats->exhausted = false;
    return Status::OK();
  }

  const uint64_t offset = q.offset.value_or(0);
  Pager pager(offset, q.limit, sink);
  DeadlineTicker ticker(ctx, kDeadlineStride);
  uint64_t scanned = 0;
  Status status;

  if (q.order) {
    // Ordered answers need every stream row before the sort; pagination
    // slices the sorted vector. No scan pushdown is possible here.
    std::vector<ResultRow> rows;
    trace::Span walk_span(ctx.trace, SpanNameFor(p.mode));
    status = WalkRows(view, p, ticker, ctx.merge_keys, &scanned,
                      [&rows](auto&& make) {
                        rows.push_back(make());
                        return true;
                      });
    walk_span.End();
    if (status.ok()) {
      trace::Span sort_span(ctx.trace, "sort");
      SortRows(*q.order, &rows);
      sort_span.End();
      if (ctx.merge_keys) PrefixOrderKeys(*q.order, &rows);
      // The pager learns about non-exhaustion by being offered the first
      // row past the page, so no special casing is needed here.
      for (ResultRow& row : rows) {
        if (!pager.Offer([&row]() -> ResultRow&& { return std::move(row); })) {
          break;
        }
      }
    }
  } else {
    // The unordered walk streams straight into the sink, so this span
    // covers index traversal AND row delivery (serialisation pushback
    // included) — which is exactly the time a client waits for rows.
    trace::Span walk_span(ctx.trace, SpanNameFor(p.mode));
    status = WalkRows(view, p, ticker, ctx.merge_keys, &scanned,
                      [&pager](auto&& make) { return pager.Offer(make); });
  }

  stats->cells_scanned = scanned;
  stats->rows_emitted = pager.emitted();
  stats->aborted = pager.aborted();
  stats->exhausted = !pager.more() && !pager.aborted();
  stats->next_offset = offset + pager.emitted();
  return status;
}

}  // namespace

Executor::Executor(const cube::CubeView& view) : view_(view) {
  const relational::ItemCatalog& catalog = view.catalog();
  item_by_key_.reserve(catalog.size());
  for (size_t i = 0; i < catalog.size(); ++i) {
    fpm::ItemId id = static_cast<fpm::ItemId>(i);
    const relational::ItemInfo& info = catalog.info(id);
    item_by_key_.emplace(ItemKey(info.attr_name, info.value), id);
    kind_by_attr_.emplace(info.attr_name, info.kind);
  }
}

Result<fpm::Itemset> Executor::ResolveItems(
    const std::vector<AttrValue>& constraints,
    relational::AttributeKind kind) const {
  std::vector<fpm::ItemId> items;
  items.reserve(constraints.size());
  for (const AttrValue& av : constraints) {
    auto it = item_by_key_.find(ItemKey(av.attr, av.value));
    if (it == item_by_key_.end()) {
      auto attr = kind_by_attr_.find(av.attr);
      if (attr == kind_by_attr_.end()) {
        return Status::NotFound("unknown attribute '" + av.attr + "'");
      }
      return Status::NotFound("unknown value '" + av.value +
                              "' for attribute '" + av.attr + "'");
    }
    const relational::ItemInfo& info = view_.catalog().info(it->second);
    if (info.kind != kind) {
      const char* axis =
          info.kind == relational::AttributeKind::kSegregation ? "sa" : "ca";
      return Status::InvalidArgument(
          "attribute '" + av.attr + "' is a " +
          (info.kind == relational::AttributeKind::kSegregation
               ? "segregation"
               : "context") +
          " attribute; it belongs in " + axis + "=");
    }
    items.push_back(it->second);
  }
  return fpm::Itemset(std::move(items));
}

namespace {

/// Resolves one query's coordinates and classifies its index path.
Prepared PrepareQuery(const Executor& executor, const Query& query) {
  Prepared p;
  p.query = &query;
  auto sa = executor.ResolveItems(query.sa,
                                  relational::AttributeKind::kSegregation);
  if (!sa.ok()) {
    p.error = sa.status();
    return p;
  }
  p.sa = std::move(sa).value();
  auto ca = executor.ResolveItems(query.ca,
                                  relational::AttributeKind::kContext);
  if (!ca.ok()) {
    p.error = ca.status();
    return p;
  }
  p.ca = std::move(ca).value();
  p.explorer = ExplorerOptionsFor(query);
  p.mode = ClassifyQuery(query);
  return p;
}

}  // namespace

Result<QueryResult> Executor::Execute(const Query& query,
                                      const QueryContext& ctx) const {
  return std::move(ExecuteBatch({query}, ctx)[0]);
}

Status Executor::ExecuteToSink(const Query& query, const QueryContext& ctx,
                               RowSink& sink, StreamStats* stats) const {
  StreamStats local;
  if (stats == nullptr) stats = &local;
  *stats = StreamStats{};

  trace::Span resolve_span(ctx.trace, "resolve");
  Prepared p = PrepareQuery(*this, query);
  resolve_span.End();
  if (!p.error.ok()) return p.error;
  if (ctx.Expired()) {
    return Status::DeadlineExceeded(
        "query deadline expired before execution completed");
  }
  if (p.mode == Mode::kScan) {
    // A lone analytic query still pays one cell pass; batches amortise it
    // through ExecuteBatch instead.
    trace::Span scan_span(ctx.trace, "scan.analytic");
    if (!RunSharedScan(view_, {&p}, ctx)) {
      return Status::DeadlineExceeded(
          "query deadline expired before execution completed");
    }
  }
  return EmitPrepared(view_, p, ctx, sink, stats);
}

std::vector<Result<QueryResult>> Executor::ExecuteBatch(
    const std::vector<Query>& queries, const QueryContext& ctx) const {
  // --- prepare: resolve coordinates, classify by index path --------------
  std::vector<Prepared> prepared(queries.size());
  std::vector<Prepared*> scans;
  trace::Span resolve_span(ctx.trace, "resolve");
  for (size_t i = 0; i < queries.size(); ++i) {
    prepared[i] = PrepareQuery(*this, queries[i]);
    if (prepared[i].error.ok() && prepared[i].mode == Mode::kScan) {
      scans.push_back(&prepared[i]);
    }
  }
  resolve_span.End();

  // --- one shared pass over the cell array for every analytic query ------
  bool scan_expired = false;
  if (!scans.empty()) {
    trace::Span scan_span(ctx.trace, "scan.analytic");
    scan_expired = !RunSharedScan(view_, scans, ctx);
  }

  // --- finalise each query, in input order --------------------------------
  // Every verb now streams: the materialised answer is the stream captured
  // by a VectorSink, so the batch path and the chunked HTTP path can never
  // produce different rows.
  std::vector<Result<QueryResult>> out;
  out.reserve(queries.size());
  for (Prepared& p : prepared) {
    if (!p.error.ok()) {
      out.push_back(p.error);
      continue;
    }
    // Statement boundary: queries finalised before the deadline keep their
    // results; the rest of the batch is abandoned cooperatively.
    if ((p.mode == Mode::kScan && scan_expired) || ctx.Expired()) {
      out.push_back(Status::DeadlineExceeded(
          "query deadline expired before execution completed"));
      continue;
    }
    VectorSink sink;
    StreamStats stats;
    Status status = EmitPrepared(view_, p, ctx, sink, &stats);
    if (!status.ok()) {
      out.push_back(status);
      continue;
    }
    ResultTrailer trailer;
    trailer.cells_scanned = stats.cells_scanned;
    sink.Finish(trailer);
    sink.SetPagination(stats.exhausted, stats.next_offset);
    out.push_back(sink.TakeResult());
  }
  return out;
}

}  // namespace query
}  // namespace scube
