#include "query/executor.h"

#include <algorithm>

namespace scube {
namespace query {

namespace {

constexpr char kKeySep = '\x1F';

std::string ItemKey(const std::string& attr, const std::string& value) {
  return attr + kKeySep + value;
}

ResultRow MakeRow(const cube::CubeView& view, const cube::CubeCell& cell) {
  ResultRow row;
  row.sa = view.catalog().LabelSet(cell.coords.sa);
  row.ca = view.catalog().LabelSet(cell.coords.ca);
  row.t = cell.context_size;
  row.m = cell.minority_size;
  row.units = cell.num_units;
  row.defined = cell.indexes.defined;
  row.indexes = cell.indexes.values;
  return row;
}

/// WHERE filter for navigation verbs: only the explicitly given bounds.
bool PassesWhere(const cube::CubeCell& cell, const Query& q) {
  if (q.min_t && cell.context_size < *q.min_t) return false;
  if (q.min_m && cell.minority_size < *q.min_m) return false;
  return true;
}

/// Analytic verbs inherit the explorer defaults (T >= 30, M >= 5,
/// non-empty subgroup) with WHERE bounds overriding.
cube::ExplorerOptions ExplorerOptionsFor(const Query& q) {
  cube::ExplorerOptions opts;
  if (q.min_t) opts.min_context_size = *q.min_t;
  if (q.min_m) opts.min_minority_size = *q.min_m;
  return opts;
}

void ApplyOrderAndLimit(const Query& q, QueryResult* result) {
  if (q.order) {
    const OrderBy order = *q.order;
    auto key = [&order](const ResultRow& row) -> double {
      switch (order.key) {
        case OrderBy::Key::kContextSize:
          return static_cast<double>(row.t);
        case OrderBy::Key::kMinoritySize:
          return static_cast<double>(row.m);
        case OrderBy::Key::kIndex:
          break;
      }
      return row.indexes[static_cast<size_t>(order.index)];
    };
    std::stable_sort(result->rows.begin(), result->rows.end(),
                     [&](const ResultRow& a, const ResultRow& b) {
                       // Undefined cells sort last under index keys.
                       if (order.key == OrderBy::Key::kIndex &&
                           a.defined != b.defined) {
                         return a.defined;
                       }
                       return order.descending ? key(a) > key(b)
                                               : key(a) < key(b);
                     });
  }
  if (q.limit && result->rows.size() > *q.limit) {
    result->rows.resize(*q.limit);
  }
}

/// How a query consumes the view's indexes.
enum class Mode {
  kPoint,      ///< fully addressed SLICE: one map lookup
  kSliceSa,    ///< exact-SA slice group
  kSliceCa,    ///< exact-CA slice group
  kSliceAll,   ///< degenerate SLICE with no coordinates: every cell
  kDice,       ///< posting-list intersection
  kTopK,       ///< ranked-order walk
  kRollup,     ///< parent adjacency / probes
  kDrilldown,  ///< child adjacency / probes
  kScan,       ///< SURPRISES / REVERSALS: shared pass over the cell array
};

struct Prepared {
  const Query* query = nullptr;
  Status error;       ///< resolution failure, reported at finalise time
  fpm::Itemset sa;    ///< resolved SA constraint items
  fpm::Itemset ca;    ///< resolved CA constraint items
  Mode mode = Mode::kPoint;
  cube::ExplorerOptions explorer;  ///< analytic-verb filters, precomputed
  std::vector<cube::SurpriseFinding> surprises;      ///< shared-pass hits
  std::vector<cube::GranularityReversal> reversals;  ///< shared-pass hits
};

Mode ClassifyQuery(const Query& q) {
  switch (q.verb) {
    case Verb::kSlice:
      if (!q.sa.empty() && !q.ca.empty()) return Mode::kPoint;
      if (!q.sa.empty()) return Mode::kSliceSa;
      if (!q.ca.empty()) return Mode::kSliceCa;
      return Mode::kSliceAll;
    case Verb::kDice:
      return Mode::kDice;
    case Verb::kTopK:
      return Mode::kTopK;
    case Verb::kRollup:
      return Mode::kRollup;
    case Verb::kDrilldown:
      return Mode::kDrilldown;
    case Verb::kSurprises:
    case Verb::kReversals:
      return Mode::kScan;
  }
  return Mode::kPoint;
}

}  // namespace

Executor::Executor(const cube::CubeView& view) : view_(view) {
  const relational::ItemCatalog& catalog = view.catalog();
  item_by_key_.reserve(catalog.size());
  for (size_t i = 0; i < catalog.size(); ++i) {
    fpm::ItemId id = static_cast<fpm::ItemId>(i);
    const relational::ItemInfo& info = catalog.info(id);
    item_by_key_.emplace(ItemKey(info.attr_name, info.value), id);
    kind_by_attr_.emplace(info.attr_name, info.kind);
  }
}

Result<fpm::Itemset> Executor::ResolveItems(
    const std::vector<AttrValue>& constraints,
    relational::AttributeKind kind) const {
  std::vector<fpm::ItemId> items;
  items.reserve(constraints.size());
  for (const AttrValue& av : constraints) {
    auto it = item_by_key_.find(ItemKey(av.attr, av.value));
    if (it == item_by_key_.end()) {
      auto attr = kind_by_attr_.find(av.attr);
      if (attr == kind_by_attr_.end()) {
        return Status::NotFound("unknown attribute '" + av.attr + "'");
      }
      return Status::NotFound("unknown value '" + av.value +
                              "' for attribute '" + av.attr + "'");
    }
    const relational::ItemInfo& info = view_.catalog().info(it->second);
    if (info.kind != kind) {
      const char* axis =
          info.kind == relational::AttributeKind::kSegregation ? "sa" : "ca";
      return Status::InvalidArgument(
          "attribute '" + av.attr + "' is a " +
          (info.kind == relational::AttributeKind::kSegregation
               ? "segregation"
               : "context") +
          " attribute; it belongs in " + axis + "=");
    }
    items.push_back(it->second);
  }
  return fpm::Itemset(std::move(items));
}

Result<QueryResult> Executor::Execute(const Query& query,
                                      const QueryContext& ctx) const {
  return std::move(ExecuteBatch({query}, ctx)[0]);
}

std::vector<Result<QueryResult>> Executor::ExecuteBatch(
    const std::vector<Query>& queries, const QueryContext& ctx) const {
  // --- prepare: resolve coordinates, classify by index path --------------
  std::vector<Prepared> prepared(queries.size());
  bool any_scan = false;
  for (size_t i = 0; i < queries.size(); ++i) {
    Prepared& p = prepared[i];
    p.query = &queries[i];
    auto sa = ResolveItems(queries[i].sa,
                           relational::AttributeKind::kSegregation);
    if (!sa.ok()) {
      p.error = sa.status();
      continue;
    }
    p.sa = std::move(sa).value();
    auto ca = ResolveItems(queries[i].ca,
                           relational::AttributeKind::kContext);
    if (!ca.ok()) {
      p.error = ca.status();
      continue;
    }
    p.ca = std::move(ca).value();
    p.explorer = ExplorerOptionsFor(queries[i]);
    p.mode = ClassifyQuery(queries[i]);
    if (p.mode == Mode::kScan) any_scan = true;
  }

  // --- one shared pass over the cell array for every analytic query ------
  // Each cell is evaluated against each SURPRISES/REVERSALS query via the
  // view's precomputed parent/child adjacency (the explorer's per-cell
  // evaluators) — B analytic queries walk the cube once, not B times.
  bool scan_expired = false;
  if (any_scan) {
    // Deadline probes are amortised: one clock read per kDeadlineStride
    // cells, not per cell.
    constexpr size_t kDeadlineStride = 4096;
    const size_t n = view_.NumCells();
    for (cube::CubeView::CellId id = 0; id < n; ++id) {
      if (id % kDeadlineStride == 0 && ctx.Expired()) {
        scan_expired = true;
        break;
      }
      for (Prepared& p : prepared) {
        if (p.mode != Mode::kScan || !p.error.ok()) continue;
        const Query& q = *p.query;
        if (q.verb == Verb::kSurprises) {
          if (auto finding = cube::EvaluateSurprise(view_, id, q.by,
                                                    q.threshold, p.explorer)) {
            p.surprises.push_back(*finding);
          }
        } else {
          if (auto reversal = cube::EvaluateReversal(view_, id, q.by,
                                                     q.threshold, p.explorer)) {
            p.reversals.push_back(std::move(*reversal));
          }
        }
      }
    }
  }

  // --- finalise each query, in input order --------------------------------
  std::vector<Result<QueryResult>> out;
  out.reserve(queries.size());
  for (Prepared& p : prepared) {
    if (!p.error.ok()) {
      out.push_back(p.error);
      continue;
    }
    // Statement boundary: queries finalised before the deadline keep their
    // results; the rest of the batch is abandoned cooperatively.
    if ((p.mode == Mode::kScan && scan_expired) || ctx.Expired()) {
      out.push_back(Status::DeadlineExceeded(
          "query deadline expired before execution completed"));
      continue;
    }
    const Query& q = *p.query;
    QueryResult result;
    result.verb = q.verb;
    result.by = q.by;

    switch (p.mode) {
      case Mode::kPoint: {
        const cube::CubeCell* cell = view_.Find(p.sa, p.ca);
        if (cell != nullptr && PassesWhere(*cell, q)) {
          result.rows.push_back(MakeRow(view_, *cell));
        }
        result.cells_scanned = 1;
        break;
      }

      case Mode::kSliceSa:
      case Mode::kSliceCa: {
        auto group = p.mode == Mode::kSliceSa ? view_.SliceBySa(p.sa)
                                              : view_.SliceByCa(p.ca);
        for (cube::CubeView::CellId id : group) {
          const cube::CubeCell& cell = view_.cell(id);
          if (PassesWhere(cell, q)) {
            result.rows.push_back(MakeRow(view_, cell));
          }
        }
        result.cells_scanned = group.size();
        break;
      }

      case Mode::kSliceAll:
        // Hand-constructed SLICE with no coordinates: every cell (the
        // legacy shared-scan behaviour; unreachable through the parser).
        for (const cube::CubeCell& cell : view_.Cells()) {
          result.rows.push_back(MakeRow(view_, cell));
        }
        result.cells_scanned = view_.NumCells();
        break;

      case Mode::kDice: {
        uint64_t examined = 0;
        for (cube::CubeView::CellId id : view_.Dice(p.sa, p.ca, &examined)) {
          const cube::CubeCell& cell = view_.cell(id);
          if (PassesWhere(cell, q)) {
            result.rows.push_back(MakeRow(view_, cell));
          }
        }
        result.cells_scanned = examined;
        break;
      }

      case Mode::kTopK: {
        uint64_t walked = 0;
        result.has_value = true;
        for (cube::CubeView::CellId id : view_.RankedByIndex(q.by)) {
          if (result.rows.size() >= q.k) break;
          ++walked;
          const cube::CubeCell& cell = view_.cell(id);
          if (!cube::PassesExplorerFilters(cell, p.explorer)) continue;
          ResultRow row = MakeRow(view_, cell);
          row.value = cell.Value(q.by);
          result.rows.push_back(std::move(row));
        }
        result.cells_scanned = walked;
        break;
      }

      case Mode::kRollup: {
        auto parents = view_.ParentsOf(cube::CellCoordinates{p.sa, p.ca});
        for (cube::CubeView::CellId id : parents) {
          const cube::CubeCell& cell = view_.cell(id);
          if (PassesWhere(cell, q)) {
            result.rows.push_back(MakeRow(view_, cell));
          }
        }
        result.cells_scanned = parents.size();
        break;
      }

      case Mode::kDrilldown: {
        auto children = view_.ChildrenOf(cube::CellCoordinates{p.sa, p.ca});
        for (cube::CubeView::CellId id : children) {
          const cube::CubeCell& cell = view_.cell(id);
          if (PassesWhere(cell, q)) {
            result.rows.push_back(MakeRow(view_, cell));
          }
        }
        result.cells_scanned = children.size();
        break;
      }

      case Mode::kScan: {
        if (q.verb == Verb::kSurprises) {
          cube::SortSurprises(&p.surprises);
          result.has_value = true;
          result.has_aux = true;
          result.aux_name = "delta";
          result.has_aux2 = true;
          result.aux2_name = "best_parent";
          for (const cube::SurpriseFinding& f : p.surprises) {
            ResultRow row = MakeRow(view_, *f.cell);
            row.value = f.value;
            row.aux = f.delta;
            row.aux2 = f.best_parent_value;
            result.rows.push_back(std::move(row));
          }
        } else {
          cube::SortReversals(&p.reversals);
          result.has_value = true;
          result.has_aux = true;
          result.aux_name = "boundary_child";
          result.has_aux2 = true;
          result.aux2_name = "children";
          result.has_tag = true;
          result.tag_name = "direction";
          for (const cube::GranularityReversal& r : p.reversals) {
            ResultRow row = MakeRow(view_, *r.parent);
            row.value = r.parent_value;
            row.aux = r.min_child_value;
            row.aux2 = static_cast<double>(r.children.size());
            row.tag = r.children_higher ? "masked" : "inflated";
            result.rows.push_back(std::move(row));
          }
        }
        result.cells_scanned = view_.NumCells();
        break;
      }
    }

    ApplyOrderAndLimit(q, &result);
    out.push_back(std::move(result));
  }
  return out;
}

}  // namespace query
}  // namespace scube
