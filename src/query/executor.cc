#include "query/executor.h"

#include <algorithm>

namespace scube {
namespace query {

namespace {

constexpr char kKeySep = '\x1F';

std::string ItemKey(const std::string& attr, const std::string& value) {
  return attr + kKeySep + value;
}

ResultRow MakeRow(const cube::SegregationCube& cube,
                  const cube::CubeCell& cell) {
  ResultRow row;
  row.sa = cube.catalog().LabelSet(cell.coords.sa);
  row.ca = cube.catalog().LabelSet(cell.coords.ca);
  row.t = cell.context_size;
  row.m = cell.minority_size;
  row.units = cell.num_units;
  row.defined = cell.indexes.defined;
  row.indexes = cell.indexes.values;
  return row;
}

/// WHERE filter for navigation verbs: only the explicitly given bounds.
bool PassesWhere(const cube::CubeCell& cell, const Query& q) {
  if (q.min_t && cell.context_size < *q.min_t) return false;
  if (q.min_m && cell.minority_size < *q.min_m) return false;
  return true;
}

/// Analytic verbs inherit the explorer defaults (T >= 30, M >= 5,
/// non-empty subgroup) with WHERE bounds overriding.
cube::ExplorerOptions ExplorerOptionsFor(const Query& q) {
  cube::ExplorerOptions opts;
  if (q.min_t) opts.min_context_size = *q.min_t;
  if (q.min_m) opts.min_minority_size = *q.min_m;
  return opts;
}

void ApplyOrderAndLimit(const Query& q, QueryResult* result) {
  if (q.order) {
    const OrderBy order = *q.order;
    auto key = [&order](const ResultRow& row) -> double {
      switch (order.key) {
        case OrderBy::Key::kContextSize:
          return static_cast<double>(row.t);
        case OrderBy::Key::kMinoritySize:
          return static_cast<double>(row.m);
        case OrderBy::Key::kIndex:
          break;
      }
      return row.indexes[static_cast<size_t>(order.index)];
    };
    std::stable_sort(result->rows.begin(), result->rows.end(),
                     [&](const ResultRow& a, const ResultRow& b) {
                       // Undefined cells sort last under index keys.
                       if (order.key == OrderBy::Key::kIndex &&
                           a.defined != b.defined) {
                         return a.defined;
                       }
                       return order.descending ? key(a) > key(b)
                                               : key(a) < key(b);
                     });
  }
  if (q.limit && result->rows.size() > *q.limit) {
    result->rows.resize(*q.limit);
  }
}

/// How a query consumes the cube.
enum class Mode {
  kScan,    ///< participates in the shared cell scan
  kDirect,  ///< point lookups / explorer calls, run per query
};

struct Prepared {
  const Query* query = nullptr;
  Status error;       ///< resolution failure, reported at finalise time
  fpm::Itemset sa;    ///< resolved SA constraint items
  fpm::Itemset ca;    ///< resolved CA constraint items
  Mode mode = Mode::kDirect;
  cube::ExplorerOptions explorer;  ///< analytic-verb filters, precomputed
  std::vector<const cube::CubeCell*> hits;  ///< shared-scan matches
};

}  // namespace

Executor::Executor(const cube::SegregationCube& cube) : cube_(cube) {
  const relational::ItemCatalog& catalog = cube.catalog();
  item_by_key_.reserve(catalog.size());
  for (size_t i = 0; i < catalog.size(); ++i) {
    fpm::ItemId id = static_cast<fpm::ItemId>(i);
    const relational::ItemInfo& info = catalog.info(id);
    item_by_key_.emplace(ItemKey(info.attr_name, info.value), id);
    kind_by_attr_.emplace(info.attr_name, info.kind);
  }
}

Result<fpm::Itemset> Executor::ResolveItems(
    const std::vector<AttrValue>& constraints,
    relational::AttributeKind kind) const {
  std::vector<fpm::ItemId> items;
  items.reserve(constraints.size());
  for (const AttrValue& av : constraints) {
    auto it = item_by_key_.find(ItemKey(av.attr, av.value));
    if (it == item_by_key_.end()) {
      auto attr = kind_by_attr_.find(av.attr);
      if (attr == kind_by_attr_.end()) {
        return Status::NotFound("unknown attribute '" + av.attr + "'");
      }
      return Status::NotFound("unknown value '" + av.value +
                              "' for attribute '" + av.attr + "'");
    }
    const relational::ItemInfo& info = cube_.catalog().info(it->second);
    if (info.kind != kind) {
      const char* axis =
          info.kind == relational::AttributeKind::kSegregation ? "sa" : "ca";
      return Status::InvalidArgument(
          "attribute '" + av.attr + "' is a " +
          (info.kind == relational::AttributeKind::kSegregation
               ? "segregation"
               : "context") +
          " attribute; it belongs in " + axis + "=");
    }
    items.push_back(it->second);
  }
  return fpm::Itemset(std::move(items));
}

Result<QueryResult> Executor::Execute(const Query& query) const {
  return std::move(ExecuteBatch({query})[0]);
}

std::vector<Result<QueryResult>> Executor::ExecuteBatch(
    const std::vector<Query>& queries) const {
  // --- prepare: resolve coordinates, classify scan vs direct -------------
  std::vector<Prepared> prepared(queries.size());
  bool any_scan = false;
  for (size_t i = 0; i < queries.size(); ++i) {
    Prepared& p = prepared[i];
    p.query = &queries[i];
    auto sa = ResolveItems(queries[i].sa,
                           relational::AttributeKind::kSegregation);
    if (!sa.ok()) {
      p.error = sa.status();
      continue;
    }
    p.sa = std::move(sa).value();
    auto ca = ResolveItems(queries[i].ca,
                           relational::AttributeKind::kContext);
    if (!ca.ok()) {
      p.error = ca.status();
      continue;
    }
    p.ca = std::move(ca).value();
    p.explorer = ExplorerOptionsFor(queries[i]);

    switch (queries[i].verb) {
      case Verb::kDice:
      case Verb::kTopK:
        p.mode = Mode::kScan;
        break;
      case Verb::kSlice:
        // Both axes given -> a single-cell point lookup; otherwise the
        // slice filter runs inside the shared scan.
        p.mode = (!queries[i].sa.empty() && !queries[i].ca.empty())
                     ? Mode::kDirect
                     : Mode::kScan;
        break;
      default:
        p.mode = Mode::kDirect;
        break;
    }
    if (p.mode == Mode::kScan) any_scan = true;
  }

  // --- one shared pass over the cube for every scan-shaped query ---------
  size_t scanned = 0;
  if (any_scan) {
    std::vector<const cube::CubeCell*> cells = cube_.Cells();
    scanned = cells.size();
    for (const cube::CubeCell* cell : cells) {
      for (Prepared& p : prepared) {
        if (p.mode != Mode::kScan || !p.error.ok()) continue;
        const Query& q = *p.query;
        switch (q.verb) {
          case Verb::kSlice:
            if (!q.sa.empty() &&
                (cell->coords.sa != p.sa || !PassesWhere(*cell, q))) {
              continue;
            }
            if (!q.ca.empty() &&
                (cell->coords.ca != p.ca || !PassesWhere(*cell, q))) {
              continue;
            }
            break;
          case Verb::kDice:
            if (!p.sa.IsSubsetOf(cell->coords.sa) ||
                !p.ca.IsSubsetOf(cell->coords.ca) || !PassesWhere(*cell, q)) {
              continue;
            }
            break;
          case Verb::kTopK:
            if (!cube::PassesExplorerFilters(*cell, p.explorer)) continue;
            break;
          default:
            continue;
        }
        p.hits.push_back(cell);
      }
    }
  }

  // --- finalise each query, in input order --------------------------------
  std::vector<Result<QueryResult>> out;
  out.reserve(queries.size());
  for (Prepared& p : prepared) {
    if (!p.error.ok()) {
      out.push_back(p.error);
      continue;
    }
    const Query& q = *p.query;
    QueryResult result;
    result.verb = q.verb;
    result.by = q.by;

    switch (q.verb) {
      case Verb::kSlice:
        if (p.mode == Mode::kDirect) {
          const cube::CubeCell* cell = cube_.Find(p.sa, p.ca);
          if (cell != nullptr && PassesWhere(*cell, q)) {
            result.rows.push_back(MakeRow(cube_, *cell));
          }
          result.cells_scanned = 1;
        } else {
          for (const cube::CubeCell* cell : p.hits) {
            result.rows.push_back(MakeRow(cube_, *cell));
          }
          result.cells_scanned = scanned;
        }
        break;

      case Verb::kDice:
        for (const cube::CubeCell* cell : p.hits) {
          result.rows.push_back(MakeRow(cube_, *cell));
        }
        result.cells_scanned = scanned;
        break;

      case Verb::kTopK: {
        std::sort(p.hits.begin(), p.hits.end(),
                  [&q](const cube::CubeCell* a, const cube::CubeCell* b) {
                    double va = a->Value(q.by), vb = b->Value(q.by);
                    if (va != vb) return va > vb;
                    return a->coords < b->coords;
                  });
        if (p.hits.size() > q.k) p.hits.resize(q.k);
        result.has_value = true;
        for (const cube::CubeCell* cell : p.hits) {
          ResultRow row = MakeRow(cube_, *cell);
          row.value = cell->Value(q.by);
          result.rows.push_back(std::move(row));
        }
        result.cells_scanned = scanned;
        break;
      }

      case Verb::kRollup: {
        auto parents =
            cube_.Parents(cube::CellCoordinates{p.sa, p.ca});
        for (const cube::CubeCell* cell : parents) {
          if (PassesWhere(*cell, q)) {
            result.rows.push_back(MakeRow(cube_, *cell));
          }
        }
        result.cells_scanned = parents.size();
        break;
      }

      case Verb::kDrilldown: {
        auto children =
            cube_.Children(cube::CellCoordinates{p.sa, p.ca});
        for (const cube::CubeCell* cell : children) {
          if (PassesWhere(*cell, q)) {
            result.rows.push_back(MakeRow(cube_, *cell));
          }
        }
        result.cells_scanned = children.size();
        break;
      }

      case Verb::kSurprises: {
        auto findings =
            cube::DrillDownSurprises(cube_, q.by, q.threshold, p.explorer);
        result.has_value = true;
        result.has_aux = true;
        result.aux_name = "delta";
        result.has_aux2 = true;
        result.aux2_name = "best_parent";
        for (const cube::SurpriseFinding& f : findings) {
          ResultRow row = MakeRow(cube_, *f.cell);
          row.value = f.value;
          row.aux = f.delta;
          row.aux2 = f.best_parent_value;
          result.rows.push_back(std::move(row));
        }
        result.cells_scanned = cube_.NumCells();
        break;
      }

      case Verb::kReversals: {
        auto findings = cube::FindGranularityReversals(cube_, q.by,
                                                       q.threshold, p.explorer);
        result.has_value = true;
        result.has_aux = true;
        result.aux_name = "boundary_child";
        result.has_aux2 = true;
        result.aux2_name = "children";
        result.has_tag = true;
        result.tag_name = "direction";
        for (const cube::GranularityReversal& r : findings) {
          ResultRow row = MakeRow(cube_, *r.parent);
          row.value = r.parent_value;
          row.aux = r.min_child_value;
          row.aux2 = static_cast<double>(r.children.size());
          row.tag = r.children_higher ? "masked" : "inflated";
          result.rows.push_back(std::move(row));
        }
        result.cells_scanned = cube_.NumCells();
        break;
      }
    }

    ApplyOrderAndLimit(q, &result);
    out.push_back(std::move(result));
  }
  return out;
}

}  // namespace query
}  // namespace scube
