#include "query/cube_store.h"

#include <algorithm>

#include "query/executor.h"

namespace scube {
namespace query {

uint64_t CubeStore::Publish(const std::string& name,
                            cube::SegregationCube cube, size_t num_threads,
                            trace::TraceContext* trace) {
  // Seal outside the lock: index construction is the expensive part and
  // must not block readers of other cubes.
  trace::Span seal_span(trace, "build.seal");
  auto snapshot = std::make_shared<const cube::CubeView>(
      std::move(cube).Seal(num_threads));
  seal_span.End();
  // One Executor per sealed version, built here so the serving paths stop
  // rebuilding the O(catalog) item index per request/chunk/page. The
  // deleter captures the snapshot: handing the executor out alone keeps
  // the view it references alive.
  trace::Span index_span(trace, "build.executor_index");
  std::shared_ptr<const Executor> executor(
      new Executor(*snapshot),
      [snapshot](const Executor* e) { delete e; });
  index_span.End();
  sync::MutexLock lock(&mu_);
  Entry& entry = entries_[name];
  uint64_t version = ++entry.latest;
  entry.versions.push_back(
      SealedVersion{version, std::move(snapshot), std::move(executor)});
  while (entry.versions.size() > max_versions_) {
    entry.versions.pop_front();
  }
  return version;
}

CubeStore::Snapshot CubeStore::Get(const std::string& name,
                                   uint64_t* version) const {
  sync::MutexLock lock(&mu_);
  auto it = entries_.find(name);
  bool found = it != entries_.end() && !it->second.versions.empty();
  if (version != nullptr) {
    *version = found ? it->second.versions.back().version : 0;
  }
  return found ? it->second.versions.back().view : nullptr;
}

CubeStore::Snapshot CubeStore::GetVersion(const std::string& name,
                                          uint64_t version) const {
  sync::MutexLock lock(&mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) return nullptr;
  for (const SealedVersion& sealed : it->second.versions) {
    if (sealed.version == version) return sealed.view;
  }
  return nullptr;
}

std::shared_ptr<const Executor> CubeStore::GetExecutor(
    const std::string& name, uint64_t version) const {
  sync::MutexLock lock(&mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) return nullptr;
  for (const SealedVersion& sealed : it->second.versions) {
    if (sealed.version == version) return sealed.executor;
  }
  return nullptr;
}

uint64_t CubeStore::Version(const std::string& name) const {
  sync::MutexLock lock(&mu_);
  auto it = entries_.find(name);
  return it == entries_.end() ? 0 : it->second.latest;
}

std::vector<uint64_t> CubeStore::RetainedVersions(
    const std::string& name) const {
  sync::MutexLock lock(&mu_);
  auto it = entries_.find(name);
  std::vector<uint64_t> out;
  if (it == entries_.end()) return out;
  out.reserve(it->second.versions.size());
  for (const SealedVersion& sealed : it->second.versions) {
    out.push_back(sealed.version);
  }
  return out;
}

std::vector<std::string> CubeStore::Names() const {
  std::vector<std::string> names;
  {
    sync::MutexLock lock(&mu_);
    names.reserve(entries_.size());
    for (const auto& [name, entry] : entries_) names.push_back(name);
  }
  std::sort(names.begin(), names.end());
  return names;
}

uint64_t PublishPipelineResult(CubeStore* store, const std::string& name,
                               pipeline::PipelineResult&& result,
                               size_t num_threads) {
  return store->Publish(name, std::move(result.cube), num_threads);
}

std::string ResultCache::MakeKey(const std::string& cube, uint64_t version,
                                 const std::string& canonical_query) {
  return cube + '\x1F' + std::to_string(version) + '\x1F' + canonical_query;
}

std::optional<QueryResult> ResultCache::Get(
    const std::string& cube, uint64_t version,
    const std::string& canonical_query) {
  std::string key = MakeKey(cube, version, canonical_query);
  sync::MutexLock lock(&mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  ++stats_.hits;
  ++it->second->hits;
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  return it->second->result;
}

void ResultCache::Put(const std::string& cube, uint64_t version,
                      const std::string& canonical_query,
                      QueryResult result) {
  if (capacity_ == 0) return;
  std::string key = MakeKey(cube, version, canonical_query);
  sync::MutexLock lock(&mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->result = std::move(result);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(
      Entry{cube, version, canonical_query, 0, std::move(result)});
  index_[std::move(key)] = lru_.begin();
  while (lru_.size() > capacity_) {
    const Entry& victim = lru_.back();
    index_.erase(MakeKey(victim.cube, victim.version, victim.canonical));
    lru_.pop_back();
    ++stats_.evictions;
  }
}

std::vector<std::string> ResultCache::Hottest(const std::string& cube,
                                              size_t n) const {
  // Hit counts summed per canonical text across versions; insertion order
  // of `ranked` follows LRU order (front = most recent), so the stable
  // sort's tie-break is recency.
  std::vector<std::pair<std::string, uint64_t>> ranked;
  {
    sync::MutexLock lock(&mu_);
    std::unordered_map<std::string, size_t> slot;  // canonical -> ranked idx
    for (const Entry& e : lru_) {
      if (e.cube != cube) continue;
      auto [it, inserted] = slot.emplace(e.canonical, ranked.size());
      if (inserted) {
        ranked.emplace_back(e.canonical, e.hits);
      } else {
        ranked[it->second].second += e.hits;
      }
    }
  }
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const auto& a, const auto& b) {
                     return a.second > b.second;
                   });
  if (ranked.size() > n) ranked.resize(n);
  std::vector<std::string> out;
  out.reserve(ranked.size());
  for (auto& [text, hits] : ranked) out.push_back(std::move(text));
  return out;
}

ResultCache::Stats ResultCache::stats() const {
  sync::MutexLock lock(&mu_);
  return stats_;
}

size_t ResultCache::size() const {
  sync::MutexLock lock(&mu_);
  return lru_.size();
}

void ResultCache::Clear() {
  sync::MutexLock lock(&mu_);
  lru_.clear();
  index_.clear();
}

}  // namespace query
}  // namespace scube
