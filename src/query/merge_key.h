// Order-preserving merge keys for scatter-gather serving.
//
// A shard executing a query with QueryContext::merge_keys set stamps every
// emitted row with a byte string whose *lexicographic* order equals the
// executor's emission order for that verb. Because each shard emits an
// exact subsequence of the global (single-node) row stream — ghosts are
// filtered at emission, every global cell is owned by exactly one shard —
// a k-way merge of shard streams on these keys reproduces the single-node
// stream byte for byte.
//
// Encodings (all big-endian so memcmp order == numeric order):
//   itemset     (0x01 + item id as 4 bytes BE)* 0x00
//               — the terminator sorts before any item byte, so a prefix
//               itemset sorts first, matching fpm::Itemset::operator<.
//   coordinates |sa|+|ca| as 2 bytes BE, then sa, then ca
//               — matches cube::CellCoordinates::operator< (size-major).
//   double      IEEE bits sign-flipped into a total order (-0.0 folded
//               onto +0.0 to match operator==); complemented when the
//               walk is descending.
//
// Per-verb keys are assembled by the executor (query/executor.cc):
//   SLICE/DICE/DRILLDOWN  coordinates
//   TOPK                  value desc + coordinates
//   SURPRISES             delta desc + coordinates
//   REVERSALS             gap desc + coordinates
//   ROLLUP                removal ordinal (axis byte + removed item)
//   ORDER BY …            fixed-width sort key prefix + the verb's natural
//                         key (stable_sort ties resolve to walk order)

#ifndef SCUBE_QUERY_MERGE_KEY_H_
#define SCUBE_QUERY_MERGE_KEY_H_

#include <cstdint>
#include <string>

#include "fpm/itemset.h"

namespace scube {
namespace cube {
struct CellCoordinates;
}  // namespace cube

namespace query {

/// Appends an 8-byte key for `v` such that memcmp order equals numeric
/// order (ascending), or its complement when `descending`.
void AppendDoubleKey(double v, bool descending, std::string* out);

/// Appends the itemset encoding described above.
void AppendItemsetKey(const fpm::Itemset& items, std::string* out);

/// Appends the coordinate encoding: memcmp order == CellCoordinates::<.
void AppendCoordKey(const cube::CellCoordinates& coords, std::string* out);

/// Appends a 4-byte big-endian item id.
void AppendItemKey(fpm::ItemId item, std::string* out);

}  // namespace query
}  // namespace scube

#endif  // SCUBE_QUERY_MERGE_KEY_H_
