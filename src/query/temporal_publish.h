// Temporal cubes in the serving layer: runs the temporal analysis and
// publishes each date's cube into a CubeStore, so every snapshot becomes
// an immutable sealed version addressable from SCubeQL (and from scubed's
// HTTP clients) as `FROM name@version` — version i answers date dates[i-…]
// in publish order.

#ifndef SCUBE_QUERY_TEMPORAL_PUBLISH_H_
#define SCUBE_QUERY_TEMPORAL_PUBLISH_H_

#include <string>
#include <vector>

#include "query/cube_store.h"
#include "scube/temporal.h"

namespace scube {
namespace query {

/// \brief A temporal run whose snapshots live in a CubeStore.
struct TemporalPublishResult {
  pipeline::TemporalResult temporal;  ///< tracked-cell series per date
  std::string cube_name;              ///< the published name
  /// versions[i] is the store version holding dates[i]'s sealed cube.
  std::vector<uint64_t> versions;
};

/// Runs `RunTemporalAnalysis` and publishes each date's cube under
/// `name`, in date order. The store must retain at least `dates.size()`
/// versions (InvalidArgument otherwise — earlier dates would be evicted
/// before the run even finishes).
///
/// Publishing is incremental: when a later date's pipeline run fails,
/// the versions already published for earlier dates *stay* in the store
/// (publishing never retracts — readers may already hold them). The
/// error status names the failing date; callers that need all-or-nothing
/// semantics should run against a scratch store first.
Result<TemporalPublishResult> RunTemporalAnalysisPublished(
    CubeStore* store, const std::string& name,
    const etl::ScubeInputs& inputs, const pipeline::PipelineConfig& config,
    const std::vector<graph::Date>& dates,
    const std::vector<pipeline::TrackedCell>& tracked);

}  // namespace query
}  // namespace scube

#endif  // SCUBE_QUERY_TEMPORAL_PUBLISH_H_
