// SCubeQL abstract syntax: the typed form of one cube query.
//
// A query is a verb over cube coordinates plus optional FROM / WHERE /
// ORDER BY / LIMIT clauses:
//
//   SLICE sa=sex=F & age=young | ca=region=north
//   DICE ca=region=north
//   ROLLUP sa=sex=F | ca=region=north
//   DRILLDOWN sa=sex=F
//   TOPK 5 BY dissimilarity WHERE T >= 30 AND M >= 5
//   SURPRISES BY gini MINDELTA 0.2 LIMIT 10
//   REVERSALS MINGAP 0.3 FROM italy_2012
//   TOPK 3 BY gini FROM italy_2012@2        (exact sealed-version pin)
//
// Navigation verbs (SLICE/DICE/ROLLUP/DRILLDOWN) address cells by
// attribute=value coordinates; analytic verbs (TOPK/SURPRISES/REVERSALS)
// lower onto the cube explorer. `Canonical()` renders a normalised text
// form used as the result-cache key.

#ifndef SCUBE_QUERY_AST_H_
#define SCUBE_QUERY_AST_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "indexes/segregation_index.h"

namespace scube {
namespace query {

/// The seven SCubeQL verbs.
enum class Verb {
  kSlice,       ///< cells at exact SA and/or CA coordinates
  kDice,        ///< subcube: cells whose coordinates contain the given items
  kRollup,      ///< roll-up parents of one cell
  kDrilldown,   ///< drill-down children of one cell (root when no coords)
  kTopK,        ///< top-k cells by one segregation index
  kSurprises,   ///< drill-down surprises (explorer)
  kReversals,   ///< Simpson-style granularity reversals (explorer)
};

const char* VerbToString(Verb verb);

/// Number of Verb enumerators (per-verb metric arrays index by Verb).
constexpr size_t kNumVerbs = 7;

/// \brief One coordinate constraint, e.g. {"sex", "F"}.
struct AttrValue {
  std::string attr;
  std::string value;

  bool operator==(const AttrValue& other) const {
    return attr == other.attr && value == other.value;
  }
  bool operator<(const AttrValue& other) const {
    if (attr != other.attr) return attr < other.attr;
    return value < other.value;
  }
};

/// \brief ORDER BY key: an index name, or the T / M counts.
struct OrderBy {
  enum class Key { kIndex, kContextSize, kMinoritySize };
  Key key = Key::kIndex;
  indexes::IndexKind index = indexes::IndexKind::kDissimilarity;
  bool descending = true;

  bool operator==(const OrderBy& other) const {
    return key == other.key && index == other.index &&
           descending == other.descending;
  }
};

/// \brief A parsed SCubeQL query.
struct Query {
  Verb verb = Verb::kSlice;

  /// FROM clause: which published cube to query ("" = the default cube).
  std::string cube;

  /// `FROM name@version` pin: answer from this exact sealed version (the
  /// store keeps the last K). Unset = the latest version.
  std::optional<uint64_t> cube_version;

  /// Coordinate constraints (`sa=...` / `ca=...` parts).
  std::vector<AttrValue> sa;
  std::vector<AttrValue> ca;

  /// TOPK count.
  uint32_t k = 10;

  /// BY index; defaults to dissimilarity when the clause is absent.
  indexes::IndexKind by = indexes::IndexKind::kDissimilarity;

  /// SURPRISES MINDELTA / REVERSALS MINGAP threshold.
  double threshold = 0.1;

  /// WHERE T >= min_t AND M >= min_m. Unset parts fall back to verb
  /// defaults (explorer defaults for analytic verbs, no filter for
  /// navigation verbs).
  std::optional<uint64_t> min_t;
  std::optional<uint64_t> min_m;

  std::optional<OrderBy> order;

  /// LIMIT n OFFSET k: the page [offset, offset + limit) of the ordered
  /// row stream. OFFSET without LIMIT skips a prefix; LIMIT without OFFSET
  /// takes one. Cursor resumption rewrites `offset` to the resume position.
  std::optional<uint64_t> limit;
  std::optional<uint64_t> offset;

  bool operator==(const Query& other) const;
};

/// Renders the query in normalised text form: uppercase keywords, sorted
/// coordinate constraints, canonical spacing. Parsing the canonical form
/// yields an equal Query; equal queries share one canonical form, which is
/// what the result cache keys on.
std::string Canonical(const Query& query);

}  // namespace query
}  // namespace scube

#endif  // SCUBE_QUERY_AST_H_
