#include "query/temporal_publish.h"

namespace scube {
namespace query {

Result<TemporalPublishResult> RunTemporalAnalysisPublished(
    CubeStore* store, const std::string& name,
    const etl::ScubeInputs& inputs, const pipeline::PipelineConfig& config,
    const std::vector<graph::Date>& dates,
    const std::vector<pipeline::TrackedCell>& tracked) {
  if (store == nullptr) {
    return Status::InvalidArgument("null CubeStore");
  }
  if (store->max_versions() < dates.size()) {
    return Status::InvalidArgument(
        "store retains " + std::to_string(store->max_versions()) +
        " versions but the run has " + std::to_string(dates.size()) +
        " dates; earlier snapshots would be evicted mid-run");
  }

  TemporalPublishResult out;
  out.cube_name = name;
  out.versions.reserve(dates.size());
  auto temporal = pipeline::RunTemporalAnalysis(
      inputs, config, dates, tracked,
      [&](graph::Date /*date*/, pipeline::PipelineResult&& result) {
        // Seal with the same parallelism the cube build used: each date's
        // publish sits on the run's critical path.
        out.versions.push_back(PublishPipelineResult(
            store, name, std::move(result), config.cube.num_threads));
      });
  if (!temporal.ok()) return temporal.status();
  out.temporal = std::move(temporal).value();
  return out;
}

}  // namespace query
}  // namespace scube
