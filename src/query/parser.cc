#include "query/parser.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <vector>

namespace scube {
namespace query {

namespace {

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

enum class TokenType {
  kIdent,   ///< bare word: keyword, attribute, value or number
  kQuoted,  ///< 'quoted value' (never matches a keyword)
  kSymbol,  ///< = & | >= <= > <
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;
  size_t col = 0;  ///< 1-based column in the query text
};

bool IsWordChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
         c == '.' || c == '-' || c == '+';
}

Result<std::vector<Token>> Lex(const std::string& text) {
  std::vector<Token> tokens;
  size_t i = 0;
  while (i < text.size()) {
    char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    size_t col = i + 1;
    if (c == '\'' || c == '"') {
      size_t end = text.find(c, i + 1);
      if (end == std::string::npos) {
        return Status::ParseError("col " + std::to_string(col) +
                                  ": unterminated quoted value");
      }
      tokens.push_back(
          {TokenType::kQuoted, text.substr(i + 1, end - i - 1), col});
      i = end + 1;
    } else if (c == '>' || c == '<') {
      std::string sym(1, c);
      if (i + 1 < text.size() && text[i + 1] == '=') sym += '=';
      tokens.push_back({TokenType::kSymbol, sym, col});
      i += sym.size();
    } else if (c == '=' || c == '&' || c == '|' || c == '@') {
      tokens.push_back({TokenType::kSymbol, std::string(1, c), col});
      ++i;
    } else if (IsWordChar(c)) {
      size_t end = i;
      while (end < text.size() && IsWordChar(text[end])) ++end;
      tokens.push_back({TokenType::kIdent, text.substr(i, end - i), col});
      i = end;
    } else {
      return Status::ParseError("col " + std::to_string(col) +
                                ": unexpected character '" +
                                std::string(1, c) + "'");
    }
  }
  tokens.push_back({TokenType::kEnd, "", text.size() + 1});
  return tokens;
}

std::string Lower(const std::string& s) {
  std::string out = s;
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return out;
}

// ---------------------------------------------------------------------------
// Recursive-descent parser
// ---------------------------------------------------------------------------

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Query> ParseQuery() {
    Query q;
    Token verb = Next();
    if (verb.type != TokenType::kIdent) {
      return Error(verb, "expected a query verb (SLICE, DICE, ROLLUP, "
                         "DRILLDOWN, TOPK, SURPRISES or REVERSALS)");
    }
    std::string kw = Lower(verb.text);
    if (kw == "slice") {
      q.verb = Verb::kSlice;
      SCUBE_RETURN_IF_ERROR(ParseCoords(&q, /*required=*/true));
    } else if (kw == "dice") {
      q.verb = Verb::kDice;
      SCUBE_RETURN_IF_ERROR(ParseCoords(&q, /*required=*/true));
    } else if (kw == "rollup") {
      q.verb = Verb::kRollup;
      SCUBE_RETURN_IF_ERROR(ParseCoords(&q, /*required=*/false));
    } else if (kw == "drilldown") {
      q.verb = Verb::kDrilldown;
      SCUBE_RETURN_IF_ERROR(ParseCoords(&q, /*required=*/false));
    } else if (kw == "topk") {
      q.verb = Verb::kTopK;
      SCUBE_ASSIGN_OR_RETURN(uint64_t k, ParseInt("TOPK count"));
      if (k == 0) return Error(Peek(), "TOPK count must be positive");
      q.k = static_cast<uint32_t>(k);
      if (!ConsumeKeyword("by")) {
        return Error(Peek(), "expected BY <index> after TOPK count");
      }
      SCUBE_ASSIGN_OR_RETURN(q.by, ParseIndexName());
    } else if (kw == "surprises" || kw == "reversals") {
      q.verb = kw == "surprises" ? Verb::kSurprises : Verb::kReversals;
      if (ConsumeKeyword("by")) {
        SCUBE_ASSIGN_OR_RETURN(q.by, ParseIndexName());
      }
      const char* thr = q.verb == Verb::kSurprises ? "mindelta" : "mingap";
      if (ConsumeKeyword(thr)) {
        SCUBE_ASSIGN_OR_RETURN(q.threshold, ParseDouble(thr));
      }
    } else {
      return Error(verb, "unknown verb '" + verb.text + "'");
    }

    if (ConsumeKeyword("from")) {
      Token name = Next();
      if (name.type != TokenType::kIdent) {
        return Error(name, "expected a cube name after FROM");
      }
      q.cube = name.text;
      // Exact sealed-version pin: FROM name@version.
      if (ConsumeSymbol("@")) {
        SCUBE_ASSIGN_OR_RETURN(uint64_t version, ParseInt("FROM version"));
        if (version == 0) {
          return Error(Peek(), "cube versions start at 1; '@0' never matches");
        }
        q.cube_version = version;
      }
    }
    if (ConsumeKeyword("where")) {
      SCUBE_RETURN_IF_ERROR(ParseWhere(&q));
    }
    if (ConsumeKeyword("order")) {
      if (!ConsumeKeyword("by")) return Error(Peek(), "expected BY after ORDER");
      SCUBE_RETURN_IF_ERROR(ParseOrderKey(&q));
    }
    if (ConsumeKeyword("limit")) {
      SCUBE_ASSIGN_OR_RETURN(uint64_t n, ParseInt("LIMIT"));
      // LIMIT 0 would page forever: every page is empty but the resume
      // cursor never advances. Reject it like TOPK 0.
      if (n == 0) {
        return Error(Peek(), "LIMIT must be positive (omit it for all rows)");
      }
      q.limit = n;
    }
    // OFFSET may follow LIMIT (the usual pagination pair) or stand alone
    // (skip a prefix of the row stream).
    if (ConsumeKeyword("offset")) {
      SCUBE_ASSIGN_OR_RETURN(uint64_t n, ParseInt("OFFSET"));
      q.offset = n;
    }
    Token rest = Peek();
    if (rest.type != TokenType::kEnd) {
      return Error(rest, "unexpected trailing input '" + rest.text + "'");
    }

    // Normalise coordinate order so equal queries compare (and cache) equal.
    auto normalise = [](std::vector<AttrValue>* items) {
      std::sort(items->begin(), items->end());
      items->erase(std::unique(items->begin(), items->end()), items->end());
    };
    normalise(&q.sa);
    normalise(&q.ca);
    return q;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  Token Next() { return tokens_[std::min(pos_++, tokens_.size() - 1)]; }

  bool PeekKeyword(const char* kw) const {
    return Peek().type == TokenType::kIdent && Lower(Peek().text) == kw;
  }
  bool ConsumeKeyword(const char* kw) {
    if (!PeekKeyword(kw)) return false;
    ++pos_;
    return true;
  }

  static Status Error(const Token& at, const std::string& message) {
    return Status::ParseError("col " + std::to_string(at.col) + ": " +
                              message);
  }

  /// True when the next token starts a clause rather than coordinates.
  bool AtClauseBoundary() const {
    return Peek().type == TokenType::kEnd || PeekKeyword("from") ||
           PeekKeyword("where") || PeekKeyword("order") ||
           PeekKeyword("limit") || PeekKeyword("offset");
  }

  Status ParseCoords(Query* q, bool required) {
    if (AtClauseBoundary()) {
      if (required) {
        return Error(Peek(), "expected coordinates: sa=attr=value [& ...] "
                             "and/or ca=attr=value [& ...]");
      }
      return Status::OK();
    }
    SCUBE_RETURN_IF_ERROR(ParseCoordPart(q));
    if (Peek().type == TokenType::kSymbol && Peek().text == "|") {
      Next();
      SCUBE_RETURN_IF_ERROR(ParseCoordPart(q));
    }
    return Status::OK();
  }

  Status ParseCoordPart(Query* q) {
    Token axis = Next();
    std::string axis_kw = Lower(axis.text);
    if (axis.type != TokenType::kIdent ||
        (axis_kw != "sa" && axis_kw != "ca")) {
      return Error(axis, "expected 'sa=' or 'ca=' to start coordinates, got '" +
                             axis.text + "'");
    }
    if (!ConsumeSymbol("=")) {
      return Error(Peek(), "expected '=' after '" + axis.text + "'");
    }
    std::vector<AttrValue>* out = axis_kw == "sa" ? &q->sa : &q->ca;
    while (true) {
      Token attr = Next();
      if (attr.type != TokenType::kIdent) {
        return Error(attr, "expected an attribute name");
      }
      if (!ConsumeSymbol("=")) {
        return Error(Peek(), "expected '=' after attribute '" + attr.text +
                                 "', got '" + Peek().text + "'");
      }
      Token value = Next();
      if (value.type != TokenType::kIdent && value.type != TokenType::kQuoted) {
        return Error(value, "expected a value for attribute '" + attr.text +
                                "'");
      }
      out->push_back(AttrValue{attr.text, value.text});
      if (Peek().type == TokenType::kSymbol && Peek().text == "&") {
        Next();
        continue;
      }
      break;
    }
    return Status::OK();
  }

  Status ParseWhere(Query* q) {
    while (true) {
      Token field = Next();
      std::string f = Lower(field.text);
      if (field.type != TokenType::kIdent || (f != "t" && f != "m")) {
        return Error(field, "WHERE supports T >= <int> and M >= <int>, got '" +
                                field.text + "'");
      }
      Token op = Next();
      if (op.type != TokenType::kSymbol || op.text != ">=") {
        return Error(op, "only '>=' comparisons are supported in WHERE, "
                         "got '" + op.text + "'");
      }
      SCUBE_ASSIGN_OR_RETURN(uint64_t bound, ParseInt("WHERE bound"));
      if (f == "t") {
        q->min_t = bound;
      } else {
        q->min_m = bound;
      }
      if (!ConsumeKeyword("and")) break;
    }
    return Status::OK();
  }

  Status ParseOrderKey(Query* q) {
    Token key = Next();
    if (key.type != TokenType::kIdent) {
      return Error(key, "expected an ORDER BY key (T, M or an index name)");
    }
    OrderBy order;
    std::string k = Lower(key.text);
    if (k == "t") {
      order.key = OrderBy::Key::kContextSize;
    } else if (k == "m") {
      order.key = OrderBy::Key::kMinoritySize;
    } else {
      auto kind = indexes::IndexKindFromString(k);
      if (!kind.ok()) {
        return Error(key, "unknown ORDER BY key '" + key.text +
                              "' (use T, M or an index name)");
      }
      order.key = OrderBy::Key::kIndex;
      order.index = *kind;
    }
    if (ConsumeKeyword("asc")) {
      order.descending = false;
    } else if (ConsumeKeyword("desc")) {
      order.descending = true;
    }
    q->order = order;
    return Status::OK();
  }

  Result<indexes::IndexKind> ParseIndexName() {
    Token name = Next();
    if (name.type != TokenType::kIdent) {
      return Error(name, "expected an index name (dissimilarity, gini, "
                         "information, isolation, interaction, atkinson)");
    }
    auto kind = indexes::IndexKindFromString(Lower(name.text));
    if (!kind.ok()) {
      return Error(name, "unknown index '" + name.text + "'");
    }
    return *kind;
  }

  Result<uint64_t> ParseInt(const char* what) {
    Token tok = Next();
    if (tok.type != TokenType::kIdent) {
      return Error(tok, std::string("expected an integer for ") + what);
    }
    // strtoull silently wraps negative input; reject signs up front.
    if (!tok.text.empty() && (tok.text[0] == '-' || tok.text[0] == '+')) {
      return Error(tok, std::string("expected a non-negative integer for ") +
                            what + ", got '" + tok.text + "'");
    }
    char* end = nullptr;
    errno = 0;
    unsigned long long v = std::strtoull(tok.text.c_str(), &end, 10);
    if (end != tok.text.c_str() + tok.text.size() || tok.text.empty() ||
        errno == ERANGE) {
      return Error(tok, std::string("expected an integer for ") + what +
                            ", got '" + tok.text + "'");
    }
    return static_cast<uint64_t>(v);
  }

  Result<double> ParseDouble(const char* what) {
    Token tok = Next();
    if (tok.type != TokenType::kIdent) {
      return Error(tok, std::string("expected a number for ") + what);
    }
    char* end = nullptr;
    double v = std::strtod(tok.text.c_str(), &end);
    if (end != tok.text.c_str() + tok.text.size() || tok.text.empty()) {
      return Error(tok, std::string("expected a number for ") + what +
                            ", got '" + tok.text + "'");
    }
    return v;
  }

  bool ConsumeSymbol(const char* sym) {
    if (Peek().type == TokenType::kSymbol && Peek().text == sym) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Query> Parse(const std::string& text) {
  SCUBE_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(text));
  return Parser(std::move(tokens)).ParseQuery();
}

}  // namespace query
}  // namespace scube
