// QueryResult: the self-contained, serialisable answer to one SCubeQL
// query. Rows copy cell payloads (labels + counts + the six indexes) out of
// the cube snapshot so results outlive it — they can sit in the LRU cache
// while newer cube versions are published.

#ifndef SCUBE_QUERY_QUERY_RESULT_H_
#define SCUBE_QUERY_QUERY_RESULT_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "indexes/segregation_index.h"
#include "query/ast.h"

namespace scube {
namespace query {

/// \brief One result row: a cube cell plus verb-specific extras.
struct ResultRow {
  std::string sa;  ///< subgroup label, "*" for the empty itemset
  std::string ca;  ///< context label, "*" for the empty itemset

  uint64_t t = 0;      ///< context population
  uint64_t m = 0;      ///< minority population
  uint32_t units = 0;  ///< organisational units in the context

  /// Whether the six indexes are defined for this cell.
  bool defined = false;
  std::array<double, indexes::kNumIndexKinds> indexes{};

  /// Verb-specific columns (meaning recorded in QueryResult):
  ///   TOPK              value = ranked index value
  ///   SURPRISES         value = cell value, aux = delta vs best parent
  ///   REVERSALS         value = parent value, aux = boundary child value,
  ///                     aux2 = number of children, tag = masked/inflated
  double value = 0.0;
  double aux = 0.0;
  double aux2 = 0.0;
  std::string tag;
};

/// \brief A complete query answer.
struct QueryResult {
  Verb verb = Verb::kSlice;
  indexes::IndexKind by = indexes::IndexKind::kDissimilarity;

  /// Which verb-specific columns are populated, and their display names.
  bool has_value = false;
  bool has_aux = false;
  bool has_aux2 = false;
  bool has_tag = false;
  std::string aux_name;
  std::string aux2_name;
  std::string tag_name;

  std::vector<ResultRow> rows;

  /// Cells scanned to produce the result (shared-scan accounting).
  uint64_t cells_scanned = 0;
};

/// CSV rendering: header + one line per row; indexes "" when undefined.
std::string ToCsv(const QueryResult& result);

/// JSON rendering: {"verb": ..., "by": ..., "rows": [...]}. Stable key
/// order; undefined index values serialise as null.
std::string ToJson(const QueryResult& result);

}  // namespace query
}  // namespace scube

#endif  // SCUBE_QUERY_QUERY_RESULT_H_
