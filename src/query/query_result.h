// QueryResult: the self-contained, serialisable answer to one SCubeQL
// query. Rows copy cell payloads (labels + counts + the six indexes) out of
// the cube snapshot so results outlive it — they can sit in the LRU cache
// while newer cube versions are published.
//
// The streaming read path (query/row_sink.h) decomposes an answer into
// ResultHeader -> ResultRow* -> ResultTrailer; QueryResult is exactly that
// protocol materialised, so a cached QueryResult replays through any
// RowSink byte-identically to a live streamed execution.

#ifndef SCUBE_QUERY_QUERY_RESULT_H_
#define SCUBE_QUERY_QUERY_RESULT_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "indexes/segregation_index.h"
#include "query/ast.h"

namespace scube {
namespace query {

/// \brief One result row: a cube cell plus verb-specific extras.
struct ResultRow {
  std::string sa;  ///< subgroup label, "*" for the empty itemset
  std::string ca;  ///< context label, "*" for the empty itemset

  uint64_t t = 0;      ///< context population
  uint64_t m = 0;      ///< minority population
  uint32_t units = 0;  ///< organisational units in the context

  /// Whether the six indexes are defined for this cell.
  bool defined = false;
  std::array<double, indexes::kNumIndexKinds> indexes{};

  /// Verb-specific columns (meaning recorded in the header):
  ///   TOPK              value = ranked index value
  ///   SURPRISES         value = cell value, aux = delta vs best parent
  ///   REVERSALS         value = parent value, aux = boundary child value,
  ///                     aux2 = number of children, tag = masked/inflated
  double value = 0.0;
  double aux = 0.0;
  double aux2 = 0.0;
  std::string tag;

  /// Order-preserving merge key (query/merge_key.h): lexicographic order
  /// of keys equals the executor's emission order for the query's verb.
  /// Populated only when QueryContext::merge_keys is set (shard-side wire
  /// responses); never rendered by the JSON/CSV writers.
  std::string skey;
};

/// \brief Everything known about an answer *before* its first row: the
/// verb, the ranked index and the verb-specific column layout. Streamed
/// first so writers can emit their header bytes before any row exists.
struct ResultHeader {
  Verb verb = Verb::kSlice;
  indexes::IndexKind by = indexes::IndexKind::kDissimilarity;

  /// Which verb-specific columns are populated, and their display names.
  bool has_value = false;
  bool has_aux = false;
  bool has_aux2 = false;
  bool has_tag = false;
  std::string aux_name;
  std::string aux2_name;
  std::string tag_name;
};

/// \brief Everything known only *after* the last row: scan accounting and
/// the pagination resume token. Streamed last (the trailing HTTP chunk).
struct ResultTrailer {
  /// Cells scanned to produce the result (shared-scan accounting).
  uint64_t cells_scanned = 0;

  /// Opaque resume token (see query/row_sink.h EncodeCursor); empty when
  /// the row stream is exhausted — there is no further page.
  std::string next_cursor;
};

/// \brief A complete query answer: the streaming protocol, materialised.
struct QueryResult : ResultHeader {
  std::vector<ResultRow> rows;

  /// Cells scanned to produce the result (shared-scan accounting).
  uint64_t cells_scanned = 0;

  /// Opaque resume token for the next page; empty when exhausted. Stamped
  /// by the serving layer (it knows the cube name and pinned version).
  std::string next_cursor;

  /// Pagination plumbing (not serialised): whether the underlying row
  /// stream ended, and the absolute row offset the next page starts at.
  /// The service turns these into `next_cursor` tokens.
  bool exhausted = true;
  uint64_t next_offset = 0;
};

/// CSV rendering: header + one line per row; indexes "" when undefined.
/// A non-empty next_cursor appends a trailing "# next_cursor: ..." comment.
/// Implemented by replaying the result through a CsvWriter, so it is
/// byte-identical to the streaming path by construction.
std::string ToCsv(const QueryResult& result);

/// JSON rendering: {"verb":...,"by":...,"rows":[...],"cells_scanned":N}
/// plus "next_cursor" when one is set. Stable key order; undefined index
/// values serialise as null. Implemented by replaying the result through a
/// JsonWriter, so it is byte-identical to the streaming path by
/// construction.
std::string ToJson(const QueryResult& result);

}  // namespace query
}  // namespace scube

#endif  // SCUBE_QUERY_QUERY_RESULT_H_
