#include "query/row_sink.h"

#include <cstdio>

#include "common/string_util.h"

namespace scube {
namespace query {

namespace {

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

/// Escapes a CSV field (quotes when it contains comma/quote/newline).
std::string CsvField(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

// JSON string escaping is shared with the HTTP front-end (scube::JsonQuote,
// common/string_util.h) so the /query handler and the result serialisers
// cannot drift.
std::string JsonString(const std::string& s) { return JsonQuote(s); }

}  // namespace

// --- VectorSink -------------------------------------------------------------

bool VectorSink::Begin(const ResultHeader& header) {
  static_cast<ResultHeader&>(result_) = header;
  return true;
}

bool VectorSink::Row(const ResultRow& row) {
  result_.rows.push_back(row);
  return true;
}

bool VectorSink::Row(ResultRow&& row) {
  result_.rows.push_back(std::move(row));
  return true;
}

void VectorSink::Finish(const ResultTrailer& trailer) {
  result_.cells_scanned = trailer.cells_scanned;
  result_.next_cursor = trailer.next_cursor;
}

// --- JsonWriter -------------------------------------------------------------

bool JsonWriter::Begin(const ResultHeader& header) {
  header_ = header;
  std::string out = "{\"verb\":";
  out += JsonString(VerbToString(header.verb));
  out += ",\"by\":";
  out += JsonString(indexes::IndexKindToString(header.by));
  out += ",\"rows\":[";
  return Write(out);
}

bool JsonWriter::Row(const ResultRow& row) {
  std::string out;
  if (!first_row_) out += ',';
  first_row_ = false;
  out += "{\"sa\":" + JsonString(row.sa) + ",\"ca\":" + JsonString(row.ca) +
         ",\"T\":" + std::to_string(row.t) + ",\"M\":" + std::to_string(row.m) +
         ",\"units\":" + std::to_string(row.units) + ",\"indexes\":{";
  bool first = true;
  for (indexes::IndexKind kind : indexes::AllIndexKinds()) {
    if (!first) out += ',';
    first = false;
    out += JsonString(indexes::IndexKindToString(kind));
    out += ':';
    out += row.defined ? FormatDouble(row.indexes[static_cast<size_t>(kind)])
                       : "null";
  }
  out += '}';
  if (header_.has_value) out += ",\"value\":" + FormatDouble(row.value);
  if (header_.has_aux) {
    out += "," + JsonString(header_.aux_name) + ":" + FormatDouble(row.aux);
  }
  if (header_.has_aux2) {
    out += "," + JsonString(header_.aux2_name) + ":" + FormatDouble(row.aux2);
  }
  if (header_.has_tag) {
    out += "," + JsonString(header_.tag_name) + ":" + JsonString(row.tag);
  }
  out += '}';
  return Write(out);
}

void JsonWriter::Finish(const ResultTrailer& trailer) {
  std::string out = "],\"cells_scanned\":" +
                    std::to_string(trailer.cells_scanned);
  if (!trailer.next_cursor.empty()) {
    out += ",\"next_cursor\":" + JsonString(trailer.next_cursor);
  }
  out += '}';
  Write(out);
}

// --- CsvWriter --------------------------------------------------------------

bool CsvWriter::Begin(const ResultHeader& header) {
  header_ = header;
  std::string out = "sa,ca,T,M,units";
  for (indexes::IndexKind kind : indexes::AllIndexKinds()) {
    out += ",";
    out += indexes::IndexKindToString(kind);
  }
  if (header.has_value) out += ",value";
  if (header.has_aux) out += "," + header.aux_name;
  if (header.has_aux2) out += "," + header.aux2_name;
  if (header.has_tag) out += "," + header.tag_name;
  out += '\n';
  return Write(out);
}

bool CsvWriter::Row(const ResultRow& row) {
  std::string out = CsvField(row.sa) + "," + CsvField(row.ca) + "," +
                    std::to_string(row.t) + "," + std::to_string(row.m) + "," +
                    std::to_string(row.units);
  for (indexes::IndexKind kind : indexes::AllIndexKinds()) {
    out += ",";
    if (row.defined) {
      out += FormatDouble(row.indexes[static_cast<size_t>(kind)]);
    }
  }
  if (header_.has_value) out += "," + FormatDouble(row.value);
  if (header_.has_aux) out += "," + FormatDouble(row.aux);
  if (header_.has_aux2) out += "," + FormatDouble(row.aux2);
  if (header_.has_tag) out += "," + CsvField(row.tag);
  out += '\n';
  return Write(out);
}

void CsvWriter::Finish(const ResultTrailer& trailer) {
  if (!trailer.next_cursor.empty()) {
    Write("# next_cursor: " + trailer.next_cursor + "\n");
  }
}

// --- replay -----------------------------------------------------------------

uint64_t ReplayResult(const QueryResult& result, RowSink& sink,
                      const ResultTrailer* trailer_override, bool* aborted) {
  uint64_t delivered = 0;
  bool stopped = !sink.Begin(result);
  if (!stopped) {
    for (const ResultRow& row : result.rows) {
      if (!sink.Row(row)) {
        stopped = true;
        break;
      }
      ++delivered;
    }
  }
  ResultTrailer trailer;
  if (trailer_override != nullptr) {
    trailer = *trailer_override;
  } else {
    trailer.cells_scanned = result.cells_scanned;
    trailer.next_cursor = result.next_cursor;
  }
  // A partially delivered stream has no valid resume point.
  if (stopped) trailer.next_cursor.clear();
  sink.Finish(trailer);
  if (aborted != nullptr) *aborted = stopped;
  return delivered;
}

// --- cursors ----------------------------------------------------------------

namespace {
constexpr char kCursorMagic[] = "scq1";
constexpr char kCursorSep = '|';

/// FNV-1a: stable across processes and library versions (std::hash is
/// not), so a cursor survives a server restart against the same cubes.
uint64_t Fnv1a(std::string_view s) {
  uint64_t hash = 1469598103934665603ull;
  for (char c : s) {
    hash ^= static_cast<uint8_t>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

}  // namespace

uint64_t CursorQueryHash(const Query& query) {
  // The stream identity excludes pagination (carried by the cursor) and
  // the FROM pin (validated against the cursor's own cube/version).
  Query stripped = query;
  stripped.cube.clear();
  stripped.cube_version.reset();
  stripped.limit.reset();
  stripped.offset.reset();
  return Fnv1a(Canonical(stripped));
}

std::string EncodeCursor(const Cursor& cursor) {
  // The cube name goes LAST: it is the only field that may itself contain
  // the separator, so the decoder re-joins the tail instead of rejecting.
  char hash_hex[17];
  std::snprintf(hash_hex, sizeof(hash_hex), "%016llx",
                static_cast<unsigned long long>(cursor.query_hash));
  std::string plain = std::string(kCursorMagic) + kCursorSep +
                      std::to_string(cursor.version) + kCursorSep +
                      std::to_string(cursor.position) + kCursorSep +
                      hash_hex + kCursorSep + cursor.cube;
  std::string token = Base64Encode(plain);
  // URL-safe alphabet (RFC 4648 base64url): tokens travel as ?cursor=
  // query parameters, where '+' would decode to a space and '/' can
  // confuse path-aware middleware.
  for (char& c : token) {
    if (c == '+') c = '-';
    if (c == '/') c = '_';
  }
  return token;
}

Result<Cursor> DecodeCursor(std::string_view token) {
  std::string standard(token);
  for (char& c : standard) {
    if (c == '-') c = '+';
    if (c == '_') c = '/';
  }
  auto plain = Base64Decode(standard);
  if (!plain.ok()) {
    return Status::InvalidArgument("malformed cursor: not base64");
  }
  std::vector<std::string> parts = Split(*plain, kCursorSep);
  if (parts.size() < 5 || parts[0] != kCursorMagic) {
    return Status::InvalidArgument("malformed cursor: bad layout");
  }
  Cursor cursor;
  // Re-join the tail: the cube name may legitimately contain '|'.
  cursor.cube = parts[4];
  for (size_t i = 5; i < parts.size(); ++i) {
    cursor.cube += kCursorSep;
    cursor.cube += parts[i];
  }
  if (cursor.cube.empty()) {
    return Status::InvalidArgument("malformed cursor: empty cube name");
  }
  auto version = ParseInt64(parts[1]);
  auto position = ParseInt64(parts[2]);
  if (!version.ok() || !position.ok() || *version <= 0 || *position < 0) {
    return Status::InvalidArgument("malformed cursor: bad version/position");
  }
  // The hash field is 16 hex digits (full uint64 range).
  if (parts[3].size() != 16) {
    return Status::InvalidArgument("malformed cursor: bad query hash");
  }
  auto hash = ParseHexU64(parts[3]);
  if (!hash.ok()) {
    return Status::InvalidArgument("malformed cursor: bad query hash");
  }
  cursor.version = static_cast<uint64_t>(*version);
  cursor.position = static_cast<uint64_t>(*position);
  cursor.query_hash = *hash;
  return cursor;
}

}  // namespace query
}  // namespace scube
