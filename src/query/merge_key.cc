#include "query/merge_key.h"

#include <bit>

#include "cube/cell.h"

namespace scube {
namespace query {

void AppendDoubleKey(double v, bool descending, std::string* out) {
  if (v == 0.0) v = 0.0;  // fold -0.0 onto +0.0: they compare equal
  uint64_t bits = std::bit_cast<uint64_t>(v);
  // Sign-flip into a totally ordered unsigned space: negatives reverse
  // (complement), non-negatives shift above them (set the sign bit).
  if (bits & (1ull << 63)) {
    bits = ~bits;
  } else {
    bits |= (1ull << 63);
  }
  if (descending) bits = ~bits;
  for (int shift = 56; shift >= 0; shift -= 8) {
    out->push_back(static_cast<char>((bits >> shift) & 0xff));
  }
}

void AppendItemKey(fpm::ItemId item, std::string* out) {
  const uint32_t id = static_cast<uint32_t>(item);
  out->push_back(static_cast<char>((id >> 24) & 0xff));
  out->push_back(static_cast<char>((id >> 16) & 0xff));
  out->push_back(static_cast<char>((id >> 8) & 0xff));
  out->push_back(static_cast<char>(id & 0xff));
}

void AppendItemsetKey(const fpm::Itemset& items, std::string* out) {
  for (fpm::ItemId item : items.items()) {
    out->push_back('\x01');
    AppendItemKey(item, out);
  }
  out->push_back('\x00');
}

void AppendCoordKey(const cube::CellCoordinates& coords, std::string* out) {
  const size_t size = coords.sa.size() + coords.ca.size();
  out->push_back(static_cast<char>((size >> 8) & 0xff));
  out->push_back(static_cast<char>(size & 0xff));
  AppendItemsetKey(coords.sa, out);
  AppendItemsetKey(coords.ca, out);
}

}  // namespace query
}  // namespace scube
