#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <utility>

namespace scube {

namespace {

// Worker-thread marker: set while a thread runs this pool's WorkerLoop, so
// Submit() can detect nested submission and run inline.
thread_local const ThreadPool* current_pool = nullptr;

}  // namespace

// Shared between a ParallelFor call and its helper tasks. Helpers hold a
// shared_ptr, so a helper scheduled after the caller returned still finds
// live (but exhausted) state and exits without touching `fn`.
struct ThreadPool::ForState {
  size_t n = 0;
  const std::function<void(size_t, size_t)>* fn = nullptr;  // caller-owned
  std::atomic<size_t> next{0};         // next unclaimed index
  std::atomic<size_t> next_worker{1};  // helper worker ids (caller is 0)
  std::atomic<bool> cancelled{false};

  sync::Mutex mu;
  sync::CondVar cv;
  size_t in_flight GUARDED_BY(mu) = 0;  // helpers currently inside Drain()
  std::exception_ptr error GUARDED_BY(mu);

  // Claims and runs indices until the range is exhausted or cancelled.
  // `fn` is only dereferenced for a successfully claimed index; every
  // index is claimed before the caller returns, so a late helper never
  // touches the (by then dead) caller-owned closure.
  void Drain(size_t worker) {
    while (!cancelled.load(std::memory_order_relaxed)) {
      size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      try {
        (*fn)(worker, i);
      } catch (...) {
        sync::MutexLock lock(&mu);
        if (!error) error = std::current_exception();
        cancelled.store(true, std::memory_order_relaxed);
      }
    }
  }
};

ThreadPool::ThreadPool(size_t num_threads) {
  size_t n = std::max<size_t>(1, num_threads);
  threads_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    sync::MutexLock lock(&mu_);
    stopping_ = true;
  }
  cv_.SignalAll();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::WorkerLoop() {
  current_pool = this;
  for (;;) {
    std::function<void()> task;
    {
      sync::MutexLock lock(&mu_);
      while (!stopping_ && queue_.empty()) cv_.Wait(&mu_);
      // Drain before exiting, so ~ThreadPool never abandons a future.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

std::future<void> ThreadPool::Submit(std::function<void()> fn) {
  std::packaged_task<void()> task(std::move(fn));
  std::future<void> future = task.get_future();
  if (current_pool == this) {
    task();  // nested submit: run inline, never wait behind ourselves
    return future;
  }
  {
    sync::MutexLock lock(&mu_);
    queue_.emplace_back(
        [t = std::make_shared<std::packaged_task<void()>>(std::move(task))] {
          (*t)();
        });
  }
  cv_.Signal();
  return future;
}

void ThreadPool::ParallelFor(
    size_t n, size_t max_workers,
    const std::function<void(size_t worker, size_t index)>& fn) {
  if (n == 0) return;
  size_t workers = std::max<size_t>(1, max_workers);
  if (n == 1 || workers == 1) {
    for (size_t i = 0; i < n; ++i) fn(0, i);
    return;
  }

  auto state = std::make_shared<ForState>();
  state->n = n;
  state->fn = &fn;

  // Helpers beyond the range size (or the pool size) would only contend.
  size_t helpers = std::min({workers - 1, n - 1, num_threads()});
  {
    sync::MutexLock lock(&mu_);
    for (size_t h = 0; h < helpers; ++h) {
      queue_.emplace_back([state] {
        size_t worker = state->next_worker.fetch_add(1);
        {
          sync::MutexLock lock(&state->mu);
          ++state->in_flight;
        }
        state->Drain(worker);
        {
          sync::MutexLock lock(&state->mu);
          --state->in_flight;
        }
        state->cv.SignalAll();
      });
    }
  }
  cv_.SignalAll();

  state->Drain(/*worker=*/0);  // the caller participates

  // Every index is claimed by now; wait only for helpers mid-body.
  // Not-yet-started helpers will find the range exhausted and exit
  // without touching `fn` or the caller's stack.
  {
    sync::MutexLock lock(&state->mu);
    while (state->in_flight != 0) state->cv.Wait(&state->mu);
    if (state->error) std::rethrow_exception(state->error);
  }
}

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(size_t index)>& fn) {
  ParallelFor(n, num_threads() + 1,
              [&fn](size_t /*worker*/, size_t i) { fn(i); });
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool pool(EffectiveThreads(0));
  return pool;
}

size_t ThreadPool::EffectiveThreads(size_t num_threads) {
  if (num_threads != 0) return num_threads;
  return std::max(1u, std::thread::hardware_concurrency());
}

}  // namespace scube
