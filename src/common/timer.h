// Wall-clock timing for pipeline stage reporting and benches.

#ifndef SCUBE_COMMON_TIMER_H_
#define SCUBE_COMMON_TIMER_H_

#include <chrono>
#include <string>
#include <utility>
#include <vector>

namespace scube {

/// \brief Monotonic stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds.
  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// \brief Named per-stage timing record, e.g. for the pipeline report.
class StageTimings {
 public:
  /// Records `seconds` for stage `name` (stages keep insertion order).
  void Record(std::string name, double seconds) {
    stages_.emplace_back(std::move(name), seconds);
  }

  const std::vector<std::pair<std::string, double>>& stages() const {
    return stages_;
  }

  /// Sum over all recorded stages, in seconds.
  double TotalSeconds() const {
    double total = 0;
    for (const auto& [name, secs] : stages_) total += secs;
    return total;
  }

 private:
  std::vector<std::pair<std::string, double>> stages_;
};

}  // namespace scube

#endif  // SCUBE_COMMON_TIMER_H_
