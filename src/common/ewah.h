// EWAH (Enhanced Word-Aligned Hybrid) compressed bitmap, 64-bit words.
//
// From-scratch reimplementation of the compressed-bitmap substrate the
// original SCube takes from JavaEWAH (github.com/lemire/javaewah). The
// encoding is a stream of *marker* words, each followed by a block of
// literal words:
//
//   marker bit 0       : run bit (value of the clean-word run)
//   marker bits 1..32  : run length, in 64-bit words (up to 2^32 - 1)
//   marker bits 33..63 : number of literal words that follow (up to 2^31 - 1)
//
// Bitmaps are immutable once built; construct them through Builder or
// FromIndices. All binary operations are word-aligned merges that never
// decompress more than one word at a time.

#ifndef SCUBE_COMMON_EWAH_H_
#define SCUBE_COMMON_EWAH_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace scube {

/// \brief Immutable EWAH-compressed bitmap over bit positions [0, 2^37).
class EwahBitmap {
 public:
  /// Constructs an empty bitmap (no set bits, zero logical size).
  EwahBitmap() = default;

  /// \brief Incremental builder; positions must be strictly increasing.
  class Builder {
   public:
    Builder() = default;

    /// Appends a set bit at `pos`; `pos` must exceed all previous positions.
    void Add(uint64_t pos);

    /// Finalises and returns the bitmap. The builder is left empty.
    EwahBitmap Build();

   private:
    friend class EwahBitmap;
    void FlushCurrentWord();
    void AddEmptyWords(bool bit, uint64_t count);
    void AddLiteralWord(uint64_t word);
    void EnsureMarker();

    std::vector<uint64_t> buffer_;
    size_t last_marker_ = 0;      // index of the active marker word
    bool has_marker_ = false;
    uint64_t current_word_ = 0;   // word being assembled
    uint64_t current_word_index_ = 0;
    uint64_t size_in_bits_ = 0;
    uint64_t last_pos_ = 0;
    bool any_ = false;
  };

  /// Builds a bitmap from sorted, duplicate-free positions.
  static EwahBitmap FromIndices(const std::vector<uint64_t>& sorted_indices);

  /// Number of set bits. O(#markers + #literals).
  uint64_t Cardinality() const;

  /// Logical size: one past the highest set bit at build time.
  uint64_t SizeInBits() const { return size_in_bits_; }

  /// True iff no bit is set.
  bool Empty() const { return Cardinality() == 0; }

  /// Binary operations; the result's logical size is max of the inputs
  /// (And/AndNot: min is also correct for set bits, max kept for symmetry).
  EwahBitmap And(const EwahBitmap& other) const;
  EwahBitmap Or(const EwahBitmap& other) const;
  EwahBitmap Xor(const EwahBitmap& other) const;
  EwahBitmap AndNot(const EwahBitmap& other) const;

  /// Cardinality of the intersection without materialising it.
  uint64_t AndCardinality(const EwahBitmap& other) const;

  /// True iff the intersection is non-empty (early exit).
  bool Intersects(const EwahBitmap& other) const;

  /// Calls `fn` once per set bit, in increasing order.
  void ForEach(const std::function<void(uint64_t)>& fn) const;

  /// All set-bit positions, in increasing order.
  std::vector<uint64_t> ToIndices() const;

  /// Tests a single bit. O(#markers); intended for tests, not hot loops.
  bool Get(uint64_t pos) const;

  /// Compressed size in bytes (the buffer only).
  size_t SizeInBytes() const { return buffer_.size() * sizeof(uint64_t); }

  /// Equality of the represented bit sets (not of the physical encodings).
  bool operator==(const EwahBitmap& other) const;
  bool operator!=(const EwahBitmap& other) const { return !(*this == other); }

  /// 64-bit hash of the represented bit set (used to memoise covers).
  uint64_t Hash() const;

  /// Debug rendering, e.g. "{1,5,7}".
  std::string DebugString() const;

 private:
  friend class Builder;

  // Marker word accessors.
  static bool MarkerRunBit(uint64_t marker) { return marker & 1ULL; }
  static uint64_t MarkerRunLength(uint64_t marker) {
    return (marker >> 1) & 0xFFFFFFFFULL;
  }
  static uint64_t MarkerLiteralCount(uint64_t marker) { return marker >> 33; }
  static uint64_t MakeMarker(bool bit, uint64_t run, uint64_t literals) {
    return (bit ? 1ULL : 0ULL) | (run << 1) | (literals << 33);
  }

  // Streaming reader over the uncompressed word sequence with run awareness.
  class Reader {
   public:
    explicit Reader(const std::vector<uint64_t>& buffer);
    /// True while uncompressed words remain.
    bool HasNext() const;
    /// Words remaining in the current homogeneous segment (run or literals).
    uint64_t SegmentLength() const;
    /// True if the current segment is a clean run (of run_bit words).
    bool InRun() const;
    bool RunBit() const;
    /// Current literal word (only valid when !InRun()).
    uint64_t LiteralWord() const;
    /// Advances by `count` words; count <= SegmentLength(), and if inside a
    /// literal segment, count must be 1.
    void Skip(uint64_t count);

   private:
    void LoadMarker();
    const std::vector<uint64_t>* buffer_;
    size_t pos_ = 0;           // index into buffer_
    uint64_t run_left_ = 0;    // words left in the clean run
    uint64_t lit_left_ = 0;    // literal words left after the run
    bool run_bit_ = false;
  };

  enum class BinaryOp { kAnd, kOr, kXor, kAndNot };
  static EwahBitmap BinaryMerge(const EwahBitmap& a, const EwahBitmap& b,
                                BinaryOp op);

  std::vector<uint64_t> buffer_;
  uint64_t size_in_bits_ = 0;
};

}  // namespace scube

#endif  // SCUBE_COMMON_EWAH_H_
