// Hash helpers: 64-bit mixing and combination for composite keys.

#ifndef SCUBE_COMMON_HASHING_H_
#define SCUBE_COMMON_HASHING_H_

#include <cstdint>
#include <functional>
#include <string_view>

namespace scube {

/// splitmix64 finalizer: a fast, well-distributed 64-bit mixer.
inline uint64_t Mix64(uint64_t z) {
  z += 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Order-dependent combination of two 64-bit hashes.
inline uint64_t HashCombine(uint64_t seed, uint64_t value) {
  return Mix64(seed ^ (value + 0x9E3779B97F4A7C15ULL + (seed << 6) +
                       (seed >> 2)));
}

/// FNV-1a over bytes; stable across platforms.
inline uint64_t HashBytes(std::string_view bytes) {
  uint64_t h = 0xCBF29CE484222325ULL;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001B3ULL;
  }
  return h;
}

}  // namespace scube

#endif  // SCUBE_COMMON_HASHING_H_
