#include "common/trace.h"

#include <algorithm>
#include <cstdio>

#include "common/string_util.h"

namespace scube {
namespace trace {

namespace {

// Innermost open span on this thread: Span's constructor pushes, its
// destructor pops. This is what links nested spans to their parent and
// what CurrentTraceId() reads from the logging layer.
struct ThreadCursor {
  TraceContext* trace = nullptr;
  uint32_t span = TraceContext::kNoParent;
};
thread_local ThreadCursor t_cursor;

// splitmix64 finalizer: turns a weak sequential seed into a well-mixed
// 64-bit id. Good enough for trace ids (uniqueness, not security).
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t NextTraceId() {
  static std::atomic<uint64_t> counter{0};
  const uint64_t seq = counter.fetch_add(1, std::memory_order_relaxed);
  const uint64_t ticks = static_cast<uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
  uint64_t id = Mix64(seq ^ (ticks << 17));
  if (id == 0) id = 1;  // 0 means "no trace" everywhere else
  return id;
}

void AppendSpanJson(const std::vector<TraceContext::SpanView>& spans,
                    uint32_t parent, std::string* out) {
  out->push_back('[');
  bool first = true;
  for (const auto& s : spans) {
    if (s.parent != parent) continue;
    if (!first) out->push_back(',');
    first = false;
    out->append("{\"name\":");
    out->append(JsonQuote(s.name));
    out->append(",\"start_ms\":");
    out->append(FormatDouble(s.start_ms, 3));
    out->append(",\"ms\":");
    out->append(FormatDouble(s.duration_ms, 3));
    // Children are rare; skip the sub-array entirely for leaves.
    bool has_children = false;
    for (const auto& c : spans) {
      if (c.parent == s.id) {
        has_children = true;
        break;
      }
    }
    if (has_children) {
      out->append(",\"spans\":");
      AppendSpanJson(spans, s.id, out);
    }
    out->push_back('}');
  }
  out->push_back(']');
}

}  // namespace

TraceContext::TraceContext()
    : trace_id_(NextTraceId()), epoch_(Clock::now()) {}

std::string TraceContext::trace_id_hex() const { return TraceIdHex(trace_id_); }

double TraceContext::ElapsedMillis() const {
  return static_cast<double>(NowMicros()) / 1000.0;
}

uint32_t TraceContext::spans_recorded() const {
  return std::min(next_.load(std::memory_order_acquire), kMaxSpans);
}

int64_t TraceContext::NowMicros() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                               epoch_)
      .count();
}

uint32_t TraceContext::Open(const char* name, uint32_t parent) {
  const uint32_t idx = next_.fetch_add(1, std::memory_order_acq_rel);
  if (idx >= kMaxSpans) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return 0;
  }
  SpanRecord& rec = spans_[idx];
  rec.name = name;
  rec.parent = parent;
  rec.start_us = NowMicros();
  rec.end_us = -1;
  return idx + 1;
}

void TraceContext::Close(uint32_t slot) {
  if (slot == 0 || slot > kMaxSpans) return;
  spans_[slot - 1].end_us = NowMicros();
}

uint32_t TraceContext::Record(const char* name, Clock::time_point start,
                              Clock::time_point end, uint32_t parent) {
  const uint32_t slot = Open(name, parent);
  if (slot == 0) return 0;
  SpanRecord& rec = spans_[slot - 1];
  rec.start_us = std::max<int64_t>(
      0, std::chrono::duration_cast<std::chrono::microseconds>(start - epoch_)
             .count());
  rec.end_us = std::max<int64_t>(
      rec.start_us,
      std::chrono::duration_cast<std::chrono::microseconds>(end - epoch_)
          .count());
  return slot;
}

std::vector<TraceContext::SpanView> TraceContext::Spans() const {
  const uint32_t n = spans_recorded();
  const int64_t now_us = NowMicros();
  std::vector<SpanView> out;
  out.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    const SpanRecord& rec = spans_[i];
    SpanView v;
    v.name = rec.name;
    v.id = i + 1;
    v.parent = rec.parent;
    v.start_ms = static_cast<double>(rec.start_us) / 1000.0;
    v.open = rec.end_us < 0;
    const int64_t end_us = v.open ? now_us : rec.end_us;
    v.duration_ms = static_cast<double>(end_us - rec.start_us) / 1000.0;
    out.push_back(v);
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const SpanView& a, const SpanView& b) {
                     return a.start_ms < b.start_ms;
                   });
  return out;
}

std::string TraceContext::ToJson() const {
  const auto spans = Spans();
  std::string out = "{\"trace_id\":";
  out.append(JsonQuote(trace_id_hex()));
  out.append(",\"total_ms\":");
  out.append(FormatDouble(ElapsedMillis(), 3));
  out.append(",\"spans_dropped\":");
  out.append(std::to_string(spans_dropped()));
  out.append(",\"spans\":");
  AppendSpanJson(spans, kNoParent, &out);
  out.push_back('}');
  return out;
}

std::string TraceContext::Summary() const {
  std::string out;
  for (const auto& s : Spans()) {
    if (s.parent != kNoParent) continue;
    if (!out.empty()) out.push_back(' ');
    out.append(s.name);
    out.push_back('=');
    out.append(FormatDouble(s.duration_ms, 3));
    out.append("ms");
  }
  return out;
}

Span::Span(TraceContext* trace, const char* name) {
  if (trace == nullptr) return;  // disabled: no clock read, no atomics
  // Only spans opened under an ancestor of the SAME trace nest; a worker
  // thread picking up a chunk of some request starts at root level.
  const uint32_t parent = (t_cursor.trace == trace) ? t_cursor.span
                                                    : TraceContext::kNoParent;
  const uint32_t slot = trace->Open(name, parent);
  if (slot == 0) return;  // buffer full: already counted as dropped
  trace_ = trace;
  slot_ = slot;
  prev_trace_ = t_cursor.trace;
  prev_span_ = t_cursor.span;
  t_cursor.trace = trace;
  t_cursor.span = slot;
}

void Span::End() {
  if (trace_ == nullptr) return;
  trace_->Close(slot_);
  // Restore the cursor only if we are still the innermost span — an
  // out-of-order End() (moved-from scope guards, early End calls) must
  // not clobber a deeper frame.
  if (t_cursor.trace == trace_ && t_cursor.span == slot_) {
    t_cursor.trace = prev_trace_;
    t_cursor.span = prev_span_;
  }
  trace_ = nullptr;
  slot_ = 0;
}

uint64_t CurrentTraceId() {
  return t_cursor.trace != nullptr ? t_cursor.trace->trace_id() : 0;
}

std::string TraceIdHex(uint64_t id) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(id));
  return std::string(buf);
}

void LatencyHistogram::Observe(double ms) {
  if (ms < 0) ms = 0;
  const auto& bounds = kBucketBoundsMs;
  const size_t idx =
      std::lower_bound(bounds.begin(), bounds.end(), ms) - bounds.begin();
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_us_.fetch_add(static_cast<uint64_t>(ms * 1000.0),
                    std::memory_order_relaxed);
}

double LatencyHistogram::Quantile(double q) const {
  const uint64_t total = count();
  if (total == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(total);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    const uint64_t in_bucket = bucket(i);
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative + in_bucket) >= rank) {
      if (i == kNumBuckets - 1) return kBucketBoundsMs.back();
      const double lo = i == 0 ? 0.0 : kBucketBoundsMs[i - 1];
      const double hi = kBucketBoundsMs[i];
      const double frac =
          (rank - static_cast<double>(cumulative)) /
          static_cast<double>(in_bucket);
      return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
    }
    cumulative += in_bucket;
  }
  return kBucketBoundsMs.back();
}

}  // namespace trace
}  // namespace scube
