#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>

#include "common/sync.h"
#include "common/trace.h"

namespace scube {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};
std::atomic<bool> g_quiet{false};
sync::Mutex g_sink_mutex;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }
LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load()); }
void SetLogQuiet(bool quiet) { g_quiet.store(quiet); }

std::string FormatWallTimestampMillis() {
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      now.time_since_epoch())
                      .count() %
                  1000;
  std::tm tm{};
  gmtime_r(&secs, &tm);
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour,
                tm.tm_min, tm.tm_sec, static_cast<int>(ms));
  return buf;
}

int CurrentThreadLogId() {
  static std::atomic<int> next{1};
  thread_local int id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  // "[ts LEVEL tN file:line] " — and, when a span is open on this thread,
  // the request's trace id, so pool-interleaved lines are attributable.
  stream_ << "[" << FormatWallTimestampMillis() << " " << LevelName(level)
          << " t" << CurrentThreadLogId() << " " << base << ":" << line;
  if (const uint64_t trace_id = trace::CurrentTraceId()) {
    stream_ << " trace=" << trace::TraceIdHex(trace_id);
  }
  stream_ << "] ";
}

LogMessage::~LogMessage() {
  if (g_quiet.load()) return;
  if (static_cast<int>(level_) < g_level.load()) return;
  sync::MutexLock lock(&g_sink_mutex);
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
}

void CheckFailed(const char* expr, const char* file, int line) {
  std::fprintf(stderr, "[CHECK FAILED %s:%d] %s\n", file, line, expr);
  std::abort();
}

}  // namespace internal

}  // namespace scube
