#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace scube {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};
std::atomic<bool> g_quiet{false};
std::mutex g_sink_mutex;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }
LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load()); }
void SetLogQuiet(bool quiet) { g_quiet.store(quiet); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (g_quiet.load()) return;
  if (static_cast<int>(level_) < g_level.load()) return;
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
}

void CheckFailed(const char* expr, const char* file, int line) {
  std::fprintf(stderr, "[CHECK FAILED %s:%d] %s\n", file, line, expr);
  std::abort();
}

}  // namespace internal

}  // namespace scube
