// Deterministic PRNG and sampling helpers.
//
// All synthetic-data generation and randomised algorithms in SCube draw from
// this engine so that every experiment is reproducible from a single seed.

#ifndef SCUBE_COMMON_RANDOM_H_
#define SCUBE_COMMON_RANDOM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace scube {

/// \brief xoshiro256** engine seeded via splitmix64. Not cryptographic.
class Rng {
 public:
  /// Seeds the four-word state from a single 64-bit seed.
  explicit Rng(uint64_t seed = 0x5EEDBA5EBA11ULL);

  /// Next raw 64-bit draw.
  uint64_t Next();

  /// Uniform integer in [0, bound), bound > 0 (Lemire rejection-free scaling).
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli draw with success probability p.
  bool NextBool(double p);

  /// Standard normal via Box-Muller.
  double NextGaussian();

  /// Index drawn from unnormalised weights (linear scan; fine for small k).
  size_t NextCategorical(const std::vector<double>& weights);

  /// Zipf-distributed integer in [1, n] with exponent s (rejection sampling).
  uint64_t NextZipf(uint64_t n, double s);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = NextBounded(i);
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Splits off an independently seeded child stream (for parallel use).
  Rng Fork();

 private:
  uint64_t state_[4];
  bool have_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

/// \brief Precomputed sampler for a fixed discrete distribution
/// (Walker alias method; O(1) per draw).
class AliasSampler {
 public:
  /// Builds from unnormalised non-negative weights (at least one positive).
  explicit AliasSampler(const std::vector<double>& weights);

  /// Draws an index in [0, size()).
  size_t Sample(Rng* rng) const;

  size_t size() const { return prob_.size(); }

 private:
  std::vector<double> prob_;
  std::vector<uint32_t> alias_;
};

}  // namespace scube

#endif  // SCUBE_COMMON_RANDOM_H_
