// Fixed-size thread pool shared by every subsystem that fans work out
// (parallel cube fill, parallel Seal(), future batch jobs).
//
// Deliberately small and work-stealing-free: a mutex-guarded FIFO queue,
// N worker threads, and two entry points:
//
//   - Submit(fn)            -> std::future<void> for fire-and-wait tasks;
//   - ParallelFor(n, w, fn) -> blocks until fn ran for every index in
//                              [0, n), with at most `w` concurrent
//                              participants (the caller is one of them).
//
// Deadlock avoidance is by construction, not by stealing:
//
//   - ParallelFor claims indices from a shared atomic counter and the
//     *calling thread participates*: even when every pool worker is busy
//     (or the pool is the caller's own pool, nested arbitrarily deep),
//     the caller alone drains the range and returns. Helper tasks that
//     only get scheduled after the range is exhausted find nothing to
//     claim and return immediately — the call never blocks on a task
//     that has not started.
//   - Submit() from inside a pool worker runs the task inline (a queued
//     task could otherwise wait forever behind the very worker that
//     submitted it).
//
// Exceptions thrown by ParallelFor bodies cancel the remaining indices
// and the first one is rethrown on the calling thread. Determinism is the
// caller's job: have fn(worker, i) write only to slot i (plus per-worker
// scratch) and merge slots in index order — then the result is identical
// for every thread count, including 1.

#ifndef SCUBE_COMMON_THREAD_POOL_H_
#define SCUBE_COMMON_THREAD_POOL_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <thread>
#include <vector>

#include "common/sync.h"

namespace scube {

/// \brief Fixed pool of worker threads with a ParallelFor/futures API.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(size_t num_threads);

  /// Drains the queue (every submitted task still runs) and joins.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return threads_.size(); }

  /// Enqueues `fn`; the future becomes ready when it ran (or holds its
  /// exception). Called from one of this pool's own workers, `fn` runs
  /// inline instead — see the deadlock note above.
  std::future<void> Submit(std::function<void()> fn);

  /// Runs fn(worker, index) for every index in [0, n), claiming indices
  /// dynamically. At most `max_workers` participants run concurrently
  /// (clamped to >= 1), each with a distinct `worker` id in
  /// [0, max_workers); the calling thread is participant 0. Blocks until
  /// the whole range completed; rethrows the first body exception after
  /// cancelling unclaimed indices.
  void ParallelFor(size_t n, size_t max_workers,
                   const std::function<void(size_t worker, size_t index)>& fn);

  /// ParallelFor over all pool threads plus the caller.
  void ParallelFor(size_t n, const std::function<void(size_t index)>& fn);

  /// Process-wide shared pool, lazily created with
  /// hardware_concurrency() threads. Use ParallelFor's `max_workers` to
  /// bound a caller's parallelism instead of building private pools.
  static ThreadPool& Shared();

  /// Resolves a `num_threads` option: 0 = hardware concurrency (>= 1),
  /// anything else is taken literally.
  static size_t EffectiveThreads(size_t num_threads);

 private:
  struct ForState;

  void WorkerLoop();

  mutable sync::Mutex mu_;
  sync::CondVar cv_;
  std::deque<std::function<void()>> queue_ GUARDED_BY(mu_);
  bool stopping_ GUARDED_BY(mu_) = false;
  std::vector<std::thread> threads_;
};

}  // namespace scube

#endif  // SCUBE_COMMON_THREAD_POOL_H_
