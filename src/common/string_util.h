// Small string helpers shared across modules (no locale dependence).

#ifndef SCUBE_COMMON_STRING_UTIL_H_
#define SCUBE_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace scube {

/// Splits `input` on `sep`; keeps empty fields. "a,,b" -> {"a","","b"}.
std::vector<std::string> Split(std::string_view input, char sep);

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Removes ASCII whitespace from both ends.
std::string_view Trim(std::string_view s);

/// ASCII-only lower-casing (sufficient for attribute names and enum values).
std::string ToLower(std::string_view s);

/// True iff `s` starts with / ends with the given prefix or suffix.
bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Strict integer / double parsing of the *entire* string.
Result<int64_t> ParseInt64(std::string_view s);
Result<double> ParseDouble(std::string_view s);

/// Strict unsigned hex parsing of the entire string (no 0x prefix, both
/// cases accepted). InvalidArgument on empty input, non-hex characters or
/// uint64 overflow. Used by the chunked-transfer decoder and the cursor
/// codec.
Result<uint64_t> ParseHexU64(std::string_view s);

/// Formats a double with `digits` decimal places ("0.78").
std::string FormatDouble(double v, int digits);

/// Formats with thousands separators: 3600000 -> "3,600,000".
std::string FormatWithCommas(int64_t v);

/// Standard base64 (RFC 4648, with padding). Used for opaque wire tokens
/// such as the query-result resume cursors.
std::string Base64Encode(std::string_view s);

/// Decodes standard base64; InvalidArgument on bad characters, bad padding
/// or a truncated final group. Whitespace is not accepted.
Result<std::string> Base64Decode(std::string_view s);

/// Escapes `s` for embedding inside a JSON string literal (RFC 8259):
/// quote, backslash, and the C0 control characters. Bytes >= 0x20 other
/// than `"` and `\` pass through untouched, so UTF-8 survives verbatim.
/// Does NOT add the surrounding quotes.
std::string JsonEscape(std::string_view s);

/// `JsonEscape` wrapped in double quotes: a complete JSON string token.
std::string JsonQuote(std::string_view s);

}  // namespace scube

#endif  // SCUBE_COMMON_STRING_UTIL_H_
