// Request tracing and latency histograms: the observability primitives
// the serving and build paths hang their instrumentation on.
//
//   TraceContext   one per traced request (or build): a 64-bit trace id,
//                  a monotonic epoch, and a fixed lock-free buffer of
//                  completed spans. Span records are appended with one
//                  atomic fetch_add, so worker threads executing chunks
//                  of the same request record concurrently without locks.
//   Span           RAII: opens on construction, closes on destruction (or
//                  an explicit End()). Nesting is tracked through a
//                  thread-local cursor, so a span opened while another is
//                  open on the same thread becomes its child. Constructed
//                  with a null TraceContext* it is a complete no-op — no
//                  clock read, no allocation, no atomic — which is what
//                  "tracing disabled" costs.
//   LatencyHistogram
//                  fixed log-spaced buckets, atomic counters: Observe()
//                  is two relaxed fetch_adds and never allocates, safe
//                  from any thread. Rendered as a Prometheus histogram by
//                  server/metrics.cc; Quantile() interpolates p50/p95/p99
//                  for benches and reports.
//
// Span names must be string literals (or otherwise outlive the trace):
// records store the pointer, not a copy — that is what keeps an open/close
// pair allocation-free.
//
// Thread-safety: deliberately mutex-free — every shared slot is an atomic
// claimed with fetch_add and the nesting cursor is thread_local, so there
// is nothing here for the thread-safety analysis (common/sync.h) to
// annotate; audited as lock-free during the annotation pass.

#ifndef SCUBE_COMMON_TRACE_H_
#define SCUBE_COMMON_TRACE_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace scube {
namespace trace {

/// \brief One traced request: trace id + epoch + lock-free span buffer.
/// Create on the stack for the request's duration; threads executing on
/// its behalf append spans through the Span RAII helper. Reading (ToJson,
/// Spans) is meant for after the request quiesced — the renderer, the
/// slow-query log and ?debug=trace all run on the request thread once the
/// work is done.
class TraceContext {
 public:
  using Clock = std::chrono::steady_clock;

  /// Spans beyond this are dropped (and counted): a request that opens
  /// hundreds of spans (one per wire flush of a huge stream) keeps the
  /// first kMaxSpans and reports the overflow instead of growing.
  static constexpr uint32_t kMaxSpans = 96;

  /// Parent value of root spans. Span slot ids are 1-based.
  static constexpr uint32_t kNoParent = 0;

  TraceContext();

  TraceContext(const TraceContext&) = delete;
  TraceContext& operator=(const TraceContext&) = delete;

  uint64_t trace_id() const { return trace_id_; }

  /// The trace id as 16 lower-case hex digits (log lines, JSON).
  std::string trace_id_hex() const;

  /// Milliseconds since construction.
  double ElapsedMillis() const;

  uint32_t spans_recorded() const;
  uint32_t spans_dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Records an already-completed span retroactively — e.g. queue wait,
  /// measured from an enqueue timestamp taken on another thread. Returns
  /// the 1-based slot id (0 when the buffer was full). `name` must be a
  /// string literal.
  uint32_t Record(const char* name, Clock::time_point start,
                  Clock::time_point end, uint32_t parent = kNoParent);

  /// \brief One completed (or still-open) span, for tests and renderers.
  struct SpanView {
    const char* name = "";
    uint32_t id = 0;        ///< 1-based slot
    uint32_t parent = 0;    ///< 0 = root
    double start_ms = 0;    ///< offset from the trace epoch
    double duration_ms = 0; ///< elapsed-so-far for still-open spans
    bool open = false;
  };

  /// Snapshot of the recorded spans in start order.
  std::vector<SpanView> Spans() const;

  /// The span tree as JSON:
  /// {"trace_id":"…","total_ms":T,"spans_dropped":D,
  ///  "spans":[{"name":"…","start_ms":S,"ms":M,"spans":[…]},…]}
  std::string ToJson() const;

  /// Flat one-line summary of the root spans for log lines:
  /// "build.seal=12.3ms warm=0.4ms".
  std::string Summary() const;

 private:
  friend class Span;

  struct SpanRecord {
    const char* name = "";
    uint32_t parent = kNoParent;
    int64_t start_us = 0;
    int64_t end_us = -1;  ///< -1 while open
  };

  /// Reserves a slot and stamps name/parent/start. 0 when full.
  uint32_t Open(const char* name, uint32_t parent);
  void Close(uint32_t slot);

  int64_t NowMicros() const;

  uint64_t trace_id_;
  Clock::time_point epoch_;
  std::atomic<uint32_t> next_{0};
  std::atomic<uint32_t> dropped_{0};
  std::array<SpanRecord, kMaxSpans> spans_;
};

/// \brief RAII span: opens in the constructor, closes in the destructor.
/// With a null trace it does nothing at all. Copying is disabled — a span
/// is a scope, not a value.
class Span {
 public:
  Span(TraceContext* trace, const char* name);
  ~Span() { End(); }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Ends the span early (idempotent); the destructor becomes a no-op.
  void End();

 private:
  TraceContext* trace_ = nullptr;
  uint32_t slot_ = 0;
  TraceContext* prev_trace_ = nullptr;
  uint32_t prev_span_ = 0;
};

/// Trace id of the innermost span currently open on this thread, 0 when
/// none — the logging layer stamps it onto log lines so interleaved
/// handler-pool output is attributable to requests.
uint64_t CurrentTraceId();

/// 16 lower-case hex digits of an id (shared by logs and JSON rendering).
std::string TraceIdHex(uint64_t id);

/// \brief Fixed-bucket latency histogram. Observe() is lock-free and
/// allocation-free; all accessors take relaxed snapshots, so concurrent
/// reads see a consistent-enough view for monitoring.
class LatencyHistogram {
 public:
  /// Upper bounds (inclusive, "le") in milliseconds; one implicit +Inf
  /// bucket follows. Log-spaced from 10µs to 10s — wide enough for a
  /// cache hit and a full-cube analytic scan on the same ladder.
  static constexpr std::array<double, 19> kBucketBoundsMs = {
      0.01, 0.025, 0.05, 0.1,  0.25, 0.5,  1.0,    2.5,    5.0,   10.0,
      25.0, 50.0,  100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0};

  /// Total buckets including the +Inf overflow bucket.
  static constexpr size_t kNumBuckets = kBucketBoundsMs.size() + 1;

  LatencyHistogram() = default;
  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  /// Records one observation (negative values clamp to 0).
  void Observe(double ms);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }

  /// Sum of observations in milliseconds (stored in integer microseconds,
  /// so concurrent Observe never loses precision to a torn double).
  double sum_ms() const {
    return static_cast<double>(sum_us_.load(std::memory_order_relaxed)) /
           1000.0;
  }

  /// Non-cumulative count of bucket `i` (i == kNumBuckets-1 is +Inf).
  uint64_t bucket(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  /// Estimated quantile (q in [0,1]) by linear interpolation inside the
  /// covering bucket; observations beyond the last bound report the last
  /// bound. 0 when empty.
  double Quantile(double q) const;

 private:
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_us_{0};
};

}  // namespace trace
}  // namespace scube

#endif  // SCUBE_COMMON_TRACE_H_
