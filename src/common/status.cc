#include "common/status.h"

namespace scube {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kIoError:
      return "IOError";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

Status Status::WithContext(const std::string& context) const {
  if (ok()) return *this;
  return Status(code_, context + ": " + message_);
}

}  // namespace scube
