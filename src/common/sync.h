// Annotated synchronisation primitives: the ONLY place in src/ that may
// include <mutex> or <condition_variable> (tools/lint.py enforces this).
//
// Every lock in the serving and build paths is a sync::Mutex, every
// shared field is marked GUARDED_BY, and every lock-requiring private
// method REQUIRES — so Clang's thread-safety analysis
// (-DSCUBE_THREAD_SAFETY=ON, clang only) proves the lock discipline for
// every call path at compile time. TSan still runs in CI, but it can only
// see interleavings a test happens to produce; the analysis covers them
// all. Under gcc (and any compiler without the attributes) the macros
// expand to nothing and the types behave exactly like std::mutex /
// std::condition_variable wrappers.
//
// The macro set follows the Clang thread-safety reference
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html):
//
//   CAPABILITY / SCOPED_CAPABILITY    class-level: a lock / an RAII scope
//   GUARDED_BY / PT_GUARDED_BY        data members (value / pointee)
//   REQUIRES / REQUIRES_SHARED        caller must hold the lock
//   ACQUIRE / RELEASE (+ _SHARED)     functions that take / drop it
//   TRY_ACQUIRE                       conditional acquisition
//   EXCLUDES                          caller must NOT hold it (deadlock)
//   ASSERT_CAPABILITY                 runtime assertion the analysis trusts
//   RETURN_CAPABILITY                 getters returning a lock reference
//   NO_THREAD_SAFETY_ANALYSIS         last resort; every use needs a
//                                     justifying comment (lint-audited)
//
// Debug builds additionally track the holding thread, so
// Mutex::AssertHeld() aborts when the caller does not hold the lock —
// the dynamic twin of ASSERT_CAPABILITY for gcc builds and for code the
// analysis cannot see through.

#ifndef SCUBE_COMMON_SYNC_H_
#define SCUBE_COMMON_SYNC_H_

#include <condition_variable>
#include <mutex>
#ifndef NDEBUG
#include <atomic>
#include <thread>
#endif

#include "common/logging.h"

// --- thread-safety attribute macros ----------------------------------------

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define SCUBE_THREAD_ANNOTATION__(x) __attribute__((x))
#endif
#endif
#ifndef SCUBE_THREAD_ANNOTATION__
#define SCUBE_THREAD_ANNOTATION__(x)  // no-op outside clang
#endif

#define CAPABILITY(x) SCUBE_THREAD_ANNOTATION__(capability(x))
#define SCOPED_CAPABILITY SCUBE_THREAD_ANNOTATION__(scoped_lockable)
#define GUARDED_BY(x) SCUBE_THREAD_ANNOTATION__(guarded_by(x))
#define PT_GUARDED_BY(x) SCUBE_THREAD_ANNOTATION__(pt_guarded_by(x))
#define ACQUIRED_BEFORE(...) \
  SCUBE_THREAD_ANNOTATION__(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) \
  SCUBE_THREAD_ANNOTATION__(acquired_after(__VA_ARGS__))
#define REQUIRES(...) \
  SCUBE_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  SCUBE_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))
#define ACQUIRE(...) \
  SCUBE_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  SCUBE_THREAD_ANNOTATION__(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) \
  SCUBE_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  SCUBE_THREAD_ANNOTATION__(release_shared_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) \
  SCUBE_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))
#define EXCLUDES(...) SCUBE_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))
#define ASSERT_CAPABILITY(x) SCUBE_THREAD_ANNOTATION__(assert_capability(x))
#define RETURN_CAPABILITY(x) SCUBE_THREAD_ANNOTATION__(lock_returned(x))
#define NO_THREAD_SAFETY_ANALYSIS \
  SCUBE_THREAD_ANNOTATION__(no_thread_safety_analysis)

namespace scube {
namespace sync {

/// \brief Annotated exclusive mutex. Identical cost to std::mutex in
/// release builds; debug builds track the holder for AssertHeld().
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() {
    mu_.lock();
    DebugSetHolder();
  }

  void Unlock() RELEASE() {
    DebugClearHolder();
    mu_.unlock();
  }

  bool TryLock() TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    DebugSetHolder();
    return true;
  }

  /// Aborts in debug builds when the calling thread does not hold the
  /// lock; tells the static analysis the capability is held either way.
  void AssertHeld() const ASSERT_CAPABILITY(this) {
#ifndef NDEBUG
    SCUBE_CHECK(holder_.load(std::memory_order_relaxed) ==
                std::this_thread::get_id());
#endif
  }

 private:
  friend class CondVar;

#ifndef NDEBUG
  void DebugSetHolder() {
    holder_.store(std::this_thread::get_id(), std::memory_order_relaxed);
  }
  void DebugClearHolder() {
    holder_.store(std::thread::id(), std::memory_order_relaxed);
  }
#else
  void DebugSetHolder() {}
  void DebugClearHolder() {}
#endif

  std::mutex mu_;
#ifndef NDEBUG
  std::atomic<std::thread::id> holder_{};
#endif
};

/// \brief RAII lock scope: acquires in the constructor, releases in the
/// destructor. The annotated replacement for std::lock_guard.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// \brief RAII lock scope whose critical section can end before the
/// scope does (drop the lock, then notify / do slow work). Release() at
/// most once; the destructor releases only when Release() did not run.
class SCOPED_CAPABILITY ReleasableMutexLock {
 public:
  explicit ReleasableMutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) {
    mu_->Lock();
  }

  ~ReleasableMutexLock() RELEASE() {
    if (!released_) mu_->Unlock();
  }

  void Release() RELEASE() {
    SCUBE_CHECK(!released_);
    released_ = true;
    mu_->Unlock();
  }

  ReleasableMutexLock(const ReleasableMutexLock&) = delete;
  ReleasableMutexLock& operator=(const ReleasableMutexLock&) = delete;

 private:
  Mutex* const mu_;
  bool released_ = false;
};

/// \brief Condition variable paired with sync::Mutex. Wait() has the
/// usual spurious-wakeup contract — callers loop on their predicate:
///
///   sync::MutexLock lock(&mu_);
///   while (!ready_) cv_.Wait(&mu_);
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu` and blocks; re-acquires before returning.
  /// The analysis (correctly) treats the lock as held across the call.
  void Wait(Mutex* mu) REQUIRES(mu) {
    mu->DebugClearHolder();
    std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // ownership stays with the caller's scope
    mu->DebugSetHolder();
  }

  void Signal() { cv_.notify_one(); }
  void SignalAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace sync
}  // namespace scube

#endif  // SCUBE_COMMON_SYNC_H_
