// RFC-4180-style CSV reading and writing.
//
// SCube's inputs (individual.csv, group.csv, individualGroup.csv) and several
// outputs (finalTable.csv, cube.csv) are CSV files; this module is the single
// implementation used everywhere. Quoted fields, embedded separators, quotes
// ("" escaping) and embedded newlines are supported. Set-valued cells use the
// paper's brace syntax: "{electricity, transports}" (parsed at the relational
// layer, transported here as plain strings).

#ifndef SCUBE_COMMON_CSV_H_
#define SCUBE_COMMON_CSV_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace scube {

/// \brief In-memory parse of a CSV document: header + data rows.
struct CsvDocument {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  /// Index of a header column, or -1 when absent.
  int ColumnIndex(const std::string& name) const;
};

/// \brief CSV parser with configurable separator.
class CsvReader {
 public:
  struct Options {
    char separator = ',';
    /// When true, the first record is treated as the header.
    bool has_header = true;
    /// When true, rows whose field count differs from the header are errors;
    /// otherwise they are padded / truncated.
    bool strict_field_count = true;
  };

  CsvReader() : options_(Options{}) {}
  explicit CsvReader(Options options) : options_(options) {}

  /// Parses a whole document held in memory.
  Result<CsvDocument> ParseString(const std::string& content) const;

  /// Reads and parses a file.
  Result<CsvDocument> ParseFile(const std::string& path) const;

 private:
  Options options_;
};

/// \brief Streaming CSV writer with correct quoting.
class CsvWriter {
 public:
  explicit CsvWriter(char separator = ',') : separator_(separator) {}

  /// Appends one record; fields are quoted only when necessary.
  void WriteRow(const std::vector<std::string>& fields);

  /// The document assembled so far.
  const std::string& str() const { return out_; }

  /// Writes the assembled document to a file.
  Status SaveToFile(const std::string& path) const;

  /// Quotes a single field per RFC 4180 if it needs quoting.
  static std::string EscapeField(const std::string& field, char separator);

 private:
  char separator_;
  std::string out_;
};

/// Reads an entire file into a string.
Result<std::string> ReadFileToString(const std::string& path);

/// Writes a string to a file (truncating).
Status WriteStringToFile(const std::string& path, const std::string& content);

}  // namespace scube

#endif  // SCUBE_COMMON_CSV_H_
