#include "common/csv.h"

#include <fstream>
#include <sstream>

namespace scube {

int CsvDocument::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return static_cast<int>(i);
  }
  return -1;
}

namespace {

// State machine over the raw characters; handles CRLF and quoted fields.
Status ParseRecords(const std::string& content, char sep,
                    std::vector<std::vector<std::string>>* records) {
  std::vector<std::string> current;
  std::string field;
  bool in_quotes = false;
  bool field_started_quoted = false;
  size_t i = 0;
  const size_t n = content.size();

  auto end_field = [&]() {
    current.push_back(std::move(field));
    field.clear();
    field_started_quoted = false;
  };
  auto end_record = [&]() {
    end_field();
    records->push_back(std::move(current));
    current.clear();
  };

  while (i < n) {
    char c = content[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < n && content[i + 1] == '"') {
          field.push_back('"');
          i += 2;
        } else {
          in_quotes = false;
          ++i;
        }
      } else {
        field.push_back(c);
        ++i;
      }
    } else {
      if (c == '"' && field.empty() && !field_started_quoted) {
        in_quotes = true;
        field_started_quoted = true;
        ++i;
      } else if (c == sep) {
        end_field();
        ++i;
      } else if (c == '\r') {
        // Swallow; the following \n (if any) ends the record.
        ++i;
        if (i >= n || content[i] != '\n') end_record();
      } else if (c == '\n') {
        end_record();
        ++i;
      } else {
        field.push_back(c);
        ++i;
      }
    }
  }
  if (in_quotes) {
    return Status::ParseError("unterminated quoted field at end of input");
  }
  // Final record without trailing newline.
  if (!field.empty() || !current.empty() || field_started_quoted) {
    end_record();
  }
  return Status::OK();
}

}  // namespace

Result<CsvDocument> CsvReader::ParseString(const std::string& content) const {
  std::vector<std::vector<std::string>> records;
  SCUBE_RETURN_IF_ERROR(ParseRecords(content, options_.separator, &records));
  CsvDocument doc;
  size_t start = 0;
  if (options_.has_header) {
    if (records.empty()) {
      return Status::ParseError("CSV document is empty but a header expected");
    }
    doc.header = records[0];
    start = 1;
  }
  size_t width = options_.has_header
                     ? doc.header.size()
                     : (records.empty() ? 0 : records[0].size());
  for (size_t r = start; r < records.size(); ++r) {
    auto& row = records[r];
    if (row.size() != width) {
      if (options_.strict_field_count) {
        return Status::ParseError(
            "row " + std::to_string(r) + " has " + std::to_string(row.size()) +
            " fields, expected " + std::to_string(width));
      }
      row.resize(width);
    }
    doc.rows.push_back(std::move(row));
  }
  return doc;
}

Result<CsvDocument> CsvReader::ParseFile(const std::string& path) const {
  auto content = ReadFileToString(path);
  if (!content.ok()) return content.status();
  return ParseString(content.value());
}

std::string CsvWriter::EscapeField(const std::string& field, char separator) {
  bool needs_quote = false;
  for (char c : field) {
    if (c == separator || c == '"' || c == '\n' || c == '\r') {
      needs_quote = true;
      break;
    }
  }
  if (!needs_quote) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += "\"";
  return out;
}

void CsvWriter::WriteRow(const std::vector<std::string>& fields) {
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out_.push_back(separator_);
    out_ += EscapeField(fields[i], separator_);
  }
  out_.push_back('\n');
}

Status CsvWriter::SaveToFile(const std::string& path) const {
  return WriteStringToFile(path, out_);
}

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open file for reading: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  if (in.bad()) return Status::IoError("read failure: " + path);
  return ss.str();
}

Status WriteStringToFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open file for writing: " + path);
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
  if (!out) return Status::IoError("write failure: " + path);
  return Status::OK();
}

}  // namespace scube
