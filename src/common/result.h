// Result<T>: value-or-Status, the companion of Status for functions that
// produce a value on success.

#ifndef SCUBE_COMMON_RESULT_H_
#define SCUBE_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace scube {

/// \brief Holds either a successfully produced T or an error Status.
///
/// Typical use:
/// \code
///   Result<Table> r = Table::FromCsv(path);
///   if (!r.ok()) return r.status();
///   Table t = std::move(r).value();
/// \endcode
template <typename T>
class Result {
 public:
  /// Implicit conversion from a value: success.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit conversion from an error status. Must not be OK: an OK status
  /// carries no value and would leave the Result unusable.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  /// True iff a value is present.
  bool ok() const { return value_.has_value(); }

  /// The error (Status::OK() when a value is present).
  const Status& status() const { return status_; }

  /// Accessors; must only be called when ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or a fallback when in error state.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates the error of a Result-producing expression, else binds the
/// value to `lhs`. Usable in functions returning Status or Result<U>.
#define SCUBE_ASSIGN_OR_RETURN(lhs, expr)          \
  auto SCUBE_CONCAT_(_scube_res_, __LINE__) = (expr);              \
  if (!SCUBE_CONCAT_(_scube_res_, __LINE__).ok())                  \
    return SCUBE_CONCAT_(_scube_res_, __LINE__).status();          \
  lhs = std::move(SCUBE_CONCAT_(_scube_res_, __LINE__)).value()

#define SCUBE_CONCAT_INNER_(a, b) a##b
#define SCUBE_CONCAT_(a, b) SCUBE_CONCAT_INNER_(a, b)

}  // namespace scube

#endif  // SCUBE_COMMON_RESULT_H_
